package gen

import (
	"testing"

	"fastcppr/model"
)

func TestGenerateBlockedDeterministicAndBlocked(t *testing.T) {
	d1 := MustGenerateBlocked(BlockedArray(7))
	d2 := MustGenerateBlocked(BlockedArray(7))
	if d1.NumPins() != d2.NumPins() || d1.NumArcs() != d2.NumArcs() {
		t.Fatalf("same seed, different sizes: %d/%d pins, %d/%d arcs",
			d1.NumPins(), d2.NumPins(), d1.NumArcs(), d2.NumArcs())
	}
	for ai := range d1.Arcs {
		if d1.Arcs[ai] != d2.Arcs[ai] {
			t.Fatalf("same seed, arc %d differs: %+v vs %+v", ai, d1.Arcs[ai], d2.Arcs[ai])
		}
	}

	spec := BlockedArray(7)
	bl := model.PartitionBlocks(d1)
	if bl.NumBlocks() != spec.Instances && bl.NumBlocks() != 24 {
		t.Fatalf("NumBlocks = %d", bl.NumBlocks())
	}
	// Every instance replays one template: all block signatures equal.
	sig := bl.Signature(0)
	for b := 1; b < bl.NumBlocks(); b++ {
		if bl.Signature(b) != sig {
			t.Fatalf("block %d has a different signature — instances are not clones", b)
		}
	}
	// Deep narrow blocks must compress: far more internal arcs than
	// boundary pairs are possible (Width^2 = 64 vs Layers*Width*FanIn).
	if n := len(bl.InternalArcs[0]); n < 3*64 {
		t.Fatalf("block has only %d internal arcs — too shallow to demonstrate compression", n)
	}
}

func TestGenerateBlockedValidatesSpec(t *testing.T) {
	bad := BlockedArray(1)
	bad.FanIn = 99
	if _, err := GenerateBlocked(bad); err == nil {
		t.Fatal("FanIn > Width accepted")
	}
}
