package gen

import (
	"testing"

	"fastcppr/model"
)

func TestGenerateDefaults(t *testing.T) {
	d, err := Generate(Spec{Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if d.NumFFs() == 0 || d.NumArcs() == 0 {
		t.Fatal("empty design")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Medium(7)
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	if a.NumPins() != b.NumPins() || a.NumArcs() != b.NumArcs() {
		t.Fatalf("sizes differ: %d/%d pins, %d/%d arcs", a.NumPins(), b.NumPins(), a.NumArcs(), b.NumArcs())
	}
	for i := range a.Arcs {
		if a.Arcs[i] != b.Arcs[i] {
			t.Fatalf("arc %d differs: %+v vs %+v", i, a.Arcs[i], b.Arcs[i])
		}
	}
	for i := range a.Pins {
		if a.Pins[i] != b.Pins[i] {
			t.Fatalf("pin %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(Medium(1))
	b := MustGenerate(Medium(2))
	same := a.NumArcs() == b.NumArcs()
	if same {
		diff := false
		for i := range a.Arcs {
			if a.Arcs[i] != b.Arcs[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical designs")
	}
}

func TestGenerateDepth(t *testing.T) {
	for _, target := range []int{5, 12, 30} {
		spec := Medium(3)
		spec.TargetDepth = target
		spec.DepthJitter = 0
		d := MustGenerate(spec)
		if d.Depth != target {
			t.Errorf("TargetDepth %d: got D = %d", target, d.Depth)
		}
	}
}

func TestGenerateDepthJitterVaries(t *testing.T) {
	spec := Medium(4)
	spec.DepthJitter = 3
	d := MustGenerate(spec)
	depths := map[int32]bool{}
	for _, ff := range d.FFs {
		depths[d.ClockDepth[ff.Clock]] = true
	}
	if len(depths) < 2 {
		t.Errorf("expected varied FF depths, got %v", depths)
	}
}

func TestGenerateEveryFFWired(t *testing.T) {
	d := MustGenerate(Medium(5))
	withFanin := 0
	for _, ff := range d.FFs {
		if len(d.FanIn(ff.Data)) > 0 {
			withFanin++
		}
		if d.ClockDepth[ff.Clock] < 1 {
			t.Errorf("FF %s clock pin not in tree", ff.Name)
		}
	}
	// The layered wiring gives every D pin at least one fan-in.
	if withFanin != d.NumFFs() {
		t.Errorf("%d/%d D pins have fan-in", withFanin, d.NumFFs())
	}
}

func TestGenerateCombConnected(t *testing.T) {
	d := MustGenerate(Medium(6))
	orphans := 0
	deadEnds := 0
	for id, p := range d.Pins {
		if p.Kind != model.Comb {
			continue
		}
		if len(d.FanIn(model.PinID(id))) == 0 {
			orphans++
		}
		if len(d.FanOut(model.PinID(id))) == 0 {
			deadEnds++
		}
	}
	if orphans > 0 {
		t.Errorf("%d comb pins without fan-in", orphans)
	}
	// A small number of dead ends can remain when dedup rejects the
	// fix-up arc; they must be rare.
	if total := d.NumPins(); deadEnds > total/50 {
		t.Errorf("%d dead-end comb pins of %d pins", deadEnds, total)
	}
}

func TestSmallOracleIsSmall(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		d := MustGenerate(SmallOracle(seed))
		if d.NumPins() > 200 {
			t.Errorf("seed %d: oracle design too big: %d pins", seed, d.NumPins())
		}
		if d.NumFFs() < 4 {
			t.Errorf("seed %d: too few FFs: %d", seed, d.NumFFs())
		}
	}
}

func TestPresetSpecKnownNames(t *testing.T) {
	for _, name := range PresetNames() {
		spec, err := PresetSpec(name, 0.02)
		if err != nil {
			t.Fatalf("PresetSpec(%s): %v", name, err)
		}
		d, err := Generate(spec)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		edges, ffs, depth, _, ok := PaperStats(name)
		if !ok {
			t.Fatalf("PaperStats(%s) missing", name)
		}
		if d.Depth != depth {
			t.Errorf("%s: D = %d, want %d (depth must not scale)", name, d.Depth, depth)
		}
		wantFFs := int(float64(ffs) * 0.02)
		if d.NumFFs() < wantFFs*8/10 || d.NumFFs() > wantFFs*12/10 {
			t.Errorf("%s: FFs = %d, want ~%d", name, d.NumFFs(), wantFFs)
		}
		_ = edges // edge counts are approximate; reported, not asserted
	}
}

func TestPresetSpecUnknown(t *testing.T) {
	if _, err := PresetSpec("nope", 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPresetsCount(t *testing.T) {
	if got := len(Presets(0.02)); got != 8 {
		t.Fatalf("Presets returned %d specs, want 8", got)
	}
}

func TestConnectivityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("connectivity sweep is slow")
	}
	// leon2-style presets must have (much) higher FF connectivity than
	// vga-style ones — the statistic that defeats sparsity pruning.
	low := MustGenerate(mustSpec(t, "vga_lcdv2", 0.02)).FFConnectivity()
	high := MustGenerate(mustSpec(t, "leon2", 0.02)).FFConnectivity()
	if high <= low {
		t.Errorf("connectivity(leon2)=%.1f <= connectivity(vga)=%.1f", high, low)
	}
}

func mustSpec(t *testing.T, name string, scale float64) Spec {
	t.Helper()
	s, err := PresetSpec(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate did not panic")
		}
	}()
	// A negative data-delay range makes the builder fail.
	MustGenerate(Spec{Seed: 1, DataDelayMin: -100, DataDelayMax: -50})
}
