package gen

import (
	"fmt"
	"math/rand"

	"fastcppr/model"
)

// BlockedSpec parameterises a repeated-block-instance design: a chain
// of FF banks separated by identical combinational block instances. The
// internal structure AND internal delays of every instance replay one
// randomly drawn template, so every instance carries the same block
// signature and hierarchical elaboration extracts one macromodel and
// reuses it Instances-1 times — the model-reuse scenario. Crossing-arc
// delays (FF Q into a block, block out to the next bank's D pins) vary
// per instance, as placed designs do.
//
// BlockedSpec is a separate generator with its own random stream, so
// adding it preserved every existing preset bit for bit.
type BlockedSpec struct {
	// Name labels the design.
	Name string
	// Seed drives all randomness; equal specs generate equal designs.
	Seed int64
	// Period is the clock period. 0 derives one from Layers and the
	// delay range so worst setup slacks land near (and partly below)
	// zero.
	Period model.Time

	// Instances is the number of comb block instances; the design has
	// Instances+1 FF banks. Default 24.
	Instances int
	// Width is the FF count per bank and the block port width. Default 8.
	Width int
	// Layers is the comb depth of each block. Deep, narrow blocks
	// compress well: a block has about Layers*Width*FanIn internal arcs
	// but at most Width*Width boundary pairs. Default 16.
	Layers int
	// FanIn is the in-degree of each non-input block node. Default 3.
	FanIn int

	// DelayMin/Max bound late data-arc delays (internal and crossing);
	// the early delay is late minus a random spread of up to Spread.
	DelayMin, DelayMax model.Time
	Spread             model.Time
	// ClockStem/ClockStemSkew bound the early delay and added skew of
	// the trunk arcs; bank buffers hang off successive trunk nodes, so
	// adjacent banks share a deep common clock prefix and their
	// transfer paths carry real CPPR credit.
	ClockStem, ClockStemSkew model.Time
	// LeafSkew is the per-FF clock leaf arc skew range.
	LeafSkew model.Time
}

// BlockedArray returns the default repeated-block preset: 24 instances
// of an 8-wide, 16-deep block (≈6x arc compression per block).
func BlockedArray(seed int64) BlockedSpec {
	return BlockedSpec{Name: "blocked_array", Seed: seed}
}

func (s *BlockedSpec) setDefaults() {
	if s.Name == "" {
		s.Name = fmt.Sprintf("blocked-%d", s.Seed)
	}
	if s.Instances == 0 {
		s.Instances = 24
	}
	if s.Width == 0 {
		s.Width = 8
	}
	if s.Layers == 0 {
		s.Layers = 16
	}
	if s.FanIn == 0 {
		s.FanIn = 3
	}
	if s.DelayMax == 0 {
		s.DelayMin, s.DelayMax = 30, 90
	}
	if s.Spread == 0 {
		s.Spread = 25
	}
	if s.ClockStem == 0 {
		s.ClockStem = 40
	}
	if s.ClockStemSkew == 0 {
		s.ClockStemSkew = 12
	}
	if s.LeafSkew == 0 {
		s.LeafSkew = 20
	}
	if s.Period == 0 {
		// Mean path: Layers internal arcs plus two crossings and CK->Q,
		// at the mean delay. Sized so the worst paths are critical.
		mean := (s.DelayMin + s.DelayMax) / 2
		s.Period = model.Time(s.Layers+3) * mean
	}
}

// GenerateBlocked builds the repeated-block design described by spec.
func GenerateBlocked(spec BlockedSpec) (*model.Design, error) {
	spec.setDefaults()
	if spec.Instances < 1 || spec.Width < 1 || spec.Layers < 2 || spec.FanIn < 1 {
		return nil, fmt.Errorf("gen: blocked spec needs Instances/Width >= 1, Layers >= 2, FanIn >= 1")
	}
	if spec.FanIn > spec.Width {
		return nil, fmt.Errorf("gen: blocked FanIn %d exceeds Width %d", spec.FanIn, spec.Width)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	b := model.NewBuilder(spec.Name, spec.Period)

	dataDelay := func() model.Window {
		l := spec.DelayMin + model.Time(rng.Int63n(int64(spec.DelayMax-spec.DelayMin)+1))
		e := l - model.Time(rng.Int63n(int64(spec.Spread)+1))
		if e < 0 {
			e = 0
		}
		return model.Window{Early: e, Late: l}
	}

	// --- Block template, drawn once and replayed per instance ---
	// srcs[l][j] lists the layer-(l-1) sources of node (l, j); win is
	// the matching delay window. Both structure and windows are shared
	// by every instance, which is what makes the signatures equal.
	type tmplArc struct {
		src int
		win model.Window
	}
	srcs := make([][][]tmplArc, spec.Layers)
	for l := 1; l < spec.Layers; l++ {
		srcs[l] = make([][]tmplArc, spec.Width)
		for j := 0; j < spec.Width; j++ {
			perm := rng.Perm(spec.Width)[:spec.FanIn]
			for _, sj := range perm {
				srcs[l][j] = append(srcs[l][j], tmplArc{src: sj, win: dataDelay()})
			}
		}
	}
	// Fan-out fixup (template level): every node of layers 0..Layers-2
	// must drive something, or it would be a timing-dead interior pin.
	hasOut := make([][]bool, spec.Layers)
	for l := range hasOut {
		hasOut[l] = make([]bool, spec.Width)
	}
	for l := 1; l < spec.Layers; l++ {
		for j := 0; j < spec.Width; j++ {
			for _, ta := range srcs[l][j] {
				hasOut[l-1][ta.src] = true
			}
		}
	}
	for l := 0; l < spec.Layers-1; l++ {
		for j := 0; j < spec.Width; j++ {
			if !hasOut[l][j] {
				srcs[l+1][j] = append(srcs[l+1][j], tmplArc{src: j, win: dataDelay()})
				hasOut[l][j] = true
			}
		}
	}

	// --- Clock tree: root -> trunk chain; bank k hangs off trunk[k],
	// so banks k and k+1 share the root..trunk[k] prefix — the common
	// path CPPR credits.
	clockWin := func(base, skew model.Time) model.Window {
		e := base + model.Time(rng.Int63n(int64(base)+1))/4
		return model.Window{Early: e, Late: e + model.Time(rng.Int63n(int64(skew)+1))}
	}
	root := b.AddClockRoot("clk")
	banks := spec.Instances + 1
	trunk := make([]model.PinID, banks)
	prev := root
	for k := 0; k < banks; k++ {
		tk := b.AddClockBuf(fmt.Sprintf("ctrunk%d", k))
		b.AddArc(prev, tk, clockWin(spec.ClockStem, spec.ClockStemSkew))
		trunk[k] = tk
		prev = tk
	}

	// --- FF banks ---
	ffs := make([][]model.FFPins, banks)
	for k := 0; k < banks; k++ {
		bankBuf := b.AddClockBuf(fmt.Sprintf("cbank%d", k))
		b.AddArc(trunk[k], bankBuf, clockWin(spec.ClockStem, spec.ClockStemSkew))
		ffs[k] = make([]model.FFPins, spec.Width)
		for j := 0; j < spec.Width; j++ {
			ff := b.AddFF(fmt.Sprintf("b%d_f%d", k, j), 12, 6, dataDelay())
			b.AddArc(bankBuf, ff.Clock, clockWin(spec.ClockStem/2+1, spec.LeafSkew))
			ffs[k][j] = ff
		}
	}

	// --- Block instances ---
	for inst := 0; inst < spec.Instances; inst++ {
		node := make([][]model.PinID, spec.Layers)
		for l := 0; l < spec.Layers; l++ {
			node[l] = make([]model.PinID, spec.Width)
			for j := 0; j < spec.Width; j++ {
				node[l][j] = b.AddComb(fmt.Sprintf("blk%d_g%d_%d", inst, l, j))
			}
		}
		// Internal arcs: the template, verbatim.
		for l := 1; l < spec.Layers; l++ {
			for j := 0; j < spec.Width; j++ {
				for _, ta := range srcs[l][j] {
					b.AddArc(node[l-1][ta.src], node[l][j], ta.win)
				}
			}
		}
		// Crossing arcs, per-instance delays: launching bank into
		// layer 0, last layer into the capturing bank.
		for j := 0; j < spec.Width; j++ {
			b.AddArc(ffs[inst][j].Q, node[0][j], dataDelay())
			b.AddArc(node[spec.Layers-1][j], ffs[inst+1][j].D, dataDelay())
		}
	}
	return b.Build()
}

// MustGenerateBlocked is GenerateBlocked that panics on error.
func MustGenerateBlocked(spec BlockedSpec) *model.Design {
	d, err := GenerateBlocked(spec)
	if err != nil {
		panic(err)
	}
	return d
}
