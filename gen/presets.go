package gen

import (
	"fmt"
	"math"

	"fastcppr/model"
)

// paperBench records the Table III statistics of a TAU-contest benchmark
// that the preset generator approximates.
type paperBench struct {
	name  string
	edges int
	ffs   int
	depth int
	conn  float64
	// window/fanin tune the generated FF connectivity toward conn:
	// larger windows and fan-ins raise connectivity.
	window float64
	fanin  float64
}

// paperTable mirrors Table III of the paper.
var paperTable = []paperBench{
	{"vga_lcdv2", 449651, 25091, 56, 28.55, 0.010, 1.8},
	{"Combo4v2", 778638, 26760, 82, 37.93, 0.012, 1.8},
	{"Combo5v2", 2051804, 39525, 91, 22.34, 0.008, 1.7},
	{"Combo6v2", 3577926, 64133, 101, 37.11, 0.012, 1.8},
	{"Combo7v2", 2817561, 54784, 96, 32.81, 0.012, 1.8},
	{"netcard", 3999174, 97831, 75, 196.42, 0.060, 2.2},
	{"leon2", 4328255, 149381, 85, 1245.44, 0.350, 2.6},
	{"leon3mp", 3376832, 108839, 75, 489.06, 0.150, 2.4},
}

// PresetNames lists the Table III benchmark names accepted by PresetSpec,
// in the paper's order.
func PresetNames() []string {
	out := make([]string, len(paperTable))
	for i, p := range paperTable {
		out[i] = p.name
	}
	return out
}

// PaperStats returns the published Table III row for a preset name, for
// side-by-side reporting of paper-vs-generated statistics.
func PaperStats(name string) (edges, ffs, depth int, conn float64, ok bool) {
	for _, p := range paperTable {
		if p.name == name {
			return p.edges, p.ffs, p.depth, p.conn, true
		}
	}
	return 0, 0, 0, 0, false
}

// PresetSpec returns a Spec that approximates the named Table III
// benchmark scaled by scale (1.0 = full published size; the default
// benchmark harness uses a smaller scale sized to this machine).
// The clock-tree depth D is preserved regardless of scale, because the
// paper's algorithm depends on D, not on the element counts.
func PresetSpec(name string, scale float64) (Spec, error) {
	for _, p := range paperTable {
		if p.name != name {
			continue
		}
		ffs := int(math.Round(float64(p.ffs) * scale))
		if ffs < 16 {
			ffs = 16
		}
		const layers = 6
		// Budget the scaled edge count: clock arcs (bufs + FF leaves),
		// CK->Q launches, and the rest as combinational arcs.
		targetEdges := float64(p.edges) * scale
		leafBufs := (ffs + 7) / 8
		crown := 0
		for w := 1; w < leafBufs; w *= 2 {
			crown++
		}
		chain := p.depth - 2 - crown
		if chain < 0 {
			chain = 0
		}
		clockArcs := float64(leafBufs*chain + 2*leafBufs + ffs)
		dataArcs := targetEdges - clockArcs - float64(2*ffs)
		if dataArcs < float64(4*ffs) {
			dataArcs = float64(4 * ffs)
		}
		combPerLayer := int(dataArcs / (layers * p.fanin))
		if combPerLayer < 8 {
			combPerLayer = 8
		}
		return Spec{
			Name:          fmt.Sprintf("%s_s%g", p.name, scale),
			Seed:          int64(1000 + len(p.name)*31 + p.depth),
			Period:        model.Ns(100),
			TargetDepth:   p.depth,
			ClockFanout:   2,
			FFsPerLeafBuf: 8,
			DepthJitter:   2,
			NumFFs:        ffs,
			NumPIs:        ffs / 16,
			NumPOs:        ffs / 16,
			CombLayers:    layers,
			CombPerLayer:  combPerLayer,
			AvgFanin:      p.fanin,
			Window:        p.window,
		}, nil
	}
	return Spec{}, fmt.Errorf("gen: unknown preset %q (have %v)", name, PresetNames())
}

// Presets returns specs for all Table III benchmarks at the given scale.
func Presets(scale float64) []Spec {
	out := make([]Spec, 0, len(paperTable))
	for _, p := range paperTable {
		s, err := PresetSpec(p.name, scale)
		if err != nil {
			panic(err) // unreachable: iterating known names
		}
		out = append(out, s)
	}
	return out
}

// SmallOracle returns a spec for a tiny design whose complete path set
// can be enumerated by the brute-force oracle: few FFs, a shallow
// combinational cloud, and bounded fan-in keep the path count in the
// hundreds.
func SmallOracle(seed int64) Spec {
	return Spec{
		Name:          fmt.Sprintf("oracle-%d", seed),
		Seed:          seed,
		Period:        model.Ns(50),
		TargetDepth:   5,
		ClockFanout:   2,
		FFsPerLeafBuf: 3,
		DepthJitter:   1,
		NumFFs:        8 + int(seed%5),
		NumPIs:        2,
		NumPOs:        2,
		CombLayers:    2,
		CombPerLayer:  10,
		AvgFanin:      1.6,
		Window:        0.6,
	}
}

// DivergentClock returns an oracle-size spec whose clock tree mixes
// inverting and non-inverting cells (about half the arcs invert), so
// reconverging FF pairs split across an inverter see opposite clock
// transitions. On such designs the same_pin and same_transition CRPR
// modes genuinely disagree: same_pin credits every shared path while
// same_transition zeroes the mixed-parity pairs. Tests use it to prove
// the two modes are not conflated anywhere in the stack.
func DivergentClock(seed int64) Spec {
	s := SmallOracle(seed)
	s.Name = fmt.Sprintf("divergent-%d", seed)
	// A deep, skinny tree with few FFs per leaf maximises shared clock
	// path (big credits) while the inverter mix splits the leaves into
	// both parity classes.
	s.ClockInvertFrac = 0.5
	s.ClockSkew = 40
	s.ShiftFrac = 0.8
	return s
}

// Medium returns a spec for a mid-size design used by integration tests:
// large enough to exercise multi-level candidate generation and
// parallelism, small enough for exhaustive cross-algorithm comparison.
func Medium(seed int64) Spec {
	return Spec{
		Name:          fmt.Sprintf("medium-%d", seed),
		Seed:          seed,
		Period:        model.Ns(80),
		TargetDepth:   12,
		ClockFanout:   2,
		FFsPerLeafBuf: 4,
		DepthJitter:   2,
		NumFFs:        64,
		NumPIs:        6,
		NumPOs:        6,
		CombLayers:    4,
		CombPerLayer:  100,
		AvgFanin:      2.0,
		Window:        0.25,
	}
}
