// Package gen generates synthetic circuit designs for testing and
// benchmarking the CPPR timers.
//
// The TAU 2014/2015 contest benchmarks used by the paper (vga_lcdv2,
// Combo4–7, netcard, leon2, leon3mp) are industrial and not
// redistributable, so this package substitutes parameterised random
// designs that match the statistics the paper's evaluation depends on:
// edge count, flip-flop count, clock-tree depth D, FFs per level, and FF
// connectivity (Table III). The complexity of every algorithm in this
// repository is a function of exactly those statistics, so the shapes of
// the paper's results are preserved.
//
// Designs are generated deterministically from a seed.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"fastcppr/model"
)

// Spec parameterises a synthetic design.
type Spec struct {
	// Name labels the design.
	Name string
	// Seed drives all randomness; equal specs generate equal designs.
	Seed int64
	// Period is the clock period (T_clk). Its value shifts every setup
	// slack uniformly and never changes path ranking.
	Period model.Time

	// TargetDepth is the desired clock-tree level count D (the depth of
	// FF clock pins plus one). The generator builds a K-ary crown of
	// leaf buffers and extends it with chains to reach this depth,
	// mirroring the deep, skinny clock trees of the paper's benchmarks
	// (D 56–101 for 25k–150k FFs).
	TargetDepth int
	// ClockFanout is the branching factor K of the clock-tree crown.
	ClockFanout int
	// FFsPerLeafBuf is how many FF clock pins attach to each deepest
	// buffer.
	FFsPerLeafBuf int
	// DepthJitter randomly shortens leaf chains by up to this many
	// levels so FF clock pins sit at varying depths.
	DepthJitter int

	// NumFFs is the flip-flop count.
	NumFFs int
	// NumDomains is the number of independent clock domains (roots).
	// FFs are partitioned into contiguous blocks, one per domain.
	// Default 1.
	NumDomains int
	// NumPIs / NumPOs are the primary input/output counts.
	NumPIs int
	NumPOs int

	// CombLayers and CombPerLayer shape the layered combinational
	// cloud between Q pins (layer 0) and D pins (last layer).
	CombLayers   int
	CombPerLayer int
	// AvgFanin is the mean fan-in of each combinational pin (>= 1).
	AvgFanin float64
	// Window is the locality radius in [0,1] used when choosing arc
	// sources: larger windows connect more distant columns and raise FF
	// connectivity (the statistic that breaks HappyTimer-style pruning
	// on netcard/leon2).
	Window float64
	// ShiftFrac is the fraction of adjacent same-clock-branch FF pairs
	// connected by a direct Q->D transfer (shift/scan-chain style).
	// These local paths share almost the whole clock path, so they have
	// deep LCAs, carry large CPPR credits, and dominate hold checks —
	// the canonical scenario pessimism removal exists for. Negative
	// disables; 0 selects the default.
	ShiftFrac float64

	// DataDelayMin/Max bound late data-arc delays; the early delay is
	// late minus a random spread of up to DataSpread.
	DataDelayMin, DataDelayMax model.Time
	DataSpread                 model.Time
	// DistanceDelay adds wire delay proportional to the |x| distance an
	// arc spans (ps per unit x), so long cross-die hops are slow and the
	// short paths that decide hold checks stay local to a clock branch,
	// as placed designs behave. Negative disables; 0 selects the default.
	DistanceDelay model.Time
	// ClockDelayMin/Max bound early clock-arc delays; the late delay
	// adds a random skew of up to ClockSkew. Skew accumulates down the
	// tree and becomes the CPPR credit.
	ClockDelayMin, ClockDelayMax model.Time
	ClockSkew                    model.Time

	// ClockInvertFrac is the fraction of clock-tree arcs driven by an
	// inverting cell. Inverters flip the clock-edge sense below them, so
	// FF pairs whose clock paths cross an odd number of inverters see
	// opposite launch/capture transitions — the pairs the
	// same_transition CRPR mode denies credit to. 0 (the default) keeps
	// every generated tree non-inverting, preserving the historical
	// designs bit for bit.
	ClockInvertFrac float64
}

// setDefaults fills zero fields with usable values.
func (s *Spec) setDefaults() {
	if s.Name == "" {
		s.Name = fmt.Sprintf("gen-%d", s.Seed)
	}
	if s.Period == 0 {
		s.Period = model.Ns(100)
	}
	if s.TargetDepth == 0 {
		s.TargetDepth = 8
	}
	if s.ClockFanout == 0 {
		s.ClockFanout = 2
	}
	if s.FFsPerLeafBuf == 0 {
		s.FFsPerLeafBuf = 8
	}
	if s.NumFFs == 0 {
		s.NumFFs = 16
	}
	if s.NumDomains == 0 {
		s.NumDomains = 1
	}
	if s.CombLayers == 0 {
		s.CombLayers = 4
	}
	if s.CombPerLayer == 0 {
		s.CombPerLayer = 2 * s.NumFFs
	}
	if s.AvgFanin == 0 {
		s.AvgFanin = 2
	}
	if s.Window == 0 {
		s.Window = 0.1
	}
	if s.ShiftFrac == 0 {
		s.ShiftFrac = 0.35
	}
	if s.DataDelayMax == 0 {
		s.DataDelayMin, s.DataDelayMax = 20, 400
	}
	if s.DataSpread == 0 {
		s.DataSpread = 100
	}
	if s.ClockDelayMax == 0 {
		s.ClockDelayMin, s.ClockDelayMax = 30, 80
	}
	if s.ClockSkew == 0 {
		s.ClockSkew = 18
	}
	if s.DistanceDelay == 0 {
		s.DistanceDelay = 2500
	}
}

// crownLevels returns the number of k-ary tree levels needed for leaves.
func crownLevels(leaves, k int) int {
	levels := 0
	for w := 1; w < leaves; w *= k {
		levels++
	}
	return levels
}

// node is a placed data-graph vertex used during arc construction.
type node struct {
	pin   model.PinID
	x     float64
	layer int
}

// Generate builds the design described by spec.
func Generate(spec Spec) (*model.Design, error) {
	spec.setDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	b := model.NewBuilder(spec.Name, spec.Period)

	clockDelay := func() model.Window {
		e := spec.ClockDelayMin + model.Time(rng.Int63n(int64(spec.ClockDelayMax-spec.ClockDelayMin)+1))
		return model.Window{Early: e, Late: e + model.Time(rng.Int63n(int64(spec.ClockSkew)+1))}
	}
	// addClockArc inserts one clock-tree arc, inverting per
	// ClockInvertFrac. The frac check precedes any rng draw so specs
	// with the default 0 consume the identical random stream as before
	// the knob existed.
	addClockArc := func(from, to model.PinID) {
		if spec.ClockInvertFrac > 0 && rng.Float64() < spec.ClockInvertFrac {
			b.AddInvertingArc(from, to, clockDelay())
			return
		}
		b.AddArc(from, to, clockDelay())
	}
	dataDelay := func(dist float64) model.Window {
		l := spec.DataDelayMin + model.Time(rng.Int63n(int64(spec.DataDelayMax-spec.DataDelayMin)+1))
		if spec.DistanceDelay > 0 {
			l += model.Time(dist * float64(spec.DistanceDelay))
		}
		e := l - model.Time(rng.Int63n(int64(spec.DataSpread)+1))
		if e < 0 {
			e = 0
		}
		return model.Window{Early: e, Late: l}
	}

	// --- Clock trees, one per domain ---
	// FFs are partitioned into contiguous blocks across domains; each
	// domain gets its own root, crown and leaf chains.
	bufID := 0
	type domain struct {
		leafBufs []model.PinID
		firstFF  int // first FF index of the domain's block
	}
	domains := make([]domain, spec.NumDomains)
	ffsPerDomain := (spec.NumFFs + spec.NumDomains - 1) / spec.NumDomains
	for dom := range domains {
		rootName := "clk"
		if spec.NumDomains > 1 {
			rootName = fmt.Sprintf("clk%d", dom)
		}
		root := b.AddClockRoot(rootName)
		domFFs := ffsPerDomain
		if rest := spec.NumFFs - dom*ffsPerDomain; rest < domFFs {
			domFFs = rest
		}
		if domFFs < 1 {
			domFFs = 1
		}
		numLeafBufs := (domFFs + spec.FFsPerLeafBuf - 1) / spec.FFsPerLeafBuf
		// K-ary crown with numLeafBufs leaves. Widen K if needed so the
		// crown fits within TargetDepth-2 levels (leaf buffers sit at
		// crown depth, FF clock pins one below, chains in between).
		fanout := spec.ClockFanout
		crownDepth := crownLevels(numLeafBufs, fanout)
		for spec.TargetDepth >= 3 && crownDepth > spec.TargetDepth-2 {
			fanout *= 2
			crownDepth = crownLevels(numLeafBufs, fanout)
		}
		// FF clock pins sit at depth crownDepth + chain + 1; aim for
		// TargetDepth-1 (so D == TargetDepth).
		chainLen := spec.TargetDepth - 2 - crownDepth
		if chainLen < 0 {
			chainLen = 0
		}
		frontier := []model.PinID{root}
		for level := 0; level < crownDepth; level++ {
			var next []model.PinID
			for _, p := range frontier {
				for c := 0; c < fanout && len(next) < numLeafBufs; c++ {
					n := b.AddClockBuf(fmt.Sprintf("cb%d", bufID))
					bufID++
					addClockArc(p, n)
					next = append(next, n)
				}
				if len(next) >= numLeafBufs && level == crownDepth-1 {
					break
				}
			}
			frontier = next
		}
		// Extend each crown leaf with a chain (with jitter) to reach depth.
		leafBufs := make([]model.PinID, len(frontier))
		for i, p := range frontier {
			cl := chainLen
			if spec.DepthJitter > 0 {
				cl -= rng.Intn(spec.DepthJitter + 1)
				if cl < 0 {
					cl = 0
				}
			}
			cur := p
			for j := 0; j < cl; j++ {
				n := b.AddClockBuf(fmt.Sprintf("cb%d", bufID))
				bufID++
				addClockArc(cur, n)
				cur = n
			}
			leafBufs[i] = cur
		}
		domains[dom] = domain{leafBufs: leafBufs, firstFF: dom * ffsPerDomain}
	}

	// --- Flip-flops ---
	ffs := make([]model.FFPins, spec.NumFFs)
	for i := range ffs {
		setup := model.Time(20 + rng.Int63n(30))
		hold := model.Time(5 + rng.Int63n(15))
		ckq := model.Window{Early: 25 + model.Time(rng.Int63n(10)), Late: 40 + model.Time(rng.Int63n(20))}
		ffs[i] = b.AddFF(fmt.Sprintf("ff%d", i), setup, hold, ckq)
		// Block assignment mirrors placement-aware clock-tree synthesis:
		// data-local FFs (nearby x) share deep clock branches, so the
		// pairs that actually exchange data have deep LCAs and sizable
		// CPPR credits — the situation CPPR exists for.
		dom := &domains[min(i/ffsPerDomain, len(domains)-1)]
		leaf := (i - dom.firstFF) / spec.FFsPerLeafBuf
		if leaf >= len(dom.leafBufs) {
			leaf = len(dom.leafBufs) - 1
		}
		addClockArc(dom.leafBufs[leaf], ffs[i].Clock)
	}

	// --- Data network: layered DAG with locality ---
	// Layer 0: Q pins and PIs. Layers 1..CombLayers: combinational.
	// Layer CombLayers+1: D pins and POs.
	lastLayer := spec.CombLayers + 1
	layers := make([][]node, lastLayer+1)
	// xOf records node positions for distance-dependent delays.
	xOf := map[model.PinID]float64{}
	for i, ff := range ffs {
		x := float64(i) / float64(len(ffs))
		layers[0] = append(layers[0], node{pin: ff.Q, x: x, layer: 0})
		layers[lastLayer] = append(layers[lastLayer], node{pin: ff.D, x: x, layer: lastLayer})
		xOf[ff.Q], xOf[ff.D] = x, x
	}
	// Primary-input arrivals track the clock insertion delay, as if
	// produced by an upstream synchronous block: otherwise PI-launched
	// paths (which carry no CPPR credit) would dominate every hold
	// report and mask the pessimism-removal behaviour under study.
	// Late insertion delay estimate including accumulated skew.
	insertion := model.Time(spec.TargetDepth-1) * ((spec.ClockDelayMin+spec.ClockDelayMax)/2 + spec.ClockSkew/2)
	if insertion < 10 {
		insertion = 10
	}
	for i := 0; i < spec.NumPIs; i++ {
		// Inputs arrive slightly after the clock edge reaches the FFs:
		// safe for hold (as registered inputs are in practice), leaving
		// hold criticality to register-to-register transfers.
		base := insertion * model.Time(105+rng.Int63n(20)) / 100
		arr := model.Window{Early: base, Late: base + model.Time(rng.Int63n(int64(insertion)/10+1))}
		p := b.AddPI(fmt.Sprintf("in%d", i), arr)
		x := rng.Float64()
		layers[0] = append(layers[0], node{pin: p, x: x, layer: 0})
		xOf[p] = x
	}
	for i := 0; i < spec.NumPOs; i++ {
		// Output checks: required windows near the typical data arrival
		// (launch insertion + data depth), so PO paths compete with FF
		// tests without dominating them.
		reqLate := insertion*2 + model.Time(rng.Int63n(int64(insertion)+1))
		req := model.Window{Early: insertion / 2, Late: reqLate}
		p := b.AddPOConstrained(fmt.Sprintf("out%d", i), req)
		x := rng.Float64()
		layers[lastLayer] = append(layers[lastLayer], node{pin: p, x: x, layer: lastLayer})
		xOf[p] = x
	}
	for l := 1; l <= spec.CombLayers; l++ {
		for i := 0; i < spec.CombPerLayer; i++ {
			p := b.AddComb(fmt.Sprintf("g%d_%d", l, i))
			x := rng.Float64()
			layers[l] = append(layers[l], node{pin: p, x: x, layer: l})
			xOf[p] = x
		}
	}
	for l := range layers {
		sort.Slice(layers[l], func(i, j int) bool { return layers[l][i].x < layers[l][j].x })
	}

	// arcSet deduplicates data arcs globally: the model rejects parallel
	// arcs because pin-sequence paths would have ambiguous delays.
	arcSet := make(map[uint64]struct{})
	addDataDelay := func(from, to model.PinID, delay model.Window) bool {
		key := uint64(uint32(from))<<32 | uint64(uint32(to))
		if _, dup := arcSet[key]; dup {
			return false
		}
		arcSet[key] = struct{}{}
		b.AddArc(from, to, delay)
		return true
	}
	addData := func(from, to model.PinID) bool {
		dist := xOf[from] - xOf[to]
		if dist < 0 {
			dist = -dist
		}
		return addDataDelay(from, to, dataDelay(dist))
	}

	// Local register-to-register transfers between adjacent FFs on the
	// same clock branch (shift/scan-chain style): short paths with deep
	// LCAs and large credits, the canonical CPPR scenario.
	if spec.ShiftFrac > 0 {
		for i := 0; i+1 < len(ffs); i++ {
			if i/spec.FFsPerLeafBuf != (i+1)/spec.FFsPerLeafBuf {
				continue // different clock branches
			}
			if rng.Float64() >= spec.ShiftFrac {
				continue
			}
			e := 15 + model.Time(rng.Int63n(25))
			addDataDelay(ffs[i].Q, ffs[i+1].D, model.Window{Early: e, Late: e + model.Time(rng.Int63n(20))})
		}
	}

	// pickSource selects a node from layer src within the locality
	// window of x, avoiding duplicate arcs via the used set.
	pickSource := func(src int, x float64, used map[model.PinID]bool) (model.PinID, bool) {
		cand := layers[src]
		if len(cand) == 0 {
			return model.NoPin, false
		}
		lo := sort.Search(len(cand), func(i int) bool { return cand[i].x >= x-spec.Window })
		hi := sort.Search(len(cand), func(i int) bool { return cand[i].x > x+spec.Window })
		if lo >= hi {
			// Nothing in window: fall back to nearest.
			lo = sort.Search(len(cand), func(i int) bool { return cand[i].x >= x })
			if lo == len(cand) {
				lo--
			}
			hi = lo + 1
		}
		for try := 0; try < 8; try++ {
			n := cand[lo+rng.Intn(hi-lo)]
			if !used[n.pin] {
				return n.pin, true
			}
		}
		return model.NoPin, false
	}

	// Wire fan-in for every node in layers 1..lastLayer.
	hasFanout := make(map[model.PinID]bool)
	for l := 1; l <= lastLayer; l++ {
		for _, nd := range layers[l] {
			indeg := 1
			// Geometric-ish extra fan-in around AvgFanin.
			for float64(indeg) < spec.AvgFanin && rng.Float64() < (spec.AvgFanin-1)/spec.AvgFanin {
				indeg++
			}
			if indeg > 6 {
				indeg = 6
			}
			used := make(map[model.PinID]bool, indeg)
			for e := 0; e < indeg; e++ {
				// Prefer the previous layer; occasionally skip levels.
				src := l - 1
				for src > 0 && rng.Float64() < 0.2 {
					src--
				}
				from, ok := pickSource(src, nd.x, used)
				if !ok {
					continue
				}
				used[from] = true
				if addData(from, nd.pin) {
					hasFanout[from] = true
				}
			}
		}
	}
	// Every comb pin needs fan-out: connect orphans forward to a D pin
	// (or a node in the next layer) so no dead-end combinational pins
	// remain.
	for l := 1; l <= spec.CombLayers; l++ {
		for _, nd := range layers[l] {
			if hasFanout[nd.pin] {
				continue
			}
			used := map[model.PinID]bool{}
			// Choose a target in a later layer within the window.
			tgtLayer := l + 1
			cand := layers[tgtLayer]
			if len(cand) == 0 {
				continue
			}
			to, ok := pickSource(tgtLayer, nd.x, used)
			if !ok {
				to = cand[rng.Intn(len(cand))].pin
			}
			if addData(nd.pin, to) {
				hasFanout[nd.pin] = true
			}
		}
	}

	return b.Build()
}

// MustGenerate is Generate that panics on error; for tests, examples and
// benchmarks with known-good specs.
func MustGenerate(spec Spec) *model.Design {
	d, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return d
}
