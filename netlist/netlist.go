// Package netlist models gate-level netlists and elaborates them into
// timing graphs: the front-end flow that produces the "circuit graph
// with updated delay values" the CPPR problem statement assumes.
//
// Elaboration performs the classical static-timing front end:
//
//   - net resolution (one driver, many sinks),
//   - clock-cone extraction (ports marked clock, through single-input
//     buffers, down to flip-flop CK pins — the clock tree),
//   - load computation (pin caps + wire cap),
//   - slew propagation in topological order,
//   - NLDM delay lookup per cell arc (liberty.LUT, bilinear),
//   - Elmore-style lumped wire delays,
//   - early/late derating (a simple OCV model),
//
// and produces a validated model.Design ready for CPPR analysis.
package netlist

import (
	"fmt"
	"sort"

	"fastcppr/liberty"
	"fastcppr/model"
)

// PortDir classifies a top-level port.
type PortDir uint8

const (
	// In is a primary input port.
	In PortDir = iota
	// Out is a primary output port.
	Out
	// Clock is a clock source port (one clock domain per clock port).
	Clock
)

// Port is a top-level port.
type Port struct {
	Name string
	Dir  PortDir
	// Arrival is the input arrival window (ps; In ports).
	Arrival model.Window
	// Required is the output required window (Out ports); Constrained
	// marks whether the output carries a check.
	Required    model.Window
	Constrained bool
	// Slew is the input transition (ps; In and Clock ports).
	Slew float64
}

// Conn connects an instance pin to a net.
type Conn struct {
	Pin string // library pin name
	Net string
}

// Inst is a placed cell instance.
type Inst struct {
	Name  string
	Cell  string
	Conns []Conn
}

// NetRC overrides the wire model for one net.
type NetRC struct {
	Res, Cap float64
}

// Netlist is a parsed gate-level design.
type Netlist struct {
	Name   string
	Period model.Time
	Ports  []Port
	Insts  []Inst
	// RC holds per-net wire overrides.
	RC map[string]NetRC
}

// WireModel derives default net parasitics from fanout when no explicit
// RC is given: Res = R0 + R1*fanout, Cap = C0 + C1*fanout.
type WireModel struct {
	R0, R1 float64 // ohm-like units; delay = R*C in ps when C in fF
	C0, C1 float64 // fF
	// PortSlew is the default transition at input/clock ports (ps).
	PortSlew float64
	// SlewPerRC converts R*C into added transition along a wire.
	SlewPerRC float64
}

// DefaultWireModel returns reasonable defaults for the demo library.
func DefaultWireModel() WireModel {
	return WireModel{R0: 0.08, R1: 0.03, C0: 2.0, C1: 1.2, PortSlew: 25, SlewPerRC: 2.0}
}

// netInfo is a resolved net during elaboration.
type netInfo struct {
	name   string
	driver pinRef
	sinks  []pinRef
	rc     NetRC
}

// pinRef addresses an instance pin or a port during elaboration.
type pinRef struct {
	inst int // -1 for ports
	pin  string
	port int // valid when inst == -1
}

func (n *Netlist) pinName(r pinRef) string {
	if r.inst < 0 {
		return n.Ports[r.port].Name
	}
	return n.Insts[r.inst].Name + "/" + r.pin
}

// Elaborate builds the timing graph for the netlist against lib and wm.
func (n *Netlist) Elaborate(lib *liberty.Library, wm WireModel) (*model.Design, error) {
	if n.Period <= 0 {
		return nil, fmt.Errorf("netlist: period %v must be positive", n.Period)
	}
	// ---- resolve cells and nets ----
	cells := make([]*liberty.Cell, len(n.Insts))
	for i, inst := range n.Insts {
		c, ok := lib.Cell(inst.Cell)
		if !ok {
			return nil, fmt.Errorf("netlist: instance %s uses unknown cell %s", inst.Name, inst.Cell)
		}
		cells[i] = c
		seen := map[string]bool{}
		for _, conn := range inst.Conns {
			if _, ok := c.Pin(conn.Pin); !ok {
				return nil, fmt.Errorf("netlist: instance %s connects unknown pin %s", inst.Name, conn.Pin)
			}
			if seen[conn.Pin] {
				return nil, fmt.Errorf("netlist: instance %s connects pin %s twice", inst.Name, conn.Pin)
			}
			seen[conn.Pin] = true
		}
	}
	nets := map[string]*netInfo{}
	getNet := func(name string) *netInfo {
		ni, ok := nets[name]
		if !ok {
			ni = &netInfo{name: name, driver: pinRef{inst: -2}}
			nets[name] = ni
		}
		return ni
	}
	setDriver := func(ni *netInfo, r pinRef) error {
		if ni.driver.inst != -2 {
			return fmt.Errorf("netlist: net %s has two drivers (%s, %s)",
				ni.name, n.pinName(ni.driver), n.pinName(r))
		}
		ni.driver = r
		return nil
	}
	for pi, p := range n.Ports {
		ni := getNet(p.Name) // ports connect to the same-named net
		switch p.Dir {
		case In, Clock:
			if err := setDriver(ni, pinRef{inst: -1, port: pi}); err != nil {
				return nil, err
			}
		case Out:
			ni.sinks = append(ni.sinks, pinRef{inst: -1, port: pi})
		}
	}
	for ii, inst := range n.Insts {
		for _, conn := range inst.Conns {
			ni := getNet(conn.Net)
			p, _ := cells[ii].Pin(conn.Pin)
			r := pinRef{inst: ii, pin: conn.Pin}
			if p.Dir == liberty.Output {
				if err := setDriver(ni, r); err != nil {
					return nil, err
				}
			} else {
				ni.sinks = append(ni.sinks, r)
			}
		}
	}
	netNames := make([]string, 0, len(nets))
	for name := range nets {
		netNames = append(netNames, name)
	}
	sort.Strings(netNames)
	for _, name := range netNames {
		ni := nets[name]
		if ni.driver.inst == -2 {
			return nil, fmt.Errorf("netlist: net %s has no driver", name)
		}
		if len(ni.sinks) == 0 {
			return nil, fmt.Errorf("netlist: net %s has no sinks", name)
		}
		if rc, ok := n.RC[name]; ok {
			ni.rc = rc
		} else {
			f := float64(len(ni.sinks))
			ni.rc = NetRC{Res: wm.R0 + wm.R1*f, Cap: wm.C0 + wm.C1*f}
		}
		// Deterministic sink order.
		sort.Slice(ni.sinks, func(a, b int) bool {
			return n.pinName(ni.sinks[a]) < n.pinName(ni.sinks[b])
		})
	}
	return n.elaborate(lib, wm, cells, nets, netNames)
}
