package netlist

import (
	"context"
	"strings"
	"testing"

	"fastcppr/cppr"
	"fastcppr/liberty"
	"fastcppr/model"
)

// demoVerilog is the demoNetlist design expressed as structural Verilog.
const demoVerilog = `
// demo design
module demo (clk, in1, out1);
  input clk, in1;
  output out1;
  wire ck1, ck2, q1, q2, d2, din;

  /* clock buffers */
  CLKBUF b1 (.A(clk), .Y(ck1));
  CLKBUF b2 (.A(clk), .Y(ck2));
  DFF r1 (.CK(ck1), .D(din), .Q(q1));
  DFF r2 (.CK(ck2), .D(d2), .Q(q2));
  INV u1 (.A(q1), .Y(d2));
  NAND2 u2 (.A(in1), .B(q2),
            .Y(out1));
  BUF u0 (.A(in1), .Y(din));
endmodule
`

func TestParseVerilog(t *testing.T) {
	n, err := ParseVerilog(strings.NewReader(demoVerilog), "clk", model.Ns(10))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "demo" || len(n.Insts) != 7 || len(n.Ports) != 3 {
		t.Fatalf("parsed %s: %d insts, %d ports", n.Name, len(n.Insts), len(n.Ports))
	}
	if n.Ports[0].Dir != Clock {
		t.Fatal("clk not marked as clock")
	}
	// Multi-line instance connections survive.
	var u2 *Inst
	for i := range n.Insts {
		if n.Insts[i].Name == "u2" {
			u2 = &n.Insts[i]
		}
	}
	if u2 == nil || len(u2.Conns) != 3 {
		t.Fatalf("u2 = %+v", u2)
	}
}

func TestVerilogElaboratesAndTimes(t *testing.T) {
	n, err := ParseVerilog(strings.NewReader(demoVerilog), "clk", model.Ns(10))
	if err != nil {
		t.Fatal(err)
	}
	d, err := n.Elaborate(liberty.Demo(), DefaultWireModel())
	if err != nil {
		t.Fatal(err)
	}
	if d.NumFFs() != 2 || d.Depth != 4 {
		t.Fatalf("FFs=%d D=%d", d.NumFFs(), d.Depth)
	}
	rep, err := cppr.NewTimer(d).Run(context.Background(), cppr.Query{K: 5, Mode: model.Hold})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) == 0 {
		t.Fatal("no paths from Verilog flow")
	}
	// Same structure as the native-format demoNetlist: slacks must
	// match the .nl flow exactly (ports there carry zero arrivals too
	// when re-parsed without windows, so compare against a re-timed
	// variant with zeroed boundary timing).
	n2 := parseDemo(t)
	for i := range n2.Ports {
		n2.Ports[i].Arrival = model.Window{}
		n2.Ports[i].Slew = 0
		n2.Ports[i].Constrained = false
		n2.Ports[i].Required = model.Window{}
	}
	n2.Ports[0].Slew = 0
	d2, err := n2.Elaborate(liberty.Demo(), DefaultWireModel())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := cppr.NewTimer(d2).Run(context.Background(), cppr.Query{K: 5, Mode: model.Hold})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) != len(rep2.Paths) {
		t.Fatalf("%d vs %d paths across formats", len(rep.Paths), len(rep2.Paths))
	}
	for i := range rep.Paths {
		if rep.Paths[i].Slack != rep2.Paths[i].Slack {
			t.Fatalf("path %d: %v vs %v across formats", i, rep.Paths[i].Slack, rep2.Paths[i].Slack)
		}
	}
}

func TestParseVerilogErrors(t *testing.T) {
	cases := []struct{ name, src, clock, errPart string }{
		{"no module", "input a;", "clk", "statement before module"},
		{"missing endmodule", "module m (a); input a, clk;", "clk", "missing endmodule"},
		{"two modules", "module a (); endmodule module b (); endmodule", "clk", "multiple modules"},
		{"bad clock", "module m (a); input a; endmodule", "clk", "clock port"},
		{"positional conn", "module m (clk); input clk; BUF u (n1, n2); endmodule", "clk", "named connections"},
		{"bad conn", "module m (clk); input clk; BUF u (.A n1); endmodule", "clk", "malformed connection"},
		{"empty conns", "module m (clk); input clk; BUF u (); endmodule", "clk", "no connections"},
		{"unnamed module", "module (clk); input clk; endmodule", "clk", "without a name"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseVerilog(strings.NewReader(c.src), c.clock, model.Ns(1))
			if err == nil || !strings.Contains(err.Error(), c.errPart) {
				t.Fatalf("err = %v, want contains %q", err, c.errPart)
			}
		})
	}
}

func TestStripComments(t *testing.T) {
	in := "a // line\nb /* block\nmulti */ c /* unterminated"
	got := stripComments(in)
	if strings.Contains(got, "line") || strings.Contains(got, "block") || strings.Contains(got, "unterminated") {
		t.Fatalf("comments survived: %q", got)
	}
	if !strings.Contains(got, "a") || !strings.Contains(got, "b") || !strings.Contains(got, "c") {
		t.Fatalf("code stripped: %q", got)
	}
}
