package netlist

import (
	"context"
	"testing"

	"fastcppr/cppr"
	"fastcppr/liberty"
	"fastcppr/model"
)

func TestRandomElaborates(t *testing.T) {
	lib := liberty.Demo()
	for seed := int64(0); seed < 6; seed++ {
		n := Random(RandomSpec{Seed: seed, FFs: 12, Gates: 40, ClockLevels: 3, Inputs: 3, Outputs: 2})
		d, err := n.Elaborate(lib, DefaultWireModel())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d.NumFFs() < 12 {
			t.Fatalf("seed %d: %d FFs", seed, d.NumFFs())
		}
		if d.Depth < 3 {
			t.Fatalf("seed %d: clock depth %d", seed, d.Depth)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(RandomSpec{Seed: 5, FFs: 8, Gates: 20})
	b := Random(RandomSpec{Seed: 5, FFs: 8, Gates: 20})
	if len(a.Insts) != len(b.Insts) || len(a.Ports) != len(b.Ports) {
		t.Fatal("nondeterministic synthesis")
	}
	for i := range a.Insts {
		if a.Insts[i].Name != b.Insts[i].Name || a.Insts[i].Cell != b.Insts[i].Cell {
			t.Fatalf("instance %d differs", i)
		}
	}
}

func TestRandomFullFlowOracle(t *testing.T) {
	// The whole front end feeding the whole back end: synthesize,
	// elaborate, and verify the CPPR engine against brute force.
	lib := liberty.Demo()
	for seed := int64(0); seed < 4; seed++ {
		n := Random(RandomSpec{Seed: seed, FFs: 6, Gates: 12, ClockLevels: 2, Inputs: 2, Outputs: 2})
		d, err := n.Elaborate(lib, DefaultWireModel())
		if err != nil {
			t.Fatal(err)
		}
		timer := cppr.NewTimer(d)
		for _, mode := range model.Modes {
			exact, err := timer.Run(context.Background(), cppr.Query{K: 30, Mode: mode, Algorithm: cppr.AlgoBruteForce})
			if err != nil {
				t.Fatal(err)
			}
			ours, err := timer.Run(context.Background(), cppr.Query{K: 30, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if len(exact.Paths) != len(ours.Paths) {
				t.Fatalf("seed %d %v: %d vs %d paths", seed, mode, len(ours.Paths), len(exact.Paths))
			}
			for i := range exact.Paths {
				if exact.Paths[i].Slack != ours.Paths[i].Slack {
					t.Fatalf("seed %d %v path %d: %v vs %v",
						seed, mode, i, ours.Paths[i].Slack, exact.Paths[i].Slack)
				}
			}
		}
	}
}
