package netlist

import (
	"fmt"
	"io"
	"os"
	"strings"

	"fastcppr/model"
)

// ParseVerilog reads a structural (gate-level) Verilog subset — the
// shape the TAU contest benchmarks are distributed in — and returns a
// Netlist. Supported syntax:
//
//	module <name> ( <port> [, <port>]* ) ;
//	input  <name> [, <name>]* ;
//	output <name> [, <name>]* ;
//	wire   <name> [, <name>]* ;
//	<cell> <inst> ( .<PIN>(<net>) [, .<PIN>(<net>)]* ) ;
//	endmodule
//
// Comments (`//` and `/* */`) are stripped. Statements may span lines;
// they are terminated by ';' (or the keywords module/endmodule).
//
// Verilog carries no timing intent, so the clock port and the boundary
// timing are supplied by the caller: clockPort names the input port
// driving the clock tree, and period sets T_clk. Input arrivals and
// output checks default to unconstrained zero windows; apply an
// sdc.Constraints for real boundary timing.
func ParseVerilog(r io.Reader, clockPort string, period model.Time) (*Netlist, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("verilog: %v", err)
	}
	text := stripComments(string(src))

	n := &Netlist{Period: period, RC: map[string]NetRC{}}
	var inputs, outputs []string
	seenModule := false
	ended := false

	for _, stmt := range splitStatements(text) {
		f := strings.Fields(stmt)
		if len(f) == 0 {
			continue
		}
		if !seenModule && f[0] != "module" {
			return nil, fmt.Errorf("verilog: statement before module: %q", compact(stmt))
		}
		switch f[0] {
		case "module":
			if seenModule {
				return nil, fmt.Errorf("verilog: multiple modules (flatten first)")
			}
			seenModule = true
			rest := strings.TrimPrefix(stmt, "module")
			name := rest
			if i := strings.IndexByte(rest, '('); i >= 0 {
				name = rest[:i] // port list is redeclared by input/output
			}
			n.Name = strings.TrimSpace(name)
			if n.Name == "" {
				return nil, fmt.Errorf("verilog: module without a name")
			}
		case "endmodule":
			ended = true
		case "input":
			inputs = append(inputs, splitNames(stmt[len("input"):])...)
		case "output":
			outputs = append(outputs, splitNames(stmt[len("output"):])...)
		case "wire":
			// Wires are implicit in our netlist model; names checked by
			// elaboration.
		default:
			inst, err := parseInstance(stmt)
			if err != nil {
				return nil, err
			}
			n.Insts = append(n.Insts, inst)
		}
	}
	if !seenModule {
		return nil, fmt.Errorf("verilog: no module found")
	}
	if !ended {
		return nil, fmt.Errorf("verilog: missing endmodule")
	}

	foundClock := false
	for _, in := range inputs {
		if in == clockPort {
			n.Ports = append(n.Ports, Port{Name: in, Dir: Clock})
			foundClock = true
			continue
		}
		n.Ports = append(n.Ports, Port{Name: in, Dir: In})
	}
	if !foundClock {
		return nil, fmt.Errorf("verilog: clock port %q is not an input of module %s", clockPort, n.Name)
	}
	for _, out := range outputs {
		n.Ports = append(n.Ports, Port{Name: out, Dir: Out})
	}
	return n, nil
}

// ParseVerilogFile reads the named Verilog file.
func ParseVerilogFile(path, clockPort string, period model.Time) (*Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseVerilog(f, clockPort, period)
}

// parseInstance parses "<cell> <inst> ( .PIN(net), ... )".
func parseInstance(stmt string) (Inst, error) {
	open := strings.IndexByte(stmt, '(')
	if open < 0 {
		return Inst{}, fmt.Errorf("verilog: malformed instance: %q", compact(stmt))
	}
	head := strings.Fields(stmt[:open])
	if len(head) != 2 {
		return Inst{}, fmt.Errorf("verilog: instance header needs cell and name: %q", compact(stmt))
	}
	close := strings.LastIndexByte(stmt, ')')
	if close < open {
		return Inst{}, fmt.Errorf("verilog: unterminated connection list: %q", compact(stmt))
	}
	inst := Inst{Cell: head[0], Name: head[1]}
	for _, conn := range strings.Split(stmt[open+1:close], ",") {
		conn = strings.TrimSpace(conn)
		if conn == "" {
			continue
		}
		if !strings.HasPrefix(conn, ".") {
			return Inst{}, fmt.Errorf("verilog: only named connections are supported: %q", conn)
		}
		po := strings.IndexByte(conn, '(')
		pc := strings.LastIndexByte(conn, ')')
		if po < 0 || pc < po {
			return Inst{}, fmt.Errorf("verilog: malformed connection %q", conn)
		}
		pin := strings.TrimSpace(conn[1:po])
		net := strings.TrimSpace(conn[po+1 : pc])
		if pin == "" || net == "" {
			return Inst{}, fmt.Errorf("verilog: empty pin or net in %q", conn)
		}
		inst.Conns = append(inst.Conns, Conn{Pin: pin, Net: net})
	}
	if len(inst.Conns) == 0 {
		return Inst{}, fmt.Errorf("verilog: instance %s has no connections", inst.Name)
	}
	return inst, nil
}

// stripComments removes // line and /* */ block comments.
func stripComments(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); {
		if strings.HasPrefix(s[i:], "//") {
			for i < len(s) && s[i] != '\n' {
				i++
			}
			continue
		}
		if strings.HasPrefix(s[i:], "/*") {
			end := strings.Index(s[i+2:], "*/")
			if end < 0 {
				return sb.String() // unterminated: drop the rest
			}
			i += 2 + end + 2
			sb.WriteByte(' ')
			continue
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String()
}

// splitStatements splits on ';' while separating the keyword endmodule
// (which carries no semicolon in Verilog) from whatever shares its chunk.
func splitStatements(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		for {
			if i := strings.Index(part, "endmodule"); i >= 0 {
				if head := strings.TrimSpace(part[:i]); head != "" {
					out = append(out, head)
				}
				out = append(out, "endmodule")
				part = strings.TrimSpace(part[i+len("endmodule"):])
				continue
			}
			break
		}
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// compact shortens a statement for error messages.
func compact(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 60 {
		s = s[:60] + "…"
	}
	return s
}

// splitNames splits a comma-separated declaration tail into identifiers.
func splitNames(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
