package netlist

import (
	"strings"
	"testing"

	"fastcppr/model"
)

// FuzzParse asserts the netlist parser never panics: arbitrary input is
// either rejected with an error or produces a structurally consistent
// netlist (every instance has a cell name, every port a direction).
func FuzzParse(f *testing.F) {
	f.Add(demoNetlist)
	f.Add("design d\nperiod 10ns\nclock clk 20\n")
	f.Add("input a 1 2 3\noutput b 4 5\n")
	f.Add("inst u1 INV A=x Y=y\n")
	f.Add("# comment\n\ndesign only-name\n")
	f.Add("design d\nperiod -5ns\n")
	f.Add("inst r DFF CK=ck D=d Q=q\ninst r DFF CK=ck D=d Q=q\n")
	f.Add("design \x00\nperiod 9223372036854775807ns\nclock c 0\n")
	f.Add("inst u1 INV A=\n")
	f.Add(strings.Repeat("inst u INV A=a Y=b\n", 50))

	f.Fuzz(func(t *testing.T, input string) {
		n, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, inst := range n.Insts {
			if inst.Cell == "" {
				t.Fatalf("accepted instance %q with empty cell", inst.Name)
			}
		}
		for _, p := range n.Ports {
			if p.Dir != In && p.Dir != Out && p.Dir != Clock {
				t.Fatalf("accepted port %q with direction %v", p.Name, p.Dir)
			}
		}
	})
}

// FuzzParseVerilog covers the structural-Verilog front end the same way.
func FuzzParseVerilog(f *testing.F) {
	f.Add(demoVerilog)
	f.Add("module m (clk);\ninput clk;\nendmodule\n")
	f.Add("module m (a, b);\ninput a;\noutput b;\nBUF u (.A(a), .Y(b));\nendmodule\n")
	f.Add("// nothing but comments\n/* block */\n")
	f.Add("module unterminated (a\ninput a;\n")
	f.Add("module m ();\nBUF u (.A(), .Y());\nendmodule\n")
	f.Add("module m (x);\nwire w;\nINV u1 (.A(x), .Y(w));\nINV u2 (.A(w), .Y(x));\nendmodule\n")
	f.Add("module \x00 (a);\nendmodule\n")

	f.Fuzz(func(t *testing.T, input string) {
		n, err := ParseVerilog(strings.NewReader(input), "clk", model.Ns(10))
		if err != nil {
			return
		}
		for _, inst := range n.Insts {
			if inst.Cell == "" {
				t.Fatalf("accepted instance %q with empty cell", inst.Name)
			}
		}
	})
}
