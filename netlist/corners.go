package netlist

import (
	"fmt"

	"fastcppr/liberty"
	"fastcppr/model"
)

// CornerLib names one delay corner and the liberty library that
// characterises it — one PVT-specific set of NLDM tables and derates.
type CornerLib struct {
	Name string
	Lib  *liberty.Library
}

// ElaborateCorners elaborates the netlist once per corner and returns a
// multi-corner design: corner 0 carries corners[0]'s delays in the Arcs
// table (the single-corner fast path) and each further corner carries a
// complete per-arc delay table from its own library. The graph itself —
// pins, arcs, clock cone, topological order — comes from the base
// elaboration; every corner elaboration is verified against it arc by
// arc, so libraries that disagree on cell structure (not just delays)
// are rejected rather than silently misbound.
func (n *Netlist) ElaborateCorners(wm WireModel, corners ...CornerLib) (*model.Design, error) {
	if len(corners) == 0 {
		return nil, fmt.Errorf("netlist: ElaborateCorners needs at least one corner")
	}
	if len(corners) > model.MaxCorners {
		return nil, fmt.Errorf("netlist: %d corners exceed the limit of %d", len(corners), model.MaxCorners)
	}
	base, err := n.Elaborate(corners[0].Lib, wm)
	if err != nil {
		return nil, fmt.Errorf("netlist: corner %q: %w", corners[0].Name, err)
	}
	// base is freshly built and unshared, so naming its corner in place
	// is safe.
	base.BaseCornerName = corners[0].Name
	for _, cl := range corners[1:] {
		cd, err := n.Elaborate(cl.Lib, wm)
		if err != nil {
			return nil, fmt.Errorf("netlist: corner %q: %w", cl.Name, err)
		}
		if len(cd.Arcs) != len(base.Arcs) {
			return nil, fmt.Errorf("netlist: corner %q elaborates to %d arcs, base corner %q to %d",
				cl.Name, len(cd.Arcs), base.CornerName(model.BaseCorner), len(base.Arcs))
		}
		table := make([]model.Window, len(base.Arcs))
		for ai := range base.Arcs {
			// Elaboration order is a function of the netlist alone, so
			// arcs line up index for index; verify by endpoint names.
			if cd.PinName(cd.Arcs[ai].From) != base.PinName(base.Arcs[ai].From) ||
				cd.PinName(cd.Arcs[ai].To) != base.PinName(base.Arcs[ai].To) {
				return nil, fmt.Errorf("netlist: corner %q arc %d is %s -> %s, base corner has %s -> %s",
					cl.Name, ai,
					cd.PinName(cd.Arcs[ai].From), cd.PinName(cd.Arcs[ai].To),
					base.PinName(base.Arcs[ai].From), base.PinName(base.Arcs[ai].To))
			}
			table[ai] = cd.Arcs[ai].Delay
		}
		base, _, err = base.WithCorner(cl.Name, table)
		if err != nil {
			return nil, fmt.Errorf("netlist: corner %q: %w", cl.Name, err)
		}
	}
	return base, nil
}
