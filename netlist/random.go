package netlist

import (
	"fmt"
	"math/rand"

	"fastcppr/model"
)

// RandomSpec parameterises Random.
type RandomSpec struct {
	Seed int64
	// FFs is the flip-flop count; Gates the combinational gate count.
	FFs, Gates int
	// ClockLevels is the depth of the synthesized clock buffer chain
	// fan-out tree.
	ClockLevels int
	// Inputs/Outputs are the data port counts.
	Inputs, Outputs int
	Period          model.Time
}

// Random synthesizes a random, structurally valid gate-level netlist on
// the demo library's cell set: a buffered clock tree, a register bank,
// and a layered combinational cloud of INV/BUF/NAND2/NOR2 gates. It is
// the source of arbitrarily large front-end-flow designs for tests,
// benchmarks and examples.
func Random(spec RandomSpec) *Netlist {
	if spec.FFs < 2 {
		spec.FFs = 2
	}
	if spec.Gates < spec.FFs {
		spec.Gates = spec.FFs
	}
	if spec.ClockLevels < 1 {
		spec.ClockLevels = 1
	}
	if spec.Inputs < 1 {
		spec.Inputs = 1
	}
	if spec.Outputs < 1 {
		spec.Outputs = 1
	}
	if spec.Period <= 0 {
		spec.Period = model.Ns(10)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := &Netlist{
		Name:   fmt.Sprintf("rand-%d", spec.Seed),
		Period: spec.Period,
		RC:     map[string]NetRC{},
	}
	n.Ports = append(n.Ports, Port{Name: "clk", Dir: Clock, Slew: 20})
	for i := 0; i < spec.Inputs; i++ {
		n.Ports = append(n.Ports, Port{
			Name:    fmt.Sprintf("in%d", i),
			Dir:     In,
			Arrival: model.Window{Early: model.Time(rng.Intn(100)), Late: model.Time(100 + rng.Intn(200))},
			Slew:    15 + float64(rng.Intn(30)),
		})
	}

	// Clock tree: a chain-of-levels buffer tree; each level doubles
	// until it covers the FFs.
	leaves := []string{"clk"}
	buf := 0
	for lvl := 0; lvl < spec.ClockLevels; lvl++ {
		var next []string
		for _, src := range leaves {
			for c := 0; c < 2; c++ {
				net := fmt.Sprintf("ckn%d", buf)
				n.Insts = append(n.Insts, Inst{
					Name: fmt.Sprintf("cb%d", buf),
					Cell: "CLKBUF",
					Conns: []Conn{
						{Pin: "A", Net: src},
						{Pin: "Y", Net: net},
					},
				})
				next = append(next, net)
				buf++
			}
		}
		leaves = next
	}

	// Registers, distributed over the leaf clock nets.
	qNets := make([]string, spec.FFs)
	dNets := make([]string, spec.FFs)
	for i := 0; i < spec.FFs; i++ {
		qNets[i] = fmt.Sprintf("q%d", i)
		dNets[i] = fmt.Sprintf("d%d", i)
		n.Insts = append(n.Insts, Inst{
			Name: fmt.Sprintf("r%d", i),
			Cell: "DFF",
			Conns: []Conn{
				{Pin: "CK", Net: leaves[i*len(leaves)/spec.FFs]},
				{Pin: "D", Net: dNets[i]},
				{Pin: "Q", Net: qNets[i]},
			},
		})
	}

	// Combinational cloud: gates pick sources among already-driven data
	// nets (layered implicitly by creation order: DAG by construction).
	sources := append([]string{}, qNets...)
	for i := 0; i < spec.Inputs; i++ {
		sources = append(sources, fmt.Sprintf("in%d", i))
	}
	gateNets := make([]string, 0, spec.Gates)
	for g := 0; g < spec.Gates; g++ {
		out := fmt.Sprintf("n%d", g)
		pick := func() string { return sources[rng.Intn(len(sources))] }
		var inst Inst
		switch rng.Intn(4) {
		case 0:
			inst = Inst{Name: fmt.Sprintf("g%d", g), Cell: "INV",
				Conns: []Conn{{Pin: "A", Net: pick()}, {Pin: "Y", Net: out}}}
		case 1:
			inst = Inst{Name: fmt.Sprintf("g%d", g), Cell: "BUF",
				Conns: []Conn{{Pin: "A", Net: pick()}, {Pin: "Y", Net: out}}}
		case 2:
			inst = Inst{Name: fmt.Sprintf("g%d", g), Cell: "NAND2",
				Conns: []Conn{{Pin: "A", Net: pick()}, {Pin: "B", Net: pick2(rng, sources)}, {Pin: "Y", Net: out}}}
		default:
			inst = Inst{Name: fmt.Sprintf("g%d", g), Cell: "NOR2",
				Conns: []Conn{{Pin: "A", Net: pick()}, {Pin: "B", Net: pick2(rng, sources)}, {Pin: "Y", Net: out}}}
		}
		n.Insts = append(n.Insts, inst)
		sources = append(sources, out)
		gateNets = append(gateNets, out)
	}

	// Close the loop: D pins sink from late gate outputs (or Qs),
	// guaranteeing every net a sink and every FF a data source.
	for i := 0; i < spec.FFs; i++ {
		src := gateNets[len(gateNets)-1-rng.Intn(min(len(gateNets), spec.FFs))]
		n.Insts = append(n.Insts, Inst{
			Name:  fmt.Sprintf("fb%d", i),
			Cell:  "BUF",
			Conns: []Conn{{Pin: "A", Net: src}, {Pin: "Y", Net: dNets[i]}},
		})
	}
	// Outputs sink every remaining dangling driven net (unused gate
	// outputs, unread registers, unconsumed inputs).
	driven := make([]string, 0, len(gateNets)+len(qNets)+spec.Inputs)
	driven = append(driven, gateNets...)
	driven = append(driven, qNets...)
	for i := 0; i < spec.Inputs; i++ {
		driven = append(driven, fmt.Sprintf("in%d", i))
	}
	sinkless := map[string]bool{}
	for _, net := range driven {
		sinkless[net] = true
	}
	for _, inst := range n.Insts {
		for _, c := range inst.Conns {
			// "Y" (gates) and "Q" (DFF) are drivers; everything else
			// is a sink.
			if c.Pin != "Y" && c.Pin != "Q" {
				delete(sinkless, c.Net)
			}
		}
	}
	var dangling []string
	for _, net := range driven { // deterministic order
		if sinkless[net] {
			dangling = append(dangling, net)
		}
	}
	// Every dangling net gets its own output port: the first
	// spec.Outputs carry an output check, the rest are unconstrained.
	for outID, net := range dangling {
		port := fmt.Sprintf("out%d", outID)
		p := Port{Name: port, Dir: Out}
		if outID < spec.Outputs {
			p.Constrained = true
			p.Required = model.Window{Early: 0, Late: spec.Period / 2}
		}
		n.Ports = append(n.Ports, p)
		n.Insts = append(n.Insts, Inst{
			Name:  fmt.Sprintf("ob%d", outID),
			Cell:  "BUF",
			Conns: []Conn{{Pin: "A", Net: net}, {Pin: "Y", Net: port}},
		})
	}
	return n
}

func pick2(rng *rand.Rand, sources []string) string {
	return sources[rng.Intn(len(sources))]
}
