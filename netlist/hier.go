package netlist

import (
	"fastcppr/internal/hier"
	"fastcppr/liberty"
	"fastcppr/model"
)

// HierStats summarises a hierarchical elaboration: how the flat timing
// graph's combinational clouds partitioned and how much the macromodel
// extraction compressed them.
type HierStats struct {
	// Blocks is the number of combinational clouds in the flat graph.
	Blocks int
	// Extracted counts distinct macromodel extractions; Reused the
	// instances served by an already-extracted model of equal
	// signature; KeptFlat the blocks left uncompressed (macro no
	// smaller than the cloud).
	Extracted, Reused, KeptFlat int
	// FlatArcs/ReducedArcs are the arc counts before and after.
	FlatArcs, ReducedArcs int
}

// ElaborateHier elaborates the netlist and then compresses the timing
// graph by block macromodel extraction: each combinational cloud is
// replaced by boundary pin-to-pin early/late arcs, with repeated
// clouds of identical structure and delays sharing one extracted
// model. The returned design is value-identical to Elaborate's at
// every top-visible endpoint (FF D pins, output ports) and is what a
// hierarchical flow hands to cppr.NewTimer directly — or callers use
// cppr.NewHierTimer on the flat design to keep flat edit addressing.
func (n *Netlist) ElaborateHier(lib *liberty.Library, wm WireModel) (*model.Design, HierStats, error) {
	d, err := n.Elaborate(lib, wm)
	if err != nil {
		return nil, HierStats{}, err
	}
	h, err := hier.Elaborate(d, hier.Options{})
	if err != nil {
		return nil, HierStats{}, err
	}
	st := HierStats{
		Blocks:      h.Blocks.NumBlocks(),
		Extracted:   h.Extracted,
		Reused:      h.Reused,
		KeptFlat:    h.KeptFlat,
		FlatArcs:    d.NumArcs(),
		ReducedArcs: h.Top.NumArcs(),
	}
	return h.Top, st, nil
}
