package netlist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"fastcppr/model"
)

// Parse reads the line-oriented netlist format:
//
//	design <name>
//	period <time>                      # "10000", "10ns"
//	clock  <port> [<slew-ps>]
//	input  <port> <early> <late> [<slew-ps>]
//	output <port> [<req-early> <req-late>]
//	netrc  <net> <res> <cap>           # wire override
//	inst   <name> <cell> <PIN>=<net> ...
//
// Ports implicitly connect to the net of the same name. '#' starts a
// comment.
func Parse(r io.Reader) (*Netlist, error) {
	n := &Netlist{RC: map[string]NetRC{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	seenPort := map[string]bool{}
	seenInst := map[string]bool{}
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		bad := func(msg string) error {
			return fmt.Errorf("netlist: line %d: %s", lineno, msg)
		}
		parseTime := func(s string) (model.Time, error) {
			t, err := model.ParseTime(s)
			if err != nil {
				return 0, bad(err.Error())
			}
			return t, nil
		}
		parseFloat := func(s string) (float64, error) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return 0, bad("bad number " + s)
			}
			return v, nil
		}
		addPort := func(p Port) error {
			if seenPort[p.Name] {
				return bad("duplicate port " + p.Name)
			}
			seenPort[p.Name] = true
			n.Ports = append(n.Ports, p)
			return nil
		}
		switch f[0] {
		case "design":
			if len(f) != 2 {
				return nil, bad("design needs a name")
			}
			n.Name = f[1]
		case "period":
			if len(f) != 2 {
				return nil, bad("period needs a value")
			}
			t, err := parseTime(f[1])
			if err != nil {
				return nil, err
			}
			n.Period = t
		case "clock":
			if len(f) != 2 && len(f) != 3 {
				return nil, bad("clock needs a port and optional slew")
			}
			p := Port{Name: f[1], Dir: Clock}
			if len(f) == 3 {
				v, err := parseFloat(f[2])
				if err != nil {
					return nil, err
				}
				p.Slew = v
			}
			if err := addPort(p); err != nil {
				return nil, err
			}
		case "input":
			if len(f) != 4 && len(f) != 5 {
				return nil, bad("input needs port, early, late and optional slew")
			}
			p := Port{Name: f[1], Dir: In}
			var err error
			if p.Arrival.Early, err = parseTime(f[2]); err != nil {
				return nil, err
			}
			if p.Arrival.Late, err = parseTime(f[3]); err != nil {
				return nil, err
			}
			if len(f) == 5 {
				if p.Slew, err = parseFloat(f[4]); err != nil {
					return nil, err
				}
			}
			if err := addPort(p); err != nil {
				return nil, err
			}
		case "output":
			if len(f) != 2 && len(f) != 4 {
				return nil, bad("output needs a port and optional required window")
			}
			p := Port{Name: f[1], Dir: Out}
			if len(f) == 4 {
				var err error
				if p.Required.Early, err = parseTime(f[2]); err != nil {
					return nil, err
				}
				if p.Required.Late, err = parseTime(f[3]); err != nil {
					return nil, err
				}
				p.Constrained = true
			}
			if err := addPort(p); err != nil {
				return nil, err
			}
		case "netrc":
			if len(f) != 4 {
				return nil, bad("netrc needs net, res and cap")
			}
			res, err := parseFloat(f[2])
			if err != nil {
				return nil, err
			}
			cap, err := parseFloat(f[3])
			if err != nil {
				return nil, err
			}
			if res < 0 || cap < 0 {
				return nil, bad("negative RC")
			}
			n.RC[f[1]] = NetRC{Res: res, Cap: cap}
		case "inst":
			if len(f) < 4 {
				return nil, bad("inst needs name, cell and connections")
			}
			if seenInst[f[1]] {
				return nil, bad("duplicate instance " + f[1])
			}
			seenInst[f[1]] = true
			inst := Inst{Name: f[1], Cell: f[2]}
			for _, conn := range f[3:] {
				eq := strings.IndexByte(conn, '=')
				if eq <= 0 || eq == len(conn)-1 {
					return nil, bad("bad connection " + conn)
				}
				inst.Conns = append(inst.Conns, Conn{Pin: conn[:eq], Net: conn[eq+1:]})
			}
			n.Insts = append(n.Insts, inst)
		default:
			return nil, bad("unknown statement " + f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %v", err)
	}
	return n, nil
}

// ParseFile parses the named netlist file.
func ParseFile(path string) (*Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Format serialises the netlist in the Parse format.
func Format(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "design %s\nperiod %d\n", n.Name, n.Period.Ps())
	for _, p := range n.Ports {
		switch p.Dir {
		case Clock:
			fmt.Fprintf(bw, "clock %s %g\n", p.Name, p.Slew)
		case In:
			fmt.Fprintf(bw, "input %s %d %d %g\n", p.Name, p.Arrival.Early.Ps(), p.Arrival.Late.Ps(), p.Slew)
		case Out:
			if p.Constrained {
				fmt.Fprintf(bw, "output %s %d %d\n", p.Name, p.Required.Early.Ps(), p.Required.Late.Ps())
			} else {
				fmt.Fprintf(bw, "output %s\n", p.Name)
			}
		}
	}
	rcNames := make([]string, 0, len(n.RC))
	for net := range n.RC {
		rcNames = append(rcNames, net)
	}
	sort.Strings(rcNames)
	for _, net := range rcNames {
		rc := n.RC[net]
		fmt.Fprintf(bw, "netrc %s %g %g\n", net, rc.Res, rc.Cap)
	}
	for _, inst := range n.Insts {
		fmt.Fprintf(bw, "inst %s %s", inst.Name, inst.Cell)
		for _, c := range inst.Conns {
			fmt.Fprintf(bw, " %s=%s", c.Pin, c.Net)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
