package netlist

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"fastcppr/cppr"
	"fastcppr/liberty"
	"fastcppr/model"
)

// demoNetlist is a small complete design on the demo library:
//
//	clk -> b1(CLKBUF) -> r1.CK, and clk -> b2(CLKBUF) -> r2.CK
//	r1.Q -> u1(INV) -> r2.D
//	in1  -> u2(NAND2).A, r2.Q -> u2.B, u2.Y -> out1
const demoNetlist = `
design demo
period 10ns
clock clk 20
input in1 100 150 30
output out1 0 9000
inst b1 CLKBUF A=clk Y=ck1
inst b2 CLKBUF A=clk Y=ck2
inst r1 DFF CK=ck1 D=din Q=q1
inst r2 DFF CK=ck2 D=d2 Q=q2
inst u1 INV A=q1 Y=d2
inst u2 NAND2 A=in1 B=q2 Y=out1
inst u0 BUF A=in1 Y=din
`

func parseDemo(t *testing.T) *Netlist {
	t.Helper()
	n, err := Parse(strings.NewReader(demoNetlist))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestParseDemo(t *testing.T) {
	n := parseDemo(t)
	if n.Name != "demo" || n.Period != model.Ns(10) {
		t.Fatalf("header: %s %v", n.Name, n.Period)
	}
	if len(n.Ports) != 3 || len(n.Insts) != 7 {
		t.Fatalf("%d ports, %d insts", len(n.Ports), len(n.Insts))
	}
	if n.Ports[0].Dir != Clock || n.Ports[0].Slew != 20 {
		t.Fatalf("clock port: %+v", n.Ports[0])
	}
	if !n.Ports[2].Constrained || n.Ports[2].Required.Late != 9000 {
		t.Fatalf("output port: %+v", n.Ports[2])
	}
}

func TestElaborateDemo(t *testing.T) {
	n := parseDemo(t)
	lib := liberty.Demo()
	d, err := n.Elaborate(lib, DefaultWireModel())
	if err != nil {
		t.Fatal(err)
	}
	if d.NumFFs() != 2 {
		t.Fatalf("NumFFs = %d", d.NumFFs())
	}
	// Clock tree: clk (root) -> b1/A -> b1/Y -> r1/CK and the b2 branch.
	// Depth: root 0, bufA 1, bufY 2, CK 3 -> D = 4.
	if d.Depth != 4 {
		t.Fatalf("Depth = %d, want 4", d.Depth)
	}
	ck, ok := d.PinByName("r1/CK")
	if !ok || d.Pins[ck].Kind != model.FFClock {
		t.Fatal("r1/CK missing or mis-kinded")
	}
	ba, _ := d.PinByName("b1/A")
	if d.Pins[ba].Kind != model.ClockBuf {
		t.Fatalf("b1/A kind = %v, want clockbuf", d.Pins[ba].Kind)
	}
	// Every arc must have a sane window.
	for _, a := range d.Arcs {
		if a.Delay.Early < 0 || a.Delay.Early > a.Delay.Late {
			t.Fatalf("bad window %v on %s->%s", a.Delay, d.PinName(a.From), d.PinName(a.To))
		}
	}
	// Derating must make early < late on cell arcs.
	u1a, _ := d.PinByName("u1/A")
	u1y, _ := d.PinByName("u1/Y")
	ai := d.ArcBetween(u1a, u1y)
	if ai < 0 {
		t.Fatal("u1 arc missing")
	}
	if d.Arcs[ai].Delay.Early >= d.Arcs[ai].Delay.Late {
		t.Fatalf("derating missing: %v", d.Arcs[ai].Delay)
	}
}

func TestElaborateDelayMatchesHandComputation(t *testing.T) {
	// Single inverter between two flops; check the INV arc delay against
	// a direct LUT evaluation with the known slew and load.
	n := parseDemo(t)
	lib := liberty.Demo()
	wm := DefaultWireModel()
	d, err := n.Elaborate(lib, wm)
	if err != nil {
		t.Fatal(err)
	}
	// u1 drives net d2 with sinks: r2/D (cap 2.0). Net RC: 1 sink ->
	// res=0.08+0.03, cap=2.0+1.2. Load = cap + pincap = 3.2 + 2.0 = 5.2.
	load := (wm.C0 + wm.C1) + 2.0
	// u1's input slew: r1 CK->Q slew at (CK slew, q1 load) degraded by
	// wire q1. Recompute exactly as elaboration does.
	dff, _ := lib.Cell("DFF")
	inv, _ := lib.Cell("INV")
	// CK net ck1: driver b1/Y, sink r1/CK (cap 1.5): load = 3.2+1.5.
	clkbuf, _ := lib.Cell("CLKBUF")
	// clk net: driver port, sinks b1/A, b2/A (cap 2 each): load = 0.08+...
	clkNetLoad := (wm.C0 + wm.C1*2) + 2 + 2
	clkNetRes := wm.R0 + wm.R1*2
	slewAtBufA := 20 + wm.SlewPerRC*clkNetRes*clkNetLoad
	ck1Load := (wm.C0 + wm.C1) + 1.5
	slewAtBufY := clkbuf.Arcs[0].Slew.Lookup(slewAtBufA, ck1Load)
	ck1Res := wm.R0 + wm.R1
	slewAtCK := slewAtBufY + wm.SlewPerRC*ck1Res*ck1Load
	q1Load := (wm.C0 + wm.C1) + 2.0 // sink u1/A cap 2
	slewAtQ := dff.Arcs[0].Slew.Lookup(slewAtCK, q1Load)
	q1Res := wm.R0 + wm.R1
	slewAtU1A := slewAtQ + wm.SlewPerRC*q1Res*q1Load

	wantLate := model.Time(math.Round(lib.DerateLate * inv.Arcs[0].Delay.Lookup(slewAtU1A, load)))
	u1a, _ := d.PinByName("u1/A")
	u1y, _ := d.PinByName("u1/Y")
	got := d.Arcs[d.ArcBetween(u1a, u1y)].Delay.Late
	if got != wantLate {
		t.Fatalf("u1 late delay = %v, hand-computed %v", got, wantLate)
	}
}

func TestFullFlowCPPR(t *testing.T) {
	// End to end: netlist + library -> design -> exact CPPR report,
	// cross-checked across two independent algorithms.
	n := parseDemo(t)
	d, err := n.Elaborate(liberty.Demo(), DefaultWireModel())
	if err != nil {
		t.Fatal(err)
	}
	timer := cppr.NewTimer(d)
	for _, mode := range model.Modes {
		a, err := timer.Run(context.Background(), cppr.Query{K: 10, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		b, err := timer.Run(context.Background(), cppr.Query{K: 10, Mode: mode, Algorithm: cppr.AlgoBruteForce})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Paths) != len(b.Paths) {
			t.Fatalf("mode %v: %d vs %d paths", mode, len(a.Paths), len(b.Paths))
		}
		for i := range a.Paths {
			if a.Paths[i].Slack != b.Paths[i].Slack {
				t.Fatalf("mode %v path %d: %v vs %v", mode, i, a.Paths[i].Slack, b.Paths[i].Slack)
			}
		}
		if len(a.Paths) == 0 {
			t.Fatalf("mode %v: no paths", mode)
		}
	}
}

func TestNetlistFormatRoundTrip(t *testing.T) {
	n := parseDemo(t)
	n.RC["d2"] = NetRC{Res: 0.5, Cap: 7}
	var buf bytes.Buffer
	if err := Format(&buf, n); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if len(back.Ports) != len(n.Ports) || len(back.Insts) != len(n.Insts) || len(back.RC) != 1 {
		t.Fatal("round trip lost elements")
	}
	// Elaborations must agree exactly.
	d1, err := n.Elaborate(liberty.Demo(), DefaultWireModel())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := back.Elaborate(liberty.Demo(), DefaultWireModel())
	if err != nil {
		t.Fatal(err)
	}
	if d1.NumArcs() != d2.NumArcs() {
		t.Fatal("arc counts differ")
	}
	for i := range d1.Arcs {
		if d1.Arcs[i].Delay != d2.Arcs[i].Delay {
			t.Fatalf("arc %d delay differs", i)
		}
	}
}

func TestElaborateErrors(t *testing.T) {
	lib := liberty.Demo()
	wm := DefaultWireModel()
	cases := []struct{ name, src, errPart string }{
		{"no clock", "design d\nperiod 100\ninput a 0 0\noutput o\ninst u BUF A=a Y=o\n", "no clock port"},
		{"unknown cell", "design d\nperiod 100\nclock clk\ninst u NOPE A=clk Y=x\n", "unknown cell"},
		{"unknown pin", "design d\nperiod 100\nclock clk\ninst u BUF X=clk Y=x\ninst r DFF CK=x D=y Q=y2\n", "unknown pin"},
		{"two drivers", "design d\nperiod 100\nclock clk\ninst u BUF A=clk Y=x\ninst v BUF A=clk Y=x\ninst r DFF CK=x D=q Q=q\n", "two drivers"},
		{"no driver", "design d\nperiod 100\nclock clk\ninst r DFF CK=clk D=floating Q=q\ninst s BUF A=q Y=z\ninst r2 DFF CK=clk D=z Q=q2\n", "no driver"},
		{"clock through nand", "design d\nperiod 100\nclock clk\ninput a 0 0\ninst g NAND2 A=clk B=a Y=gck\ninst r DFF CK=gck D=q Q=q\n", "non-buffer"},
		{"clock to output port", "design d\nperiod 100\nclock clk\noutput o\ninst b BUF A=clk Y=o\n", "reaches output port"},
		{"unclocked ff", "design d\nperiod 100\nclock clk\ninput a 0 0\ninst cb CLKBUF A=clk Y=ckn\ninst r2 DFF CK=ckn D=q Q=q2\ninst r DFF CK=a D=q2 Q=q\n", "not reached by a clock"},
		{"bad period", "design d\nclock clk\ninst r DFF CK=clk D=q Q=q\n", "period"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n, err := Parse(strings.NewReader(c.src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = n.Elaborate(lib, wm)
			if err == nil || !strings.Contains(err.Error(), c.errPart) {
				t.Fatalf("err = %v, want contains %q", err, c.errPart)
			}
		})
	}
}

func TestParseErrorsNetlist(t *testing.T) {
	cases := []struct{ name, src, errPart string }{
		{"unknown stmt", "bogus", "unknown statement"},
		{"bad conn", "inst u BUF A\n", "bad connection"},
		{"dup inst", "inst u BUF A=a Y=b\ninst u BUF A=a Y=c\n", "duplicate instance"},
		{"dup port", "input a 0 0\ninput a 0 0\n", "duplicate port"},
		{"bad netrc", "netrc n -1 2\n", "negative RC"},
		{"bad time", "period zzz\n", "invalid time"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(c.src))
			if err == nil || !strings.Contains(err.Error(), c.errPart) {
				t.Fatalf("err = %v, want contains %q", err, c.errPart)
			}
		})
	}
}
