package netlist

import (
	"fmt"
	"math"
	"sort"

	"fastcppr/liberty"
	"fastcppr/model"
)

// enode is a netlist-level timing node: a port or an instance pin.
type enode struct {
	ref     pinRef
	name    string
	isClock bool // in the clock cone
	slewE   float64
	slewL   float64
}

// earc is a netlist-level timing arc with its computed delay window.
type earc struct {
	from, to int
	delay    model.Window
	isCkq    bool // DFF CK->Q launch arc (created by AddFF, not AddArc)
	// lut references the cell arc for delay computation (nil for wires).
	lut  *liberty.Arc
	wire *netInfo // non-nil for net arcs
}

// elaborate performs clock-cone marking, slew propagation, delay
// calculation and model construction. nets are fully resolved.
func (n *Netlist) elaborate(lib *liberty.Library, wm WireModel, cells []*liberty.Cell,
	nets map[string]*netInfo, netNames []string) (*model.Design, error) {

	if wm.PortSlew <= 0 {
		wm.PortSlew = 25
	}

	// ---- nodes ----
	var nodes []enode
	nodeOf := map[string]int{}
	addNode := func(r pinRef) int {
		name := n.pinName(r)
		if id, ok := nodeOf[name]; ok {
			return id
		}
		id := len(nodes)
		nodes = append(nodes, enode{ref: r, name: name})
		nodeOf[name] = id
		return id
	}
	for pi := range n.Ports {
		addNode(pinRef{inst: -1, port: pi})
	}
	for ii, inst := range n.Insts {
		for _, conn := range inst.Conns {
			addNode(pinRef{inst: ii, pin: conn.Pin})
		}
	}

	// connectedOutputs/Inputs per instance (sorted for determinism).
	connPins := make([][]Conn, len(n.Insts))
	for ii, inst := range n.Insts {
		connPins[ii] = append([]Conn(nil), inst.Conns...)
		sort.Slice(connPins[ii], func(a, b int) bool { return connPins[ii][a].Pin < connPins[ii][b].Pin })
	}

	// loads: total capacitance driven by each net.
	loadOf := func(ni *netInfo) float64 {
		c := ni.rc.Cap
		for _, s := range ni.sinks {
			if s.inst < 0 {
				c += wm.C0 // port pin load approximation
				continue
			}
			p, _ := cells[s.inst].Pin(s.pin)
			c += p.Cap
		}
		return c
	}

	// ---- clock cone ----
	// BFS from clock ports through nets and single-input buffer cells
	// down to sequential CK pins.
	type queueItem struct{ net *netInfo }
	var queue []queueItem
	for pi, p := range n.Ports {
		if p.Dir != Clock {
			continue
		}
		nodes[nodeOf[p.Name]].isClock = true
		ni, ok := nets[n.Ports[pi].Name]
		if !ok {
			return nil, fmt.Errorf("netlist: clock port %s drives nothing", p.Name)
		}
		queue = append(queue, queueItem{net: ni})
	}
	hasClockPort := len(queue) > 0
	if !hasClockPort {
		return nil, fmt.Errorf("netlist: design has no clock port")
	}
	for len(queue) > 0 {
		ni := queue[0].net
		queue = queue[1:]
		for _, s := range ni.sinks {
			if s.inst < 0 {
				return nil, fmt.Errorf("netlist: clock cone reaches output port %s", n.Ports[s.port].Name)
			}
			id := nodeOf[n.pinName(s)]
			if nodes[id].isClock {
				return nil, fmt.Errorf("netlist: reconvergent clock at %s", nodes[id].name)
			}
			nodes[id].isClock = true
			cell := cells[s.inst]
			if cell.IsSequential() {
				p, _ := cell.Pin(s.pin)
				if p.Dir != liberty.ClockPin {
					return nil, fmt.Errorf("netlist: clock reaches non-clock pin %s", nodes[id].name)
				}
				continue // clock-tree leaf
			}
			// Combinational cell in the clock cone: must be a
			// single-input buffer with one connected output.
			var inputs, outputs []Conn
			for _, conn := range connPins[s.inst] {
				p, _ := cell.Pin(conn.Pin)
				if p.Dir == liberty.Output {
					outputs = append(outputs, conn)
				} else {
					inputs = append(inputs, conn)
				}
			}
			if len(inputs) != 1 || len(outputs) != 1 {
				return nil, fmt.Errorf("netlist: clock cone passes through non-buffer %s (%s)",
					n.Insts[s.inst].Name, cell.Name)
			}
			outID := nodeOf[n.Insts[s.inst].Name+"/"+outputs[0].Pin]
			if nodes[outID].isClock {
				return nil, fmt.Errorf("netlist: reconvergent clock at %s", nodes[outID].name)
			}
			nodes[outID].isClock = true
			queue = append(queue, queueItem{net: nets[outputs[0].Net]})
		}
	}

	// ---- arcs (structure first; delays after slew propagation) ----
	var arcs []earc
	for _, name := range netNames {
		ni := nets[name]
		from := nodeOf[n.pinName(ni.driver)]
		for _, s := range ni.sinks {
			arcs = append(arcs, earc{from: from, to: nodeOf[n.pinName(s)], wire: ni})
		}
	}
	for ii := range n.Insts {
		cell := cells[ii]
		for ai := range cell.Arcs {
			a := &cell.Arcs[ai]
			fromName := n.Insts[ii].Name + "/" + a.From
			toName := n.Insts[ii].Name + "/" + a.To
			fi, okF := nodeOf[fromName]
			ti, okT := nodeOf[toName]
			if !okF || !okT {
				continue // unconnected arc endpoints carry no timing
			}
			fromPin, _ := cell.Pin(a.From)
			arcs = append(arcs, earc{
				from:  fi,
				to:    ti,
				lut:   a,
				isCkq: cell.IsSequential() && fromPin.Dir == liberty.ClockPin,
			})
		}
	}

	// ---- topological order over netlist nodes ----
	indeg := make([]int, len(nodes))
	fanout := make([][]int, len(nodes)) // arc indices
	for ai, a := range arcs {
		indeg[a.to]++
		fanout[a.from] = append(fanout[a.from], ai)
	}
	order := make([]int, 0, len(nodes))
	for id := range nodes {
		if indeg[id] == 0 {
			order = append(order, id)
		}
	}
	for head := 0; head < len(order); head++ {
		for _, ai := range fanout[order[head]] {
			indeg[arcs[ai].to]--
			if indeg[arcs[ai].to] == 0 {
				order = append(order, arcs[ai].to)
			}
		}
	}
	if len(order) != len(nodes) {
		return nil, fmt.Errorf("netlist: combinational loop detected")
	}

	// ---- loads per net and per driving node (computed once) ----
	netLoad := make(map[*netInfo]float64, len(netNames))
	outLoad := make([]float64, len(nodes))
	for _, name := range netNames {
		ni := nets[name]
		l := loadOf(ni)
		netLoad[ni] = l
		outLoad[nodeOf[n.pinName(ni.driver)]] = l
	}

	// ---- slew propagation (early = fastest transition, late = slowest) ----
	for i := range nodes {
		nodes[i].slewE = math.Inf(1)
		nodes[i].slewL = math.Inf(-1)
	}
	for pi, p := range n.Ports {
		if p.Dir == Out {
			continue
		}
		s := p.Slew
		if s <= 0 {
			s = wm.PortSlew
		}
		id := nodeOf[n.Ports[pi].Name]
		nodes[id].slewE, nodes[id].slewL = s, s
	}
	for _, id := range order {
		nd := &nodes[id]
		if math.IsInf(nd.slewE, 1) {
			continue // no transition source reaches this node
		}
		for _, ai := range fanout[id] {
			a := &arcs[ai]
			to := &nodes[a.to]
			var se, sl float64
			if a.wire != nil {
				deg := wm.SlewPerRC * a.wire.rc.Res * netLoad[a.wire]
				se, sl = nd.slewE+deg, nd.slewL+deg
			} else {
				load := outLoad[a.to]
				se = a.lut.Slew.Lookup(nd.slewE, load)
				sl = a.lut.Slew.Lookup(nd.slewL, load)
			}
			if se < to.slewE {
				to.slewE = se
			}
			if sl > to.slewL {
				to.slewL = sl
			}
		}
	}

	// ---- delays ----
	round := func(v float64) model.Time {
		if v < 0 {
			return 0
		}
		return model.Time(math.Round(v))
	}
	for ai := range arcs {
		a := &arcs[ai]
		from := &nodes[a.from]
		var early, late float64
		if a.wire != nil {
			nominal := a.wire.rc.Res * (a.wire.rc.Cap/2 + netLoad[a.wire])
			early, late = nominal*lib.DerateEarly, nominal*lib.DerateLate
		} else {
			load := outLoad[a.to]
			if math.IsInf(from.slewE, 1) {
				// Unreached input: keep a nominal midpoint delay so the
				// graph stays well-formed.
				mid := a.lut.Delay.Lookup(wm.PortSlew, load)
				early, late = mid*lib.DerateEarly, mid*lib.DerateLate
			} else {
				early = lib.DerateEarly * a.lut.Delay.Lookup(from.slewE, load)
				late = lib.DerateLate * a.lut.Delay.Lookup(from.slewL, load)
			}
		}
		a.delay = model.Window{Early: round(early), Late: round(late)}
		if a.delay.Early > a.delay.Late {
			a.delay.Early = a.delay.Late
		}
	}

	// ---- build the model ----
	b := model.NewBuilder(n.Name, n.Period)
	pinID := make([]model.PinID, len(nodes))
	for i := range pinID {
		pinID[i] = model.NoPin
	}
	for _, p := range n.Ports {
		id := nodeOf[p.Name]
		switch p.Dir {
		case Clock:
			pinID[id] = b.AddClockRoot(p.Name)
		case In:
			pinID[id] = b.AddPI(p.Name, p.Arrival)
		case Out:
			if p.Constrained {
				pinID[id] = b.AddPOConstrained(p.Name, p.Required)
			} else {
				pinID[id] = b.AddPO(p.Name)
			}
		}
	}
	// Sequential instances become model FFs; their CK/D/Q nodes map to
	// the FF's canonical pins.
	for ii, inst := range n.Insts {
		cell := cells[ii]
		if !cell.IsSequential() {
			continue
		}
		var ck, dp, qp string
		for _, conn := range connPins[ii] {
			p, _ := cell.Pin(conn.Pin)
			switch p.Dir {
			case liberty.ClockPin:
				ck = conn.Pin
			case liberty.Input:
				dp = conn.Pin
			case liberty.Output:
				qp = conn.Pin
			}
		}
		if ck == "" || dp == "" || qp == "" {
			return nil, fmt.Errorf("netlist: flip-flop %s must connect clock, data and output pins", inst.Name)
		}
		if !nodes[nodeOf[inst.Name+"/"+ck]].isClock {
			return nil, fmt.Errorf("netlist: flip-flop %s clock pin is not reached by a clock", inst.Name)
		}
		// CK->Q window from the computed arc delays.
		var ckq model.Window
		found := false
		for _, a := range arcs {
			if a.isCkq && nodes[a.from].name == inst.Name+"/"+ck {
				ckq = a.delay
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("netlist: flip-flop %s has no CK->Q arc", inst.Name)
		}
		ffp := b.AddFF(inst.Name, round(cell.Setup), round(cell.Hold), ckq)
		pinID[nodeOf[inst.Name+"/"+ck]] = ffp.Clock
		pinID[nodeOf[inst.Name+"/"+dp]] = ffp.D
		pinID[nodeOf[inst.Name+"/"+qp]] = ffp.Q
	}
	// Remaining nodes: clock buffers or combinational pins.
	for id := range nodes {
		if pinID[id] != model.NoPin {
			continue
		}
		if nodes[id].isClock {
			pinID[id] = b.AddClockBuf(nodes[id].name)
		} else {
			pinID[id] = b.AddComb(nodes[id].name)
		}
	}
	for _, a := range arcs {
		if a.isCkq {
			continue // created by AddFF
		}
		b.AddArc(pinID[a.from], pinID[a.to], a.delay)
	}
	return b.Build()
}
