package netlist

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"fastcppr/cppr"
	"fastcppr/liberty"
	"fastcppr/model"
)

// repeatedNetlist builds n identical INV-chain clouds between DFF
// pairs on a shared clock buffer: the repeated-instance case the
// signature cache exists for.
func repeatedNetlist(n int) string {
	var sb strings.Builder
	sb.WriteString("design rep\nperiod 10ns\nclock clk 20\n")
	sb.WriteString("inst cb CLKBUF A=clk Y=ck\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "inst r%d DFF CK=ck D=ri%d Q=q%d\n", i, i, i)
		fmt.Fprintf(&sb, "inst u%da INV A=q%d Y=m%d\n", i, i, i)
		fmt.Fprintf(&sb, "inst u%db INV A=m%d Y=d%d\n", i, i, i)
		fmt.Fprintf(&sb, "inst s%d DFF CK=ck D=d%d Q=so%d\n", i, i, i)
		fmt.Fprintf(&sb, "inst w%d BUF A=so%d Y=ro%d\n", i, i, i)
		fmt.Fprintf(&sb, "inst v%d BUF A=in%d Y=ri%d\n", i, i, i)
		fmt.Fprintf(&sb, "input in%d 100 150 30\n", i)
		fmt.Fprintf(&sb, "output out%d 0 9000\n", i)
		fmt.Fprintf(&sb, "inst x%d BUF A=ro%d Y=out%d\n", i, i, i)
	}
	return sb.String()
}

func TestElaborateHierExactAndReused(t *testing.T) {
	n, err := Parse(strings.NewReader(repeatedNetlist(4)))
	if err != nil {
		t.Fatal(err)
	}
	lib := liberty.Demo()
	flat, err := n.Elaborate(lib, DefaultWireModel())
	if err != nil {
		t.Fatal(err)
	}
	red, st, err := n.ElaborateHier(lib, DefaultWireModel())
	if err != nil {
		t.Fatal(err)
	}
	if st.Extracted == 0 || st.Reused == 0 {
		t.Fatalf("no extraction/reuse on identical clouds: %+v", st)
	}
	if st.ReducedArcs >= st.FlatArcs {
		t.Fatalf("no compression: %+v", st)
	}
	if red.NumFFs() != flat.NumFFs() || len(red.POs) != len(flat.POs) {
		t.Fatal("reduced design lost endpoints")
	}

	ctx := context.Background()
	ft, rt := cppr.NewTimer(flat), cppr.NewTimer(red)
	for _, mode := range model.Modes {
		q := cppr.Query{K: 1, Mode: mode}
		fs, err := ft.PostCPPRSlacksCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := rt.PostCPPRSlacksCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(fs) != len(rs) {
			t.Fatalf("%v: %d vs %d endpoints", mode, len(fs), len(rs))
		}
		for i := range fs {
			if fs[i] != rs[i] {
				t.Fatalf("%v endpoint %d: flat %+v vs hier %+v", mode, i, fs[i], rs[i])
			}
		}
	}
}
