package sdc

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// signoffSrc states every directive of the dialect at least once (the
// signoff knob pack plus the historical statements), in a deliberately
// scrambled order so the round-trip tests prove Emit's canonical
// ordering rather than echoing the input.
const signoffSrc = `
set_output_delay out0 -early 100ps -late 400ps
set_crpr_mode same_transition
set_clock_uncertainty -hold 25ps
set_timing_derate -early 0.94 -late 1.07
create_clock -period 5ns
set_false_path -to ff7
set_clock_uncertainty -setup 60ps
set_input_delay in0 -early 0ps -late 250ps
set_ideal_clock
set_false_path -from ff3
`

func TestParseSignoffDirectives(t *testing.T) {
	c, err := ParseString(signoffSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !c.HasUncertainty[model.Setup] || c.Uncertainty[model.Setup] != 60 {
		t.Errorf("setup uncertainty = %v (stated %v)", c.Uncertainty[model.Setup], c.HasUncertainty[model.Setup])
	}
	if !c.HasUncertainty[model.Hold] || c.Uncertainty[model.Hold] != 25 {
		t.Errorf("hold uncertainty = %v (stated %v)", c.Uncertainty[model.Hold], c.HasUncertainty[model.Hold])
	}
	if c.DerateEarly != 0.94 || c.DerateLate != 1.07 {
		t.Errorf("derates = %g/%g", c.DerateEarly, c.DerateLate)
	}
	if !c.Ideal {
		t.Error("ideal clock lost")
	}
	if !c.CRPRSet || c.CRPR != model.CRPRSameTransition {
		t.Errorf("crpr = %v (set %v)", c.CRPR, c.CRPRSet)
	}
}

// TestParseUncertaintyClearsAndDefaults pins the stated-zero semantics:
// an explicit zero clears a design-level uncertainty for that mode
// (HasUncertainty true), while an unstated mode keeps the design value.
func TestParseUncertaintyClearsAndDefaults(t *testing.T) {
	c, err := ParseString("set_clock_uncertainty -setup 0ps\n")
	if err != nil {
		t.Fatal(err)
	}
	if !c.HasUncertainty[model.Setup] || c.Uncertainty[model.Setup] != 0 {
		t.Errorf("stated zero: %v/%v", c.Uncertainty[model.Setup], c.HasUncertainty[model.Setup])
	}
	if c.HasUncertainty[model.Hold] {
		t.Error("unstated hold mode marked as stated")
	}
}

// TestEmitRoundTrip checks Parse∘Emit is the identity on the parsed
// constraint set, and that Emit is deterministic across re-parses.
func TestEmitRoundTrip(t *testing.T) {
	c, err := ParseString(signoffSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := c.Emit()
	c2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parsing emitted text:\n%s\n%v", text, err)
	}
	if !reflect.DeepEqual(c, c2) {
		t.Fatalf("round trip changed the constraints:\n%#v\n%#v", c, c2)
	}
	if text2 := c2.Emit(); text != text2 {
		t.Fatalf("emit not deterministic:\n%s\n---\n%s", text, text2)
	}
}

// TestApplyReEmitEquivalence is the parse→Apply→re-emit leg: applying
// the original constraints and applying their re-parsed emission must
// rebuild identical designs, so the emitted text is a faithful record
// of what was applied.
func TestApplyReEmitEquivalence(t *testing.T) {
	// Drop the ideal-clock knob from one variant so both the derate-only
	// and the ideal+derate transforms are exercised.
	for _, src := range []string{signoffSrc, strings.ReplaceAll(signoffSrc, "set_ideal_clock\n", "")} {
		c, err := ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := ParseString(c.Emit())
		if err != nil {
			t.Fatal(err)
		}
		d := gen.MustGenerate(gen.DivergentClock(7))
		d1, f1, err := c.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		d2, f2, err := c2.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(d1, d2) {
			t.Fatal("original and re-emitted constraints rebuilt different designs")
		}
		if !reflect.DeepEqual(f1, f2) {
			t.Fatal("original and re-emitted constraints resolved different filters")
		}
	}
}

// TestParseSignoffErrors rejects malformed signoff directives with the
// typed *SyntaxError carrying the right line number.
func TestParseSignoffErrors(t *testing.T) {
	cases := []struct{ name, src, errPart string }{
		{"uncertainty no mode", "set_clock_uncertainty 60ps", "set_clock_uncertainty -setup|-hold"},
		{"uncertainty bad mode", "set_clock_uncertainty -slew 60ps", "-setup or -hold"},
		{"uncertainty negative", "set_clock_uncertainty -setup -5ps", "non-negative"},
		{"uncertainty bad time", "set_clock_uncertainty -hold wat", "wat"},
		{"derate zero", "set_timing_derate -early 0", "out of range"},
		{"derate negative", "set_timing_derate -late -1.1", "out of range"},
		{"derate nan", "set_timing_derate -early NaN", "out of range"},
		{"derate inf", "set_timing_derate -late +Inf", "out of range"},
		{"derate not a number", "set_timing_derate -early fast", "invalid derate factor"},
		{"derate crossed", "set_timing_derate -early 1.2 -late 0.9", "early derate 1.2 exceeds late derate 0.9"},
		// A lone -late below 1 crosses the implicit early factor of 1.
		{"derate lone late below one", "set_timing_derate -late 0.9", "early derate 1 exceeds late derate 0.9"},
		{"derate crossed across lines", "set_timing_derate -early 0.95\nset_timing_derate -late 0.9", "exceeds late derate"},
		{"derate missing factor", "set_timing_derate -early", "set_timing_derate"},
		{"propagated with args", "set_propagated_clock clk", "takes no arguments"},
		{"ideal with args", "set_ideal_clock clk", "takes no arguments"},
		{"ideal then propagated", "set_ideal_clock\nset_propagated_clock", "conflicts"},
		{"propagated then ideal", "set_propagated_clock\nset_ideal_clock", "conflicts"},
		{"crpr bad mode", "set_crpr_mode sometimes", "sometimes"},
		{"crpr missing mode", "set_crpr_mode", "same_pin|same_transition"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("err = %v, want contains %q", err, tc.errPart)
			}
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("err = %T, want *SyntaxError", err)
			}
			wantLine := 1 + strings.Count(tc.src, "\n")
			if se.Line != wantLine {
				t.Fatalf("line = %d, want %d", se.Line, wantLine)
			}
		})
	}
}
