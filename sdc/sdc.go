// Package sdc applies design constraints in a small SDC-like dialect to
// a timing analysis: clock period, input/output delays, false-path
// exceptions, and the signoff knob pack (clock uncertainty, global
// timing derates, ideal vs. propagated clocks, CRPR mode). It is the
// constraint layer a signoff flow drives the timer with.
//
// Supported statements (one per line, '#' comments):
//
//	create_clock -period <time>
//	set_input_delay  <pin> -early <time> -late <time>
//	set_output_delay <pin> -early <time> -late <time>
//	set_false_path -from <ff-or-pi>
//	set_false_path -to <ff>
//	set_clock_uncertainty -setup <time>
//	set_clock_uncertainty -hold <time>
//	set_timing_derate -early <factor> [-late <factor>]
//	set_timing_derate -late <factor>
//	set_propagated_clock
//	set_ideal_clock
//	set_crpr_mode same_pin|same_transition
//
// create_clock, the io delays, uncertainty, derates and the clock model
// are applied by rebuilding the design view (they change the timing
// graph's boundary conditions or its delay tables); false paths become
// a Filter the engines consult, and the CRPR mode becomes the timer's
// default Query.CRPR. False paths are supported at -from / -to
// granularity: those prune candidate generation soundly (the pruned set
// is endpoint- or source-defined, so top-k bounds are unaffected).
// Pairwise -from X -to Y exceptions would require unbounded candidate
// generation and are intentionally not supported.
//
// Timing derates scale arc delays (clock tree, data arcs and CK->Q
// launch arcs alike; values round to whole picoseconds), not the
// constraint windows of set_input_delay/set_output_delay — those are
// externally imposed times, not circuit delays. set_ideal_clock zeroes
// every clock-tree arc delay (zero skew, hence zero CPPR credit);
// set_propagated_clock restates the default.
package sdc

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"fastcppr/model"
)

// SyntaxError is the typed rejection a malformed statement parses to.
// Its message matches the historical "sdc: line N: ..." format.
type SyntaxError struct {
	// Line is the 1-based line number of the offending statement.
	Line int
	// Msg describes the problem.
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sdc: line %d: %s", e.Line, e.Msg)
}

// Constraints is a parsed constraint set.
type Constraints struct {
	// Period overrides the design clock period when non-zero.
	Period model.Time
	// InputDelay/OutputDelay override PI arrival and PO required
	// windows, keyed by pin name.
	InputDelay  map[string]model.Window
	OutputDelay map[string]model.Window
	// FalseFrom holds launch points (FF instance names or PI pin
	// names) whose paths are excluded; FalseTo holds excluded capture
	// FF instance names.
	FalseFrom map[string]bool
	FalseTo   map[string]bool
	// Uncertainty holds the per-mode clock uncertainty margins;
	// HasUncertainty marks which modes were stated (a stated zero
	// clears a design-level uncertainty, an unstated mode keeps it).
	Uncertainty    [2]model.Time
	HasUncertainty [2]bool
	// DerateEarly/DerateLate are the global timing derate factors;
	// zero means unstated (factor 1). The effective early factor must
	// not exceed the effective late factor.
	DerateEarly float64
	DerateLate  float64
	// Ideal selects the ideal-clock model (zero clock-tree delays).
	Ideal bool
	// CRPR is the CRPR mode the timer should default to; meaningful
	// only when CRPRSet (same_pin is also the unstated default).
	CRPR    model.CRPRMode
	CRPRSet bool
}

// New returns an empty constraint set.
func New() *Constraints {
	return &Constraints{
		InputDelay:  map[string]model.Window{},
		OutputDelay: map[string]model.Window{},
		FalseFrom:   map[string]bool{},
		FalseTo:     map[string]bool{},
	}
}

// HasDerate reports whether either derate factor was stated.
func (c *Constraints) HasDerate() bool { return c.DerateEarly != 0 || c.DerateLate != 0 }

// derates returns the effective early/late factors (1 where unstated).
func (c *Constraints) derates() (float64, float64) {
	e, l := c.DerateEarly, c.DerateLate
	if e == 0 {
		e = 1
	}
	if l == 0 {
		l = 1
	}
	return e, l
}

// parseDerate validates one derate factor argument.
func parseDerate(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid derate factor %q", s)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
		return 0, fmt.Errorf("derate factor %v out of range (want a finite factor > 0)", s)
	}
	return f, nil
}

// Parse reads the SDC-like dialect.
func Parse(r io.Reader) (*Constraints, error) {
	c := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	sawPropagated, sawIdeal := false, false
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		bad := func(msg string) error {
			return &SyntaxError{Line: lineno, Msg: msg}
		}
		switch f[0] {
		case "create_clock":
			if len(f) != 3 || f[1] != "-period" {
				return nil, bad("create_clock -period <time>")
			}
			t, err := model.ParseTime(f[2])
			if err != nil {
				return nil, bad(err.Error())
			}
			if t <= 0 {
				return nil, bad("period must be positive")
			}
			c.Period = t
		case "set_input_delay", "set_output_delay":
			if len(f) != 6 || f[2] != "-early" || f[4] != "-late" {
				return nil, bad(f[0] + " <pin> -early <t> -late <t>")
			}
			early, err := model.ParseTime(f[3])
			if err != nil {
				return nil, bad(err.Error())
			}
			late, err := model.ParseTime(f[5])
			if err != nil {
				return nil, bad(err.Error())
			}
			if early > late {
				return nil, bad("early exceeds late")
			}
			w := model.Window{Early: early, Late: late}
			if f[0] == "set_input_delay" {
				c.InputDelay[f[1]] = w
			} else {
				c.OutputDelay[f[1]] = w
			}
		case "set_false_path":
			if len(f) != 3 {
				return nil, bad("set_false_path -from <x> | -to <x>")
			}
			switch f[1] {
			case "-from":
				c.FalseFrom[f[2]] = true
			case "-to":
				c.FalseTo[f[2]] = true
			default:
				return nil, bad("set_false_path needs -from or -to")
			}
		case "set_clock_uncertainty":
			if len(f) != 3 {
				return nil, bad("set_clock_uncertainty -setup|-hold <time>")
			}
			var mode model.Mode
			switch f[1] {
			case "-setup":
				mode = model.Setup
			case "-hold":
				mode = model.Hold
			default:
				return nil, bad("set_clock_uncertainty needs -setup or -hold")
			}
			t, err := model.ParseTime(f[2])
			if err != nil {
				return nil, bad(err.Error())
			}
			if t < 0 {
				return nil, bad("uncertainty must be non-negative")
			}
			c.Uncertainty[mode] = t
			c.HasUncertainty[mode] = true
		case "set_timing_derate":
			ok := false
			switch {
			case len(f) == 3 && (f[1] == "-early" || f[1] == "-late"):
				ok = true
			case len(f) == 5 && f[1] == "-early" && f[3] == "-late":
				ok = true
			}
			if !ok {
				return nil, bad("set_timing_derate -early <factor> and/or -late <factor>")
			}
			for i := 1; i+1 < len(f); i += 2 {
				v, err := parseDerate(f[i+1])
				if err != nil {
					return nil, bad(err.Error())
				}
				if f[i] == "-early" {
					c.DerateEarly = v
				} else {
					c.DerateLate = v
				}
			}
			if e, l := c.derates(); e > l {
				return nil, bad(fmt.Sprintf("early derate %g exceeds late derate %g", e, l))
			}
		case "set_propagated_clock":
			if len(f) != 1 {
				return nil, bad("set_propagated_clock takes no arguments")
			}
			if sawIdeal {
				return nil, bad("set_propagated_clock conflicts with earlier set_ideal_clock")
			}
			sawPropagated = true
		case "set_ideal_clock":
			if len(f) != 1 {
				return nil, bad("set_ideal_clock takes no arguments")
			}
			if sawPropagated {
				return nil, bad("set_ideal_clock conflicts with earlier set_propagated_clock")
			}
			sawIdeal = true
			c.Ideal = true
		case "set_crpr_mode":
			if len(f) != 2 {
				return nil, bad("set_crpr_mode same_pin|same_transition")
			}
			m, err := model.ParseCRPRMode(f[1])
			if err != nil {
				return nil, bad(err.Error())
			}
			c.CRPR = m
			c.CRPRSet = true
		default:
			return nil, bad("unknown statement " + f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sdc: %v", err)
	}
	return c, nil
}

// ParseString parses constraints held in a string.
func ParseString(s string) (*Constraints, error) {
	return Parse(strings.NewReader(s))
}

// ParseFile parses the named constraints file.
func ParseFile(path string) (*Constraints, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// emitTime renders a time as the picosecond literal ParseTime accepts.
func emitTime(t model.Time) string { return strconv.FormatInt(t.Ps(), 10) + "ps" }

// Emit renders the constraint set back into the dialect Parse reads.
// Parse(Emit(c)) reproduces c (round-trip identity); output is
// deterministic (statements in a fixed order, names sorted).
func (c *Constraints) Emit() string {
	var sb strings.Builder
	if c.Period != 0 {
		fmt.Fprintf(&sb, "create_clock -period %s\n", emitTime(c.Period))
	}
	if c.Ideal {
		sb.WriteString("set_ideal_clock\n")
	}
	if c.CRPRSet {
		fmt.Fprintf(&sb, "set_crpr_mode %s\n", c.CRPR)
	}
	if c.DerateEarly != 0 {
		fmt.Fprintf(&sb, "set_timing_derate -early %s\n", strconv.FormatFloat(c.DerateEarly, 'g', -1, 64))
	}
	if c.DerateLate != 0 {
		fmt.Fprintf(&sb, "set_timing_derate -late %s\n", strconv.FormatFloat(c.DerateLate, 'g', -1, 64))
	}
	for _, mode := range model.Modes {
		if c.HasUncertainty[mode] {
			fmt.Fprintf(&sb, "set_clock_uncertainty -%s %s\n", mode, emitTime(c.Uncertainty[mode]))
		}
	}
	sortedKeys := func(m map[string]model.Window) []string {
		ks := make([]string, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return ks
	}
	for _, name := range sortedKeys(c.InputDelay) {
		w := c.InputDelay[name]
		fmt.Fprintf(&sb, "set_input_delay %s -early %s -late %s\n", name, emitTime(w.Early), emitTime(w.Late))
	}
	for _, name := range sortedKeys(c.OutputDelay) {
		w := c.OutputDelay[name]
		fmt.Fprintf(&sb, "set_output_delay %s -early %s -late %s\n", name, emitTime(w.Early), emitTime(w.Late))
	}
	sortedSet := func(m map[string]bool) []string {
		ks := make([]string, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return ks
	}
	for _, name := range sortedSet(c.FalseFrom) {
		fmt.Fprintf(&sb, "set_false_path -from %s\n", name)
	}
	for _, name := range sortedSet(c.FalseTo) {
		fmt.Fprintf(&sb, "set_false_path -to %s\n", name)
	}
	return sb.String()
}

// Filter is the false-path exclusion view the timing engines consult:
// pre-resolved to design IDs.
type Filter struct {
	// FromFF[i] / ToFF[i] exclude launches/captures at FF i.
	FromFF, ToFF []bool
	// FromPin excludes PI launch pins.
	FromPin map[model.PinID]bool
}

// Empty reports whether the filter excludes nothing.
func (f *Filter) Empty() bool {
	if f == nil {
		return true
	}
	for _, b := range f.FromFF {
		if b {
			return false
		}
	}
	for _, b := range f.ToFF {
		if b {
			return false
		}
	}
	return len(f.FromPin) == 0
}

// transform returns the constraint set's per-arc delay transform: ideal
// clocks zero clock-tree arcs, then derates scale (rounding to whole
// picoseconds). isClockTreeArc marks arcs with both endpoints inside
// the clock tree (CK->Q launch arcs are not clock-tree arcs). The
// transform preserves 0 <= Early <= Late because the effective early
// factor never exceeds the late factor.
func (c *Constraints) transform() func(w model.Window, isClockTreeArc bool) model.Window {
	de, dl := c.derates()
	ideal, derate := c.Ideal, c.HasDerate()
	return func(w model.Window, isClockTreeArc bool) model.Window {
		if ideal && isClockTreeArc {
			return model.Window{}
		}
		if !derate {
			return w
		}
		return model.Window{
			Early: model.Time(math.Round(float64(w.Early) * de)),
			Late:  model.Time(math.Round(float64(w.Late) * dl)),
		}
	}
}

// Apply rebuilds the design under the constraint set (period, io
// delays, uncertainty, derates and the clock model require
// re-validation) and resolves the false-path names into a Filter.
// Extra delay corners are carried over with the same derate/ideal
// transform applied to each corner's table. Names in false paths must
// be FF instance names or PI pin names; unknown names are an error
// (catching typos beats silently timing a path the designer excluded).
func (c *Constraints) Apply(d *model.Design) (*model.Design, *Filter, error) {
	period := d.Period
	if c.Period != 0 {
		period = c.Period
	}
	b := model.NewBuilder(d.Name, period)
	xf := c.transform()

	// Rebuild pins; arcs are re-resolved by name (FF pins keep their
	// canonical <inst>/CK|D|Q names via AddFF).
	piOf := map[model.PinID]int{}
	for i, p := range d.PIs {
		piOf[p] = i
	}
	poOf := map[model.PinID]int{}
	for i, p := range d.POs {
		poOf[p] = i
	}
	usedInput := map[string]bool{}
	usedOutput := map[string]bool{}
	for id, p := range d.Pins {
		pid := model.PinID(id)
		switch p.Kind {
		case model.ClockRoot:
			b.AddClockRoot(p.Name)
		case model.ClockBuf:
			b.AddClockBuf(p.Name)
		case model.Comb:
			b.AddComb(p.Name)
		case model.PI:
			w := d.PIArrival[piOf[pid]]
			if ov, ok := c.InputDelay[p.Name]; ok {
				w = ov
				usedInput[p.Name] = true
			}
			b.AddPI(p.Name, w)
		case model.PO:
			i := poOf[pid]
			req, constrained := d.PORequired[i], d.POConstrained[i]
			if ov, ok := c.OutputDelay[p.Name]; ok {
				req, constrained = ov, true
				usedOutput[p.Name] = true
			}
			if constrained {
				b.AddPOConstrained(p.Name, req)
			} else {
				b.AddPO(p.Name)
			}
		case model.FFClock:
			// FF pins are created by AddFF below, in FF order; skip.
		case model.FFData, model.FFOutput:
		}
	}
	for name := range c.InputDelay {
		if !usedInput[name] {
			return nil, nil, fmt.Errorf("sdc: set_input_delay on unknown input %q", name)
		}
	}
	for name := range c.OutputDelay {
		if !usedOutput[name] {
			return nil, nil, fmt.Errorf("sdc: set_output_delay on unknown output %q", name)
		}
	}
	for _, ff := range d.FFs {
		// CK->Q launch arcs are circuit delays, so derates scale them;
		// they leave the clock tree, so ideal-clock zeroing does not apply.
		ckq := xf(d.Arcs[d.FanIn(ff.Output)[0]].Delay, false)
		b.AddFF(ff.Name, ff.Setup, ff.Hold, ckq)
	}
	for mode := range d.Uncertainty {
		u := d.Uncertainty[mode]
		if c.HasUncertainty[mode] {
			u = c.Uncertainty[mode]
		}
		b.SetClockUncertainty(model.Mode(mode), u)
	}
	for _, a := range d.Arcs {
		// Skip the CK->Q arcs AddFF already created.
		if d.Pins[a.From].Kind == model.FFClock && d.Pins[a.To].Kind == model.FFOutput {
			continue
		}
		from, _ := b.Pin(d.PinName(a.From))
		to, _ := b.Pin(d.PinName(a.To))
		clockArc := d.Pins[a.From].Kind.IsClock() && d.Pins[a.To].Kind.IsClock()
		delay := xf(a.Delay, clockArc)
		if a.Invert {
			b.AddInvertingArc(from, to, delay)
		} else {
			b.AddArc(from, to, delay)
		}
	}
	nd, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("sdc: rebuilding design: %v", err)
	}

	// Carry extra delay corners across the rebuild, applying the same
	// per-arc transform to each corner's table (WithCornersFrom hands
	// back freshly allocated tables, so editing in place is safe).
	nd, err = model.WithCornersFrom(d, nd)
	if err != nil {
		return nil, nil, fmt.Errorf("sdc: carrying corners: %v", err)
	}
	if c.Ideal || c.HasDerate() {
		for ci := range nd.ExtraCorners {
			table := nd.ExtraCorners[ci].Delay
			for ai := range table {
				a := &nd.Arcs[ai]
				clockArc := nd.Pins[a.From].Kind.IsClock() && nd.Pins[a.To].Kind.IsClock()
				table[ai] = xf(table[ai], clockArc)
			}
		}
	}

	// Resolve false paths against the new design.
	filt := &Filter{
		FromFF:  make([]bool, nd.NumFFs()),
		ToFF:    make([]bool, nd.NumFFs()),
		FromPin: map[model.PinID]bool{},
	}
	ffByName := map[string]int{}
	for i, ff := range nd.FFs {
		ffByName[ff.Name] = i
	}
	for name := range c.FalseFrom {
		if i, ok := ffByName[name]; ok {
			filt.FromFF[i] = true
			continue
		}
		if id, ok := nd.PinByName(name); ok && nd.Pins[id].Kind == model.PI {
			filt.FromPin[id] = true
			continue
		}
		return nil, nil, fmt.Errorf("sdc: set_false_path -from unknown object %q", name)
	}
	for name := range c.FalseTo {
		i, ok := ffByName[name]
		if !ok {
			return nil, nil, fmt.Errorf("sdc: set_false_path -to unknown FF %q", name)
		}
		filt.ToFF[i] = true
	}
	return nd, filt, nil
}
