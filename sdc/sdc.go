// Package sdc applies design constraints in a small SDC-like dialect to
// a timing analysis: clock period, input/output delays, and false-path
// exceptions. It is the constraint layer a signoff flow drives the timer
// with.
//
// Supported statements (one per line, '#' comments):
//
//	create_clock -period <time>
//	set_input_delay  <pin> -early <time> -late <time>
//	set_output_delay <pin> -early <time> -late <time>
//	set_false_path -from <ff-or-pi>
//	set_false_path -to <ff>
//
// create_clock and the io delays are applied by rebuilding the design
// view (they change the timing graph's boundary conditions); false
// paths become a Filter the engines consult. False paths are supported
// at -from / -to granularity: those prune candidate generation soundly
// (the pruned set is endpoint- or source-defined, so top-k bounds are
// unaffected). Pairwise -from X -to Y exceptions would require
// unbounded candidate generation and are intentionally not supported.
package sdc

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"fastcppr/model"
)

// Constraints is a parsed constraint set.
type Constraints struct {
	// Period overrides the design clock period when non-zero.
	Period model.Time
	// InputDelay/OutputDelay override PI arrival and PO required
	// windows, keyed by pin name.
	InputDelay  map[string]model.Window
	OutputDelay map[string]model.Window
	// FalseFrom holds launch points (FF instance names or PI pin
	// names) whose paths are excluded; FalseTo holds excluded capture
	// FF instance names.
	FalseFrom map[string]bool
	FalseTo   map[string]bool
}

// New returns an empty constraint set.
func New() *Constraints {
	return &Constraints{
		InputDelay:  map[string]model.Window{},
		OutputDelay: map[string]model.Window{},
		FalseFrom:   map[string]bool{},
		FalseTo:     map[string]bool{},
	}
}

// Parse reads the SDC-like dialect.
func Parse(r io.Reader) (*Constraints, error) {
	c := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		bad := func(msg string) error {
			return fmt.Errorf("sdc: line %d: %s", lineno, msg)
		}
		switch f[0] {
		case "create_clock":
			if len(f) != 3 || f[1] != "-period" {
				return nil, bad("create_clock -period <time>")
			}
			t, err := model.ParseTime(f[2])
			if err != nil {
				return nil, bad(err.Error())
			}
			if t <= 0 {
				return nil, bad("period must be positive")
			}
			c.Period = t
		case "set_input_delay", "set_output_delay":
			if len(f) != 6 || f[2] != "-early" || f[4] != "-late" {
				return nil, bad(f[0] + " <pin> -early <t> -late <t>")
			}
			early, err := model.ParseTime(f[3])
			if err != nil {
				return nil, bad(err.Error())
			}
			late, err := model.ParseTime(f[5])
			if err != nil {
				return nil, bad(err.Error())
			}
			if early > late {
				return nil, bad("early exceeds late")
			}
			w := model.Window{Early: early, Late: late}
			if f[0] == "set_input_delay" {
				c.InputDelay[f[1]] = w
			} else {
				c.OutputDelay[f[1]] = w
			}
		case "set_false_path":
			if len(f) != 3 {
				return nil, bad("set_false_path -from <x> | -to <x>")
			}
			switch f[1] {
			case "-from":
				c.FalseFrom[f[2]] = true
			case "-to":
				c.FalseTo[f[2]] = true
			default:
				return nil, bad("set_false_path needs -from or -to")
			}
		default:
			return nil, bad("unknown statement " + f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sdc: %v", err)
	}
	return c, nil
}

// ParseFile parses the named constraints file.
func ParseFile(path string) (*Constraints, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Filter is the false-path exclusion view the timing engines consult:
// pre-resolved to design IDs.
type Filter struct {
	// FromFF[i] / ToFF[i] exclude launches/captures at FF i.
	FromFF, ToFF []bool
	// FromPin excludes PI launch pins.
	FromPin map[model.PinID]bool
}

// Empty reports whether the filter excludes nothing.
func (f *Filter) Empty() bool {
	if f == nil {
		return true
	}
	for _, b := range f.FromFF {
		if b {
			return false
		}
	}
	for _, b := range f.ToFF {
		if b {
			return false
		}
	}
	return len(f.FromPin) == 0
}

// Apply rebuilds the design under the constraint set (period and io
// delays require re-validation) and resolves the false-path names into
// a Filter. Names in false paths must be FF instance names or PI pin
// names; unknown names are an error (catching typos beats silently
// timing a path the designer excluded).
func (c *Constraints) Apply(d *model.Design) (*model.Design, *Filter, error) {
	period := d.Period
	if c.Period != 0 {
		period = c.Period
	}
	b := model.NewBuilder(d.Name, period)

	// Rebuild pins; arcs are re-resolved by name (FF pins keep their
	// canonical <inst>/CK|D|Q names via AddFF).
	piOf := map[model.PinID]int{}
	for i, p := range d.PIs {
		piOf[p] = i
	}
	poOf := map[model.PinID]int{}
	for i, p := range d.POs {
		poOf[p] = i
	}
	usedInput := map[string]bool{}
	usedOutput := map[string]bool{}
	for id, p := range d.Pins {
		pid := model.PinID(id)
		switch p.Kind {
		case model.ClockRoot:
			b.AddClockRoot(p.Name)
		case model.ClockBuf:
			b.AddClockBuf(p.Name)
		case model.Comb:
			b.AddComb(p.Name)
		case model.PI:
			w := d.PIArrival[piOf[pid]]
			if ov, ok := c.InputDelay[p.Name]; ok {
				w = ov
				usedInput[p.Name] = true
			}
			b.AddPI(p.Name, w)
		case model.PO:
			i := poOf[pid]
			req, constrained := d.PORequired[i], d.POConstrained[i]
			if ov, ok := c.OutputDelay[p.Name]; ok {
				req, constrained = ov, true
				usedOutput[p.Name] = true
			}
			if constrained {
				b.AddPOConstrained(p.Name, req)
			} else {
				b.AddPO(p.Name)
			}
		case model.FFClock:
			// FF pins are created by AddFF below, in FF order; skip.
		case model.FFData, model.FFOutput:
		}
	}
	for name := range c.InputDelay {
		if !usedInput[name] {
			return nil, nil, fmt.Errorf("sdc: set_input_delay on unknown input %q", name)
		}
	}
	for name := range c.OutputDelay {
		if !usedOutput[name] {
			return nil, nil, fmt.Errorf("sdc: set_output_delay on unknown output %q", name)
		}
	}
	for _, ff := range d.FFs {
		ckq := d.Arcs[d.FanIn(ff.Output)[0]].Delay
		b.AddFF(ff.Name, ff.Setup, ff.Hold, ckq)
	}
	for _, a := range d.Arcs {
		// Skip the CK->Q arcs AddFF already created.
		if d.Pins[a.From].Kind == model.FFClock && d.Pins[a.To].Kind == model.FFOutput {
			continue
		}
		from, _ := b.Pin(d.PinName(a.From))
		to, _ := b.Pin(d.PinName(a.To))
		b.AddArc(from, to, a.Delay)
	}
	nd, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("sdc: rebuilding design: %v", err)
	}

	// Resolve false paths against the new design.
	filt := &Filter{
		FromFF:  make([]bool, nd.NumFFs()),
		ToFF:    make([]bool, nd.NumFFs()),
		FromPin: map[model.PinID]bool{},
	}
	ffByName := map[string]int{}
	for i, ff := range nd.FFs {
		ffByName[ff.Name] = i
	}
	for name := range c.FalseFrom {
		if i, ok := ffByName[name]; ok {
			filt.FromFF[i] = true
			continue
		}
		if id, ok := nd.PinByName(name); ok && nd.Pins[id].Kind == model.PI {
			filt.FromPin[id] = true
			continue
		}
		return nil, nil, fmt.Errorf("sdc: set_false_path -from unknown object %q", name)
	}
	for name := range c.FalseTo {
		i, ok := ffByName[name]
		if !ok {
			return nil, nil, fmt.Errorf("sdc: set_false_path -to unknown FF %q", name)
		}
		filt.ToFF[i] = true
	}
	return nd, filt, nil
}
