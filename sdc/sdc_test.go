package sdc

import (
	"strings"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

func TestParse(t *testing.T) {
	const src = `
# constraints
create_clock -period 5ns
set_input_delay in0 -early 100 -late 250
set_output_delay out0 -early 0 -late 4ns
set_false_path -from ff3
set_false_path -from in1
set_false_path -to ff7
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Period != model.Ns(5) {
		t.Errorf("Period = %v", c.Period)
	}
	if w := c.InputDelay["in0"]; w != (model.Window{Early: 100, Late: 250}) {
		t.Errorf("InputDelay = %v", w)
	}
	if w := c.OutputDelay["out0"]; w != (model.Window{Early: 0, Late: 4000}) {
		t.Errorf("OutputDelay = %v", w)
	}
	if !c.FalseFrom["ff3"] || !c.FalseFrom["in1"] || !c.FalseTo["ff7"] {
		t.Error("false paths lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, errPart string }{
		{"unknown", "bogus", "unknown statement"},
		{"bad clock", "create_clock 5", "create_clock -period"},
		{"zero period", "create_clock -period 0", "positive"},
		{"bad delay", "set_input_delay x -early 5 -late 2", "early exceeds late"},
		{"bad fp", "set_false_path -through x", "-from or -to"},
		{"short fp", "set_false_path -from", "set_false_path"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(c.src))
			if err == nil || !strings.Contains(err.Error(), c.errPart) {
				t.Fatalf("err = %v, want contains %q", err, c.errPart)
			}
		})
	}
}

func TestApplyOverrides(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(1))
	c := New()
	c.Period = model.Ns(42)
	c.InputDelay[d.PinName(d.PIs[0])] = model.Window{Early: 7, Late: 9}
	c.OutputDelay[d.PinName(d.POs[0])] = model.Window{Early: 1, Late: 2}
	c.FalseFrom[d.FFs[2].Name] = true
	c.FalseTo[d.FFs[3].Name] = true
	nd, filt, err := c.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Period != model.Ns(42) {
		t.Errorf("period = %v", nd.Period)
	}
	if nd.PIArrival[0] != (model.Window{Early: 7, Late: 9}) {
		t.Errorf("PI arrival = %v", nd.PIArrival[0])
	}
	if !nd.POConstrained[0] || nd.PORequired[0] != (model.Window{Early: 1, Late: 2}) {
		t.Errorf("PO required = %v/%v", nd.PORequired[0], nd.POConstrained[0])
	}
	if !filt.FromFF[2] || !filt.ToFF[3] || filt.FromFF[0] || filt.Empty() {
		t.Errorf("filter = %+v", filt)
	}
	// Structure preserved.
	if nd.NumPins() != d.NumPins() || nd.NumArcs() != d.NumArcs() || nd.NumFFs() != d.NumFFs() {
		t.Error("rebuild changed element counts")
	}
	if nd.Depth != d.Depth {
		t.Error("rebuild changed clock depth")
	}
}

func TestApplyUnknownNames(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(1))
	c := New()
	c.FalseFrom["nope"] = true
	if _, _, err := c.Apply(d); err == nil || !strings.Contains(err.Error(), "unknown object") {
		t.Fatalf("err = %v", err)
	}
	c = New()
	c.FalseTo["nope"] = true
	if _, _, err := c.Apply(d); err == nil || !strings.Contains(err.Error(), "unknown FF") {
		t.Fatalf("err = %v", err)
	}
	c = New()
	c.InputDelay["nope"] = model.Window{}
	if _, _, err := c.Apply(d); err == nil || !strings.Contains(err.Error(), "unknown input") {
		t.Fatalf("err = %v", err)
	}
	c = New()
	c.OutputDelay["nope"] = model.Window{}
	if _, _, err := c.Apply(d); err == nil || !strings.Contains(err.Error(), "unknown output") {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyFilter(t *testing.T) {
	var f *Filter
	if !f.Empty() {
		t.Error("nil filter not empty")
	}
	d := gen.MustGenerate(gen.SmallOracle(2))
	_, filt, err := New().Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if !filt.Empty() {
		t.Error("empty constraints produced a filter")
	}
}

func TestApplyIdentityPreservesTiming(t *testing.T) {
	// Applying empty constraints must not change any path slack.
	d := gen.MustGenerate(gen.SmallOracle(3))
	nd, _, err := New().Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, ff := range d.FFs {
		oldCK, _ := d.PinByName(ff.Name + "/CK")
		newCK, _ := nd.PinByName(ff.Name + "/CK")
		if d.ClockArrival(oldCK) != nd.ClockArrival(newCK) {
			t.Fatalf("clock arrival changed for %s", ff.Name)
		}
	}
}
