package sdc

import (
	"strings"
	"testing"
)

// FuzzParse asserts the constraints parser never panics: arbitrary input
// is either rejected or yields constraints with sane invariants (no
// negative period, initialised maps).
func FuzzParse(f *testing.F) {
	f.Add("create_clock -period 5ns\n")
	f.Add("set_input_delay in0 -early 100 -late 250\nset_output_delay out0 -early 0 -late 4ns\n")
	f.Add("set_false_path -from ff3\nset_false_path -to ff7\n")
	f.Add("set_false_path -from a -to b\n")
	f.Add("# comment only\n\n")
	f.Add("create_clock -period -1ns\n")
	f.Add("create_clock -period\n")
	f.Add("set_input_delay\n")
	f.Add("set_false_path\n")
	f.Add("unknown_command arg1 arg2\n")
	f.Add("create_clock -period 9223372036854775807\n")
	f.Add("set_input_delay \x00 -early 1 -late 2\n")
	f.Add(strings.Repeat("set_false_path -from x\n", 60))

	f.Fuzz(func(t *testing.T, input string) {
		c, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if c == nil {
			t.Fatal("nil constraints with nil error")
		}
		if c.Period < 0 {
			t.Fatalf("accepted negative period %v", c.Period)
		}
	})
}
