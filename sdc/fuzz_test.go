package sdc

import (
	"strings"
	"testing"
)

// FuzzParse asserts the constraints parser never panics: arbitrary input
// is either rejected or yields constraints with sane invariants (no
// negative period, initialised maps).
func FuzzParse(f *testing.F) {
	f.Add("create_clock -period 5ns\n")
	f.Add("set_input_delay in0 -early 100 -late 250\nset_output_delay out0 -early 0 -late 4ns\n")
	f.Add("set_false_path -from ff3\nset_false_path -to ff7\n")
	f.Add("set_false_path -from a -to b\n")
	f.Add("# comment only\n\n")
	f.Add("create_clock -period -1ns\n")
	f.Add("create_clock -period\n")
	f.Add("set_input_delay\n")
	f.Add("set_false_path\n")
	f.Add("unknown_command arg1 arg2\n")
	f.Add("create_clock -period 9223372036854775807\n")
	f.Add("set_input_delay \x00 -early 1 -late 2\n")
	f.Add(strings.Repeat("set_false_path -from x\n", 60))
	f.Add("set_clock_uncertainty -setup 60ps\nset_clock_uncertainty -hold 25ps\n")
	f.Add("set_clock_uncertainty -setup -60ps\n")
	f.Add("set_timing_derate -early 0.94 -late 1.07\n")
	f.Add("set_timing_derate -late 1e308\nset_timing_derate -early NaN\n")
	f.Add("set_timing_derate -early 1.2 -late 0.9\n")
	f.Add("set_propagated_clock\nset_ideal_clock\n")
	f.Add("set_ideal_clock\n")
	f.Add("set_crpr_mode same_transition\nset_crpr_mode same_pin\n")
	f.Add("set_crpr_mode\n")

	f.Fuzz(func(t *testing.T, input string) {
		c, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if c == nil {
			t.Fatal("nil constraints with nil error")
		}
		if c.Period < 0 {
			t.Fatalf("accepted negative period %v", c.Period)
		}
		if c.Uncertainty[0] < 0 || c.Uncertainty[1] < 0 {
			t.Fatalf("accepted negative uncertainty %v", c.Uncertainty)
		}
		if e, l := c.derates(); e > l || e <= 0 || l <= 0 {
			t.Fatalf("accepted invalid derates %g/%g", e, l)
		}
		if _, err := ParseString(c.Emit()); err != nil {
			t.Fatalf("emitted text does not re-parse: %v\n%s", err, c.Emit())
		}
	})
}
