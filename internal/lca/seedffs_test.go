package lca

import (
	"sync"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

func TestLevelFFsMatchesDepthScan(t *testing.T) {
	// LevelFFs(d) must be exactly the FFs whose clock-tree depth exceeds
	// d — the seeding predicate of the grouped jobs — in ascending FF
	// order, which is what keeps seed-list iteration tie-break-identical
	// to the dense full scan.
	for seed := int64(0); seed < 4; seed++ {
		d := gen.MustGenerate(gen.Medium(seed))
		tree := New(d)
		maxDepth := 0
		for i := range d.FFs {
			if dep := tree.Depth(d.FFs[i].Clock); dep > maxDepth {
				maxDepth = dep
			}
		}
		for dep := 0; dep <= maxDepth; dep++ {
			var want []model.FFID
			for i := range d.FFs {
				if tree.Depth(d.FFs[i].Clock) > dep {
					want = append(want, model.FFID(i))
				}
			}
			got := tree.LevelFFs(dep)
			if len(got) != len(want) {
				t.Fatalf("seed %d level %d: %d seeds, want %d", seed, dep, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("seed %d level %d: seeds[%d] = %d, want %d (order must be ascending)",
						seed, dep, j, got[j], want[j])
				}
			}
		}
		// Beyond the deepest FF no seeds remain.
		if got := tree.LevelFFs(maxDepth); len(got) != 0 {
			t.Fatalf("seed %d: LevelFFs(maxDepth=%d) = %d FFs, want 0", seed, maxDepth, len(got))
		}
	}
}

func TestLevelActiveMatchesPairwiseLCAScan(t *testing.T) {
	// LevelActive(d) must be true exactly when some FF pair (including
	// pairs of distinct FFs sharing a clock pin) has its clock LCA at
	// depth d AND both clocks strictly below the cut — the engine's
	// level-d candidate universe. Brute force over all pairs.
	for seed := int64(0); seed < 4; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		tree := New(d)
		maxDepth := 0
		for i := range d.FFs {
			if dep := tree.Depth(d.FFs[i].Clock); dep > maxDepth {
				maxDepth = dep
			}
		}
		want := make([]bool, maxDepth+1)
		for i := range d.FFs {
			for j := i + 1; j < len(d.FFs); j++ {
				u, v := d.FFs[i].Clock, d.FFs[j].Clock
				if !tree.SameDomain(u, v) {
					continue
				}
				if lca := tree.LCA(u, v); lca != model.NoPin {
					dep := tree.Depth(lca)
					// Pairs whose LCA is one of the clock pins themselves
					// are outside every level job's universe (that FF sits
					// at, not below, the cut).
					if dep < tree.Depth(u) && dep < tree.Depth(v) {
						want[dep] = true
					}
				}
			}
		}
		for dep := 0; dep <= maxDepth; dep++ {
			if got := tree.LevelActive(dep); got != want[dep] {
				t.Errorf("seed %d: LevelActive(%d) = %v, want %v", seed, dep, got, want[dep])
			}
		}
		if tree.LevelActive(-1) || tree.LevelActive(maxDepth+1) {
			t.Errorf("seed %d: out-of-range depths must be inactive", seed)
		}
	}
}

func TestAllFFsIsEveryFFAscending(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(1))
	tree := New(d)
	all := tree.AllFFs()
	if len(all) != len(d.FFs) {
		t.Fatalf("AllFFs len = %d, want %d", len(all), len(d.FFs))
	}
	for i, fi := range all {
		if fi != model.FFID(i) {
			t.Fatalf("AllFFs[%d] = %d, want %d", i, fi, i)
		}
	}
}

func TestLevelFFsSharedAcrossDerivedTrees(t *testing.T) {
	// The seed lists are topology-only, so corner Trees derived from one
	// base must share the same backing slices (built once per shape).
	d := gen.MustGenerate(gen.Medium(2))
	d2, _, err := d.WithDerivedCorner("slow", func(_ int, w model.Window) model.Window {
		return model.Window{Early: w.Early * 2, Late: w.Late * 2}
	})
	if err != nil {
		t.Fatal(err)
	}
	base := New(d)
	derived := base.Derive(d2.View(1))
	if !base.SharesShape(derived) {
		t.Fatal("derived tree does not share shape")
	}
	a, b := base.LevelFFs(0), derived.LevelFFs(0)
	if len(a) == 0 {
		t.Fatal("level 0 should have seeds")
	}
	if &a[0] != &b[0] {
		t.Fatal("LevelFFs not shared across derived trees (rebuilt per corner)")
	}
}

func TestLevelFFsConcurrentAccess(t *testing.T) {
	// Level jobs run on parallel workers; the lazy build must be safe
	// under concurrent first access (exercised with -race).
	d := gen.MustGenerate(gen.Medium(6))
	tree := New(d)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for dep := 0; dep < 4; dep++ {
				_ = tree.LevelFFs(dep)
				_ = tree.AllFFs()
			}
		}()
	}
	wg.Wait()
}
