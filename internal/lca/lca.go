// Package lca provides the clock-tree query structures used by the CPPR
// timers: per-node arrival windows and credits, ancestor-at-depth queries
// f_d(u), and lowest-common-ancestor queries via two interchangeable
// implementations (binary lifting and Euler-tour RMQ).
//
// A Tree is split into two layers. The shape — compaction, parent/depth
// arrays, domain ids, binary-lifting jump tables, the Euler tour with
// its RMQ sparse table, and the per-level grouping f_{d+1} — depends
// only on the clock-tree topology and is built once; every delay corner
// of a design shares it (Derive). The overlay — arrival windows, CPPR
// credits, and the per-level credit(f_d) tables — depends on the
// corner's clock-arc delays and is recomputed per corner in O(#clock
// pins).
//
// All structures are immutable once built (lazily built tables are
// sync.Once-guarded), so they are safe for concurrent use by the
// parallel per-level jobs.
package lca

import (
	"fmt"
	"math/bits"
	"sync"

	"fastcppr/internal/sta"
	"fastcppr/model"
)

// shape holds the delay-independent clock-tree structures: everything a
// Tree needs except arrivals and credits. One shape is shared by the
// Trees of every delay corner of a design.
type shape struct {
	// idx maps PinID -> compact clock-pin index (-1 for non-clock pins).
	idx []int32
	// pins maps compact index -> PinID, in topological (parent-first)
	// order.
	pins []model.PinID
	// parent/depth are over compact indices; parent[root] = -1.
	parent []int32
	depth  []int32
	// treeID[i] is the compact index of i's domain root; LCA queries
	// across different roots have no answer (no shared clock path).
	treeID []int32
	// parity[i] is the inversion parity of pins[i] (Design.ClockParity
	// compacted): the number of inverting clock arcs on the root path,
	// mod 2. parityMixed reports whether some domain holds FF clock
	// pins of both parities — the only case where same_transition CRPR
	// differs from same_pin. crossParLT is the lazily built
	// cross-parity job tables: group = 2*treeID + parity (distinct for
	// different domains and for different parities within a domain),
	// credit offset 0.
	parity       []uint8
	parityMixed  bool
	crossParOnce sync.Once
	crossParLT   LevelTables

	// up[j][i] is the 2^j-th ancestor of i (compact), or -1.
	up [][]int32

	// Euler tour for O(1) LCA: tour of compact nodes, first visit
	// positions, and a sparse table of minimum-depth positions.
	tourNode  []int32
	tourFirst []int32
	sparse    [][]int32

	maxDepth int32

	// group[dep] is the per-level node-grouping table f_{d+1} (the
	// topology half of FillLevel), computed once on first use and shared
	// by every corner's Tree. zeroCredit is the all-zero credit table of
	// the cross-domain job, likewise corner-independent.
	groupOnce  []sync.Once
	group      [][]int32
	zeroCredit []model.Time

	// ffDepth[i] is the clock-tree depth of FF i's CK pin. seedFFs[dep]
	// is the lazily built per-level seed list: the FFs whose clock sits
	// strictly below the level-dep cut (depth > dep), in ascending FF
	// order. Level-dep candidate jobs seed and scan exactly this list, so
	// their per-FF work is O(#seeds at dep) instead of O(#FFs). Both are
	// topology-only, so every corner's Tree shares them. allFFs is the
	// degenerate "every FF" list the ungrouped and cross-domain jobs use.
	ffDepth  []int32
	seedOnce []sync.Once
	seedFFs  [][]model.FFID
	allFFs   []model.FFID

	// activeLevel[dep] is true iff some FF pair has its clock LCA at
	// exactly depth dep — equivalently, some node at depth dep has two
	// or more children whose subtrees contain FF clock pins. A level cut
	// with activeLevel false generates zero candidates (every pair
	// visible under the cut diverges strictly above it and is handled,
	// with its exact credit, at its own LCA depth), so the engine skips
	// the whole job. Real clock trees are branching crowns feeding long
	// buffer chains, so most depths are inactive chain links.
	activeLevel []bool

	// cone[dep] is the lazily built level->seed-cone table: every pin
	// forward-reachable from the level-dep job's seed Q pins (the
	// LevelFFs list). allCone / piCone / launchCone are the analogous
	// footprints of the whole-FF-universe jobs (self-loop, cross-domain),
	// the PI job, and the PO job (FF Q pins plus PIs). Cones depend only
	// on the data-graph topology, which every corner view shares, so one
	// build serves all corners; the incremental job caches tag entries
	// with these sets and invalidate on edit-journal intersection.
	coneOnce   []sync.Once
	cone       []*model.PinSet
	allOnce    sync.Once
	allCone    *model.PinSet
	piOnce     sync.Once
	piCone     *model.PinSet
	launchOnce sync.Once
	launchCone *model.PinSet
}

// Tree holds the preprocessed clock tree of a design at one delay
// corner: the shared shape plus this corner's arrival/credit overlay.
type Tree struct {
	d *model.Design
	*shape

	// arrival[i] is the early/late clock arrival window of pins[i];
	// credit[i] = arrival[i].Width() (the CPPR credit).
	arrival []model.Window
	credit  []model.Time

	// Shared per-level tables: the FillLevel/FillCrossDomain results
	// depend only on the tree, so they are computed once on first use
	// (per level) and then served read-only to every query against this
	// Tree — concurrent and batched queries share them instead of
	// refilling per-worker scratch. The Group half aliases the shape's
	// corner-independent table; only CreditAtD is per-corner storage.
	levelOnce []sync.Once
	levelLT   []LevelTables
	crossOnce sync.Once
	crossLT   LevelTables
}

// New builds the clock-tree structures for d.
func New(d *model.Design) *Tree {
	s := &shape{}
	n := d.NumPins()
	s.idx = make([]int32, n)
	for i := range s.idx {
		s.idx[i] = -1
	}
	// Compact pins in topological order so parents precede children.
	for _, u := range d.Topo {
		if d.IsClockPin(u) {
			s.idx[u] = int32(len(s.pins))
			s.pins = append(s.pins, u)
		}
	}
	nc := len(s.pins)
	s.parent = make([]int32, nc)
	s.depth = make([]int32, nc)
	s.treeID = make([]int32, nc)
	for i, u := range s.pins {
		if d.Pins[u].Kind == model.ClockRoot {
			s.parent[i] = -1
			s.depth[i] = 0
			s.treeID[i] = int32(i)
		} else {
			p := s.idx[d.ClockParent[u]]
			s.parent[i] = p
			s.depth[i] = s.depth[p] + 1
			s.treeID[i] = s.treeID[p]
		}
	}
	s.buildLifting()
	s.buildEuler()
	for _, dep := range s.depth {
		if dep > s.maxDepth {
			s.maxDepth = dep
		}
	}
	s.groupOnce = make([]sync.Once, s.maxDepth+1)
	s.group = make([][]int32, s.maxDepth+1)
	s.zeroCredit = make([]model.Time, nc)
	s.ffDepth = make([]int32, len(d.FFs))
	s.allFFs = make([]model.FFID, len(d.FFs))
	for i := range d.FFs {
		s.ffDepth[i] = s.depth[s.idx[d.FFs[i].Clock]]
		s.allFFs[i] = model.FFID(i)
	}
	s.parity = make([]uint8, nc)
	for i, u := range s.pins {
		s.parity[i] = d.ClockParity[u]
	}
	sawPar := map[int32]uint8{}
	for i := range d.FFs {
		ci := s.idx[d.FFs[i].Clock]
		sawPar[s.treeID[ci]] |= 1 << s.parity[ci]
	}
	for _, m := range sawPar {
		if m == 3 {
			s.parityMixed = true
			break
		}
	}
	s.seedOnce = make([]sync.Once, s.maxDepth+1)
	s.seedFFs = make([][]model.FFID, s.maxDepth+1)
	s.coneOnce = make([]sync.Once, s.maxDepth+1)
	s.cone = make([]*model.PinSet, s.maxDepth+1)

	// Mark the depths that can host an LCA of two FF clock pins: a
	// bottom-up subtree count of FF clocks, flagging each node's depth
	// once a second FF-bearing child is seen. Compact indices are
	// parent-first, so a reverse scan accumulates children first.
	ffCnt := make([]int32, nc)
	for i := range d.FFs {
		ffCnt[s.idx[d.FFs[i].Clock]]++
	}
	bearing := make([]int32, nc)
	s.activeLevel = make([]bool, s.maxDepth+1)
	for i := nc - 1; i >= 0; i-- {
		if ffCnt[i] == 0 {
			continue
		}
		if p := s.parent[i]; p >= 0 {
			ffCnt[p] += ffCnt[i]
			bearing[p]++
			if bearing[p] == 2 {
				s.activeLevel[s.depth[p]] = true
			}
		}
	}

	t := &Tree{d: d, shape: s}
	t.fillOverlay()
	return t
}

// Derive returns a Tree for nd — the same clock-tree topology as t's
// design at a different delay corner — sharing t's shape (compaction,
// parent/depth, jump tables, Euler RMQ, per-level grouping) and
// recomputing only the arrival/credit overlay from nd's arc delays.
// nd must be a corner view of t's design (model.Design.View): identical
// pins, arcs and clock-tree topology, delays free to differ.
func (t *Tree) Derive(nd *model.Design) *Tree {
	nt := &Tree{d: nd, shape: t.shape}
	nt.fillOverlay()
	return nt
}

// fillOverlay computes the per-corner arrival/credit tables from the
// tree's design and resets the lazily built per-level credit tables.
func (t *Tree) fillOverlay() {
	d := t.d
	nc := len(t.pins)
	t.arrival = make([]model.Window, nc)
	t.credit = make([]model.Time, nc)
	for i, u := range t.pins {
		if d.Pins[u].Kind == model.ClockRoot {
			t.arrival[i] = model.Window{}
		} else {
			p := t.parent[i]
			t.arrival[i] = t.arrival[p].Add(d.Arcs[d.ClockParentArc[u]].Delay)
		}
		t.credit[i] = t.arrival[i].Width()
	}
	t.levelOnce = make([]sync.Once, t.maxDepth+1)
	t.levelLT = make([]LevelTables, t.maxDepth+1)
}

// buildLifting fills the binary-lifting ancestor tables.
func (s *shape) buildLifting() {
	nc := len(s.pins)
	maxDepth := int32(0)
	for _, dep := range s.depth {
		if dep > maxDepth {
			maxDepth = dep
		}
	}
	levels := 1
	if maxDepth > 0 {
		levels = bits.Len(uint(maxDepth)) // 2^(levels-1) <= maxDepth
	}
	s.up = make([][]int32, levels)
	s.up[0] = s.parent
	for j := 1; j < levels; j++ {
		s.up[j] = make([]int32, nc)
		prev := s.up[j-1]
		for i := 0; i < nc; i++ {
			if prev[i] < 0 {
				s.up[j][i] = -1
			} else {
				s.up[j][i] = prev[prev[i]]
			}
		}
	}
}

// buildEuler constructs the Euler tour and its sparse min-table.
func (s *shape) buildEuler() {
	nc := len(s.pins)
	// Children lists (compact).
	childStart := make([]int32, nc+1)
	for i := 0; i < nc; i++ {
		if s.parent[i] >= 0 {
			childStart[s.parent[i]+1]++
		}
	}
	for i := 0; i < nc; i++ {
		childStart[i+1] += childStart[i]
	}
	children := make([]int32, nc-1+1) // nc-1 non-root nodes; +1 guards nc==0 edge
	pos := make([]int32, nc)
	for i := 0; i < nc; i++ {
		if p := s.parent[i]; p >= 0 {
			children[childStart[p]+pos[p]] = int32(i)
			pos[p]++
		}
	}

	s.tourNode = make([]int32, 0, 2*nc-1)
	s.tourFirst = make([]int32, nc)
	for i := range s.tourFirst {
		s.tourFirst[i] = -1
	}
	// Euler tours, one per domain root (roots have parent -1; compaction
	// follows topological order so each root precedes its tree).
	// Goroutine stacks grow on demand, so recursion to the clock-tree
	// depth is fine. Tours are concatenated; same-tree queries stay
	// within one tour segment, and cross-tree queries are rejected by
	// the treeID check before the RMQ is consulted.
	var build func(u int32)
	build = func(u int32) {
		s.tourFirst[u] = int32(len(s.tourNode))
		s.tourNode = append(s.tourNode, u)
		for c := childStart[u]; c < childStart[u+1]; c++ {
			build(children[c])
			s.tourNode = append(s.tourNode, u)
		}
	}
	for i := 0; i < nc; i++ {
		if s.parent[i] < 0 {
			build(int32(i))
		}
	}

	m := len(s.tourNode)
	levels := 1
	if m > 1 {
		levels = bits.Len(uint(m)) // floor(log2(m)) + 1
	}
	s.sparse = make([][]int32, levels)
	s.sparse[0] = s.tourNode
	for j := 1; j < levels; j++ {
		span := 1 << j
		row := make([]int32, m-span+1)
		prev := s.sparse[j-1]
		half := 1 << (j - 1)
		for i := range row {
			a, b := prev[i], prev[i+half]
			if s.depth[a] <= s.depth[b] {
				row[i] = a
			} else {
				row[i] = b
			}
		}
		s.sparse[j] = row
	}
}

// compact returns the compact index of clock pin u, panicking on
// non-clock pins (caller bug).
func (t *Tree) compact(u model.PinID) int32 {
	i := t.idx[u]
	if i < 0 {
		panic(fmt.Sprintf("lca: pin %q is not a clock pin", t.d.PinName(u)))
	}
	return i
}

// NumClockPins returns the number of clock-tree nodes.
func (t *Tree) NumClockPins() int { return len(t.pins) }

// ClockPins returns the clock pins in topological (parent-first) order.
// The returned slice is owned by the Tree; do not modify.
func (t *Tree) ClockPins() []model.PinID { return t.pins }

// Depth returns the clock-tree depth of u (root = 0).
func (t *Tree) Depth(u model.PinID) int { return int(t.depth[t.compact(u)]) }

// Arrival returns the early/late clock arrival window at u.
func (t *Tree) Arrival(u model.PinID) model.Window { return t.arrival[t.compact(u)] }

// Credit returns the CPPR credit at u: at_late(u) - at_early(u).
func (t *Tree) Credit(u model.PinID) model.Time { return t.credit[t.compact(u)] }

// SharesShape reports whether o shares t's topology structures — the
// property Derive establishes across the corners of a design.
func (t *Tree) SharesShape(o *Tree) bool { return t.shape == o.shape }

// AncestorAtDepth returns f_dep(u): the ancestor of u at depth dep.
// It returns model.NoPin when dep exceeds u's depth.
func (t *Tree) AncestorAtDepth(u model.PinID, dep int) model.PinID {
	i := t.compact(u)
	delta := int(t.depth[i]) - dep
	if delta < 0 {
		return model.NoPin
	}
	for j := 0; delta != 0; j++ {
		if delta&1 != 0 {
			i = t.up[j][i]
		}
		delta >>= 1
	}
	return t.pins[i]
}

// LCA returns the lowest common ancestor of clock pins u and v using the
// Euler-tour RMQ structure (O(1) per query), or model.NoPin when u and v
// belong to different clock domains.
func (t *Tree) LCA(u, v model.PinID) model.PinID {
	a, b := t.compact(u), t.compact(v)
	if t.treeID[a] != t.treeID[b] {
		return model.NoPin
	}
	return t.pins[t.lcaCompact(a, b)]
}

func (t *Tree) lcaCompact(a, b int32) int32 {
	l, r := t.tourFirst[a], t.tourFirst[b]
	if l > r {
		l, r = r, l
	}
	j := bits.Len(uint(r-l+1)) - 1
	x, y := t.sparse[j][l], t.sparse[j][r-(1<<j)+1]
	if t.depth[x] <= t.depth[y] {
		return x
	}
	return y
}

// LCALifting returns the same result as LCA using binary lifting
// (O(log depth) per query). Kept as an ablation alternative; the two are
// cross-checked in tests.
func (t *Tree) LCALifting(u, v model.PinID) model.PinID {
	a, b := t.compact(u), t.compact(v)
	if t.treeID[a] != t.treeID[b] {
		return model.NoPin
	}
	if t.depth[a] < t.depth[b] {
		a, b = b, a
	}
	delta := t.depth[a] - t.depth[b]
	for j := 0; delta != 0; j++ {
		if delta&1 != 0 {
			a = t.up[j][a]
		}
		delta >>= 1
	}
	if a == b {
		return t.pins[a]
	}
	for j := len(t.up) - 1; j >= 0; j-- {
		if t.up[j][a] != t.up[j][b] {
			a = t.up[j][a]
			b = t.up[j][b]
		}
	}
	return t.pins[t.parent[a]]
}

// LCADepth returns depth(LCA(u, v)), or -1 for cross-domain pairs.
func (t *Tree) LCADepth(u, v model.PinID) int {
	a, b := t.compact(u), t.compact(v)
	if t.treeID[a] != t.treeID[b] {
		return -1
	}
	return int(t.depth[t.lcaCompact(a, b)])
}

// SameDomain reports whether two clock pins share a clock domain.
func (t *Tree) SameDomain(u, v model.PinID) bool {
	return t.treeID[t.compact(u)] == t.treeID[t.compact(v)]
}

// Parity returns the inversion parity of clock pin u: the number of
// inverting clock arcs between u and its domain root, mod 2.
func (t *Tree) Parity(u model.PinID) uint8 { return t.parity[t.compact(u)] }

// ParityMixed reports whether some clock domain holds FF clock pins of
// both inversion parities — the only topology where same_transition
// CRPR can differ from same_pin. On parity-uniform trees the engine
// skips the cross-parity job entirely.
func (t *Tree) ParityMixed() bool { return t.parityMixed }

// PairCredit returns the CPPR credit of the launch/capture clock-pin
// pair (u, v) under the given CRPR mode: the credit at LCA(u, v),
// except that cross-domain pairs and — under same_transition —
// parity-mismatched pairs carry none. Parity mismatch zeroes credit
// exactly (not just at the LCA): the edge sense the u-path sees at any
// common ancestor a is parity(u) XOR parity(a) inversions from the root
// edge, so the two paths' senses disagree at every common ancestor when
// parity(u) != parity(v).
func (t *Tree) PairCredit(u, v model.PinID, crpr model.CRPRMode) model.Time {
	a, b := t.compact(u), t.compact(v)
	if t.treeID[a] != t.treeID[b] {
		return 0
	}
	if crpr == model.CRPRSameTransition && t.parity[a] != t.parity[b] {
		return 0
	}
	return t.credit[t.lcaCompact(a, b)]
}

// DomainRoot returns the domain root pin of clock pin u.
func (t *Tree) DomainRoot(u model.PinID) model.PinID {
	return t.pins[t.treeID[t.compact(u)]]
}

// NumDomains returns the number of clock domains (roots).
func (t *Tree) NumDomains() int {
	n := 0
	for i := range t.parent {
		if t.parent[i] < 0 {
			n++
		}
	}
	return n
}

// LevelTables holds per-level lookup tables produced by FillLevel. The
// slices are indexed by compact clock-pin index; reuse one LevelTables
// per worker across levels to avoid reallocation.
type LevelTables struct {
	// Group is the node-grouping key of the paper's Figure 3: the
	// compact index of f_{d+1}(u) for pins with depth > d, and -1 for
	// pins at depth <= d. It depends only on the clock-tree topology,
	// never on delays.
	Group []int32
	// CreditAtD is credit(f_d(u)) for pins with depth >= d; undefined
	// (stale) for shallower pins — guarded by Group/depth checks at the
	// call sites. It is the delay-dependent (per-corner) half.
	CreditAtD []model.Time
}

// FillCrossDomain fills tables for the cross-domain candidate job: the
// group of every clock pin is its domain root and the credit offset is
// zero (cross-domain pairs share no clock path). This is the "level -1"
// of the level enumeration, only meaningful for multi-domain designs.
func (t *Tree) FillCrossDomain(lt *LevelTables) {
	nc := len(t.pins)
	if cap(lt.Group) < nc {
		lt.Group = make([]int32, nc)
		lt.CreditAtD = make([]model.Time, nc)
	}
	lt.Group = lt.Group[:nc]
	lt.CreditAtD = lt.CreditAtD[:nc]
	copy(lt.Group, t.treeID)
	for i := range lt.CreditAtD {
		lt.CreditAtD[i] = 0
	}
}

// FillLevel computes, in one O(#clock pins) pass, the group index
// f_{d+1}(u) and the offset credit(f_d(u)) for every clock pin, for the
// candidate-generation job at level dep.
func (t *Tree) FillLevel(dep int, lt *LevelTables) {
	nc := len(t.pins)
	if cap(lt.Group) < nc {
		lt.Group = make([]int32, nc)
		lt.CreditAtD = make([]model.Time, nc)
	}
	lt.Group = lt.Group[:nc]
	lt.CreditAtD = lt.CreditAtD[:nc]
	d32 := int32(dep)
	for i := 0; i < nc; i++ {
		switch dp := t.depth[i]; {
		case dp < d32:
			lt.Group[i] = -1
		case dp == d32:
			lt.Group[i] = -1
			lt.CreditAtD[i] = t.credit[i]
		case dp == d32+1:
			lt.Group[i] = int32(i)
			lt.CreditAtD[i] = lt.CreditAtD[t.parent[i]]
		default:
			p := t.parent[i]
			lt.Group[i] = lt.Group[p]
			lt.CreditAtD[i] = lt.CreditAtD[p]
		}
	}
}

// sharedGroup returns the corner-independent grouping table for level
// dep, computing it once per shape on first use.
func (s *shape) sharedGroup(dep int) []int32 {
	s.groupOnce[dep].Do(func() {
		nc := len(s.pins)
		g := make([]int32, nc)
		d32 := int32(dep)
		for i := 0; i < nc; i++ {
			switch dp := s.depth[i]; {
			case dp <= d32:
				g[i] = -1
			case dp == d32+1:
				g[i] = int32(i)
			default:
				g[i] = g[s.parent[i]]
			}
		}
		s.group[dep] = g
	})
	return s.group[dep]
}

// SharedLevel returns the level-dep tables, computed once per Tree on
// first use and read-only afterwards, so concurrent queries share one
// copy instead of filling per-worker scratch. The Group half is further
// shared across every corner Tree derived from the same shape — only
// the credit(f_d) half is per-corner. dep must be in [0, max clock-tree
// depth]; trading O(D * #clock pins) retained memory for the refill
// work is what makes batched level jobs cheap.
func (t *Tree) SharedLevel(dep int) *LevelTables {
	t.levelOnce[dep].Do(func() {
		lt := &t.levelLT[dep]
		lt.Group = t.sharedGroup(dep)
		nc := len(t.pins)
		lt.CreditAtD = make([]model.Time, nc)
		d32 := int32(dep)
		for i := 0; i < nc; i++ {
			switch dp := t.depth[i]; {
			case dp < d32:
				// undefined; guarded by Group/depth checks at call sites
			case dp == d32:
				lt.CreditAtD[i] = t.credit[i]
			default:
				lt.CreditAtD[i] = lt.CreditAtD[t.parent[i]]
			}
		}
	})
	return &t.levelLT[dep]
}

// SharedCrossDomain is SharedLevel for the cross-domain ("level -1")
// job. Both halves are corner-independent (group = domain root, credit
// offset = 0), so the tables alias shape storage.
func (t *Tree) SharedCrossDomain() *LevelTables {
	t.crossOnce.Do(func() {
		t.crossLT = LevelTables{Group: t.treeID, CreditAtD: t.zeroCredit}
	})
	return &t.crossLT
}

// SharedCrossParity is the same_transition variant of SharedCrossDomain:
// tables for the zero-credit job covering every launch/capture pair
// whose clock pins differ in domain or inversion parity. Grouping by
// 2*treeID + parity separates exactly those pairs (the Auto dual-tuple
// machinery then guarantees each capture is matched against the best
// launch outside its own group). Both halves are corner-independent,
// so the tables live on the shared shape.
func (t *Tree) SharedCrossParity() *LevelTables {
	s := t.shape
	s.crossParOnce.Do(func() {
		g := make([]int32, len(s.pins))
		for i := range g {
			g[i] = 2*s.treeID[i] + int32(s.parity[i])
		}
		s.crossParLT = LevelTables{Group: g, CreditAtD: s.zeroCredit}
	})
	return &s.crossParLT
}

// LevelFFs returns the FFs whose clock pin sits strictly below the
// level-dep cut (clock-tree depth > dep), in ascending FF order — the
// exact launch/capture universe of the level-dep candidate job: deeper
// cuts have (usually far) fewer FFs below them, so seeding and scanning
// this list makes per-level work proportional to the active cone rather
// than the design. Ascending FF order keeps tie-breaking identical to a
// full-FF scan that skips out-of-level FFs, which is what makes the
// sparse and dense kernels byte-identical.
//
// Lists are built lazily, once per shape, and shared read-only by every
// corner Tree and every concurrent query. dep must be in [0, max
// clock-tree depth]. Retained memory is O(Σ_d #seeds at d) across the
// levels actually queried, bounded by #FFs × max FF depth.
func (t *Tree) LevelFFs(dep int) []model.FFID {
	s := t.shape
	s.seedOnce[dep].Do(func() {
		d32 := int32(dep)
		n := 0
		for _, fd := range s.ffDepth {
			if fd > d32 {
				n++
			}
		}
		ffs := make([]model.FFID, 0, n)
		for i, fd := range s.ffDepth {
			if fd > d32 {
				ffs = append(ffs, model.FFID(i))
			}
		}
		s.seedFFs[dep] = ffs
	})
	return s.seedFFs[dep]
}

// LevelActive reports whether any FF pair has its clock LCA at exactly
// depth dep. An inactive level's candidate job is provably empty — the
// exact-depth filter rejects everything it could generate, and for
// endpoint sweeps every pair visible under the cut carries an
// over-credit dominated by the pair's own (active) LCA depth — so
// callers skip the propagation outright. Topology-only; shared by every
// corner Tree. Out-of-range depths report false.
func (t *Tree) LevelActive(dep int) bool {
	s := t.shape
	return dep >= 0 && dep < len(s.activeLevel) && s.activeLevel[dep]
}

// AllFFs returns every FF of the design, in ascending order: the seed
// list of the ungrouped (self-loop, PI-capture, PO) and cross-domain
// jobs, whose launch universe is not restricted by a level cut. The
// returned slice is owned by the Tree; do not modify.
func (t *Tree) AllFFs() []model.FFID { return t.allFFs }

// GroupOf returns the compact group index (f_{d+1}) for clock pin u from
// tables previously filled by FillLevel, or -1 when u is at or above the
// cut level.
func (t *Tree) GroupOf(lt *LevelTables, u model.PinID) int32 {
	return lt.Group[t.compact(u)]
}

// CreditAtDOf returns credit(f_d(u)) from FillLevel tables. Only valid
// for pins with depth >= d.
func (t *Tree) CreditAtDOf(lt *LevelTables, u model.PinID) model.Time {
	return lt.CreditAtD[t.compact(u)]
}

// LevelCone returns the data-graph footprint of the level-dep candidate
// job: every pin forward-reachable from the Q pins of LevelFFs(dep). A
// level job's output can depend on a data-arc delay only if the arc's
// source lies in this set, so the incremental job cache tags level-job
// entries with it and invalidates exactly when an edit journal records
// an in-cone source. Cones are reachability over the data graph, which
// corner views share, so they are built once per shape (from whichever
// corner asks first) and served read-only to all corners and concurrent
// queries. dep must be in [0, max clock-tree depth].
func (t *Tree) LevelCone(dep int) *model.PinSet {
	s := t.shape
	s.coneOnce[dep].Do(func() {
		set := model.NewPinSet(t.d.NumPins())
		sta.ForwardCone(t.d, t.levelSeeds(dep), set)
		s.cone[dep] = set
	})
	return s.cone[dep]
}

// levelSeeds returns the Q pins of LevelFFs(dep): the launch points a
// level-dep job propagates from.
func (t *Tree) levelSeeds(dep int) []model.PinID {
	ffs := t.LevelFFs(dep)
	seeds := make([]model.PinID, len(ffs))
	for i, ff := range ffs {
		seeds[i] = t.d.FFs[ff].Output
	}
	return seeds
}

// AllCone is the footprint of the whole-FF-universe jobs (self-loop,
// cross-domain): forward reachability from every FF Q pin. Equivalent to
// LevelCone(0) unioned with depth-0 FFs' cones; kept separate so the
// whole-universe jobs don't depend on level-0 laziness. Built once per
// shape; read-only thereafter.
func (t *Tree) AllCone() *model.PinSet {
	s := t.shape
	s.allOnce.Do(func() {
		seeds := make([]model.PinID, len(t.d.FFs))
		for i := range t.d.FFs {
			seeds[i] = t.d.FFs[i].Output
		}
		set := model.NewPinSet(t.d.NumPins())
		sta.ForwardCone(t.d, seeds, set)
		s.allCone = set
	})
	return s.allCone
}

// PICone is the footprint of the PI-launched job: forward reachability
// from the primary inputs. Built once per shape; read-only thereafter.
func (t *Tree) PICone() *model.PinSet {
	s := t.shape
	s.piOnce.Do(func() {
		set := model.NewPinSet(t.d.NumPins())
		sta.ForwardCone(t.d, t.d.PIs, set)
		s.piCone = set
	})
	return s.piCone
}

// LaunchCone is the footprint of every launch point — FF Q pins and
// primary inputs together: the PO job's universe (AllCone ∪ PICone).
// Built once per shape; read-only thereafter.
func (t *Tree) LaunchCone() *model.PinSet {
	s := t.shape
	s.launchOnce.Do(func() {
		set := model.NewPinSet(t.d.NumPins())
		set.Or(t.AllCone())
		set.Or(t.PICone())
		s.launchCone = set
	})
	return s.launchCone
}
