// Package lca provides the clock-tree query structures used by the CPPR
// timers: per-node arrival windows and credits, ancestor-at-depth queries
// f_d(u), and lowest-common-ancestor queries via two interchangeable
// implementations (binary lifting and Euler-tour RMQ).
//
// All structures are built once per design in O(n log n) and are
// read-only afterwards, so they are safe for concurrent use by the
// parallel per-level jobs.
package lca

import (
	"fmt"
	"math/bits"
	"sync"

	"fastcppr/model"
)

// Tree holds the preprocessed clock tree of a design.
type Tree struct {
	d *model.Design

	// idx maps PinID -> compact clock-pin index (-1 for non-clock pins).
	idx []int32
	// pins maps compact index -> PinID, in topological (parent-first)
	// order.
	pins []model.PinID
	// parent/depth are over compact indices; parent[root] = -1.
	parent []int32
	depth  []int32
	// treeID[i] is the compact index of i's domain root; LCA queries
	// across different roots have no answer (no shared clock path).
	treeID []int32

	// arrival[i] is the early/late clock arrival window of pins[i];
	// credit[i] = arrival[i].Width() (the CPPR credit).
	arrival []model.Window
	credit  []model.Time

	// up[j][i] is the 2^j-th ancestor of i (compact), or -1.
	up [][]int32

	// Euler tour for O(1) LCA: tour of compact nodes, first visit
	// positions, and a sparse table of minimum-depth positions.
	tourNode  []int32
	tourFirst []int32
	sparse    [][]int32

	// Shared per-level tables: the FillLevel/FillCrossDomain results
	// depend only on the tree, so they are computed once on first use
	// (per level) and then served read-only to every query against this
	// Tree — concurrent and batched queries share them instead of
	// refilling per-worker scratch. Indexed by level depth.
	levelOnce []sync.Once
	levelLT   []LevelTables
	crossOnce sync.Once
	crossLT   LevelTables
}

// New builds the clock-tree structures for d.
func New(d *model.Design) *Tree {
	t := &Tree{d: d}
	n := d.NumPins()
	t.idx = make([]int32, n)
	for i := range t.idx {
		t.idx[i] = -1
	}
	// Compact pins in topological order so parents precede children.
	for _, u := range d.Topo {
		if d.IsClockPin(u) {
			t.idx[u] = int32(len(t.pins))
			t.pins = append(t.pins, u)
		}
	}
	nc := len(t.pins)
	t.parent = make([]int32, nc)
	t.depth = make([]int32, nc)
	t.treeID = make([]int32, nc)
	t.arrival = make([]model.Window, nc)
	t.credit = make([]model.Time, nc)
	for i, u := range t.pins {
		if d.Pins[u].Kind == model.ClockRoot {
			t.parent[i] = -1
			t.depth[i] = 0
			t.treeID[i] = int32(i)
			t.arrival[i] = model.Window{}
		} else {
			p := t.idx[d.ClockParent[u]]
			t.parent[i] = p
			t.depth[i] = t.depth[p] + 1
			t.treeID[i] = t.treeID[p]
			t.arrival[i] = t.arrival[p].Add(d.Arcs[d.ClockParentArc[u]].Delay)
		}
		t.credit[i] = t.arrival[i].Width()
	}
	t.buildLifting()
	t.buildEuler()
	maxDepth := int32(0)
	for _, dep := range t.depth {
		if dep > maxDepth {
			maxDepth = dep
		}
	}
	t.levelOnce = make([]sync.Once, maxDepth+1)
	t.levelLT = make([]LevelTables, maxDepth+1)
	return t
}

// buildLifting fills the binary-lifting ancestor tables.
func (t *Tree) buildLifting() {
	nc := len(t.pins)
	maxDepth := int32(0)
	for _, dep := range t.depth {
		if dep > maxDepth {
			maxDepth = dep
		}
	}
	levels := 1
	if maxDepth > 0 {
		levels = bits.Len(uint(maxDepth)) // 2^(levels-1) <= maxDepth
	}
	t.up = make([][]int32, levels)
	t.up[0] = t.parent
	for j := 1; j < levels; j++ {
		t.up[j] = make([]int32, nc)
		prev := t.up[j-1]
		for i := 0; i < nc; i++ {
			if prev[i] < 0 {
				t.up[j][i] = -1
			} else {
				t.up[j][i] = prev[prev[i]]
			}
		}
	}
}

// buildEuler constructs the Euler tour and its sparse min-table.
func (t *Tree) buildEuler() {
	nc := len(t.pins)
	// Children lists (compact).
	childStart := make([]int32, nc+1)
	for i := 0; i < nc; i++ {
		if t.parent[i] >= 0 {
			childStart[t.parent[i]+1]++
		}
	}
	for i := 0; i < nc; i++ {
		childStart[i+1] += childStart[i]
	}
	children := make([]int32, nc-1+1) // nc-1 non-root nodes; +1 guards nc==0 edge
	pos := make([]int32, nc)
	for i := 0; i < nc; i++ {
		if p := t.parent[i]; p >= 0 {
			children[childStart[p]+pos[p]] = int32(i)
			pos[p]++
		}
	}

	t.tourNode = make([]int32, 0, 2*nc-1)
	t.tourFirst = make([]int32, nc)
	for i := range t.tourFirst {
		t.tourFirst[i] = -1
	}
	// Euler tours, one per domain root (roots have parent -1; compaction
	// follows topological order so each root precedes its tree).
	// Goroutine stacks grow on demand, so recursion to the clock-tree
	// depth is fine. Tours are concatenated; same-tree queries stay
	// within one tour segment, and cross-tree queries are rejected by
	// the treeID check before the RMQ is consulted.
	var build func(u int32)
	build = func(u int32) {
		t.tourFirst[u] = int32(len(t.tourNode))
		t.tourNode = append(t.tourNode, u)
		for c := childStart[u]; c < childStart[u+1]; c++ {
			build(children[c])
			t.tourNode = append(t.tourNode, u)
		}
	}
	for i := 0; i < nc; i++ {
		if t.parent[i] < 0 {
			build(int32(i))
		}
	}

	m := len(t.tourNode)
	levels := 1
	if m > 1 {
		levels = bits.Len(uint(m)) // floor(log2(m)) + 1
	}
	t.sparse = make([][]int32, levels)
	t.sparse[0] = t.tourNode
	for j := 1; j < levels; j++ {
		span := 1 << j
		row := make([]int32, m-span+1)
		prev := t.sparse[j-1]
		half := 1 << (j - 1)
		for i := range row {
			a, b := prev[i], prev[i+half]
			if t.depth[a] <= t.depth[b] {
				row[i] = a
			} else {
				row[i] = b
			}
		}
		t.sparse[j] = row
	}
}

// compact returns the compact index of clock pin u, panicking on
// non-clock pins (caller bug).
func (t *Tree) compact(u model.PinID) int32 {
	i := t.idx[u]
	if i < 0 {
		panic(fmt.Sprintf("lca: pin %q is not a clock pin", t.d.PinName(u)))
	}
	return i
}

// NumClockPins returns the number of clock-tree nodes.
func (t *Tree) NumClockPins() int { return len(t.pins) }

// ClockPins returns the clock pins in topological (parent-first) order.
// The returned slice is owned by the Tree; do not modify.
func (t *Tree) ClockPins() []model.PinID { return t.pins }

// Depth returns the clock-tree depth of u (root = 0).
func (t *Tree) Depth(u model.PinID) int { return int(t.depth[t.compact(u)]) }

// Arrival returns the early/late clock arrival window at u.
func (t *Tree) Arrival(u model.PinID) model.Window { return t.arrival[t.compact(u)] }

// Credit returns the CPPR credit at u: at_late(u) - at_early(u).
func (t *Tree) Credit(u model.PinID) model.Time { return t.credit[t.compact(u)] }

// AncestorAtDepth returns f_dep(u): the ancestor of u at depth dep.
// It returns model.NoPin when dep exceeds u's depth.
func (t *Tree) AncestorAtDepth(u model.PinID, dep int) model.PinID {
	i := t.compact(u)
	delta := int(t.depth[i]) - dep
	if delta < 0 {
		return model.NoPin
	}
	for j := 0; delta != 0; j++ {
		if delta&1 != 0 {
			i = t.up[j][i]
		}
		delta >>= 1
	}
	return t.pins[i]
}

// LCA returns the lowest common ancestor of clock pins u and v using the
// Euler-tour RMQ structure (O(1) per query), or model.NoPin when u and v
// belong to different clock domains.
func (t *Tree) LCA(u, v model.PinID) model.PinID {
	a, b := t.compact(u), t.compact(v)
	if t.treeID[a] != t.treeID[b] {
		return model.NoPin
	}
	return t.pins[t.lcaCompact(a, b)]
}

func (t *Tree) lcaCompact(a, b int32) int32 {
	l, r := t.tourFirst[a], t.tourFirst[b]
	if l > r {
		l, r = r, l
	}
	j := bits.Len(uint(r-l+1)) - 1
	x, y := t.sparse[j][l], t.sparse[j][r-(1<<j)+1]
	if t.depth[x] <= t.depth[y] {
		return x
	}
	return y
}

// LCALifting returns the same result as LCA using binary lifting
// (O(log depth) per query). Kept as an ablation alternative; the two are
// cross-checked in tests.
func (t *Tree) LCALifting(u, v model.PinID) model.PinID {
	a, b := t.compact(u), t.compact(v)
	if t.treeID[a] != t.treeID[b] {
		return model.NoPin
	}
	if t.depth[a] < t.depth[b] {
		a, b = b, a
	}
	delta := t.depth[a] - t.depth[b]
	for j := 0; delta != 0; j++ {
		if delta&1 != 0 {
			a = t.up[j][a]
		}
		delta >>= 1
	}
	if a == b {
		return t.pins[a]
	}
	for j := len(t.up) - 1; j >= 0; j-- {
		if t.up[j][a] != t.up[j][b] {
			a = t.up[j][a]
			b = t.up[j][b]
		}
	}
	return t.pins[t.parent[a]]
}

// LCADepth returns depth(LCA(u, v)), or -1 for cross-domain pairs.
func (t *Tree) LCADepth(u, v model.PinID) int {
	a, b := t.compact(u), t.compact(v)
	if t.treeID[a] != t.treeID[b] {
		return -1
	}
	return int(t.depth[t.lcaCompact(a, b)])
}

// SameDomain reports whether two clock pins share a clock domain.
func (t *Tree) SameDomain(u, v model.PinID) bool {
	return t.treeID[t.compact(u)] == t.treeID[t.compact(v)]
}

// DomainRoot returns the domain root pin of clock pin u.
func (t *Tree) DomainRoot(u model.PinID) model.PinID {
	return t.pins[t.treeID[t.compact(u)]]
}

// NumDomains returns the number of clock domains (roots).
func (t *Tree) NumDomains() int {
	n := 0
	for i := range t.parent {
		if t.parent[i] < 0 {
			n++
		}
	}
	return n
}

// LevelTables holds per-level lookup tables produced by FillLevel. The
// slices are indexed by compact clock-pin index; reuse one LevelTables
// per worker across levels to avoid reallocation.
type LevelTables struct {
	// Group is the node-grouping key of the paper's Figure 3: the
	// compact index of f_{d+1}(u) for pins with depth > d, and -1 for
	// pins at depth <= d.
	Group []int32
	// CreditAtD is credit(f_d(u)) for pins with depth >= d; undefined
	// (stale) for shallower pins — guarded by Group/depth checks at the
	// call sites.
	CreditAtD []model.Time
}

// FillCrossDomain fills tables for the cross-domain candidate job: the
// group of every clock pin is its domain root and the credit offset is
// zero (cross-domain pairs share no clock path). This is the "level -1"
// of the level enumeration, only meaningful for multi-domain designs.
func (t *Tree) FillCrossDomain(lt *LevelTables) {
	nc := len(t.pins)
	if cap(lt.Group) < nc {
		lt.Group = make([]int32, nc)
		lt.CreditAtD = make([]model.Time, nc)
	}
	lt.Group = lt.Group[:nc]
	lt.CreditAtD = lt.CreditAtD[:nc]
	copy(lt.Group, t.treeID)
	for i := range lt.CreditAtD {
		lt.CreditAtD[i] = 0
	}
}

// FillLevel computes, in one O(#clock pins) pass, the group index
// f_{d+1}(u) and the offset credit(f_d(u)) for every clock pin, for the
// candidate-generation job at level dep.
func (t *Tree) FillLevel(dep int, lt *LevelTables) {
	nc := len(t.pins)
	if cap(lt.Group) < nc {
		lt.Group = make([]int32, nc)
		lt.CreditAtD = make([]model.Time, nc)
	}
	lt.Group = lt.Group[:nc]
	lt.CreditAtD = lt.CreditAtD[:nc]
	d32 := int32(dep)
	for i := 0; i < nc; i++ {
		switch dp := t.depth[i]; {
		case dp < d32:
			lt.Group[i] = -1
		case dp == d32:
			lt.Group[i] = -1
			lt.CreditAtD[i] = t.credit[i]
		case dp == d32+1:
			lt.Group[i] = int32(i)
			lt.CreditAtD[i] = lt.CreditAtD[t.parent[i]]
		default:
			p := t.parent[i]
			lt.Group[i] = lt.Group[p]
			lt.CreditAtD[i] = lt.CreditAtD[p]
		}
	}
}

// SharedLevel returns the level-dep tables, computed once per Tree on
// first use and read-only afterwards, so concurrent queries share one
// copy instead of filling per-worker scratch. dep must be in
// [0, max clock-tree depth]; trading O(D * #clock pins) retained memory
// for the refill work is what makes batched level jobs cheap.
func (t *Tree) SharedLevel(dep int) *LevelTables {
	t.levelOnce[dep].Do(func() { t.FillLevel(dep, &t.levelLT[dep]) })
	return &t.levelLT[dep]
}

// SharedCrossDomain is SharedLevel for the cross-domain ("level -1") job.
func (t *Tree) SharedCrossDomain() *LevelTables {
	t.crossOnce.Do(func() { t.FillCrossDomain(&t.crossLT) })
	return &t.crossLT
}

// GroupOf returns the compact group index (f_{d+1}) for clock pin u from
// tables previously filled by FillLevel, or -1 when u is at or above the
// cut level.
func (t *Tree) GroupOf(lt *LevelTables, u model.PinID) int32 {
	return lt.Group[t.compact(u)]
}

// CreditAtDOf returns credit(f_d(u)) from FillLevel tables. Only valid
// for pins with depth >= d.
func (t *Tree) CreditAtDOf(lt *LevelTables, u model.PinID) model.Time {
	return lt.CreditAtD[t.compact(u)]
}
