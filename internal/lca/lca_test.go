package lca

import (
	"fmt"
	"math/rand"
	"testing"

	"fastcppr/model"
)

// randomTreeDesign builds a design whose clock tree is a random tree with
// nBufs internal nodes and nFFs flip-flops attached to random nodes.
// Arc delays are random with Early <= Late so credits are non-trivial.
func randomTreeDesign(t testing.TB, seed int64, nBufs, nFFs int) *model.Design {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := model.NewBuilder(fmt.Sprintf("rt-%d", seed), model.Ns(10))
	nodes := []model.PinID{b.AddClockRoot("clk")}
	for i := 0; i < nBufs; i++ {
		n := b.AddClockBuf(fmt.Sprintf("b%d", i))
		p := nodes[rng.Intn(len(nodes))]
		e := model.Time(rng.Intn(50))
		b.AddArc(p, n, model.Window{Early: e, Late: e + model.Time(rng.Intn(30))})
		nodes = append(nodes, n)
	}
	for i := 0; i < nFFs; i++ {
		ff := b.AddFF(fmt.Sprintf("ff%d", i), 10, 5, model.Window{Early: 20, Late: 30})
		p := nodes[rng.Intn(len(nodes))]
		e := model.Time(rng.Intn(50))
		b.AddArc(p, ff.Clock, model.Window{Early: e, Late: e + model.Time(rng.Intn(30))})
	}
	d, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

// ffClockPins returns the FF clock pins of d.
func ffClockPins(d *model.Design) []model.PinID {
	out := make([]model.PinID, 0, d.NumFFs())
	for _, ff := range d.FFs {
		out = append(out, ff.Clock)
	}
	return out
}

func TestLCAMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		d := randomTreeDesign(t, seed, 30, 40)
		tr := New(d)
		cks := ffClockPins(d)
		rng := rand.New(rand.NewSource(seed + 100))
		for q := 0; q < 500; q++ {
			u := cks[rng.Intn(len(cks))]
			v := cks[rng.Intn(len(cks))]
			want := d.NaiveLCA(u, v)
			if got := tr.LCA(u, v); got != want {
				t.Fatalf("seed %d: LCA(%s,%s) = %s, want %s", seed,
					d.PinName(u), d.PinName(v), d.PinName(got), d.PinName(want))
			}
			if got := tr.LCALifting(u, v); got != want {
				t.Fatalf("seed %d: LCALifting(%s,%s) = %s, want %s", seed,
					d.PinName(u), d.PinName(v), d.PinName(got), d.PinName(want))
			}
			if got := tr.LCADepth(u, v); got != int(d.ClockDepth[want]) {
				t.Fatalf("LCADepth = %d, want %d", got, d.ClockDepth[want])
			}
		}
	}
}

func TestLCAIdentityAndSymmetry(t *testing.T) {
	d := randomTreeDesign(t, 42, 20, 25)
	tr := New(d)
	cks := ffClockPins(d)
	for _, u := range cks {
		if tr.LCA(u, u) != u {
			t.Fatalf("LCA(u,u) != u for %s", d.PinName(u))
		}
	}
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 200; q++ {
		u := cks[rng.Intn(len(cks))]
		v := cks[rng.Intn(len(cks))]
		if tr.LCA(u, v) != tr.LCA(v, u) {
			t.Fatalf("LCA not symmetric for %s,%s", d.PinName(u), d.PinName(v))
		}
	}
}

func TestAncestorAtDepth(t *testing.T) {
	d := randomTreeDesign(t, 3, 25, 30)
	tr := New(d)
	for _, u := range ffClockPins(d) {
		du := int(d.ClockDepth[u])
		// Naive ancestor chain.
		chain := []model.PinID{u}
		for p := u; p != d.Root; {
			p = d.ClockParent[p]
			chain = append(chain, p)
		}
		// chain[i] has depth du-i.
		for dep := 0; dep <= du; dep++ {
			want := chain[du-dep]
			if got := tr.AncestorAtDepth(u, dep); got != want {
				t.Fatalf("f_%d(%s) = %s, want %s", dep, d.PinName(u), d.PinName(got), d.PinName(want))
			}
		}
		if got := tr.AncestorAtDepth(u, du+1); got != model.NoPin {
			t.Fatalf("f_%d(%s) = %s, want NoPin", du+1, d.PinName(u), d.PinName(got))
		}
	}
}

func TestArrivalAndCreditMatchModel(t *testing.T) {
	d := randomTreeDesign(t, 5, 20, 20)
	tr := New(d)
	for _, u := range tr.ClockPins() {
		if got, want := tr.Arrival(u), d.ClockArrival(u); got != want {
			t.Fatalf("Arrival(%s) = %v, want %v", d.PinName(u), got, want)
		}
		if got, want := tr.Credit(u), d.Credit(u); got != want {
			t.Fatalf("Credit(%s) = %v, want %v", d.PinName(u), got, want)
		}
		if tr.Depth(u) != int(d.ClockDepth[u]) {
			t.Fatalf("Depth(%s) mismatch", d.PinName(u))
		}
	}
}

func TestCreditMonotoneInDepth(t *testing.T) {
	// credit(f_d(u)) must be non-decreasing in d: windows only widen
	// down the tree. This property underpins the correctness lemma for
	// level-d candidate sets.
	d := randomTreeDesign(t, 11, 30, 30)
	tr := New(d)
	for _, u := range ffClockPins(d) {
		prev := model.Time(0)
		for dep := 0; dep <= tr.Depth(u); dep++ {
			c := tr.Credit(tr.AncestorAtDepth(u, dep))
			if c < prev {
				t.Fatalf("credit(f_%d(%s)) = %v < credit at depth %d (%v)",
					dep, d.PinName(u), c, dep-1, prev)
			}
			prev = c
		}
	}
}

func TestFillLevel(t *testing.T) {
	d := randomTreeDesign(t, 13, 25, 35)
	tr := New(d)
	var lt LevelTables
	for dep := 0; dep < d.Depth; dep++ {
		tr.FillLevel(dep, &lt)
		for _, u := range tr.ClockPins() {
			du := tr.Depth(u)
			g := tr.GroupOf(&lt, u)
			if du <= dep {
				if g != -1 {
					t.Fatalf("level %d: pin %s (depth %d) has group %d, want -1", dep, d.PinName(u), du, g)
				}
				continue
			}
			wantGroup := tr.compact(tr.AncestorAtDepth(u, dep+1))
			if g != wantGroup {
				t.Fatalf("level %d: group(%s) = %d, want %d", dep, d.PinName(u), g, wantGroup)
			}
			wantCredit := tr.Credit(tr.AncestorAtDepth(u, dep))
			if got := tr.CreditAtDOf(&lt, u); got != wantCredit {
				t.Fatalf("level %d: creditAtD(%s) = %v, want %v", dep, d.PinName(u), got, wantCredit)
			}
		}
	}
}

func TestFillLevelReuse(t *testing.T) {
	// The same LevelTables must be reusable across levels and designs of
	// smaller size without stale state leaking into results.
	d := randomTreeDesign(t, 17, 30, 30)
	tr := New(d)
	var lt LevelTables
	tr.FillLevel(0, &lt)
	first := append([]int32(nil), lt.Group...)
	tr.FillLevel(d.Depth-1, &lt)
	tr.FillLevel(0, &lt)
	for i := range first {
		if lt.Group[i] != first[i] {
			t.Fatalf("FillLevel not idempotent at index %d", i)
		}
	}
}

func TestCompactPanicsOnDataPin(t *testing.T) {
	b := model.NewBuilder("p", model.Ns(1))
	clk := b.AddClockRoot("clk")
	ff := b.AddFF("ff", 1, 1, model.Window{Early: 1, Late: 2})
	b.AddArc(clk, ff.Clock, model.Window{Early: 1, Late: 2})
	g := b.AddComb("g")
	b.AddArc(ff.Q, g, model.Window{Early: 1, Late: 2})
	d := b.MustBuild()
	tr := New(d)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-clock pin")
		}
	}()
	tr.Credit(g)
}

func TestSingleNodeTree(t *testing.T) {
	// A design whose clock tree is just the root plus one FF.
	b := model.NewBuilder("tiny", model.Ns(1))
	clk := b.AddClockRoot("clk")
	ff := b.AddFF("ff", 1, 1, model.Window{Early: 1, Late: 2})
	b.AddArc(clk, ff.Clock, model.Window{Early: 3, Late: 8})
	d := b.MustBuild()
	tr := New(d)
	if tr.NumClockPins() != 2 {
		t.Fatalf("NumClockPins = %d, want 2", tr.NumClockPins())
	}
	if tr.LCA(ff.Clock, ff.Clock) != ff.Clock {
		t.Error("self LCA wrong")
	}
	if tr.LCA(clk, ff.Clock) != clk {
		t.Error("root LCA wrong")
	}
	if tr.Credit(ff.Clock) != 5 {
		t.Errorf("credit = %v, want 5", tr.Credit(ff.Clock))
	}
	if d.Depth != 2 {
		t.Errorf("Depth = %d, want 2", d.Depth)
	}
}

func TestDeepChainTree(t *testing.T) {
	// Degenerate chain: depth == number of bufs; exercises lifting height.
	b := model.NewBuilder("chain", model.Ns(1))
	prev := b.AddClockRoot("clk")
	const depth = 300
	for i := 0; i < depth; i++ {
		n := b.AddClockBuf(fmt.Sprintf("c%d", i))
		b.AddArc(prev, n, model.Window{Early: 1, Late: 2})
		prev = n
	}
	ff := b.AddFF("ff", 1, 1, model.Window{Early: 1, Late: 2})
	b.AddArc(prev, ff.Clock, model.Window{Early: 1, Late: 2})
	d := b.MustBuild()
	tr := New(d)
	if got := tr.Depth(ff.Clock); got != depth+1 {
		t.Fatalf("Depth = %d, want %d", got, depth+1)
	}
	if got := tr.AncestorAtDepth(ff.Clock, 0); got != d.Root {
		t.Fatalf("f_0 = %s", d.PinName(got))
	}
	if got := tr.Credit(ff.Clock); got != model.Time(depth+1) {
		t.Fatalf("Credit = %v, want %d", got, depth+1)
	}
	for dep := 0; dep <= depth+1; dep += 37 {
		a := tr.AncestorAtDepth(ff.Clock, dep)
		if tr.Depth(a) != dep {
			t.Fatalf("ancestor at depth %d has depth %d", dep, tr.Depth(a))
		}
	}
}

func BenchmarkLCAEuler(b *testing.B) {
	d := randomTreeDesign(b, 1, 2000, 4000)
	tr := New(d)
	cks := ffClockPins(d)
	rng := rand.New(rand.NewSource(2))
	pairs := make([][2]model.PinID, 1024)
	for i := range pairs {
		pairs[i] = [2]model.PinID{cks[rng.Intn(len(cks))], cks[rng.Intn(len(cks))]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		tr.LCA(p[0], p[1])
	}
}

func BenchmarkLCALifting(b *testing.B) {
	d := randomTreeDesign(b, 1, 2000, 4000)
	tr := New(d)
	cks := ffClockPins(d)
	rng := rand.New(rand.NewSource(2))
	pairs := make([][2]model.PinID, 1024)
	for i := range pairs {
		pairs[i] = [2]model.PinID{cks[rng.Intn(len(cks))], cks[rng.Intn(len(cks))]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		tr.LCALifting(p[0], p[1])
	}
}
