package lca

import (
	"sync"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// bfsCone is the reference: plain BFS over fanout arcs from seeds.
func bfsCone(d *model.Design, seeds []model.PinID) []bool {
	ref := make([]bool, d.NumPins())
	queue := append([]model.PinID(nil), seeds...)
	for _, p := range seeds {
		ref[p] = true
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, ai := range d.FanOut(u) {
			if v := d.Arcs[ai].To; !ref[v] {
				ref[v] = true
				queue = append(queue, v)
			}
		}
	}
	return ref
}

func checkCone(t *testing.T, d *model.Design, set *model.PinSet, ref []bool, what string) {
	t.Helper()
	want := 0
	for u := 0; u < d.NumPins(); u++ {
		if ref[u] {
			want++
		}
		if set.Contains(model.PinID(u)) != ref[u] {
			t.Fatalf("%s: pin %s membership %v, want %v",
				what, d.PinName(model.PinID(u)), set.Contains(model.PinID(u)), ref[u])
		}
	}
	if set.Len() != want {
		t.Fatalf("%s: Len = %d, want %d", what, set.Len(), want)
	}
}

func TestConesMatchBruteForceReachability(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		d := gen.MustGenerate(gen.Medium(seed))
		tree := New(d)
		maxDepth := 0
		for i := range d.FFs {
			if dep := tree.Depth(d.FFs[i].Clock); dep > maxDepth {
				maxDepth = dep
			}
		}
		for dep := 0; dep <= maxDepth; dep++ {
			var seeds []model.PinID
			for i := range d.FFs {
				if tree.Depth(d.FFs[i].Clock) > dep {
					seeds = append(seeds, d.FFs[i].Output)
				}
			}
			checkCone(t, d, tree.LevelCone(dep), bfsCone(d, seeds), "LevelCone")
		}
		var allQ []model.PinID
		for i := range d.FFs {
			allQ = append(allQ, d.FFs[i].Output)
		}
		checkCone(t, d, tree.AllCone(), bfsCone(d, allQ), "AllCone")
		checkCone(t, d, tree.PICone(), bfsCone(d, d.PIs), "PICone")
		checkCone(t, d, tree.LaunchCone(), bfsCone(d, append(allQ, d.PIs...)), "LaunchCone")

		// Cone nesting: deeper cuts seed a subset of shallower cuts, so
		// LevelCone(d+1) ⊆ LevelCone(d) ⊆ AllCone — the monotonicity the
		// invalidation soundness argument leans on.
		for dep := 0; dep < maxDepth; dep++ {
			inner, outer := tree.LevelCone(dep+1), tree.LevelCone(dep)
			for u := 0; u < d.NumPins(); u++ {
				if inner.Contains(model.PinID(u)) && !outer.Contains(model.PinID(u)) {
					t.Fatalf("seed %d: LevelCone(%d) not nested in LevelCone(%d) at pin %s",
						seed, dep+1, dep, d.PinName(model.PinID(u)))
				}
			}
		}
	}
}

func TestConesSharedAcrossDerivedTrees(t *testing.T) {
	// Cones are data-graph reachability, identical across corner views, so
	// Trees derived from one base must return the same *PinSet instances.
	d := gen.MustGenerate(gen.Medium(4))
	d2, _, err := d.WithDerivedCorner("slow", func(_ int, w model.Window) model.Window {
		return model.Window{Early: w.Early * 2, Late: w.Late * 2}
	})
	if err != nil {
		t.Fatal(err)
	}
	base := New(d)
	derived := base.Derive(d2.View(1))
	if base.LevelCone(0) != derived.LevelCone(0) {
		t.Fatal("LevelCone rebuilt per corner, want shared per shape")
	}
	if base.AllCone() != derived.AllCone() {
		t.Fatal("AllCone rebuilt per corner, want shared per shape")
	}
	if base.PICone() != derived.PICone() {
		t.Fatal("PICone rebuilt per corner, want shared per shape")
	}
	if base.LaunchCone() != derived.LaunchCone() {
		t.Fatal("LaunchCone rebuilt per corner, want shared per shape")
	}
}

func TestConesConcurrentAccess(t *testing.T) {
	// Cache validators consult cones from parallel workers; the lazy
	// build must be safe under concurrent first access (run with -race).
	d := gen.MustGenerate(gen.Medium(7))
	tree := New(d)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for dep := 0; dep < 4; dep++ {
				_ = tree.LevelCone(dep)
			}
			_ = tree.AllCone()
			_ = tree.PICone()
			_ = tree.LaunchCone()
		}()
	}
	wg.Wait()
}
