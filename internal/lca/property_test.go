package lca

import (
	"math"
	"math/rand"
	"testing"

	"fastcppr/model"
)

// jitterCorner appends a corner with independently scaled arc delays so
// derived trees carry genuinely different arrivals and credits.
func jitterCorner(t *testing.T, d *model.Design, seed int64) *model.Design {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nd, _, err := d.WithDerivedCorner("jit", func(_ int, w model.Window) model.Window {
		f := 0.7 + 0.6*rng.Float64()
		return model.Window{
			Early: model.Time(math.Round(float64(w.Early) * f)),
			Late:  model.Time(math.Round(float64(w.Late) * f)),
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return nd
}

// TestLiftingVsEulerProperty compares the two LCA implementations
// against each other over every pair class — FF clocks, internal
// buffers, mixed — on random trees much deeper than the targeted
// unit-test fixtures. The Euler-tour RMQ answer is the default path;
// binary lifting is the ablation knob, and they must never diverge.
func TestLiftingVsEulerProperty(t *testing.T) {
	seeds := []int64{11, 12, 13, 14}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		d := randomTreeDesign(t, seed, 120, 150)
		tr := New(d)
		pins := tr.ClockPins()
		rng := rand.New(rand.NewSource(seed * 7))
		for q := 0; q < 3000; q++ {
			u := pins[rng.Intn(len(pins))]
			v := pins[rng.Intn(len(pins))]
			euler := tr.LCA(u, v)
			lift := tr.LCALifting(u, v)
			if euler != lift {
				t.Fatalf("seed %d: LCA(%s,%s): euler %s, lifting %s", seed,
					d.PinName(u), d.PinName(v), d.PinName(euler), d.PinName(lift))
			}
			if dep := tr.LCADepth(u, v); dep != tr.Depth(euler) {
				t.Fatalf("seed %d: LCADepth(%s,%s) = %d, want depth(%s) = %d", seed,
					d.PinName(u), d.PinName(v), dep, d.PinName(euler), tr.Depth(euler))
			}
		}
	}
}

// TestDeriveEqualsFreshNew is the substrate-sharing oracle: a tree
// derived from the base corner's (sharing its shape — depth arrays,
// jump tables, Euler tour, per-level grouping) must answer every query
// exactly like a tree built from scratch on the corner view.
func TestDeriveEqualsFreshNew(t *testing.T) {
	for _, seed := range []int64{21, 22, 23} {
		d := randomTreeDesign(t, seed, 60, 80)
		d = jitterCorner(t, d, seed)
		view := d.View(1)
		base := New(d)
		derived := base.Derive(view)
		fresh := New(view)

		if !derived.SharesShape(base) {
			t.Fatal("derived tree does not share the base shape")
		}
		if derived.SharesShape(fresh) {
			t.Fatal("fresh tree unexpectedly shares the derived shape")
		}
		if derived.NumClockPins() != fresh.NumClockPins() {
			t.Fatalf("clock pin count %d vs %d", derived.NumClockPins(), fresh.NumClockPins())
		}
		for _, u := range fresh.ClockPins() {
			if derived.Depth(u) != fresh.Depth(u) {
				t.Fatalf("seed %d: depth(%s) %d vs %d", seed, d.PinName(u), derived.Depth(u), fresh.Depth(u))
			}
			if derived.Arrival(u) != fresh.Arrival(u) {
				t.Fatalf("seed %d: arrival(%s) %v vs %v", seed, d.PinName(u), derived.Arrival(u), fresh.Arrival(u))
			}
			if derived.Credit(u) != fresh.Credit(u) {
				t.Fatalf("seed %d: credit(%s) %v vs %v", seed, d.PinName(u), derived.Credit(u), fresh.Credit(u))
			}
		}
		pins := fresh.ClockPins()
		rng := rand.New(rand.NewSource(seed))
		for q := 0; q < 1000; q++ {
			u := pins[rng.Intn(len(pins))]
			v := pins[rng.Intn(len(pins))]
			if derived.LCA(u, v) != fresh.LCA(u, v) {
				t.Fatalf("seed %d: LCA(%s,%s) differs between derived and fresh", seed, d.PinName(u), d.PinName(v))
			}
		}
	}
}

// TestDerivedSharedLevelTables checks the per-level table split on
// derived trees: Group is topology-only (identical to the fresh
// tree's and to the base's), CreditAtD is per-corner (identical to the
// fresh tree's, computed from the corner's credits), and both match
// the eager FillLevel path.
func TestDerivedSharedLevelTables(t *testing.T) {
	for _, seed := range []int64{31, 32} {
		d := randomTreeDesign(t, seed, 50, 70)
		d = jitterCorner(t, d, seed+100)
		view := d.View(1)
		base := New(d)
		derived := base.Derive(view)
		fresh := New(view)

		maxDep := 0
		for _, u := range fresh.ClockPins() {
			if dep := fresh.Depth(u); dep > maxDep {
				maxDep = dep
			}
		}
		for dep := 0; dep <= maxDep; dep++ {
			ds := derived.SharedLevel(dep)
			fs := fresh.SharedLevel(dep)
			var eager LevelTables
			fresh.FillLevel(dep, &eager)
			for _, u := range fresh.ClockPins() {
				if derived.Depth(u) < dep {
					continue
				}
				if g1, g2 := derived.GroupOf(ds, u), fresh.GroupOf(fs, u); g1 != g2 {
					t.Fatalf("seed %d dep %d: group(%s) %d vs %d", seed, dep, d.PinName(u), g1, g2)
				}
				if g1, g2 := derived.GroupOf(ds, u), base.GroupOf(base.SharedLevel(dep), u); g1 != g2 {
					t.Fatalf("seed %d dep %d: group(%s) differs from base shape's", seed, dep, d.PinName(u))
				}
				c1 := derived.CreditAtDOf(ds, u)
				c2 := fresh.CreditAtDOf(fs, u)
				c3 := fresh.CreditAtDOf(&eager, u)
				if c1 != c2 || c1 != c3 {
					t.Fatalf("seed %d dep %d: creditAtD(%s) shared-derived %v, shared-fresh %v, eager %v",
						seed, dep, d.PinName(u), c1, c2, c3)
				}
			}
		}

		dx := derived.SharedCrossDomain()
		fx := fresh.SharedCrossDomain()
		for _, u := range fresh.ClockPins() {
			if g1, g2 := derived.GroupOf(dx, u), fresh.GroupOf(fx, u); g1 != g2 {
				t.Fatalf("seed %d: cross-domain group(%s) %d vs %d", seed, d.PinName(u), g1, g2)
			}
			if c := derived.CreditAtDOf(dx, u); c != 0 {
				t.Fatalf("seed %d: cross-domain credit(%s) = %v, want 0", seed, d.PinName(u), c)
			}
		}
	}
}
