package lca

import "fastcppr/model"

// SkewReport is one clock domain's worst-skew summary
// (report_clock_skew style): the largest launch/capture clock-arrival
// divergence over FF clock-pin pairs of the domain, after CPPR
// correction under the requested mode.
//
// Setup is the worst (most negative) setup skew
// min over pairs (l, c) of early(c) - late(l) + credit(l, c):
// the capture-early vs. launch-late divergence the setup check pays,
// less the shared-path credit. Hold is the worst (largest) hold skew
// max over pairs (l, c) of late(c) - early(l) - credit(l, c). The two
// are exact negatives of each other (hold skew of (l, c) is minus the
// setup skew of (c, l)); both are reported in signoff-report style.
// The trivial same-pin pair is included, so a single-FF domain reports
// zero skew.
type SkewReport struct {
	// Root is the domain's clock source pin.
	Root model.PinID
	// FFs is the number of flip-flops clocked by this domain.
	FFs int
	// Setup and Hold are the worst CRPR-corrected skews (see above).
	Setup model.Time
	Hold  model.Time
}

// ClockSkew computes the worst CRPR-corrected clock skew of every
// domain in one O(#clock pins) bottom-up pass. For each tree node the
// pass keeps the per-parity min-early / max-late FF-leaf arrivals of
// the subtree; merging a child into its parent pairs the child's
// leaves against previously merged siblings' leaves — exactly the
// pairs whose LCA is the parent — with the parent's credit. Under
// same_transition only equal-parity pairs take the LCA credit;
// mixed-parity pairs are paired once per domain with zero credit.
// Domains with no FFs report zero skew.
func (t *Tree) ClockSkew(crpr model.CRPRMode) []SkewReport {
	nc := len(t.pins)
	const inf = model.MaxTime
	const ninf = model.MinTime
	// Per-parity subtree aggregates over FF clock leaves. Under
	// same_pin every leaf is filed under parity 0, making the parity
	// split a no-op.
	var mnE, mxL [2][]model.Time
	for p := 0; p < 2; p++ {
		mnE[p] = make([]model.Time, nc)
		mxL[p] = make([]model.Time, nc)
		for i := range mnE[p] {
			mnE[p][i] = inf
			mxL[p][i] = ninf
		}
	}
	best := make([]model.Time, nc) // per-domain (indexed by treeID) worst setup skew
	ffs := make([]int, nc)
	for i := range best {
		best[i] = inf
	}
	for i := range t.d.FFs {
		ci := t.idx[t.d.FFs[i].Clock]
		par := 0
		if crpr == model.CRPRSameTransition {
			par = int(t.parity[ci])
		}
		a := t.arrival[ci]
		if a.Early < mnE[par][ci] {
			mnE[par][ci] = a.Early
		}
		if a.Late > mxL[par][ci] {
			mxL[par][ci] = a.Late
		}
		ffs[t.treeID[ci]]++
	}
	// Children precede parents in reverse compact order; merging child
	// i into parent p pairs i's subtree against p's earlier-merged
	// children, i.e. exactly the pairs with LCA p.
	for i := nc - 1; i > 0; i-- {
		p := t.parent[i]
		if p < 0 {
			continue
		}
		dom := t.treeID[i]
		for par := 0; par < 2; par++ {
			if mnE[par][i] != inf && mxL[par][p] != ninf {
				if sk := mnE[par][i] - mxL[par][p] + t.credit[p]; sk < best[dom] {
					best[dom] = sk
				}
			}
			if mnE[par][p] != inf && mxL[par][i] != ninf {
				if sk := mnE[par][p] - mxL[par][i] + t.credit[p]; sk < best[dom] {
					best[dom] = sk
				}
			}
			if mnE[par][i] < mnE[par][p] {
				mnE[par][p] = mnE[par][i]
			}
			if mxL[par][i] > mxL[par][p] {
				mxL[par][p] = mxL[par][i]
			}
		}
	}
	var out []SkewReport
	for r := 0; r < nc; r++ {
		if t.parent[r] >= 0 {
			continue
		}
		sr := SkewReport{Root: t.pins[r], FFs: ffs[r]}
		w := best[r]
		// Mixed-parity pairs share no credited transition: pair the two
		// parity classes at the domain level with zero credit.
		if crpr == model.CRPRSameTransition {
			for par := 0; par < 2; par++ {
				if mnE[par][r] != inf && mxL[1-par][r] != ninf {
					if sk := mnE[par][r] - mxL[1-par][r]; sk < w {
						w = sk
					}
				}
			}
		}
		// The same-pin pair skews by exactly zero; it floors the report
		// and covers single-FF domains.
		if sr.FFs > 0 && w > 0 {
			w = 0
		}
		if sr.FFs == 0 {
			w = 0
		}
		sr.Setup = w
		sr.Hold = -w
		out = append(out, sr)
	}
	return out
}
