package mmheap

import (
	"sort"
	"testing"
)

// insertSorted keeps the reference model ordered.
func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// FuzzHeapAgainstReference drives the min-max heap with an operation
// stream decoded from fuzz data and checks every result and invariant
// against a sorted-slice reference model: Min/Max always equal the
// reference ends, pops return the reference ends, and PushBounded
// admits exactly the elements that belong to the bounded smallest set.
func FuzzHeapAgainstReference(f *testing.F) {
	f.Add([]byte{0, 5, 0, 3, 1, 0, 0, 7, 2, 0})
	f.Add([]byte{3, 1, 3, 2, 3, 3, 3, 4, 3, 5, 1, 0, 2, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := New(func(a, b int) bool { return a < b })
		var ref []int
		const bound = 5
		for i := 0; i+1 < len(data); i += 2 {
			op, val := data[i]%4, int(int8(data[i+1]))
			switch op {
			case 0:
				h.Push(val)
				ref = insertSorted(ref, val)
			case 1:
				got, ok := h.PopMin()
				if ok != (len(ref) > 0) {
					t.Fatalf("op %d: PopMin ok=%v with %d reference elements", i, ok, len(ref))
				}
				if ok {
					if got != ref[0] {
						t.Fatalf("op %d: PopMin = %d, want %d", i, got, ref[0])
					}
					ref = ref[1:]
				}
			case 2:
				got, ok := h.PopMax()
				if ok != (len(ref) > 0) {
					t.Fatalf("op %d: PopMax ok=%v with %d reference elements", i, ok, len(ref))
				}
				if ok {
					if got != ref[len(ref)-1] {
						t.Fatalf("op %d: PopMax = %d, want %d", i, got, ref[len(ref)-1])
					}
					ref = ref[:len(ref)-1]
				}
			case 3:
				kept := h.PushBounded(val, bound)
				wantKept := len(ref) < bound || val < ref[len(ref)-1]
				if kept != wantKept {
					t.Fatalf("op %d: PushBounded(%d) kept=%v, want %v (ref %v)", i, val, kept, wantKept, ref)
				}
				if wantKept {
					// Mirror the implementation: when plain Pushes have
					// overfilled past the bound, maxes are evicted down
					// to bound-1 BEFORE the insert — possibly evicting
					// elements smaller than val.
					for len(ref) >= bound {
						ref = ref[:len(ref)-1]
					}
					ref = insertSorted(ref, val)
				}
			}
			if h.Len() != len(ref) {
				t.Fatalf("op %d: Len=%d, reference %d", i, h.Len(), len(ref))
			}
			mn, okMn := h.Min()
			mx, okMx := h.Max()
			if okMn != (len(ref) > 0) || okMx != (len(ref) > 0) {
				t.Fatalf("op %d: Min/Max ok mismatch", i)
			}
			if len(ref) > 0 && (mn != ref[0] || mx != ref[len(ref)-1]) {
				t.Fatalf("op %d: Min/Max = %d/%d, want %d/%d", i, mn, mx, ref[0], ref[len(ref)-1])
			}
		}
	})
}

// FuzzKeyHeapAgainstReference is the same model check for the
// cache-friendly int64-keyed variant used on the hot candidate paths.
func FuzzKeyHeapAgainstReference(f *testing.F) {
	f.Add([]byte{0, 9, 0, 1, 1, 0, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := NewKey[int]()
		var ref []int
		for i := 0; i+1 < len(data); i += 2 {
			op, val := data[i]%3, int(int8(data[i+1]))
			switch op {
			case 0:
				h.Push(int64(val), val)
				ref = insertSorted(ref, val)
			case 1:
				got, ok := h.PopMin()
				if ok != (len(ref) > 0) {
					t.Fatalf("op %d: PopMin ok=%v with %d reference elements", i, ok, len(ref))
				}
				if ok {
					if got.K != int64(ref[0]) || got.V != ref[0] {
						t.Fatalf("op %d: PopMin = %d/%d, want %d", i, got.K, got.V, ref[0])
					}
					ref = ref[1:]
				}
			case 2:
				got, ok := h.PopMax()
				if ok != (len(ref) > 0) {
					t.Fatalf("op %d: PopMax ok=%v with %d reference elements", i, ok, len(ref))
				}
				if ok {
					last := ref[len(ref)-1]
					if got.K != int64(last) {
						t.Fatalf("op %d: PopMax key = %d, want %d", i, got.K, last)
					}
					ref = ref[:len(ref)-1]
				}
			}
			if h.Len() != len(ref) {
				t.Fatalf("op %d: Len=%d, reference %d", i, h.Len(), len(ref))
			}
		}
	})
}
