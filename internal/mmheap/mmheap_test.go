package mmheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intHeap() *Heap[int] {
	return New(func(a, b int) bool { return a < b })
}

// checkInvariant verifies the min-max heap property: every element on a
// min level is <= all its descendants; every element on a max level is
// >= all its descendants.
func checkInvariant(t *testing.T, h *Heap[int]) {
	t.Helper()
	a := h.Slice()
	var walk func(root, i int, min bool)
	walk = func(root, i int, min bool) {
		if i >= len(a) {
			return
		}
		if i != root {
			if min && a[i] < a[root] {
				t.Fatalf("min-level violation: a[%d]=%d < a[%d]=%d (heap %v)", i, a[i], root, a[root], a)
			}
			if !min && a[i] > a[root] {
				t.Fatalf("max-level violation: a[%d]=%d > a[%d]=%d (heap %v)", i, a[i], root, a[root], a)
			}
		}
		walk(root, 2*i+1, min)
		walk(root, 2*i+2, min)
	}
	for i := range a {
		// Only need to check against children+grandchildren transitively;
		// full subtree check is strictly stronger and still fast at test sizes.
		walk(i, i, onMinLevel(i))
	}
}

func TestOnMinLevel(t *testing.T) {
	want := map[int]bool{0: true, 1: false, 2: false, 3: true, 4: true, 5: true, 6: true, 7: false, 14: false, 15: true}
	for i, w := range want {
		if onMinLevel(i) != w {
			t.Errorf("onMinLevel(%d) = %v, want %v", i, onMinLevel(i), w)
		}
	}
}

func TestEmptyHeap(t *testing.T) {
	h := intHeap()
	if _, ok := h.Min(); ok {
		t.Error("Min on empty returned ok")
	}
	if _, ok := h.Max(); ok {
		t.Error("Max on empty returned ok")
	}
	if _, ok := h.PopMin(); ok {
		t.Error("PopMin on empty returned ok")
	}
	if _, ok := h.PopMax(); ok {
		t.Error("PopMax on empty returned ok")
	}
	if h.Len() != 0 {
		t.Error("Len != 0")
	}
}

func TestSmallSizes(t *testing.T) {
	h := intHeap()
	h.Push(5)
	if mn, _ := h.Min(); mn != 5 {
		t.Error("Min of single")
	}
	if mx, _ := h.Max(); mx != 5 {
		t.Error("Max of single")
	}
	h.Push(3)
	if mn, _ := h.Min(); mn != 3 {
		t.Error("Min of two")
	}
	if mx, _ := h.Max(); mx != 5 {
		t.Error("Max of two")
	}
	if x, _ := h.PopMax(); x != 5 {
		t.Error("PopMax of two")
	}
	if x, _ := h.PopMin(); x != 3 {
		t.Error("PopMin after PopMax")
	}
}

func TestAscendingDrain(t *testing.T) {
	h := intHeap()
	rng := rand.New(rand.NewSource(1))
	const n = 500
	vals := make([]int, n)
	for i := range vals {
		vals[i] = rng.Intn(100) // duplicates likely
		h.Push(vals[i])
		checkInvariant(t, h)
	}
	sort.Ints(vals)
	for i := 0; i < n; i++ {
		got, ok := h.PopMin()
		if !ok || got != vals[i] {
			t.Fatalf("PopMin #%d = %d (ok=%v), want %d", i, got, ok, vals[i])
		}
	}
}

func TestDescendingDrain(t *testing.T) {
	h := intHeap()
	rng := rand.New(rand.NewSource(2))
	const n = 500
	vals := make([]int, n)
	for i := range vals {
		vals[i] = rng.Intn(100)
		h.Push(vals[i])
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vals)))
	for i := 0; i < n; i++ {
		got, ok := h.PopMax()
		if !ok || got != vals[i] {
			t.Fatalf("PopMax #%d = %d (ok=%v), want %d", i, got, ok, vals[i])
		}
		checkInvariant(t, h)
	}
}

func TestInterleavedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := intHeap()
	var ref []int
	for op := 0; op < 5000; op++ {
		switch r := rng.Intn(4); {
		case r <= 1 || len(ref) == 0: // push
			v := rng.Intn(1000)
			h.Push(v)
			ref = append(ref, v)
			sort.Ints(ref)
		case r == 2: // pop min
			got, ok := h.PopMin()
			if !ok || got != ref[0] {
				t.Fatalf("op %d: PopMin = %d, want %d", op, got, ref[0])
			}
			ref = ref[1:]
		default: // pop max
			got, ok := h.PopMax()
			if !ok || got != ref[len(ref)-1] {
				t.Fatalf("op %d: PopMax = %d, want %d", op, got, ref[len(ref)-1])
			}
			ref = ref[:len(ref)-1]
		}
		if h.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, h.Len(), len(ref))
		}
	}
}

func TestPushBounded(t *testing.T) {
	h := intHeap()
	if h.PushBounded(1, 0) {
		t.Error("PushBounded with bound 0 accepted")
	}
	for i := 10; i > 0; i-- {
		h.PushBounded(i, 5)
	}
	if h.Len() != 5 {
		t.Fatalf("Len = %d, want 5", h.Len())
	}
	// The 5 smallest of 10..1 are 1..5.
	for want := 1; want <= 5; want++ {
		got, _ := h.PopMin()
		if got != want {
			t.Fatalf("PopMin = %d, want %d", got, want)
		}
	}
}

func TestPushBoundedRejectsWorse(t *testing.T) {
	h := intHeap()
	for i := 0; i < 5; i++ {
		h.PushBounded(i, 5)
	}
	if h.PushBounded(100, 5) {
		t.Error("accepted element worse than max at capacity")
	}
	if !h.PushBounded(-1, 5) {
		t.Error("rejected element better than max")
	}
	if h.Len() != 5 {
		t.Errorf("Len = %d, want 5", h.Len())
	}
	if mx, _ := h.Max(); mx != 3 {
		t.Errorf("Max = %d, want 3 (4 evicted)", mx)
	}
}

func TestPushBoundedShrinkingBound(t *testing.T) {
	h := intHeap()
	for i := 0; i < 10; i++ {
		h.PushBounded(i, 10)
	}
	// Tighter bound must evict down to it on the next accepted push.
	if !h.PushBounded(-1, 4) {
		t.Fatal("push under tighter bound rejected")
	}
	if h.Len() != 4 {
		t.Errorf("Len = %d, want 4", h.Len())
	}
	want := []int{-1, 0, 1, 2}
	for _, w := range want {
		got, _ := h.PopMin()
		if got != w {
			t.Fatalf("PopMin = %d, want %d", got, w)
		}
	}
}

func TestPushBoundedEqualToMax(t *testing.T) {
	h := intHeap()
	for i := 0; i < 3; i++ {
		h.PushBounded(7, 3)
	}
	if h.PushBounded(7, 3) {
		t.Error("equal-to-max must be rejected (strict less)")
	}
}

func TestGrowAndReset(t *testing.T) {
	h := intHeap()
	h.Grow(100)
	if cap(h.a) < 100 {
		t.Error("Grow did not allocate")
	}
	h.Push(1)
	h.Push(2)
	h.Reset()
	if h.Len() != 0 {
		t.Error("Reset did not empty heap")
	}
	if _, ok := h.PopMin(); ok {
		t.Error("PopMin after Reset")
	}
}

func TestQuickHeapProperty(t *testing.T) {
	f := func(vals []int16) bool {
		h := intHeap()
		ref := make([]int, 0, len(vals))
		for _, v := range vals {
			h.Push(int(v))
			ref = append(ref, int(v))
		}
		sort.Ints(ref)
		// Alternate popping from both ends; must match sorted reference.
		lo, hi := 0, len(ref)-1
		for i := 0; lo <= hi; i++ {
			if i%2 == 0 {
				got, ok := h.PopMin()
				if !ok || got != ref[lo] {
					return false
				}
				lo++
			} else {
				got, ok := h.PopMax()
				if !ok || got != ref[hi] {
					return false
				}
				hi--
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickBoundedKeepsKSmallest(t *testing.T) {
	f := func(vals []int16, kRaw uint8) bool {
		k := int(kRaw)%16 + 1
		h := intHeap()
		ref := make([]int, 0, len(vals))
		for _, v := range vals {
			h.PushBounded(int(v), k)
			ref = append(ref, int(v))
		}
		sort.Ints(ref)
		if len(ref) > k {
			ref = ref[:k]
		}
		for _, want := range ref {
			got, ok := h.PopMin()
			if !ok || got != want {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPopMin(b *testing.B) {
	h := intHeap()
	rng := rand.New(rand.NewSource(9))
	vals := make([]int, 1024)
	for i := range vals {
		vals[i] = rng.Int()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(vals[i%len(vals)])
		if h.Len() > 512 {
			h.PopMin()
		}
	}
}

func BenchmarkPushBounded(b *testing.B) {
	h := intHeap()
	rng := rand.New(rand.NewSource(10))
	vals := make([]int, 1024)
	for i := range vals {
		vals[i] = rng.Int()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.PushBounded(vals[i%len(vals)], 256)
	}
}
