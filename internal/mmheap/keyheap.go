package mmheap

// KV pairs an int64 ordering key with a payload value.
type KV[V any] struct {
	K int64
	V V
}

// KeyHeap is a min-max heap specialised for int64 keys. It implements the
// same Atkinson et al. structure as Heap but with inline key comparisons,
// which removes the indirect comparator calls from the hot path of the
// path searches (the candidate heaps perform millions of comparisons per
// top-10K query).
type KeyHeap[V any] struct {
	a []KV[V]
}

// NewKey returns an empty key heap.
func NewKey[V any]() *KeyHeap[V] {
	return &KeyHeap[V]{}
}

// Len returns the number of elements.
func (h *KeyHeap[V]) Len() int { return len(h.a) }

// Reset discards all elements but keeps the backing storage.
func (h *KeyHeap[V]) Reset() {
	var zero KV[V]
	for i := range h.a {
		h.a[i] = zero // release payload references
	}
	h.a = h.a[:0]
}

// kcmp orders key a before key b on a min (or max) level.
func kcmp(min bool, a, b int64) bool {
	if min {
		return a < b
	}
	return b < a
}

// Push inserts an element.
func (h *KeyHeap[V]) Push(k int64, v V) {
	h.a = append(h.a, KV[V]{K: k, V: v})
	i := len(h.a) - 1
	if i == 0 {
		return
	}
	p := (i - 1) / 2
	if onMinLevel(i) {
		if h.a[p].K < h.a[i].K {
			h.a[p], h.a[i] = h.a[i], h.a[p]
			h.bubbleUp(p, false)
		} else {
			h.bubbleUp(i, true)
		}
	} else {
		if h.a[i].K < h.a[p].K {
			h.a[p], h.a[i] = h.a[i], h.a[p]
			h.bubbleUp(p, true)
		} else {
			h.bubbleUp(i, false)
		}
	}
}

func (h *KeyHeap[V]) bubbleUp(i int, min bool) {
	for i > 2 {
		g := ((i-1)/2 - 1) / 2
		if kcmp(min, h.a[i].K, h.a[g].K) {
			h.a[i], h.a[g] = h.a[g], h.a[i]
			i = g
		} else {
			return
		}
	}
}

// Min returns the smallest element without removing it.
func (h *KeyHeap[V]) Min() (KV[V], bool) {
	if len(h.a) == 0 {
		return KV[V]{}, false
	}
	return h.a[0], true
}

// Max returns the largest element without removing it.
func (h *KeyHeap[V]) Max() (KV[V], bool) {
	switch len(h.a) {
	case 0:
		return KV[V]{}, false
	case 1:
		return h.a[0], true
	case 2:
		return h.a[1], true
	}
	if h.a[1].K < h.a[2].K {
		return h.a[2], true
	}
	return h.a[1], true
}

// MaxKey returns the largest key, or ok=false when empty.
func (h *KeyHeap[V]) MaxKey() (int64, bool) {
	kv, ok := h.Max()
	return kv.K, ok
}

// PopMin removes and returns the smallest element.
func (h *KeyHeap[V]) PopMin() (KV[V], bool) {
	var zero KV[V]
	n := len(h.a)
	if n == 0 {
		return zero, false
	}
	x := h.a[0]
	last := n - 1
	h.a[0] = h.a[last]
	h.a[last] = zero
	h.a = h.a[:last]
	if last > 0 {
		h.trickleDown(0, true)
	}
	return x, true
}

// PopMax removes and returns the largest element.
func (h *KeyHeap[V]) PopMax() (KV[V], bool) {
	var zero KV[V]
	n := len(h.a)
	switch n {
	case 0:
		return zero, false
	case 1:
		x := h.a[0]
		h.a[0] = zero
		h.a = h.a[:0]
		return x, true
	case 2:
		x := h.a[1]
		h.a[1] = zero
		h.a = h.a[:1]
		return x, true
	}
	i := 1
	if h.a[1].K < h.a[2].K {
		i = 2
	}
	x := h.a[i]
	last := n - 1
	if i != last {
		h.a[i] = h.a[last]
	}
	h.a[last] = zero
	h.a = h.a[:last]
	if i < last {
		h.trickleDown(i, false)
	}
	return x, true
}

// PushBounded inserts (k, v) into a heap keeping at most bound smallest
// elements; see Heap.PushBounded for the exact semantics.
func (h *KeyHeap[V]) PushBounded(k int64, v V, bound int) bool {
	if bound <= 0 {
		return false
	}
	if len(h.a) < bound {
		h.Push(k, v)
		return true
	}
	max, _ := h.MaxKey()
	if k >= max {
		return false
	}
	for len(h.a) >= bound {
		h.PopMax()
	}
	h.Push(k, v)
	return true
}

func (h *KeyHeap[V]) trickleDown(i int, min bool) {
	n := len(h.a)
	for {
		best := -1
		c1, c2 := 2*i+1, 2*i+2
		for _, j := range [6]int{c1, c2, 2*c1 + 1, 2*c1 + 2, 2*c2 + 1, 2*c2 + 2} {
			if j < n && (best < 0 || kcmp(min, h.a[j].K, h.a[best].K)) {
				best = j
			}
		}
		if best < 0 {
			return
		}
		if best <= c2 {
			if kcmp(min, h.a[best].K, h.a[i].K) {
				h.a[best], h.a[i] = h.a[i], h.a[best]
			}
			return
		}
		if !kcmp(min, h.a[best].K, h.a[i].K) {
			return
		}
		h.a[best], h.a[i] = h.a[i], h.a[best]
		p := (best - 1) / 2
		if kcmp(min, h.a[p].K, h.a[best].K) {
			h.a[best], h.a[p] = h.a[p], h.a[best]
		}
		i = best
	}
}
