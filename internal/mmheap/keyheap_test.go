package mmheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeyHeapAgainstGenericHeap(t *testing.T) {
	// The key heap must behave exactly like the generic heap under a
	// long random op sequence.
	rng := rand.New(rand.NewSource(4))
	kh := NewKey[int]()
	gh := New(func(a, b int64) bool { return a < b })
	for op := 0; op < 8000; op++ {
		switch r := rng.Intn(5); {
		case r <= 2 || gh.Len() == 0:
			v := int64(rng.Intn(500))
			kh.Push(v, int(v))
			gh.Push(v)
		case r == 3:
			a, okA := kh.PopMin()
			b, okB := gh.PopMin()
			if okA != okB || a.K != b {
				t.Fatalf("op %d: PopMin %v/%v vs %v/%v", op, a.K, okA, b, okB)
			}
			if int64(a.V) != a.K {
				t.Fatalf("op %d: payload desynced", op)
			}
		default:
			a, okA := kh.PopMax()
			b, okB := gh.PopMax()
			if okA != okB || a.K != b {
				t.Fatalf("op %d: PopMax %v/%v vs %v/%v", op, a.K, okA, b, okB)
			}
		}
		if kh.Len() != gh.Len() {
			t.Fatalf("op %d: Len %d vs %d", op, kh.Len(), gh.Len())
		}
		km, okK := kh.Min()
		gm, okG := gh.Min()
		if okK != okG || (okK && km.K != gm) {
			t.Fatalf("op %d: Min mismatch", op)
		}
		kx, okK := kh.MaxKey()
		gx, okG := gh.Max()
		if okK != okG || (okK && kx != gx) {
			t.Fatalf("op %d: Max mismatch", op)
		}
	}
}

func TestKeyHeapEmpty(t *testing.T) {
	h := NewKey[string]()
	if _, ok := h.PopMin(); ok {
		t.Error("PopMin on empty")
	}
	if _, ok := h.PopMax(); ok {
		t.Error("PopMax on empty")
	}
	if _, ok := h.Min(); ok {
		t.Error("Min on empty")
	}
	if _, ok := h.MaxKey(); ok {
		t.Error("MaxKey on empty")
	}
}

func TestKeyHeapBounded(t *testing.T) {
	h := NewKey[int]()
	for i := 20; i > 0; i-- {
		h.PushBounded(int64(i), i, 6)
	}
	if h.Len() != 6 {
		t.Fatalf("Len = %d", h.Len())
	}
	for want := 1; want <= 6; want++ {
		kv, _ := h.PopMin()
		if kv.K != int64(want) || kv.V != want {
			t.Fatalf("PopMin = %v, want %d", kv, want)
		}
	}
	if h.PushBounded(1, 1, 0) {
		t.Error("bound 0 accepted")
	}
}

func TestKeyHeapReset(t *testing.T) {
	h := NewKey[*int]()
	x := 5
	h.Push(1, &x)
	h.Reset()
	if h.Len() != 0 {
		t.Error("Reset did not clear")
	}
	if _, ok := h.PopMin(); ok {
		t.Error("PopMin after Reset")
	}
}

func TestKeyHeapQuickSorted(t *testing.T) {
	f := func(vals []int32) bool {
		h := NewKey[struct{}]()
		ref := make([]int64, 0, len(vals))
		for _, v := range vals {
			h.Push(int64(v), struct{}{})
			ref = append(ref, int64(v))
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for _, want := range ref {
			kv, ok := h.PopMin()
			if !ok || kv.K != want {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKeyHeapPushBounded(b *testing.B) {
	h := NewKey[int]()
	rng := rand.New(rand.NewSource(11))
	vals := make([]int64, 1024)
	for i := range vals {
		vals[i] = rng.Int63()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.PushBounded(vals[i%len(vals)], i, 256)
	}
}
