// Package mmheap implements an implicit binary min-max heap
// (Atkinson, Sack, Santoro, Strothotte; CACM 1986).
//
// A min-max heap supports both pop-min and pop-max in O(log n), which lets
// the CPPR path searches keep the k best candidates in O(k) space: paths
// are popped from the min side in slack order while the max side evicts
// candidates that can no longer rank among the k smallest (the "Min-Max-
// Heap" of the paper's Algorithms 5 and 6).
package mmheap

import "math/bits"

// Heap is a min-max heap over elements of type T ordered by a strict
// less function supplied at construction. The zero value is not usable;
// call New.
type Heap[T any] struct {
	less func(a, b T) bool
	a    []T
}

// New returns an empty heap ordered by less. less must be a strict weak
// ordering ("a orders before b").
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of elements.
func (h *Heap[T]) Len() int { return len(h.a) }

// Reset discards all elements but keeps the backing storage.
func (h *Heap[T]) Reset() { h.a = h.a[:0] }

// Grow pre-allocates capacity for n total elements.
func (h *Heap[T]) Grow(n int) {
	if cap(h.a) < n {
		b := make([]T, len(h.a), n)
		copy(b, h.a)
		h.a = b
	}
}

// onMinLevel reports whether index i lies on a min level (even depth).
func onMinLevel(i int) bool {
	return (bits.Len(uint(i)+1)-1)&1 == 0
}

// cmp orders a before b on a min level (min=true) or a max level.
func (h *Heap[T]) cmp(min bool, a, b T) bool {
	if min {
		return h.less(a, b)
	}
	return h.less(b, a)
}

// Push inserts x.
func (h *Heap[T]) Push(x T) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	if i == 0 {
		return
	}
	p := (i - 1) / 2
	if onMinLevel(i) {
		if h.less(h.a[p], h.a[i]) {
			h.a[p], h.a[i] = h.a[i], h.a[p]
			h.bubbleUp(p, false)
		} else {
			h.bubbleUp(i, true)
		}
	} else {
		if h.less(h.a[i], h.a[p]) {
			h.a[p], h.a[i] = h.a[i], h.a[p]
			h.bubbleUp(p, true)
		} else {
			h.bubbleUp(i, false)
		}
	}
}

// bubbleUp moves the element at i toward the root along grandparents.
func (h *Heap[T]) bubbleUp(i int, min bool) {
	for i > 2 {
		g := ((i-1)/2 - 1) / 2
		if h.cmp(min, h.a[i], h.a[g]) {
			h.a[i], h.a[g] = h.a[g], h.a[i]
			i = g
		} else {
			return
		}
	}
}

// Min returns the smallest element without removing it.
func (h *Heap[T]) Min() (T, bool) {
	var zero T
	if len(h.a) == 0 {
		return zero, false
	}
	return h.a[0], true
}

// Max returns the largest element without removing it.
func (h *Heap[T]) Max() (T, bool) {
	var zero T
	switch len(h.a) {
	case 0:
		return zero, false
	case 1:
		return h.a[0], true
	case 2:
		return h.a[1], true
	}
	if h.less(h.a[1], h.a[2]) {
		return h.a[2], true
	}
	return h.a[1], true
}

// PopMin removes and returns the smallest element.
func (h *Heap[T]) PopMin() (T, bool) {
	var zero T
	n := len(h.a)
	if n == 0 {
		return zero, false
	}
	x := h.a[0]
	last := n - 1
	h.a[0] = h.a[last]
	h.a[last] = zero // release references for GC
	h.a = h.a[:last]
	if last > 0 {
		h.trickleDown(0, true)
	}
	return x, true
}

// PopMax removes and returns the largest element.
func (h *Heap[T]) PopMax() (T, bool) {
	var zero T
	n := len(h.a)
	switch n {
	case 0:
		return zero, false
	case 1:
		x := h.a[0]
		h.a[0] = zero
		h.a = h.a[:0]
		return x, true
	case 2:
		x := h.a[1]
		h.a[1] = zero
		h.a = h.a[:1]
		return x, true
	}
	i := 1
	if h.less(h.a[1], h.a[2]) {
		i = 2
	}
	x := h.a[i]
	last := n - 1
	if i != last {
		h.a[i] = h.a[last]
	}
	h.a[last] = zero
	h.a = h.a[:last]
	if i < last {
		h.trickleDown(i, false)
	}
	return x, true
}

// PushBounded inserts x into a heap constrained to hold at most bound
// elements that are candidates for the bound smallest values. If the heap
// is full and x orders at or after the current maximum, x is discarded and
// PushBounded returns false; if the heap is full and x orders before the
// maximum, the maximum is evicted. bound must be positive for any insert
// to happen.
func (h *Heap[T]) PushBounded(x T, bound int) bool {
	if bound <= 0 {
		return false
	}
	if len(h.a) < bound {
		h.Push(x)
		return true
	}
	max, _ := h.Max()
	if !h.less(x, max) {
		return false
	}
	// Evict enough to respect the bound (handles a bound that shrank
	// between calls, as the searches tighten remaining-output counts).
	for len(h.a) >= bound {
		h.PopMax()
	}
	h.Push(x)
	return true
}

// trickleDown restores the heap property downward from i on a min (or max)
// level.
func (h *Heap[T]) trickleDown(i int, min bool) {
	n := len(h.a)
	for {
		// Find the extreme among children and grandchildren.
		best := -1
		c1, c2 := 2*i+1, 2*i+2
		for _, j := range [6]int{c1, c2, 2*c1 + 1, 2*c1 + 2, 2*c2 + 1, 2*c2 + 2} {
			if j < n && (best < 0 || h.cmp(min, h.a[j], h.a[best])) {
				best = j
			}
		}
		if best < 0 {
			return
		}
		if best <= c2 {
			// best is a child: single comparison level.
			if h.cmp(min, h.a[best], h.a[i]) {
				h.a[best], h.a[i] = h.a[i], h.a[best]
			}
			return
		}
		// best is a grandchild.
		if !h.cmp(min, h.a[best], h.a[i]) {
			return
		}
		h.a[best], h.a[i] = h.a[i], h.a[best]
		p := (best - 1) / 2
		if h.cmp(min, h.a[p], h.a[best]) {
			h.a[best], h.a[p] = h.a[p], h.a[best]
		}
		i = best
	}
}

// Slice returns the underlying storage in heap order. The caller must not
// modify element ordering-relevant state. Intended for draining: callers
// that want sorted output should PopMin repeatedly instead.
func (h *Heap[T]) Slice() []T { return h.a }
