package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"fastcppr/cppr"
	"fastcppr/internal/difftest"
	"fastcppr/internal/report"
	"fastcppr/model"
)

// MCMMStats is the machine-readable result of the multi-corner fan-out
// experiment, committed as BENCH_mcmm.json for regression tracking. The
// headline Speedup compares ReportBatch's corner fan-out (per-corner
// execution units deduplicated and K-prefix-merged across the workload,
// all corners sharing one clock-tree/LCA substrate) against the serial
// path: each query answered by Run's sequential corner loop.
type MCMMStats struct {
	Host    string  `json:"host"`
	Design  string  `json:"design"`
	Scale   float64 `json:"scale"`
	Corners int     `json:"corners"`
	Queries int     `json:"queries"`
	Reps    int     `json:"reps"`
	// BatchNs: one multi-corner Timer, ReportBatch over the workload
	// with every query selecting CornerAll.
	BatchNs []int64 `json:"batch_ns"`
	// SerialNs: the same Timer and queries, each answered by Run —
	// which evaluates corners one at a time with no sharing across
	// queries or corners.
	SerialNs []int64 `json:"serial_ns"`
	// StandaloneNs: the pre-MCMM workflow — one independent
	// single-corner Timer per corner (construction not measured), the
	// workload run serially on each; the client merges afterwards.
	StandaloneNs   []int64 `json:"standalone_ns"`
	BestBatch      int64   `json:"best_batch_ns"`
	BestSer        int64   `json:"best_serial_ns"`
	BestStandalone int64   `json:"best_standalone_ns"`
	// Speedup is best serial over best batch — the acceptance number.
	Speedup           float64 `json:"speedup"`
	StandaloneSpeedup float64 `json:"standalone_speedup"`
	// QPS is the fan-out executor's aggregate throughput over its best
	// repetition, counting user-visible (merged) queries per second.
	QPS float64 `json:"queries_per_second"`
}

// mcmmCorners extends the preset design to n corners whose arc delays
// are seeded per-arc jitters of the base corner, so every corner owns a
// full delay table and genuinely different critical paths.
func mcmmCorners(d *model.Design, n int) (*model.Design, error) {
	for i := 1; i < n; i++ {
		var err error
		d, _, err = difftest.JitteredCorner(d, fmt.Sprintf("corner%d", i), int64(4000+i), 0.25)
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// MCMM measures the multi-corner fan-out: the batch workload with every
// query asking for all corners, answered three ways — ReportBatch on one
// multi-corner Timer, serial Run on the same Timer, and the pre-MCMM
// baseline of N independent single-corner Timers. When cfg.JSONOut is
// set, the stats are also encoded there as JSON.
func MCMM(cfg Config) error {
	cfg = cfg.withDefaults()
	if cfg.Corners < 1 || cfg.Corners > model.MaxCorners {
		return fmt.Errorf("mcmm: corner count %d out of range [1, %d]", cfg.Corners, model.MaxCorners)
	}
	dc := newDesignCache(cfg.Scale)
	const design = "leon2"
	base, err := dc.get(design)
	if err != nil {
		return err
	}
	d, err := mcmmCorners(base, cfg.Corners)
	if err != nil {
		return err
	}

	timer := cppr.NewTimer(d)
	timer.SetBudgets(cfg.MaxTuples, cfg.MaxPops)
	standalone := make([]*cppr.Timer, cfg.Corners)
	for c := 0; c < cfg.Corners; c++ {
		standalone[c] = cppr.NewTimer(d.View(model.Corner(c)))
		standalone[c].SetBudgets(cfg.MaxTuples, cfg.MaxPops)
	}
	queries := batchWorkload()
	// NoCache for the same reason as the Batch experiment: the serial
	// and standalone baselines must not be served from the cross-call
	// query memo, or the fan-out ratio measures cache hits, not corner
	// work-sharing.
	for i := range queries {
		queries[i].Corners = cppr.CornerAll
		queries[i].NoCache = true
	}

	const reps = 3
	stats := MCMMStats{
		Host:    HostInfo(),
		Design:  design,
		Scale:   cfg.Scale,
		Corners: cfg.Corners,
		Queries: len(queries),
		Reps:    reps,
	}
	for r := 0; r < reps; r++ {
		start := time.Now()
		results, err := timer.ReportBatch(cfg.Ctx, queries)
		if err != nil {
			return err
		}
		for i := range results {
			if results[i].Err != nil {
				return results[i].Err
			}
		}
		stats.BatchNs = append(stats.BatchNs, time.Since(start).Nanoseconds())

		start = time.Now()
		for _, q := range queries {
			if _, err := timer.Run(cfg.Ctx, q); err != nil {
				return err
			}
		}
		stats.SerialNs = append(stats.SerialNs, time.Since(start).Nanoseconds())

		start = time.Now()
		for c := 0; c < cfg.Corners; c++ {
			for _, q := range queries {
				q.Corners = 0 // each standalone timer is single-corner
				if _, err := standalone[c].Run(cfg.Ctx, q); err != nil {
					return err
				}
			}
		}
		stats.StandaloneNs = append(stats.StandaloneNs, time.Since(start).Nanoseconds())
	}
	best := func(ns []int64) int64 {
		b := ns[0]
		for _, v := range ns[1:] {
			if v < b {
				b = v
			}
		}
		return b
	}
	stats.BestBatch = best(stats.BatchNs)
	stats.BestSer = best(stats.SerialNs)
	stats.BestStandalone = best(stats.StandaloneNs)
	stats.Speedup = float64(stats.BestSer) / float64(stats.BestBatch)
	stats.StandaloneSpeedup = float64(stats.BestStandalone) / float64(stats.BestBatch)
	stats.QPS = float64(stats.Queries) / (float64(stats.BestBatch) / 1e9)

	t := report.NewTable(
		fmt.Sprintf("MCMM fan-out: %d queries × %d corners on %s (scale %g, best of %d)",
			stats.Queries, stats.Corners, design, cfg.Scale, reps),
		"mode", "runtime(s)", "queries/s")
	t.Add("serial Run (corner loop)", fmt.Sprintf("%.3f", float64(stats.BestSer)/1e9),
		fmt.Sprintf("%.2f", float64(stats.Queries)/(float64(stats.BestSer)/1e9)))
	t.Add("standalone single-corner timers", fmt.Sprintf("%.3f", float64(stats.BestStandalone)/1e9),
		fmt.Sprintf("%.2f", float64(stats.Queries)/(float64(stats.BestStandalone)/1e9)))
	t.Add("ReportBatch fan-out", fmt.Sprintf("%.3f", float64(stats.BestBatch)/1e9),
		fmt.Sprintf("%.2f", stats.QPS))
	if _, err := fmt.Fprintln(cfg.Out, t); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(cfg.Out, "fan-out speedup over serial corners: %.2fx (over standalone timers: %.2fx)\n\n",
		stats.Speedup, stats.StandaloneSpeedup); err != nil {
		return err
	}
	if cfg.JSONOut != nil {
		enc := json.NewEncoder(cfg.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			return err
		}
	}
	return nil
}
