package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"fastcppr/cppr"
	"fastcppr/internal/report"
	"fastcppr/model"
)

// SparseQueryStat is one query's sparse-vs-dense kernel measurement.
type SparseQueryStat struct {
	Mode     string  `json:"mode"`
	K        int     `json:"k"`
	SparseNs int64   `json:"sparse_ns"`
	DenseNs  int64   `json:"dense_ns"`
	Speedup  float64 `json:"speedup"`
}

// SparseStats is the machine-readable result of the sparse-kernel
// experiment, committed as BENCH_sparse.json for regression tracking.
// Speedups are dense/sparse wall-time ratios on identical queries whose
// reports are byte-identical (see internal/difftest), so the ratio is
// pure kernel work, not an accuracy trade.
type SparseStats struct {
	Host    string            `json:"host"`
	Design  string            `json:"design"`
	Scale   float64           `json:"scale"`
	Threads int               `json:"threads"`
	Reps    int               `json:"reps"`
	Queries []SparseQueryStat `json:"queries"`
	// MinSpeedup is the smallest per-query speedup — the conservative
	// headline number.
	MinSpeedup float64 `json:"min_speedup"`
	// GeoMeanSpeedup is the geometric mean over the measured queries.
	GeoMeanSpeedup float64 `json:"geomean_speedup"`
}

// Sparse measures the sparse frontier propagation kernel against the
// dense reference kernel (Query.DenseKernel) on the leon2-class preset —
// the deepest clock tree of the suite (85 levels at full size), where
// the dense kernel's Θ(levels × (pins + arcs)) cost is most pronounced.
// Single-threaded, so the ratio is per-job kernel work rather than
// scheduling. When cfg.JSONOut is set, the stats are also encoded there
// as JSON.
func Sparse(cfg Config) error {
	cfg = cfg.withDefaults()
	dc := newDesignCache(cfg.Scale)
	const design = "leon2"
	d, err := dc.get(design)
	if err != nil {
		return err
	}
	timer := cppr.NewTimer(d)
	timer.SetBudgets(cfg.MaxTuples, cfg.MaxPops)

	const reps = 3
	stats := SparseStats{
		Host:    HostInfo(),
		Design:  design,
		Scale:   cfg.Scale,
		Threads: 1,
		Reps:    reps,
	}
	measure := func(q cppr.Query) (int64, error) {
		best := int64(math.MaxInt64)
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, err := timer.Run(cfg.Ctx, q); err != nil {
				return 0, err
			}
			if ns := time.Since(start).Nanoseconds(); ns < best {
				best = ns
			}
		}
		return best, nil
	}

	t := report.NewTable(
		fmt.Sprintf("Sparse vs dense kernel: %s (scale %g, 1 thread, best of %d)", design, cfg.Scale, reps),
		"mode", "k", "dense(s)", "sparse(s)", "speedup")
	for _, mode := range model.Modes {
		for _, k := range []int{1, 100} {
			q := cppr.Query{K: k, Mode: mode, Threads: 1}
			sparseNs, err := measure(q)
			if err != nil {
				return err
			}
			q.DenseKernel = true
			denseNs, err := measure(q)
			if err != nil {
				return err
			}
			qs := SparseQueryStat{
				Mode:     mode.String(),
				K:        k,
				SparseNs: sparseNs,
				DenseNs:  denseNs,
				Speedup:  float64(denseNs) / float64(sparseNs),
			}
			stats.Queries = append(stats.Queries, qs)
			t.Add(qs.Mode, fmt.Sprintf("%d", k),
				fmt.Sprintf("%.3f", float64(denseNs)/1e9),
				fmt.Sprintf("%.3f", float64(sparseNs)/1e9),
				fmt.Sprintf("%.2fx", qs.Speedup))
		}
	}
	stats.MinSpeedup = math.Inf(1)
	logSum := 0.0
	for _, qs := range stats.Queries {
		if qs.Speedup < stats.MinSpeedup {
			stats.MinSpeedup = qs.Speedup
		}
		logSum += math.Log(qs.Speedup)
	}
	stats.GeoMeanSpeedup = math.Exp(logSum / float64(len(stats.Queries)))

	if _, err := fmt.Fprintln(cfg.Out, t); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(cfg.Out, "kernel speedup: min %.2fx, geomean %.2fx\n\n",
		stats.MinSpeedup, stats.GeoMeanSpeedup); err != nil {
		return err
	}
	if cfg.JSONOut != nil {
		enc := json.NewEncoder(cfg.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			return err
		}
	}
	return nil
}
