package experiments

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

// tinyCfg keeps experiment smoke tests fast: two small designs, small k.
func tinyCfg(buf *bytes.Buffer) Config {
	return Config{
		Out:     buf,
		Scale:   0.004,
		Designs: []string{"vga_lcdv2", "leon2"},
		Ks:      []int{1, 10},
		Threads: 2,
	}
}

func TestTable3Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table III", "vga_lcdv2", "leon2", "FF connectivity", "(56)", "(85)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 output missing %q", want)
		}
	}
}

func TestTable4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table4 smoke is slow")
	}
	var buf bytes.Buffer
	if err := Table4(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table IV", "ours-2T", "pairwise-2T", "blockwise-1T", "bnb-2T", "Average runtime ratios"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5And6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smokes are slow")
	}
	var buf bytes.Buffer
	if err := Fig5(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 5") || !strings.Contains(buf.String(), "10000") {
		t.Error("Fig5 output incomplete")
	}
	buf.Reset()
	if err := Fig6(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 6") || !strings.Contains(buf.String(), "16") {
		t.Error("Fig6 output incomplete")
	}
}

func TestAccuracySmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Accuracy(tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Accuracy audit") || !strings.Contains(out, "OK") {
		t.Errorf("Accuracy output incomplete:\n%s", out)
	}
}

func TestUnknownDesignFails(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.Designs = []string{"nope"}
	if err := Table3(cfg); err == nil {
		t.Fatal("unknown design accepted")
	}
	if err := Table4(cfg); err == nil {
		t.Fatal("unknown design accepted by Table4")
	}
}

func TestColumnsCollapseAtOneThread(t *testing.T) {
	cols := table4Columns(1, false)
	if len(cols) != 4 {
		t.Fatalf("expected 4 columns at 1 thread, got %d", len(cols))
	}
	for _, c := range cols {
		if c.label == "ours-1T" && c.threads != 1 {
			t.Error("ours-1T column has wrong threads")
		}
	}
	if got := len(table4Columns(8, false)); got != 5 {
		t.Fatalf("expected 5 columns at 8 threads, got %d", got)
	}
	if got := len(table4Columns(1, true)); got != 1 {
		t.Fatalf("expected 1 column ours-only, got %d", got)
	}
}

func TestHostInfo(t *testing.T) {
	if !strings.Contains(HostInfo(), "CPU core") {
		t.Error("HostInfo malformed")
	}
}

func TestIncrementalSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("incremental smoke is slow")
	}
	var buf, jsonBuf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.JSONOut = &jsonBuf
	if err := Incremental(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Incremental edit", "leon2", "vga_lcdv2", "memo-hit"} {
		if !strings.Contains(out, want) {
			t.Errorf("Incremental output missing %q", want)
		}
	}
	var st IncrementalStats
	if err := json.Unmarshal(jsonBuf.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Scenarios) != 3 {
		t.Fatalf("got %d scenarios, want 3", len(st.Scenarios))
	}
	if st.HeadlineSpeedup <= 0 {
		t.Fatalf("headline speedup %v not positive", st.HeadlineSpeedup)
	}
	for _, sc := range st.Scenarios {
		if sc.WarmNs <= 0 || sc.ColdNs <= 0 || sc.MemoHitNs <= 0 {
			t.Fatalf("unmeasured scenario: %+v", sc)
		}
	}
}

// TestParallelSpeedupFloor exercises the MinBatchSpeedup gate in both
// of its host regimes: a trivially clearable floor always passes, and
// then either (multi-core) an absurd floor must fail, or (single-core)
// the gate must degrade to the logged skip because wall-clock speedup
// is impossible there.
func TestParallelSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel smoke is slow")
	}
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.MinBatchSpeedup = 0.01
	if err := Parallel(cfg); err != nil {
		t.Fatalf("trivially clearable floor failed: %v", err)
	}
	if runtime.NumCPU() == 1 {
		if !strings.Contains(buf.String(), "not enforced on a single-core host") {
			t.Error("single-core skip line missing")
		}
		buf.Reset()
		cfg.MinBatchSpeedup = 1000
		if err := Parallel(cfg); err != nil {
			t.Fatalf("floor armed on a single-core host: %v", err)
		}
	} else {
		buf.Reset()
		cfg.MinBatchSpeedup = 1e9
		if err := Parallel(cfg); err == nil {
			t.Fatal("absurd floor passed on a multi-core host")
		} else if !strings.Contains(err.Error(), "below the") {
			t.Fatalf("wrong error for floor violation: %v", err)
		}
	}
}

// TestHierSmoke runs the hierarchical experiment end to end at tiny
// scale and checks the table, the headline line, and the JSON shape.
func TestHierSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("hier smoke is slow")
	}
	var buf, jsonBuf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.JSONOut = &jsonBuf
	if err := Hier(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Hierarchical CPPR", "blocked_array", "leon2", "hierarchical speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("Hier output missing %q", want)
		}
	}
	var st HierStats
	if err := json.Unmarshal(jsonBuf.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Scenarios) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(st.Scenarios))
	}
	head := st.Scenarios[0]
	if head.Design != "blocked_array" || head.Extracted != 1 || head.Reused < 2 {
		t.Fatalf("headline scenario wrong: %+v", head)
	}
	if st.HeadlineReuses != head.Reused {
		t.Fatalf("headline reuses %d != scenario reuses %d", st.HeadlineReuses, head.Reused)
	}
	for _, sc := range st.Scenarios {
		if sc.FlatNs <= 0 || sc.ElabNs <= 0 || len(sc.Runs) != len(hierWorkers) {
			t.Fatalf("unmeasured scenario: %+v", sc)
		}
	}
}
