package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"fastcppr/cppr"
	"fastcppr/internal/report"
	"fastcppr/model"
)

// batchWorkload is the batch-executor benchmark workload: 8 independent
// queries a signoff client would issue together (both modes at several
// path counts). Identical to the BenchmarkBatch* workload at the repo
// root so `go test -bench Batch` and `cpprbench -batch` measure the
// same thing.
func batchWorkload() []cppr.Query {
	return []cppr.Query{
		{K: 1, Mode: model.Setup},
		{K: 10, Mode: model.Setup},
		{K: 100, Mode: model.Setup},
		{K: 1000, Mode: model.Setup},
		{K: 1, Mode: model.Hold},
		{K: 10, Mode: model.Hold},
		{K: 100, Mode: model.Hold},
		{K: 1000, Mode: model.Hold},
	}
}

// BatchStats is the machine-readable result of the batch experiment,
// committed as BENCH_batch.json for regression tracking.
type BatchStats struct {
	Host      string  `json:"host"`
	Design    string  `json:"design"`
	Scale     float64 `json:"scale"`
	Queries   int     `json:"queries"`
	Reps      int     `json:"reps"`
	BatchNs   []int64 `json:"batch_ns"`
	SerialNs  []int64 `json:"serial_ns"`
	BestBatch int64   `json:"best_batch_ns"`
	BestSer   int64   `json:"best_serial_ns"`
	Speedup   float64 `json:"speedup"`
	// QPS is the batch executor's aggregate throughput over its best
	// repetition, in queries per second.
	QPS float64 `json:"queries_per_second"`
}

// Batch measures Timer.ReportBatch against the same queries run
// serially on the largest generated design and prints both, plus the
// aggregate batch throughput. When cfg.JSONOut is set, the stats are
// also encoded there as JSON.
func Batch(cfg Config) error {
	cfg = cfg.withDefaults()
	dc := newDesignCache(cfg.Scale)
	const design = "leon2"
	d, err := dc.get(design)
	if err != nil {
		return err
	}
	timer := cppr.NewTimer(d)
	timer.SetBudgets(cfg.MaxTuples, cfg.MaxPops)
	queries := batchWorkload()
	// NoCache keeps this experiment measuring what it claims: executor
	// work-sharing within one call versus a serial loop with none. With
	// the incremental caches live, the serial baseline would be served
	// from the cross-call query memo (and every rep after the first
	// would be pure memo hits on both sides) — that effect is the
	// Incremental experiment's subject, not this one's.
	for i := range queries {
		queries[i].NoCache = true
	}

	const reps = 3
	stats := BatchStats{
		Host:    HostInfo(),
		Design:  design,
		Scale:   cfg.Scale,
		Queries: len(queries),
		Reps:    reps,
	}
	for r := 0; r < reps; r++ {
		start := time.Now()
		results, err := timer.ReportBatch(cfg.Ctx, queries)
		if err != nil {
			return err
		}
		for i := range results {
			if results[i].Err != nil {
				return results[i].Err
			}
		}
		stats.BatchNs = append(stats.BatchNs, time.Since(start).Nanoseconds())

		start = time.Now()
		for _, q := range queries {
			if _, err := timer.Run(cfg.Ctx, q); err != nil {
				return err
			}
		}
		stats.SerialNs = append(stats.SerialNs, time.Since(start).Nanoseconds())
	}
	best := func(ns []int64) int64 {
		b := ns[0]
		for _, v := range ns[1:] {
			if v < b {
				b = v
			}
		}
		return b
	}
	stats.BestBatch = best(stats.BatchNs)
	stats.BestSer = best(stats.SerialNs)
	stats.Speedup = float64(stats.BestSer) / float64(stats.BestBatch)
	stats.QPS = float64(stats.Queries) / (float64(stats.BestBatch) / 1e9)

	t := report.NewTable(
		fmt.Sprintf("Batch executor: %d queries on %s (scale %g, best of %d)", stats.Queries, design, cfg.Scale, reps),
		"mode", "runtime(s)", "queries/s")
	t.Add("serial Run", fmt.Sprintf("%.3f", float64(stats.BestSer)/1e9),
		fmt.Sprintf("%.2f", float64(stats.Queries)/(float64(stats.BestSer)/1e9)))
	t.Add("ReportBatch", fmt.Sprintf("%.3f", float64(stats.BestBatch)/1e9),
		fmt.Sprintf("%.2f", stats.QPS))
	if _, err := fmt.Fprintln(cfg.Out, t); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(cfg.Out, "batch speedup over serial: %.2fx\n\n", stats.Speedup); err != nil {
		return err
	}
	if cfg.JSONOut != nil {
		enc := json.NewEncoder(cfg.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			return err
		}
	}
	return nil
}
