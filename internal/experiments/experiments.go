// Package experiments regenerates the tables and figures of the paper's
// evaluation section on synthetic stand-ins for the TAU benchmarks:
//
//	Table III — benchmark statistics
//	Table IV  — runtime/memory of four timers × designs × k, with ratios
//	Figure 5  — runtime/memory vs. k on the leon2-class design
//	Figure 6  — runtime/memory vs. thread count at k=1000
//
// plus an accuracy audit (the paper's "full accuracy" claim) that checks
// every algorithm against the brute-force oracle and pairwise against the
// LCA engine on larger designs.
//
// Both cmd/cpprbench and the repository-root benchmarks drive these
// functions; keeping them here guarantees the CLI and `go test -bench`
// report the same experiment definitions.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/internal/baseline"
	"fastcppr/internal/report"
	"fastcppr/model"
)

// Config parameterises an experiment run.
type Config struct {
	// Ctx bounds the whole run: cancellation or deadline expiry aborts
	// the in-flight query and the experiment returns the context error.
	// Nil means context.Background().
	Ctx context.Context
	// Out receives the rendered tables.
	Out io.Writer
	// Scale scales the Table III element counts (1.0 = published size).
	// The default 0.02 sizes the full suite for a laptop-class machine.
	Scale float64
	// Designs restricts the preset list; empty means all eight.
	Designs []string
	// Ks are the path counts measured by Table IV.
	Ks []int
	// Threads is the "parallel" thread count of the paper's setup
	// (ours/OpenTimer/iTimerC use 8 threads there).
	Threads int
	// MaxTuples/MaxPops are the baseline failure budgets (0 = default).
	MaxTuples, MaxPops int
	// OursOnly restricts Table IV / Figure 5 to the LCA engine — used
	// for full-published-size capability runs where the baselines'
	// #FF-proportional costs are prohibitive.
	OursOnly bool
	// Corners is the corner count of the MCMM fan-out experiment
	// (0 = 4). Extra corners are seeded per-arc jitters of the base.
	Corners int
	// JSONOut, when non-nil, receives a machine-readable encoding of
	// experiments that produce one (currently Batch).
	JSONOut io.Writer
	// MinBatchSpeedup, when positive, makes the Parallel experiment
	// fail unless its best batch speedup reaches this floor. The check
	// only arms on multi-core hosts — a single-core machine cannot
	// exhibit wall-clock speedup, so there it degrades to a logged
	// skip. CI runs on multi-core runners enforce it; local one-core
	// runs stay honest without false failures.
	MinBatchSpeedup float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Scale == 0 {
		c.Scale = 0.02
	}
	if len(c.Designs) == 0 {
		c.Designs = gen.PresetNames()
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{1, 100, 10000}
	}
	if c.Corners == 0 {
		c.Corners = 4
	}
	if c.Threads == 0 {
		// The paper compares at 8 threads on a 40-core machine. On a
		// host without real parallelism extra workers are pure
		// overhead, so default to the host's usable parallelism.
		c.Threads = 8
		if n := runtime.NumCPU(); n < 8 {
			c.Threads = n
		}
	}
	return c
}

// HostInfo describes the measurement host for report headers.
func HostInfo() string {
	return fmt.Sprintf("host: %d CPU core(s), GOMAXPROCS=%d — the paper used 40 cores; with 1 core, multi-thread rows measure scheduling overhead only", runtime.NumCPU(), runtime.GOMAXPROCS(0))
}

// designCache generates each preset at most once per run.
type designCache struct {
	scale  float64
	byName map[string]*model.Design
}

func newDesignCache(scale float64) *designCache {
	return &designCache{scale: scale, byName: map[string]*model.Design{}}
}

func (dc *designCache) get(name string) (*model.Design, error) {
	if d, ok := dc.byName[name]; ok {
		return d, nil
	}
	spec, err := gen.PresetSpec(name, dc.scale)
	if err != nil {
		return nil, err
	}
	d, err := gen.Generate(spec)
	if err != nil {
		return nil, err
	}
	dc.byName[name] = d
	return d, nil
}

// Table3 prints the benchmark-statistics table with the published values
// alongside the generated stand-ins.
func Table3(cfg Config) error {
	cfg = cfg.withDefaults()
	dc := newDesignCache(cfg.Scale)
	t := report.NewTable(
		fmt.Sprintf("Table III: benchmark statistics (synthetic stand-ins, scale %g; paper values in parentheses)", cfg.Scale),
		"Benchmark", "#Edges", "#FFs", "D", "#FFs/D", "FF connectivity")
	for _, name := range cfg.Designs {
		d, err := dc.get(name)
		if err != nil {
			return err
		}
		s := d.StatsWithConnectivity()
		pEdges, pFFs, pDepth, pConn, _ := gen.PaperStats(name)
		t.Add(
			name,
			fmt.Sprintf("%d (%d)", s.NumEdges, pEdges),
			fmt.Sprintf("%d (%d)", s.NumFFs, pFFs),
			fmt.Sprintf("%d (%d)", s.Depth, pDepth),
			fmt.Sprintf("%.2f", s.FFsPerD),
			fmt.Sprintf("%.2f (%.2f)", s.Connectivity, pConn),
		)
	}
	_, err := fmt.Fprintln(cfg.Out, t)
	return err
}

// cell is one measured Table IV entry.
type cell struct {
	seconds float64
	mb      float64
	failed  bool // budget exceeded (the paper's MLE)
}

func (c cell) rt() string {
	if c.failed {
		return "MLE"
	}
	return fmt.Sprintf("%.3f", c.seconds)
}

func (c cell) mem() string {
	if c.failed {
		return "MLE"
	}
	return fmt.Sprintf("%.1f", c.mb)
}

// runCell measures one timer configuration over both setup and hold (the
// paper's Table IV measures both tests together).
func runCell(ctx context.Context, timer *cppr.Timer, algo cppr.Algorithm, k, threads int) (cell, error) {
	var failed bool
	var qerr error
	m := report.Measure(func() {
		for _, mode := range model.Modes {
			// NoCache: cells on one timer differ only in threads or k, and
			// the query memo's key erases Threads — without the bypass a
			// thread sweep's later cells would measure cache lookups.
			rep, err := timer.Run(ctx, cppr.Query{K: k, Mode: mode, Threads: threads, Algorithm: algo, NoCache: true})
			// A degraded report is the paper's MLE outcome: the budgeted
			// search ran out before completing the exact top-k. A context
			// error aborts the whole experiment instead.
			if errors.Is(err, cppr.ErrCanceled) || errors.Is(err, cppr.ErrDeadlineExceeded) {
				qerr = err
				return
			}
			if err != nil || rep.Degraded {
				failed = true
				return
			}
		}
	})
	return cell{
		seconds: m.Wall.Seconds(),
		mb:      float64(m.PeakBytes) / (1 << 20),
		failed:  failed,
	}, qerr
}

// table4Config describes one measured column of Table IV.
type table4Config struct {
	label   string
	algo    cppr.Algorithm
	threads int
}

func table4Columns(threads int, oursOnly bool) []table4Config {
	cols := []table4Config{
		{fmt.Sprintf("ours-%dT", threads), cppr.AlgoLCA, threads},
	}
	if threads != 1 {
		cols = append(cols, table4Config{"ours-1T", cppr.AlgoLCA, 1})
	}
	if oursOnly {
		return cols
	}
	return append(cols,
		table4Config{fmt.Sprintf("pairwise-%dT", threads), cppr.AlgoPairwise, threads},
		table4Config{"blockwise-1T", cppr.AlgoBlockwise, 1},
		table4Config{fmt.Sprintf("bnb-%dT", threads), cppr.AlgoBranchAndBound, threads},
	)
}

// Table4 prints the performance comparison: runtime and peak memory for
// every timer on every design and k, plus ratios against ours-8T
// (mirroring the layout of the paper's Table IV).
func Table4(cfg Config) error {
	cfg = cfg.withDefaults()
	dc := newDesignCache(cfg.Scale)
	cols := table4Columns(cfg.Threads, cfg.OursOnly)

	headers := []string{"Benchmark", "k"}
	for _, c := range cols {
		headers = append(headers, c.label+" RT(s)", c.label+" Mem(MB)")
	}
	for _, c := range cols[1:] {
		headers = append(headers, c.label+" RTR")
	}
	t := report.NewTable(
		fmt.Sprintf("Table IV: top-k post-CPPR runtime/memory, setup+hold (scale %g, ratios vs %s)", cfg.Scale, cols[0].label),
		headers...)

	type ratioKey struct {
		label string
		k     int
	}
	type ratioAcc struct {
		sum   float64
		count int
	}
	ratioByColK := map[ratioKey]*ratioAcc{}

	for _, name := range cfg.Designs {
		d, err := dc.get(name)
		if err != nil {
			return err
		}
		timer := cppr.NewTimer(d)
		timer.SetBudgets(cfg.MaxTuples, cfg.MaxPops)
		for _, k := range cfg.Ks {
			row := []string{name, fmt.Sprint(k)}
			cells := make([]cell, len(cols))
			for i, c := range cols {
				cells[i], err = runCell(cfg.Ctx, timer, c.algo, k, c.threads)
				if err != nil {
					return err
				}
				row = append(row, cells[i].rt(), cells[i].mem())
			}
			base := cells[0].seconds
			for i, c := range cols[1:] {
				if cells[i+1].failed || base == 0 {
					row = append(row, "MLE")
					continue
				}
				r := cells[i+1].seconds / base
				row = append(row, fmt.Sprintf("%.2f", r))
				key := ratioKey{label: c.label, k: k}
				acc := ratioByColK[key]
				if acc == nil {
					acc = &ratioAcc{}
					ratioByColK[key] = acc
				}
				acc.sum += r
				acc.count++
			}
			t.Add(row...)
		}
	}
	if _, err := fmt.Fprintln(cfg.Out, t); err != nil {
		return err
	}

	avg := report.NewTable("Average runtime ratios (baseline / ours-parallel; >1 means ours is faster)",
		"Config", "k", "Avg RTR")
	keys := make([]ratioKey, 0, len(ratioByColK))
	for key := range ratioByColK {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].label != keys[j].label {
			return keys[i].label < keys[j].label
		}
		return keys[i].k < keys[j].k
	})
	for _, key := range keys {
		acc := ratioByColK[key]
		avg.Add(key.label, fmt.Sprint(key.k), fmt.Sprintf("%.2f", acc.sum/float64(acc.count)))
	}
	_, err := fmt.Fprintln(cfg.Out, avg)
	return err
}

// Fig5 prints runtime and memory versus k on the leon2-class design for
// all four timers (the paper's Figure 5).
func Fig5(cfg Config) error {
	cfg = cfg.withDefaults()
	dc := newDesignCache(cfg.Scale)
	d, err := dc.get("leon2")
	if err != nil {
		return err
	}
	timer := cppr.NewTimer(d)
	timer.SetBudgets(cfg.MaxTuples, cfg.MaxPops)
	ks := []int{1, 10, 100, 1000, 10000}
	cols := table4Columns(cfg.Threads, cfg.OursOnly)
	headers := []string{"k"}
	for _, c := range cols {
		headers = append(headers, c.label+" RT", c.label+" Mem")
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 5: runtime(s) and memory(MB) vs k on leon2 (scale %g, setup+hold)", cfg.Scale),
		headers...)
	for _, k := range ks {
		row := []string{fmt.Sprint(k)}
		for _, c := range cols {
			cell, err := runCell(cfg.Ctx, timer, c.algo, k, c.threads)
			if err != nil {
				return err
			}
			row = append(row, cell.rt(), cell.mem())
		}
		t.Add(row...)
	}
	_, err = fmt.Fprintln(cfg.Out, t)
	return err
}

// Fig6 prints runtime and memory versus thread count at k=1000 on the
// leon2-class design for the parallelisable timers (the paper's
// Figure 6; iTimerC is omitted there too).
func Fig6(cfg Config) error {
	cfg = cfg.withDefaults()
	dc := newDesignCache(cfg.Scale)
	d, err := dc.get("leon2")
	if err != nil {
		return err
	}
	timer := cppr.NewTimer(d)
	timer.SetBudgets(cfg.MaxTuples, cfg.MaxPops)
	const k = 1000
	threads := []int{1, 2, 4, 8, 16}
	t := report.NewTable(
		fmt.Sprintf("Figure 6: runtime(s) and memory(MB) vs threads, k=%d on leon2 (scale %g, setup+hold)", k, cfg.Scale),
		"threads", "ours RT", "ours Mem", "pairwise RT", "pairwise Mem")
	for _, th := range threads {
		row := []string{fmt.Sprint(th)}
		for _, algo := range []cppr.Algorithm{cppr.AlgoLCA, cppr.AlgoPairwise} {
			cell, err := runCell(cfg.Ctx, timer, algo, k, th)
			if err != nil {
				return err
			}
			row = append(row, cell.rt(), cell.mem())
		}
		t.Add(row...)
	}
	_, err = fmt.Fprintln(cfg.Out, t)
	return err
}

// Accuracy audits the "full accuracy" claim: every algorithm must agree
// with the brute-force oracle on small designs and with each other on a
// medium design. It returns an error on any mismatch.
func Accuracy(cfg Config) error {
	cfg = cfg.withDefaults()
	t := report.NewTable("Accuracy audit: top-k slack agreement across all algorithms",
		"design", "mode", "k", "paths", "status")
	for seed := int64(0); seed < 6; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		timer := cppr.NewTimer(d)
		for _, mode := range model.Modes {
			for _, k := range []int{1, 10, 1000} {
				want := slackKey(baseline.BruteForce(d, mode, k))
				for _, algo := range cppr.Algorithms {
					rep, err := timer.Run(cfg.Ctx, cppr.Query{K: k, Mode: mode, Algorithm: algo, Threads: 4})
					if err != nil {
						return fmt.Errorf("accuracy: %s %v k=%d %v: %w", d.Name, mode, k, algo, err)
					}
					if got := slackKey(rep.Paths); got != want {
						return fmt.Errorf("accuracy: %s %v k=%d: %v disagrees with brute force",
							d.Name, mode, k, algo)
					}
				}
				t.Add(d.Name, mode.String(), fmt.Sprint(k), fmt.Sprint(lenBrute(d, mode, k)), "OK")
			}
		}
	}
	_, err := fmt.Fprintln(cfg.Out, t)
	return err
}

func lenBrute(d *model.Design, mode model.Mode, k int) int {
	return len(baseline.BruteForce(d, mode, k))
}

// slackKey canonicalises a path list into a comparable string of sorted
// slacks.
func slackKey(paths []model.Path) string {
	s := baseline.Slacks(paths)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return fmt.Sprint(s)
}

// RerankAblation quantifies the error of the inexact pre-CPPR-then-
// rerank heuristic against the exact engine — the repository's answer to
// "why not just re-rank the pre-CPPR report?".
func RerankAblation(cfg Config) error {
	cfg = cfg.withDefaults()
	dc := newDesignCache(cfg.Scale)
	t := report.NewTable("Rerank-heuristic ablation: true top-k paths missed by pre-CPPR-then-rerank",
		"design", "mode", "k", "missed", "worst-slack error")
	for _, name := range cfg.Designs {
		d, err := dc.get(name)
		if err != nil {
			return err
		}
		timer := cppr.NewTimer(d)
		for _, mode := range model.Modes {
			for _, k := range []int{10, 100, 1000} {
				exact, err := timer.Run(cfg.Ctx, cppr.Query{K: k, Mode: mode, Threads: cfg.Threads})
				if err != nil {
					return err
				}
				heur, err := timer.Run(cfg.Ctx, cppr.Query{K: k, Mode: mode, Algorithm: cppr.AlgoRerankInexact})
				if err != nil {
					return err
				}
				missed, worstErr := baseline.RerankError(exact.Paths, heur.Paths)
				t.Add(name, mode.String(), fmt.Sprint(k), fmt.Sprint(missed), worstErr.String())
			}
		}
	}
	_, err := fmt.Fprintln(cfg.Out, t)
	return err
}

// ErrBudget re-exports the baseline budget error for callers that want
// to render MLE cells themselves.
var ErrBudget = baseline.ErrBudget

// IsBudget reports whether err is a budget (MLE-analogue) failure.
func IsBudget(err error) bool { return errors.Is(err, baseline.ErrBudget) }
