package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/internal/hier"
	"fastcppr/internal/report"
	"fastcppr/model"
)

// HierWorkerRun is one worker-count leg of the hierarchical sweep: the
// wall time of the full query workload on a fresh hierarchical timer
// (elaboration excluded — it is measured once as ElabNs) and whether
// the leg's endpoint values matched the flat reference exactly.
type HierWorkerRun struct {
	Workers int   `json:"workers"`
	Ns      int64 `json:"ns"`
	Exact   bool  `json:"exact"`
}

// HierScenario is one design's flat-vs-hierarchical comparison: the
// same endpoint-sweep + top-k workload timed on a flat timer and on a
// hierarchical timer over the reduced graph, with the elaboration cost
// (partition + extraction + reduced-design build) charged to the
// hierarchical side.
type HierScenario struct {
	Design      string `json:"design"`
	Corners     int    `json:"corners"`
	FlatArcs    int    `json:"flat_arcs"`
	ReducedArcs int    `json:"reduced_arcs"`
	// Extracted/Reused/KeptFlat describe the elaboration: distinct
	// macromodels, instances served from the signature cache, blocks
	// left flat.
	Extracted int64 `json:"extracted"`
	Reused    int64 `json:"reused"`
	KeptFlat  int   `json:"kept_flat"`
	ElabNs    int64 `json:"elab_ns"`
	FlatNs    int64 `json:"flat_ns"`
	// Runs are the per-worker hierarchical legs; Speedup is
	// FlatNs / (ElabNs + best leg) — the number a flow sees when it
	// builds the hierarchy once and queries it.
	Runs    []HierWorkerRun `json:"runs"`
	Speedup float64         `json:"speedup"`
	Stats   cppr.TimerStats `json:"timer_stats"`
}

// HierStats is the machine-readable result of the hierarchical-timing
// experiment, committed as BENCH_hier.json for regression tracking.
type HierStats struct {
	Host      string         `json:"host"`
	Scale     float64        `json:"scale"`
	Scenarios []HierScenario `json:"scenarios"`
	// HeadlineSpeedup is the repeated-block (blocked_array) scenario's
	// flat-vs-hierarchical ratio — the acceptance number.
	HeadlineSpeedup float64 `json:"headline_speedup"`
	// HeadlineReuses is that scenario's signature-cache hit count: with
	// N identical instances it must be N-1.
	HeadlineReuses int64 `json:"headline_reuses"`
}

// hierWorkers is the worker sweep of each scenario.
var hierWorkers = []int{1, 2, 8}

// hierWorkload runs the fixed query set — per-corner endpoint sweeps in
// both modes plus an all-corner top-16 setup report — and returns the
// endpoint values, the comparison key between the flat and hierarchical
// sides (top-k path lists are graph-dependent beyond the worst path;
// endpoint slacks and the top-1 are the exactness contract).
func hierWorkload(cfg Config, t *cppr.Timer, numCorners int) ([]cppr.EndpointSlack, error) {
	var values []cppr.EndpointSlack
	for c := 0; c < numCorners; c++ {
		for _, mode := range model.Modes {
			q := cppr.Query{K: 1, Mode: mode, Corners: cppr.CornerBit(model.Corner(c))}
			s, err := t.PostCPPRSlacksCtx(cfg.Ctx, q)
			if err != nil {
				return nil, err
			}
			values = append(values, s...)
		}
	}
	if _, err := t.Run(cfg.Ctx, cppr.Query{K: 16, Mode: model.Setup, Corners: cppr.CornerAll}); err != nil {
		return nil, err
	}
	return values, nil
}

func hierEndpointsEqual(a, b []cppr.EndpointSlack) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hierScenario times one design both ways.
func hierScenario(cfg Config, name string, d *model.Design) (HierScenario, error) {
	sc := HierScenario{Design: name, Corners: d.NumCorners(), FlatArcs: d.NumArcs()}

	flat := cppr.NewTimer(d)
	flatStart := time.Now()
	ref, err := hierWorkload(cfg, flat, d.NumCorners())
	if err != nil {
		return sc, err
	}
	sc.FlatNs = time.Since(flatStart).Nanoseconds()

	elabStart := time.Now()
	ht, err := cppr.NewHierTimer(d, cppr.HierOptions{})
	if err != nil {
		return sc, err
	}
	sc.ElabNs = time.Since(elabStart).Nanoseconds()
	sc.ReducedArcs = ht.Design().NumArcs()
	st := ht.Stats()
	sc.Extracted, sc.Reused = st.MacroExtracted, st.MacroReused
	// The counters cover extraction and reuse; the kept-flat count is
	// the remainder of the partition.
	if h, err := hier.Elaborate(d, hier.Options{}); err == nil {
		sc.KeptFlat = h.KeptFlat
	}

	for _, workers := range hierWorkers {
		leg, err := cppr.NewHierTimer(d, cppr.HierOptions{})
		if err != nil {
			return sc, err
		}
		leg.SetParallelism(cppr.Parallelism{Workers: workers, QueryThreads: workers})
		start := time.Now()
		got, err := hierWorkload(cfg, leg, d.NumCorners())
		ns := time.Since(start).Nanoseconds()
		if err != nil {
			return sc, err
		}
		exact := hierEndpointsEqual(ref, got)
		if !exact {
			return sc, fmt.Errorf("hier: %s at %d workers: endpoint values diverge from flat timer", name, workers)
		}
		sc.Runs = append(sc.Runs, HierWorkerRun{Workers: workers, Ns: ns, Exact: exact})
		sc.Stats = leg.Stats()
	}
	best := sc.Runs[0].Ns
	for _, r := range sc.Runs[1:] {
		if r.Ns < best {
			best = r.Ns
		}
	}
	sc.Speedup = float64(sc.FlatNs) / float64(sc.ElabNs+best)
	return sc, nil
}

// Hier measures hierarchical CPPR via block macromodel extraction: the
// endpoint-sweep workload on the reduced graph (one shared macromodel
// per repeated block instance) against the same workload on the flat
// graph, with elaboration charged to the hierarchical side and every
// leg's endpoint values verified against the flat timer in-bench. The
// headline is the repeated-block preset, where N identical instances
// extract once and reuse N-1 times. When cfg.JSONOut is set, the stats
// are also encoded there as JSON.
func Hier(cfg Config) error {
	cfg = cfg.withDefaults()
	stats := HierStats{Host: HostInfo(), Scale: cfg.Scale}

	// The repeated-block preset scales by instance count (24 at the
	// default 0.02 scale); a second corner is a uniform derate so
	// cross-instance signature equality — and with it model reuse —
	// survives MCMM.
	spec := gen.BlockedArray(404)
	spec.Instances = int(math.Round(24 * cfg.Scale / 0.02))
	if spec.Instances < 3 {
		spec.Instances = 3
	}
	// Deep blocks are where extraction pays: ~Layers*Width*FanIn
	// internal arcs collapse to at most Width^2 boundary pairs.
	spec.Layers = 32
	spec.FanIn = 4
	blocked, err := gen.GenerateBlocked(spec)
	if err != nil {
		return err
	}
	blocked, _, err = blocked.WithScaledCorner("slow", 1.1, 1.25)
	if err != nil {
		return err
	}

	// leon2's clouds have wide boundaries; most stay flat, so this row
	// demonstrates the keep-flat guard rather than compression.
	dc := newDesignCache(cfg.Scale)
	leon2, err := dc.get("leon2")
	if err != nil {
		return err
	}

	scenarios := []struct {
		name string
		d    *model.Design
	}{
		{"blocked_array", blocked},
		{"leon2", leon2},
	}
	t := report.NewTable(
		fmt.Sprintf("Hierarchical CPPR: reduced-graph timing vs flat (scale %g)", cfg.Scale),
		"design", "corners", "arcs", "reduced", "extracted", "reused", "flat(s)", "hier(s)", "speedup")
	for _, s := range scenarios {
		sc, err := hierScenario(cfg, s.name, s.d)
		if err != nil {
			return err
		}
		stats.Scenarios = append(stats.Scenarios, sc)
		if s.name == "blocked_array" {
			stats.HeadlineSpeedup = sc.Speedup
			stats.HeadlineReuses = sc.Reused
		}
		best := sc.Runs[0].Ns
		for _, r := range sc.Runs[1:] {
			if r.Ns < best {
				best = r.Ns
			}
		}
		t.Add(sc.Design, fmt.Sprintf("%d", sc.Corners),
			fmt.Sprintf("%d", sc.FlatArcs), fmt.Sprintf("%d", sc.ReducedArcs),
			fmt.Sprintf("%d", sc.Extracted), fmt.Sprintf("%d", sc.Reused),
			fmt.Sprintf("%.3f", float64(sc.FlatNs)/1e9),
			fmt.Sprintf("%.3f", float64(sc.ElabNs+best)/1e9),
			fmt.Sprintf("%.2fx", sc.Speedup))
	}

	if _, err := fmt.Fprintln(cfg.Out, t); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(cfg.Out, "hierarchical speedup (blocked_array headline, %d reuses): %.2fx\n\n",
		stats.HeadlineReuses, stats.HeadlineSpeedup); err != nil {
		return err
	}
	if cfg.JSONOut != nil {
		enc := json.NewEncoder(cfg.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			return err
		}
	}
	return nil
}
