package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"fastcppr/internal/report"
	"fastcppr/internal/serve"
)

// ServeLevel is one measured operating point of the service benchmark:
// a closed-loop client population at one concurrency against one
// batcher configuration.
type ServeLevel struct {
	// Concurrency is the closed-loop client count.
	Concurrency int `json:"concurrency"`
	// MaxBatch is the server's coalescing bound (1 = coalescing off).
	MaxBatch int `json:"max_batch"`
	// Requests is the number of completed requests measured.
	Requests int `json:"requests"`
	// P50Us / P99Us are end-to-end request latency percentiles.
	P50Us int64 `json:"p50_us"`
	P99Us int64 `json:"p99_us"`
	// QPS is aggregate served throughput over the level's wall time.
	QPS float64 `json:"qps"`
	// MeanBatch is the mean flush size that served the requests; > 1
	// means coalescing did real work.
	MeanBatch float64 `json:"mean_batch"`
	// Shed counts 429s (should be 0 — admission is sized wide so the
	// benchmark measures coalescing, not shedding).
	Shed int `json:"shed"`
}

// ServeStats is the machine-readable result of the service benchmark,
// committed as BENCH_serve.json for regression tracking.
type ServeStats struct {
	Host   string  `json:"host"`
	Design string  `json:"design"`
	Scale  float64 `json:"scale"`
	// K is the per-request path count.
	K      int          `json:"k"`
	Levels []ServeLevel `json:"levels"`
	// CoalescingGain is (coalesced QPS / uncoalesced QPS) at the highest
	// measured concurrency — the headline number: how much throughput
	// the batcher buys when the server is busiest.
	CoalescingGain float64 `json:"coalescing_gain"`
}

// serveLevels are the measured closed-loop client counts.
var serveLevels = []int{1, 8, 32}

// Serve measures the HTTP service end to end over loopback: closed-loop
// clients at several concurrency levels, with the coalescing batcher on
// (MaxBatch 16) and off (MaxBatch 1). Queries carry NoCache so every
// request does real engine work — the point is to measure how much of
// that work coalescing shares, not how fast the memo replays it.
func Serve(cfg Config) error {
	cfg = cfg.withDefaults()
	dc := newDesignCache(cfg.Scale)
	const design = "leon2"
	const k = 50
	const perClient = 12
	d, err := dc.get(design)
	if err != nil {
		return err
	}

	stats := ServeStats{Host: HostInfo(), Design: design, Scale: cfg.Scale, K: k}
	for _, maxBatch := range []int{1, 16} {
		// Fresh server per batcher config; admission sized so nothing
		// sheds at the highest client count.
		srv := serve.New(serve.Config{
			MaxBatch:      maxBatch,
			MaxWait:       2 * time.Millisecond,
			MaxConcurrent: serveLevels[len(serveLevels)-1],
			MaxQueue:      4 * serveLevels[len(serveLevels)-1],
		})
		if err := srv.Registry().Load(design, d); err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		base := "http://" + ln.Addr().String()

		for _, conc := range serveLevels {
			if err := cfg.Ctx.Err(); err != nil {
				return err
			}
			lvl, err := serveRunLevel(base, design, k, conc, perClient, maxBatch)
			if err != nil {
				return err
			}
			stats.Levels = append(stats.Levels, lvl)
		}
		srv.Close(30 * time.Second)
		hs.Close()
	}

	// Headline: coalesced vs uncoalesced throughput at the top level.
	top := serveLevels[len(serveLevels)-1]
	var on, off float64
	for _, l := range stats.Levels {
		if l.Concurrency != top {
			continue
		}
		if l.MaxBatch > 1 {
			on = l.QPS
		} else {
			off = l.QPS
		}
	}
	if off > 0 {
		stats.CoalescingGain = on / off
	}

	t := report.NewTable(
		fmt.Sprintf("Service front end: k=%d NoCache queries on %s (scale %g, %d per client)", k, design, cfg.Scale, perClient),
		"clients", "coalescing", "p50(ms)", "p99(ms)", "QPS", "mean batch")
	for _, l := range stats.Levels {
		mode := "off"
		if l.MaxBatch > 1 {
			mode = fmt.Sprintf("on (≤%d)", l.MaxBatch)
		}
		t.Add(fmt.Sprint(l.Concurrency), mode,
			fmt.Sprintf("%.2f", float64(l.P50Us)/1e3),
			fmt.Sprintf("%.2f", float64(l.P99Us)/1e3),
			fmt.Sprintf("%.1f", l.QPS),
			fmt.Sprintf("%.2f", l.MeanBatch))
	}
	if _, err := fmt.Fprintln(cfg.Out, t); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(cfg.Out, "coalescing throughput gain at %d clients: %.2fx\n\n", top, stats.CoalescingGain); err != nil {
		return err
	}
	if cfg.JSONOut != nil {
		enc := json.NewEncoder(cfg.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			return err
		}
	}
	return nil
}

// serveRunLevel drives conc closed-loop clients, each issuing perClient
// identical NoCache queries, and folds the observed latencies into one
// ServeLevel.
func serveRunLevel(base, design string, k, conc, perClient, maxBatch int) (ServeLevel, error) {
	lvl := ServeLevel{Concurrency: conc, MaxBatch: maxBatch}
	reqBody, err := json.Marshal(serve.QueryRequest{Design: design, K: k, NoCache: true})
	if err != nil {
		return lvl, err
	}

	type sample struct {
		us    int64
		batch int
	}
	var (
		mu      sync.Mutex
		samples []sample
		shed    int
		firstE  error
	)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					mu.Lock()
					if firstE == nil {
						firstE = err
					}
					mu.Unlock()
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				el := time.Since(t0).Microseconds()
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					var qr serve.QueryResponse
					if err := json.Unmarshal(body, &qr); err != nil {
						if firstE == nil {
							firstE = err
						}
					} else {
						samples = append(samples, sample{us: el, batch: qr.Timing.BatchSize})
					}
				case http.StatusTooManyRequests:
					shed++
				default:
					if firstE == nil {
						firstE = fmt.Errorf("query: status %d: %s", resp.StatusCode, body)
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if firstE != nil {
		return lvl, firstE
	}
	if len(samples) == 0 {
		return lvl, fmt.Errorf("level conc=%d batch=%d served nothing", conc, maxBatch)
	}

	sort.Slice(samples, func(i, j int) bool { return samples[i].us < samples[j].us })
	pct := func(p float64) int64 {
		i := int(p * float64(len(samples)-1))
		return samples[i].us
	}
	var batchSum int
	for _, s := range samples {
		batchSum += s.batch
	}
	lvl.Requests = len(samples)
	lvl.P50Us = pct(0.50)
	lvl.P99Us = pct(0.99)
	lvl.QPS = float64(len(samples)) / wall.Seconds()
	lvl.MeanBatch = float64(batchSum) / float64(len(samples))
	lvl.Shed = shed
	return lvl, nil
}
