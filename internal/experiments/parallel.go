package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"fastcppr/cppr"
	"fastcppr/internal/report"
	"fastcppr/model"
)

// ParallelThreadStat is one thread-count measurement of the scaling
// experiment: the same workload, executed under a Parallelism budget of
// the given size, byte-compared against the single-threaded reference.
type ParallelThreadStat struct {
	Threads int `json:"threads"`
	// BatchNs is the best wall time of the steal-heavy ReportBatch
	// workload (one big query plus many small ones).
	BatchNs int64 `json:"batch_ns"`
	// QueryNs is the best wall time of the single large intra-query run.
	QueryNs int64 `json:"query_ns"`
	// *Speedup are the T=1 walls divided by this row's.
	BatchSpeedup float64 `json:"batch_speedup"`
	QuerySpeedup float64 `json:"query_speedup"`
	// Identical records that every report of this row was byte-identical
	// to the single-threaded reference — the determinism contract the
	// speedups ride on.
	Identical bool `json:"identical"`
}

// ParallelStats is the machine-readable result of the thread-scaling
// experiment, committed as BENCH_parallel.json for regression tracking.
// The shape mirrors the paper's Table IV thread column: the same exact
// analysis at 1/2/4/8 threads. The host line records the machine —
// speedups above 1 require the cores to exist.
type ParallelStats struct {
	Host   string               `json:"host"`
	Design string               `json:"design"`
	Scale  float64              `json:"scale"`
	Reps   int                  `json:"reps"`
	Points []ParallelThreadStat `json:"points"`
	// MaxBatchSpeedup is the best batch speedup over the sweep.
	MaxBatchSpeedup float64 `json:"max_batch_speedup"`
	// Identical is the conjunction over all points.
	Identical bool `json:"identical"`
}

// parallelFingerprint canonicalises a report for cross-thread-count
// comparison: every path's slack and complete pin sequence, in order.
func parallelFingerprint(b *strings.Builder, rep cppr.Report, err error) {
	if err != nil {
		fmt.Fprintf(b, "err:%v\n", err)
		return
	}
	for _, p := range rep.Paths {
		fmt.Fprintf(b, "%v|%v\n", p.Slack, p.Pins)
	}
	b.WriteString("--\n")
}

// Parallel measures the work-stealing executor and the partitioned
// propagation kernel at 1/2/4/8 threads on the leon2-class preset:
//
//   - a steal-heavy ReportBatch workload — one large top-k query plus a
//     tail of small ones, the shape that starves a static partitioner —
//     under Parallelism{Workers: T};
//   - one large query alone, whose candidate jobs split their frontier
//     propagation across Parallelism{QueryThreads: T}.
//
// Every multi-threaded report is byte-compared against the T=1
// reference; a mismatch fails the experiment. Queries run with NoCache
// so each rep measures real work, not memo hits. When cfg.JSONOut is
// set the stats are also encoded there as JSON.
func Parallel(cfg Config) error {
	cfg = cfg.withDefaults()
	dc := newDesignCache(cfg.Scale)
	const design = "leon2"
	d, err := dc.get(design)
	if err != nil {
		return err
	}

	// Steal-heavy batch: one big unit and a dozen small ones across both
	// modes. NoCache keeps the timing honest across reps.
	var batchQ []cppr.Query
	batchQ = append(batchQ, cppr.Query{K: 200, Mode: model.Setup, NoCache: true})
	for i := 0; i < 12; i++ {
		batchQ = append(batchQ, cppr.Query{K: 1 + 2*i, Mode: model.Modes[i%2], NoCache: true})
	}
	bigQ := cppr.Query{K: 500, Mode: model.Setup, NoCache: true}

	const reps = 3
	stats := ParallelStats{
		Host:      HostInfo(),
		Design:    design,
		Scale:     cfg.Scale,
		Reps:      reps,
		Identical: true,
	}

	var refBatch, refQuery string
	t := report.NewTable(
		fmt.Sprintf("Thread scaling: %s (scale %g, best of %d)", design, cfg.Scale, reps),
		"threads", "batch(s)", "speedup", "query(s)", "speedup", "identical")
	for _, threads := range []int{1, 2, 4, 8} {
		timer := cppr.NewTimer(d)
		timer.SetBudgets(cfg.MaxTuples, cfg.MaxPops)
		timer.SetParallelism(cppr.Parallelism{Workers: threads, QueryThreads: threads})

		measure := func(run func() (string, error)) (int64, string, error) {
			best := int64(math.MaxInt64)
			var fp string
			for r := 0; r < reps; r++ {
				start := time.Now()
				got, err := run()
				if err != nil {
					return 0, "", err
				}
				if ns := time.Since(start).Nanoseconds(); ns < best {
					best = ns
				}
				if fp == "" {
					fp = got
				} else if fp != got {
					return 0, "", fmt.Errorf("parallel: %d-thread reports differ across reps", threads)
				}
			}
			return best, fp, nil
		}

		batchNs, fpBatch, err := measure(func() (string, error) {
			results, err := timer.ReportBatch(cfg.Ctx, batchQ)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			for _, r := range results {
				parallelFingerprint(&b, r.Report, r.Err)
			}
			return b.String(), nil
		})
		if err != nil {
			return err
		}
		queryNs, fpQuery, err := measure(func() (string, error) {
			rep, err := timer.Run(cfg.Ctx, bigQ)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			parallelFingerprint(&b, rep, nil)
			return b.String(), nil
		})
		if err != nil {
			return err
		}

		p := ParallelThreadStat{Threads: threads, BatchNs: batchNs, QueryNs: queryNs, Identical: true}
		if threads == 1 {
			refBatch, refQuery = fpBatch, fpQuery
			p.BatchSpeedup, p.QuerySpeedup = 1, 1
		} else {
			p.Identical = fpBatch == refBatch && fpQuery == refQuery
			p.BatchSpeedup = float64(stats.Points[0].BatchNs) / float64(batchNs)
			p.QuerySpeedup = float64(stats.Points[0].QueryNs) / float64(queryNs)
		}
		if !p.Identical {
			return fmt.Errorf("parallel: %d-thread report differs from the single-threaded reference", threads)
		}
		if p.BatchSpeedup > stats.MaxBatchSpeedup {
			stats.MaxBatchSpeedup = p.BatchSpeedup
		}
		stats.Identical = stats.Identical && p.Identical
		stats.Points = append(stats.Points, p)
		t.Add(fmt.Sprintf("%d", threads),
			fmt.Sprintf("%.3f", float64(batchNs)/1e9),
			fmt.Sprintf("%.2fx", p.BatchSpeedup),
			fmt.Sprintf("%.3f", float64(queryNs)/1e9),
			fmt.Sprintf("%.2fx", p.QuerySpeedup),
			fmt.Sprintf("%v", p.Identical))
	}

	if _, err := fmt.Fprintln(cfg.Out, t); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(cfg.Out, "thread scaling: max batch speedup %.2fx, all reports identical: %v\n\n",
		stats.MaxBatchSpeedup, stats.Identical); err != nil {
		return err
	}
	if cfg.MinBatchSpeedup > 0 {
		if runtime.NumCPU() > 1 {
			if stats.MaxBatchSpeedup < cfg.MinBatchSpeedup {
				return fmt.Errorf("parallel: max batch speedup %.2fx below the %.2fx floor on a %d-core host",
					stats.MaxBatchSpeedup, cfg.MinBatchSpeedup, runtime.NumCPU())
			}
		} else if _, err := fmt.Fprintf(cfg.Out,
			"thread scaling: speedup floor %.2fx not enforced on a single-core host\n\n",
			cfg.MinBatchSpeedup); err != nil {
			return err
		}
	}
	if cfg.JSONOut != nil {
		enc := json.NewEncoder(cfg.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			return err
		}
	}
	return nil
}
