package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"fastcppr/cppr"
	"fastcppr/internal/report"
	"fastcppr/model"
)

// IncrementalScenario is one design's edit→requery measurement. The
// warm and cold columns time the same queries on the same snapshots —
// warm through the timer's incremental caches (edit journal, per-corner
// job cache, per-snapshot query memo), cold with Query.NoCache forcing
// a from-scratch run — and every warm report is byte-checked against
// its cold twin before the pair is counted.
type IncrementalScenario struct {
	Design  string `json:"design"`
	Corners int    `json:"corners"`
	K       int    `json:"k"`
	Edits   int    `json:"edits"`
	// WarmNs/ColdNs total the post-edit requery times over the edit
	// sequence; Speedup is their ratio.
	WarmNs  int64   `json:"warm_ns"`
	ColdNs  int64   `json:"cold_ns"`
	Speedup float64 `json:"speedup"`
	// MemoHitNs times a repeated query on an unedited snapshot (a pure
	// query-memo hit); MemoSpeedup compares it to the cold run.
	MemoHitNs   int64   `json:"memo_hit_ns"`
	MemoSpeedup float64 `json:"memo_speedup"`
	// Stats is the timer's counter state at the end of the scenario —
	// the cache behaviour behind the wall-clock numbers.
	Stats cppr.TimerStats `json:"timer_stats"`
}

// IncrementalStats is the machine-readable result of the incremental
// edit→requery experiment, committed as BENCH_incremental.json for
// regression tracking.
type IncrementalStats struct {
	Host      string                `json:"host"`
	Scale     float64               `json:"scale"`
	Reps      int                   `json:"reps"`
	Scenarios []IncrementalScenario `json:"scenarios"`
	// HeadlineSpeedup is the multi-corner leon2 scenario's warm-vs-cold
	// ratio — the acceptance number.
	HeadlineSpeedup float64 `json:"headline_speedup"`
}

const incrementalReps = 3

// incrementalScenario runs one design through an edit→requery loop.
// Edits perturb one base-corner data arc each, so per-corner cache
// scoping does the heavy lifting on multi-corner timers: the extra
// corners' delay tables are untouched and their job caches revalidate
// wholesale, while the base corner re-runs only the jobs whose seed
// cone contains the edited arc.
func incrementalScenario(cfg Config, dc *designCache, design string, corners, k, edits int) (IncrementalScenario, error) {
	sc := IncrementalScenario{Design: design, Corners: corners, K: k, Edits: edits}
	d, err := dc.get(design)
	if err != nil {
		return sc, err
	}
	if corners > 1 {
		if d, err = mcmmCorners(d, corners); err != nil {
			return sc, err
		}
	}
	timer := cppr.NewTimer(d)
	timer.SetBudgets(cfg.MaxTuples, cfg.MaxPops)

	q := cppr.Query{K: k, Mode: model.Setup}
	if corners > 1 {
		q.Corners = cppr.CornerAll
	}
	cold := q
	cold.NoCache = true

	run := func(qq cppr.Query) (cppr.Report, int64, error) {
		start := time.Now()
		rep, err := timer.Run(cfg.Ctx, qq)
		return rep, time.Since(start).Nanoseconds(), err
	}
	check := func(warm, coldRep cppr.Report) error {
		warm.Elapsed, coldRep.Elapsed = 0, 0
		a, err := json.Marshal(warm.JSON(timer.Design(), q.Mode, q.K))
		if err != nil {
			return err
		}
		b, err := json.Marshal(coldRep.JSON(timer.Design(), q.Mode, q.K))
		if err != nil {
			return err
		}
		if !bytes.Equal(a, b) {
			return fmt.Errorf("incremental: %s warm report differs from cold", design)
		}
		return nil
	}

	// Prime the caches (unmeasured cold fill), then time the repeat
	// query — a pure query-memo hit — against an uncached run.
	if _, _, err := run(q); err != nil {
		return sc, err
	}
	sc.MemoHitNs = int64(1) << 62
	var memoCold int64
	for r := 0; r < incrementalReps; r++ {
		if _, ns, err := run(q); err != nil {
			return sc, err
		} else if ns < sc.MemoHitNs {
			sc.MemoHitNs = ns
		}
		_, ns, err := run(cold)
		if err != nil {
			return sc, err
		}
		if r == 0 || ns < memoCold {
			memoCold = ns
		}
	}
	sc.MemoSpeedup = float64(memoCold) / float64(sc.MemoHitNs)

	// The edit→requery loop: one base-corner data-arc edit, then the
	// warm requery it is the whole point of the machinery, then the
	// cold twin for the ratio and the byte check.
	rng := rand.New(rand.NewSource(77))
	for e := 0; e < edits; e++ {
		nd := timer.Design()
		ai := -1
		for {
			ai = rng.Intn(nd.NumArcs())
			if nd.Pins[nd.Arcs[ai].From].Kind == model.FFOutput {
				break
			}
		}
		a := nd.Arcs[ai]
		nw := model.Window{
			Early: a.Delay.Early + model.Time(rng.Intn(20)),
			Late:  a.Delay.Late + model.Time(rng.Intn(40)+10),
		}
		if err := timer.SetArcDelay(a.From, a.To, nw); err != nil {
			return sc, err
		}
		warmRep, warmNs, err := run(q)
		if err != nil {
			return sc, err
		}
		coldRep, coldNs, err := run(cold)
		if err != nil {
			return sc, err
		}
		if err := check(warmRep, coldRep); err != nil {
			return sc, err
		}
		sc.WarmNs += warmNs
		sc.ColdNs += coldNs
	}
	sc.Speedup = float64(sc.ColdNs) / float64(sc.WarmNs)
	sc.Stats = timer.Stats()
	return sc, nil
}

// Incremental measures the edit→requery loop: after a single arc-delay
// edit, how much faster is a requery through the incremental caches
// than a from-scratch run of the same snapshot? The headline scenario
// is leon2 with 8 jittered corners queried at CornerAll — the EDA
// signoff shape, where a base-corner edit leaves seven corners' caches
// fully valid — alongside the honest single-corner spectrum on leon2
// and the vga-class preset, where a single edit's cone covers most of
// the graph and the win is small. When cfg.JSONOut is set, the stats
// are also encoded there as JSON.
func Incremental(cfg Config) error {
	cfg = cfg.withDefaults()
	dc := newDesignCache(cfg.Scale)
	stats := IncrementalStats{Host: HostInfo(), Scale: cfg.Scale, Reps: incrementalReps}

	scenarios := []struct {
		design  string
		corners int
		k       int
	}{
		{"leon2", 8, 100},     // headline: MCMM edit→requery
		{"leon2", 1, 100},     // single corner: cone invalidation only
		{"vga_lcdv2", 1, 100}, // chain-topology preset, single corner
	}
	const edits = 5
	t := report.NewTable(
		fmt.Sprintf("Incremental edit→requery: single-arc edits (scale %g, %d edits, memo best of %d)",
			cfg.Scale, edits, incrementalReps),
		"design", "corners", "k", "cold(s)", "warm(s)", "speedup", "memo-hit speedup")
	for _, s := range scenarios {
		sc, err := incrementalScenario(cfg, dc, s.design, s.corners, s.k, edits)
		if err != nil {
			return err
		}
		stats.Scenarios = append(stats.Scenarios, sc)
		if s.corners > 1 {
			stats.HeadlineSpeedup = sc.Speedup
		}
		t.Add(sc.Design, fmt.Sprintf("%d", sc.Corners), fmt.Sprintf("%d", sc.K),
			fmt.Sprintf("%.3f", float64(sc.ColdNs)/1e9),
			fmt.Sprintf("%.3f", float64(sc.WarmNs)/1e9),
			fmt.Sprintf("%.2fx", sc.Speedup),
			fmt.Sprintf("%.0fx", sc.MemoSpeedup))
	}

	if _, err := fmt.Fprintln(cfg.Out, t); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(cfg.Out, "edit→requery speedup (multi-corner headline): %.2fx\n\n",
		stats.HeadlineSpeedup); err != nil {
		return err
	}
	if cfg.JSONOut != nil {
		enc := json.NewEncoder(cfg.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			return err
		}
	}
	return nil
}
