package experiments

import (
	"encoding/json"
	"fmt"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/internal/report"
	"fastcppr/model"
	"fastcppr/sdc"
)

// SignoffLegStat is one knob leg of the signoff smoke: the worst
// post-CPPR slack with the knob off and on, whether the knob moved the
// answer on this design, and whether the LCA engine agreed with the
// brute-force oracle in the on state.
type SignoffLegStat struct {
	Knob       string `json:"knob"`
	Mode       string `json:"mode"`
	WorstOffPs int64  `json:"worst_off_ps"`
	WorstOnPs  int64  `json:"worst_on_ps"`
	// Changed records that the knob moved the worst slack. Not every
	// knob must move every mode (an ideal clock can cancel against the
	// credit it removes), but a knob that never changes anything in
	// either mode would mean the plumbing is disconnected.
	Changed bool `json:"changed"`
	// OracleMatch is the headline bit: the LCA engine's slack sequence
	// equals the brute-force oracle's with the knob applied.
	OracleMatch bool `json:"oracle_match"`
}

// SignoffStats is the machine-readable result of the signoff smoke,
// committed as BENCH_signoff.json and schema-checked by the tier-1
// tests. It certifies that every industrial-semantics knob — clock
// uncertainty, global derates, ideal clocks, I/O delays, and the
// same_transition CRPR mode — is exercised end to end (SDC parse →
// Apply → query) and agrees with the exhaustive oracle.
type SignoffStats struct {
	Host   string           `json:"host"`
	Design string           `json:"design"`
	K      int              `json:"k"`
	Legs   []SignoffLegStat `json:"legs"`
	// AllOracleMatch ANDs every leg's OracleMatch.
	AllOracleMatch bool `json:"all_oracle_match"`
	// Diverged records that same_pin and same_transition produced
	// different reports on the inverter-mixed design — proof the two
	// modes are not conflated anywhere in the stack.
	Diverged bool `json:"same_transition_diverged"`
}

// signoffSDC maps each SDC-driven knob to the constraint text that
// switches it on. The same_transition knob is query-driven (Query.CRPR)
// and handled separately.
var signoffSDC = []struct{ knob, text string }{
	{"uncertainty", "set_clock_uncertainty -setup 60ps\nset_clock_uncertainty -hold 25ps\n"},
	{"derate", "set_timing_derate -early 0.94 -late 1.07\n"},
	{"ideal_clock", "set_ideal_clock\n"},
	// The overridden windows are deliberately extreme (an input arriving
	// most of a cycle late, an output due almost immediately) so the
	// I/O paths become critical and the knob visibly moves the report.
	{"io_delay", "set_input_delay in0 -early 0ps -late 40000ps\nset_output_delay out0 -early 100ps -late 400ps\n"},
}

// Signoff runs the industrial-CRPR-semantics smoke: one leg per knob
// per mode on an oracle-size design whose clock tree mixes inverting
// and non-inverting cells, each leg verified against the brute-force
// oracle. When cfg.JSONOut is set, the stats are also encoded there as
// JSON (the committed BENCH_signoff.json).
func Signoff(cfg Config) error {
	cfg = cfg.withDefaults()
	const k = 8
	d := gen.MustGenerate(gen.DivergentClock(7))
	stats := SignoffStats{Host: HostInfo(), Design: d.Name, K: k, AllOracleMatch: true}

	// worst runs both the LCA engine and the oracle on t and returns the
	// worst slack plus whether the two full slack sequences agree.
	worst := func(t *cppr.Timer, mode model.Mode, crpr cppr.CRPRSetting) (model.Time, bool, error) {
		lca, err := t.Run(cfg.Ctx, cppr.Query{K: k, Mode: mode, Algorithm: cppr.AlgoLCA, CRPR: crpr})
		if err != nil {
			return 0, false, err
		}
		oracle, err := t.Run(cfg.Ctx, cppr.Query{K: k, Mode: mode, Algorithm: cppr.AlgoBruteForce, CRPR: crpr})
		if err != nil {
			return 0, false, err
		}
		match := len(lca.Paths) == len(oracle.Paths)
		for i := 0; match && i < len(lca.Paths); i++ {
			match = lca.Paths[i].Slack == oracle.Paths[i].Slack
		}
		w, _ := lca.WorstSlack()
		return w, match, nil
	}

	leg := func(knob string, mode model.Mode, off, on model.Time, match bool) {
		stats.Legs = append(stats.Legs, SignoffLegStat{
			Knob:        knob,
			Mode:        mode.String(),
			WorstOffPs:  off.Ps(),
			WorstOnPs:   on.Ps(),
			Changed:     off != on,
			OracleMatch: match,
		})
		stats.AllOracleMatch = stats.AllOracleMatch && match
	}

	for _, s := range signoffSDC {
		c, err := sdc.ParseString(s.text)
		if err != nil {
			return fmt.Errorf("signoff: %s: %v", s.knob, err)
		}
		for _, mode := range model.Modes {
			offT := cppr.NewTimer(d)
			off, _, err := worst(offT, mode, cppr.CRPRSamePin)
			if err != nil {
				return err
			}
			onT := cppr.NewTimer(d)
			if _, err := onT.ApplySDC(c); err != nil {
				return fmt.Errorf("signoff: %s: %v", s.knob, err)
			}
			on, match, err := worst(onT, mode, cppr.CRPRSamePin)
			if err != nil {
				return err
			}
			leg(s.knob, mode, off, on, match)
		}
	}
	// same_transition is a query knob: off = same_pin, on =
	// same_transition, same design, oracle checked in the on state.
	t := cppr.NewTimer(d)
	for _, mode := range model.Modes {
		off, _, err := worst(t, mode, cppr.CRPRSamePin)
		if err != nil {
			return err
		}
		on, match, err := worst(t, mode, cppr.CRPRSameTransition)
		if err != nil {
			return err
		}
		leg("same_transition", mode, off, on, match)
		if off != on {
			stats.Diverged = true
		}
	}

	tab := report.NewTable("signoff knob legs (worst post-CPPR slack, off vs on)",
		"knob", "mode", "worst off", "worst on", "changed", "oracle")
	for _, l := range stats.Legs {
		tab.Add(l.Knob, l.Mode, fmt.Sprintf("%dps", l.WorstOffPs), fmt.Sprintf("%dps", l.WorstOnPs),
			fmt.Sprint(l.Changed), fmt.Sprint(l.OracleMatch))
	}
	fmt.Fprint(cfg.Out, tab)
	fmt.Fprintf(cfg.Out, "\nall legs oracle-matched: %v; same_transition diverged from same_pin: %v\n\n",
		stats.AllOracleMatch, stats.Diverged)
	if !stats.AllOracleMatch {
		return fmt.Errorf("signoff: a knob leg diverged from the brute-force oracle")
	}
	if cfg.JSONOut != nil {
		enc := json.NewEncoder(cfg.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&stats); err != nil {
			return err
		}
	}
	return nil
}
