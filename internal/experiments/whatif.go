package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"fastcppr/cppr"
	"fastcppr/internal/report"
	"fastcppr/model"
)

// WhatIfWorkerRun is one worker-count leg of the speculative sweep:
// the wall time of the whole Timer.WhatIf call and whether every
// speculative report came out byte-identical to the fresh-timer
// reference (it must — thread counts change wall-clock only).
type WhatIfWorkerRun struct {
	Workers   int   `json:"workers"`
	Ns        int64 `json:"ns"`
	Identical bool  `json:"identical"`
}

// WhatIfScenario is one design's candidate sweep: Candidates edit sets
// scored against Queries queries, once the brute-force way (a freshly
// built timer per candidate — FreshNs) and once per worker count
// through Timer.WhatIf on forked snapshots. Speedup compares the fresh
// reference to the best forked leg.
type WhatIfScenario struct {
	Design     string            `json:"design"`
	Corners    int               `json:"corners"`
	K          int               `json:"k"`
	Candidates int               `json:"candidates"`
	Queries    int               `json:"queries"`
	FreshNs    int64             `json:"fresh_ns"`
	Runs       []WhatIfWorkerRun `json:"runs"`
	Speedup    float64           `json:"speedup"`
	// Stats is the last WhatIf timer's counter state — the fork and
	// patched-serving traffic behind the wall-clock numbers.
	Stats cppr.TimerStats `json:"timer_stats"`
}

// WhatIfStats is the machine-readable result of the speculative
// what-if experiment, committed as BENCH_whatif.json for regression
// tracking.
type WhatIfStats struct {
	Host      string           `json:"host"`
	Scale     float64          `json:"scale"`
	Scenarios []WhatIfScenario `json:"scenarios"`
	// HeadlineSpeedup is the leon2 1000-candidate scenario's
	// fresh-vs-forked ratio — the acceptance number.
	HeadlineSpeedup float64 `json:"headline_speedup"`
}

// whatifWorkers is the worker sweep of each scenario.
var whatifWorkers = []int{1, 2, 8}

// whatifCandidates builds n candidate edit sets over d's data arcs:
// each candidate bumps one or two FF-output arcs' late delay, the shape
// an optimization loop probes (buffer insertions, cell swaps).
func whatifCandidates(d *model.Design, n int, rng *rand.Rand) []cppr.EditSet {
	dataArc := func() int {
		for {
			ai := rng.Intn(d.NumArcs())
			if d.Pins[d.Arcs[ai].From].Kind == model.FFOutput {
				return ai
			}
		}
	}
	out := make([]cppr.EditSet, n)
	for i := range out {
		edits := 1 + rng.Intn(2)
		es := make(cppr.EditSet, edits)
		for j := range es {
			a := d.Arcs[dataArc()]
			es[j] = cppr.ArcEdit{
				Corner: model.BaseCorner,
				From:   a.From,
				To:     a.To,
				Delay: model.Window{
					// The early bump stays below the minimum late bump so
					// the edited window can never invert.
					Early: a.Delay.Early + model.Time(rng.Intn(10)),
					Late:  a.Delay.Late + model.Time(rng.Intn(60)+10),
				},
			}
		}
		out[i] = es
	}
	return out
}

// whatifScenario runs one design's sweep. The fresh reference is
// computed once — a new timer per candidate, edits applied, queries
// run — and doubles as the byte-identity oracle for every forked leg.
func whatifScenario(cfg Config, dc *designCache, design string, corners, k, candidates int) (WhatIfScenario, error) {
	sc := WhatIfScenario{Design: design, Corners: corners, K: k, Candidates: candidates}
	d, err := dc.get(design)
	if err != nil {
		return sc, err
	}
	if corners > 1 {
		if d, err = mcmmCorners(d, corners); err != nil {
			return sc, err
		}
	}
	queries := []cppr.Query{{K: k, Mode: model.Setup}}
	if corners > 1 {
		queries[0].Corners = cppr.CornerAll
	}
	sc.Queries = len(queries)
	cands := whatifCandidates(d, candidates, rand.New(rand.NewSource(101)))

	repBytes := func(dd *model.Design, rep cppr.Report, q cppr.Query) ([]byte, error) {
		rep.Elapsed = 0
		return json.Marshal(rep.JSON(dd, q.Mode, q.K))
	}

	// Fresh-timer-per-candidate reference: what a caller without Fork
	// would do, and the oracle the speculative reports must match.
	ref := make([][][]byte, len(cands))
	freshStart := time.Now()
	for ci, es := range cands {
		ft := cppr.NewTimer(d)
		for _, ed := range es {
			if err := ft.SetArcDelayAt(ed.Corner, ed.From, ed.To, ed.Delay); err != nil {
				return sc, err
			}
		}
		ref[ci] = make([][]byte, len(queries))
		for qi, q := range queries {
			rep, err := ft.Run(cfg.Ctx, q)
			if err != nil {
				return sc, err
			}
			if ref[ci][qi], err = repBytes(ft.Design(), rep, q); err != nil {
				return sc, err
			}
		}
	}
	sc.FreshNs = time.Since(freshStart).Nanoseconds()

	for _, workers := range whatifWorkers {
		timer := cppr.NewTimer(d)
		timer.SetBudgets(cfg.MaxTuples, cfg.MaxPops)
		timer.SetParallelism(cppr.Parallelism{Workers: workers, QueryThreads: 1})
		start := time.Now()
		res, err := timer.WhatIf(cfg.Ctx, cands, queries)
		ns := time.Since(start).Nanoseconds()
		if err != nil {
			return sc, err
		}
		identical := true
		for ci, cand := range res.Candidates {
			if cand.Err != nil {
				return sc, fmt.Errorf("whatif: %s candidate %d: %w", design, ci, cand.Err)
			}
			for qi, q := range queries {
				got, err := repBytes(timer.Design(), cand.Reports[qi], q)
				if err != nil {
					return sc, err
				}
				if !bytes.Equal(got, ref[ci][qi]) {
					identical = false
				}
			}
		}
		if !identical {
			return sc, fmt.Errorf("whatif: %s at %d workers: speculative report differs from fresh timer", design, workers)
		}
		sc.Runs = append(sc.Runs, WhatIfWorkerRun{Workers: workers, Ns: ns, Identical: identical})
		sc.Stats = timer.Stats()
	}
	best := sc.Runs[0].Ns
	for _, r := range sc.Runs[1:] {
		if r.Ns < best {
			best = r.Ns
		}
	}
	sc.Speedup = float64(sc.FreshNs) / float64(best)
	return sc, nil
}

// WhatIf measures the speculative what-if engine: scoring N candidate
// edit sets with Timer.WhatIf — forked snapshots sharing the parent's
// warm caches, dirtied jobs served by patching retained propagations —
// against the brute-force alternative of building a fresh timer per
// candidate. Every speculative report is byte-checked against its
// fresh-timer twin at every worker count before a leg is accepted.
// When cfg.JSONOut is set, the stats are also encoded there as JSON.
func WhatIf(cfg Config) error {
	cfg = cfg.withDefaults()
	dc := newDesignCache(cfg.Scale)
	stats := WhatIfStats{Host: HostInfo(), Scale: cfg.Scale}

	scenarios := []struct {
		design     string
		corners    int
		k          int
		candidates int
	}{
		{"leon2", 1, 16, 1000},    // headline: the optimization-loop sweep
		{"vga_lcdv2", 1, 16, 200}, // chain-topology preset
	}
	t := report.NewTable(
		fmt.Sprintf("Speculative what-if: candidate scoring vs fresh timer per candidate (scale %g)", cfg.Scale),
		"design", "corners", "cands", "k", "fresh(s)", "forked(s)", "speedup")
	for _, s := range scenarios {
		sc, err := whatifScenario(cfg, dc, s.design, s.corners, s.k, s.candidates)
		if err != nil {
			return err
		}
		stats.Scenarios = append(stats.Scenarios, sc)
		if s.design == "leon2" {
			stats.HeadlineSpeedup = sc.Speedup
		}
		best := sc.Runs[0].Ns
		for _, r := range sc.Runs[1:] {
			if r.Ns < best {
				best = r.Ns
			}
		}
		t.Add(sc.Design, fmt.Sprintf("%d", sc.Corners), fmt.Sprintf("%d", sc.Candidates),
			fmt.Sprintf("%d", sc.K),
			fmt.Sprintf("%.3f", float64(sc.FreshNs)/1e9),
			fmt.Sprintf("%.3f", float64(best)/1e9),
			fmt.Sprintf("%.2fx", sc.Speedup))
	}

	if _, err := fmt.Fprintln(cfg.Out, t); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(cfg.Out, "what-if speedup (leon2 %d-candidate headline): %.2fx\n\n",
		stats.Scenarios[0].Candidates, stats.HeadlineSpeedup); err != nil {
		return err
	}
	if cfg.JSONOut != nil {
		enc := json.NewEncoder(cfg.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			return err
		}
	}
	return nil
}
