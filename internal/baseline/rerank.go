package baseline

import (
	"context"
	"fmt"

	"fastcppr/internal/lca"
	"fastcppr/internal/qerr"
	"fastcppr/internal/sta"
	"fastcppr/model"
)

// Rerank is the tempting-but-inexact heuristic some flows use instead of
// true CPPR search: generate the top-k paths by PRE-CPPR slack, apply
// each path's credit, and re-sort. It is cheap — one search, no
// per-level or per-pair work — but it can miss true post-CPPR critical
// paths entirely: a path ranked k+1 pre-CPPR can be the post-CPPR worst
// path once a large credit is applied to its competitors.
//
// It exists to quantify that error (see the accuracy ablation in
// EXPERIMENTS.md), motivating the exact algorithms.
type Rerank struct {
	d    *model.Design
	tree *lca.Tree
	ckq  []model.Window
}

// NewRerank preprocesses d.
func NewRerank(d *model.Design, tree *lca.Tree) *Rerank {
	return &Rerank{d: d, tree: tree, ckq: ckqTable(d)}
}

// Rebind returns a Rerank over nd reusing r's clock-tree structures.
// nd must differ from r's design only in non-clock arc delays.
func (r *Rerank) Rebind(nd *model.Design) *Rerank {
	return &Rerank{d: nd, tree: r.tree, ckq: ckqTable(nd)}
}

// TopPaths returns k paths selected by pre-CPPR slack and re-ranked by
// post-CPPR slack. The result is generally NOT the true post-CPPR top-k.
func (r *Rerank) TopPaths(mode model.Mode, k int) []model.Path {
	paths, err := r.TopPathsCtx(context.Background(), mode, k)
	if err != nil {
		panic(err) // unreachable: a background context never cancels
	}
	return paths
}

// TopPathsCtx is TopPaths bounded by a context.
func (r *Rerank) TopPathsCtx(ctx context.Context, mode model.Mode, k int) ([]model.Path, error) {
	return r.TopPathsCRPR(ctx, mode, model.CRPRSamePin, k)
}

// TopPathsCRPR is TopPathsCtx under the given CRPR credit semantics:
// the pre-CPPR selection is credit-blind either way, but the re-ranking
// credit honours the mode.
func (r *Rerank) TopPathsCRPR(ctx context.Context, mode model.Mode, crpr model.CRPRMode, k int) ([]model.Path, error) {
	if err := qerr.FromContext(ctx); err != nil {
		return nil, err
	}
	if k <= 0 || len(r.d.FFs) == 0 {
		return nil, nil
	}
	done := ctx.Done()
	d := r.d
	setup := mode == model.Setup

	prop := sta.GetProp()
	defer sta.PutProp(prop)
	prop.Reset(d.NumPins())
	for i := range d.FFs {
		ff := &d.FFs[i]
		arr := r.tree.Arrival(ff.Clock)
		var qAt model.Time
		if setup {
			qAt = arr.Late + r.ckq[i].Late
		} else {
			qAt = arr.Early + r.ckq[i].Early
		}
		prop.Offer(ff.Output, qAt, ff.Clock, ff.Clock, sta.NoGroup, setup)
	}
	for i, pi := range d.PIs {
		arr := d.PIArrival[i]
		var t model.Time
		if setup {
			t = arr.Late
		} else {
			t = arr.Early
		}
		prop.Offer(pi, t, model.NoPin, pi, sta.NoGroup, setup)
	}
	prop.RunCtx(d, setup, done)
	if canceled(done) {
		return nil, qerr.FromContext(ctx)
	}
	at := func(u model.PinID) (model.Time, model.PinID, bool) {
		t := prop.At(u)
		return t.Time, t.From, t.Valid
	}

	// One global search in pre-CPPR order, stopping after exactly k
	// pops — the heuristic's defining (and flawed) step.
	h := getBCandHeap()
	defer putBCandHeap(h)
	for ci := range d.FFs {
		if ci%cancelStride == 0 && canceled(done) {
			return nil, qerr.FromContext(ctx)
		}
		ff := &d.FFs[ci]
		t := prop.At(ff.Data)
		if !t.Valid {
			continue
		}
		capArr := r.tree.Arrival(ff.Clock)
		var pre model.Time
		if setup {
			pre = capArr.Early + d.Period - ff.Setup - t.Time
		} else {
			pre = t.Time - (capArr.Late + ff.Hold)
		}
		h.PushBounded(int64(pre), &bcand{slack: pre, pos: ff.Data, devTo: model.NoPin, capFF: model.FFID(ci)}, k)
	}

	var paths []model.Path
	for i := 0; i < k; i++ {
		if canceled(done) {
			return nil, qerr.FromContext(ctx)
		}
		kv, ok := h.PopMin()
		if !ok {
			break
		}
		c := kv.V
		if rem := k - i - 1; rem > 0 {
			pushDevs(d, setup, h, at, c, rem)
		}
		paths = append(paths, finishPath(d, mode, crpr, reconstructAt(d, at, c)))
	}
	SortPaths(paths) // re-rank by exact post-CPPR slack
	return paths, nil
}

// RerankError compares the heuristic's result against the exact top-k
// and returns how many of the true top-k paths the heuristic missed and
// the worst-slack error (heuristic worst minus true worst; >= 0).
func RerankError(exact, heuristic []model.Path) (missed int, worstErr model.Time) {
	exactSet := make(map[string]int)
	for _, p := range exact {
		exactSet[slackSig(&p)]++
	}
	for _, p := range heuristic {
		sig := slackSig(&p)
		if exactSet[sig] > 0 {
			exactSet[sig]--
		}
	}
	for _, n := range exactSet {
		missed += n
	}
	if len(exact) > 0 && len(heuristic) > 0 {
		if d := heuristic[0].Slack - exact[0].Slack; d > 0 {
			worstErr = d
		}
	}
	return missed, worstErr
}

// slackSig identifies a path by slack and endpoints, which is collision-
// safe enough for error counting on the generated designs.
func slackSig(p *model.Path) string {
	return fmt.Sprintf("%d|%d|%d", p.Slack, p.LaunchFF, p.CaptureFF)
}
