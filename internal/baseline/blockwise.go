package baseline

import (
	"context"
	"sort"

	"fastcppr/internal/faultinject"
	"fastcppr/internal/lca"
	"fastcppr/internal/qerr"
	"fastcppr/model"
)

// Blockwise is the HappyTimer-style baseline: a single block-based pass
// that propagates, for every pin, the set of launching FFs that reach it
// together with each launch's extreme arrival. Pessimism is then removed
// exactly per launch/capture pair during the endpoint update.
//
// The approach leans on launch/capture sparsity: its memory is
// Θ(Σ_pins |launch set|) ≈ n × FF-connectivity, which is modest on
// designs like vga_lcdv2 (connectivity ~29) and explodes on leon2-class
// designs (connectivity ~1245) — reproducing the MLE failures in the
// paper's Table IV. MaxTuples is that memory limit.
type Blockwise struct {
	d    *model.Design
	tree *lca.Tree
	ckq  []model.Window
	// MaxTuples bounds the total launch-set size (the paper's MLE);
	// exceeding it truncates propagation and degrades the result to the
	// paths reachable from the tuples accumulated so far.
	MaxTuples int
}

// NewBlockwise preprocesses d.
func NewBlockwise(d *model.Design, tree *lca.Tree) *Blockwise {
	return &Blockwise{d: d, tree: tree, ckq: ckqTable(d), MaxTuples: 200_000_000}
}

// Rebind returns a Blockwise over nd reusing b's clock-tree structures
// and keeping its MaxTuples budget. nd must differ from b's design only
// in non-clock arc delays.
func (b *Blockwise) Rebind(nd *model.Design) *Blockwise {
	nb := *b
	nb.d = nd
	nb.ckq = ckqTable(nd)
	return &nb
}

// launchTuple is one entry of a pin's launch set: the extreme arrival at
// this pin over all paths launched by lau, and its predecessor pin.
type launchTuple struct {
	lau  int32 // launching FF id, or -1 for PI-launched
	time model.Time
	from model.PinID
}

// TopPaths returns the exact global top-k post-CPPR paths. When the
// launch-set memory exceeds MaxTuples, propagation truncates and the
// call returns the (still individually exact) paths found so far with
// degraded=true instead of failing outright — possibly missing paths
// through the unpropagated region. Blockwise is single-threaded, as
// HappyTimer is; the context still bounds its runtime.
func (b *Blockwise) TopPaths(ctx context.Context, mode model.Mode, k, threads int) (paths []model.Path, degraded bool, err error) {
	return b.TopPathsCRPR(ctx, mode, model.CRPRSamePin, k, threads)
}

// TopPathsCRPR is TopPaths under the given CRPR credit semantics.
func (b *Blockwise) TopPathsCRPR(ctx context.Context, mode model.Mode, crpr model.CRPRMode, k, threads int) (paths []model.Path, degraded bool, err error) {
	_ = threads
	defer func() {
		if r := recover(); r != nil {
			paths, degraded, err = nil, false, qerr.FromPanic("baseline.Blockwise", r)
		}
	}()
	if err := qerr.FromContext(ctx); err != nil {
		return nil, false, err
	}
	if k <= 0 || len(b.d.FFs) == 0 {
		return nil, false, nil
	}
	done := ctx.Done()
	d := b.d
	setup := mode == model.Setup

	// Block propagation of per-launch arrival sets in topological order.
	// perPin[u] is sorted by launch id once u is finalised (pull-style:
	// a pin's predecessors are all final before it is processed).
	perPin := make([][]launchTuple, d.NumPins())
	total := 0
	scratch := make(map[int32]launchTuple)
	better := func(a, x model.Time) bool {
		if setup {
			return a > x
		}
		return a < x
	}
	for ti, u := range d.Topo {
		if ti%cancelStride == 0 && canceled(done) {
			return nil, false, qerr.FromContext(ctx)
		}
		clear(scratch)
		// Seeds.
		switch d.Pins[u].Kind {
		case model.FFOutput:
			fi := d.Pins[u].FF
			ff := &d.FFs[fi]
			arr := b.tree.Arrival(ff.Clock)
			var qAt model.Time
			if setup {
				qAt = arr.Late + b.ckq[fi].Late
			} else {
				qAt = arr.Early + b.ckq[fi].Early
			}
			scratch[int32(fi)] = launchTuple{lau: int32(fi), time: qAt, from: ff.Clock}
		case model.PI:
			for i, pi := range d.PIs {
				if pi != u {
					continue
				}
				arr := d.PIArrival[i]
				var t model.Time
				if setup {
					t = arr.Late
				} else {
					t = arr.Early
				}
				scratch[-1] = launchTuple{lau: -1, time: t, from: model.NoPin}
				break
			}
		}
		// Merge predecessors.
		for _, ai := range d.FanIn(u) {
			arc := &d.Arcs[ai]
			var delay model.Time
			if setup {
				delay = arc.Delay.Late
			} else {
				delay = arc.Delay.Early
			}
			for _, t := range perPin[arc.From] {
				nt := launchTuple{lau: t.lau, time: t.time + delay, from: arc.From}
				if old, ok := scratch[t.lau]; !ok || better(nt.time, old.time) {
					scratch[t.lau] = nt
				}
			}
		}
		if len(scratch) == 0 {
			continue
		}
		list := make([]launchTuple, 0, len(scratch))
		for _, t := range scratch {
			list = append(list, t)
		}
		sort.Slice(list, func(i, j int) bool { return list[i].lau < list[j].lau })
		perPin[u] = list
		total += len(list)
		if total > b.MaxTuples || faultinject.Forced("baseline.blockwise.budget") {
			// The paper's MLE case: keep the per-pin sets finalised so
			// far (each is internally consistent) and degrade to the
			// paths they can reach instead of failing the query.
			degraded = true
			break
		}
	}

	// atFor returns the lookup function for a fixed launch id.
	atFor := func(lau int32) atFunc {
		return func(u model.PinID) (model.Time, model.PinID, bool) {
			list := perPin[u]
			i := sort.Search(len(list), func(i int) bool { return list[i].lau >= lau })
			if i < len(list) && list[i].lau == lau {
				return list[i].time, list[i].from, true
			}
			return 0, model.NoPin, false
		}
	}

	// Root candidates: one per (launch, capture) pair — the all-pairs
	// enumeration the paper's introduction criticises.
	h := getBCandHeap()
	defer putBCandHeap(h)
	for ci := range d.FFs {
		if ci%cancelStride == 0 && canceled(done) {
			return nil, false, qerr.FromContext(ctx)
		}
		ff := &d.FFs[ci]
		capArr := b.tree.Arrival(ff.Clock)
		for _, t := range perPin[ff.Data] {
			var pre model.Time
			if setup {
				pre = capArr.Early + d.Period - ff.Setup - t.time
			} else {
				pre = t.time - (capArr.Late + ff.Hold)
			}
			post := pre
			if t.lau >= 0 {
				post += b.tree.PairCredit(d.FFs[t.lau].Clock, ff.Clock, crpr)
			}
			h.PushBounded(int64(post), &bcand{
				slack: post,
				pos:   ff.Data,
				devTo: model.NoPin,
				capFF: model.FFID(ci),
				lau:   model.FFID(t.lau),
			}, k)
		}
	}

	for i := 0; i < k; i++ {
		if canceled(done) {
			return nil, false, qerr.FromContext(ctx)
		}
		kv, ok := h.PopMin()
		if !ok {
			break
		}
		c := kv.V
		at := atFor(int32(c.lau))
		if rem := k - i - 1; rem > 0 {
			pushDevs(d, setup, h, at, c, rem)
		}
		paths = append(paths, finishPath(d, mode, crpr, reconstructAt(d, at, c)))
	}
	return paths, degraded, nil
}
