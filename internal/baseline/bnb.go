package baseline

import (
	"context"

	"fastcppr/internal/faultinject"
	"fastcppr/internal/lca"
	"fastcppr/internal/mmheap"
	"fastcppr/internal/qerr"
	"fastcppr/internal/sta"
	"fastcppr/model"
)

// BranchAndBound is the iTimerC-style baseline. Following iTimerC's
// documented architecture, it generates post-CPPR critical paths **per
// capturing flip-flop** — one branch-and-bound path search for every test
// endpoint, in pre-CPPR slack order with lazily resolved credits — and
// reduces the per-endpoint results to the global top-k. A global bound
// (the current k-th best post-CPPR slack) prunes each endpoint's search.
//
// The per-endpoint structure makes its cost scale with the flip-flop
// count (the complexity class the paper attacks), and the pre-/post-CPPR
// order gap makes pops per endpoint grow with both k and the credit
// magnitude — reproducing iTimerC's runtime and memory blow-up at k=10K
// while staying competitive at k=1.
type BranchAndBound struct {
	d    *model.Design
	tree *lca.Tree
	ckq  []model.Window
	// MaxPops caps the total pops across all endpoint searches (the
	// analogue of the paper's time/memory-limit failures); exceeding it
	// stops the search and degrades the result to the paths resolved so
	// far.
	MaxPops int
}

// ErrBudget is the budget-exhaustion sentinel (the analogue of the MLE
// entries in the paper's Table IV), re-exported from the shared taxonomy
// so errors.Is works across package boundaries. Budgeted searches now
// degrade instead of returning it, but callers that want a hard error
// can still match against it.
var ErrBudget = qerr.ErrBudgetExhausted

// NewBranchAndBound preprocesses d.
func NewBranchAndBound(d *model.Design, tree *lca.Tree) *BranchAndBound {
	return &BranchAndBound{d: d, tree: tree, ckq: ckqTable(d), MaxPops: 100_000_000}
}

// Rebind returns a BranchAndBound over nd reusing b's clock-tree
// structures and keeping its MaxPops budget. nd must differ from b's
// design only in non-clock arc delays.
func (b *BranchAndBound) Rebind(nd *model.Design) *BranchAndBound {
	nb := *b
	nb.d = nd
	nb.ckq = ckqTable(nd)
	return &nb
}

// resOut is a resolved path in the global result selection, ordered by
// (post slack, endpoint, pop index).
type resOut struct {
	slack model.Time
	ep    int
	idx   int
	pins  []model.PinID
}

// TopPaths returns the exact global top-k post-CPPR paths. The threads
// argument is accepted for interface symmetry; endpoint searches share
// one global result heap and run sequentially, like iTimerC's
// generation phase. Exceeding MaxPops returns the paths resolved so far
// with degraded=true instead of failing; the context bounds the search.
func (b *BranchAndBound) TopPaths(ctx context.Context, mode model.Mode, k, threads int) (paths []model.Path, degraded bool, err error) {
	return b.TopPathsCRPR(ctx, mode, model.CRPRSamePin, k, threads)
}

// TopPathsCRPR is TopPaths under the given CRPR credit semantics.
func (b *BranchAndBound) TopPathsCRPR(ctx context.Context, mode model.Mode, crpr model.CRPRMode, k, threads int) (paths []model.Path, degraded bool, err error) {
	_ = threads
	defer func() {
		if r := recover(); r != nil {
			paths, degraded, err = nil, false, qerr.FromPanic("baseline.BranchAndBound", r)
		}
	}()
	if err := qerr.FromContext(ctx); err != nil {
		return nil, false, err
	}
	if k <= 0 || len(b.d.FFs) == 0 {
		return nil, false, nil
	}
	done := ctx.Done()
	d := b.d
	setup := mode == model.Setup

	// One shared pre-CPPR arrival propagation over all launch points.
	prop := sta.GetProp()
	defer sta.PutProp(prop)
	prop.Reset(d.NumPins())
	for i := range d.FFs {
		ff := &d.FFs[i]
		arr := b.tree.Arrival(ff.Clock)
		var qAt model.Time
		if setup {
			qAt = arr.Late + b.ckq[i].Late
		} else {
			qAt = arr.Early + b.ckq[i].Early
		}
		prop.Offer(ff.Output, qAt, ff.Clock, ff.Clock, sta.NoGroup, setup)
	}
	for i, pi := range d.PIs {
		arr := d.PIArrival[i]
		var t model.Time
		if setup {
			t = arr.Late
		} else {
			t = arr.Early
		}
		prop.Offer(pi, t, model.NoPin, pi, sta.NoGroup, setup)
	}
	prop.RunCtx(d, setup, done)
	if canceled(done) {
		return nil, false, qerr.FromContext(ctx)
	}
	at := func(u model.PinID) (model.Time, model.PinID, bool) {
		t := prop.At(u)
		return t.Time, t.From, t.Valid
	}

	results := mmheap.New(func(a, x *resOut) bool {
		if a.slack != x.slack {
			return a.slack < x.slack
		}
		if a.ep != x.ep {
			return a.ep < x.ep
		}
		return a.idx < x.idx
	})

	// Per-endpoint branch-and-bound searches.
	h := getBCandHeap()
	defer putBCandHeap(h)
	pops := 0
search:
	for ci := range d.FFs {
		ff := &d.FFs[ci]
		t := prop.At(ff.Data)
		if !t.Valid {
			continue
		}
		capArr := b.tree.Arrival(ff.Clock)
		var pre model.Time
		if setup {
			pre = capArr.Early + d.Period - ff.Setup - t.Time
		} else {
			pre = t.Time - (capArr.Late + ff.Hold)
		}
		h.Reset()
		h.Push(int64(pre), &bcand{slack: pre, pos: ff.Data, devTo: model.NoPin, capFF: model.FFID(ci)})
		// localPost tracks this endpoint's k best resolved post-CPPR
		// slacks: only they can reach the global top-k, so the search
		// stops once the pre-slack frontier passes the local k-th best.
		localPost := mmheap.NewKey[struct{}]()
		for {
			kv, ok := h.PopMin()
			if !ok {
				break
			}
			c := kv.V
			if canceled(done) {
				return nil, false, qerr.FromContext(ctx)
			}
			pops++
			if pops > b.MaxPops || faultinject.Forced("baseline.bnb.budget") {
				// Budget exhausted: keep the paths resolved so far as a
				// degraded (possibly incomplete) top-k.
				degraded = true
				break search
			}
			// Prune: pre-slack is a lower bound on post-slack, so the
			// search for this endpoint ends when the frontier passes
			// either the global or the endpoint-local k-th best.
			if results.Len() >= k {
				kth, _ := results.Max()
				if c.slack >= kth.slack {
					break
				}
			}
			if localPost.Len() >= k {
				kth, _ := localPost.MaxKey()
				if int64(c.slack) >= kth {
					break
				}
			}
			launch := launchAt(d, at, c.pos)
			post := c.slack
			if d.Pins[launch].Kind == model.FFClock {
				post += b.tree.PairCredit(launch, ff.Clock, crpr)
			}
			localPost.PushBounded(int64(post), struct{}{}, k)
			results.PushBounded(&resOut{
				slack: post,
				ep:    ci,
				idx:   pops,
				pins:  reconstructAt(d, at, c),
			}, k)
			pushDevs(d, setup, h, at, c, -1)
		}
	}

	paths = make([]model.Path, 0, results.Len())
	for {
		o, ok := results.PopMin()
		if !ok {
			break
		}
		paths = append(paths, finishPath(d, mode, crpr, o.pins))
	}
	return paths, degraded, nil
}
