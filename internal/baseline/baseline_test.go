package baseline

import (
	"context"
	"errors"
	"sort"
	"testing"

	"fastcppr/gen"
	"fastcppr/internal/lca"
	"fastcppr/internal/qerr"
	"fastcppr/model"
)

var bg = context.Background()

// must unwraps a (paths, error) pair from a context-aware baseline
// query that cannot fail under a background context.
func must(t *testing.T) func([]model.Path, error) []model.Path {
	return func(paths []model.Path, err error) []model.Path {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected query error: %v", err)
		}
		return paths
	}
}

func sortedSlacks(paths []model.Path) []model.Time {
	s := Slacks(paths)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func equalTimes(a, b []model.Time) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func validate(t *testing.T, d *model.Design, mode model.Mode, paths []model.Path, who string) {
	t.Helper()
	var prev model.Time
	for i, p := range paths {
		if i > 0 && p.Slack < prev {
			t.Fatalf("%s: not sorted at %d", who, i)
		}
		prev = p.Slack
		ref, err := d.RecomputePath(mode, p.Pins)
		if err != nil {
			t.Fatalf("%s: invalid path %d: %v", who, i, err)
		}
		if ref.Slack != p.Slack {
			t.Fatalf("%s: path %d slack %v, recomputed %v", who, i, p.Slack, ref.Slack)
		}
	}
}

func TestBaselinesMatchBruteForce(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		tree := lca.New(d)
		pw := NewPairwise(d, tree)
		bb := NewBranchAndBound(d, tree)
		bw := NewBlockwise(d, tree)
		for _, mode := range model.Modes {
			for _, k := range []int{1, 5, 40, 10_000} {
				want := Slacks(BruteForce(d, mode, k))

				got := must(t)(pw.TopPaths(bg, mode, k, 2))
				validate(t, d, mode, got, "pairwise")
				if !equalTimes(sortedSlacks(got), want) {
					t.Fatalf("seed %d %v k=%d: pairwise %v, want %v", seed, mode, k, sortedSlacks(got), want)
				}

				got, _, err := bb.TopPaths(bg, mode, k, 1)
				if err != nil {
					t.Fatalf("bnb: %v", err)
				}
				validate(t, d, mode, got, "bnb")
				if !equalTimes(sortedSlacks(got), want) {
					t.Fatalf("seed %d %v k=%d: bnb %v, want %v", seed, mode, k, sortedSlacks(got), want)
				}

				got, _, err = bw.TopPaths(bg, mode, k, 1)
				if err != nil {
					t.Fatalf("blockwise: %v", err)
				}
				validate(t, d, mode, got, "blockwise")
				if !equalTimes(sortedSlacks(got), want) {
					t.Fatalf("seed %d %v k=%d: blockwise %v, want %v", seed, mode, k, sortedSlacks(got), want)
				}
			}
		}
	}
}

func TestBaselinesAgreeOnMediumDesigns(t *testing.T) {
	// Medium designs are too big for brute force; the three baselines
	// (independent algorithms) must still agree with each other.
	for seed := int64(0); seed < 3; seed++ {
		d := gen.MustGenerate(gen.Medium(seed))
		tree := lca.New(d)
		pw := NewPairwise(d, tree)
		bb := NewBranchAndBound(d, tree)
		bw := NewBlockwise(d, tree)
		for _, mode := range model.Modes {
			k := 150
			a := must(t)(pw.TopPaths(bg, mode, k, 4))
			bp, _, err := bb.TopPaths(bg, mode, k, 1)
			if err != nil {
				t.Fatal(err)
			}
			cp, _, err := bw.TopPaths(bg, mode, k, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !equalTimes(sortedSlacks(a), sortedSlacks(bp)) {
				t.Fatalf("seed %d %v: pairwise and bnb disagree", seed, mode)
			}
			if !equalTimes(sortedSlacks(a), sortedSlacks(cp)) {
				t.Fatalf("seed %d %v: pairwise and blockwise disagree", seed, mode)
			}
			validate(t, d, mode, a, "pairwise")
		}
	}
}

func TestPairwiseThreadDeterminism(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(11))
	tree := lca.New(d)
	pw := NewPairwise(d, tree)
	ref := must(t)(pw.TopPaths(bg, model.Setup, 80, 1))
	for _, threads := range []int{2, 8} {
		got := must(t)(pw.TopPaths(bg, model.Setup, 80, threads))
		if len(got) != len(ref) {
			t.Fatalf("threads %d: %d paths, want %d", threads, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Slack != ref[i].Slack {
				t.Fatalf("threads %d: path %d slack differs", threads, i)
			}
		}
	}
}

func TestBlockwiseBudgetDegrades(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(2))
	tree := lca.New(d)
	bw := NewBlockwise(d, tree)
	bw.MaxTuples = 10
	paths, degraded, err := bw.TopPaths(bg, model.Setup, 5, 1)
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not error: %v", err)
	}
	if !degraded {
		t.Fatal("MaxTuples=10 did not degrade the search")
	}
	validate(t, d, model.Setup, paths, "blockwise-degraded")
}

func TestBranchAndBoundBudgetDegrades(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(2))
	tree := lca.New(d)
	bb := NewBranchAndBound(d, tree)
	bb.MaxPops = 3
	paths, degraded, err := bb.TopPaths(bg, model.Setup, 1000, 1)
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not error: %v", err)
	}
	if !degraded {
		t.Fatal("MaxPops=3 did not degrade the search")
	}
	if len(paths) > 3 {
		t.Fatalf("%d paths resolved from 3 pops", len(paths))
	}
	validate(t, d, model.Setup, paths, "bnb-degraded")
}

func TestErrBudgetAliasesTaxonomy(t *testing.T) {
	if !errors.Is(ErrBudget, qerr.ErrBudgetExhausted) {
		t.Fatal("ErrBudget does not match the shared taxonomy sentinel")
	}
}

func TestEmptyQueries(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(0))
	tree := lca.New(d)
	if got := must(t)(NewPairwise(d, tree).TopPaths(bg, model.Setup, 0, 1)); got != nil {
		t.Error("pairwise k=0 returned paths")
	}
	if got, _, _ := NewBranchAndBound(d, tree).TopPaths(bg, model.Setup, -1, 1); got != nil {
		t.Error("bnb k<0 returned paths")
	}
	if got, _, _ := NewBlockwise(d, tree).TopPaths(bg, model.Setup, 0, 1); got != nil {
		t.Error("blockwise k=0 returned paths")
	}
}

func TestBruteForceSortStable(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(3))
	a := BruteForce(d, model.Setup, 50)
	b := BruteForce(d, model.Setup, 50)
	if len(a) != len(b) {
		t.Fatal("nondeterministic brute force")
	}
	for i := range a {
		if a[i].Slack != b[i].Slack || len(a[i].Pins) != len(b[i].Pins) {
			t.Fatal("nondeterministic brute force ordering")
		}
	}
}

func TestAllPathsStructure(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(4))
	all := AllPaths(d, model.Hold)
	if len(all) == 0 {
		t.Fatal("no paths enumerated")
	}
	for _, p := range all {
		start := d.Pins[p.StartPin()].Kind
		if start != model.FFClock && start != model.PI {
			t.Fatalf("path starts at %v", start)
		}
		if d.Pins[p.EndPin()].Kind != model.FFData {
			t.Fatal("path does not end at a D pin")
		}
	}
}
