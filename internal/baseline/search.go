package baseline

import (
	"fmt"
	"sync"

	"fastcppr/internal/mmheap"
	"fastcppr/model"
)

// atFunc looks up the propagated arrival tuple at a pin for whatever
// arrival structure a baseline uses: (time, predecessor, valid).
type atFunc func(u model.PinID) (model.Time, model.PinID, bool)

// bcand is an implicitly-represented path in a baseline deviation search:
// parent path plus one deviation edge, exactly like the core engine's
// candidates but over ungrouped arrival structures.
type bcand struct {
	slack  model.Time
	pos    model.PinID
	parent *bcand
	devTo  model.PinID
	capFF  model.FFID
	// lau tags blockwise candidates with their launch FF so the right
	// per-launch tuples are consulted; unused (NoFF) elsewhere.
	lau model.FFID
}

// bcandHeapPool recycles candidate heaps across queries, shared by all
// baseline implementations: batch workloads run many searches back to
// back and the heap's backing arrays are the per-search allocation that
// matters after the propagation arrays (pooled in package sta).
var bcandHeapPool = sync.Pool{New: func() any { return mmheap.NewKey[*bcand]() }}

// getBCandHeap returns a pooled, Reset candidate heap.
func getBCandHeap() *mmheap.KeyHeap[*bcand] {
	h := bcandHeapPool.Get().(*mmheap.KeyHeap[*bcand])
	h.Reset()
	return h
}

// putBCandHeap recycles h. The caller must not touch h afterwards.
func putBCandHeap(h *mmheap.KeyHeap[*bcand]) { bcandHeapPool.Put(h) }

// ckqTable caches each FF's clock-to-Q delay window from d's arc table
// (the model guarantees Q is driven exactly by the CK->Q arc).
func ckqTable(d *model.Design) []model.Window {
	ckq := make([]model.Window, len(d.FFs))
	for i := range d.FFs {
		ckq[i] = d.Arcs[d.FanIn(d.FFs[i].Output)[0]].Delay
	}
	return ckq
}

// cancelStride is how many iterations of a per-FF or per-pin loop run
// between cooperative cancellation checks.
const cancelStride = 2048

// canceled reports whether the query's done channel is closed. Safe
// with a nil channel (never cancels).
func canceled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// pushDevs pushes one deviated candidate per non-path in-edge of the
// backwalk from c.pos (the ungrouped Algorithm 5 inner loop). bound < 0
// means unbounded.
func pushDevs(d *model.Design, setup bool, h *mmheap.KeyHeap[*bcand], at atFunc, c *bcand, bound int) {
	u := c.pos
	for {
		if d.IsClockPin(u) {
			return
		}
		_, from, ok := at(u)
		if !ok {
			panic("baseline: candidate position has no arrival")
		}
		for _, ai := range d.FanIn(u) {
			arc := &d.Arcs[ai]
			w := arc.From
			if w == from {
				continue
			}
			wt, _, wok := at(w)
			if !wok {
				continue
			}
			ut, _, _ := at(u)
			var cost model.Time
			if setup {
				cost = ut - (wt + arc.Delay.Late)
			} else {
				cost = wt + arc.Delay.Early - ut
			}
			if cost < 0 {
				panic(fmt.Sprintf("baseline: negative deviation cost %v at %s -> %s",
					cost, d.PinName(w), d.PinName(u)))
			}
			slack := c.slack + cost
			if bound >= 0 && h.Len() >= bound {
				// Cheap pre-check before allocating the candidate.
				if m, _ := h.MaxKey(); m <= int64(slack) {
					continue
				}
			}
			nc := &bcand{
				slack:  slack,
				pos:    w,
				parent: c,
				devTo:  u,
				capFF:  c.capFF,
				lau:    c.lau,
			}
			if bound < 0 {
				h.Push(int64(slack), nc)
			} else {
				h.PushBounded(int64(slack), nc, bound)
			}
		}
		if from == model.NoPin {
			return
		}
		u = from
	}
}

// launchAt walks from-pointers back from pos to the launching CK pin or
// primary input.
func launchAt(d *model.Design, at atFunc, pos model.PinID) model.PinID {
	u := pos
	for {
		if d.IsClockPin(u) {
			return u
		}
		_, from, ok := at(u)
		if !ok || from == model.NoPin {
			return u
		}
		u = from
	}
}

// backwalkAt returns the pin sequence from the seed to pos in forward
// order.
func backwalkAt(d *model.Design, at atFunc, pos model.PinID) []model.PinID {
	var rev []model.PinID
	u := pos
	for {
		rev = append(rev, u)
		if d.IsClockPin(u) {
			break
		}
		_, from, ok := at(u)
		if !ok || from == model.NoPin {
			break
		}
		u = from
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// reconstructAt materialises the full pin sequence of a candidate chain.
func reconstructAt(d *model.Design, at atFunc, c *bcand) []model.PinID {
	var chain []*bcand
	for x := c; x != nil; x = x.parent {
		chain = append(chain, x)
	}
	var path []model.PinID
	for i := len(chain) - 1; i >= 0; i-- {
		x := chain[i]
		prefix := backwalkAt(d, at, x.pos)
		if x.devTo == model.NoPin {
			path = prefix
			continue
		}
		cut := -1
		for idx, pin := range path {
			if pin == x.devTo {
				cut = idx
				break
			}
		}
		if cut < 0 {
			panic("baseline: deviation head not on parent path")
		}
		spliced := make([]model.PinID, 0, len(prefix)+len(path)-cut)
		spliced = append(spliced, prefix...)
		spliced = append(spliced, path[cut:]...)
		path = spliced
	}
	return path
}

// finishPath turns a reconstructed pin sequence into a fully populated
// model.Path via the model's first-principles recomputation. Baselines
// only do this for the final k winners, so the O(p + depth) cost per path
// is irrelevant next to their search cost.
func finishPath(d *model.Design, mode model.Mode, crpr model.CRPRMode, pins []model.PinID) model.Path {
	p, err := d.RecomputePathCRPR(mode, crpr, pins)
	if err != nil {
		panic(fmt.Sprintf("baseline: produced invalid path: %v", err))
	}
	return p
}
