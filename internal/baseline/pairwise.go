package baseline

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"fastcppr/internal/faultinject"
	"fastcppr/internal/lca"
	"fastcppr/internal/mmheap"
	"fastcppr/internal/qerr"
	"fastcppr/internal/sta"
	"fastcppr/model"
)

// Pairwise is the OpenTimer-style baseline: one arrival propagation per
// launching flip-flop, with the exact CPPR credit applied per
// launch/capture pair. Its cost is Θ(#FFs × n) regardless of k — the
// complexity class the paper's algorithm eliminates — and it
// parallelises across independent launching FFs, matching OpenTimer's
// per-FF parallelism.
type Pairwise struct {
	d    *model.Design
	tree *lca.Tree
	ckq  []model.Window
}

// NewPairwise preprocesses d for pairwise queries.
func NewPairwise(d *model.Design, tree *lca.Tree) *Pairwise {
	return &Pairwise{d: d, tree: tree, ckq: ckqTable(d)}
}

// Rebind returns a Pairwise over nd reusing p's clock-tree structures.
// nd must differ from p's design only in non-clock arc delays (the
// precondition under which the shared lca.Tree stays valid).
func (p *Pairwise) Rebind(nd *model.Design) *Pairwise {
	return &Pairwise{d: nd, tree: p.tree, ckq: ckqTable(nd)}
}

// pwOut is a candidate in the global pairwise selection, ordered by
// (slack, launch FF, pop index) for thread-count-independent results.
type pwOut struct {
	slack model.Time
	lau   int
	idx   int
	pins  []model.PinID
}

// TopPaths is TopPathsCRPR under the default same_pin credit model.
func (p *Pairwise) TopPaths(ctx context.Context, mode model.Mode, k, threads int) ([]model.Path, error) {
	return p.TopPathsCRPR(ctx, mode, model.CRPRSamePin, k, threads)
}

// TopPathsCRPR returns the exact global top-k post-CPPR paths for the
// mode under the given CRPR credit semantics. threads <= 0 uses
// GOMAXPROCS. The context bounds the query; a panic in any worker is
// contained and returned as a *qerr.InternalError.
func (p *Pairwise) TopPathsCRPR(ctx context.Context, mode model.Mode, crpr model.CRPRMode, k, threads int) ([]model.Path, error) {
	if err := qerr.FromContext(ctx); err != nil {
		return nil, err
	}
	if k <= 0 || len(p.d.FFs) == 0 {
		return nil, nil
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	// One job per launching FF plus one for all PI-launched paths.
	numJobs := len(p.d.FFs) + 1
	if threads > numJobs {
		threads = numJobs
	}
	setup := mode == model.Setup

	less := func(a, b *pwOut) bool {
		if a.slack != b.slack {
			return a.slack < b.slack
		}
		if a.lau != b.lau {
			return a.lau < b.lau
		}
		return a.idx < b.idx
	}
	global := mmheap.New(less)
	var mu sync.Mutex
	var next atomic.Int64
	var wg sync.WaitGroup

	qctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var failOnce sync.Once
	var failErr error
	fail := func(err error) {
		failOnce.Do(func() {
			failErr = err
			cancel()
		})
	}
	done := qctx.Done()

	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					fail(qerr.FromPanic("baseline.Pairwise", r))
				}
			}()
			prop := sta.GetProp()
			heap := getBCandHeap()
			defer func() {
				sta.PutProp(prop)
				putBCandHeap(heap)
			}()
			for {
				li := int(next.Add(1) - 1)
				if li >= numJobs || canceled(done) {
					return
				}
				faultinject.Fire("baseline.pairwise.worker")
				var outs []*pwOut
				if li < len(p.d.FFs) {
					outs = p.runLaunch(prop, heap, li, k, setup, crpr, done)
				} else {
					outs = p.runPIs(prop, heap, li, k, setup, done)
				}
				mu.Lock()
				for _, o := range outs {
					global.PushBounded(o, k)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if failErr != nil {
		return nil, failErr
	}
	if err := qerr.FromContext(ctx); err != nil {
		return nil, err
	}

	paths := make([]model.Path, 0, global.Len())
	for {
		o, ok := global.PopMin()
		if !ok {
			break
		}
		paths = append(paths, finishPath(p.d, mode, crpr, o.pins))
	}
	return paths, nil
}

// runLaunch performs the per-launch-FF analysis: propagate arrivals from
// this FF's Q pin only, seed one root candidate per reachable capture FF
// with the exact pairwise credit, and extract the launch-local top-k.
func (p *Pairwise) runLaunch(prop *sta.Prop, heap *mmheap.KeyHeap[*bcand], li, k int, setup bool, crpr model.CRPRMode, done <-chan struct{}) []*pwOut {
	d := p.d
	ff := &d.FFs[li]
	prop.Reset(d.NumPins())
	arr := p.tree.Arrival(ff.Clock)
	var qAt model.Time
	if setup {
		qAt = arr.Late + p.ckq[li].Late
	} else {
		qAt = arr.Early + p.ckq[li].Early
	}
	prop.Offer(ff.Output, qAt, ff.Clock, ff.Clock, sta.NoGroup, setup)
	prop.RunCtx(d, setup, done)

	at := func(u model.PinID) (model.Time, model.PinID, bool) {
		t := prop.At(u)
		return t.Time, t.From, t.Valid
	}

	heap.Reset()
	for ci := range d.FFs {
		if ci%cancelStride == 0 && canceled(done) {
			return nil
		}
		cap := &d.FFs[ci]
		t := prop.At(cap.Data)
		if !t.Valid {
			continue
		}
		credit := p.tree.PairCredit(ff.Clock, cap.Clock, crpr)
		capArr := p.tree.Arrival(cap.Clock)
		var pre model.Time
		if setup {
			pre = capArr.Early + d.Period - cap.Setup - t.Time
		} else {
			pre = t.Time - (capArr.Late + cap.Hold)
		}
		heap.PushBounded(int64(pre+credit), &bcand{
			slack: pre + credit,
			pos:   cap.Data,
			devTo: model.NoPin,
			capFF: model.FFID(ci),
		}, k)
	}

	var outs []*pwOut
	for i := 0; i < k; i++ {
		if canceled(done) {
			return nil
		}
		kv, ok := heap.PopMin()
		if !ok {
			break
		}
		c := kv.V
		if rem := k - i - 1; rem > 0 {
			pushDevs(d, setup, heap, at, c, rem)
		}
		outs = append(outs, &pwOut{
			slack: c.slack,
			lau:   li,
			idx:   i,
			pins:  reconstructAt(d, at, c),
		})
	}
	return outs
}

// runPIs handles all primary-input-launched paths in one propagation:
// PI paths carry no credit, so a single ungrouped search suffices.
func (p *Pairwise) runPIs(prop *sta.Prop, heap *mmheap.KeyHeap[*bcand], li, k int, setup bool, done <-chan struct{}) []*pwOut {
	d := p.d
	if len(d.PIs) == 0 {
		return nil
	}
	prop.Reset(d.NumPins())
	for i, pi := range d.PIs {
		arr := d.PIArrival[i]
		var t model.Time
		if setup {
			t = arr.Late
		} else {
			t = arr.Early
		}
		prop.Offer(pi, t, model.NoPin, pi, sta.NoGroup, setup)
	}
	prop.RunCtx(d, setup, done)
	at := func(u model.PinID) (model.Time, model.PinID, bool) {
		t := prop.At(u)
		return t.Time, t.From, t.Valid
	}

	heap.Reset()
	for ci := range d.FFs {
		if ci%cancelStride == 0 && canceled(done) {
			return nil
		}
		cap := &d.FFs[ci]
		t := prop.At(cap.Data)
		if !t.Valid {
			continue
		}
		capArr := p.tree.Arrival(cap.Clock)
		var pre model.Time
		if setup {
			pre = capArr.Early + d.Period - cap.Setup - t.Time
		} else {
			pre = t.Time - (capArr.Late + cap.Hold)
		}
		heap.PushBounded(int64(pre), &bcand{
			slack: pre,
			pos:   cap.Data,
			devTo: model.NoPin,
			capFF: model.FFID(ci),
		}, k)
	}

	var outs []*pwOut
	for i := 0; i < k; i++ {
		if canceled(done) {
			return nil
		}
		kv, ok := heap.PopMin()
		if !ok {
			break
		}
		c := kv.V
		if rem := k - i - 1; rem > 0 {
			pushDevs(d, setup, heap, at, c, rem)
		}
		outs = append(outs, &pwOut{
			slack: c.slack,
			lau:   li,
			idx:   i,
			pins:  reconstructAt(d, at, c),
		})
	}
	return outs
}
