// Package baseline implements the comparison timers of the paper's
// evaluation, re-created from each tool's published algorithmic strategy:
//
//   - BruteForce — exhaustive path enumeration; the exactness oracle.
//   - Pairwise — OpenTimer-style per-launch-FF analysis whose cost grows
//     with the flip-flop count (the complexity class the paper attacks).
//   - Blockwise — HappyTimer-style launch-set block propagation that
//     exploits launch/capture sparsity and degrades (in memory) on
//     designs with high FF connectivity.
//   - BranchAndBound — iTimerC-style pre-CPPR-ordered search with credit
//     bounding; fast at k=1, degrades at large k.
//
// All four are exact: CPPR is a full-accuracy problem and the evaluation
// compares runtime and memory shapes, not result quality.
package baseline

import (
	"context"
	"fmt"
	"sort"

	"fastcppr/internal/qerr"
	"fastcppr/model"
)

// maxBrutePaths bounds the exhaustive enumeration; the oracle is meant
// for small randomized designs only.
const maxBrutePaths = 2_000_000

// BruteForce enumerates every data path in d, computes its exact
// post-CPPR slack from first principles, and returns the top-k. It is
// exponential in the path count and exists as the correctness oracle for
// every other timer in this repository.
func BruteForce(d *model.Design, mode model.Mode, k int) []model.Path {
	paths, err := BruteForceCtx(context.Background(), d, mode, k)
	if err != nil {
		// Unreachable: a background context never cancels.
		panic(err)
	}
	return paths
}

// BruteForceCtx is BruteForce bounded by a context: enumeration checks
// for cancellation periodically and returns the taxonomy error.
func BruteForceCtx(ctx context.Context, d *model.Design, mode model.Mode, k int) ([]model.Path, error) {
	return BruteForceCRPR(ctx, d, mode, model.CRPRSamePin, k)
}

// BruteForceCRPR is BruteForceCtx under the given CRPR credit semantics:
// every enumerated path's credit is recomputed from first principles
// honouring the mode, so it oracles same_transition exactly like
// same_pin.
func BruteForceCRPR(ctx context.Context, d *model.Design, mode model.Mode, crpr model.CRPRMode, k int) ([]model.Path, error) {
	eps := make([]model.PinID, 0, len(d.FFs))
	for i := range d.FFs {
		eps = append(eps, d.FFs[i].Data)
	}
	all, err := allPathsTo(ctx, d, mode, crpr, eps)
	if err != nil {
		return nil, err
	}
	SortPaths(all)
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// AllPathsTo enumerates every data path ending at the given endpoints
// (FF D pins and/or constrained POs) with exact slack decompositions,
// unordered.
func AllPathsTo(d *model.Design, mode model.Mode, endpoints []model.PinID) []model.Path {
	all, err := allPathsTo(context.Background(), d, mode, model.CRPRSamePin, endpoints)
	if err != nil {
		panic(err) // unreachable: a background context never cancels
	}
	return all
}

// allPathsTo is the context-aware enumeration behind AllPathsTo: the
// emit path checks for cancellation every stride of emitted paths, so
// even exponential enumerations abort with bounded latency.
func allPathsTo(ctx context.Context, d *model.Design, mode model.Mode, crpr model.CRPRMode, endpoints []model.PinID) ([]model.Path, error) {
	done := ctx.Done()
	var all []model.Path
	var rev []model.PinID
	stop := false

	var dfs func(u model.PinID)
	emit := func() {
		if len(all)%cancelStride == 0 && canceled(done) {
			stop = true
			return
		}
		pins := make([]model.PinID, len(rev))
		for i, p := range rev {
			pins[len(rev)-1-i] = p
		}
		p, err := d.RecomputePathCRPR(mode, crpr, pins)
		if err != nil {
			panic(fmt.Sprintf("baseline: enumerated invalid path: %v", err))
		}
		all = append(all, p)
		if len(all) > maxBrutePaths {
			panic("baseline: path count exceeds brute-force budget")
		}
	}
	dfs = func(u model.PinID) {
		if stop {
			return
		}
		rev = append(rev, u)
		defer func() { rev = rev[:len(rev)-1] }()
		switch d.Pins[u].Kind {
		case model.PI:
			emit()
			return
		case model.FFOutput:
			// Continue through the CK->Q arc to the launching CK pin.
			ck := d.Arcs[d.FanIn(u)[0]].From
			rev = append(rev, ck)
			emit()
			rev = rev[:len(rev)-1]
			return
		}
		for _, ai := range d.FanIn(u) {
			dfs(d.Arcs[ai].From)
		}
	}
	for _, ep := range endpoints {
		dfs(ep)
	}
	if stop {
		return nil, qerr.FromContext(ctx)
	}
	return all, nil
}

// AllPaths enumerates every FF-test path (ending at D pins).
func AllPaths(d *model.Design, mode model.Mode) []model.Path {
	eps := make([]model.PinID, 0, len(d.FFs))
	for i := range d.FFs {
		eps = append(eps, d.FFs[i].Data)
	}
	return AllPathsTo(d, mode, eps)
}

// AllPathsWithPOs enumerates FF-test paths plus output-check paths at
// constrained POs.
func AllPathsWithPOs(d *model.Design, mode model.Mode) []model.Path {
	eps := make([]model.PinID, 0, len(d.FFs)+len(d.POs))
	for i := range d.FFs {
		eps = append(eps, d.FFs[i].Data)
	}
	for i, po := range d.POs {
		if d.POConstrained[i] {
			eps = append(eps, po)
		}
	}
	return AllPathsTo(d, mode, eps)
}

// SortPaths orders paths ascending by slack with a deterministic
// tie-break on the pin sequence, so oracle comparisons are reproducible.
func SortPaths(paths []model.Path) {
	sort.Slice(paths, func(i, j int) bool {
		a, b := &paths[i], &paths[j]
		if a.Slack != b.Slack {
			return a.Slack < b.Slack
		}
		if len(a.Pins) != len(b.Pins) {
			return len(a.Pins) < len(b.Pins)
		}
		for x := range a.Pins {
			if a.Pins[x] != b.Pins[x] {
				return a.Pins[x] < b.Pins[x]
			}
		}
		return false
	})
}

// Slacks extracts the slack sequence of a path list; test helpers compare
// these as multisets because tied paths may be reported in any order.
func Slacks(paths []model.Path) []model.Time {
	out := make([]model.Time, len(paths))
	for i := range paths {
		out[i] = paths[i].Slack
	}
	return out
}
