package baseline

import (
	"testing"

	"fastcppr/gen"
	"fastcppr/internal/lca"
	"fastcppr/model"
)

func TestRerankIsSupersetOfPrefixButInexact(t *testing.T) {
	// Across many seeds the heuristic must (a) return valid paths,
	// (b) agree with the exact result whenever pre- and post-CPPR
	// orders coincide, and (c) demonstrably miss paths on at least one
	// seed — otherwise it would not motivate exact CPPR.
	for seed := int64(0); seed < 12; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		tree := lca.New(d)
		rr := NewRerank(d, tree)
		for _, mode := range model.Modes {
			k := 10
			exact := BruteForce(d, mode, k)
			heur := rr.TopPaths(mode, k)
			validate(t, d, mode, heur, "rerank")
			missed, worstErr := RerankError(exact, heur)
			if missed < 0 || missed > len(exact) {
				t.Fatalf("nonsensical missed count %d", missed)
			}
			if worstErr < 0 {
				t.Fatalf("negative worst error %v", worstErr)
			}
			// The heuristic can never return a better (smaller) worst
			// slack than the exact answer.
			if len(heur) > 0 && len(exact) > 0 && heur[0].Slack < exact[0].Slack {
				t.Fatalf("heuristic found a path better than exact top-1")
			}
		}
	}
}

// TestRerankMissesTrueCriticalPath constructs the adversarial case the
// heuristic cannot handle: the true post-CPPR worst path ranks below
// another path pre-CPPR, so a top-1-by-pre-slack selection never sees it.
func TestRerankMissesTrueCriticalPath(t *testing.T) {
	b := model.NewBuilder("adversarial", model.Ns(10))
	clk := b.AddClockRoot("clk")
	t1 := b.AddClockBuf("t1")
	t2 := b.AddClockBuf("t2")
	b.AddArc(clk, t1, model.Window{Early: 10, Late: 10})  // no skew: credit 0
	b.AddArc(clk, t2, model.Window{Early: 10, Late: 200}) // credit 190
	ckq := model.Window{Early: 10, Late: 10}
	ff1 := b.AddFF("ff1", 0, 0, ckq)
	ff2 := b.AddFF("ff2", 0, 0, ckq)
	ff3 := b.AddFF("ff3", 0, 0, ckq)
	ff4 := b.AddFF("ff4", 0, 0, ckq)
	leaf := model.Window{Early: 5, Late: 5}
	b.AddArc(t1, ff1.Clock, leaf)
	b.AddArc(t1, ff2.Clock, leaf)
	b.AddArc(t2, ff3.Clock, leaf)
	b.AddArc(t2, ff4.Clock, leaf)
	g1 := b.AddComb("g1")
	g2 := b.AddComb("g2")
	// Path A (ff1->ff2): pre-slack better than B's, credit 0.
	b.AddArc(ff1.Q, g1, model.Window{Early: 300, Late: 300})
	b.AddArc(g1, ff2.D, model.Window{Early: 10, Late: 10})
	// Path B (ff3->ff4): pre-CPPR worst, but its 190ps credit makes it
	// harmless post-CPPR; A is the true post-CPPR worst path.
	b.AddArc(ff3.Q, g2, model.Window{Early: 250, Late: 250})
	b.AddArc(g2, ff4.D, model.Window{Early: 10, Late: 10})
	d := b.MustBuild()
	tree := lca.New(d)

	exact := BruteForce(d, model.Setup, 1)
	heur := NewRerank(d, tree).TopPaths(model.Setup, 1)
	if len(exact) != 1 || len(heur) != 1 {
		t.Fatalf("got %d/%d paths", len(exact), len(heur))
	}
	missed, worstErr := RerankError(exact, heur)
	if missed != 1 {
		t.Fatalf("missed = %d, want 1 (exact worst %v via FF%d, heuristic returned %v via FF%d)",
			missed, exact[0].Slack, exact[0].CaptureFF, heur[0].Slack, heur[0].CaptureFF)
	}
	if worstErr <= 0 {
		t.Fatalf("worstErr = %v, want > 0", worstErr)
	}
}

func TestRerankEmpty(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(0))
	rr := NewRerank(d, lca.New(d))
	if got := rr.TopPaths(model.Setup, 0); got != nil {
		t.Error("k=0 returned paths")
	}
}

func TestRerankErrorCounting(t *testing.T) {
	mk := func(slack model.Time, lau, cap model.FFID) model.Path {
		return model.Path{Slack: slack, LaunchFF: lau, CaptureFF: cap}
	}
	exact := []model.Path{mk(10, 1, 2), mk(20, 3, 4)}
	heur := []model.Path{mk(20, 3, 4), mk(30, 5, 6)}
	missed, worstErr := RerankError(exact, heur)
	if missed != 1 {
		t.Errorf("missed = %d, want 1", missed)
	}
	if worstErr != 10 {
		t.Errorf("worstErr = %v, want 10", worstErr)
	}
	if m, w := RerankError(exact, exact); m != 0 || w != 0 {
		t.Errorf("self comparison = %d/%v", m, w)
	}
}
