package sta

import (
	"math/rand"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// seedOp is one recorded seeding Offer, so the dense and sparse kernels
// can be fed byte-identical offer sequences.
type seedOp struct {
	pin    model.PinID
	t      model.Time
	origin model.PinID
	group  int32
}

// randomSeeds picks a random subset of FF output pins and assigns random
// arrival times and group tags (with deliberate collisions, so the at/at'
// pair logic is exercised).
func randomSeeds(d *model.Design, rng *rand.Rand) []seedOp {
	var ops []seedOp
	for i := range d.FFs {
		if rng.Intn(3) == 0 {
			continue // leave a third of the FFs unseeded: sparse cones
		}
		ff := &d.FFs[i]
		ops = append(ops, seedOp{
			pin:    ff.Output,
			t:      model.Time(rng.Intn(5000)),
			origin: ff.Clock,
			group:  int32(rng.Intn(4)), // few groups: force collisions
		})
	}
	return ops
}

func applySeeds(p *Prop, ops []seedOp, setup bool) {
	for _, o := range ops {
		p.Offer(o.pin, o.t, o.origin, o.origin, o.group, setup)
	}
}

// propState reads one pin's full post-run state — liveness and the raw
// at/at' tuples — from whichever representation the Prop has armed.
func propState(p *Prop, u model.PinID) (live bool, a, b Tuple) {
	if p.sparse {
		s := &p.slots[u]
		if s.stamp != p.epoch {
			return false, Tuple{}, Tuple{}
		}
		return true, s.a, s.b
	}
	if p.stamp[u] != p.epoch {
		return false, Tuple{}, Tuple{}
	}
	return true, p.a[u], p.b[u]
}

// requireKernelsEqual compares the full post-run state of the dense and
// sparse kernels: per-pin liveness and, for live pins, the raw at/at'
// tuples. Byte-identical tuples (including From/Origin tie-breaks) are
// the contract the differential battery and the DenseKernel ablation
// knob rely on.
func requireKernelsEqual(t testing.TB, d *model.Design, dense, sparse *Prop) {
	t.Helper()
	for u := 0; u < d.NumPins(); u++ {
		dLive, da, db := propState(dense, model.PinID(u))
		sLive, sa, sb := propState(sparse, model.PinID(u))
		if dLive != sLive {
			t.Fatalf("pin %s: dense live=%v, sparse live=%v", d.PinName(model.PinID(u)), dLive, sLive)
		}
		if !dLive {
			continue
		}
		if da != sa {
			t.Fatalf("pin %s: at differs\ndense:  %+v\nsparse: %+v", d.PinName(model.PinID(u)), da, sa)
		}
		if db != sb {
			t.Fatalf("pin %s: at' differs\ndense:  %+v\nsparse: %+v", d.PinName(model.PinID(u)), db, sb)
		}
	}
}

// runBothKernels runs the same seed set through RunCtx (dense) and
// RunSparse and checks the resulting tuple arrays are identical.
func runBothKernels(t testing.TB, d *model.Design, ops []seedOp, setup bool) {
	t.Helper()
	var dense, sparse Prop
	dense.Reset(d.NumPins())
	applySeeds(&dense, ops, setup)
	dense.RunCtx(d, setup, nil)

	sparse.ResetFor(d)
	applySeeds(&sparse, ops, setup)
	sparse.RunSparse(d, setup, nil)

	requireKernelsEqual(t, d, &dense, &sparse)
}

func TestRunSparseMatchesDenseRandom(t *testing.T) {
	// Property: for any design, any seed set and either mode, the sparse
	// frontier kernel produces bit-identical tuples to the dense kernel.
	for seed := int64(0); seed < 6; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		rng := rand.New(rand.NewSource(seed * 7))
		for rep := 0; rep < 8; rep++ {
			ops := randomSeeds(d, rng)
			runBothKernels(t, d, ops, true)
			runBothKernels(t, d, ops, false)
		}
	}
	// One mid-size design with real reconvergence and multi-level clocks.
	d := gen.MustGenerate(gen.Medium(3))
	rng := rand.New(rand.NewSource(99))
	for rep := 0; rep < 4; rep++ {
		ops := randomSeeds(d, rng)
		runBothKernels(t, d, ops, true)
		runBothKernels(t, d, ops, false)
	}
}

func TestRunSparseReusedPropMatchesDense(t *testing.T) {
	// The sparse kernel must stay exact when one Prop is reused across
	// epochs (the production pattern: one pooled Prop per worker serving
	// many jobs), including when the previous epoch left tuples behind.
	d := gen.MustGenerate(gen.Medium(5))
	rng := rand.New(rand.NewSource(5))
	var sparse Prop
	for rep := 0; rep < 6; rep++ {
		ops := randomSeeds(d, rng)
		setup := rep%2 == 0

		var dense Prop
		dense.Reset(d.NumPins())
		applySeeds(&dense, ops, setup)
		dense.RunCtx(d, setup, nil)

		sparse.ResetFor(d)
		applySeeds(&sparse, ops, setup)
		sparse.RunSparse(d, setup, nil)

		requireKernelsEqual(t, d, &dense, &sparse)
	}
}

func FuzzRunSparseVsDense(f *testing.F) {
	f.Add(int64(0), uint64(0xffff), uint16(1234), true)
	f.Add(int64(1), uint64(0xa5a5), uint16(7), false)
	f.Add(int64(2), uint64(1), uint16(0), true)
	f.Fuzz(func(t *testing.T, designSeed int64, mask uint64, timeSeed uint16, setup bool) {
		d := gen.MustGenerate(gen.SmallOracle(designSeed % 8))
		rng := rand.New(rand.NewSource(int64(timeSeed)))
		var ops []seedOp
		for i := range d.FFs {
			if mask&(1<<(uint(i)%64)) == 0 {
				continue
			}
			ff := &d.FFs[i]
			ops = append(ops, seedOp{
				pin:    ff.Output,
				t:      model.Time(rng.Intn(4096)),
				origin: ff.Clock,
				group:  int32(rng.Intn(3)),
			})
		}
		runBothKernels(t, d, ops, setup)
	})
}

func TestRunSparsePanicsWithoutResetFor(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(0))
	var p Prop
	p.Reset(d.NumPins())
	defer func() {
		if recover() == nil {
			t.Fatal("RunSparse on a dense-Reset Prop should panic")
		}
	}()
	p.RunSparse(d, true, nil)
}

func TestCancelInvalidatesReads(t *testing.T) {
	// Early cancel must leave the arrays unreadable (the "must not be
	// consulted" contract): after a canceled run, every At/Auto returns
	// an unset tuple until the next Reset, for both kernels.
	d := gen.MustGenerate(gen.Medium(2))
	done := make(chan struct{})
	close(done)
	seedAll := func(p *Prop, setup bool) {
		for i := range d.FFs {
			ff := &d.FFs[i]
			p.Offer(ff.Output, model.Time(100+i), ff.Clock, ff.Clock, int32(i%3), setup)
		}
	}
	checkUnreadable := func(name string, p *Prop) {
		t.Helper()
		for u := 0; u < d.NumPins(); u++ {
			if p.At(model.PinID(u)).Valid {
				t.Fatalf("%s: At(%s) readable after canceled run", name, d.PinName(model.PinID(u)))
			}
			if p.Auto(model.PinID(u), 0).Valid {
				t.Fatalf("%s: Auto(%s) readable after canceled run", name, d.PinName(model.PinID(u)))
			}
		}
	}

	var dense Prop
	dense.Reset(d.NumPins())
	seedAll(&dense, true)
	dense.RunCtx(d, true, done)
	checkUnreadable("dense", &dense)

	var sparse Prop
	sparse.ResetFor(d)
	seedAll(&sparse, true)
	sparse.RunSparse(d, true, done)
	checkUnreadable("sparse", &sparse)

	// The next Reset must fully revive both Props.
	sparse.ResetFor(d)
	seedAll(&sparse, true)
	sparse.RunSparse(d, true, nil)
	dense.Reset(d.NumPins())
	seedAll(&dense, true)
	dense.RunCtx(d, true, nil)
	requireKernelsEqual(t, d, &dense, &sparse)
}

func TestPutPropEvictsOversizedBuffers(t *testing.T) {
	old := propRetainPins
	defer func() { propRetainPins = old }()
	propRetainPins = 8

	p := new(Prop)
	p.Reset(16) // dense buffers above the cap: must be dropped on Put
	PutProp(p)
	if p.a != nil || p.stamp != nil {
		t.Fatalf("PutProp retained %d-pin dense buffers beyond the %d-pin cap", cap(p.a), propRetainPins)
	}

	d := gen.MustGenerate(gen.SmallOracle(1))
	s := new(Prop)
	s.ResetFor(d) // sparse slots above the cap: must be dropped on Put
	if d.NumPins() <= propRetainPins {
		t.Fatalf("want design pins (%d) above the %d-pin cap", d.NumPins(), propRetainPins)
	}
	PutProp(s)
	if s.slots != nil {
		t.Fatalf("PutProp retained %d-pin slot buffer beyond the %d-pin cap", cap(s.slots), propRetainPins)
	}

	propRetainPins = d.NumPins()
	q := new(Prop)
	q.ResetFor(d) // within the cap: buffers retained, design binding dropped
	PutProp(q)
	if q.slots == nil {
		t.Fatal("PutProp dropped buffers within the retention cap")
	}
	if q.topo != nil || q.topoIndex != nil {
		t.Fatal("PutProp retained the design's topological tables")
	}
	if q.fr.len() != 0 {
		t.Fatal("PutProp retained frontier entries")
	}
}

func TestPropReuseAcrossDesignsNoStaleAliasing(t *testing.T) {
	// Regression: a pooled Prop carries arrays (and, before PutProp
	// clears them, design bindings) from its previous life. Reusing it
	// on a different design must never surface the old design's tuples.
	big := gen.MustGenerate(gen.Medium(7))
	small := gen.MustGenerate(gen.SmallOracle(3))
	if small.NumPins() >= big.NumPins() {
		t.Fatalf("want small (%d pins) < big (%d pins)", small.NumPins(), big.NumPins())
	}

	p := GetProp()
	p.ResetFor(big)
	for i := range big.FFs {
		ff := &big.FFs[i]
		p.Offer(ff.Output, model.Time(1000+i), ff.Clock, ff.Clock, int32(i%5), true)
	}
	p.RunSparse(big, true, nil)
	PutProp(p)

	p = GetProp() // may or may not be the same object; both must be safe
	p.ResetFor(small)
	for u := 0; u < small.NumPins(); u++ {
		if p.At(model.PinID(u)).Valid {
			t.Fatalf("stale tuple visible at %s before any Offer", small.PinName(model.PinID(u)))
		}
	}
	rng := rand.New(rand.NewSource(11))
	ops := randomSeeds(small, rng)
	applySeeds(p, ops, false)
	p.RunSparse(small, false, nil)

	var fresh Prop
	fresh.ResetFor(small)
	applySeeds(&fresh, ops, false)
	fresh.RunSparse(small, false, nil)
	requireKernelsEqual(t, small, p, &fresh)
	PutProp(p)
}

// TestLevelJobKernelZeroAllocs pins the steady-state allocation count of
// the sparse level-job kernel loop — reset, seed, propagate, read every
// capture pin — at zero. The epoch bump makes Reset allocation-free and
// the frontier bitset retains its words across drains, so after the first job warms the
// arrays nothing on the hot path may allocate.
func TestLevelJobKernelZeroAllocs(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(4))
	var p Prop
	job := func(run func()) {
		for i := range d.FFs {
			ff := &d.FFs[i]
			p.Offer(ff.Output, model.Time(500+i), ff.Clock, ff.Clock, int32(i%4), true)
		}
		run()
		for i := range d.FFs {
			_ = p.Auto(d.FFs[i].Data, int32(i%4))
		}
	}

	p.ResetFor(d)
	job(func() { p.RunSparse(d, true, nil) }) // warm-up: grow arrays and frontier
	if allocs := testing.AllocsPerRun(20, func() {
		p.ResetFor(d)
		job(func() { p.RunSparse(d, true, nil) })
	}); allocs != 0 {
		t.Fatalf("sparse level-job kernel allocates %v per run, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(20, func() {
		p.Reset(d.NumPins())
		job(func() { p.RunCtx(d, true, nil) })
	}); allocs != 0 {
		t.Fatalf("dense level-job kernel allocates %v per run, want 0", allocs)
	}
}
