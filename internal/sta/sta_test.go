package sta

import (
	"math/rand"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// buildDiamond creates a small design with reconvergent data paths:
//
//	clk -> b -> ff1/CK, ff2/CK
//	ff1/Q -> g1 -> g3 -> ff2/D
//	ff1/Q -> g2 -> g3
//	in -> g2
func buildDiamond(t testing.TB) *model.Design {
	t.Helper()
	b := model.NewBuilder("diamond", model.Ns(10))
	clk := b.AddClockRoot("clk")
	cb := b.AddClockBuf("b")
	b.AddArc(clk, cb, model.Window{Early: 10, Late: 15})
	ff1 := b.AddFF("ff1", 20, 10, model.Window{Early: 30, Late: 40})
	ff2 := b.AddFF("ff2", 20, 10, model.Window{Early: 30, Late: 40})
	b.AddArc(cb, ff1.Clock, model.Window{Early: 5, Late: 8})
	b.AddArc(cb, ff2.Clock, model.Window{Early: 6, Late: 9})
	g1 := b.AddComb("g1")
	g2 := b.AddComb("g2")
	g3 := b.AddComb("g3")
	in := b.AddPI("in", model.Window{Early: 2, Late: 4})
	b.AddArc(ff1.Q, g1, model.Window{Early: 100, Late: 150})
	b.AddArc(ff1.Q, g2, model.Window{Early: 50, Late: 60})
	b.AddArc(in, g2, model.Window{Early: 10, Late: 12})
	b.AddArc(g1, g3, model.Window{Early: 20, Late: 25})
	b.AddArc(g2, g3, model.Window{Early: 30, Late: 35})
	b.AddArc(g3, ff2.D, model.Window{Early: 40, Late: 45})
	return b.MustBuild()
}

func TestPropagateDiamond(t *testing.T) {
	d := buildDiamond(t)
	g := Propagate(d)
	ck1, _ := d.PinByName("ff1/CK")
	if got := g.AT[ck1]; got != (model.Window{Early: 15, Late: 23}) {
		t.Errorf("AT(ff1/CK) = %v", got)
	}
	q1, _ := d.PinByName("ff1/Q")
	if got := g.AT[q1]; got != (model.Window{Early: 45, Late: 63}) {
		t.Errorf("AT(ff1/Q) = %v", got)
	}
	g3p, _ := d.PinByName("g3")
	// early(g3) = min(45+100+20, min(45+50, 2+10)+30) = min(165, 42) = 42
	// late(g3)  = max(63+150+25, max(63+60, 4+12)+35) = max(238, 158) = 238
	if got := g.AT[g3p]; got != (model.Window{Early: 42, Late: 238}) {
		t.Errorf("AT(g3) = %v", got)
	}
	d2, _ := d.PinByName("ff2/D")
	if got := g.AT[d2]; got != (model.Window{Early: 82, Late: 283}) {
		t.Errorf("AT(ff2/D) = %v", got)
	}
	// Every pin except the undriven ff1/D must be reachable.
	d1, _ := d.PinByName("ff1/D")
	for id, v := range g.Valid {
		if !v && model.PinID(id) != d1 {
			t.Errorf("pin %s unreachable", d.PinName(model.PinID(id)))
		}
	}
	if g.Valid[d1] {
		t.Error("ff1/D should be unreachable (no fan-in)")
	}
}

func TestEndpointSlacks(t *testing.T) {
	d := buildDiamond(t)
	g := Propagate(d)
	setup := EndpointSlacks(d, g, model.Setup)
	hold := EndpointSlacks(d, g, model.Hold)
	// ff1/D has no fan-in: invalid endpoint.
	if setup[0].Valid {
		t.Error("ff1 endpoint should be invalid (no D fan-in)")
	}
	if !setup[1].Valid || !hold[1].Valid {
		t.Fatal("ff2 endpoint should be valid")
	}
	// ff2: ck = [16, 24]; D = [82, 283]
	// setup = 16 + 10000 - 20 - 283 = 9713
	if setup[1].Slack != 9713 {
		t.Errorf("setup slack = %v, want 9713", setup[1].Slack.Ps())
	}
	// hold = 82 - (24 + 10) = 48
	if hold[1].Slack != 48 {
		t.Errorf("hold slack = %v, want 48", hold[1].Slack.Ps())
	}
	if w, ok := WorstSlack(setup); !ok || w != 9713 {
		t.Errorf("WorstSlack = %v/%v", w, ok)
	}
	if _, ok := WorstSlack(nil); ok {
		t.Error("WorstSlack of empty should be !ok")
	}
}

func TestPropagateMatchesRecomputeOnRandomDesigns(t *testing.T) {
	// The GBA late arrival at a D pin must equal the max over brute-
	// force-enumerated path delays (and min for early).
	for seed := int64(0); seed < 5; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		g := Propagate(d)
		for fi := range d.FFs {
			dp := d.FFs[fi].Data
			if !g.Valid[dp] {
				continue
			}
			early, late, found := bruteArrival(d, dp)
			if !found {
				t.Fatalf("seed %d: valid pin with no brute paths", seed)
			}
			if g.AT[dp].Early != early || g.AT[dp].Late != late {
				t.Errorf("seed %d: AT(%s) = %v, brute = [%v, %v]",
					seed, d.PinName(dp), g.AT[dp], early, late)
			}
		}
	}
}

// bruteArrival enumerates all source-to-pin paths by reverse DFS and
// returns the extreme early/late arrivals.
func bruteArrival(d *model.Design, target model.PinID) (early, late model.Time, found bool) {
	piArrival := make(map[model.PinID]model.Window)
	for i, p := range d.PIs {
		piArrival[p] = d.PIArrival[i]
	}
	var dfs func(u model.PinID, accEarly, accLate model.Time)
	dfs = func(u model.PinID, accEarly, accLate model.Time) {
		if u == d.Root {
			report(&early, &late, &found, accEarly, accLate)
			return
		}
		if w, ok := piArrival[u]; ok {
			report(&early, &late, &found, accEarly+w.Early, accLate+w.Late)
			return
		}
		for _, ai := range d.FanIn(u) {
			a := d.Arcs[ai]
			dfs(a.From, accEarly+a.Delay.Early, accLate+a.Delay.Late)
		}
	}
	dfs(target, 0, 0)
	return early, late, found
}

func report(early, late *model.Time, found *bool, e, l model.Time) {
	if !*found {
		*early, *late, *found = e, l, true
		return
	}
	if e < *early {
		*early = e
	}
	if l > *late {
		*late = l
	}
}

// --- Tuple engine tests ---

func TestOfferMaintainsInvariants(t *testing.T) {
	for _, setup := range []bool{true, false} {
		var p Prop
		p.Reset(1)
		pin := model.PinID(0)
		rng := rand.New(rand.NewSource(1))
		type offered struct {
			tm model.Time
			g  int32
		}
		var all []offered
		for i := 0; i < 2000; i++ {
			tm := model.Time(rng.Intn(1000))
			gid := int32(rng.Intn(5))
			p.Offer(pin, tm, model.NoPin, model.NoPin, gid, setup)
			all = append(all, offered{tm, gid})

			// Reference: best overall; best with group != best's group.
			bestIdx := 0
			for j, o := range all {
				if better(setup, o.tm, all[bestIdx].tm) {
					bestIdx = j
				}
			}
			a := p.a[pin]
			if a.Time != all[bestIdx].tm {
				t.Fatalf("setup=%v step %d: A.time = %v, want %v", setup, i, a.Time, all[bestIdx].tm)
			}
			var wantB *offered
			for j := range all {
				o := all[j]
				if o.g == a.Group {
					continue
				}
				if wantB == nil || better(setup, o.tm, wantB.tm) {
					wantB = &all[j]
				}
			}
			b := p.b[pin]
			if wantB == nil {
				if b.Valid {
					t.Fatalf("setup=%v step %d: B valid with no other-group tuples", setup, i)
				}
			} else if !b.Valid || b.Time != wantB.tm {
				t.Fatalf("setup=%v step %d: B.time = %v (valid %v), want %v", setup, i, b.Time, b.Valid, wantB.tm)
			}
		}
	}
}

func TestAutoFallback(t *testing.T) {
	var p Prop
	p.Reset(1)
	pin := model.PinID(0)
	// No tuples: Auto is invalid.
	if p.Auto(pin, 3).Valid {
		t.Fatal("Auto on empty pin should be invalid")
	}
	p.Offer(pin, 100, model.NoPin, model.NoPin, 3, true)
	p.Offer(pin, 90, model.NoPin, model.NoPin, 4, true)
	if got := p.Auto(pin, 5); got.Time != 100 {
		t.Errorf("Auto(other gid) = %v, want A (100)", got.Time)
	}
	if got := p.Auto(pin, 3); got.Time != 90 {
		t.Errorf("Auto(gid 3) = %v, want B (90)", got.Time)
	}
	if got := p.Auto(pin, 4); got.Time != 100 {
		t.Errorf("Auto(gid 4) = %v, want A (100)", got.Time)
	}
	if got := p.At(pin); got.Time != 100 {
		t.Errorf("At = %v, want 100", got.Time)
	}
}

func TestRunPropagatesBothTuples(t *testing.T) {
	// Two launch groups feed a shared chain; the chain's end must hold
	// both the best tuple and the other-group fallback.
	b := model.NewBuilder("chain", model.Ns(10))
	clk := b.AddClockRoot("clk")
	ff1 := b.AddFF("ff1", 1, 1, model.Window{Early: 10, Late: 10})
	ff2 := b.AddFF("ff2", 1, 1, model.Window{Early: 10, Late: 10})
	ff3 := b.AddFF("ff3", 1, 1, model.Window{Early: 10, Late: 10})
	b.AddArc(clk, ff1.Clock, model.Window{Early: 1, Late: 2})
	b.AddArc(clk, ff2.Clock, model.Window{Early: 1, Late: 2})
	b.AddArc(clk, ff3.Clock, model.Window{Early: 1, Late: 2})
	g1 := b.AddComb("g1")
	g2 := b.AddComb("g2")
	b.AddArc(ff1.Q, g1, model.Window{Early: 100, Late: 100})
	b.AddArc(ff2.Q, g1, model.Window{Early: 50, Late: 50})
	b.AddArc(g1, g2, model.Window{Early: 10, Late: 10})
	b.AddArc(g2, ff3.D, model.Window{Early: 10, Late: 10})
	d := b.MustBuild()

	var p Prop
	p.Reset(d.NumPins())
	// Seed Q pins with distinct groups (setup mode: latest wins).
	p.Offer(d.FFs[0].Output, 1000, d.FFs[0].Clock, d.FFs[0].Clock, 1, true)
	p.Offer(d.FFs[1].Output, 1000, d.FFs[1].Clock, d.FFs[1].Clock, 2, true)
	p.Run(d, true)

	dp := d.FFs[2].Data
	a := p.At(dp)
	if !a.Valid || a.Time != 1120 || a.Group != 1 {
		t.Fatalf("A(dp) = %+v, want time 1120 group 1", a)
	}
	fb := p.Auto(dp, 1)
	if !fb.Valid || fb.Time != 1070 || fb.Group != 2 {
		t.Fatalf("Auto(dp, 1) = %+v, want time 1070 group 2", fb)
	}
	if got := p.Auto(dp, 2); got.Time != 1120 {
		t.Fatalf("Auto(dp, 2) = %+v, want A", got)
	}
}

func TestRunHoldPrefersEarliest(t *testing.T) {
	b := model.NewBuilder("hold", model.Ns(10))
	clk := b.AddClockRoot("clk")
	ff1 := b.AddFF("ff1", 1, 1, model.Window{Early: 10, Late: 10})
	ff2 := b.AddFF("ff2", 1, 1, model.Window{Early: 10, Late: 10})
	ff3 := b.AddFF("ff3", 1, 1, model.Window{Early: 10, Late: 10})
	b.AddArc(clk, ff1.Clock, model.Window{Early: 1, Late: 2})
	b.AddArc(clk, ff2.Clock, model.Window{Early: 1, Late: 2})
	b.AddArc(clk, ff3.Clock, model.Window{Early: 1, Late: 2})
	g1 := b.AddComb("g1")
	b.AddArc(ff1.Q, g1, model.Window{Early: 100, Late: 100})
	b.AddArc(ff2.Q, g1, model.Window{Early: 50, Late: 50})
	b.AddArc(g1, ff3.D, model.Window{Early: 10, Late: 10})
	d := b.MustBuild()

	var p Prop
	p.Reset(d.NumPins())
	p.Offer(d.FFs[0].Output, 1000, d.FFs[0].Clock, d.FFs[0].Clock, 1, false)
	p.Offer(d.FFs[1].Output, 1000, d.FFs[1].Clock, d.FFs[1].Clock, 2, false)
	p.Run(d, false)
	a := p.At(d.FFs[2].Data)
	if a.Time != 1060 || a.Group != 2 {
		t.Fatalf("hold A = %+v, want time 1060 group 2", a)
	}
}

func TestResetClearsState(t *testing.T) {
	var p Prop
	p.Reset(4)
	p.Offer(2, 50, model.NoPin, model.NoPin, 1, true)
	p.Reset(4)
	if p.At(2).Valid {
		t.Fatal("Reset left stale tuple")
	}
	p.Reset(2) // shrink
	if len(p.a) != 2 {
		t.Fatalf("len(A) = %d, want 2", len(p.a))
	}
	p.Reset(8) // grow
	if len(p.a) != 8 || p.At(7).Valid {
		t.Fatal("grow failed")
	}
}

func TestTiesKeepFirstOffer(t *testing.T) {
	var p Prop
	p.Reset(1)
	p.Offer(0, 100, 5, 5, 1, true)
	p.Offer(0, 100, 6, 6, 2, true) // equal time, different group: must not displace A
	if a := p.At(0); a.From != 5 || a.Group != 1 {
		t.Fatalf("A = %+v, want from 5 group 1", a)
	}
	if b := p.Auto(0, 1); b.From != 6 {
		t.Fatalf("B = %+v, want from 6", b)
	}
}
