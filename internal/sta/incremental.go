package sta

import (
	"fmt"

	"fastcppr/model"
)

// Incr maintains graph-based arrival windows under arc-delay updates:
// the incremental-timing substrate (the TAU 2015 contest theme the paper
// targets with its incremental-friendly design). After each batch of
// SetArcDelay calls, Flush re-propagates only the affected fan-out cone
// in topological order, touching each affected pin once.
//
// Incr reads delays from the design's arc table; callers that mutate
// delays (cppr.Timer.SetArcDelay) notify Incr through SetArcDelay so the
// dirty cone is tracked.
type Incr struct {
	d   *model.Design
	gba *GBA
	// queued marks pins already in the worklist.
	queued []bool
	// wl is the dirty-cone worklist, ordered by the design's TopoIndex.
	wl frontier
	// piOf maps PinID -> index into d.PIArrival, or -1: recomputePin
	// runs once per dirty pin, so a linear scan of d.PIs there would put
	// an O(|PIs|) factor on every recomputation. Immutable after
	// construction and shared by CloneFor copies (clones see the same
	// pin table).
	piOf []int32
	// stats
	recomputed int
}

// NewIncr builds the incremental engine with a full initial propagation.
func NewIncr(d *model.Design) *Incr {
	piOf := make([]int32, d.NumPins())
	for i := range piOf {
		piOf[i] = -1
	}
	for i, p := range d.PIs {
		piOf[p] = int32(i)
	}
	return &Incr{
		d:      d,
		gba:    Propagate(d),
		queued: make([]bool, d.NumPins()),
		piOf:   piOf,
	}
}

// AT returns the current arrival windows. The returned GBA is live: it
// reflects updates after each Flush.
func (x *Incr) AT() *GBA { return x.gba }

// CloneFor returns an independent Incr that continues x's arrival state
// over design nd, which must be structurally identical to x's design
// (same pins, arcs and topological order — e.g. a Design.CloneWithArcs
// copy). The arrival windows are deep-copied; the recomputation counter
// carries over, so the clone reports cumulative incremental work across
// the whole snapshot chain. x must have no pending un-Flushed edits.
func (x *Incr) CloneFor(nd *model.Design) *Incr {
	return &Incr{
		d:          nd,
		gba:        x.gba.Clone(),
		queued:     make([]bool, nd.NumPins()),
		piOf:       x.piOf,
		recomputed: x.recomputed,
	}
}

// Recomputed returns the number of pin recomputations performed since
// the chain's initial full propagation (CloneFor copies carry the count
// forward) — the measure of incremental work saved versus repropagating
// each edit from scratch.
func (x *Incr) Recomputed() int { return x.recomputed }

// SetArcDelay updates the delay of arc ai in the underlying design and
// marks its sink dirty. The change takes effect on Flush.
func (x *Incr) SetArcDelay(ai int32, delay model.Window) error {
	if ai < 0 || int(ai) >= x.d.NumArcs() {
		return fmt.Errorf("sta: arc index %d out of range", ai)
	}
	if delay.Early < 0 || delay.Early > delay.Late {
		return fmt.Errorf("sta: invalid delay window %v", delay)
	}
	arc := &x.d.Arcs[ai]
	if arc.Delay == delay {
		return nil
	}
	arc.Delay = delay
	x.enqueue(arc.To)
	return nil
}

// Flush re-propagates the dirty cone and returns the number of pins
// whose arrival window changed.
func (x *Incr) Flush() int {
	changed := 0
	for !x.wl.empty() {
		v := x.d.Topo[x.wl.pop()]
		x.queued[v] = false
		x.recomputed++
		at, valid := x.recomputePin(v)
		if valid == x.gba.Valid[v] && (!valid || at == x.gba.AT[v]) {
			continue // no change; cone pruned here
		}
		x.gba.AT[v] = at
		x.gba.Valid[v] = valid
		changed++
		for _, ai := range x.d.FanOut(v) {
			x.enqueue(x.d.Arcs[ai].To)
		}
	}
	return changed
}

func (x *Incr) enqueue(v model.PinID) {
	if !x.queued[v] {
		x.queued[v] = true
		x.wl.push(x.d.TopoIndex[v])
	}
}

// recomputePin rebuilds v's window from its seeds and fan-in.
func (x *Incr) recomputePin(v model.PinID) (model.Window, bool) {
	var at model.Window
	valid := false
	// Seed contributions.
	if x.d.Pins[v].Kind == model.ClockRoot {
		at, valid = model.Window{}, true
	}
	if pi := x.piOf[v]; pi >= 0 {
		at, valid = x.d.PIArrival[pi], true
	}
	for _, ai := range x.d.FanIn(v) {
		arc := &x.d.Arcs[ai]
		if !x.gba.Valid[arc.From] {
			continue
		}
		w := x.gba.AT[arc.From]
		early := w.Early + arc.Delay.Early
		late := w.Late + arc.Delay.Late
		if !valid {
			at, valid = model.Window{Early: early, Late: late}, true
			continue
		}
		if early < at.Early {
			at.Early = early
		}
		if late > at.Late {
			at.Late = late
		}
	}
	return at, valid
}
