package sta

import (
	"container/heap"
	"fmt"

	"fastcppr/model"
)

// Incr maintains graph-based arrival windows under arc-delay updates:
// the incremental-timing substrate (the TAU 2015 contest theme the paper
// targets with its incremental-friendly design). After each batch of
// SetArcDelay calls, Flush re-propagates only the affected fan-out cone
// in topological order, touching each affected pin once.
//
// Incr reads delays from the design's arc table; callers that mutate
// delays (cppr.Timer.SetArcDelay) notify Incr through SetArcDelay so the
// dirty cone is tracked.
type Incr struct {
	d   *model.Design
	gba *GBA
	// topoIndex orders pins for the dirty-cone worklist.
	topoIndex []int32
	// queued marks pins already in the worklist.
	queued []bool
	wl     topoQueue
	// stats
	recomputed int
}

// NewIncr builds the incremental engine with a full initial propagation.
func NewIncr(d *model.Design) *Incr {
	x := &Incr{
		d:         d,
		gba:       Propagate(d),
		topoIndex: make([]int32, d.NumPins()),
		queued:    make([]bool, d.NumPins()),
	}
	for i, u := range d.Topo {
		x.topoIndex[u] = int32(i)
	}
	x.wl.idx = &x.topoIndex
	return x
}

// AT returns the current arrival windows. The returned GBA is live: it
// reflects updates after each Flush.
func (x *Incr) AT() *GBA { return x.gba }

// CloneFor returns an independent Incr that continues x's arrival state
// over design nd, which must be structurally identical to x's design
// (same pins, arcs and topological order — e.g. a Design.CloneWithArcs
// copy). The arrival windows are deep-copied; the topological index is
// shared read-only. x must have no pending un-Flushed edits.
func (x *Incr) CloneFor(nd *model.Design) *Incr {
	nx := &Incr{
		d:         nd,
		gba:       x.gba.Clone(),
		topoIndex: x.topoIndex,
		queued:    make([]bool, nd.NumPins()),
	}
	nx.wl.idx = &nx.topoIndex
	return nx
}

// Recomputed returns the number of pin recomputations performed since
// construction — the measure of incremental work saved versus full
// propagation.
func (x *Incr) Recomputed() int { return x.recomputed }

// SetArcDelay updates the delay of arc ai in the underlying design and
// marks its sink dirty. The change takes effect on Flush.
func (x *Incr) SetArcDelay(ai int32, delay model.Window) error {
	if ai < 0 || int(ai) >= x.d.NumArcs() {
		return fmt.Errorf("sta: arc index %d out of range", ai)
	}
	if delay.Early < 0 || delay.Early > delay.Late {
		return fmt.Errorf("sta: invalid delay window %v", delay)
	}
	arc := &x.d.Arcs[ai]
	if arc.Delay == delay {
		return nil
	}
	arc.Delay = delay
	x.enqueue(arc.To)
	return nil
}

// Flush re-propagates the dirty cone and returns the number of pins
// whose arrival window changed.
func (x *Incr) Flush() int {
	changed := 0
	for x.wl.Len() > 0 {
		v := heap.Pop(&x.wl).(model.PinID)
		x.queued[v] = false
		x.recomputed++
		at, valid := x.recomputePin(v)
		if valid == x.gba.Valid[v] && (!valid || at == x.gba.AT[v]) {
			continue // no change; cone pruned here
		}
		x.gba.AT[v] = at
		x.gba.Valid[v] = valid
		changed++
		for _, ai := range x.d.FanOut(v) {
			x.enqueue(x.d.Arcs[ai].To)
		}
	}
	return changed
}

func (x *Incr) enqueue(v model.PinID) {
	if !x.queued[v] {
		x.queued[v] = true
		heap.Push(&x.wl, v)
	}
}

// recomputePin rebuilds v's window from its seeds and fan-in.
func (x *Incr) recomputePin(v model.PinID) (model.Window, bool) {
	var at model.Window
	valid := false
	// Seed contributions.
	if x.d.Pins[v].Kind == model.ClockRoot {
		at, valid = model.Window{}, true
	}
	for i, p := range x.d.PIs {
		if p == v {
			at, valid = x.d.PIArrival[i], true
			break
		}
	}
	for _, ai := range x.d.FanIn(v) {
		arc := &x.d.Arcs[ai]
		if !x.gba.Valid[arc.From] {
			continue
		}
		w := x.gba.AT[arc.From]
		early := w.Early + arc.Delay.Early
		late := w.Late + arc.Delay.Late
		if !valid {
			at, valid = model.Window{Early: early, Late: late}, true
			continue
		}
		if early < at.Early {
			at.Early = early
		}
		if late > at.Late {
			at.Late = late
		}
	}
	return at, valid
}

// topoQueue is a min-heap of pins ordered by topological index, so the
// dirty cone is processed parents-first and each pin at most once per
// Flush.
type topoQueue struct {
	pins []model.PinID
	idx  *[]int32
}

func (q *topoQueue) Len() int { return len(q.pins) }
func (q *topoQueue) Less(i, j int) bool {
	return (*q.idx)[q.pins[i]] < (*q.idx)[q.pins[j]]
}
func (q *topoQueue) Swap(i, j int) { q.pins[i], q.pins[j] = q.pins[j], q.pins[i] }
func (q *topoQueue) Push(v any)    { q.pins = append(q.pins, v.(model.PinID)) }
func (q *topoQueue) Pop() any {
	v := q.pins[len(q.pins)-1]
	q.pins = q.pins[:len(q.pins)-1]
	return v
}
