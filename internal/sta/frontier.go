package sta

import "math/bits"

// frontier is a monotone worklist of topological indices: the structure
// shared by the sparse propagation kernel (Prop.RunSparse) and the
// incremental engine (Incr.Flush). Keys are positions in a design's Topo
// order, and popping minimum-first processes a dirty cone
// parents-before-children.
//
// It is a bitset with a word-skipping cursor rather than a heap. Both
// users obey the monotone-drain contract: keys pushed before the drain
// starts may be arbitrary, but every key pushed during the drain exceeds
// the last popped key (DAG edges only ever point forward in topological
// order). Under that contract the cursor never has to move backwards, so
// pop is amortized O(1) plus a 64-keys-per-word skip over dead regions —
// cheaper than a heap's O(log n) sift and 64x less memory traffic than
// the dense kernel's per-pin stamp scan. This matters because the
// frontier is the sparse kernel's entire overhead versus the dense one;
// a log-factor here was measured to cost more than the dense scan it
// replaces on small, well-connected designs.
//
// The zero value is an empty frontier; push grows the bitset on demand
// and the backing array is retained across drains.
type frontier struct {
	// words is the bitset: bit k of words[k/64] set means topological
	// index k is queued.
	words []uint64
	// cur is the lowest word index that may hold a set bit: the pop
	// cursor. push lowers it, pop advances it.
	cur int
	// count is the number of queued keys.
	count int
}

// reset empties the frontier, keeping the backing array for reuse. A
// fully drained frontier is already all-zero, so reset is O(1) on the
// common path; only an interrupted drain (cancellation) pays a clear.
func (f *frontier) reset() {
	if f.count > 0 {
		clear(f.words)
		f.count = 0
	}
	f.cur = len(f.words)
}

// empty reports whether the frontier holds no keys.
func (f *frontier) empty() bool { return f.count == 0 }

// len returns the number of queued keys.
func (f *frontier) len() int { return f.count }

// grow pre-sizes the bitset to hold nbits keys, so concurrent writers
// (RunSparseParallel's apply phase) can set word-exclusive bits without
// the append path's reallocation. push remains usable afterwards.
func (f *frontier) grow(nbits int) {
	need := (nbits + 63) >> 6
	if need <= len(f.words) {
		return
	}
	words := make([]uint64, need)
	copy(words, f.words)
	f.words = words
}

// push inserts topological index k, which must not currently be queued
// (Prop.touch and Incr.enqueue guarantee single insertion per drain).
func (f *frontier) push(k int32) {
	w := int(k >> 6)
	for w >= len(f.words) {
		f.words = append(f.words, 0)
	}
	f.words[w] |= 1 << (uint(k) & 63)
	if w < f.cur {
		f.cur = w
	}
	f.count++
}

// contains reports whether topological index k is currently queued.
func (f *frontier) contains(k int32) bool {
	w := int(k >> 6)
	return w < len(f.words) && f.words[w]&(1<<(uint(k)&63)) != 0
}

// pop removes and returns the minimum key. The frontier must not be
// empty. Correct only under the monotone-drain contract documented on
// the type: keys pushed since the last pop must all exceed it.
func (f *frontier) pop() int32 {
	w := f.cur
	for f.words[w] == 0 {
		w++
	}
	b := bits.TrailingZeros64(f.words[w])
	f.words[w] &^= 1 << uint(b)
	f.cur = w
	f.count--
	return int32(w<<6 | b)
}
