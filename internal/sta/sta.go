// Package sta implements the static timing analysis substrate: graph-based
// early/late arrival propagation, per-endpoint pre-CPPR slacks, and the
// tagged arrival-tuple propagation engine (the paper's Table II at/at'
// structure) on which both the CPPR core algorithm and the baseline timers
// are built.
package sta

import (
	"sync"

	"fastcppr/model"
)

// GBA holds graph-based (per-pin, path-merged) arrival windows: the
// classical early/late bounds of block-based STA. AT[u].Early is the
// minimum early arrival over all paths into u; AT[u].Late is the maximum
// late arrival. Valid[u] is false for pins with no timing source.
type GBA struct {
	AT    []model.Window
	Valid []bool
}

// Clone returns a deep copy of the arrival windows, detached from g.
func (g *GBA) Clone() *GBA {
	ng := &GBA{
		AT:    make([]model.Window, len(g.AT)),
		Valid: make([]bool, len(g.Valid)),
	}
	copy(ng.AT, g.AT)
	copy(ng.Valid, g.Valid)
	return ng
}

// Propagate computes graph-based arrival windows for every pin of d,
// seeding the clock root at time zero and primary inputs at their external
// arrival windows.
func Propagate(d *model.Design) *GBA {
	n := d.NumPins()
	g := &GBA{
		AT:    make([]model.Window, n),
		Valid: make([]bool, n),
	}
	for _, r := range d.Roots {
		g.Valid[r] = true
	}
	for i, p := range d.PIs {
		g.AT[p] = d.PIArrival[i]
		g.Valid[p] = true
	}
	for _, u := range d.Topo {
		if !g.Valid[u] {
			continue
		}
		at := g.AT[u]
		for _, ai := range d.FanOut(u) {
			a := &d.Arcs[ai]
			early := at.Early + a.Delay.Early
			late := at.Late + a.Delay.Late
			v := a.To
			if !g.Valid[v] {
				g.AT[v] = model.Window{Early: early, Late: late}
				g.Valid[v] = true
				continue
			}
			if early < g.AT[v].Early {
				g.AT[v].Early = early
			}
			if late > g.AT[v].Late {
				g.AT[v].Late = late
			}
		}
	}
	return g
}

// EndpointSlack holds the pre-CPPR worst slack of one FF's test endpoint.
type EndpointSlack struct {
	FF    model.FFID
	Slack model.Time
	Valid bool // false when no data path reaches the D pin
	// Corner is the delay corner the slack was computed at. For a
	// multi-corner merge (MergeWorstSlacks) it is the critical corner:
	// the corner whose slack is the per-test minimum.
	Corner model.Corner
}

// MergeWorstSlacks reduces per-corner endpoint-slack sweeps to the MCMM
// signoff summary: the pointwise minimum slack over the corners, with
// each test's critical corner recorded. All slices must be indexed
// identically (one entry per FF); corners[i] names the corner of
// byCorner[i]. An endpoint is valid in the merge when it is valid at
// any corner. Ties keep the earliest corner in the list, making the
// merge deterministic and independent of execution order.
func MergeWorstSlacks(corners []model.Corner, byCorner [][]EndpointSlack) []EndpointSlack {
	if len(byCorner) == 0 {
		return nil
	}
	out := make([]EndpointSlack, len(byCorner[0]))
	for i := range out {
		out[i] = byCorner[0][i]
		out[i].Corner = corners[0]
	}
	for ci := 1; ci < len(byCorner); ci++ {
		for i, sl := range byCorner[ci] {
			switch {
			case !sl.Valid:
			case !out[i].Valid || sl.Slack < out[i].Slack:
				out[i] = sl
				out[i].Corner = corners[ci]
			}
		}
	}
	return out
}

// EndpointSlacks computes graph-based pre-CPPR slacks at every FF D pin
// for the given mode. These are the "before CPPR" numbers a conventional
// timer reports, and the reference for the pessimism statistics in the
// examples.
func EndpointSlacks(d *model.Design, g *GBA, mode model.Mode) []EndpointSlack {
	out := make([]EndpointSlack, len(d.FFs))
	for i := range d.FFs {
		ff := &d.FFs[i]
		out[i].FF = model.FFID(i)
		if !g.Valid[ff.Data] || !g.Valid[ff.Clock] {
			continue
		}
		ck := g.AT[ff.Clock]
		dat := g.AT[ff.Data]
		out[i].Valid = true
		if mode == model.Setup {
			out[i].Slack = ck.Early + d.Period - ff.Setup - dat.Late
		} else {
			out[i].Slack = dat.Early - (ck.Late + ff.Hold)
		}
	}
	return out
}

// WorstSlack returns the minimum valid endpoint slack, or ok=false when no
// endpoint is constrained.
func WorstSlack(slacks []EndpointSlack) (model.Time, bool) {
	var worst model.Time
	found := false
	for _, s := range slacks {
		if !s.Valid {
			continue
		}
		if !found || s.Slack < worst {
			worst = s.Slack
			found = true
		}
	}
	return worst, found
}

// ---------------------------------------------------------------------------
// Tagged arrival-tuple propagation (the paper's Table II structure).

// NoGroup marks a tuple that carries no node-grouping tag (self-loop and
// primary-input searches, Algorithms 3 and 4).
const NoGroup int32 = -1

// Tuple is a tagged arrival: the best (latest for setup, earliest for
// hold) known arrival time at a pin, the predecessor pin it came from, the
// group tag of the path's origin, and the origin (seed) pin itself —
// the launching CK pin or primary input the tuple's path starts at.
type Tuple struct {
	Time   model.Time
	From   model.PinID
	Origin model.PinID
	Group  int32
	Valid  bool
}

// Prop is the dual arrival-tuple array: A[u] is at(u), the best tuple;
// B[u] is at'(u), the best tuple whose group differs from A[u]'s group.
// One Prop is scratch space for one candidate-generation job; jobs on
// different goroutines use separate Props.
type Prop struct {
	A, B []Tuple
}

// propPool recycles Prop scratch across queries: a propagation array pair
// is O(#pins) and every candidate-generation job needs one, so batch
// workloads would otherwise allocate (and fault in) tens of megabytes per
// query. Pooled Props may retain arrays sized for a previous design;
// Reset re-sizes on first use.
var propPool = sync.Pool{New: func() any { return new(Prop) }}

// GetProp returns a pooled Prop. The caller must Reset it before use and
// should hand it back with PutProp when the job completes.
func GetProp() *Prop { return propPool.Get().(*Prop) }

// PutProp recycles p. The caller must not touch p afterwards.
func PutProp(p *Prop) {
	if p != nil {
		propPool.Put(p)
	}
}

// Reset prepares the arrays for a design with n pins, clearing previous
// state while reusing storage.
func (p *Prop) Reset(n int) {
	if cap(p.A) < n {
		p.A = make([]Tuple, n)
		p.B = make([]Tuple, n)
	}
	p.A = p.A[:n]
	p.B = p.B[:n]
	clearTuples(p.A)
	clearTuples(p.B)
}

func clearTuples(ts []Tuple) {
	for i := range ts {
		ts[i] = Tuple{}
	}
}

// better reports whether time a beats time b under the mode: larger
// arrivals are more critical for setup, smaller for hold. Strict, so the
// first-offered tuple wins ties, keeping reconstruction deterministic.
func better(setup bool, a, b model.Time) bool {
	if setup {
		return a > b
	}
	return a < b
}

// Offer presents a candidate arrival tuple at pin v, maintaining the
// invariants: A[v] is the best tuple seen; B[v] is the best tuple whose
// group differs from A[v].Group; B is never better than A.
func (p *Prop) Offer(v model.PinID, t model.Time, from, origin model.PinID, group int32, setup bool) {
	a := &p.A[v]
	if !a.Valid {
		*a = Tuple{Time: t, From: from, Origin: origin, Group: group, Valid: true}
		return
	}
	if group == a.Group {
		if better(setup, t, a.Time) {
			a.Time, a.From, a.Origin = t, from, origin
		}
		return
	}
	if better(setup, t, a.Time) {
		p.B[v] = *a
		*a = Tuple{Time: t, From: from, Origin: origin, Group: group, Valid: true}
		return
	}
	b := &p.B[v]
	if !b.Valid || better(setup, t, b.Time) {
		*b = Tuple{Time: t, From: from, Origin: origin, Group: group, Valid: true}
	}
}

// Run propagates the seeded tuples through the graph in topological
// order, using late delays for setup and early delays for hold.
func (p *Prop) Run(d *model.Design, setup bool) {
	p.RunCtx(d, setup, nil)
}

// RunCtx is Run with cooperative cancellation: it checks done every few
// thousand topological positions and returns early once it is closed,
// bounding cancel latency on large designs. The tuple arrays are then
// partially propagated and must not be consulted — the caller abandons
// the query. A nil done never cancels.
func (p *Prop) RunCtx(d *model.Design, setup bool, done <-chan struct{}) {
	for ti, u := range d.Topo {
		if done != nil && ti&4095 == 0 {
			select {
			case <-done:
				return
			default:
			}
		}
		a := p.A[u]
		if !a.Valid {
			continue
		}
		b := p.B[u]
		for _, ai := range d.FanOut(u) {
			arc := &d.Arcs[ai]
			var delay model.Time
			if setup {
				delay = arc.Delay.Late
			} else {
				delay = arc.Delay.Early
			}
			p.Offer(arc.To, a.Time+delay, u, a.Origin, a.Group, setup)
			if b.Valid {
				p.Offer(arc.To, b.Time+delay, u, b.Origin, b.Group, setup)
			}
		}
	}
}

// Auto returns at_auto(u, gid): A[u] when its group differs from gid,
// otherwise the fallback B[u]. The returned tuple may be invalid
// (Valid=false) when no path from a different group reaches u.
func (p *Prop) Auto(u model.PinID, gid int32) Tuple {
	a := p.A[u]
	if !a.Valid || a.Group != gid {
		return a
	}
	return p.B[u]
}

// At returns at(u) ignoring grouping — the accessor used by the
// ungrouped searches (Algorithms 3 and 4), where at_auto(u, gid) is
// replaced by at(u).
func (p *Prop) At(u model.PinID) Tuple { return p.A[u] }
