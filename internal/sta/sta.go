// Package sta implements the static timing analysis substrate: graph-based
// early/late arrival propagation, per-endpoint pre-CPPR slacks, and the
// tagged arrival-tuple propagation engine (the paper's Table II at/at'
// structure) on which both the CPPR core algorithm and the baseline timers
// are built.
package sta

import (
	"sync"

	"fastcppr/model"
)

// GBA holds graph-based (per-pin, path-merged) arrival windows: the
// classical early/late bounds of block-based STA. AT[u].Early is the
// minimum early arrival over all paths into u; AT[u].Late is the maximum
// late arrival. Valid[u] is false for pins with no timing source.
type GBA struct {
	AT    []model.Window
	Valid []bool
}

// Clone returns a deep copy of the arrival windows, detached from g.
func (g *GBA) Clone() *GBA {
	ng := &GBA{
		AT:    make([]model.Window, len(g.AT)),
		Valid: make([]bool, len(g.Valid)),
	}
	copy(ng.AT, g.AT)
	copy(ng.Valid, g.Valid)
	return ng
}

// Propagate computes graph-based arrival windows for every pin of d,
// seeding the clock root at time zero and primary inputs at their external
// arrival windows.
func Propagate(d *model.Design) *GBA {
	n := d.NumPins()
	g := &GBA{
		AT:    make([]model.Window, n),
		Valid: make([]bool, n),
	}
	for _, r := range d.Roots {
		g.Valid[r] = true
	}
	for i, p := range d.PIs {
		g.AT[p] = d.PIArrival[i]
		g.Valid[p] = true
	}
	for _, u := range d.Topo {
		if !g.Valid[u] {
			continue
		}
		at := g.AT[u]
		for _, ai := range d.FanOut(u) {
			a := &d.Arcs[ai]
			early := at.Early + a.Delay.Early
			late := at.Late + a.Delay.Late
			v := a.To
			if !g.Valid[v] {
				g.AT[v] = model.Window{Early: early, Late: late}
				g.Valid[v] = true
				continue
			}
			if early < g.AT[v].Early {
				g.AT[v].Early = early
			}
			if late > g.AT[v].Late {
				g.AT[v].Late = late
			}
		}
	}
	return g
}

// EndpointSlack holds the pre-CPPR worst slack of one FF's test endpoint.
type EndpointSlack struct {
	FF    model.FFID
	Slack model.Time
	Valid bool // false when no data path reaches the D pin
	// Corner is the delay corner the slack was computed at. For a
	// multi-corner merge (MergeWorstSlacks) it is the critical corner:
	// the corner whose slack is the per-test minimum.
	Corner model.Corner
}

// MergeWorstSlacks reduces per-corner endpoint-slack sweeps to the MCMM
// signoff summary: the pointwise minimum slack over the corners, with
// each test's critical corner recorded. All slices must be indexed
// identically (one entry per FF); corners[i] names the corner of
// byCorner[i]. An endpoint is valid in the merge when it is valid at
// any corner. Ties keep the earliest corner in the list, making the
// merge deterministic and independent of execution order.
func MergeWorstSlacks(corners []model.Corner, byCorner [][]EndpointSlack) []EndpointSlack {
	if len(byCorner) == 0 {
		return nil
	}
	out := make([]EndpointSlack, len(byCorner[0]))
	for i := range out {
		out[i] = byCorner[0][i]
		out[i].Corner = corners[0]
	}
	for ci := 1; ci < len(byCorner); ci++ {
		for i, sl := range byCorner[ci] {
			switch {
			case !sl.Valid:
			case !out[i].Valid || sl.Slack < out[i].Slack:
				out[i] = sl
				out[i].Corner = corners[ci]
			}
		}
	}
	return out
}

// EndpointSlacks computes graph-based pre-CPPR slacks at every FF D pin
// for the given mode. These are the "before CPPR" numbers a conventional
// timer reports, and the reference for the pessimism statistics in the
// examples.
func EndpointSlacks(d *model.Design, g *GBA, mode model.Mode) []EndpointSlack {
	out := make([]EndpointSlack, len(d.FFs))
	for i := range d.FFs {
		ff := &d.FFs[i]
		out[i].FF = model.FFID(i)
		if !g.Valid[ff.Data] || !g.Valid[ff.Clock] {
			continue
		}
		ck := g.AT[ff.Clock]
		dat := g.AT[ff.Data]
		out[i].Valid = true
		if mode == model.Setup {
			out[i].Slack = ck.Early + d.Period - ff.Setup - dat.Late
		} else {
			out[i].Slack = dat.Early - (ck.Late + ff.Hold)
		}
		// Clock uncertainty tightens every FF-capture check of the mode.
		out[i].Slack -= d.Uncertainty[mode]
	}
	return out
}

// WorstSlack returns the minimum valid endpoint slack, or ok=false when no
// endpoint is constrained.
func WorstSlack(slacks []EndpointSlack) (model.Time, bool) {
	var worst model.Time
	found := false
	for _, s := range slacks {
		if !s.Valid {
			continue
		}
		if !found || s.Slack < worst {
			worst = s.Slack
			found = true
		}
	}
	return worst, found
}

// ---------------------------------------------------------------------------
// Tagged arrival-tuple propagation (the paper's Table II structure).

// NoGroup marks a tuple that carries no node-grouping tag (self-loop and
// primary-input searches, Algorithms 3 and 4).
const NoGroup int32 = -1

// Tuple is a tagged arrival: the best (latest for setup, earliest for
// hold) known arrival time at a pin, the predecessor pin it came from, the
// group tag of the path's origin, and the origin (seed) pin itself —
// the launching CK pin or primary input the tuple's path starts at.
type Tuple struct {
	Time   model.Time
	From   model.PinID
	Origin model.PinID
	Group  int32
	Valid  bool
}

// propSlot is one pin's propagation state under the sparse kernel: the
// epoch stamp and both tuples packed into a single 64-byte cache line.
// The hot operation of either kernel is offering a tuple to a sink pin
// whose address is effectively random (arc targets); the reference
// kernel's parallel arrays touch three cache lines per offer (stamp,
// at, at'), this layout touches one. That constant matters more than
// any asymptotic term on designs whose active cone approaches the whole
// data network.
type propSlot struct {
	// stamp == the Prop's epoch marks a/b live; any other value means
	// both are logically zero.
	stamp uint64
	a, b  Tuple
	_     [64 - 8 - 2*24]byte // pad to a full cache line
}

// Prop is the dual arrival-tuple store: at(u), the best tuple at pin u,
// and at'(u), the best tuple whose group differs from at(u)'s group.
// One Prop is scratch space for one candidate-generation job; jobs on
// different goroutines use separate Props.
//
// The store is epoch-versioned: a slot is live only while its stamp
// equals the current epoch, so Reset is an O(1) epoch bump with lazy
// invalidation on read — no per-job O(#pins) clear.
//
// Prop carries two representations, one per kernel:
//
//   - Reset arms the dense reference kernel (Run/RunCtx): parallel
//     a/b/stamp arrays scanned over the full topological order. This is
//     the layout and loop structure the sparse kernel replaced, kept as
//     the byte-identical reference for differential verification
//     (Options/Query DenseKernel) and as the natural kernel for the
//     baselines, which seed every FF anyway.
//   - ResetFor arms the sparse frontier kernel (RunSparse): cache-line
//     slots plus a worklist of live pins' topological indices, so one
//     run costs O(active cone), not Θ(#pins + #arcs).
//
// Only the armed representation's storage is grown; the other is left
// untouched.
type Prop struct {
	// Dense (reference) representation.
	a, b  []Tuple
	stamp []uint64
	epoch uint64

	// Sparse representation, armed by ResetFor: the slot array, the
	// bound design's topological order and its inverse, and the
	// worklist of live pins' topological indices that Offer feeds and
	// RunSparse drains.
	slots     []propSlot
	topo      []model.PinID
	topoIndex []int32
	fr        frontier
	// sparse selects which representation Offer/At/Auto address.
	sparse bool

	// par is RunSparseParallel's reusable hand-off scratch (see
	// parallel.go); lazily allocated, retained across runs.
	par *parScratch

	// inbuf is PatchSparse's reusable in-arc sort scratch (patch.go).
	inbuf []int32
}

// propPool recycles Prop scratch across queries: a propagation array pair
// is O(#pins) and every candidate-generation job needs one, so batch
// workloads would otherwise allocate (and fault in) tens of megabytes per
// query. Pooled Props may retain arrays sized for a previous design;
// Reset re-sizes on first use.
var propPool = sync.Pool{New: func() any { return new(Prop) }}

// propRetainPins bounds the arrays a pooled Prop may retain: PutProp
// drops buffers sized beyond this high-water cap, so one query against a
// giant design does not pin tens of megabytes per pooled Prop for the
// life of the process. A variable, not a constant, so the eviction path
// is testable without building a cap-sized design.
var propRetainPins = 4 << 20

// GetProp returns a pooled Prop. The caller must Reset (or ResetFor) it
// before use and should hand it back with PutProp when the job completes.
func GetProp() *Prop { return propPool.Get().(*Prop) }

// PutProp recycles p. The caller must not touch p afterwards. Oversized
// buffers (beyond propRetainPins) are dropped rather than retained, and
// the design binding is cleared so a pooled Prop never pins a design's
// topological tables.
func PutProp(p *Prop) {
	if p == nil {
		return
	}
	if cap(p.a) > propRetainPins || cap(p.slots) > propRetainPins {
		*p = Prop{}
	}
	p.topo, p.topoIndex = nil, nil
	p.sparse = false
	p.fr.reset()
	propPool.Put(p)
}

// Reset prepares the store for a design with n pins and arms the dense
// reference kernel, discarding previous state in O(1): the epoch
// advances, so every slot written under an older epoch reads as unset
// regardless of what the arrays still hold. Storage is reused; only
// growth allocates. Reset alone leaves the Prop unbound — only the dense
// Run/RunCtx kernel may follow. Use ResetFor to arm RunSparse.
func (p *Prop) Reset(n int) {
	p.epoch++
	p.fr.reset()
	p.topo, p.topoIndex = nil, nil
	p.sparse = false
	if cap(p.a) < n {
		p.a = make([]Tuple, n)
		p.b = make([]Tuple, n)
		p.stamp = make([]uint64, n)
	}
	p.a = p.a[:n]
	p.b = p.b[:n]
	p.stamp = p.stamp[:n]
}

// ResetFor prepares the store for design d and arms the sparse frontier
// kernel: subsequent Offer calls enqueue the touched pins and RunSparse
// drains only their fanout cone. Like Reset, an O(1) epoch bump.
func (p *Prop) ResetFor(d *model.Design) {
	n := d.NumPins()
	p.epoch++
	p.fr.reset()
	p.topo, p.topoIndex = d.Topo, d.TopoIndex
	p.sparse = true
	if cap(p.slots) < n {
		p.slots = make([]propSlot, n)
	}
	p.slots = p.slots[:n]
}

// Invalidate discards every tuple in O(1) by advancing the epoch. The
// cancellation paths of RunCtx and RunSparse call it so a partially
// propagated array physically cannot be consulted: every read after an
// early cancel sees unset tuples until the next Reset.
func (p *Prop) Invalidate() {
	p.epoch++
	p.fr.reset()
}

// touch transitions pin v's dense slots from stale to live, clearing
// them. Called exactly once per pin per epoch, from Offer's dense path.
func (p *Prop) touch(v model.PinID) {
	p.stamp[v] = p.epoch
	p.a[v] = Tuple{}
	p.b[v] = Tuple{}
}

// better reports whether time a beats time b under the mode: larger
// arrivals are more critical for setup, smaller for hold. Strict, so the
// first-offered tuple wins ties, keeping reconstruction deterministic.
func better(setup bool, a, b model.Time) bool {
	if setup {
		return a > b
	}
	return a < b
}

// Offer presents a candidate arrival tuple at pin v, maintaining the
// invariants: at(v) is the best tuple seen; at'(v) is the best tuple
// whose group differs from at(v)'s group; at' is never better than at.
// The first Offer to a pin in an epoch revives its slot and, under the
// sparse kernel, enqueues the pin on the frontier.
func (p *Prop) Offer(v model.PinID, t model.Time, from, origin model.PinID, group int32, setup bool) {
	if p.sparse {
		s := &p.slots[v]
		if s.stamp != p.epoch {
			s.stamp = p.epoch
			s.a = Tuple{Time: t, From: from, Origin: origin, Group: group, Valid: true}
			s.b = Tuple{}
			p.fr.push(p.topoIndex[v])
			return
		}
		p.offerSlot(s, t, from, origin, group, setup)
		return
	}
	if p.stamp[v] != p.epoch {
		p.touch(v)
	}
	a := &p.a[v]
	if !a.Valid {
		*a = Tuple{Time: t, From: from, Origin: origin, Group: group, Valid: true}
		return
	}
	if group == a.Group {
		if better(setup, t, a.Time) {
			a.Time, a.From, a.Origin = t, from, origin
		}
		return
	}
	if better(setup, t, a.Time) {
		p.b[v] = *a
		*a = Tuple{Time: t, From: from, Origin: origin, Group: group, Valid: true}
		return
	}
	b := &p.b[v]
	if !b.Valid || better(setup, t, b.Time) {
		*b = Tuple{Time: t, From: from, Origin: origin, Group: group, Valid: true}
	}
}

// offerSlot is Offer against an already-live sparse slot: identical
// invariant maintenance, one cache line.
func (p *Prop) offerSlot(s *propSlot, t model.Time, from, origin model.PinID, group int32, setup bool) {
	a := &s.a
	if group == a.Group {
		if better(setup, t, a.Time) {
			a.Time, a.From, a.Origin = t, from, origin
		}
		return
	}
	if better(setup, t, a.Time) {
		s.b = *a
		*a = Tuple{Time: t, From: from, Origin: origin, Group: group, Valid: true}
		return
	}
	b := &s.b
	if !b.Valid || better(setup, t, b.Time) {
		*b = Tuple{Time: t, From: from, Origin: origin, Group: group, Valid: true}
	}
}

// Run propagates the seeded tuples through the graph in topological
// order, using late delays for setup and early delays for hold.
func (p *Prop) Run(d *model.Design, setup bool) {
	p.RunCtx(d, setup, nil)
}

// RunCtx is Run with cooperative cancellation: it checks done every few
// thousand topological positions and returns early once it is closed,
// bounding cancel latency on large designs. Early cancel Invalidates the
// arrays, so a partially propagated state physically cannot be consulted
// — every read until the next Reset returns unset tuples. A nil done
// never cancels.
//
// RunCtx is the dense kernel: it walks the entire topological order,
// Θ(#pins + #arcs) regardless of how few pins hold tuples. Sparse-seeded
// jobs should use ResetFor + RunSparse; RunCtx is kept for full-graph
// propagations (the baselines seed every FF) and as the reference kernel
// the differential battery compares RunSparse against.
func (p *Prop) RunCtx(d *model.Design, setup bool, done <-chan struct{}) {
	if p.sparse {
		panic("sta: RunCtx on a Prop prepared with ResetFor; use RunSparse")
	}
	for ti, u := range d.Topo {
		if done != nil && ti&4095 == 0 {
			select {
			case <-done:
				p.Invalidate()
				return
			default:
			}
		}
		if p.stamp[u] != p.epoch {
			continue
		}
		a := p.a[u]
		if !a.Valid {
			continue
		}
		b := p.b[u]
		p.relax(d, u, a, b, setup)
	}
}

// RunSparse propagates the seeded tuples by draining the frontier in
// topological-index order: only pins actually holding tuples are visited,
// so one run costs O(cone vertices + cone edges) instead of the dense
// kernel's Θ(#pins + #arcs), and each sink offer touches one cache line
// (the pin's propSlot) instead of the dense layout's three. The Prop must
// have been prepared with ResetFor (which binds the design's topological
// order); seeding Offers enqueue the seeds, and relaxation enqueues each
// newly reached pin exactly once.
//
// Popping minimum topological index first guarantees every pin is
// processed after all of its in-cone predecessors, so the offer sequence
// into any pin is exactly the dense kernel's restricted to live pins —
// RunSparse and RunCtx produce identical tuples, bit for bit, including
// tie-breaks. Early cancel Invalidates the arrays like RunCtx.
func (p *Prop) RunSparse(d *model.Design, setup bool, done <-chan struct{}) {
	if !p.sparse {
		panic("sta: RunSparse on a Prop not prepared with ResetFor")
	}
	steps := 0
	for !p.fr.empty() {
		if done != nil && steps&1023 == 0 {
			select {
			case <-done:
				p.Invalidate()
				return
			default:
			}
		}
		steps++
		u := p.topo[p.fr.pop()]
		s := &p.slots[u] // live: only touched pins enter the frontier
		// relaxSparse first-touches sinks in one pass (equivalent to two
		// Offers because at' is never better than at and their groups
		// always differ) and offerSlots the rest.
		p.relaxSparse(d, u, s.a, s.b, setup)
	}
}

// relax offers u's tuples along its fanout arcs: the shared inner step of
// both kernels.
func (p *Prop) relax(d *model.Design, u model.PinID, a, b Tuple, setup bool) {
	for _, ai := range d.FanOut(u) {
		arc := &d.Arcs[ai]
		var delay model.Time
		if setup {
			delay = arc.Delay.Late
		} else {
			delay = arc.Delay.Early
		}
		p.Offer(arc.To, a.Time+delay, u, a.Origin, a.Group, setup)
		if b.Valid {
			p.Offer(arc.To, b.Time+delay, u, b.Origin, b.Group, setup)
		}
	}
}

// Auto returns at_auto(u, gid): at(u) when its group differs from gid,
// otherwise the fallback at'(u). The returned tuple may be invalid
// (Valid=false) when no path from a different group reaches u.
func (p *Prop) Auto(u model.PinID, gid int32) Tuple {
	if p.sparse {
		s := &p.slots[u]
		if s.stamp != p.epoch {
			return Tuple{}
		}
		if a := s.a; !a.Valid || a.Group != gid {
			return a
		}
		return s.b
	}
	if p.stamp[u] != p.epoch {
		return Tuple{}
	}
	a := p.a[u]
	if !a.Valid || a.Group != gid {
		return a
	}
	return p.b[u]
}

// At returns at(u) ignoring grouping — the accessor used by the
// ungrouped searches (Algorithms 3 and 4), where at_auto(u, gid) is
// replaced by at(u).
func (p *Prop) At(u model.PinID) Tuple {
	if p.sparse {
		s := &p.slots[u]
		if s.stamp != p.epoch {
			return Tuple{}
		}
		return s.a
	}
	if p.stamp[u] != p.epoch {
		return Tuple{}
	}
	return p.a[u]
}
