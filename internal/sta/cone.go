package sta

import "fastcppr/model"

// ForwardCone adds to set every pin forward-reachable from seeds
// (including the seeds themselves): the footprint a propagation seeded
// at those pins can touch. It reuses the sparse kernel's frontier
// worklist, draining in topological-index order so each pin's fanout is
// expanded exactly once — O(cone vertices + cone edges), independent of
// design size.
//
// This is the cone-tagging primitive of the incremental query path: a
// candidate-generation job's output can depend on an arc's delay only if
// the arc's source pin lies in the cone of the job's seeds, so caches
// tagged with ForwardCone sets are invalidated exactly by the edits that
// can reach them. set must have capacity d.NumPins(); it is OR-extended,
// not reset, so callers can union multiple seed classes into one cone.
func ForwardCone(d *model.Design, seeds []model.PinID, set *model.PinSet) {
	var fr frontier
	for _, p := range seeds {
		if !set.Contains(p) {
			set.Add(p)
			fr.push(d.TopoIndex[p])
		}
	}
	for !fr.empty() {
		u := d.Topo[fr.pop()]
		for _, ai := range d.FanOut(u) {
			v := d.Arcs[ai].To
			if !set.Contains(v) {
				set.Add(v)
				fr.push(d.TopoIndex[v])
			}
		}
	}
}
