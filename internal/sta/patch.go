package sta

import (
	"sort"

	"fastcppr/model"
)

// This file implements retained-propagation patching: given a completed
// sparse propagation and a small set of arc-delay edits, PatchSparse
// rewrites only the pins whose tuples can have changed — the forward
// cone of the edited arcs' sinks, truncated wherever a recomputed slot
// converges with its old value — instead of re-running the whole job.
//
// Soundness rests on the canonical offer order of a fresh run. RunSparse
// pops live pins in topological-index order, and a pin's slot is final
// when popped (all live predecessors popped earlier), so the final
// (at, at') pair at a live pin v is a pure fold of:
//
//  1. v's seed offer, if the job seeded v (seeds all land before the
//     drain starts), then
//  2. one offer per live in-arc, in ascending (topoIndex[from], arc
//     index) order — relax visits sources in pop order and a source's
//     fanout arcs in arc-index order, which model.Design's CSR stores
//     ascending.
//
// PatchSparse re-evaluates exactly that fold at each dirty pin, with the
// strict first-offer-wins tie-breaking of Offer/offerSlot, so the result
// is byte-identical to a fresh run on the edited design. Delay edits
// cannot change the live set (liveness is pure reachability from the
// seeds) and must not change the seeds themselves — the caller
// guarantees that by refusing to patch across clock-path, CK->Q, or
// constraint changes, which rebuild the snapshot instead.

// PropUndo records the slots PatchSparse overwrote so a borrowed
// retained propagation can be restored after a speculative (forked)
// query. Each dirty pin is saved exactly once per patch.
type PropUndo struct {
	pins  []model.PinID
	slots []propSlot
}

// Len returns the number of saved slots (dirty pins of the last patch).
func (u *PropUndo) Len() int { return len(u.pins) }

// Reset empties the log, retaining capacity.
func (u *PropUndo) Reset() {
	u.pins = u.pins[:0]
	u.slots = u.slots[:0]
}

func (u *PropUndo) save(v model.PinID, s propSlot) {
	u.pins = append(u.pins, v)
	u.slots = append(u.slots, s)
}

// CloneSparse returns an independent copy of a completed sparse
// propagation, sharing only the design's immutable topological tables.
// The clone is detached from the scratch pool: it is meant to be
// retained across queries and patched in place.
func (p *Prop) CloneSparse() *Prop {
	if !p.sparse {
		return nil
	}
	q := &Prop{
		epoch:     p.epoch,
		topo:      p.topo,
		topoIndex: p.topoIndex,
		sparse:    true,
	}
	q.slots = append([]propSlot(nil), p.slots...)
	return q
}

// Unpatch restores every slot saved in u, returning the propagation to
// its pre-patch state, and resets the log.
func (p *Prop) Unpatch(u *PropUndo) {
	for i, v := range u.pins {
		p.slots[v] = u.slots[i]
	}
	u.Reset()
}

// PatchSparse rewrites the propagation in place so it matches a fresh
// run of the same job on d, where d differs from the design the
// propagation was computed against only in the delays of the arcs named
// by arcs (indices into d.Arcs). seed reports the tuple the job would
// offer at a pin before propagation (ok=false when the job does not seed
// it); it must describe the same seed values the retained run used —
// the caller enforces that by never patching across edits that move
// clock arrivals or constraints. When undo is non-nil, every overwritten
// slot is recorded for Unpatch.
//
// Cost is O(dirty cone): the worklist starts at the edited arcs' sinks
// and expands through fanout only past pins whose recomputed pair
// actually changed.
func (p *Prop) PatchSparse(d *model.Design, setup bool, arcs []int32, seed func(model.PinID) (Tuple, bool), undo *PropUndo) {
	if !p.sparse {
		panic("sta: PatchSparse on a dense propagation")
	}
	// The frontier is drained (the retained run completed); reuse it as
	// the patch worklist. The monotone contract holds: every push during
	// the drain is a fanout sink, whose topological index exceeds the pin
	// being processed.
	fr := &p.fr
	fr.reset()
	for _, ai := range arcs {
		v := d.Arcs[ai].To
		if p.slots[v].stamp != p.epoch {
			continue // sink not live: delay edits cannot revive it
		}
		if ti := p.topoIndex[v]; !fr.contains(ti) {
			fr.push(ti)
		}
	}
	for !fr.empty() {
		v := p.topo[fr.pop()]
		s := &p.slots[v]
		old := *s
		na, nb := p.refold(d, v, setup, seed)
		if na == old.a && nb == old.b {
			continue // converged: downstream inputs are unchanged
		}
		if undo != nil {
			undo.save(v, old)
		}
		s.a, s.b = na, nb
		for _, oi := range d.FanOut(v) {
			w := d.Arcs[oi].To
			if p.slots[w].stamp != p.epoch {
				continue
			}
			if wi := p.topoIndex[w]; !fr.contains(wi) {
				fr.push(wi)
			}
		}
	}
}

// refold recomputes live pin v's final (at, at') pair from its seed and
// its live in-sources' current slots, replaying the canonical offer
// order of a fresh run.
func (p *Prop) refold(d *model.Design, v model.PinID, setup bool, seed func(model.PinID) (Tuple, bool)) (Tuple, Tuple) {
	var a, b Tuple
	offer := func(t Tuple) {
		if !a.Valid {
			a = t
			return
		}
		if t.Group == a.Group {
			if better(setup, t.Time, a.Time) {
				a.Time, a.From, a.Origin = t.Time, t.From, t.Origin
			}
			return
		}
		if better(setup, t.Time, a.Time) {
			b = a
			a = t
			return
		}
		if !b.Valid || better(setup, t.Time, b.Time) {
			b = t
		}
	}
	if t, ok := seed(v); ok {
		offer(t)
	}
	in := d.FanIn(v)
	// Replay in ascending (topoIndex[from], arc index) order. FanIn is
	// already ascending by arc index; a stable sort by source topological
	// index therefore yields exactly the canonical order.
	if len(in) > 1 && !sort.SliceIsSorted(in, func(x, y int) bool {
		return p.topoIndex[d.Arcs[in[x]].From] < p.topoIndex[d.Arcs[in[y]].From]
	}) {
		in = append(p.inbuf[:0], in...)
		sort.SliceStable(in, func(x, y int) bool {
			return p.topoIndex[d.Arcs[in[x]].From] < p.topoIndex[d.Arcs[in[y]].From]
		})
		p.inbuf = in
	}
	for _, ai := range in {
		arc := &d.Arcs[ai]
		su := &p.slots[arc.From]
		if su.stamp != p.epoch {
			continue
		}
		var delay model.Time
		if setup {
			delay = arc.Delay.Late
		} else {
			delay = arc.Delay.Early
		}
		offer(Tuple{Time: su.a.Time + delay, From: arc.From, Origin: su.a.Origin, Group: su.a.Group, Valid: true})
		if su.b.Valid {
			offer(Tuple{Time: su.b.Time + delay, From: arc.From, Origin: su.b.Origin, Group: su.b.Group, Valid: true})
		}
	}
	return a, b
}
