package sta

import (
	"math/rand"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// runParallel runs ops through RunSparseParallel at the given thread
// count and grain, returning the Prop for comparison.
func runParallel(d *model.Design, ops []seedOp, setup bool, threads, grain int) *Prop {
	old := sparseParGrain
	sparseParGrain = grain
	defer func() { sparseParGrain = old }()
	p := new(Prop)
	p.ResetFor(d)
	applySeeds(p, ops, setup)
	p.RunSparseParallel(d, setup, nil, threads)
	return p
}

// TestRunSparseParallelMatchesSerial: for any design, seed set, mode and
// thread count, the partitioned kernel produces bit-identical tuples to
// the serial sparse kernel (and therefore to the dense reference). The
// grain is forced to 1 so even tiny test designs exercise the buffered
// hand-off path rather than falling back to the serial inner loop.
func TestRunSparseParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		rng := rand.New(rand.NewSource(seed*13 + 1))
		for rep := 0; rep < 4; rep++ {
			ops := randomSeeds(d, rng)
			for _, setup := range []bool{true, false} {
				var serial Prop
				serial.ResetFor(d)
				applySeeds(&serial, ops, setup)
				serial.RunSparse(d, setup, nil)
				for _, threads := range []int{2, 3, 8} {
					par := runParallel(d, ops, setup, threads, 1)
					requireKernelsEqual(t, d, &serial, par)
				}
			}
		}
	}
	// Mid-size design with real reconvergence, both the forced-parallel
	// grain and the production grain (which mixes serial and parallel
	// blocks in one run).
	d := gen.MustGenerate(gen.Medium(3))
	rng := rand.New(rand.NewSource(41))
	for rep := 0; rep < 3; rep++ {
		ops := randomSeeds(d, rng)
		var serial Prop
		serial.ResetFor(d)
		applySeeds(&serial, ops, true)
		serial.RunSparse(d, true, nil)
		for _, grain := range []int{1, 64, sparseParGrain} {
			for _, threads := range []int{2, 8} {
				par := runParallel(d, ops, true, threads, grain)
				requireKernelsEqual(t, d, &serial, par)
			}
		}
	}
}

// TestRunSparseParallelReusedProp: one Prop reused across epochs and
// thread counts stays exact — the production pattern once the engine
// pools Props across parallel queries.
func TestRunSparseParallelReusedProp(t *testing.T) {
	old := sparseParGrain
	sparseParGrain = 1
	defer func() { sparseParGrain = old }()

	d := gen.MustGenerate(gen.Medium(5))
	rng := rand.New(rand.NewSource(17))
	var par Prop
	for rep := 0; rep < 6; rep++ {
		ops := randomSeeds(d, rng)
		setup := rep%2 == 0
		threads := 2 + rep%7

		var serial Prop
		serial.ResetFor(d)
		applySeeds(&serial, ops, setup)
		serial.RunSparse(d, setup, nil)

		par.ResetFor(d)
		applySeeds(&par, ops, setup)
		par.RunSparseParallel(d, setup, nil, threads)

		requireKernelsEqual(t, d, &serial, &par)
	}
}

// TestRunSparseParallelCancelInvalidates: early cancel leaves the arrays
// unreadable, exactly like the serial kernels.
func TestRunSparseParallelCancelInvalidates(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(2))
	done := make(chan struct{})
	close(done)
	var p Prop
	p.ResetFor(d)
	for i := range d.FFs {
		ff := &d.FFs[i]
		p.Offer(ff.Output, model.Time(100+i), ff.Clock, ff.Clock, int32(i%3), true)
	}
	p.RunSparseParallel(d, true, done, 4)
	for u := 0; u < d.NumPins(); u++ {
		if p.At(model.PinID(u)).Valid {
			t.Fatalf("At(%s) readable after canceled parallel run", d.PinName(model.PinID(u)))
		}
	}
}

// TestRunSparseParallelSingleThreadDelegates: threads < 2 must take the
// serial path byte-for-byte (it IS RunSparse).
func TestRunSparseParallelSingleThreadDelegates(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(2))
	rng := rand.New(rand.NewSource(3))
	ops := randomSeeds(d, rng)

	var serial, par Prop
	serial.ResetFor(d)
	applySeeds(&serial, ops, true)
	serial.RunSparse(d, true, nil)
	par.ResetFor(d)
	applySeeds(&par, ops, true)
	par.RunSparseParallel(d, true, nil, 1)
	requireKernelsEqual(t, d, &serial, &par)
}

// TestRunSparseParallelPanicsWithoutResetFor mirrors the RunSparse
// arming contract.
func TestRunSparseParallelPanicsWithoutResetFor(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(0))
	var p Prop
	p.Reset(d.NumPins())
	defer func() {
		if recover() == nil {
			t.Fatal("RunSparseParallel on a dense-Reset Prop should panic")
		}
	}()
	p.RunSparseParallel(d, true, nil, 4)
}
