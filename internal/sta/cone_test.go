package sta

import (
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

func TestForwardConeMatchesBFS(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		d := gen.MustGenerate(gen.Medium(seed))
		// Seeds: every fourth FF's Q pin plus the first PI.
		var seeds []model.PinID
		for i := 0; i < len(d.FFs); i += 4 {
			seeds = append(seeds, d.FFs[i].Output)
		}
		if len(d.PIs) > 0 {
			seeds = append(seeds, d.PIs[0])
		}
		set := model.NewPinSet(d.NumPins())
		ForwardCone(d, seeds, set)

		// Reference: plain BFS over fanout arcs.
		ref := make([]bool, d.NumPins())
		queue := append([]model.PinID(nil), seeds...)
		for _, p := range seeds {
			ref[p] = true
		}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, ai := range d.FanOut(u) {
				if v := d.Arcs[ai].To; !ref[v] {
					ref[v] = true
					queue = append(queue, v)
				}
			}
		}
		want := 0
		for u := 0; u < d.NumPins(); u++ {
			if ref[u] {
				want++
			}
			if set.Contains(model.PinID(u)) != ref[u] {
				t.Fatalf("seed %d: pin %s membership %v, want %v",
					seed, d.PinName(model.PinID(u)), set.Contains(model.PinID(u)), ref[u])
			}
		}
		if set.Len() != want {
			t.Fatalf("seed %d: Len = %d, want %d", seed, set.Len(), want)
		}
	}
}

func TestForwardConeUnions(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(0))
	a := model.NewPinSet(d.NumPins())
	ForwardCone(d, []model.PinID{d.FFs[0].Output}, a)
	// A second call OR-extends rather than resetting.
	before := a.Len()
	ForwardCone(d, d.PIs, a)
	if a.Len() < before {
		t.Fatalf("union shrank: %d -> %d", before, a.Len())
	}
	if !a.Contains(d.FFs[0].Output) {
		t.Fatal("earlier seed class lost")
	}
}
