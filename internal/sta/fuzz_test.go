package sta

import (
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// FuzzIncrVsPropagate drives Incr with an edit stream decoded from fuzz
// data and checks, after every Flush, that the incrementally maintained
// arrival windows are identical to a from-scratch Propagate of the edited
// design — the same differential oracle as the seeded random tests in
// incremental_test.go, but with adversarial edit schedules: repeated
// edits to one arc, edits that revert to the original delay (the
// no-change pruning path), batches flushed together, and interleaved
// CloneFor handoffs (the snapshot-chain pattern cppr.Timer uses).
func FuzzIncrVsPropagate(f *testing.F) {
	// Seed corpus: single edit, a flushed batch, a revert, and a clone
	// handoff (op byte 3 forces CloneFor).
	f.Add([]byte{0, 0, 0, 5, 9})
	f.Add([]byte{1, 0, 3, 1, 2, 0, 7, 4, 4, 2, 1, 0, 0})
	f.Add([]byte{2, 0, 0, 10, 10, 0, 0, 0, 0, 3, 0, 1, 6, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		d := gen.MustGenerate(gen.SmallOracle(int64(data[0] % 4)))
		data = data[1:]
		x := NewIncr(d)
		dirty := false
		for i := 0; i+3 < len(data); i += 4 {
			op := data[i] % 4
			ai := int32(int(data[i+1])<<2|int(data[i]>>2)) % int32(d.NumArcs())
			early := model.Time(data[i+2] % 32)
			late := early + model.Time(data[i+3]%32)
			if err := x.SetArcDelay(ai, model.Window{Early: early, Late: late}); err != nil {
				t.Fatalf("SetArcDelay(%d): %v", ai, err)
			}
			dirty = true
			switch op {
			case 1, 2:
				x.Flush()
				dirty = false
				checkAgainstFull(t, d, x, "mid-stream flush")
			case 3:
				// Snapshot handoff: flush, then continue on a clone over a
				// copy-on-write design, as the timer does per edit.
				x.Flush()
				dirty = false
				nd := d.CloneWithArcs()
				x = x.CloneFor(nd)
				d = nd
				checkAgainstFull(t, d, x, "after CloneFor")
			}
		}
		if dirty {
			x.Flush()
		}
		checkAgainstFull(t, d, x, "final flush")

		// Error paths must reject without corrupting state.
		if err := x.SetArcDelay(int32(d.NumArcs()), model.Window{}); err == nil {
			t.Fatal("out-of-range arc accepted")
		}
		if err := x.SetArcDelay(0, model.Window{Early: 5, Late: 1}); err == nil {
			t.Fatal("inverted delay window accepted")
		}
		checkAgainstFull(t, d, x, "after rejected edits")
	})
}
