package sta

import (
	"math/bits"
	"sort"
	"sync"

	"fastcppr/model"
)

// sparseParGrain is the minimum live-pin count at which a barrier block
// is worth fanning out: below it the leader relaxes the block serially
// (the exact RunSparse inner loop), above it the block is split across
// workers. A variable so tests can force the parallel path on small
// designs.
var sparseParGrain = 512

// parOffer is one buffered arc relaxation: the sink pin and the already
// delay-shifted tuples to offer it. Buffering the finished tuples (not
// the source) keeps the apply phase a pure replay — no delay lookups, no
// ordering decisions.
type parOffer struct {
	to   model.PinID
	a, b Tuple
}

// parScratch holds RunSparseParallel's per-Prop reusable state: the
// per-(worker, owner) offer buffers, the drained live list of the block
// in flight, and the per-owner frontier bookkeeping the leader folds in
// at each barrier. Retained on the Prop so a pooled scratch never
// re-allocates across blocks or runs.
type parScratch struct {
	bufs    [][][]parOffer // bufs[worker][owner]: offers worker relaxed into owner's shard
	live    []int32        // topological indices of the block being drained
	added   []int          // per-owner count of pins first-touched in the apply phase
	minWord []int          // per-owner lowest frontier word written
}

// parPrep sizes the scratch for the given worker count.
func (p *Prop) parPrep(threads int) *parScratch {
	ps := p.par
	if ps == nil {
		ps = new(parScratch)
		p.par = ps
	}
	if len(ps.bufs) < threads {
		ps.bufs = make([][][]parOffer, threads)
		for i := range ps.bufs {
			ps.bufs[i] = make([][]parOffer, threads)
		}
		ps.added = make([]int, threads)
		ps.minWord = make([]int, threads)
	}
	return ps
}

// RunSparseParallel is RunSparse partitioned across threads: the frontier
// is drained one barrier block (model.Design.TopoBlocks) at a time, and
// because no arc connects two pins of a block, the block's live pins can
// be relaxed concurrently. Each block runs in two phases:
//
//   - relax: workers take contiguous ascending segments of the block's
//     live list and buffer every arc offer, already delay-shifted, into
//     a per-(worker, owner) hand-off buffer — no shared state is written.
//     The owner of a sink pin is fixed by its topological index's
//     frontier WORD ((index/64) mod workers), so ownership partitions
//     both the slot array and the frontier bitset word-exclusively.
//   - apply: each owner replays the buffers targeting its shard in
//     worker order. Workers hold ascending source segments, so the
//     concatenated replay order at any sink equals the ascending
//     source-topological-index order — exactly the offer order RunSparse
//     produces. With better() strict (first offer wins ties), the
//     resulting tuples are bit-identical to the serial kernel's for any
//     thread count.
//
// Blocks whose live population is below sparseParGrain are relaxed by
// the leader with the serial inner loop, so sparse cones (the common
// incremental case) pay no synchronization at all. Early cancel
// Invalidates the arrays like RunSparse; cancellation is checked at
// block barriers, so cancel latency is bounded by one block's relax
// work divided by the worker count.
func (p *Prop) RunSparseParallel(d *model.Design, setup bool, done <-chan struct{}, threads int) {
	if !p.sparse {
		panic("sta: RunSparseParallel on a Prop not prepared with ResetFor")
	}
	if threads < 2 {
		p.RunSparse(d, setup, done)
		return
	}
	ends := d.TopoBlocks()
	f := &p.fr
	f.grow(len(p.topo))
	ps := p.parPrep(threads)
	steps := 0
	for f.count > 0 {
		if done != nil && steps&15 == 0 {
			select {
			case <-done:
				p.Invalidate()
				return
			default:
			}
		}
		steps++

		// Locate the lowest queued index and the block containing it.
		w := f.cur
		for f.words[w] == 0 {
			w++
		}
		f.cur = w
		k := int32(w<<6) | int32(bits.TrailingZeros64(f.words[w]))
		b := sort.Search(len(ends), func(i int) bool { return ends[i] > k })
		end := ends[b]

		// Drain every queued index of the block into the live list,
		// consuming its bits. The word containing `end` may straddle the
		// block boundary; bits at indices >= end stay queued.
		live := ps.live[:0]
		for wi := w; wi<<6 < int(end); wi++ {
			word := f.words[wi]
			if word == 0 {
				continue
			}
			base := int32(wi << 6)
			if base+64 > end {
				keep := word & (^uint64(0) << uint(end-base))
				word &^= keep
				f.words[wi] = keep
			} else {
				f.words[wi] = 0
			}
			for word != 0 {
				bit := bits.TrailingZeros64(word)
				word &^= 1 << uint(bit)
				live = append(live, base+int32(bit))
			}
		}
		ps.live = live
		f.count -= len(live)
		f.cur = int(end-1) >> 6

		if len(live) < sparseParGrain {
			for _, ti := range live {
				u := p.topo[ti]
				s := &p.slots[u]
				p.relaxSparse(d, u, s.a, s.b, setup)
			}
			continue
		}

		// Phase 1 (relax): contiguous ascending segments, buffered offers.
		nw := threads
		if m := len(live) / 64; nw > m && m >= 2 {
			nw = m // keep >= 64 sources per worker
		}
		if nw > len(live) {
			nw = len(live) // tests force tiny grains; never run empty segments
		}
		if nw < 2 {
			for _, ti := range live {
				u := p.topo[ti]
				s := &p.slots[u]
				p.relaxSparse(d, u, s.a, s.b, setup)
			}
			continue
		}
		chunk := (len(live) + nw - 1) / nw
		var wg sync.WaitGroup
		for wkr := 1; wkr < nw; wkr++ {
			lo := wkr * chunk
			hi := lo + chunk
			if lo > len(live) {
				lo = len(live)
			}
			if hi > len(live) {
				hi = len(live)
			}
			wg.Add(1)
			go func(wkr, lo, hi int) {
				defer wg.Done()
				p.relaxSegment(d, live[lo:hi], ps.bufs[wkr], nw, setup)
			}(wkr, lo, hi)
		}
		p.relaxSegment(d, live[:chunk], ps.bufs[0], nw, setup)
		wg.Wait()

		// Phase 2 (apply): owners replay their shard's buffers in worker
		// order; slot and frontier-word writes are ownership-exclusive.
		for o := 1; o < nw; o++ {
			wg.Add(1)
			go func(o int) {
				defer wg.Done()
				p.applyOwner(ps, o, nw, setup)
			}(o)
		}
		p.applyOwner(ps, 0, nw, setup)
		wg.Wait()

		// Fold the owners' frontier bookkeeping back into the cursor.
		for o := 0; o < nw; o++ {
			f.count += ps.added[o]
			if mw := ps.minWord[o]; mw < f.cur {
				f.cur = mw
			}
		}
	}
}

// relaxSparse relaxes one live pin exactly like RunSparse's inner loop:
// first touch writes both tuples in one pass and enqueues the sink,
// otherwise the tuples go through offerSlot.
func (p *Prop) relaxSparse(d *model.Design, u model.PinID, a, b Tuple, setup bool) {
	for _, ai := range d.FanOut(u) {
		arc := &d.Arcs[ai]
		var delay model.Time
		if setup {
			delay = arc.Delay.Late
		} else {
			delay = arc.Delay.Early
		}
		v := arc.To
		sv := &p.slots[v]
		if sv.stamp != p.epoch {
			sv.stamp = p.epoch
			sv.a = Tuple{Time: a.Time + delay, From: u, Origin: a.Origin, Group: a.Group, Valid: true}
			if b.Valid {
				sv.b = Tuple{Time: b.Time + delay, From: u, Origin: b.Origin, Group: b.Group, Valid: true}
			} else {
				sv.b = Tuple{}
			}
			p.fr.push(p.topoIndex[v])
			continue
		}
		p.offerSlot(sv, a.Time+delay, u, a.Origin, a.Group, setup)
		if b.Valid {
			p.offerSlot(sv, b.Time+delay, u, b.Origin, b.Group, setup)
		}
	}
}

// relaxSegment relaxes a contiguous run of live topological indices,
// bucketing each arc's delay-shifted tuples into the sink owner's
// hand-off buffer. Reads slots and the design only; writes nothing
// shared.
func (p *Prop) relaxSegment(d *model.Design, seg []int32, out [][]parOffer, nw int, setup bool) {
	for o := 0; o < nw; o++ {
		out[o] = out[o][:0]
	}
	for _, ti := range seg {
		u := p.topo[ti]
		s := &p.slots[u]
		a, b := s.a, s.b
		for _, ai := range d.FanOut(u) {
			arc := &d.Arcs[ai]
			var delay model.Time
			if setup {
				delay = arc.Delay.Late
			} else {
				delay = arc.Delay.Early
			}
			v := arc.To
			o := int(p.topoIndex[v]>>6) % nw
			e := parOffer{to: v, a: Tuple{Time: a.Time + delay, From: u, Origin: a.Origin, Group: a.Group, Valid: true}}
			if b.Valid {
				e.b = Tuple{Time: b.Time + delay, From: u, Origin: b.Origin, Group: b.Group, Valid: true}
			}
			out[o] = append(out[o], e)
		}
	}
}

// applyOwner replays every buffered offer targeting owner o's shard, in
// worker order, recording how many pins it first-touched and the lowest
// frontier word it wrote for the leader to fold in at the barrier.
func (p *Prop) applyOwner(ps *parScratch, o, nw int, setup bool) {
	added := 0
	minWord := len(p.fr.words)
	for w := 0; w < nw; w++ {
		buf := ps.bufs[w][o]
		for i := range buf {
			e := &buf[i]
			sv := &p.slots[e.to]
			if sv.stamp != p.epoch {
				sv.stamp = p.epoch
				sv.a = e.a
				sv.b = e.b
				ti := p.topoIndex[e.to]
				wi := int(ti >> 6)
				p.fr.words[wi] |= 1 << (uint(ti) & 63)
				if wi < minWord {
					minWord = wi
				}
				added++
				continue
			}
			p.offerSlot(sv, e.a.Time, e.a.From, e.a.Origin, e.a.Group, setup)
			if e.b.Valid {
				p.offerSlot(sv, e.b.Time, e.b.From, e.b.Origin, e.b.Group, setup)
			}
		}
	}
	ps.added[o] = added
	ps.minWord[o] = minWord
}
