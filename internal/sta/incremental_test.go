package sta

import (
	"math/rand"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// checkAgainstFull compares incremental state with a from-scratch
// propagation.
func checkAgainstFull(t *testing.T, d *model.Design, x *Incr, when string) {
	t.Helper()
	ref := Propagate(d)
	got := x.AT()
	for u := 0; u < d.NumPins(); u++ {
		if got.Valid[u] != ref.Valid[u] {
			t.Fatalf("%s: pin %s validity %v, want %v", when, d.PinName(model.PinID(u)), got.Valid[u], ref.Valid[u])
		}
		if got.Valid[u] && got.AT[u] != ref.AT[u] {
			t.Fatalf("%s: pin %s AT %v, want %v", when, d.PinName(model.PinID(u)), got.AT[u], ref.AT[u])
		}
	}
}

func TestIncrMatchesFullAfterRandomUpdates(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		d := gen.MustGenerate(gen.Medium(seed))
		x := NewIncr(d)
		checkAgainstFull(t, d, x, "initial")
		rng := rand.New(rand.NewSource(seed + 500))
		for step := 0; step < 30; step++ {
			ai := int32(rng.Intn(d.NumArcs()))
			old := d.Arcs[ai].Delay
			nw := model.Window{
				Early: old.Early + model.Time(rng.Intn(41)-20),
				Late:  old.Late + model.Time(rng.Intn(41)-20),
			}
			if nw.Early < 0 {
				nw.Early = 0
			}
			if nw.Late < nw.Early {
				nw.Late = nw.Early
			}
			if err := x.SetArcDelay(ai, nw); err != nil {
				t.Fatal(err)
			}
			x.Flush()
			checkAgainstFull(t, d, x, "after update")
		}
	}
}

func TestIncrBatchedUpdates(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(9))
	x := NewIncr(d)
	rng := rand.New(rand.NewSource(1))
	// Apply a batch before a single Flush.
	for i := 0; i < 20; i++ {
		ai := int32(rng.Intn(d.NumArcs()))
		old := d.Arcs[ai].Delay
		if err := x.SetArcDelay(ai, model.Window{Early: old.Early, Late: old.Late + 50}); err != nil {
			t.Fatal(err)
		}
	}
	x.Flush()
	checkAgainstFull(t, d, x, "after batch")
}

func TestIncrNoChangeIsFree(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(3))
	x := NewIncr(d)
	before := x.Recomputed()
	ai := int32(4)
	if err := x.SetArcDelay(ai, d.Arcs[ai].Delay); err != nil {
		t.Fatal(err)
	}
	if changed := x.Flush(); changed != 0 {
		t.Fatalf("no-op update changed %d pins", changed)
	}
	if x.Recomputed() != before {
		t.Fatal("no-op update recomputed pins")
	}
}

func TestIncrConePruning(t *testing.T) {
	// A change that cancels out (delay within the slack of a merge)
	// must not propagate past the merge point.
	b := model.NewBuilder("prune", model.Ns(10))
	clk := b.AddClockRoot("clk")
	ff := b.AddFF("ff", 1, 1, model.Window{Early: 10, Late: 10})
	b.AddArc(clk, ff.Clock, model.Window{Early: 1, Late: 1})
	a := b.AddComb("a")
	m := b.AddComb("m")
	z := b.AddComb("z")
	b.AddArc(ff.Q, a, model.Window{Early: 10, Late: 100})
	b.AddArc(ff.Q, m, model.Window{Early: 5, Late: 200}) // dominates both bounds
	b.AddArc(a, m, model.Window{Early: 50, Late: 50})
	b.AddArc(m, z, model.Window{Early: 1, Late: 1})
	b.AddArc(m, ff.D, model.Window{Early: 1, Late: 1})
	d := b.MustBuild()
	x := NewIncr(d)

	// Changing the a->m edge within the dominated range must stop at m.
	ai := d.ArcBetween(a, m)
	before := x.Recomputed()
	if err := x.SetArcDelay(ai, model.Window{Early: 55, Late: 60}); err != nil {
		t.Fatal(err)
	}
	changed := x.Flush()
	if changed != 0 {
		t.Fatalf("dominated update changed %d pins", changed)
	}
	// Only m itself may have been recomputed.
	if got := x.Recomputed() - before; got != 1 {
		t.Fatalf("recomputed %d pins, want 1 (the merge point)", got)
	}
	checkAgainstFull(t, d, x, "after dominated update")
}

func TestIncrRejectsBadInput(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(0))
	x := NewIncr(d)
	if err := x.SetArcDelay(-1, model.Window{}); err == nil {
		t.Error("negative index accepted")
	}
	if err := x.SetArcDelay(int32(d.NumArcs()), model.Window{}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := x.SetArcDelay(0, model.Window{Early: 5, Late: 2}); err == nil {
		t.Error("inverted window accepted")
	}
	if err := x.SetArcDelay(0, model.Window{Early: -1, Late: 2}); err == nil {
		t.Error("negative delay accepted")
	}
}
