// Package qerr defines the typed error taxonomy shared by the public
// cppr facade and the internal query engines. The facade re-exports the
// sentinels and the InternalError type, so callers match against
// cppr.ErrCanceled etc. with errors.Is / errors.As; internal packages
// import qerr directly to avoid a cycle with the facade.
package qerr

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// The taxonomy. Every error a query path returns matches exactly one of
// these sentinels under errors.Is, or is an *InternalError.
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled = errors.New("cppr: query canceled")
	// ErrDeadlineExceeded reports that the query's deadline passed.
	ErrDeadlineExceeded = errors.New("cppr: query deadline exceeded")
	// ErrBudgetExhausted reports that a budgeted search (Blockwise
	// MaxTuples, BranchAndBound MaxPops) hit its limit — the analogue of
	// the MLE entries in the paper's Table IV.
	ErrBudgetExhausted = errors.New("cppr: search budget exhausted")
	// ErrInvalidQuery reports a malformed query (negative K, out-of-range
	// endpoint, unsupported algorithm combination).
	ErrInvalidQuery = errors.New("cppr: invalid query")
	// ErrOverloaded reports that the service front end shed the request
	// under load: its admission queue was full. The request was never
	// admitted; retrying after a backoff is safe.
	ErrOverloaded = errors.New("cppr: server overloaded")
	// ErrShuttingDown reports that the service front end refused the
	// request because it is draining for shutdown. Retrying against a
	// replica (or after the restart) is safe.
	ErrShuttingDown = errors.New("cppr: server shutting down")
)

// InternalError is a contained invariant violation: a panic recovered
// from a query worker, converted into an error so one poisoned design
// fails its query instead of the process. It carries the panic message
// and the panicking goroutine's stack for bug reports.
type InternalError struct {
	// Site names the recovery point (e.g. "core.TopPaths").
	Site string
	// Msg is the stringified panic value.
	Msg string
	// Stack is the stack of the panicking goroutine at recovery time.
	Stack []byte
}

// Error implements the error interface. The stack is deliberately not
// included; read it from the struct when reporting.
func (e *InternalError) Error() string {
	return fmt.Sprintf("cppr: internal error at %s: %s", e.Site, e.Msg)
}

// FromPanic converts a recovered panic value into an *InternalError,
// capturing the current goroutine's stack. Call it directly inside the
// deferred recover handler so the stack still shows the panic site.
func FromPanic(site string, r any) *InternalError {
	return &InternalError{Site: site, Msg: fmt.Sprint(r), Stack: debug.Stack()}
}

// FromContext maps a context's termination onto the taxonomy: canceled
// contexts yield an error matching both ErrCanceled and context.Canceled,
// expired deadlines one matching both ErrDeadlineExceeded and
// context.DeadlineExceeded. A live context yields nil.
func FromContext(ctx context.Context) error {
	err := ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return &wrapped{sentinel: ErrDeadlineExceeded, cause: err}
	default:
		return &wrapped{sentinel: ErrCanceled, cause: err}
	}
}

// Invalid returns an error matching ErrInvalidQuery with a formatted
// detail message.
func Invalid(format string, args ...any) error {
	return &wrapped{sentinel: ErrInvalidQuery, cause: fmt.Errorf(format, args...)}
}

// Budget returns an error matching ErrBudgetExhausted with a formatted
// detail message.
func Budget(format string, args ...any) error {
	return &wrapped{sentinel: ErrBudgetExhausted, cause: fmt.Errorf(format, args...)}
}

// Overloaded returns an error matching ErrOverloaded with a formatted
// detail message.
func Overloaded(format string, args ...any) error {
	return &wrapped{sentinel: ErrOverloaded, cause: fmt.Errorf(format, args...)}
}

// ShuttingDown returns an error matching ErrShuttingDown with a
// formatted detail message.
func ShuttingDown(format string, args ...any) error {
	return &wrapped{sentinel: ErrShuttingDown, cause: fmt.Errorf(format, args...)}
}

// wrapped pairs a taxonomy sentinel with its underlying cause so
// errors.Is matches either: Is handles the sentinel, Unwrap exposes the
// cause chain (including context.Canceled / context.DeadlineExceeded).
type wrapped struct {
	sentinel error
	cause    error
}

func (w *wrapped) Error() string {
	if w.cause != nil {
		return w.sentinel.Error() + ": " + w.cause.Error()
	}
	return w.sentinel.Error()
}

func (w *wrapped) Is(target error) bool { return target == w.sentinel }

func (w *wrapped) Unwrap() error { return w.cause }
