package qerr

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFromContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	if err := FromContext(ctx); err != nil {
		t.Fatalf("live context mapped to %v", err)
	}
	cancel()
	err := FromContext(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled context: errors.Is(err, ErrCanceled) = false, err = %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled context: cause context.Canceled not matched, err = %v", err)
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("canceled context wrongly matches ErrDeadlineExceeded")
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer dcancel()
	<-dctx.Done()
	derr := FromContext(dctx)
	if !errors.Is(derr, ErrDeadlineExceeded) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Errorf("expired deadline mapped to %v", derr)
	}
}

func TestFromPanic(t *testing.T) {
	var ie *InternalError
	func() {
		defer func() {
			if r := recover(); r != nil {
				ie = FromPanic("qerr.test", r)
			}
		}()
		panic("boom")
	}()
	if ie == nil {
		t.Fatal("no InternalError captured")
	}
	if ie.Msg != "boom" || ie.Site != "qerr.test" {
		t.Errorf("got site=%q msg=%q", ie.Site, ie.Msg)
	}
	if len(ie.Stack) == 0 || !strings.Contains(string(ie.Stack), "TestFromPanic") {
		t.Errorf("stack does not name the panic site:\n%s", ie.Stack)
	}
	var as *InternalError
	if !errors.As(error(ie), &as) {
		t.Error("errors.As failed on *InternalError")
	}
}

func TestInvalidAndBudget(t *testing.T) {
	err := Invalid("K must be non-negative, got %d", -1)
	if !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("Invalid does not match ErrInvalidQuery: %v", err)
	}
	if !strings.Contains(err.Error(), "K must be non-negative") {
		t.Errorf("detail lost: %v", err)
	}
	if !errors.Is(Budget("max pops"), ErrBudgetExhausted) {
		t.Error("Budget does not match ErrBudgetExhausted")
	}
}
