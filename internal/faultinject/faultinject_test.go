package faultinject

import (
	"testing"
	"time"
)

func TestUnarmedIsNoop(t *testing.T) {
	Fire("nothing.armed") // must not panic
	if Forced("nothing.armed") {
		t.Error("Forced true with nothing armed")
	}
}

func TestPanicInjection(t *testing.T) {
	disarm := Arm("test.panic", Fault{Panic: "injected"})
	defer disarm()
	defer func() {
		if r := recover(); r != "injected" {
			t.Errorf("recovered %v, want injected panic", r)
		}
	}()
	Fire("test.panic")
	t.Error("Fire did not panic")
}

func TestAfterThreshold(t *testing.T) {
	disarm := Arm("test.after", Fault{After: 2})
	defer disarm()
	if Forced("test.after") || Forced("test.after") {
		t.Error("fault fired before its After threshold")
	}
	if !Forced("test.after") {
		t.Error("fault did not fire past its After threshold")
	}
	if !Forced("test.after") {
		t.Error("fault must keep firing once due")
	}
}

func TestDisarmIsIdempotentAndRearmable(t *testing.T) {
	disarm := Arm("test.rearm", Fault{})
	disarm()
	disarm() // second call must be a no-op, not an armed-count leak
	if armed.Load() != 0 {
		t.Fatalf("armed count %d after full disarm", armed.Load())
	}
	disarm2 := Arm("test.rearm", Fault{Delay: time.Nanosecond})
	defer disarm2()
	Fire("test.rearm")
}

func TestProbabilisticFault(t *testing.T) {
	disarm := Arm("test.prob", Fault{Prob: 0.25})
	defer disarm()
	const hits = 4000
	fired := 0
	for i := 0; i < hits; i++ {
		if Forced("test.prob") {
			fired++
		}
	}
	// splitmix64 of the hit counter is uniform enough that 4000 hits at
	// p=0.25 land well inside [0.15, 0.35].
	if fired < hits*15/100 || fired > hits*35/100 {
		t.Errorf("probabilistic fault fired %d/%d times, want ~%d", fired, hits, hits/4)
	}
	// Determinism: the same hit sequence must produce the same fault
	// sequence.
	disarm()
	var first, second []bool
	d1 := Arm("test.prob", Fault{Prob: 0.25})
	for i := 0; i < 64; i++ {
		first = append(first, Forced("test.prob"))
	}
	d1()
	d2 := Arm("test.prob", Fault{Prob: 0.25})
	defer d2()
	for i := 0; i < 64; i++ {
		second = append(second, Forced("test.prob"))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("probabilistic fault sequence not deterministic at hit %d", i)
		}
	}
}

func TestProbWithAfter(t *testing.T) {
	disarm := Arm("test.probafter", Fault{After: 10, Prob: 0.99})
	defer disarm()
	for i := 0; i < 10; i++ {
		if Forced("test.probafter") {
			t.Fatal("probabilistic fault fired before its After threshold")
		}
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Setenv("CPPR_FAULTS", "a.site:delay:1ms, b.site:panic:boom:0.5 ,c.site:forced:x")
	disarm, err := ArmFromEnv("CPPR_FAULTS")
	if err != nil {
		t.Fatal(err)
	}
	if armed.Load() != 3 {
		t.Fatalf("armed %d sites, want 3", armed.Load())
	}
	mu.Lock()
	a, b := taps["a.site"].f, taps["b.site"].f
	mu.Unlock()
	if a.Delay != time.Millisecond || a.Prob != 0 {
		t.Errorf("a.site = %+v, want 1ms delay", a)
	}
	if b.Panic != "boom" || b.Prob != 0.5 {
		t.Errorf("b.site = %+v, want panic boom at p=0.5", b)
	}
	if !Forced("c.site") {
		t.Error("c.site forced fault not due")
	}
	disarm()
	if armed.Load() != 0 {
		t.Fatalf("armed count %d after disarm-all", armed.Load())
	}
}

func TestArmFromEnvEmpty(t *testing.T) {
	t.Setenv("CPPR_FAULTS", "")
	disarm, err := ArmFromEnv("CPPR_FAULTS")
	if err != nil {
		t.Fatal(err)
	}
	disarm()
}

func TestArmFromEnvMalformed(t *testing.T) {
	for _, bad := range []string{
		"no-kind",
		"s:delay:notaduration",
		"s:delay:1ms:1.5",
		"s:wat:x",
		"s:delay:1ms:0.5:extra",
	} {
		t.Setenv("CPPR_FAULTS", "ok.site:delay:1ms,"+bad)
		if _, err := ArmFromEnv("CPPR_FAULTS"); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
		if armed.Load() != 0 {
			t.Fatalf("spec %q: partial arming left %d sites armed", bad, armed.Load())
		}
	}
}

func TestDuplicateArmPanics(t *testing.T) {
	disarm := Arm("test.dup", Fault{})
	defer disarm()
	defer func() {
		if recover() == nil {
			t.Error("duplicate Arm did not panic")
		}
	}()
	Arm("test.dup", Fault{})
}
