package faultinject

import (
	"testing"
	"time"
)

func TestUnarmedIsNoop(t *testing.T) {
	Fire("nothing.armed") // must not panic
	if Forced("nothing.armed") {
		t.Error("Forced true with nothing armed")
	}
}

func TestPanicInjection(t *testing.T) {
	disarm := Arm("test.panic", Fault{Panic: "injected"})
	defer disarm()
	defer func() {
		if r := recover(); r != "injected" {
			t.Errorf("recovered %v, want injected panic", r)
		}
	}()
	Fire("test.panic")
	t.Error("Fire did not panic")
}

func TestAfterThreshold(t *testing.T) {
	disarm := Arm("test.after", Fault{After: 2})
	defer disarm()
	if Forced("test.after") || Forced("test.after") {
		t.Error("fault fired before its After threshold")
	}
	if !Forced("test.after") {
		t.Error("fault did not fire past its After threshold")
	}
	if !Forced("test.after") {
		t.Error("fault must keep firing once due")
	}
}

func TestDisarmIsIdempotentAndRearmable(t *testing.T) {
	disarm := Arm("test.rearm", Fault{})
	disarm()
	disarm() // second call must be a no-op, not an armed-count leak
	if armed.Load() != 0 {
		t.Fatalf("armed count %d after full disarm", armed.Load())
	}
	disarm2 := Arm("test.rearm", Fault{Delay: time.Nanosecond})
	defer disarm2()
	Fire("test.rearm")
}

func TestDuplicateArmPanics(t *testing.T) {
	disarm := Arm("test.dup", Fault{})
	defer disarm()
	defer func() {
		if recover() == nil {
			t.Error("duplicate Arm did not panic")
		}
	}()
	Arm("test.dup", Fault{})
}
