// Package faultinject provides deterministic, test-only fault taps for
// the query path. The engine and the baselines call Fire / Forced at
// named sites; tests Arm a site with a Fault to force worker panics,
// slow workers, or budget exhaustion, proving the resilience layer
// (panic containment, cooperative cancellation, graceful degradation)
// end to end. Service binaries can additionally arm sites from the
// CPPR_FAULTS environment variable (ArmFromEnv), so a running server
// can be chaos-tested without recompiling.
//
// When nothing is armed — always, outside tests and chaos runs — Fire
// and Forced cost one atomic load and return immediately.
//
// Known sites:
//
//	core.worker               TopPaths candidate-generation worker, per job
//	core.endpoint.worker      EndpointSlacksCPPR worker, per job
//	baseline.pairwise.worker  Pairwise worker, per launch job
//	baseline.blockwise.budget Blockwise MaxTuples check (Forced)
//	baseline.bnb.budget       BranchAndBound MaxPops check (Forced)
//	serve.registry.load       Registry.Load, after validation
//	serve.registry.acquire    Registry.Acquire, per admitted query
//	serve.batcher.enqueue     batcher submit path, per request
//	serve.batcher.flush       batcher flush, per dispatched batch
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what an armed site does when hit.
type Fault struct {
	// Panic, when non-empty, panics with this message (worker-crash
	// injection; the resilience layer must convert it to an
	// InternalError).
	Panic string
	// Delay sleeps this long before continuing (slow-worker injection;
	// used to hold queries in flight for cancellation tests and as the
	// chaos harness's latency fault kind).
	Delay time.Duration
	// After skips the first After hits of the site before the fault
	// takes effect, so a test can let part of the work complete
	// deterministically (e.g. partial results before forced budget
	// exhaustion). Zero fires from the first hit.
	After int
	// Prob, when in (0, 1), makes the fault probabilistic: each hit past
	// After fires independently with this probability, decided by a
	// deterministic hash of the site's hit counter so a given hit
	// sequence always produces the same fault sequence. Zero (and any
	// value >= 1) keeps the deterministic always-fire behaviour.
	Prob float64
}

var (
	// armed counts installed taps; the zero fast path keeps production
	// overhead at a single atomic load.
	armed atomic.Int32

	mu   sync.Mutex
	taps map[string]*tap
)

type tap struct {
	f    Fault
	hits int
}

// Arm installs f at site and returns its disarm function. Arming an
// already-armed site panics: overlapping faults at one site would make
// tests order-dependent.
func Arm(site string, f Fault) (disarm func()) {
	mu.Lock()
	defer mu.Unlock()
	if taps == nil {
		taps = make(map[string]*tap)
	}
	if _, dup := taps[site]; dup {
		panic(fmt.Sprintf("faultinject: site %q already armed", site))
	}
	taps[site] = &tap{f: f}
	armed.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			defer mu.Unlock()
			delete(taps, site)
			armed.Add(-1)
		})
	}
}

// ArmFromEnv arms every fault listed in the named environment variable
// (conventionally "CPPR_FAULTS") and returns a disarm-all function.
// The format is a comma-separated list of specs:
//
//	site:kind:arg[:prob]
//
// where kind is "panic" (arg = message), "delay" (arg = a
// time.ParseDuration string, e.g. 5ms) or "forced" (arg ignored;
// trips Forced budget checks), and the optional prob in (0,1) makes
// the fault probabilistic per hit. Examples:
//
//	CPPR_FAULTS=serve.batcher.flush:delay:2ms
//	CPPR_FAULTS=core.worker:panic:chaos:0.01,serve.registry.acquire:delay:1ms:0.2
//
// An unset or empty variable arms nothing. A malformed spec returns an
// error with nothing armed.
func ArmFromEnv(envVar string) (disarm func(), err error) {
	raw := os.Getenv(envVar)
	if raw == "" {
		return func() {}, nil
	}
	var disarms []func()
	undo := func() {
		for _, d := range disarms {
			d()
		}
	}
	for _, spec := range strings.Split(raw, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		site, f, err := parseSpec(spec)
		if err != nil {
			undo()
			return nil, fmt.Errorf("faultinject: %s=%q: %v", envVar, raw, err)
		}
		disarms = append(disarms, Arm(site, f))
	}
	return undo, nil
}

// parseSpec parses one site:kind:arg[:prob] spec.
func parseSpec(spec string) (site string, f Fault, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 3 {
		return "", Fault{}, fmt.Errorf("spec %q: want site:kind:arg[:prob]", spec)
	}
	site = parts[0]
	kind := parts[1]
	// The arg may itself contain colons only for panic messages; for the
	// other kinds a 4th field is the probability.
	arg := parts[2]
	prob := ""
	if len(parts) == 4 {
		prob = parts[3]
	} else if len(parts) > 4 {
		return "", Fault{}, fmt.Errorf("spec %q: too many fields", spec)
	}
	switch kind {
	case "panic":
		if arg == "" {
			arg = "faultinject: injected panic"
		}
		f.Panic = arg
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return "", Fault{}, fmt.Errorf("spec %q: bad delay %q", spec, arg)
		}
		f.Delay = d
	case "forced":
		// Zero-valued fault: due hits only trip Forced checks.
	default:
		return "", Fault{}, fmt.Errorf("spec %q: unknown kind %q (want panic|delay|forced)", spec, kind)
	}
	if prob != "" {
		p, err := strconv.ParseFloat(prob, 64)
		if err != nil || p <= 0 || p >= 1 {
			return "", Fault{}, fmt.Errorf("spec %q: bad probability %q (want (0,1))", spec, prob)
		}
		f.Prob = p
	}
	return site, f, nil
}

// hit records one hit at site and returns the fault if it is due.
func hit(site string) (Fault, bool) {
	if armed.Load() == 0 {
		return Fault{}, false
	}
	mu.Lock()
	defer mu.Unlock()
	t := taps[site]
	if t == nil {
		return Fault{}, false
	}
	t.hits++
	due := t.hits > t.f.After
	if due && t.f.Prob > 0 && t.f.Prob < 1 {
		due = probFires(t.hits, t.f.Prob)
	}
	return t.f, due
}

// probFires decides hit n of a probabilistic fault: a splitmix64 hash
// of the hit counter compared against p, so the fault sequence is a
// deterministic function of the hit sequence (reproducible chaos).
func probFires(n int, p float64) bool {
	z := uint64(n) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/float64(1<<53) < p
}

// Fire applies the fault armed at site, if any: it sleeps Delay, then
// panics with Panic when set. A no-op for unarmed sites.
func Fire(site string) {
	f, due := hit(site)
	if !due {
		return
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != "" {
		panic(f.Panic)
	}
}

// Forced reports whether the tap at site is due — budgeted searches OR
// it into their budget check to force deterministic exhaustion.
func Forced(site string) bool {
	_, due := hit(site)
	return due
}
