// Package faultinject provides deterministic, test-only fault taps for
// the query path. The engine and the baselines call Fire / Forced at
// named sites; tests Arm a site with a Fault to force worker panics,
// slow workers, or budget exhaustion, proving the resilience layer
// (panic containment, cooperative cancellation, graceful degradation)
// end to end.
//
// When nothing is armed — always, outside tests — Fire and Forced cost
// one atomic load and return immediately.
//
// Known sites:
//
//	core.worker               TopPaths candidate-generation worker, per job
//	core.endpoint.worker      EndpointSlacksCPPR worker, per job
//	baseline.pairwise.worker  Pairwise worker, per launch job
//	baseline.blockwise.budget Blockwise MaxTuples check (Forced)
//	baseline.bnb.budget       BranchAndBound MaxPops check (Forced)
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what an armed site does when hit.
type Fault struct {
	// Panic, when non-empty, panics with this message (worker-crash
	// injection; the resilience layer must convert it to an
	// InternalError).
	Panic string
	// Delay sleeps this long before continuing (slow-worker injection;
	// used to hold queries in flight for cancellation tests).
	Delay time.Duration
	// After skips the first After hits of the site before the fault
	// takes effect, so a test can let part of the work complete
	// deterministically (e.g. partial results before forced budget
	// exhaustion). Zero fires from the first hit.
	After int
}

var (
	// armed counts installed taps; the zero fast path keeps production
	// overhead at a single atomic load.
	armed atomic.Int32

	mu   sync.Mutex
	taps map[string]*tap
)

type tap struct {
	f    Fault
	hits int
}

// Arm installs f at site and returns its disarm function. Arming an
// already-armed site panics: overlapping faults at one site would make
// tests order-dependent.
func Arm(site string, f Fault) (disarm func()) {
	mu.Lock()
	defer mu.Unlock()
	if taps == nil {
		taps = make(map[string]*tap)
	}
	if _, dup := taps[site]; dup {
		panic(fmt.Sprintf("faultinject: site %q already armed", site))
	}
	taps[site] = &tap{f: f}
	armed.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			defer mu.Unlock()
			delete(taps, site)
			armed.Add(-1)
		})
	}
}

// hit records one hit at site and returns the fault if it is due.
func hit(site string) (Fault, bool) {
	if armed.Load() == 0 {
		return Fault{}, false
	}
	mu.Lock()
	defer mu.Unlock()
	t := taps[site]
	if t == nil {
		return Fault{}, false
	}
	t.hits++
	return t.f, t.hits > t.f.After
}

// Fire applies the fault armed at site, if any: it sleeps Delay, then
// panics with Panic when set. A no-op for unarmed sites.
func Fire(site string) {
	f, due := hit(site)
	if !due {
		return
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic != "" {
		panic(f.Panic)
	}
}

// Forced reports whether the tap at site is due — budgeted searches OR
// it into their budget check to force deterministic exhaustion.
func Forced(site string) bool {
	_, due := hit(site)
	return due
}
