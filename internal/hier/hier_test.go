package hier_test

import (
	"context"
	"testing"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/internal/hier"
	"fastcppr/model"
)

// checkValueExact asserts the reduced design times value-identically to
// the flat design at every top-visible endpoint: per-endpoint worst
// post-CPPR slacks, per-endpoint pre-CPPR (graph) slacks, and the top-1
// report slack, for both modes at every corner.
func checkValueExact(t *testing.T, d *model.Design, h *hier.Hier) {
	t.Helper()
	ctx := context.Background()
	ft := cppr.NewTimer(d)
	ht := cppr.NewTimer(h.Top)
	for c := model.Corner(0); int(c) < d.NumCorners(); c++ {
		for _, mode := range model.Modes {
			q := cppr.Query{K: 1, Mode: mode, Corners: cppr.CornerBit(c)}
			fr, err := ft.Run(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			hr, err := ht.Run(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			fw, fok := fr.WorstSlack()
			hw, hok := hr.WorstSlack()
			if fok != hok || fw != hw {
				t.Fatalf("corner %d mode %v: top-1 slack flat %d(%v) vs hier %d(%v)", c, mode, fw, fok, hw, hok)
			}
			fs, err := ft.PostCPPRSlacksCtx(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			hs, err := ht.PostCPPRSlacksCtx(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if len(fs) != len(hs) {
				t.Fatalf("endpoint count %d vs %d", len(fs), len(hs))
			}
			for i := range fs {
				if fs[i] != hs[i] {
					t.Fatalf("corner %d mode %v: endpoint %d post-CPPR slack flat %+v vs hier %+v",
						c, mode, i, fs[i], hs[i])
				}
			}
			fpre, err := ft.PreCPPRSlacksAt(c, mode)
			if err != nil {
				t.Fatal(err)
			}
			hpre, err := ht.PreCPPRSlacksAt(c, mode)
			if err != nil {
				t.Fatal(err)
			}
			for i := range fpre {
				if fpre[i] != hpre[i] {
					t.Fatalf("corner %d mode %v: endpoint %d pre-CPPR slack flat %+v vs hier %+v",
						c, mode, i, fpre[i], hpre[i])
				}
			}
		}
	}
}

func TestElaborateBlockedExactAndReused(t *testing.T) {
	spec := gen.BlockedArray(11)
	spec.Instances = 6
	spec.Layers = 8
	d := gen.MustGenerateBlocked(spec)
	h, err := hier.Elaborate(d, hier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Extracted != 1 || h.Reused != spec.Instances-1 {
		t.Fatalf("extracted=%d reused=%d, want 1/%d (identical instances share one model)",
			h.Extracted, h.Reused, spec.Instances-1)
	}
	if h.Top.NumArcs() >= d.NumArcs() {
		t.Fatalf("no compression: %d arcs reduced vs %d flat", h.Top.NumArcs(), d.NumArcs())
	}
	if h.Top.NumFFs() != d.NumFFs() || len(h.Top.PIs) != len(d.PIs) || len(h.Top.POs) != len(d.POs) {
		t.Fatal("reduced design lost top-visible endpoints")
	}
	checkValueExact(t, d, h)
}

func TestElaborateExactOnRandomPresets(t *testing.T) {
	for _, seed := range []int64{42, 43} {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		for _, force := range []bool{false, true} {
			h, err := hier.Elaborate(d, hier.Options{ForceExtract: force})
			if err != nil {
				t.Fatalf("seed %d force %v: %v", seed, force, err)
			}
			checkValueExact(t, d, h)
		}
	}
}

func TestElaborateExactWithCorners(t *testing.T) {
	spec := gen.BlockedArray(5)
	spec.Instances = 4
	spec.Layers = 6
	d := gen.MustGenerateBlocked(spec)
	d, _, err := d.WithScaledCorner("slow", 1.1, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err = d.WithScaledCorner("fast", 0.8, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hier.Elaborate(d, hier.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Top.NumCorners() != d.NumCorners() {
		t.Fatalf("reduced design has %d corners, flat %d", h.Top.NumCorners(), d.NumCorners())
	}
	// Uniform scaling preserves signature equality, so reuse survives.
	if h.Reused != spec.Instances-1 {
		t.Fatalf("reused=%d, want %d", h.Reused, spec.Instances-1)
	}
	checkValueExact(t, d, h)
}

func TestExtractCornerStableUnderDelayEdits(t *testing.T) {
	spec := gen.BlockedArray(3)
	spec.Instances = 2
	spec.Layers = 5
	d := gen.MustGenerateBlocked(spec)
	bl := model.PartitionBlocks(d)
	pairs0, _ := hier.ExtractCorner(d, bl, 0, model.BaseCorner)
	// Edit an internal arc's delay; the structural pair list must not
	// change (the edit path depends on this to diff windows pairwise).
	ai := bl.InternalArcs[0][len(bl.InternalArcs[0])/2]
	nd := d.CloneWithArcs()
	nd.Arcs[ai].Delay = model.Window{Early: 1, Late: 500}
	pairs1, wins1 := hier.ExtractCorner(nd, bl, 0, model.BaseCorner)
	if len(pairs0) != len(pairs1) {
		t.Fatalf("pair list changed under a delay edit: %d vs %d", len(pairs0), len(pairs1))
	}
	for i := range pairs0 {
		if pairs0[i] != pairs1[i] {
			t.Fatalf("pair %d changed: %+v vs %+v", i, pairs0[i], pairs1[i])
		}
	}
	if len(wins1) != len(pairs1) {
		t.Fatalf("windows not aligned with pairs")
	}
}
