// Package hier implements block macromodel extraction and hierarchical
// elaboration: the design's combinational clouds (model.PartitionBlocks)
// are compressed into boundary pin-to-pin early/late delay macromodels
// per corner ("Static Timing Model Extraction for Combinational
// Circuits", arXiv:1705.02610), and a reduced top-level design is
// elaborated in which every interior pin and internal arc of an
// extracted block is replaced by its macro arcs. Repeated block
// instances with identical signatures share one extracted model.
//
// Exactness: timing paths start at FF Q pins and primary inputs and end
// at FF D pins and primary outputs — never inside a block — so a path
// crosses an extracted block from a boundary input bi to a boundary
// output bo. The macro arc (bi, bo) carries Early = the minimum early
// delay over internal bi->bo paths and Late = the maximum late delay,
// each realized by some flat path; min/max propagation distributes over
// the block boundary, so arrival windows at every kept pin — and
// therefore every per-endpoint worst setup/hold slack, pre- and
// post-CPPR — are value-identical to the flat design. CPPR credit
// depends only on the launch/capture clock pins, and the clock tree is
// kept verbatim.
package hier

import (
	"fmt"
	"sort"

	"fastcppr/model"
)

// Options configures elaboration.
type Options struct {
	// ForceExtract extracts every block even when the macro would not
	// be smaller than the flat block (the compression test below). The
	// differential battery uses it to force extraction coverage on
	// presets whose clouds have wide boundaries.
	ForceExtract bool
}

// Pair is one boundary-in -> boundary-out connection of a block, in
// block-local pin indices (model.Blocks.LocalIdx).
type Pair struct {
	In, Out int32
}

// Macro is an extracted macromodel: the structural pair list (identical
// at every corner — reachability does not depend on delays) plus the
// per-corner pair windows, Delay[corner][pairIndex]. Macros are
// immutable and shared across instances with equal signatures.
type Macro struct {
	Pairs []Pair
	Delay [][]model.Window
}

// Instance binds one block of the partition to its macromodel (or marks
// it kept flat).
type Instance struct {
	// Block is the index into the partition's block tables.
	Block int
	// Extracted is false for blocks kept flat (no compression win):
	// their pins and internal arcs appear verbatim in the reduced
	// design.
	Extracted bool
	// Macro is the shared macromodel (nil when kept flat).
	Macro *Macro
	// TopArc[i] is the reduced-design arc index realizing
	// Macro.Pairs[i] for this instance (nil when kept flat).
	TopArc []int32
}

// Hier is the result of hierarchical elaboration: the reduced top-level
// design plus the structural maps that route flat-addressed edits. All
// fields are immutable after Elaborate.
type Hier struct {
	// Flat is the design the elaboration was computed from.
	Flat *model.Design
	// Blocks is the combinational partition of Flat.
	Blocks *model.Blocks
	// Top is the reduced design: every non-comb pin of Flat, the comb
	// pins of kept-flat blocks, the boundary pins of extracted blocks,
	// every arc with a kept endpoint pair, and one macro arc per
	// extracted pair. Corners, PI arrivals, PO constraints, clock
	// uncertainty and the clock tree carry over verbatim.
	Top *model.Design
	// PinMap[flatPin] is the reduced pin, or model.NoPin for dropped
	// interior pins.
	PinMap []model.PinID
	// FlatToTopArc[flatArc] is the reduced arc index for kept arcs and
	// -1 for internal arcs of extracted blocks.
	FlatToTopArc []int32
	// Instances holds one entry per partition block, indexed by block.
	Instances []Instance
	// Extracted counts distinct macromodel extractions, Reused the
	// instances served from the signature cache, KeptFlat the blocks
	// left uncompressed.
	Extracted, Reused, KeptFlat int
}

// ExtractCorner computes block b's macromodel at corner c of fd:
// for every boundary input, a forward early(min)/late(max) relaxation
// over the block's internal arcs in topological order. The returned
// pair list is in canonical order — boundary inputs in BoundaryIn
// order, boundary outputs in BoundaryOut order — and is identical at
// every corner, so the edit path can re-extract a single corner and
// diff windows pairwise. fd may be any delay variant of the partitioned
// design (same structure, edited arc delays).
func ExtractCorner(fd *model.Design, bl *model.Blocks, b int, c model.Corner) ([]Pair, []model.Window) {
	arcs := blockArcsTopo(fd, bl, b)
	np := len(bl.Pins[b])
	dist := make([]model.Window, np)
	reach := make([]bool, np)
	outIdx := make([]int32, np) // local idx -> rank in BoundaryOut, -1 otherwise
	for i := range outIdx {
		outIdx[i] = -1
	}
	for i, u := range bl.BoundaryOut[b] {
		outIdx[bl.LocalIdx[u]] = int32(i)
	}
	var pairs []Pair
	var wins []model.Window
	for _, bi := range bl.BoundaryIn[b] {
		for i := range reach {
			reach[i] = false
		}
		src := bl.LocalIdx[bi]
		dist[src] = model.Window{}
		reach[src] = true
		for _, ai := range arcs {
			a := &fd.Arcs[ai]
			lf, lt := bl.LocalIdx[a.From], bl.LocalIdx[a.To]
			if !reach[lf] {
				continue
			}
			w := fd.ArcDelay(c, ai)
			cand := model.Window{Early: dist[lf].Early + w.Early, Late: dist[lf].Late + w.Late}
			if !reach[lt] {
				dist[lt] = cand
				reach[lt] = true
			} else {
				if cand.Early < dist[lt].Early {
					dist[lt].Early = cand.Early
				}
				if cand.Late > dist[lt].Late {
					dist[lt].Late = cand.Late
				}
			}
		}
		// The graph is acyclic, so src cannot be re-reached: a pair
		// (bi, bi) would be a zero-length non-path and is skipped —
		// bi is a kept pin, arrivals flow through it directly.
		for _, bo := range bl.BoundaryOut[b] {
			lo := bl.LocalIdx[bo]
			if lo == src || !reach[lo] {
				continue
			}
			pairs = append(pairs, Pair{In: src, Out: lo})
			wins = append(wins, dist[lo])
		}
	}
	return pairs, wins
}

// blockArcsTopo returns block b's internal arcs ordered by the source
// pin's global topological index, the order a single forward relaxation
// pass needs.
func blockArcsTopo(fd *model.Design, bl *model.Blocks, b int) []int32 {
	arcs := make([]int32, len(bl.InternalArcs[b]))
	copy(arcs, bl.InternalArcs[b])
	sort.Slice(arcs, func(i, j int) bool {
		return fd.TopoIndex[fd.Arcs[arcs[i]].From] < fd.TopoIndex[fd.Arcs[arcs[j]].From]
	})
	return arcs
}

// extract computes block b's full macromodel (every corner).
func extract(fd *model.Design, bl *model.Blocks, b int) *Macro {
	m := &Macro{Delay: make([][]model.Window, fd.NumCorners())}
	for c := 0; c < fd.NumCorners(); c++ {
		pairs, wins := ExtractCorner(fd, bl, b, model.Corner(c))
		if c == 0 {
			m.Pairs = pairs
		} else if len(pairs) != len(m.Pairs) {
			// Reachability is structural; this cannot happen.
			panic(fmt.Sprintf("hier: block %d pair count changed across corners (%d vs %d)",
				b, len(pairs), len(m.Pairs)))
		}
		m.Delay[c] = wins
	}
	return m
}

// cacheEntry is one signature-cache slot: the shared macro plus the
// keep-flat decision (deterministic per signature).
type cacheEntry struct {
	macro    *Macro
	keepFlat bool
}

// Elaborate partitions d, extracts a macromodel per block (sharing
// models across equal-signature instances), and builds the reduced
// top-level design.
func Elaborate(d *model.Design, opts Options) (*Hier, error) {
	bl := model.PartitionBlocks(d)
	h := &Hier{
		Flat:      d,
		Blocks:    bl,
		Instances: make([]Instance, bl.NumBlocks()),
	}

	// Decide and extract per block, reusing by signature.
	cache := make(map[string]cacheEntry)
	for b := 0; b < bl.NumBlocks(); b++ {
		sig := bl.Signature(b)
		ent, hit := cache[sig]
		if hit {
			h.Reused++
		} else {
			macro := extract(d, bl, b)
			// Keep the block flat when the macro is no smaller than
			// the block it replaces: compression is the whole point.
			keep := !opts.ForceExtract && len(macro.Pairs) >= len(bl.InternalArcs[b])
			ent = cacheEntry{macro: macro, keepFlat: keep}
			cache[sig] = ent
			if !keep {
				h.Extracted++
			}
		}
		if ent.keepFlat {
			h.Instances[b] = Instance{Block: b}
			h.KeptFlat++
		} else {
			h.Instances[b] = Instance{Block: b, Extracted: true, Macro: ent.macro}
		}
	}

	// Build the reduced design. Pins in flat PinID order; FF pins are
	// created by AddFF at the CK pin (the Builder lays CK/D/Q out
	// consecutively, as the flat builder did, so FF IDs are preserved).
	nb := model.NewBuilder(d.Name, d.Period)
	h.PinMap = make([]model.PinID, len(d.Pins))
	for i := range h.PinMap {
		h.PinMap[i] = model.NoPin
	}
	piIdx := make(map[model.PinID]int, len(d.PIs))
	for i, p := range d.PIs {
		piIdx[p] = i
	}
	poIdx := make(map[model.PinID]int, len(d.POs))
	for i, p := range d.POs {
		poIdx[p] = i
	}
	boundary := make([]bool, len(d.Pins))
	for b := 0; b < bl.NumBlocks(); b++ {
		if !h.Instances[b].Extracted {
			continue
		}
		for _, u := range bl.BoundaryIn[b] {
			boundary[u] = true
		}
		for _, u := range bl.BoundaryOut[b] {
			boundary[u] = true
		}
	}
	// addSrc records, per Builder arc-append, the flat arc it carries
	// (-1 for macro arcs) — arc provenance must be tracked at add time
	// because a macro pair can coincide pin-for-pin with a direct
	// internal arc.
	var addSrc []int32
	for u := range d.Pins {
		p := &d.Pins[u]
		switch p.Kind {
		case model.Comb:
			inst := &h.Instances[bl.Of[u]]
			if !inst.Extracted || boundary[u] {
				h.PinMap[u] = nb.AddComb(p.Name)
			}
		case model.PI:
			h.PinMap[u] = nb.AddPI(p.Name, d.PIArrival[piIdx[model.PinID(u)]])
		case model.PO:
			i := poIdx[model.PinID(u)]
			if d.POConstrained[i] {
				h.PinMap[u] = nb.AddPOConstrained(p.Name, d.PORequired[i])
			} else {
				h.PinMap[u] = nb.AddPO(p.Name)
			}
		case model.ClockRoot:
			h.PinMap[u] = nb.AddClockRoot(p.Name)
		case model.ClockBuf:
			h.PinMap[u] = nb.AddClockBuf(p.Name)
		case model.FFClock:
			ff := &d.FFs[p.FF]
			ckq := d.FanIn(ff.Output)[0] // Q is driven exactly by CK->Q
			fp := nb.AddFF(ff.Name, ff.Setup, ff.Hold, d.Arcs[ckq].Delay)
			h.PinMap[ff.Clock] = fp.Clock
			h.PinMap[ff.Data] = fp.D
			h.PinMap[ff.Output] = fp.Q
			addSrc = append(addSrc, ckq)
		case model.FFData, model.FFOutput:
			// Created with their FF at the CK pin.
		}
	}
	nb.SetClockUncertainty(model.Setup, d.Uncertainty[model.Setup])
	nb.SetClockUncertainty(model.Hold, d.Uncertainty[model.Hold])

	// Kept arcs, in flat arc order: every arc whose both endpoints
	// survive, minus CK->Q launches (AddFF recreated those above).
	for ai := range d.Arcs {
		a := &d.Arcs[ai]
		if d.Pins[a.From].Kind == model.FFClock {
			continue
		}
		nf, nt := h.PinMap[a.From], h.PinMap[a.To]
		if nf == model.NoPin || nt == model.NoPin {
			continue
		}
		if b := bl.Of[a.From]; b >= 0 && b == bl.Of[a.To] && h.Instances[b].Extracted {
			// Internal arc of an extracted block between two boundary
			// pins: replaced by the macro, not kept.
			continue
		}
		if a.Invert {
			nb.AddInvertingArc(nf, nt, a.Delay)
		} else {
			nb.AddArc(nf, nt, a.Delay)
		}
		addSrc = append(addSrc, int32(ai))
	}

	// Macro arcs, per instance, in canonical pair order. macroAt[i]
	// records (instance, pair) for corner-table fill below.
	type macroRef struct{ inst, pair int32 }
	var macroAt []macroRef
	for b := range h.Instances {
		inst := &h.Instances[b]
		if !inst.Extracted {
			continue
		}
		inst.TopArc = make([]int32, len(inst.Macro.Pairs))
		for i, pr := range inst.Macro.Pairs {
			from := h.PinMap[bl.Pins[b][pr.In]]
			to := h.PinMap[bl.Pins[b][pr.Out]]
			inst.TopArc[i] = int32(len(addSrc))
			nb.AddArc(from, to, inst.Macro.Delay[0][i])
			addSrc = append(addSrc, -1)
			macroAt = append(macroAt, macroRef{inst: int32(b), pair: int32(i)})
		}
	}

	top, err := nb.Build()
	if err != nil {
		return nil, fmt.Errorf("hier: reduced design invalid: %w", err)
	}
	if top.NumArcs() != len(addSrc) {
		return nil, fmt.Errorf("hier: arc provenance out of sync (%d arcs, %d tracked)", top.NumArcs(), len(addSrc))
	}
	top.BaseCornerName = d.BaseCornerName

	// Extra corners: kept arcs read the flat corner table, macro arcs
	// their instance's extracted windows.
	for c := 1; c < d.NumCorners(); c++ {
		table := make([]model.Window, len(addSrc))
		mi := 0
		for i, src := range addSrc {
			if src >= 0 {
				table[i] = d.ArcDelay(model.Corner(c), src)
			} else {
				ref := macroAt[mi]
				mi++
				table[i] = h.Instances[ref.inst].Macro.Delay[c][ref.pair]
			}
		}
		top, _, err = top.WithCorner(d.CornerName(model.Corner(c)), table)
		if err != nil {
			return nil, fmt.Errorf("hier: carrying corner %d: %w", c, err)
		}
	}
	h.Top = top

	h.FlatToTopArc = make([]int32, len(d.Arcs))
	for i := range h.FlatToTopArc {
		h.FlatToTopArc[i] = -1
	}
	for i, src := range addSrc {
		if src >= 0 {
			h.FlatToTopArc[src] = int32(i)
		}
	}
	return h, nil
}
