package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunsEveryTaskOnce: every spawned task executes exactly once before
// Wait returns, for pool sizes below, at, and above GOMAXPROCS.
func TestRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		g := p.NewGroup()
		const n = 500
		var counts [n]atomic.Int32
		for i := 0; i < n; i++ {
			i := i
			g.Spawn(func(tc *TC) { counts[i].Add(1) })
		}
		g.Wait(nil)
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d task %d ran %d times", workers, i, got)
			}
		}
		p.Close()
	}
}

// TestNestedForkJoin: a task fans out subtasks into its own deque and
// help-waits; the whole tree completes even on a 1-worker pool (which
// would deadlock without Wait-helping).
func TestNestedForkJoin(t *testing.T) {
	for _, workers := range []int{1, 3} {
		p := New(workers)
		var sum atomic.Int64
		root := p.NewGroup()
		for i := 0; i < 8; i++ {
			root.Spawn(func(tc *TC) {
				child := p.NewGroup()
				for j := 1; j <= 10; j++ {
					j := j
					tc.Spawn(child, func(tc *TC) { sum.Add(int64(j)) })
				}
				child.Wait(tc)
			})
		}
		root.Wait(nil)
		if got := sum.Load(); got != 8*55 {
			t.Fatalf("workers=%d sum = %d, want %d", workers, got, 8*55)
		}
		p.Close()
	}
}

// TestStealHeavySkew: one giant task that spawns lots of children plus a
// worker count > 1 means siblings must steal to finish; verify all
// children run and more than one worker participated.
func TestStealHeavySkew(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		// Stealing still happens (goroutines interleave on one core),
		// but worker-diversity is not guaranteed; only check completion.
	}
	p := New(4)
	g := p.NewGroup()
	const n = 400
	var done atomic.Int32
	seen := make(map[int]bool)
	var mu sync.Mutex
	g.Spawn(func(tc *TC) {
		child := p.NewGroup()
		for i := 0; i < n; i++ {
			tc.Spawn(child, func(tc2 *TC) {
				mu.Lock()
				seen[tc2.w] = true
				mu.Unlock()
				done.Add(1)
			})
		}
		child.Wait(tc)
	})
	g.Wait(nil)
	if done.Load() != n {
		t.Fatalf("ran %d of %d children", done.Load(), n)
	}
	p.Close()
}

// TestPanicPropagates: a panicking task surfaces at Wait, and the group
// still drains its other tasks first.
func TestPanicPropagates(t *testing.T) {
	p := New(2)
	defer p.Close()
	g := p.NewGroup()
	var ran atomic.Int32
	for i := 0; i < 10; i++ {
		g.Spawn(func(tc *TC) { ran.Add(1) })
	}
	g.Spawn(func(tc *TC) { panic("boom") })
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		g.Wait(nil)
	}()
	if recovered != "boom" {
		t.Fatalf("Wait recovered %v, want boom", recovered)
	}
	if ran.Load() != 10 {
		t.Fatalf("only %d of 10 healthy tasks ran", ran.Load())
	}
}

// TestWaitFromMultipleGoroutines: several goroutines can Wait the same
// group; all of them return once it drains.
func TestWaitFromMultipleGoroutines(t *testing.T) {
	p := New(2)
	defer p.Close()
	g := p.NewGroup()
	var hits atomic.Int32
	for i := 0; i < 64; i++ {
		g.Spawn(func(tc *TC) { hits.Add(1) })
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); g.Wait(nil) }()
	}
	wg.Wait()
	if hits.Load() != 64 {
		t.Fatalf("ran %d of 64", hits.Load())
	}
}

// TestEmptyGroupWait: Wait on a group with no tasks returns immediately.
func TestEmptyGroupWait(t *testing.T) {
	p := New(1)
	defer p.Close()
	g := p.NewGroup()
	g.Wait(nil)
}

// TestWorkersClamp: New clamps sizes below 1.
func TestWorkersClamp(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", p.Workers())
	}
	g := p.NewGroup()
	ran := false
	g.Spawn(func(tc *TC) { ran = true })
	g.Wait(nil)
	if !ran {
		t.Fatal("task did not run")
	}
}

// TestForEachCoversAllIndices: ForEach runs every index exactly once at
// any pool size, including n much larger and much smaller than the
// worker count, and bodies can spawn nested fork-join work on the pool.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 3, 100} {
			p := New(workers)
			counts := make([]atomic.Int32, n)
			p.ForEach(n, func(i int, tc *TC) {
				counts[i].Add(1)
				// Nested fan-out from inside a body must share the pool.
				g := p.NewGroup()
				var sub atomic.Int32
				for j := 0; j < 3; j++ {
					g.Spawn(func(*TC) { sub.Add(1) })
				}
				g.Wait(tc)
				if sub.Load() != 3 {
					t.Errorf("workers=%d n=%d i=%d: nested group ran %d of 3", workers, n, i, sub.Load())
				}
			})
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
			p.Close()
		}
	}
}
