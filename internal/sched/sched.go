// Package sched is the work-stealing executor behind the engine's
// candidate-generation jobs and the batch layer's (query × corner)
// execution units. One Pool hosts a fixed set of worker goroutines, each
// with its own deque: a worker pushes and pops tasks it spawns at the
// bottom (LIFO, for locality with the scratch it just warmed) and, when
// its deque runs dry, steals from the top of a sibling's deque (FIFO, so
// thieves take the oldest — typically largest — pending work). Externally
// submitted tasks land on a shared inject queue that idle workers drain
// before stealing.
//
// Tasks are coarse — an entire candidate-generation job or batch unit,
// microseconds to milliseconds each — so the pool optimises for
// correctness and determinism, not nanosecond dispatch: all queues hang
// off one mutex, and wakeups are condition-variable broadcasts. What
// makes it an executor rather than a semaphore is the fork-join shape:
// a task may spawn subtasks into its own deque and Wait for them while
// HELPING — running pending tasks (its own or stolen) instead of
// blocking — so a batch unit that fans out its engine jobs never parks a
// worker, and idle workers finishing small units steal the big unit's
// jobs. That is what retires the old static inner/outer thread split:
// total parallelism is simply the pool size, however lopsided the units.
//
// Determinism: the pool guarantees nothing about execution ORDER, only
// that every spawned task runs exactly once before Wait returns. Callers
// that need thread-count-independent output must make their merge order
// insensitive (the engine's global selection orders by (slack, job,
// idx); the batch layer merges by unit rank).
package sched

import (
	"sync"
	"sync/atomic"
)

// Task is one unit of work. The TC identifies the worker running it (nil
// when run inline by a Wait helper outside the pool) and is the handle
// for spawning subtasks onto the same pool.
type Task func(tc *TC)

// task pairs a Task with the group accounting it reports into.
type task struct {
	g  *Group
	fn Task
}

// Pool is a fixed-size work-stealing worker pool. Create with New, feed
// it through Groups, and Close it when every group has been waited on.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]task // deques[w]: bottom = end (owner side), top = front (steal side)
	inject []task   // external submissions, FIFO
	closed bool
	wg     sync.WaitGroup
}

// New starts a pool of n workers (n < 1 is clamped to 1).
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{deques: make([][]task, n)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		go p.worker(w)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.deques) }

// ForEach runs body(i, tc) for every i in [0, n), spread across the
// pool, and returns when all have completed. It spawns min(n, Workers)
// worker-loop tasks that claim indices from a shared counter — an
// admission scheme, not a partition: a body that fans out further work
// (another timer's candidate jobs, say) shares the same workers, so
// many independent callers never oversubscribe the pool. Bodies may
// run concurrently and must synchronize any shared state themselves;
// execution order is unspecified.
func (p *Pool) ForEach(n int, body func(i int, tc *TC)) {
	if n <= 0 {
		return
	}
	loops := p.Workers()
	if loops > n {
		loops = n
	}
	var next atomic.Int64
	g := p.NewGroup()
	for w := 0; w < loops; w++ {
		g.Spawn(func(tc *TC) {
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i, tc)
			}
		})
	}
	g.Wait(nil)
}

// Close shuts the pool down and joins its workers. Every Group must have
// been Waited on first: workers drain whatever is still queued before
// exiting, but nothing will be left to Wait on those strays.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Group tracks a set of tasks to join on: a fork-join scope. Groups are
// cheap; create one per query (or per nested fan-out) and Wait it before
// the pool is Closed. A Group may be fed from multiple goroutines.
type Group struct {
	p       *Pool
	pending int // guarded by p.mu
	panicv  any // first task panic, re-raised by Wait
	set     bool
}

// NewGroup returns an empty group on p.
func (p *Pool) NewGroup() *Group { return &Group{p: p} }

// Spawn schedules fn from outside the pool: the task lands on the shared
// inject queue. From inside a task, prefer TC.Spawn.
func (g *Group) Spawn(fn Task) {
	p := g.p
	p.mu.Lock()
	g.pending++
	p.inject = append(p.inject, task{g: g, fn: fn})
	p.cond.Broadcast()
	p.mu.Unlock()
}

// TC is the worker context handed to every running task.
type TC struct {
	p *Pool
	w int
}

// Pool returns the pool this context belongs to.
func (tc *TC) Pool() *Pool { return tc.p }

// Spawn schedules fn onto this worker's own deque (bottom), where the
// worker will pop it LIFO unless a sibling steals it first.
func (tc *TC) Spawn(g *Group, fn Task) {
	p := tc.p
	p.mu.Lock()
	g.pending++
	p.deques[tc.w] = append(p.deques[tc.w], task{g: g, fn: fn})
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Wait blocks until every task spawned into g has finished. When tc is a
// worker context of the same pool, Wait helps: instead of parking, it
// runs pending tasks (its own deque first, then steals) — required when
// waiting from inside a task, or the pool could deadlock with every
// worker parked in Wait. If any task panicked, Wait re-raises the first
// panic after the group drains.
func (g *Group) Wait(tc *TC) {
	p := g.p
	p.mu.Lock()
	for g.pending > 0 {
		if tc != nil {
			if t, ok := p.grabLocked(tc.w); ok {
				p.mu.Unlock()
				t.run(tc)
				p.mu.Lock()
				continue
			}
		}
		p.cond.Wait()
	}
	pv, set := g.panicv, g.set
	p.mu.Unlock()
	if set {
		panic(pv)
	}
}

// grabLocked finds a runnable task for worker w: own deque bottom, then
// the inject queue, then steal from siblings' tops in ring order.
func (p *Pool) grabLocked(w int) (task, bool) {
	if dq := p.deques[w]; len(dq) > 0 {
		t := dq[len(dq)-1]
		p.deques[w] = dq[:len(dq)-1]
		return t, true
	}
	if len(p.inject) > 0 {
		t := p.inject[0]
		p.inject = p.inject[1:]
		if len(p.inject) == 0 {
			p.inject = nil // release the drained backing array
		}
		return t, true
	}
	n := len(p.deques)
	for i := 1; i < n; i++ {
		v := (w + i) % n
		if dq := p.deques[v]; len(dq) > 0 {
			t := dq[0]
			p.deques[v] = dq[1:]
			return t, true
		}
	}
	return task{}, false
}

// run executes t on worker context tc, containing panics into the
// group's first-panic slot and signalling completion.
func (t task) run(tc *TC) {
	defer func() {
		r := recover()
		p := t.g.p
		p.mu.Lock()
		if r != nil && !t.g.set {
			t.g.panicv, t.g.set = r, true
		}
		t.g.pending--
		p.cond.Broadcast()
		p.mu.Unlock()
	}()
	t.fn(tc)
}

// worker is one pool goroutine: grab, run, park when dry.
func (p *Pool) worker(w int) {
	defer p.wg.Done()
	tc := &TC{p: p, w: w}
	p.mu.Lock()
	for {
		if t, ok := p.grabLocked(w); ok {
			p.mu.Unlock()
			t.run(tc)
			p.mu.Lock()
			continue
		}
		if p.closed {
			break
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
}
