package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/model"
)

// TestBatteryHierVsFlatPresets proves the hierarchical-mode exactness
// claim at the public API level: on down-scaled versions of every paper
// preset, with jittered MCMM corners (which destroy cross-instance
// signature equality — correctness must not depend on reuse), the
// hierarchical timer and the flat timer agree value-exactly at every
// top-visible endpoint for every corner selection, mode, and CRPR
// setting. ForceExtract makes wide-boundary clouds extract too, so the
// macro path is exercised on every preset.
func TestBatteryHierVsFlatPresets(t *testing.T) {
	names := gen.PresetNames()
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		spec, err := gen.PresetSpec(name, 0.004)
		if err != nil {
			t.Fatal(err)
		}
		d := gen.MustGenerate(spec)
		d = WithJitteredCorners(t, d, 2, 500+int64(len(name)))
		CheckHierValueExact(t, d, true)
	}
	// Medium random topology plus the oracle-sized preset, with and
	// without forcing (the keep-flat decision must be invisible).
	for _, seed := range []int64{320, 321} {
		d := WithJitteredCorners(t, gen.MustGenerate(gen.Medium(seed)), 3, seed)
		CheckHierValueExact(t, d, true)
		CheckHierValueExact(t, d, false)
	}
	d := WithJitteredCorners(t, gen.MustGenerate(gen.SmallOracle(9)), 2, 99)
	CheckHierValueExact(t, d, true)
	CheckHierValueExact(t, d, false)
}

// TestBatteryHierBlockedPreset runs the repeated-block preset — the
// model-reuse scenario hierarchical mode exists for — through the same
// exactness checks, with uniform-scaled corners (reuse survives) and
// with jittered corners (reuse collapses, values must not).
func TestBatteryHierBlockedPreset(t *testing.T) {
	spec := gen.BlockedArray(31)
	spec.Instances = 8
	spec.Layers = 10
	base := gen.MustGenerateBlocked(spec)

	scaled, _, err := base.WithScaledCorner("slow", 1.15, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	CheckHierValueExact(t, scaled, false)
	ht, err := cppr.NewHierTimer(scaled, cppr.HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := ht.Stats(); st.MacroExtracted != 1 || st.MacroReused != int64(spec.Instances-1) {
		t.Fatalf("reuse broken on identical instances: %+v", st)
	}

	jittered := WithJitteredCorners(t, base, 3, 777)
	CheckHierValueExact(t, jittered, false)
	CheckHierValueExact(t, jittered, true)
}

// hierRepBytes marshals one query's report with wall time zeroed — the
// byte-identity comparison key.
func hierRepBytes(tb testing.TB, timer *cppr.Timer, q cppr.Query) []byte {
	tb.Helper()
	rep, err := timer.Run(context.Background(), q)
	if err != nil {
		tb.Fatalf("difftest: %v", err)
	}
	rep.Elapsed = 0
	out, err := json.Marshal(rep.JSON(timer.Design(), q.Mode, q.K))
	if err != nil {
		tb.Fatalf("difftest: marshal: %v", err)
	}
	return out
}

// TestBatteryHierWorkersAndWarmCold: hierarchical reports are
// deterministic — byte-identical across 1/2/8-worker configurations
// (fresh timers) and across warm/cold serving on one timer, including
// after an internal-block edit invalidates through the journal.
func TestBatteryHierWorkersAndWarmCold(t *testing.T) {
	spec := gen.BlockedArray(32)
	spec.Instances = 6
	spec.Layers = 8
	d := WithJitteredCorners(t, gen.MustGenerateBlocked(spec), 2, 888)

	queries := []cppr.Query{
		{K: 1, Mode: model.Setup},
		{K: 10, Mode: model.Setup, Corners: cppr.CornerAll},
		{K: 10, Mode: model.Hold, Corners: cppr.CornerBit(1)},
		{K: 10, Mode: model.Setup, CRPR: cppr.CRPRSameTransition},
	}
	var ref [][]byte
	for _, workers := range []int{1, 2, 8} {
		ht, err := cppr.NewHierTimer(d, cppr.HierOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ht.SetParallelism(cppr.Parallelism{Workers: workers, QueryThreads: workers})
		for qi, q := range queries {
			q.Threads = workers
			got := hierRepBytes(t, ht, q)
			if workers == 1 {
				ref = append(ref, got)
			} else if !bytes.Equal(ref[qi], got) {
				t.Fatalf("query %d differs at %d workers:\n%s\nvs\n%s", qi, workers, ref[qi], got)
			}
		}
	}

	// Warm/cold on one timer, before and after an internal-block edit.
	ht, err := cppr.NewHierTimer(d, cppr.HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		CheckWarmColdByteIdentical(t, ht, ht.Design(), q)
	}
	fd := ht.FlatDesign()
	edited := false
	for ai := range fd.Arcs {
		a := fd.Arcs[ai]
		if fd.Pins[a.From].Kind == model.Comb && fd.Pins[a.To].Kind == model.Comb {
			w := a.Delay
			w.Late += 120
			if err := ht.SetArcDelayAt(model.BaseCorner, a.From, a.To, w); err != nil {
				t.Fatal(err)
			}
			edited = true
			break
		}
	}
	if !edited {
		t.Fatal("no comb-comb arc to edit")
	}
	if ht.Stats().MacroReextracted == 0 {
		t.Fatal("internal edit did not re-extract")
	}
	for _, q := range queries {
		CheckWarmColdByteIdentical(t, ht, ht.Design(), q)
	}
	CheckHierTimersAgree(t, cppr.NewTimer(ht.FlatDesign()), ht, d.NumCorners())
}
