package difftest

import (
	"testing"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/model"
)

// TestBatterySparseVsDenseKernels proves the tentpole exactness claim at
// the public API level: on down-scaled versions of every paper preset,
// with jittered MCMM corners, the sparse frontier kernel and the dense
// reference kernel produce byte-identical JSON reports for every mode,
// k, and corner selection.
func TestBatterySparseVsDenseKernels(t *testing.T) {
	names := gen.PresetNames()
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		spec, err := gen.PresetSpec(name, 0.004)
		if err != nil {
			t.Fatal(err)
		}
		d := gen.MustGenerate(spec)
		d = WithJitteredCorners(t, d, 2, 400+int64(len(name)))
		timer := cppr.NewTimer(d)
		for c := model.Corner(0); int(c) < d.NumCorners(); c++ {
			for _, mode := range model.Modes {
				for _, k := range []int{1, 10} {
					CheckKernelsByteIdentical(t, timer, d, cppr.Query{
						K: k, Mode: mode, Corners: cppr.CornerBit(c),
					})
				}
			}
		}
		// Multi-corner merged report: worst-corner selection must also be
		// kernel-independent.
		for _, mode := range model.Modes {
			CheckKernelsByteIdentical(t, timer, d, cppr.Query{
				K: 10, Mode: mode, Corners: cppr.CornerAll,
			})
		}
	}
}

// TestBatterySparseVsDenseMediumSeeds widens the net with seeded medium
// random designs (different topology generator settings than the
// presets) and the PO/lifting query variants.
func TestBatterySparseVsDenseMediumSeeds(t *testing.T) {
	for _, seed := range []int64{310, 311} {
		d := gen.MustGenerate(gen.Medium(seed))
		d = WithJitteredCorners(t, d, 3, seed)
		timer := cppr.NewTimer(d)
		for _, mode := range model.Modes {
			CheckKernelsByteIdentical(t, timer, d, cppr.Query{K: 25, Mode: mode})
			CheckKernelsByteIdentical(t, timer, d, cppr.Query{K: 25, Mode: mode, IncludePOs: true})
			CheckKernelsByteIdentical(t, timer, d, cppr.Query{K: 25, Mode: mode, UseLiftingLCA: true})
			CheckKernelsByteIdentical(t, timer, d, cppr.Query{K: 25, Mode: mode, Corners: cppr.CornerAll})
		}
	}
}
