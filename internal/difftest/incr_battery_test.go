package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/model"
)

// editDataArc perturbs one rng-chosen data arc (FF output source — a
// journalled edit, not a clock-tree rebuild) at corner c and returns
// nothing; the timer's design is copy-on-write.
func editDataArc(tb testing.TB, timer *cppr.Timer, c model.Corner, rng *rand.Rand) {
	tb.Helper()
	d := timer.Design()
	for tries := 0; tries < 10*d.NumArcs(); tries++ {
		ai := rng.Intn(d.NumArcs())
		a := d.Arcs[ai]
		if d.Pins[a.From].Kind != model.FFOutput {
			continue
		}
		w := d.ArcDelay(c, int32(ai))
		nw := model.Window{
			Early: w.Early + model.Time(rng.Intn(20)),
			Late:  w.Late + model.Time(rng.Intn(50)+20),
		}
		if err := timer.SetArcDelayAt(c, a.From, a.To, nw); err != nil {
			tb.Fatalf("difftest: edit arc %d at corner %d: %v", ai, c, err)
		}
		return
	}
	tb.Fatal("difftest: no data arc found")
}

// TestBatteryWarmVsColdIncremental proves the incremental-cache
// exactness claim at the public API level: on down-scaled versions of
// every paper preset with jittered MCMM corners, a warm requery after
// interleaved base- and extra-corner edits is byte-identical to a cold
// NoCache run of the same snapshot for every corner selection, mode and
// k — and anchored against a from-scratch timer over the edited design,
// so a bug fooling both cached and uncached paths of one timer cannot
// hide.
func TestBatteryWarmVsColdIncremental(t *testing.T) {
	names := gen.PresetNames()
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		spec, err := gen.PresetSpec(name, 0.004)
		if err != nil {
			t.Fatal(err)
		}
		d := gen.MustGenerate(spec)
		d = WithJitteredCorners(t, d, 2, 500+int64(len(name)))
		timer := cppr.NewTimer(d)
		rng := rand.New(rand.NewSource(900 + int64(len(name))))

		// Prime the caches so post-edit queries exercise revalidation.
		for c := model.Corner(0); int(c) < d.NumCorners(); c++ {
			for _, mode := range model.Modes {
				CheckWarmColdByteIdentical(t, timer, d, cppr.Query{
					K: 10, Mode: mode, Corners: cppr.CornerBit(c),
				})
			}
		}

		for step := 0; step < 3; step++ {
			// Alternate which corner the edit lands in: base-corner edits
			// exercise journal-cone invalidation, extra-corner edits
			// exercise the corner-scoped cache reset.
			editDataArc(t, timer, model.Corner(step%d.NumCorners()), rng)
			nd := timer.Design()
			for c := model.Corner(0); int(c) < nd.NumCorners(); c++ {
				for _, mode := range model.Modes {
					for _, k := range []int{1, 10} {
						CheckWarmColdByteIdentical(t, timer, nd, cppr.Query{
							K: k, Mode: mode, Corners: cppr.CornerBit(c),
						})
					}
				}
			}
			// Multi-corner merged report, anchored against a fresh timer
			// preprocessing the edited design from scratch.
			fresh := cppr.NewTimer(nd)
			for _, mode := range model.Modes {
				q := cppr.Query{K: 10, Mode: mode, Corners: cppr.CornerAll}
				CheckWarmColdByteIdentical(t, timer, nd, q)
				warm := runJSON(t, timer, nd, q)
				ref := runJSON(t, fresh, nd, q)
				if !bytes.Equal(warm, ref) {
					t.Fatalf("%s step %d %v: edited timer differs from fresh timer\nwarm:  %s\nfresh: %s",
						name, step, mode, warm, ref)
				}
			}
		}
	}
}

func runJSON(tb testing.TB, timer *cppr.Timer, d *model.Design, q cppr.Query) []byte {
	tb.Helper()
	rep, err := timer.Run(context.Background(), q)
	if err != nil {
		tb.Fatal(err)
	}
	rep.Elapsed = 0
	out, err := json.Marshal(rep.JSON(d, q.Mode, q.K))
	if err != nil {
		tb.Fatal(err)
	}
	return out
}
