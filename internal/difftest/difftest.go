// Package difftest is the reusable differential-testing harness for the
// CPPR query path: it cross-checks the paper's AlgoLCA implementation
// against the independently implemented baselines at the public cppr
// API level, on seeded random designs, per delay corner. The package
// promotes the comparison patterns of internal/core's crosscheck tests
// into helpers that test batteries across the repo (cppr, netlist,
// experiments) can share.
package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"fastcppr/cppr"
	"fastcppr/model"
)

// Slacks projects reported paths onto their post-CPPR slack spectrum —
// the canonical comparison key: two exact implementations must agree on
// the multiset of top-k slacks even when they break slack ties by
// different (equally critical) paths.
func Slacks(paths []model.Path) []model.Time {
	out := make([]model.Time, len(paths))
	for i, p := range paths {
		out[i] = p.Slack
	}
	return out
}

// Equal reports whether two slack spectra match exactly. Slacks are
// fixed-point picoseconds, so equality is exact — no tolerance.
func Equal(a, b []model.Time) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Ascending reports whether the spectrum is sorted most-critical-first
// (ascending slack), the order every exact algorithm must emit.
func Ascending(s []model.Time) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// JitteredCorner appends a delay corner whose every arc delay is the
// base corner's scaled by an independent, seeded random factor in
// [1-spread, 1+spread] — per-arc variation rather than a global derate,
// so corner-specific critical paths genuinely differ from the base
// corner's. Scaling both bounds by one factor keeps windows valid.
func JitteredCorner(d *model.Design, name string, seed int64, spread float64) (*model.Design, model.Corner, error) {
	rng := rand.New(rand.NewSource(seed))
	return d.WithDerivedCorner(name, func(_ int, w model.Window) model.Window {
		f := 1 + spread*(2*rng.Float64()-1)
		return model.Window{
			Early: model.Time(math.Round(float64(w.Early) * f)),
			Late:  model.Time(math.Round(float64(w.Late) * f)),
		}
	})
}

// WithJitteredCorners returns d extended to n corners via JitteredCorner,
// deriving per-corner seeds from seed.
func WithJitteredCorners(tb testing.TB, d *model.Design, n int, seed int64) *model.Design {
	tb.Helper()
	names := []string{"fast", "slow", "hot", "cold", "lowv", "highv", "wc", "bc"}
	for i := 0; i < n-1; i++ {
		name := names[i%len(names)]
		if i >= len(names) {
			name = name + string(rune('0'+i/len(names)))
		}
		var err error
		d, _, err = JitteredCorner(d, name, seed*1000+int64(i)+1, 0.25)
		if err != nil {
			tb.Fatalf("difftest: corner %q: %v", name, err)
		}
	}
	return d
}

// CrossCheck runs q under every algorithm in algos against timer and
// fails tb unless all post-CPPR slack spectra match the first
// algorithm's exactly. It also enforces the structural contract every
// exact report honours: ascending slack order, at most K paths, no
// degradation (a degraded baseline proves nothing — raise its budget
// instead of comparing against it).
func CrossCheck(tb testing.TB, timer *cppr.Timer, q cppr.Query, algos ...cppr.Algorithm) {
	tb.Helper()
	var ref []model.Time
	var refAlgo cppr.Algorithm
	for i, a := range algos {
		qa := q
		qa.Algorithm = a
		rep, err := timer.Run(context.Background(), qa)
		if err != nil {
			tb.Fatalf("difftest: %v: %v", a, err)
		}
		if rep.Degraded {
			tb.Fatalf("difftest: %v degraded under k=%d; raise its budget for differential runs", a, q.K)
		}
		if len(rep.Paths) > q.K {
			tb.Fatalf("difftest: %v returned %d paths for k=%d", a, len(rep.Paths), q.K)
		}
		s := Slacks(rep.Paths)
		if !Ascending(s) {
			tb.Fatalf("difftest: %v slacks not ascending: %v", a, s)
		}
		if i == 0 {
			ref, refAlgo = s, a
			continue
		}
		if !Equal(ref, s) {
			tb.Fatalf("difftest: %v and %v disagree (corners %#x, mode %v, k=%d)\n%v: %v\n%v: %v",
				refAlgo, a, uint64(q.Corners), q.Mode, q.K, refAlgo, ref, a, s)
		}
	}
}

// CheckKernelsByteIdentical runs q under AlgoLCA with the sparse
// frontier propagation kernel (the default) and again with the dense
// reference kernel (Query.DenseKernel), and fails tb unless the two
// marshalled JSON reports are byte-for-byte identical. This is a
// stronger contract than slack-spectrum equality: the full report —
// every path's pin sequence, credits, endpoint names, stats — must
// match, which holds only if the kernels produce bit-identical
// propagation tuples including tie-breaks. Wall time is zeroed before
// marshalling; it is the one field allowed to differ.
func CheckKernelsByteIdentical(tb testing.TB, timer *cppr.Timer, d *model.Design, q cppr.Query) {
	tb.Helper()
	q.Algorithm = cppr.AlgoLCA
	run := func(denseKernel bool) []byte {
		qq := q
		qq.DenseKernel = denseKernel
		rep, err := timer.Run(context.Background(), qq)
		if err != nil {
			tb.Fatalf("difftest: kernel dense=%v: %v", denseKernel, err)
		}
		rep.Elapsed = 0
		out, err := json.Marshal(rep.JSON(d, q.Mode, q.K))
		if err != nil {
			tb.Fatalf("difftest: marshal: %v", err)
		}
		return out
	}
	sparse := run(false)
	dense := run(true)
	if !bytes.Equal(sparse, dense) {
		tb.Fatalf("difftest: sparse and dense kernels disagree (corners %#x, mode %v, k=%d)\nsparse: %s\ndense:  %s",
			uint64(q.Corners), q.Mode, q.K, sparse, dense)
	}
}

// CheckWarmColdByteIdentical runs q under AlgoLCA twice against the
// same timer — once through the incremental caches (warm: journal
// revalidation plus whatever job-cache and query-memo entries the
// timer has accumulated) and once with Query.NoCache forcing a cold
// uncached run — and fails tb unless the two marshalled JSON reports
// are byte-for-byte identical. Like CheckKernelsByteIdentical this is
// stronger than slack equality: pins, credits, endpoint names and
// stats must all match, which holds only if cache revalidation is
// exact. Wall time is zeroed before marshalling; it is the one field
// allowed to differ.
func CheckWarmColdByteIdentical(tb testing.TB, timer *cppr.Timer, d *model.Design, q cppr.Query) {
	tb.Helper()
	q.Algorithm = cppr.AlgoLCA
	run := func(noCache bool) []byte {
		qq := q
		qq.NoCache = noCache
		rep, err := timer.Run(context.Background(), qq)
		if err != nil {
			tb.Fatalf("difftest: noCache=%v: %v", noCache, err)
		}
		rep.Elapsed = 0
		out, err := json.Marshal(rep.JSON(d, q.Mode, q.K))
		if err != nil {
			tb.Fatalf("difftest: marshal: %v", err)
		}
		return out
	}
	warm := run(false)
	cold := run(true)
	if !bytes.Equal(warm, cold) {
		tb.Fatalf("difftest: warm and cold runs disagree (corners %#x, mode %v, k=%d)\nwarm: %s\ncold: %s",
			uint64(q.Corners), q.Mode, q.K, warm, cold)
	}
}

// CheckHierValueExact builds a flat timer and a hierarchical timer
// (block macromodel extraction, cppr.NewHierTimer) on the same design
// and fails tb unless they agree value-exactly at every top-visible
// endpoint: the per-endpoint post-CPPR slack sweep and the top-1
// reported slack, for every corner (and the merged all-corner
// selection), both modes, and both CRPR credit semantics. force
// extracts even uncompressible blocks, so random presets with wide
// boundaries still exercise the macro path.
func CheckHierValueExact(tb testing.TB, d *model.Design, force bool) {
	tb.Helper()
	ht, err := cppr.NewHierTimer(d, cppr.HierOptions{ForceExtract: force})
	if err != nil {
		tb.Fatalf("difftest: hier elaboration: %v", err)
	}
	CheckHierTimersAgree(tb, cppr.NewTimer(d), ht, d.NumCorners())
}

// CheckHierTimersAgree compares a flat reference timer against a
// hierarchical timer over every corner selection, mode, and CRPR
// setting (see CheckHierValueExact). Split out so edit-path batteries
// can re-check after mutating both sides.
func CheckHierTimersAgree(tb testing.TB, flat, hier *cppr.Timer, numCorners int) {
	tb.Helper()
	ctx := context.Background()
	selections := make([]cppr.CornerMask, 0, numCorners+1)
	for c := 0; c < numCorners; c++ {
		selections = append(selections, cppr.CornerBit(model.Corner(c)))
	}
	if numCorners > 1 {
		selections = append(selections, cppr.CornerAll)
	}
	for _, sel := range selections {
		for _, mode := range model.Modes {
			for _, crpr := range []cppr.CRPRSetting{cppr.CRPRSamePin, cppr.CRPRSameTransition} {
				q := cppr.Query{K: 1, Mode: mode, Corners: sel, CRPR: crpr}
				fs, err := flat.PostCPPRSlacksCtx(ctx, q)
				if err != nil {
					tb.Fatalf("difftest: flat sweep: %v", err)
				}
				hs, err := hier.PostCPPRSlacksCtx(ctx, q)
				if err != nil {
					tb.Fatalf("difftest: hier sweep: %v", err)
				}
				if len(fs) != len(hs) {
					tb.Fatalf("difftest: endpoint counts differ: flat %d, hier %d", len(fs), len(hs))
				}
				for i := range fs {
					if fs[i] != hs[i] {
						tb.Fatalf("difftest: endpoint %d diverges (corners %#x, mode %v, crpr %d)\nflat: %+v\nhier: %+v",
							i, uint64(sel), mode, crpr, fs[i], hs[i])
					}
				}
				fr, err := flat.Run(ctx, q)
				if err != nil {
					tb.Fatalf("difftest: flat top-1: %v", err)
				}
				hr, err := hier.Run(ctx, q)
				if err != nil {
					tb.Fatalf("difftest: hier top-1: %v", err)
				}
				fw, fok := fr.WorstSlack()
				hw, hok := hr.WorstSlack()
				if fok != hok || fw != hw {
					tb.Fatalf("difftest: top-1 diverges (corners %#x, mode %v, crpr %d): flat %v(%v), hier %v(%v)",
						uint64(sel), mode, crpr, fw, fok, hw, hok)
				}
			}
		}
	}
}

// CheckEndpointSweep cross-checks the two independent post-CPPR
// surfaces of the Timer: the worst slack of the endpoint sweep
// (PostCPPRSlacksCtx) must equal the slack of the top reported path
// (Run with K=1), per corner selection.
func CheckEndpointSweep(tb testing.TB, timer *cppr.Timer, q cppr.Query) {
	tb.Helper()
	q.Algorithm = cppr.AlgoLCA
	slacks, err := timer.PostCPPRSlacksCtx(context.Background(), q)
	if err != nil {
		tb.Fatalf("difftest: endpoint sweep: %v", err)
	}
	var worst model.Time
	found := false
	for _, s := range slacks {
		if s.Valid && (!found || s.Slack < worst) {
			worst, found = s.Slack, true
		}
	}
	q.K = 1
	rep, err := timer.Run(context.Background(), q)
	if err != nil {
		tb.Fatalf("difftest: top-1 run: %v", err)
	}
	top, ok := rep.WorstSlack()
	if found != ok {
		tb.Fatalf("difftest: sweep found=%v but top-1 ok=%v", found, ok)
	}
	if found && worst != top {
		tb.Fatalf("difftest: endpoint sweep worst %v != top path slack %v (corners %#x, mode %v)",
			worst, top, uint64(q.Corners), q.Mode)
	}
}
