package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/internal/baseline"
	"fastcppr/internal/lca"
	"fastcppr/model"
	"fastcppr/sdc"
)

// signoffKnobs enumerates the industrial-semantics knobs as independent
// battery legs: an SDC text switching the knob on (empty = the off
// baseline), plus the CRPR setting of the queries. The same_transition
// knob appears twice — once as an explicit query setting and once
// resolved from the SDC's set_crpr_mode default — because those are two
// different code paths into the same semantics.
var signoffKnobs = []struct {
	name string
	sdc  string
	crpr cppr.CRPRSetting
}{
	{"off", "", cppr.CRPRSamePin},
	{"uncertainty", "set_clock_uncertainty -setup 60ps\nset_clock_uncertainty -hold 25ps\n", cppr.CRPRSamePin},
	{"derate", "set_timing_derate -early 0.94 -late 1.07\n", cppr.CRPRSamePin},
	{"ideal_clock", "set_ideal_clock\n", cppr.CRPRSamePin},
	{"propagated_clock", "set_propagated_clock\n", cppr.CRPRSamePin},
	// Extreme overridden windows so the I/O paths become critical and
	// the knob is exercised on the reported spectrum, not just parsed.
	{"io_delay", "set_input_delay in0 -early 0ps -late 40000ps\nset_output_delay out0 -early 100ps -late 400ps\n", cppr.CRPRSamePin},
	{"same_transition", "", cppr.CRPRSameTransition},
	{"same_transition_sdc", "set_crpr_mode same_transition\n", cppr.CRPRDefault},
}

// signoffTimer builds a jittered-corner timer for the knob on a
// divergent-clock oracle design and returns it with the (possibly
// SDC-transformed) design the reports render against.
func signoffTimer(tb testing.TB, seed int64, sdcText string) (*cppr.Timer, *model.Design) {
	tb.Helper()
	d := gen.MustGenerate(gen.DivergentClock(seed))
	d = WithJitteredCorners(tb, d, 2, seed)
	timer := cppr.NewTimer(d)
	if sdcText != "" {
		c, err := sdc.ParseString(sdcText)
		if err != nil {
			tb.Fatalf("difftest: signoff sdc: %v", err)
		}
		if d, err = timer.ApplySDC(c); err != nil {
			tb.Fatalf("difftest: signoff apply: %v", err)
		}
	}
	return timer, d
}

// TestSignoffKnobsVsBruteForce is the oracle battery for the industrial
// semantics pack: every knob leg (clock uncertainty, global derates,
// ideal vs propagated clocks, I/O delay overrides, same_transition CRPR
// both query- and SDC-selected) is cross-checked — all exact engines
// against exhaustive enumeration — on inverter-mixed oracle designs,
// per jittered corner, per mode, per k.
func TestSignoffKnobsVsBruteForce(t *testing.T) {
	withBrute := append([]cppr.Algorithm{cppr.AlgoBruteForce}, algos...)
	seeds := []int64{7, 21}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, knob := range signoffKnobs {
			timer, d := signoffTimer(t, seed, knob.sdc)
			for c := model.Corner(0); int(c) < d.NumCorners(); c++ {
				for _, mode := range model.Modes {
					for _, k := range []int{1, 25} {
						CrossCheck(t, timer, cppr.Query{
							K: k, Mode: mode, Corners: cppr.CornerBit(c), CRPR: knob.crpr,
						}, withBrute...)
					}
					CheckEndpointSweep(t, timer, cppr.Query{Mode: mode, Corners: cppr.CornerBit(c), CRPR: knob.crpr})
				}
			}
		}
	}
}

// TestSignoffWarmColdAndKernels runs the byte-identity legs per knob:
// on one timer, warm (journal + memo caches) vs cold (NoCache) reports
// and sparse vs dense propagation kernels must serialise byte-for-byte
// identically with each knob loaded, single-corner and merged.
func TestSignoffWarmColdAndKernels(t *testing.T) {
	for _, knob := range signoffKnobs {
		timer, d := signoffTimer(t, 7, knob.sdc)
		for _, mode := range model.Modes {
			q := cppr.Query{K: 25, Mode: mode, CRPR: knob.crpr}
			CheckKernelsByteIdentical(t, timer, d, q)
			CheckWarmColdByteIdentical(t, timer, d, q)
			q.Corners = cppr.CornerAll
			CheckKernelsByteIdentical(t, timer, d, q)
			CheckWarmColdByteIdentical(t, timer, d, q)
		}
	}
}

// TestSignoffWorkerByteIdentity re-runs each knob's merged-corner
// reports under worker budgets 1, 2 and 8 and requires byte-identical
// serialisations: parallelism may change scheduling, never answers.
// With -race this doubles as the data-race probe for the new semantics
// (parity tracking, uncertainty, per-query CRPR) under the stealing
// executor.
func TestSignoffWorkerByteIdentity(t *testing.T) {
	queries := []cppr.Query{
		{K: 25, Mode: model.Setup},
		{K: 25, Mode: model.Hold},
		{K: 10, Mode: model.Setup, Corners: cppr.CornerAll},
		{K: 10, Mode: model.Hold, Corners: cppr.CornerAll},
	}
	reports := func(knobSDC string, crpr cppr.CRPRSetting, workers int) [][]byte {
		timer, d := signoffTimer(t, 7, knobSDC)
		timer.SetParallelism(cppr.Parallelism{Workers: workers, QueryThreads: workers})
		var out [][]byte
		for _, q := range queries {
			q.CRPR = crpr
			rep, err := timer.Run(context.Background(), q)
			if err != nil {
				t.Fatalf("difftest: workers=%d: %v", workers, err)
			}
			rep.Elapsed = 0
			b, err := json.Marshal(rep.JSON(d, q.Mode, q.K))
			if err != nil {
				t.Fatalf("difftest: marshal: %v", err)
			}
			out = append(out, b)
		}
		return out
	}
	for _, knob := range signoffKnobs {
		ref := reports(knob.sdc, knob.crpr, 1)
		for _, workers := range []int{2, 8} {
			got := reports(knob.sdc, knob.crpr, workers)
			for i := range ref {
				if !bytes.Equal(ref[i], got[i]) {
					t.Fatalf("difftest: knob %s workers %d query %d differs from serial reference:\n%s\n---\n%s",
						knob.name, workers, i, ref[i], got[i])
				}
			}
		}
	}
}

// TestSignoffSDCDefaultMatchesExplicit checks the set_crpr_mode
// resolution chain: after applying an SDC that selects
// same_transition, a CRPRDefault query must report exactly what an
// explicit CRPRSameTransition query reports — and on a fresh timer
// (no SDC) the default must be same_pin.
func TestSignoffSDCDefaultMatchesExplicit(t *testing.T) {
	run := func(timer *cppr.Timer, mode model.Mode, crpr cppr.CRPRSetting) []model.Time {
		rep, err := timer.Run(context.Background(), cppr.Query{K: 25, Mode: mode, CRPR: crpr})
		if err != nil {
			t.Fatal(err)
		}
		return Slacks(rep.Paths)
	}
	withSDC, _ := signoffTimer(t, 7, "set_crpr_mode same_transition\n")
	plain, _ := signoffTimer(t, 7, "")
	for _, mode := range model.Modes {
		if def, st := run(withSDC, mode, cppr.CRPRDefault), run(withSDC, mode, cppr.CRPRSameTransition); !Equal(def, st) {
			t.Fatalf("%v: default under set_crpr_mode same_transition %v != explicit same_transition %v", mode, def, st)
		}
		if def, sp := run(plain, mode, cppr.CRPRDefault), run(plain, mode, cppr.CRPRSamePin); !Equal(def, sp) {
			t.Fatalf("%v: default without SDC %v != same_pin %v", mode, def, sp)
		}
	}
}

// TestSignoffModesMustDiverge is the conflation tripwire: on the
// divergent-clock presets — reconvergent clock trees mixing inverting
// and non-inverting cells — same_pin and same_transition must disagree
// somewhere in the top-k spectrum. An implementation that quietly maps
// one mode onto the other fails here, not in a semantics no-op.
func TestSignoffModesMustDiverge(t *testing.T) {
	for _, seed := range []int64{7, 21} {
		timer, _ := signoffTimer(t, seed, "")
		diverged := false
		for _, mode := range model.Modes {
			for _, k := range []int{1, 25} {
				var spectra [2][]model.Time
				for i, crpr := range []cppr.CRPRSetting{cppr.CRPRSamePin, cppr.CRPRSameTransition} {
					rep, err := timer.Run(context.Background(), cppr.Query{K: k, Mode: mode, CRPR: crpr})
					if err != nil {
						t.Fatal(err)
					}
					spectra[i] = Slacks(rep.Paths)
				}
				if !Equal(spectra[0], spectra[1]) {
					diverged = true
				}
			}
		}
		if !diverged {
			t.Fatalf("seed %d: same_pin and same_transition agree on every mode and k of an inverter-mixed design — modes conflated?", seed)
		}
	}
}

// TestSameTransitionCreditDominated is the property test behind the
// engine's pruning argument: for every enumerable launch/capture pair,
// credit under same_transition is either exactly the same_pin credit
// (clock parities agree at the FFs) or exactly zero (they differ) —
// never anything in between, and never larger. This is what licenses
// reusing the same_pin candidate bounds when answering same_transition
// queries.
func TestSameTransitionCreditDominated(t *testing.T) {
	for _, seed := range []int64{7, 8, 21} {
		d := gen.MustGenerate(gen.DivergentClock(seed))
		tree := lca.New(d)
		mismatched := 0
		for _, mode := range model.Modes {
			for _, p := range baseline.AllPaths(d, mode) {
				st, err := d.RecomputePathCRPR(mode, model.CRPRSameTransition, p.Pins)
				if err != nil {
					t.Fatal(err)
				}
				if st.Credit > p.Credit {
					t.Fatalf("seed %d %v path %v: same_transition credit %v exceeds same_pin credit %v",
						seed, mode, p.Pins, st.Credit, p.Credit)
				}
				if st.Credit != p.Credit && st.Credit != 0 {
					t.Fatalf("seed %d %v path %v: same_transition credit %v is neither the same_pin credit %v nor zero",
						seed, mode, p.Pins, st.Credit, p.Credit)
				}
				if p.LaunchFF == model.NoFF {
					continue
				}
				lp := tree.Parity(d.FFs[p.LaunchFF].Clock)
				cp := tree.Parity(d.FFs[p.CaptureFF].Clock)
				if lp == cp && st.Credit != p.Credit {
					t.Fatalf("seed %d %v path %v: parities agree but same_transition credit %v != same_pin credit %v",
						seed, mode, p.Pins, st.Credit, p.Credit)
				}
				if lp != cp {
					mismatched++
					if st.Credit != 0 {
						t.Fatalf("seed %d %v path %v: parity mismatch but same_transition credit %v != 0",
							seed, mode, p.Pins, st.Credit)
					}
					if p.Credit > 0 {
						// At least one such pair makes the divergence real.
						continue
					}
				}
			}
		}
		if mismatched == 0 {
			t.Fatalf("seed %d: no parity-mismatched FF pair on a divergent-clock preset — inverter mix not reaching the tree?", seed)
		}
	}
}
