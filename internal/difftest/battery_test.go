package difftest

import (
	"context"
	"testing"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/liberty"
	"fastcppr/model"
	"fastcppr/netlist"
)

// requireCornersDiffer guards the battery against corner plumbing that
// silently answers every query from the base corner: a jittered corner
// must produce a different top slack than the base somewhere.
func requireCornersDiffer(t *testing.T, timer *cppr.Timer, numCorners int) {
	t.Helper()
	base, err := timer.Run(context.Background(), cppr.Query{K: 1, Mode: model.Setup})
	if err != nil {
		t.Fatal(err)
	}
	for c := model.Corner(1); int(c) < numCorners; c++ {
		rep, err := timer.Run(context.Background(), cppr.Query{K: 1, Mode: model.Setup, Corners: cppr.CornerBit(c)})
		if err != nil {
			t.Fatal(err)
		}
		if b, _ := base.WorstSlack(); rep.Paths[0].Slack != b {
			return
		}
	}
	t.Fatal("every corner reports the base corner's worst slack — corner delays not reaching the engines?")
}

// algos is the exact-algorithm set every battery run compares: the
// paper's algorithm first (the reference), then the three reimplemented
// baselines.
var algos = []cppr.Algorithm{cppr.AlgoLCA, cppr.AlgoPairwise, cppr.AlgoBlockwise, cppr.AlgoBranchAndBound}

// TestBatteryMediumDesigns cross-checks all exact algorithms on seeded
// medium random designs, at every corner of a three-corner MCMM setup,
// through the public cppr API.
func TestBatteryMediumDesigns(t *testing.T) {
	seeds := []int64{300, 301, 302}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		d := gen.MustGenerate(gen.Medium(seed))
		d = WithJitteredCorners(t, d, 3, seed)
		timer := cppr.NewTimer(d)
		requireCornersDiffer(t, timer, d.NumCorners())
		for c := model.Corner(0); int(c) < d.NumCorners(); c++ {
			for _, mode := range model.Modes {
				for _, k := range []int{1, 25} {
					CrossCheck(t, timer, cppr.Query{K: k, Mode: mode, Corners: cppr.CornerBit(c)}, algos...)
				}
				CheckEndpointSweep(t, timer, cppr.Query{Mode: mode, Corners: cppr.CornerBit(c)})
			}
		}
		for _, mode := range model.Modes {
			CheckEndpointSweep(t, timer, cppr.Query{Mode: mode, Corners: cppr.CornerAll})
		}
	}
}

// TestBatteryTinyDesignsVsBruteForce adds exhaustive enumeration to the
// comparison set on oracle-sized designs, where every path can be
// listed.
func TestBatteryTinyDesignsVsBruteForce(t *testing.T) {
	withBrute := append([]cppr.Algorithm{cppr.AlgoBruteForce}, algos...)
	for _, seed := range []int64{70, 71, 72, 73} {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		d = WithJitteredCorners(t, d, 2, seed)
		timer := cppr.NewTimer(d)
		for c := model.Corner(0); int(c) < d.NumCorners(); c++ {
			for _, mode := range model.Modes {
				for _, k := range []int{1, 5, 50} {
					CrossCheck(t, timer, cppr.Query{K: k, Mode: mode, Corners: cppr.CornerBit(c)}, withBrute...)
				}
			}
		}
	}
}

// TestBatteryNetlistFrontEnd runs the battery on designs that went
// through the full front-end flow — random gate-level netlists
// elaborated against per-corner derated libraries — so the differential
// net also covers ElaborateCorners' arc binding.
func TestBatteryNetlistFrontEnd(t *testing.T) {
	fast := *liberty.Demo()
	fast.DerateEarly, fast.DerateLate = 0.78, 1.02
	slow := *liberty.Demo()
	slow.DerateEarly, slow.DerateLate = 0.97, 1.31
	for _, seed := range []int64{9, 10} {
		n := netlist.Random(netlist.RandomSpec{
			Seed: seed, FFs: 24, Gates: 90, ClockLevels: 3, Period: model.Ns(4),
		})
		d, err := n.ElaborateCorners(netlist.DefaultWireModel(),
			netlist.CornerLib{Name: "typ", Lib: liberty.Demo()},
			netlist.CornerLib{Name: "fast", Lib: &fast},
			netlist.CornerLib{Name: "slow", Lib: &slow},
		)
		if err != nil {
			t.Fatal(err)
		}
		if d.NumCorners() != 3 {
			t.Fatalf("elaborated %d corners, want 3", d.NumCorners())
		}
		timer := cppr.NewTimer(d)
		for c := model.Corner(0); int(c) < d.NumCorners(); c++ {
			for _, mode := range model.Modes {
				CrossCheck(t, timer, cppr.Query{K: 10, Mode: mode, Corners: cppr.CornerBit(c)}, algos...)
			}
		}
	}
}
