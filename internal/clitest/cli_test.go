// Package clitest builds the command-line tools and exercises them end
// to end: generate a design file, time it, and run a small experiment —
// the workflows README.md promises.
package clitest

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the three binaries once into a temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI e2e tests build binaries; skipped in -short")
	}
	dir := t.TempDir()
	for _, tool := range []string{"gendesign", "cpprtimer", "cpprbench"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "fastcppr/cmd/"+tool)
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// internal/clitest -> repo root
	return filepath.Dir(filepath.Dir(wd))
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestEndToEndFlow(t *testing.T) {
	bins := buildTools(t)
	design := filepath.Join(t.TempDir(), "demo.cppr")

	// 1. Generate a design file.
	out := run(t, filepath.Join(bins, "gendesign"),
		"-preset", "vga_lcdv2", "-scale", "0.004", "-o", design, "-stats")
	if !strings.Contains(out, "design vga_lcdv2") {
		t.Fatalf("gendesign stats missing: %q", out)
	}
	if fi, err := os.Stat(design); err != nil || fi.Size() == 0 {
		t.Fatalf("design file not written: %v", err)
	}

	// 2. Run the timer on it, both modes, summary table.
	out = run(t, filepath.Join(bins, "cpprtimer"),
		"-i", design, "-k", "5", "-mode", "both", "-summary")
	for _, want := range []string{"== setup:", "== hold:", "slack", "capture"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cpprtimer output missing %q in:\n%s", want, out)
		}
	}

	// 3. JSON output parses and carries 5 ranked paths.
	out = run(t, filepath.Join(bins, "cpprtimer"),
		"-i", design, "-k", "5", "-mode", "setup", "-json")
	var rep struct {
		Design string `json:"design"`
		Mode   string `json:"mode"`
		Paths  []struct {
			Rank    int   `json:"rank"`
			SlackPs int64 `json:"slack_ps"`
		} `json:"paths"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("cpprtimer -json produced invalid JSON: %v\n%s", err, out)
	}
	if rep.Mode != "setup" || len(rep.Paths) != 5 || rep.Paths[0].Rank != 1 {
		t.Fatalf("unexpected JSON report: %+v", rep)
	}

	// 4. Algorithms agree through the CLI.
	ref := run(t, filepath.Join(bins, "cpprtimer"), "-i", design, "-k", "3", "-summary")
	for _, algo := range []string{"pairwise", "blockwise", "bnb"} {
		got := run(t, filepath.Join(bins, "cpprtimer"), "-i", design, "-k", "3", "-summary", "-algo", algo)
		// Compare the slack column rows (lines starting with a rank).
		if extractSlacks(ref) != extractSlacks(got) {
			t.Fatalf("algorithm %s disagrees via CLI:\nref:\n%s\ngot:\n%s", algo, ref, got)
		}
	}
}

// extractSlacks pulls the slack column out of a summary table.
func extractSlacks(out string) string {
	var sb strings.Builder
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) > 2 && (f[0] >= "1" && f[0] <= "9") && strings.HasSuffix(f[1], "ns") {
			sb.WriteString(f[1])
			sb.WriteString(" ")
		}
	}
	return sb.String()
}

func TestCpprbenchAccuracySmoke(t *testing.T) {
	bins := buildTools(t)
	out := run(t, filepath.Join(bins, "cpprbench"), "-accuracy")
	if !strings.Contains(out, "Accuracy audit") || !strings.Contains(out, "OK") {
		t.Fatalf("cpprbench -accuracy output:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("accuracy audit failed:\n%s", out)
	}
}

// exitStatus extracts the process exit code from a Run/Wait error.
func exitStatus(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("command did not run: %v", err)
	}
	return ee.ExitCode()
}

// TestTimeoutExitCode exercises the resilience contract end to end: an
// unmeetable -timeout must abort the analysis promptly with exit code 3
// (the taxonomy's canceled/deadline class), not hang or crash.
func TestTimeoutExitCode(t *testing.T) {
	bins := buildTools(t)
	design := filepath.Join(t.TempDir(), "demo.cppr")
	run(t, filepath.Join(bins, "gendesign"),
		"-preset", "vga_lcdv2", "-scale", "0.004", "-o", design)

	cmd := exec.Command(filepath.Join(bins, "cpprtimer"),
		"-i", design, "-k", "5", "-timeout", "1ns")
	out, err := cmd.CombinedOutput()
	if code := exitStatus(t, err); code != 3 {
		t.Fatalf("cpprtimer -timeout 1ns: exit code %d, want 3\n%s", code, out)
	}

	cmd = exec.Command(filepath.Join(bins, "cpprbench"),
		"-accuracy", "-timeout", "1ns")
	out, err = cmd.CombinedOutput()
	if code := exitStatus(t, err); code != 3 {
		t.Fatalf("cpprbench -timeout 1ns: exit code %d, want 3\n%s", code, out)
	}
}

// TestDegradedExitCode checks the budget-exhaustion class: a tiny search
// budget yields a partial report, a warning, and exit code 4.
func TestDegradedExitCode(t *testing.T) {
	bins := buildTools(t)
	design := filepath.Join(t.TempDir(), "demo.cppr")
	run(t, filepath.Join(bins, "gendesign"),
		"-preset", "vga_lcdv2", "-scale", "0.004", "-o", design)

	cmd := exec.Command(filepath.Join(bins, "cpprtimer"),
		"-i", design, "-k", "50", "-algo", "bnb", "-maxpops", "3", "-summary")
	out, err := cmd.CombinedOutput()
	if code := exitStatus(t, err); code != 4 {
		t.Fatalf("budget-starved cpprtimer: exit code %d, want 4\n%s", code, out)
	}
	if !strings.Contains(string(out), "partial") {
		t.Fatalf("degraded run printed no warning:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	bins := buildTools(t)
	// Missing input file must exit non-zero.
	cmd := exec.Command(filepath.Join(bins, "cpprtimer"), "-i", "/nonexistent.cppr")
	if err := cmd.Run(); err == nil {
		t.Fatal("cpprtimer accepted a missing file")
	}
	cmd = exec.Command(filepath.Join(bins, "gendesign"), "-preset", "bogus")
	if err := cmd.Run(); err == nil {
		t.Fatal("gendesign accepted an unknown preset")
	}
	cmd = exec.Command(filepath.Join(bins, "cpprbench"))
	if err := cmd.Run(); err == nil {
		t.Fatal("cpprbench with no selection must fail")
	}
}
