// Package report provides the text-table rendering and runtime/memory
// measurement used by the benchmark harness that regenerates the paper's
// tables and figures.
package report

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; extra or missing cells are tolerated.
func (t *Table) Add(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Addf appends a row of formatted cells: each argument is rendered with
// %v unless it is already a string.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		if s, ok := c.(string); ok {
			row[i] = s
		} else {
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	rule := make([]string, cols)
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	writeRow(rule)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Measurement is the outcome of one measured run.
type Measurement struct {
	// Wall is the elapsed wall-clock time.
	Wall time.Duration
	// AllocBytes is the total heap allocation performed by the run
	// (monotonic; unaffected by GC).
	AllocBytes uint64
	// PeakBytes is the peak live heap observed by a background sampler
	// during the run, relative to the pre-run baseline. It approximates
	// the "memory" columns of the paper's Table IV.
	PeakBytes uint64
}

// Measure runs f once and reports wall time, total allocation, and
// sampled peak heap growth.
func Measure(f func()) Measurement {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var peak atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak.Load() {
					peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()

	start := time.Now()
	f()
	wall := time.Since(start)
	close(stop)
	wg.Wait()

	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	m := Measurement{Wall: wall, AllocBytes: after.TotalAlloc - before.TotalAlloc}
	if p := peak.Load(); p > before.HeapAlloc {
		m.PeakBytes = p - before.HeapAlloc
	}
	if after.HeapAlloc > before.HeapAlloc {
		if d := after.HeapAlloc - before.HeapAlloc; d > m.PeakBytes {
			m.PeakBytes = d
		}
	}
	return m
}

// Seconds renders a duration as seconds with millisecond precision.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// MB renders a byte count in mebibytes.
func MB(b uint64) string {
	return fmt.Sprintf("%.1f", float64(b)/(1<<20))
}

// Ratio renders a/b with two decimals, or "-" when b is zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", a/b)
}
