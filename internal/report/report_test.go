package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.Add("alpha", "1")
	tb.Addf("beta", 22.5)
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "-----") {
		t.Errorf("rule line = %q", lines[2])
	}
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "22.5") {
		t.Errorf("missing cells in\n%s", s)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	// Columns aligned: "alpha" and "beta " share a column width.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "22.5") {
		t.Errorf("columns misaligned:\n%s", s)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a")
	tb.Add("x", "extra", "cells")
	tb.Add()
	s := tb.String()
	if !strings.Contains(s, "extra") {
		t.Errorf("ragged row dropped: %q", s)
	}
}

func TestMeasure(t *testing.T) {
	m := Measure(func() {
		buf := make([][]byte, 0, 64)
		for i := 0; i < 64; i++ {
			buf = append(buf, make([]byte, 1<<20))
		}
		time.Sleep(10 * time.Millisecond)
		_ = buf
	})
	if m.Wall < 10*time.Millisecond {
		t.Errorf("Wall = %v, want >= 10ms", m.Wall)
	}
	if m.AllocBytes < 60<<20 {
		t.Errorf("AllocBytes = %d, want >= 60MiB", m.AllocBytes)
	}
	if m.PeakBytes < 30<<20 {
		t.Errorf("PeakBytes = %d, want >= 30MiB", m.PeakBytes)
	}
}

func TestFormatters(t *testing.T) {
	if got := Seconds(1500 * time.Millisecond); got != "1.500" {
		t.Errorf("Seconds = %q", got)
	}
	if got := MB(3 << 20); got != "3.0" {
		t.Errorf("MB = %q", got)
	}
	if got := Ratio(3, 2); got != "1.50" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(3, 0); got != "-" {
		t.Errorf("Ratio/0 = %q", got)
	}
}
