package serve

import (
	"context"
	"time"

	"fastcppr/cppr"
	"fastcppr/internal/faultinject"
	"fastcppr/internal/qerr"
)

// request is one query waiting in a batcher for its flush.
type request struct {
	q   cppr.Query
	enq time.Time
	// reply is buffered (capacity 1) so a flush never blocks on a
	// submitter that gave up waiting — the abandoned reply parks in the
	// buffer and is collected with the request.
	reply chan reply
}

// reply is the batcher's answer to one request, carrying the timing
// breakdown of the shared execution that served it.
type reply struct {
	res cppr.BatchResult
	// batchSize is the number of requests flushed together with this
	// one; > 1 means the request was coalesced.
	batchSize int
	// wait is the time the request spent queued in the batcher before
	// its flush dispatched.
	wait time.Duration
	// exec is the wall time of the ReportBatch call that served it.
	exec time.Duration
}

// batcher funnels concurrent single queries into Timer.ReportBatch: a
// collector goroutine gathers requests until the batch is full
// (maxBatch) or the oldest request has waited maxWait, then dispatches
// the batch on its own goroutine so collection continues during
// execution. Coalescing happens inside ReportBatch itself — identical
// and K-mergeable queries in one flush share an execution unit — so the
// batcher's job is purely to get concurrent requests into the same
// call.
//
// Lifecycle invariant: every submitter holds a registry Handle for the
// duration of submit, and stop() runs only after the last Handle
// releases, so no submit can race a stop.
type batcher struct {
	timer    *cppr.Timer
	maxBatch int
	maxWait  time.Duration
	in       chan *request
	stopped  chan struct{}
	done     chan struct{} // collector exited; in-flight flushes tracked separately
}

func newBatcher(timer *cppr.Timer, maxBatch int, maxWait time.Duration) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &batcher{
		timer:    timer,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		in:       make(chan *request, 4*maxBatch),
		stopped:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.collect()
	return b
}

// stop terminates the collector and waits for it to exit. Per the
// lifecycle invariant there are no queued or in-flight requests by the
// time stop is called.
func (b *batcher) stop() {
	close(b.stopped)
	<-b.done
}

// submit enqueues q and waits for its reply or the context. On context
// expiry the request is abandoned: the flush still runs it (bounded by
// the query's own Timeout) and the reply is dropped into the buffered
// channel.
func (b *batcher) submit(ctx context.Context, q cppr.Query) (reply, error) {
	faultinject.Fire("serve.batcher.enqueue")
	r := &request{q: q, enq: time.Now(), reply: make(chan reply, 1)}
	select {
	case b.in <- r:
	case <-ctx.Done():
		return reply{}, qerr.FromContext(ctx)
	case <-b.stopped:
		return reply{}, qerr.ShuttingDown("design batcher stopped")
	}
	select {
	case rep := <-r.reply:
		return rep, nil
	case <-ctx.Done():
		return reply{}, qerr.FromContext(ctx)
	}
}

// collect is the batcher's collector loop: one batch per iteration.
func (b *batcher) collect() {
	defer close(b.done)
	for {
		var first *request
		select {
		case first = <-b.in:
		case <-b.stopped:
			return
		}
		batch := []*request{first}
		if b.maxBatch > 1 {
			deadline := time.NewTimer(b.maxWait)
		fill:
			for len(batch) < b.maxBatch {
				select {
				case r := <-b.in:
					batch = append(batch, r)
				case <-deadline.C:
					break fill
				case <-b.stopped:
					break fill
				}
			}
			deadline.Stop()
		}
		// Dispatch on a fresh goroutine so the collector keeps
		// coalescing the next batch while this one executes.
		go b.flush(batch)
	}
}

// flush runs one batch through ReportBatch and delivers every reply.
// A panic in the dispatch path (fault injection, engine invariant) is
// contained here: every request in the batch gets an *InternalError
// reply instead of the server losing its collector.
func (b *batcher) flush(batch []*request) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			err := qerr.FromPanic("serve.batcher.flush", r)
			for _, req := range batch {
				req.reply <- reply{
					res:       cppr.BatchResult{Err: err},
					batchSize: len(batch),
					wait:      start.Sub(req.enq),
					exec:      time.Since(start),
				}
			}
		}
	}()
	faultinject.Fire("serve.batcher.flush")
	queries := make([]cppr.Query, len(batch))
	for i, req := range batch {
		queries[i] = req.q
	}
	// The batch context is deliberately background: each request's
	// deadline rides in as Query.Timeout, bounding its own execution
	// unit inside ReportBatch without cutting short its batchmates.
	results, err := b.timer.ReportBatch(context.Background(), queries)
	exec := time.Since(start)
	for i, req := range batch {
		res := results[i]
		if res.Err == nil && err != nil {
			res.Err = err
		}
		req.reply <- reply{res: res, batchSize: len(batch), wait: start.Sub(req.enq), exec: exec}
	}
}
