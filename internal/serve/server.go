package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/internal/qerr"
	"fastcppr/model"
	"fastcppr/tau"
)

// Config parameterises a Server. The zero value gets sane defaults from
// withDefaults.
type Config struct {
	// MaxBatch is the coalescing batcher's flush size: a design's batch
	// dispatches as soon as this many requests are waiting. Default 16;
	// 1 disables coalescing (every request is its own batch).
	MaxBatch int
	// MaxWait is the batcher's flush age: a batch dispatches once its
	// oldest request has waited this long, full or not. Default 2ms.
	MaxWait time.Duration
	// MaxConcurrent bounds requests in service simultaneously (the
	// admission semaphore). Default 2×GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for admission; one more is shed
	// with ErrOverloaded and a Retry-After. Default 4×MaxConcurrent.
	MaxQueue int
	// MaxDesigns bounds the registry. Default 64.
	MaxDesigns int
	// DefaultTimeout is the per-query deadline applied when a request
	// does not carry its own timeout_ms. Default 30s; negative disables.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested per-query deadline. Default 5m.
	MaxTimeout time.Duration
	// Parallelism is installed on every loaded design's Timer (see
	// cppr.Timer.SetParallelism). The zero value keeps the Timer default:
	// all cores for both the batch executor and intra-query work.
	Parallelism cppr.Parallelism
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait == 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.MaxDesigns <= 0 {
		c.MaxDesigns = 64
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.DefaultTimeout < 0 {
		c.DefaultTimeout = 0
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	return c
}

// Server is the HTTP front end: registry + admission + per-design
// batchers behind a JSON API.
//
//	POST   /v1/designs        load a design (preset or inline tau text)
//	GET    /v1/designs        list loaded designs
//	DELETE /v1/designs/{id}   evict (drains in-flight queries first)
//	POST   /v1/designs/{id}/arc  what-if edit: set one arc's delay
//	POST   /v1/query          run one query through the batcher
//	GET    /stats             JSON counters (server + per design)
//	GET    /metrics           flat CSV-friendly metric lines
//	GET    /healthz           liveness (503 while draining)
type Server struct {
	cfg Config
	reg *Registry
	adm *admission
	mux *http.ServeMux

	start    time.Time
	draining atomic.Bool
	// Server-level served-traffic counters. Sheds that happen before the
	// design is resolved cannot be attributed to a Timer, so the server
	// keeps its own totals alongside the per-design TimerStats.
	admitted atomic.Int64
	shed     atomic.Int64
}

// New builds a Server. Call Handler to mount it and Close to drain it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		reg:   NewRegistry(cfg),
		adm:   newAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/designs", s.contain(s.handleLoad))
	s.mux.HandleFunc("GET /v1/designs", s.contain(s.handleList))
	s.mux.HandleFunc("DELETE /v1/designs/{id}", s.contain(s.handleEvict))
	s.mux.HandleFunc("POST /v1/designs/{id}/arc", s.contain(s.handleEdit))
	s.mux.HandleFunc("POST /v1/query", s.contain(s.handleQuery))
	s.mux.HandleFunc("GET /stats", s.contain(s.handleStats))
	s.mux.HandleFunc("GET /metrics", s.contain(s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.contain(s.handleHealthz))
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the design table (used by preloading and tests).
func (s *Server) Registry() *Registry { return s.reg }

// Close drains the server: new queries are refused with
// ErrShuttingDown, every design is evicted and its in-flight queries
// drained, bounded by deadline (zero = wait forever). It reports
// whether the drain completed in time. Safe to call once; pair it with
// http.Server.Shutdown for the listener side.
func (s *Server) Close(deadline time.Duration) bool {
	s.draining.Store(true)
	s.adm.close()
	return s.reg.Close(deadline)
}

// contain wraps a handler with per-request panic containment: a panic
// anywhere below (fault injection, handler bug, engine invariant that
// escaped the engine's own recovery) answers 500 with the error
// taxonomy's internal kind instead of killing the process.
func (s *Server) contain(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.writeError(w, qerr.FromPanic("serve.request", rec))
			}
		}()
		h(w, r)
	}
}

// errorBody is the JSON error envelope. Kind is stable and documented;
// Error is human-readable detail.
type errorBody struct {
	Kind  string `json:"kind"`
	Error string `json:"error"`
}

// errKind maps a taxonomy error to its wire kind and HTTP status.
func errKind(err error) (kind string, status int) {
	var ie *cppr.InternalError
	switch {
	case errors.Is(err, ErrUnknownDesign):
		return "unknown_design", http.StatusNotFound
	case errors.Is(err, qerr.ErrOverloaded):
		return "overloaded", http.StatusTooManyRequests
	case errors.Is(err, qerr.ErrShuttingDown):
		return "shutting_down", http.StatusServiceUnavailable
	case errors.Is(err, qerr.ErrDeadlineExceeded):
		return "deadline_exceeded", http.StatusGatewayTimeout
	case errors.Is(err, qerr.ErrCanceled):
		return "canceled", 499 // client closed request (nginx convention)
	case errors.Is(err, qerr.ErrBudgetExhausted):
		return "budget_exhausted", http.StatusUnprocessableEntity
	case errors.As(err, &ie):
		return "internal", http.StatusInternalServerError
	case errors.Is(err, qerr.ErrInvalidQuery):
		return "invalid", http.StatusBadRequest
	default:
		return "error", http.StatusBadRequest
	}
}

// writeError answers with the taxonomy mapping; overload and shutdown
// refusals carry a Retry-After so well-behaved clients back off instead
// of hammering.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	kind, status := errKind(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.adm.retryAfter().Seconds())))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Kind: kind, Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// LoadRequest loads a design into the registry: either a named preset
// (scaled stand-in for a paper benchmark) or inline tau-format text.
type LoadRequest struct {
	ID string `json:"id"`
	// Preset names a gen preset (see gen.PresetNames); Scale sizes it
	// (0 = the laptop-class default 0.02).
	Preset string  `json:"preset,omitempty"`
	Scale  float64 `json:"scale,omitempty"`
	// Corners > 1 extends the design with derated extra corners so
	// multi-corner queries have something to fan out over.
	Corners int `json:"corners,omitempty"`
	// Tau, when set instead of Preset, is the design file text.
	Tau string `json:"tau,omitempty"`
}

// DesignInfo describes one loaded design.
type DesignInfo struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Pins    int    `json:"pins"`
	Arcs    int    `json:"arcs"`
	FFs     int    `json:"ffs"`
	Corners int    `json:"corners"`
	// InFlight is the number of queries currently holding the design.
	InFlight int    `json:"in_flight"`
	LoadedAt string `json:"loaded_at"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, qerr.ShuttingDown("draining; not loading designs"))
		return
	}
	var req LoadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, qerr.Invalid("bad load request: %v", err))
		return
	}
	d, err := BuildDesign(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.reg.Load(req.ID, d); err != nil {
		s.writeError(w, err)
		return
	}
	e, _ := s.reg.get(req.ID)
	writeJSON(w, http.StatusCreated, designInfo(req.ID, e))
}

// BuildDesign materialises a LoadRequest's design (exported for the
// CLI preload path).
func BuildDesign(req LoadRequest) (*model.Design, error) {
	var d *model.Design
	switch {
	case req.Preset != "" && req.Tau != "":
		return nil, qerr.Invalid("preset and tau are mutually exclusive")
	case req.Preset != "":
		scale := req.Scale
		if scale == 0 {
			scale = 0.02
		}
		spec, err := gen.PresetSpec(req.Preset, scale)
		if err != nil {
			return nil, qerr.Invalid("bad preset: %v", err)
		}
		d, err = gen.Generate(spec)
		if err != nil {
			return nil, qerr.Invalid("generate: %v", err)
		}
	case req.Tau != "":
		var err error
		d, err = tau.Read(strings.NewReader(req.Tau))
		if err != nil {
			return nil, qerr.Invalid("parse tau: %v", err)
		}
	default:
		return nil, qerr.Invalid("load request needs preset or tau")
	}
	if req.Corners < 0 || req.Corners > model.MaxCorners {
		return nil, qerr.Invalid("corners %d out of range [0, %d]", req.Corners, model.MaxCorners)
	}
	// Extra corners are symmetric derates around the base corner: the
	// standard fast/slow sweep a signoff flow queries together.
	for i := 1; i < req.Corners; i++ {
		spread := 0.05 * float64(i)
		var err error
		d, _, err = d.WithScaledCorner(fmt.Sprintf("c%d", i), 1-spread, 1+spread)
		if err != nil {
			return nil, qerr.Invalid("corner %d: %v", i, err)
		}
	}
	return d, nil
}

func designInfo(id string, e *entry) DesignInfo {
	d := e.timer.Design()
	return DesignInfo{
		ID:       id,
		Name:     d.Name,
		Pins:     d.NumPins(),
		Arcs:     d.NumArcs(),
		FFs:      d.NumFFs(),
		Corners:  d.NumCorners(),
		InFlight: e.refCount(),
		LoadedAt: e.loadedAt.UTC().Format(time.RFC3339),
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ids := s.reg.IDs()
	sort.Strings(ids)
	out := make([]DesignInfo, 0, len(ids))
	for _, id := range ids {
		if e, ok := s.reg.get(id); ok {
			out = append(out, designInfo(id, e))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	drained, err := s.reg.Evict(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Eviction always drains; the only question is whether this request
	// waits to observe it. The default waits (bounded by the request
	// context); ?wait=0 returns 202 immediately.
	if r.URL.Query().Get("wait") == "0" {
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "draining"})
		return
	}
	select {
	case <-drained:
		writeJSON(w, http.StatusOK, map[string]string{"status": "evicted"})
	case <-r.Context().Done():
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "draining"})
	}
}

// EditRequest is a what-if arc-delay edit on a loaded design.
type EditRequest struct {
	From    string `json:"from"`
	To      string `json:"to"`
	EarlyPs int64  `json:"early_ps"`
	LatePs  int64  `json:"late_ps"`
	Corner  int    `json:"corner,omitempty"`
}

func (s *Server) handleEdit(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req EditRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, qerr.Invalid("bad edit request: %v", err))
		return
	}
	h, err := s.reg.Acquire(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer h.Release()
	d := h.Timer().Design()
	from, ok := d.PinByName(req.From)
	if !ok {
		s.writeError(w, qerr.Invalid("unknown pin %q", req.From))
		return
	}
	to, ok := d.PinByName(req.To)
	if !ok {
		s.writeError(w, qerr.Invalid("unknown pin %q", req.To))
		return
	}
	win := model.Window{Early: model.Ps(req.EarlyPs), Late: model.Ps(req.LatePs)}
	if err := h.Timer().SetArcDelayAt(model.Corner(req.Corner), from, to, win); err != nil {
		s.writeError(w, qerr.Invalid("edit: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "edited"})
}

// QueryRequest is one top-k query against a loaded design.
type QueryRequest struct {
	Design string `json:"design"`
	K      int    `json:"k"`
	// Mode is "setup" (default) or "hold".
	Mode string `json:"mode,omitempty"`
	// Algorithm is a cppr.ParseAlgorithm name; default "lca".
	Algorithm string `json:"algorithm,omitempty"`
	// Corners selects delay corners: "" (base), "all", or a
	// comma-separated corner-index list like "0,2".
	Corners string `json:"corners,omitempty"`
	// TimeoutMs overrides the server's default per-query deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// NoCoalesce bypasses the batcher: the query runs alone via
	// Timer.Run (benchmark control, and an escape hatch for
	// latency-critical singletons).
	NoCoalesce bool `json:"no_coalesce,omitempty"`
	// NoCache bypasses the timer's cross-call result caches so the
	// query does real work (benchmark control; see cppr.Query.NoCache).
	NoCache    bool `json:"no_cache,omitempty"`
	IncludePOs bool `json:"include_pos,omitempty"`
	// CRPR selects the credit semantics: "" (the design's SDC default),
	// "same_pin" or "same_transition".
	CRPR string `json:"crpr,omitempty"`
}

// TimingBreakdown is the per-request latency decomposition returned
// with every query response.
type TimingBreakdown struct {
	// AdmissionUs is time spent waiting for an admission slot.
	AdmissionUs int64 `json:"admission_us"`
	// BatchWaitUs is time spent in the batcher before its flush.
	BatchWaitUs int64 `json:"batch_wait_us"`
	// ExecUs is the wall time of the shared execution that served the
	// request.
	ExecUs int64 `json:"exec_us"`
	// TotalUs is end-to-end handler time.
	TotalUs int64 `json:"total_us"`
	// BatchSize is the number of requests flushed together; > 1 means
	// the request shared its ReportBatch call.
	BatchSize int `json:"batch_size"`
	// Coalesced reports that the request was flushed with at least one
	// other request.
	Coalesced bool `json:"coalesced"`
}

// QueryResponse answers a query.
type QueryResponse struct {
	Design string          `json:"design"`
	Report cppr.ReportJSON `json:"report"`
	// Degraded mirrors Report.Degraded: a budgeted search exhausted its
	// budget and the paths are an (individually exact) partial answer.
	Degraded bool            `json:"degraded,omitempty"`
	Timing   TimingBreakdown `json:"timing"`
}

// parseQuery translates the wire request into an engine query.
func (s *Server) parseQuery(req QueryRequest) (cppr.Query, error) {
	q := cppr.Query{K: req.K, IncludePOs: req.IncludePOs, NoCache: req.NoCache}
	switch req.Mode {
	case "", "setup":
		q.Mode = model.Setup
	case "hold":
		q.Mode = model.Hold
	default:
		return q, qerr.Invalid("bad mode %q (want setup|hold)", req.Mode)
	}
	algo, err := cppr.ParseAlgorithm(req.Algorithm)
	if err != nil {
		return q, qerr.Invalid("%v", err)
	}
	q.Algorithm = algo
	switch req.Corners {
	case "":
	case "all":
		q.Corners = cppr.CornerAll
	default:
		for _, part := range strings.Split(req.Corners, ",") {
			var c int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &c); err != nil || c < 0 || c >= model.MaxCorners {
				return q, qerr.Invalid("bad corners entry %q", part)
			}
			q.Corners |= cppr.CornerBit(model.Corner(c))
		}
	}
	if req.CRPR != "" {
		m, err := model.ParseCRPRMode(req.CRPR)
		if err != nil {
			return q, qerr.Invalid("%v", err)
		}
		if m == model.CRPRSameTransition {
			q.CRPR = cppr.CRPRSameTransition
		} else {
			q.CRPR = cppr.CRPRSamePin
		}
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs != 0 {
		if req.TimeoutMs < 0 {
			return q, qerr.Invalid("negative timeout_ms %d", req.TimeoutMs)
		}
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	q.Timeout = timeout
	return q, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, qerr.Invalid("bad query request: %v", err))
		return
	}
	q, err := s.parseQuery(req)
	if err != nil {
		s.writeError(w, err)
		return
	}

	// Admission gates everything downstream: a shed request never costs
	// a registry ref, a batcher slot, or engine work.
	release, queued, err := s.adm.admit(r.Context())
	if err != nil {
		s.shed.Add(1)
		// Attribute the shed to the design's timer when it resolves;
		// pre-admission sheds on unknown designs stay server-level only.
		if e, ok := s.reg.get(req.Design); ok {
			e.timer.NoteServed(0, 1)
		}
		s.writeError(w, err)
		return
	}
	defer release()

	h, err := s.reg.Acquire(req.Design)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer h.Release()
	s.admitted.Add(1)
	h.Timer().NoteServed(1, 0)

	// The request context carries the same budget as Query.Timeout so an
	// abandoned wait and an engine-level deadline agree.
	ctx := r.Context()
	if q.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.Timeout+s.cfg.MaxWait)
		defer cancel()
	}

	var rep cppr.Report
	var timing TimingBreakdown
	if req.NoCoalesce {
		rep, err = h.Timer().Run(ctx, q)
		if err != nil {
			s.writeError(w, err)
			return
		}
		timing = TimingBreakdown{ExecUs: rep.Elapsed.Microseconds(), BatchSize: 1}
	} else {
		out, serr := h.e.batcher.submit(ctx, q)
		if serr != nil {
			s.writeError(w, serr)
			return
		}
		if out.res.Err != nil {
			s.writeError(w, out.res.Err)
			return
		}
		rep = out.res.Report
		timing = TimingBreakdown{
			BatchWaitUs: out.wait.Microseconds(),
			ExecUs:      out.exec.Microseconds(),
			BatchSize:   out.batchSize,
			Coalesced:   out.batchSize > 1,
		}
	}
	timing.AdmissionUs = queued.Microseconds()
	timing.TotalUs = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, QueryResponse{
		Design:   req.Design,
		Report:   rep.JSON(h.Timer().Design(), q.Mode, q.K),
		Degraded: rep.Degraded,
		Timing:   timing,
	})
}

// ServerStats is the /stats payload.
type ServerStats struct {
	UptimeS float64 `json:"uptime_s"`
	// Admitted/Shed are server totals (sheds include requests refused
	// before their design resolved).
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
	// Waiting/InService are the admission controller's instantaneous
	// queue depth and busy-slot count.
	Waiting   int64 `json:"waiting"`
	InService int   `json:"in_service"`
	Draining  bool  `json:"draining"`
	Designs   int   `json:"designs"`

	// PerDesign maps design id to its timer's counters.
	PerDesign map[string]cppr.TimerStats `json:"per_design"`
}

func (s *Server) stats() ServerStats {
	waiting, inService := s.adm.depth()
	st := ServerStats{
		UptimeS:   time.Since(s.start).Seconds(),
		Admitted:  s.admitted.Load(),
		Shed:      s.shed.Load(),
		Waiting:   waiting,
		InService: inService,
		Draining:  s.draining.Load(),
		PerDesign: map[string]cppr.TimerStats{},
	}
	for _, id := range s.reg.IDs() {
		if e, ok := s.reg.get(id); ok {
			st.PerDesign[id] = e.timer.Stats()
		}
	}
	st.Designs = len(st.PerDesign)
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}

// handleMetrics renders the counters as flat CSV-friendly lines:
// metric,design,value — one fact per line, greppable and loadable into
// a spreadsheet without a parser.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var sb strings.Builder
	sb.WriteString("metric,design,value\n")
	row := func(metric, design string, v any) {
		fmt.Fprintf(&sb, "%s,%s,%v\n", metric, design, v)
	}
	row("uptime_seconds", "", fmt.Sprintf("%.3f", st.UptimeS))
	row("admitted_total", "", st.Admitted)
	row("shed_total", "", st.Shed)
	row("admission_waiting", "", st.Waiting)
	row("admission_in_service", "", st.InService)
	row("draining", "", boolToInt(st.Draining))
	row("designs_loaded", "", st.Designs)
	ids := make([]string, 0, len(st.PerDesign))
	for id := range st.PerDesign {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ts := st.PerDesign[id]
		row("served_admitted", id, ts.ServedAdmitted)
		row("served_shed", id, ts.ServedShed)
		row("served_degraded", id, ts.ServedDegraded)
		row("served_coalesced", id, ts.ServedCoalesced)
		row("edit_seq", id, ts.EditSeq)
		row("job_cache_hits", id, ts.JobCacheHits)
		row("job_cache_misses", id, ts.JobCacheMisses)
		row("job_cache_patched", id, ts.JobCachePatched)
		row("query_memo_hits", id, ts.QueryMemoHits)
		row("query_memo_misses", id, ts.QueryMemoMisses)
		row("forks", id, ts.Forks)
		row("whatif_candidates", id, ts.WhatIfCandidates)
		row("cone_skips", id, ts.ConeSkips)
		row("macromodels_extracted", id, ts.MacroExtracted)
		row("macromodel_reuses", id, ts.MacroReused)
		row("macromodel_reextracted", id, ts.MacroReextracted)
	}
	w.Write([]byte(sb.String()))
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ok\n"))
}
