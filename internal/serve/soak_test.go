package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastcppr/gen"
	"fastcppr/internal/faultinject"
	"fastcppr/model"
)

// TestChaosSoak hammers one server with concurrent loaders, evictors,
// queriers and editors while probabilistic faults fire at four serve
// sites (plus the engine worker). The invariants under chaos:
//
//   - every request terminates with a known status — 2xx, or a typed
//     4xx/5xx from the qerr taxonomy; never a hang, never an untyped 500
//   - the process survives injected panics (containment per request)
//   - shutdown drains cleanly afterwards
//   - no goroutines leak once the dust settles
//
// Run it under -race: the soak doubles as the data-race battery for the
// registry/batcher/admission interlock.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	// Probabilistic chaos at every serve site: rare panics on the
	// registry paths, latency + rare panics in the batcher. Determinism
	// comes from the hit-counter hash, so failures replay.
	var disarms []func()
	for site, f := range map[string]faultinject.Fault{
		"serve.registry.load":    {Panic: "chaos: load", Prob: 0.05},
		"serve.registry.acquire": {Panic: "chaos: acquire", Prob: 0.02},
		"serve.batcher.enqueue":  {Delay: 2 * time.Millisecond, Prob: 0.2},
		"serve.batcher.flush":    {Delay: 5 * time.Millisecond, Prob: 0.3},
		"core.worker":            {Delay: time.Millisecond, Prob: 0.05},
	} {
		disarms = append(disarms, faultinject.Arm(site, f))
	}
	disarmAll := func() {
		for _, d := range disarms {
			d()
		}
		disarms = nil
	}
	defer disarmAll()

	s := New(Config{
		MaxBatch:      4,
		MaxWait:       time.Millisecond,
		MaxConcurrent: 4,
		MaxQueue:      8,
		MaxDesigns:    8,
	})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Seed designs the queriers can always aim at; the loader/evictor
	// churns a disjoint id space so queries racing evictions happen via
	// the rotating ids too.
	designs := make(map[string]*model.Design)
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("seed%d", i)
		d := gen.MustGenerate(gen.Medium(int64(100 + i)))
		if err := s.Registry().Load(id, d); err != nil {
			t.Fatal(err)
		}
		designs[id] = d
	}

	const (
		duration = 2 * time.Second
		queriers = 8
		editors  = 2
		churners = 2
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served, typed atomic.Int64

	post := func(path string, body any) (int, []byte) {
		buf, _ := json.Marshal(body)
		resp, err := http.Post(hs.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			// Transport-level failure: tolerated only because httptest
			// closes keep-alive conns when handlers panic; the server
			// itself must still be alive (checked below).
			return 0, nil
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	checkStatus := func(code int, body []byte) {
		switch code {
		case 0: // transport error, see post()
			return
		case http.StatusOK, http.StatusCreated, http.StatusAccepted:
			served.Add(1)
		case http.StatusNotFound, http.StatusTooManyRequests,
			http.StatusBadRequest, http.StatusServiceUnavailable,
			http.StatusGatewayTimeout, http.StatusUnprocessableEntity,
			http.StatusInternalServerError, 499:
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Kind == "" {
				t.Errorf("status %d with untyped body: %s", code, body)
				return
			}
			typed.Add(1)
		default:
			t.Errorf("unexpected status %d: %s", code, body)
		}
	}

	// Queriers: random design (seed + rotating), random K, short
	// deadlines so batcher latency faults trip the 504 path too.
	for i := 0; i < queriers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("seed%d", rng.Intn(3))
				if rng.Intn(4) == 0 {
					id = fmt.Sprintf("churn%d", rng.Intn(2))
				}
				req := QueryRequest{Design: id, K: 1 + rng.Intn(8), TimeoutMs: 50}
				if rng.Intn(2) == 0 {
					req.Mode = "hold"
				}
				checkStatus(post("/v1/query", req))
			}
		}(i)
	}

	// Editors: journal arc edits on the seed designs while queries run.
	for i := 0; i < editors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("seed%d", rng.Intn(3))
				d := designs[id]
				a := d.Arcs[rng.Intn(len(d.Arcs))]
				code, body := post("/v1/designs/"+id+"/arc", EditRequest{
					From:    d.PinName(a.From),
					To:      d.PinName(a.To),
					EarlyPs: a.Delay.Early.Ps(),
					LatePs:  a.Delay.Late.Ps() + int64(rng.Intn(200)),
				})
				checkStatus(code, body)
			}
		}(i)
	}

	// Churners: load and evict rotating ids so Acquire races Evict and
	// teardown while queries are in flight against the same ids.
	for i := 0; i < churners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("churn%d", i)
			d := gen.MustGenerate(gen.Medium(int64(200 + i)))
			// Direct registry calls bypass the HTTP containment layer, so
			// the injected load panic must be absorbed here, like any
			// non-HTTP embedder of the registry would.
			load := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("injected: %v", r)
					}
				}()
				return s.Registry().Load(id, d)
			}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := load(); err != nil {
					continue
				}
				time.Sleep(time.Duration(1+n%3) * time.Millisecond)
				if ch, err := s.Registry().Evict(id); err == nil {
					<-ch
				}
			}
		}(i)
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("soak served nothing")
	}
	t.Logf("soak: %d served, %d typed refusals", served.Load(), typed.Load())

	// The server must still be fully functional after the chaos.
	disarmAll()
	code, body := post("/v1/query", QueryRequest{Design: "seed0", K: 5})
	if code != http.StatusOK {
		t.Fatalf("post-chaos query: status %d: %s", code, body)
	}

	if !s.Close(15 * time.Second) {
		t.Fatal("post-soak drain did not complete")
	}
	hs.Close()

	// Goroutine-leak check: everything the soak spawned (batcher
	// collectors, flushes, admission waiters, HTTP conns) must wind
	// down. Allow a grace period for conn teardown.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d now vs %d baseline\n%s", n, baseline, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestChaosSoakChurnPanics exercises the registry churn path where the
// injected panic fires inside Registry.Load itself (not behind HTTP
// containment): the loader must tolerate it and the registry must stay
// consistent.
func TestChaosSoakChurnPanics(t *testing.T) {
	disarm := faultinject.Arm("serve.registry.load", faultinject.Fault{Panic: "chaos", Prob: 0.5})
	defer disarm()

	s := New(Config{MaxBatch: 2, MaxWait: time.Millisecond})
	defer s.Close(5 * time.Second)
	d := gen.MustGenerate(gen.Medium(77))

	loaded := 0
	for i := 0; i < 40; i++ {
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("panic: %v", r)
				}
			}()
			return s.Registry().Load(fmt.Sprintf("d%d", i), d)
		}()
		if err == nil {
			loaded++
		}
	}
	if loaded == 0 {
		t.Fatal("no load survived 50% panic probability over 40 tries")
	}
	// Every surviving design must be queryable.
	for _, id := range s.Registry().IDs() {
		h, err := s.Registry().Acquire(id)
		if err != nil {
			t.Fatalf("acquire %s: %v", id, err)
		}
		h.Release()
	}
}
