package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/internal/faultinject"
	"fastcppr/model"
)

// newTestServer builds a Server plus an httptest front; the cleanup
// drains the server before closing the listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		if !s.Close(10 * time.Second) {
			t.Error("server did not drain within 10s")
		}
		hs.Close()
	})
	return s, hs
}

// loadMedium registers a generated medium design under id, bypassing
// the preset generator for speed.
func loadMedium(t *testing.T, s *Server, id string, seed int64) *model.Design {
	t.Helper()
	d := gen.MustGenerate(gen.Medium(seed))
	if err := s.Registry().Load(id, d); err != nil {
		t.Fatal(err)
	}
	return d
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func queryOK(t *testing.T, base string, req QueryRequest) QueryResponse {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	return qr
}

func TestLoadQueryListEvict(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	base := hs.URL

	// Load via the HTTP surface (smallest preset scale, plus corners).
	resp, body := postJSON(t, base+"/v1/designs", LoadRequest{
		ID: "d1", Preset: gen.PresetNames()[0], Scale: 0.003, Corners: 2,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load: status %d: %s", resp.StatusCode, body)
	}
	var info DesignInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Corners != 2 || info.FFs == 0 {
		t.Fatalf("load info = %+v", info)
	}

	// Duplicate id refuses.
	resp, _ = postJSON(t, base+"/v1/designs", LoadRequest{ID: "d1", Preset: gen.PresetNames()[0], Scale: 0.003})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate load: status %d, want 400", resp.StatusCode)
	}

	// Query, single- and multi-corner.
	qr := queryOK(t, base, QueryRequest{Design: "d1", K: 5})
	if len(qr.Report.Paths) == 0 {
		t.Fatal("query returned no paths")
	}
	if qr.Timing.TotalUs <= 0 || qr.Timing.BatchSize < 1 {
		t.Fatalf("timing breakdown not populated: %+v", qr.Timing)
	}
	qr = queryOK(t, base, QueryRequest{Design: "d1", K: 5, Corners: "all", Mode: "hold"})
	if len(qr.Report.Corners) != 2 {
		t.Fatalf("multi-corner report corners = %v, want 2 names", qr.Report.Corners)
	}

	// List.
	resp2, err := http.Get(base + "/v1/designs")
	if err != nil {
		t.Fatal(err)
	}
	listBody, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var list []DesignInfo
	if err := json.Unmarshal(listBody, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != "d1" {
		t.Fatalf("list = %+v", list)
	}

	// Evict (waits for drain), then the id is gone with 404.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/designs/d1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("evict: status %d, want 200", dresp.StatusCode)
	}
	resp, body = postJSON(t, base+"/v1/query", QueryRequest{Design: "d1", K: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query after evict: status %d, want 404: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Kind != "unknown_design" {
		t.Fatalf("error body = %s", body)
	}
}

// TestShedTypedErrorAndRetryAfter saturates a 1-slot, 1-queue server
// while a latency fault holds the in-service request, and checks the
// overload contract: shed requests get 429 + Retry-After + the typed
// "overloaded" kind, admitted requests complete, nothing hangs.
func TestShedTypedErrorAndRetryAfter(t *testing.T) {
	disarm := faultinject.Arm("serve.batcher.flush", faultinject.Fault{Delay: 50 * time.Millisecond})
	defer disarm()
	s, hs := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1, MaxBatch: 1})
	loadMedium(t, s, "d", 1)

	const burst = 12
	var wg sync.WaitGroup
	codes := make([]int, burst)
	kinds := make([]string, burst)
	retryAfter := make([]string, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, hs.URL+"/v1/query", QueryRequest{Design: "d", K: 5})
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
			var eb errorBody
			if json.Unmarshal(body, &eb) == nil {
				kinds[i] = eb.Kind
			}
		}(i)
	}
	wg.Wait()

	served, shed := 0, 0
	for i := range codes {
		switch codes[i] {
		case http.StatusOK:
			served++
		case http.StatusTooManyRequests:
			shed++
			if kinds[i] != "overloaded" {
				t.Errorf("shed request %d: kind %q, want overloaded", i, kinds[i])
			}
			if retryAfter[i] == "" {
				t.Errorf("shed request %d: missing Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, codes[i])
		}
	}
	if served == 0 || shed == 0 {
		t.Fatalf("burst: %d served, %d shed — want both > 0", served, shed)
	}
	st := s.stats()
	if st.Shed == 0 || st.Admitted == 0 {
		t.Fatalf("server counters not updated: %+v", st)
	}
	if ds := st.PerDesign["d"]; ds.ServedShed == 0 || ds.ServedAdmitted == 0 {
		t.Fatalf("per-design served counters not updated: %+v", ds)
	}
}

// TestDeadlinePropagation: a request deadline rides into the engine as
// a context; a held worker makes the query exceed it and the client
// gets the typed 504, while the server stays healthy for the next
// query.
func TestDeadlinePropagation(t *testing.T) {
	disarm := faultinject.Arm("core.worker", faultinject.Fault{Delay: 300 * time.Millisecond})
	s, hs := newTestServer(t, Config{MaxBatch: 1})
	loadMedium(t, s, "d", 2)

	resp, body := postJSON(t, hs.URL+"/v1/query", QueryRequest{Design: "d", K: 5, TimeoutMs: 30})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("starved query: status %d, want 504: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Kind != "deadline_exceeded" {
		t.Fatalf("error body = %s", body)
	}
	disarm()
	queryOK(t, hs.URL, QueryRequest{Design: "d", K: 5})
}

// TestPanicContainmentPerRequest: an injected panic in the registry
// path answers one request with a typed 500; the process (and the next
// request) survive.
func TestPanicContainmentPerRequest(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	loadMedium(t, s, "d", 3)

	disarm := faultinject.Arm("serve.registry.acquire", faultinject.Fault{Panic: "injected chaos"})
	resp, body := postJSON(t, hs.URL+"/v1/query", QueryRequest{Design: "d", K: 1})
	disarm()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned query: status %d, want 500: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Kind != "internal" {
		t.Fatalf("error body = %s", body)
	}
	queryOK(t, hs.URL, QueryRequest{Design: "d", K: 1})
}

// TestBatcherPanicContainment: a panic inside the flush path must
// answer every batched request with the internal kind — not kill the
// collector or strand the repliers.
func TestBatcherPanicContainment(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxBatch: 4, MaxWait: 20 * time.Millisecond})
	loadMedium(t, s, "d", 4)

	disarm := faultinject.Arm("serve.batcher.flush", faultinject.Fault{Panic: "flush chaos"})
	resp, body := postJSON(t, hs.URL+"/v1/query", QueryRequest{Design: "d", K: 1})
	disarm()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, body)
	}
	queryOK(t, hs.URL, QueryRequest{Design: "d", K: 1})
}

// TestGracefulShutdown: Close refuses new queries with the typed 503,
// drains in-flight ones to completion, and flips healthz.
func TestGracefulShutdown(t *testing.T) {
	disarm := faultinject.Arm("serve.batcher.flush", faultinject.Fault{Delay: 100 * time.Millisecond})
	defer disarm()
	s := New(Config{MaxBatch: 1})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	loadMedium(t, s, "d", 5)

	// Put one slow query in flight, then drain while it runs.
	type result struct {
		code int
		body []byte
	}
	inflight := make(chan result, 1)
	go func() {
		buf, _ := json.Marshal(QueryRequest{Design: "d", K: 5})
		resp, err := http.Post(hs.URL+"/v1/query", "application/json", bytes.NewReader(buf))
		if err != nil {
			inflight <- result{}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- result{code: resp.StatusCode, body: b}
	}()
	time.Sleep(30 * time.Millisecond) // let it pass admission and reach the flush

	if !s.Close(10 * time.Second) {
		t.Fatal("drain did not complete")
	}
	got := <-inflight
	if got.code != http.StatusOK {
		t.Fatalf("in-flight query during drain: status %d: %s", got.code, got.body)
	}

	resp, body := postJSON(t, hs.URL+"/v1/query", QueryRequest{Design: "d", K: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query: status %d, want 503: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Kind != "shutting_down" {
		t.Fatalf("error body = %s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shutdown refusal missing Retry-After")
	}
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", hresp.StatusCode)
	}
}

// TestEvictDrainsInFlight: eviction must wait for queries holding refs
// and the drained query must still complete correctly.
func TestEvictDrainsInFlight(t *testing.T) {
	disarm := faultinject.Arm("serve.batcher.flush", faultinject.Fault{Delay: 80 * time.Millisecond})
	defer disarm()
	s, hs := newTestServer(t, Config{MaxBatch: 1})
	loadMedium(t, s, "d", 6)

	done := make(chan int, 1)
	go func() {
		buf, _ := json.Marshal(QueryRequest{Design: "d", K: 5})
		resp, err := http.Post(hs.URL+"/v1/query", "application/json", bytes.NewReader(buf))
		if err != nil {
			done <- 0
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	time.Sleep(20 * time.Millisecond)

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/designs/d", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: status %d", resp.StatusCode)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight query during evict: status %d", code)
	}
}

// TestMetricsCSV checks the flat metric surface: header, server rows,
// per-design served counters.
func TestMetricsCSV(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	loadMedium(t, s, "d", 7)
	queryOK(t, hs.URL, QueryRequest{Design: "d", K: 3})

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"metric,design,value\n",
		"admitted_total,,",
		"served_admitted,d,1",
		"query_memo_misses,d,",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestEditEndpoint edits an arc over HTTP and checks the report moved.
func TestEditEndpoint(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	d := loadMedium(t, s, "d", 8)

	before := queryOK(t, hs.URL, QueryRequest{Design: "d", K: 1})
	// Grow the delay of the first arc on the critical path's data
	// portion and expect the worst slack to drop.
	var from, to string
	var win model.Window
	for _, a := range d.Arcs {
		if !d.IsClockPin(a.From) {
			from, to = d.PinName(a.From), d.PinName(a.To)
			win = a.Delay
			break
		}
	}
	resp, body := postJSON(t, hs.URL+"/v1/designs/d/arc", EditRequest{
		From: from, To: to,
		EarlyPs: win.Early.Ps(), LatePs: win.Late.Ps() + 10000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edit: status %d: %s", resp.StatusCode, body)
	}
	after := queryOK(t, hs.URL, QueryRequest{Design: "d", K: 1})
	if len(before.Report.Paths) == 0 || len(after.Report.Paths) == 0 {
		t.Fatal("missing paths")
	}
	if after.Report.Paths[0].SlackPs > before.Report.Paths[0].SlackPs {
		t.Fatalf("slack improved after a delay increase: %d -> %d",
			before.Report.Paths[0].SlackPs, after.Report.Paths[0].SlackPs)
	}
	// Stats must show the journaled edit (or a rebuild, if the arc fed
	// the clock tree — EditSeq 0 — but the query must still be served).
	st := s.stats().PerDesign["d"]
	if st.ServedAdmitted < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCoalescingHappens: concurrent identical queries against a
// MaxBatch>1 server must share a flush (batch_size > 1) for at least
// one request once the batcher has a chance to group them.
func TestCoalescingHappens(t *testing.T) {
	disarm := faultinject.Arm("serve.batcher.flush", faultinject.Fault{Delay: 10 * time.Millisecond})
	defer disarm()
	s, hs := newTestServer(t, Config{MaxBatch: 8, MaxWait: 25 * time.Millisecond})
	loadMedium(t, s, "d", 9)

	const n = 8
	sizes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qr := queryOK(t, hs.URL, QueryRequest{Design: "d", K: 5})
			sizes[i] = qr.Timing.BatchSize
		}(i)
	}
	wg.Wait()
	max := 0
	for _, v := range sizes {
		if v > max {
			max = v
		}
	}
	if max < 2 {
		t.Fatalf("no request was coalesced: batch sizes %v", sizes)
	}
	if st := s.stats().PerDesign["d"]; st.ServedCoalesced == 0 {
		t.Fatalf("ServedCoalesced = 0 after coalesced burst: %+v", st)
	}
}

// TestUnknownAndInvalid checks the 4xx surface.
func TestUnknownAndInvalid(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, _ := postJSON(t, hs.URL+"/v1/query", QueryRequest{Design: "nope", K: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown design: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, hs.URL+"/v1/query", QueryRequest{Design: "nope", K: 1, Mode: "frob"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode: status %d, want 400", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/designs/nope", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("evict unknown: status %d, want 404", dresp.StatusCode)
	}
}

// TestServedResultsMatchDirect: a report served through the whole stack
// (admission, batcher, JSON) must equal a direct Timer.Run on an
// identical design.
func TestServedResultsMatchDirect(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	loadMedium(t, s, "d", 10)
	ref := cppr.NewTimer(gen.MustGenerate(gen.Medium(10)))

	for _, k := range []int{1, 7, 50} {
		qr := queryOK(t, hs.URL, QueryRequest{Design: "d", K: k})
		rep, err := ref.Run(context.Background(), cppr.Query{K: k, Mode: model.Setup})
		if err != nil {
			t.Fatal(err)
		}
		want := rep.JSON(ref.Design(), model.Setup, k)
		if len(qr.Report.Paths) != len(want.Paths) {
			t.Fatalf("k=%d: %d served paths vs %d direct", k, len(qr.Report.Paths), len(want.Paths))
		}
		for i := range want.Paths {
			if qr.Report.Paths[i].SlackPs != want.Paths[i].SlackPs {
				t.Fatalf("k=%d path %d: served slack %d, direct %d",
					k, i, qr.Report.Paths[i].SlackPs, want.Paths[i].SlackPs)
			}
		}
	}
}
