// Package serve is the CPPR service front end: a multi-tenant design
// registry, a channel-based coalescing batcher funnelling concurrent
// requests into Timer.ReportBatch, a semaphore admission controller
// with bounded queueing and load-shedding, and a stdlib net/http JSON
// surface over all of it. Robustness is the design axis: shed requests
// get typed qerr-taxonomy errors (never silent drops), per-request
// deadlines propagate as contexts into the engine, panics are contained
// per request, and shutdown drains in-flight work while refusing new
// work. See DESIGN.md §13.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fastcppr/cppr"
	"fastcppr/internal/faultinject"
	"fastcppr/internal/qerr"
	"fastcppr/model"
)

// ErrUnknownDesign reports a query or eviction against an id that is
// not loaded (or was already evicted — externally indistinguishable).
// The HTTP layer maps it to 404.
var ErrUnknownDesign = errors.New("serve: unknown design")

func unknownDesign(id string) error {
	return fmt.Errorf("%w %q", ErrUnknownDesign, id)
}

// Registry is the multi-tenant design table: timers loadable and
// evictable by id. Every query path holds a Handle (a ref count) on its
// entry, so eviction is graceful by construction — an evicted entry
// disappears from the table immediately but its batcher keeps answering
// the queries already holding refs, and is torn down only when the last
// ref releases.
type Registry struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*entry
	closed  bool
}

// entry is one loaded design: its timer, its coalescing batcher, and
// the ref count gating teardown.
type entry struct {
	id       string
	timer    *cppr.Timer
	batcher  *batcher
	loadedAt time.Time

	mu      sync.Mutex
	refs    int
	evicted bool
	drained chan struct{} // closed once evicted and refs == 0
}

// Handle is a counted reference to a loaded design. Release it when the
// query is done; eviction waits on outstanding handles.
type Handle struct {
	e    *entry
	once sync.Once
}

// Timer returns the design's timer.
func (h *Handle) Timer() *cppr.Timer { return h.e.timer }

// Release drops the reference. Idempotent.
func (h *Handle) Release() {
	h.once.Do(func() {
		e := h.e
		e.mu.Lock()
		e.refs--
		last := e.evicted && e.refs == 0
		e.mu.Unlock()
		if last {
			e.teardown()
		}
	})
}

// teardown stops the entry's batcher and signals drained. Called
// exactly once: either by Evict (no refs outstanding) or by the last
// Release after eviction.
func (e *entry) teardown() {
	e.batcher.stop()
	close(e.drained)
}

// NewRegistry returns an empty registry using cfg's batcher settings
// for every loaded design.
func NewRegistry(cfg Config) *Registry {
	return &Registry{cfg: cfg.withDefaults(), entries: make(map[string]*entry)}
}

// Load registers d under id and starts its batcher. It fails with
// ErrInvalidQuery on a duplicate id, ErrOverloaded when the registry is
// at its MaxDesigns bound, and ErrShuttingDown after Close.
func (r *Registry) Load(id string, d *model.Design) error {
	if id == "" {
		return qerr.Invalid("empty design id")
	}
	faultinject.Fire("serve.registry.load")
	timer := cppr.NewTimer(d)
	timer.SetParallelism(r.cfg.Parallelism)
	b := newBatcher(timer, r.cfg.MaxBatch, r.cfg.MaxWait)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		b.stop()
		return qerr.ShuttingDown("registry closed")
	}
	if _, dup := r.entries[id]; dup {
		b.stop()
		return qerr.Invalid("design %q already loaded", id)
	}
	if len(r.entries) >= r.cfg.MaxDesigns {
		b.stop()
		return qerr.Overloaded("registry full (%d designs loaded)", len(r.entries))
	}
	r.entries[id] = &entry{
		id:       id,
		timer:    timer,
		batcher:  b,
		loadedAt: time.Now(),
		drained:  make(chan struct{}),
	}
	return nil
}

// Acquire returns a counted handle on id, or an ErrInvalidQuery-tagged
// error when the id is unknown (or already evicted — externally the
// same thing).
func (r *Registry) Acquire(id string) (*Handle, error) {
	faultinject.Fire("serve.registry.acquire")
	r.mu.Lock()
	e := r.entries[id]
	r.mu.Unlock()
	if e == nil {
		return nil, unknownDesign(id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.evicted {
		// Raced an eviction between the table lookup and here.
		return nil, unknownDesign(id)
	}
	e.refs++
	return &Handle{e: e}, nil
}

// Evict removes id from the table — new Acquires fail immediately — and
// returns a channel closed when every outstanding handle has released
// and the design's batcher has stopped. Unknown ids error.
func (r *Registry) Evict(id string) (<-chan struct{}, error) {
	r.mu.Lock()
	e := r.entries[id]
	delete(r.entries, id)
	r.mu.Unlock()
	if e == nil {
		return nil, unknownDesign(id)
	}
	e.mu.Lock()
	if e.evicted {
		// Double-evict cannot happen through the table (deleted above),
		// but guard anyway: the drained channel is the single teardown.
		e.mu.Unlock()
		return e.drained, nil
	}
	e.evicted = true
	idle := e.refs == 0
	e.mu.Unlock()
	if idle {
		e.teardown()
	}
	return e.drained, nil
}

// IDs lists the loaded design ids (unordered).
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.entries))
	for id := range r.entries {
		out = append(out, id)
	}
	return out
}

// Get returns a design's entry metadata without taking a ref; ok is
// false for unknown ids. Used by the stats surface.
func (r *Registry) get(id string) (*entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	return e, ok
}

// refCount reports the entry's current outstanding handles.
func (e *entry) refCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.refs
}

// Close marks the registry closed (Load refuses), evicts every design
// and waits — up to deadline, zero meaning forever — for all of them to
// drain. It reports whether every entry drained in time.
func (r *Registry) Close(deadline time.Duration) bool {
	r.mu.Lock()
	r.closed = true
	ids := make([]string, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	r.mu.Unlock()
	var chans []<-chan struct{}
	for _, id := range ids {
		if ch, err := r.Evict(id); err == nil {
			chans = append(chans, ch)
		}
	}
	var timeout <-chan time.Time
	if deadline > 0 {
		t := time.NewTimer(deadline)
		defer t.Stop()
		timeout = t.C
	}
	for _, ch := range chans {
		select {
		case <-ch:
		case <-timeout:
			return false
		}
	}
	return true
}
