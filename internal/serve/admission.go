package serve

import (
	"context"
	"sync/atomic"
	"time"

	"fastcppr/internal/qerr"
)

// admission is the overload gate in front of the query path: a
// semaphore bounding concurrent in-service requests plus a bounded wait
// queue. A request past both bounds is shed immediately with a typed
// ErrOverloaded — callers get a Retry-After, never a silent drop or an
// unbounded queue — and a request that waits is still subject to its
// own context deadline.
type admission struct {
	slots    chan struct{}
	maxQueue int64
	waiting  atomic.Int64
	closed   atomic.Bool
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
	}
}

// admit blocks until a slot is free, the context expires, or the
// request is shed. On success it returns the release function and the
// time spent queued.
func (a *admission) admit(ctx context.Context) (release func(), queued time.Duration, err error) {
	if a.closed.Load() {
		return nil, 0, qerr.ShuttingDown("draining; not admitting new queries")
	}
	if n := a.waiting.Add(1); n > a.maxQueue {
		a.waiting.Add(-1)
		return nil, 0, qerr.Overloaded("admission queue full (%d waiting, %d slots)", n-1, cap(a.slots))
	}
	defer a.waiting.Add(-1)
	start := time.Now()
	select {
	case a.slots <- struct{}{}:
		if a.closed.Load() {
			// Shutdown raced the slot grant: hand it back and refuse.
			<-a.slots
			return nil, 0, qerr.ShuttingDown("draining; not admitting new queries")
		}
		return func() { <-a.slots }, time.Since(start), nil
	case <-ctx.Done():
		return nil, 0, qerr.FromContext(ctx)
	}
}

// close makes every subsequent admit refuse with ErrShuttingDown.
// Requests already holding slots are unaffected — shutdown drains them.
func (a *admission) close() { a.closed.Store(true) }

// depth reports the current wait-queue depth and in-service count.
func (a *admission) depth() (waiting int64, inService int) {
	return a.waiting.Load(), len(a.slots)
}

// retryAfter estimates a client backoff from the current congestion:
// one second per full queue's worth of waiters, clamped to [1s, 30s].
// Deliberately coarse — its job is to spread retries, not predict
// latency.
func (a *admission) retryAfter() time.Duration {
	w := a.waiting.Load()
	d := time.Duration(1+w/int64(cap(a.slots)+1)) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}
