package core

import (
	"context"
	"fmt"
	"testing"

	"fastcppr/gen"
	"fastcppr/internal/sched"
	"fastcppr/model"
)

// requireSamePaths asserts two results are byte-identical: same slacks
// and same pin sequences in the same order.
func requireSamePaths(t *testing.T, label string, ref, got Result) {
	t.Helper()
	if len(got.Paths) != len(ref.Paths) {
		t.Fatalf("%s: %d paths, want %d", label, len(got.Paths), len(ref.Paths))
	}
	for i := range ref.Paths {
		if got.Paths[i].Slack != ref.Paths[i].Slack {
			t.Fatalf("%s: path %d slack %v, want %v", label, i, got.Paths[i].Slack, ref.Paths[i].Slack)
		}
		if fmt.Sprint(got.Paths[i].Pins) != fmt.Sprint(ref.Paths[i].Pins) {
			t.Fatalf("%s: path %d pins differ", label, i)
		}
	}
}

// onPool runs fn as a task on a fresh work-stealing pool of the given
// size and returns after it (and everything it spawned) completes.
func onPool(workers int, fn func(tc *sched.TC)) {
	p := sched.New(workers)
	defer p.Close()
	g := p.NewGroup()
	g.Spawn(func(tc *sched.TC) { fn(tc) })
	g.Wait(nil)
}

// TestExecPoolDeterminism: queries scheduled onto a work-stealing pool
// (the batch executor regime) return byte-identical reports to the
// standalone goroutine regime, for any pool size.
func TestExecPoolDeterminism(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(21))
	e := NewEngine(d)
	for _, mode := range model.Modes {
		ref := mustTopPaths(t, e, Options{K: 100, Mode: mode, Threads: 1})
		for _, workers := range []int{1, 2, 8} {
			var got Result
			var err error
			onPool(workers, func(tc *sched.TC) {
				got, err = e.TopPaths(context.Background(), Options{K: 100, Mode: mode, Exec: tc})
			})
			if err != nil {
				t.Fatalf("pool(%d) TopPaths: %v", workers, err)
			}
			requireSamePaths(t, fmt.Sprintf("mode %v pool %d", mode, workers), ref, got)
		}
	}
}

// TestExecPoolConcurrentQueries: several queries sharing one pool (the
// batch shape: their jobs interleave on the same deques) each return
// exactly their standalone result.
func TestExecPoolConcurrentQueries(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(9))
	e := NewEngine(d)
	type q struct {
		k    int
		mode model.Mode
	}
	queries := []q{{10, model.Setup}, {25, model.Hold}, {100, model.Setup}, {1, model.Hold}}
	refs := make([]Result, len(queries))
	for i, qu := range queries {
		refs[i] = mustTopPaths(t, e, Options{K: qu.k, Mode: qu.mode, Threads: 1})
	}
	p := sched.New(4)
	defer p.Close()
	g := p.NewGroup()
	got := make([]Result, len(queries))
	errs := make([]error, len(queries))
	for i, qu := range queries {
		i, qu := i, qu
		g.Spawn(func(tc *sched.TC) {
			got[i], errs[i] = e.TopPaths(context.Background(), Options{K: qu.k, Mode: qu.mode, Exec: tc})
		})
	}
	g.Wait(nil)
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		requireSamePaths(t, fmt.Sprintf("query %d", i), refs[i], got[i])
	}
}

// TestPropThreadsDeterminism: the partitioned propagation kernel changes
// wall-clock, never output.
func TestPropThreadsDeterminism(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(13))
	e := NewEngine(d)
	for _, mode := range model.Modes {
		ref := mustTopPaths(t, e, Options{K: 50, Mode: mode, Threads: 1})
		for _, pt := range []int{2, 8} {
			got := mustTopPaths(t, e, Options{K: 50, Mode: mode, Threads: 1, PropThreads: pt})
			requireSamePaths(t, fmt.Sprintf("mode %v propthreads %d", mode, pt), ref, got)
		}
	}
}

// TestExecPoolEndpointSlacks: the endpoint sweep under a pool matches
// the standalone sweep.
func TestExecPoolEndpointSlacks(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(7))
	e := NewEngine(d)
	for _, mode := range model.Modes {
		ref := mustEndpointSlacks(t, e, Options{Mode: mode, Threads: 1})
		var got []EndpointCPPRSlack
		var err error
		onPool(4, func(tc *sched.TC) {
			got, err = e.EndpointSlacksCPPR(context.Background(), Options{Mode: mode, Exec: tc})
		})
		if err != nil {
			t.Fatalf("pool EndpointSlacksCPPR: %v", err)
		}
		if len(got) != len(ref) {
			t.Fatalf("len %d, want %d", len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("endpoint %d: %+v, want %+v", i, got[i], ref[i])
			}
		}
	}
}

// TestExecPoolReuse: one pool serves repeated queries through fresh
// groups without leaking tasks or wedging the deques.
func TestExecPoolReuse(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(1))
	e := NewEngine(d)
	p := sched.New(2)
	defer p.Close()
	for i := 0; i < 3; i++ {
		g := p.NewGroup()
		var err error
		g.Spawn(func(tc *sched.TC) {
			_, err = e.TopPaths(context.Background(), Options{K: 5, Mode: model.Setup, Exec: tc})
		})
		g.Wait(nil)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}
