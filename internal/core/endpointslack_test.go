package core

import (
	"testing"

	"fastcppr/gen"
	"fastcppr/internal/baseline"
	"fastcppr/model"
)

// TestEndpointSlacksCPPRMatchesBrute verifies the O(nD) per-endpoint
// post-CPPR summary against exhaustive enumeration.
func TestEndpointSlacksCPPRMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		e := NewEngine(d)
		for _, mode := range model.Modes {
			all := baseline.AllPaths(d, mode)
			want := make(map[model.FFID]model.Time)
			for _, p := range all {
				if cur, ok := want[p.CaptureFF]; !ok || p.Slack < cur {
					want[p.CaptureFF] = p.Slack
				}
			}
			got := mustEndpointSlacks(t, e, Options{Mode: mode, Threads: 2})
			if len(got) != d.NumFFs() {
				t.Fatalf("%d endpoints, want %d", len(got), d.NumFFs())
			}
			for _, s := range got {
				w, ok := want[s.FF]
				if ok != s.Valid {
					t.Fatalf("seed %d %v ff%d: valid=%v, oracle has paths=%v", seed, mode, s.FF, s.Valid, ok)
				}
				if ok && s.Slack != w {
					t.Fatalf("seed %d %v ff%d: slack %v, oracle %v", seed, mode, s.FF, s.Slack, w)
				}
			}
		}
	}
}

// TestEndpointSlacksCPPRMultiDomain covers the cross-domain job path.
func TestEndpointSlacksCPPRMultiDomain(t *testing.T) {
	d := gen.MustGenerate(multiDomainSpec(2, 2))
	e := NewEngine(d)
	for _, mode := range model.Modes {
		all := baseline.AllPaths(d, mode)
		want := make(map[model.FFID]model.Time)
		for _, p := range all {
			if cur, ok := want[p.CaptureFF]; !ok || p.Slack < cur {
				want[p.CaptureFF] = p.Slack
			}
		}
		for _, s := range mustEndpointSlacks(t, e, Options{Mode: mode, Threads: 3}) {
			if w, ok := want[s.FF]; ok && (!s.Valid || s.Slack != w) {
				t.Fatalf("%v ff%d: got %v/%v, want %v", mode, s.FF, s.Slack, s.Valid, w)
			}
		}
	}
}

// TestEndpointSlacksCPPRConsistentWithTopPaths cross-checks against the
// per-endpoint top-1 query on a design beyond brute-force reach.
func TestEndpointSlacksCPPRConsistentWithTopPaths(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(31))
	e := NewEngine(d)
	slacks := mustEndpointSlacks(t, e, Options{Mode: model.Hold, Threads: 4})
	for fi := 0; fi < d.NumFFs(); fi += 7 { // sample endpoints
		res := mustTopPaths(t, e, Options{K: 1, Mode: model.Hold, FilterCapture: true, CaptureFF: model.FFID(fi)})
		if len(res.Paths) == 0 {
			if slacks[fi].Valid {
				t.Fatalf("ff%d: summary valid but no paths", fi)
			}
			continue
		}
		if !slacks[fi].Valid || slacks[fi].Slack != res.Paths[0].Slack {
			t.Fatalf("ff%d: summary %v/%v, top-1 %v", fi, slacks[fi].Slack, slacks[fi].Valid, res.Paths[0].Slack)
		}
	}
}
