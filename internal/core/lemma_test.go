package core

import (
	"sort"
	"testing"

	"fastcppr/gen"
	"fastcppr/internal/baseline"
	"fastcppr/internal/lca"
	"fastcppr/model"
)

// These tests check the lemmas behind the paper's main correctness
// theorem (§III-F) directly on randomized designs, using the brute-force
// path enumeration as ground truth:
//
//   L1 (coverage at level d): every global top-k path p with
//      lauFF != capFF and depth(LCA) = d appears in the top-k candidate
//      set at level d ranked by slack(p, d).
//   L2 (self-loop coverage): every global top-k self-loop path appears
//      in the top-k of Definition 5's ranking.
//   L3 (d-PR slack dominance): slack(p, d) >= slack_CPPR(p) for every
//      d <= depth(LCA(p)), with equality at d = depth(LCA(p)).
//   L4 (deviation-cost sign): implicitly asserted by panics in the
//      engine; exercised by every top-k run.

// enumerate returns all paths of d for the mode, decorated and sorted by
// post-CPPR slack.
func enumerate(t *testing.T, d *model.Design, mode model.Mode) []model.Path {
	t.Helper()
	all := baseline.AllPaths(d, mode)
	baseline.SortPaths(all)
	return all
}

// slackAtLevel computes Definition 3's slack(p, dep) from first
// principles.
func slackAtLevel(tr *lca.Tree, d *model.Design, p *model.Path, dep int) model.Time {
	lau := d.FFs[p.LaunchFF].Clock
	return p.PreSlack + tr.Credit(tr.AncestorAtDepth(lau, dep))
}

func TestLemmaLevelCoverage(t *testing.T) {
	const k = 8
	for seed := int64(0); seed < 8; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		tr := lca.New(d)
		for _, mode := range model.Modes {
			all := enumerate(t, d, mode)
			globalTop := all
			if len(globalTop) > k {
				globalTop = globalTop[:k]
			}
			for dep := 0; dep < d.Depth; dep++ {
				// Candidate set at level dep (Definition 4).
				var cands []model.Path
				for _, p := range all {
					if p.LaunchFF == model.NoFF || p.SelfLoop() {
						continue
					}
					if p.LCADepth <= dep &&
						tr.Depth(d.FFs[p.LaunchFF].Clock) > dep &&
						tr.Depth(d.FFs[p.CaptureFF].Clock) > dep {
						cands = append(cands, p)
					}
				}
				// Rank by slack(p, dep).
				sort.SliceStable(cands, func(i, j int) bool {
					return slackAtLevel(tr, d, &cands[i], dep) < slackAtLevel(tr, d, &cands[j], dep)
				})
				kth := len(cands)
				if kth > k {
					kth = k
				}
				// L1: every global-top-k path with LCA depth == dep must
				// rank within the level's top-k.
				for _, g := range globalTop {
					if g.LCADepth != dep || g.SelfLoop() || g.LaunchFF == model.NoFF {
						continue
					}
					gs := slackAtLevel(tr, d, &g, dep)
					// Count candidates strictly better than g.
					better := 0
					for _, c := range cands {
						if slackAtLevel(tr, d, &c, dep) < gs {
							better++
						}
					}
					if better >= k {
						t.Fatalf("seed %d %v level %d: global top-k path (slack %v) ranked %d-th at its level",
							seed, mode, dep, g.Slack, better+1)
					}
					// L3 equality at d = depth(LCA).
					if gs != g.Slack {
						t.Fatalf("slack(p, depth(LCA)) = %v != post-CPPR %v", gs, g.Slack)
					}
				}
			}
		}
	}
}

func TestLemmaSelfLoopCoverage(t *testing.T) {
	const k = 8
	for seed := int64(0); seed < 8; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		tr := lca.New(d)
		for _, mode := range model.Modes {
			all := enumerate(t, d, mode)
			globalTop := all
			if len(globalTop) > k {
				globalTop = globalTop[:k]
			}
			// Definition 5 ranking over ALL FF-launched paths.
			rank5 := func(p *model.Path) model.Time {
				lau := d.FFs[p.LaunchFF].Clock
				return p.PreSlack + tr.Credit(lau)
			}
			for _, g := range globalTop {
				if !g.SelfLoop() {
					continue
				}
				gs := rank5(&g)
				// L3 for self-loops: ranking key equals the post-CPPR
				// slack (LCA of (u,u) is u).
				if gs != g.Slack {
					t.Fatalf("self-loop ranking key %v != post slack %v", gs, g.Slack)
				}
				better := 0
				for i := range all {
					p := &all[i]
					if p.LaunchFF == model.NoFF {
						continue
					}
					if rank5(p) < gs {
						better++
					}
				}
				// L2: fewer than k paths may outrank a global top-k
				// self-loop in Definition 5's order.
				if better >= k {
					t.Fatalf("seed %d %v: self-loop in global top-%d ranked %d-th in Definition 5 order",
						seed, mode, k, better+1)
				}
			}
		}
	}
}

func TestLemmaDPRSlackDominance(t *testing.T) {
	// L3: slack(p, d) is non-increasing as d decreases below depth(LCA)
	// ... precisely: for d <= depth(LCA), slack(p,d) <= slack_CPPR(p),
	// monotone non-decreasing in d, with slack(p,0) = pre-CPPR slack +
	// credit(root) = pre-CPPR slack.
	for seed := int64(0); seed < 6; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		tr := lca.New(d)
		all := enumerate(t, d, model.Setup)
		for i := range all {
			p := &all[i]
			if p.LaunchFF == model.NoFF {
				continue
			}
			if got := slackAtLevel(tr, d, p, 0); got != p.PreSlack {
				t.Fatalf("slack(p,0) = %v, want pre-CPPR %v", got, p.PreSlack)
			}
			prev := model.MinTime
			for dep := 0; dep <= p.LCADepth; dep++ {
				s := slackAtLevel(tr, d, p, dep)
				if s < prev {
					t.Fatalf("slack(p,d) decreased at d=%d", dep)
				}
				if s > p.Slack {
					t.Fatalf("slack(p,%d) = %v exceeds post-CPPR slack %v for LCA depth %d",
						dep, s, p.Slack, p.LCADepth)
				}
				prev = s
			}
			if slackAtLevel(tr, d, p, p.LCADepth) != p.Slack {
				t.Fatal("slack(p, depth(LCA)) != post-CPPR slack")
			}
		}
	}
}

// TestLemmaGroupingEquivalence checks Figure 3's claim: the grouping
// predicate f_{d+1}(lau) != f_{d+1}(cap) is equivalent to
// (lau != cap && depth(LCA) <= d) for FF clock pins deeper than d.
func TestLemmaGroupingEquivalence(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		tr := lca.New(d)
		var lt lca.LevelTables
		cks := make([]model.PinID, 0, d.NumFFs())
		for _, ff := range d.FFs {
			cks = append(cks, ff.Clock)
		}
		for dep := 0; dep < d.Depth; dep++ {
			tr.FillLevel(dep, &lt)
			for _, u := range cks {
				for _, v := range cks {
					if tr.Depth(u) <= dep || tr.Depth(v) <= dep {
						continue
					}
					gu, gv := tr.GroupOf(&lt, u), tr.GroupOf(&lt, v)
					want := u != v && tr.LCADepth(u, v) <= dep
					if got := gu != gv; got != want {
						t.Fatalf("seed %d level %d: grouping(%s,%s) = %v, want %v",
							seed, dep, d.PinName(u), d.PinName(v), got, want)
					}
				}
			}
		}
	}
}
