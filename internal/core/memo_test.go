package core

import (
	"context"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// alwaysValid is the no-edits-yet validator: every entry stays exact.
func alwaysValid(uint64, *model.PinSet) bool { return true }

func mustMemo(tb testing.TB, e *Engine, opts Options, c *JobCache, seq uint64, valid func(uint64, *model.PinSet) bool) Result {
	tb.Helper()
	res, err := e.TopPathsMemo(context.Background(), opts, MemoCtx{Cache: c, Seq: seq, Valid: valid})
	if err != nil {
		tb.Fatalf("TopPathsMemo: %v", err)
	}
	return res
}

// equalPaths compares reports field-by-field, pins included — the
// byte-identity contract of the memoized path.
func equalPaths(tb testing.TB, what string, got, want []model.Path) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s: %d paths, want %d", what, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Slack != w.Slack || g.PreSlack != w.PreSlack || g.Credit != w.Credit ||
			g.LCADepth != w.LCADepth || g.LaunchFF != w.LaunchFF || g.CaptureFF != w.CaptureFF ||
			g.Mode != w.Mode {
			tb.Fatalf("%s: path %d differs: %+v vs %+v", what, i, g, w)
		}
		if len(g.Pins) != len(w.Pins) {
			tb.Fatalf("%s: path %d pin count %d vs %d", what, i, len(g.Pins), len(w.Pins))
		}
		for j := range g.Pins {
			if g.Pins[j] != w.Pins[j] {
				tb.Fatalf("%s: path %d pin %d: %d vs %d", what, i, j, g.Pins[j], w.Pins[j])
			}
		}
	}
}

func TestTopPathsMemoMatchesTopPaths(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		d := gen.MustGenerate(gen.Medium(seed))
		e := NewEngine(d)
		for _, mode := range []model.Mode{model.Setup, model.Hold} {
			for _, dense := range []bool{false, true} {
				for _, k := range []int{1, 7, 50} {
					opts := Options{K: k, Mode: mode, DenseKernel: dense}
					want := mustTopPaths(t, e, opts)
					cache := NewJobCache(nil)
					cold := mustMemo(t, e, opts, cache, 0, alwaysValid)
					warm := mustMemo(t, e, opts, cache, 0, alwaysValid)
					equalPaths(t, "cold memo", cold.Paths, want.Paths)
					equalPaths(t, "warm memo", warm.Paths, want.Paths)
					if cold.Stats.Jobs != want.Stats.Jobs || warm.Stats.Jobs != want.Stats.Jobs {
						t.Fatalf("Jobs: memo %d/%d, TopPaths %d",
							cold.Stats.Jobs, warm.Stats.Jobs, want.Stats.Jobs)
					}
					if cold.Stats.Candidates < cold.Stats.Kept {
						t.Fatalf("cold Candidates %d < Kept %d", cold.Stats.Candidates, cold.Stats.Kept)
					}
					if warm.Stats.Reconstructed != 0 {
						t.Fatalf("warm run reconstructed %d paths, want 0 (all jobs cached)",
							warm.Stats.Reconstructed)
					}
				}
			}
		}
	}
}

func TestTopPathsMemoKPrefixServing(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(1))
	e := NewEngine(d)
	var ctr CacheCounters
	cache := NewJobCache(&ctr)

	// Prime at a large budget, then serve strictly smaller budgets from
	// the same entries: the pop stream's prefix property makes the
	// truncated answers exact.
	big := Options{K: 64, Mode: model.Setup}
	mustMemo(t, e, big, cache, 0, alwaysValid)
	misses := ctr.Misses.Load()
	for _, k := range []int{1, 3, 17, 64} {
		opts := Options{K: k, Mode: model.Setup}
		got := mustMemo(t, e, opts, cache, 0, alwaysValid)
		want := mustTopPaths(t, e, opts)
		equalPaths(t, "k-prefix", got.Paths, want.Paths)
	}
	if ctr.Misses.Load() != misses {
		t.Fatalf("smaller-k queries re-ran jobs: misses %d -> %d", misses, ctr.Misses.Load())
	}

	// A larger budget than any entry forces re-runs — except for jobs
	// whose stream already ran dry (exhausted entries serve any K).
	mustMemo(t, e, Options{K: 128, Mode: model.Setup}, cache, 0, alwaysValid)
	if ctr.Misses.Load() == misses {
		t.Fatal("K=128 after K=64 should have re-run at least one non-exhausted job")
	}

	// A tiny design where K exceeds every job's candidate stream: once
	// exhausted entries exist, any larger K is a full hit.
	d2 := gen.MustGenerate(gen.SmallOracle(2))
	e2 := NewEngine(d2)
	var ctr2 CacheCounters
	cache2 := NewJobCache(&ctr2)
	mustMemo(t, e2, Options{K: 512, Mode: model.Hold}, cache2, 0, alwaysValid)
	m := ctr2.Misses.Load()
	got := mustMemo(t, e2, Options{K: 1024, Mode: model.Hold}, cache2, 0, alwaysValid)
	want := mustTopPaths(t, e2, Options{K: 1024, Mode: model.Hold})
	equalPaths(t, "exhausted upscale", got.Paths, want.Paths)
	if ctr2.Misses.Load() != m {
		t.Fatalf("exhausted entries re-ran on larger K: misses %d -> %d", m, ctr2.Misses.Load())
	}
}

func TestTopPathsMemoInvalidation(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(2))
	e := NewEngine(d)
	var ctr CacheCounters
	cache := NewJobCache(&ctr)
	opts := Options{K: 20, Mode: model.Setup}
	want := mustTopPaths(t, e, opts)

	mustMemo(t, e, opts, cache, 0, alwaysValid)
	entries := cache.Len()
	if entries == 0 {
		t.Fatal("no entries cached")
	}

	// A validator that reports every cone dirty: all entries must be
	// dropped and re-run, and the rebuilt answer must still be exact.
	got := mustMemo(t, e, opts, cache, 1, func(uint64, *model.PinSet) bool { return false })
	equalPaths(t, "after invalidation", got.Paths, want.Paths)
	if inv := ctr.Invalidated.Load(); inv != int64(entries) {
		t.Fatalf("Invalidated = %d, want %d (every entry)", inv, entries)
	}

	// Entries were re-stored at seq 1; a validator that certifies them
	// serves the whole query from cache.
	rec := mustMemo(t, e, opts, cache, 1, func(seq uint64, _ *model.PinSet) bool { return seq >= 1 }).Stats.Reconstructed
	if rec != 0 {
		t.Fatalf("revalidated query reconstructed %d, want 0", rec)
	}
}

// TestTopPathsMemoSeqBump checks the walk-shortening contract: a
// successful reuse advances the entry's seq, so the next validation
// starts from the later sequence number.
func TestTopPathsMemoSeqBump(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(0))
	e := NewEngine(d)
	cache := NewJobCache(nil)
	opts := Options{K: 8, Mode: model.Setup}
	mustMemo(t, e, opts, cache, 3, alwaysValid)
	// Reuse at seq 9 bumps stored seqs from 3 to 9...
	mustMemo(t, e, opts, cache, 9, alwaysValid)
	// ...which this validator observes.
	seen := make(map[uint64]bool)
	mustMemo(t, e, opts, cache, 9, func(seq uint64, _ *model.PinSet) bool {
		seen[seq] = true
		return true
	})
	if seen[3] || !seen[9] {
		t.Fatalf("entry seqs not bumped on reuse: saw %v, want only 9", seen)
	}
}
