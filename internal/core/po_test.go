package core

import (
	"testing"

	"fastcppr/gen"
	"fastcppr/internal/baseline"
	"fastcppr/model"
)

func TestPOEndpointsMatchOracle(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		spec := gen.SmallOracle(seed)
		spec.NumPOs = 4
		d := gen.MustGenerate(spec)
		e := NewEngine(d)
		for _, mode := range model.Modes {
			brute := baseline.AllPathsWithPOs(d, mode)
			baseline.SortPaths(brute)
			for _, k := range []int{1, 8, 40, len(brute) + 5} {
				got := mustTopPaths(t, e, Options{K: k, Mode: mode, Threads: 2, IncludePOs: true})
				validatePaths(t, d, mode, got.Paths)
				want := brute
				if len(want) > k {
					want = want[:k]
				}
				if !equalSlacks(slacksOf(got.Paths), baseline.Slacks(want)) {
					t.Fatalf("seed %d %v k=%d: slacks differ\ngot:  %v\nwant: %v",
						seed, mode, k, slacksOf(got.Paths), baseline.Slacks(want))
				}
			}
		}
	}
}

func TestPOPathsHaveNoCredit(t *testing.T) {
	spec := gen.SmallOracle(2)
	spec.NumPOs = 4
	d := gen.MustGenerate(spec)
	e := NewEngine(d)
	res := mustTopPaths(t, e, Options{K: 1000, Mode: model.Setup, IncludePOs: true})
	poPaths := 0
	for _, p := range res.Paths {
		if !p.EndsAtPO() {
			continue
		}
		poPaths++
		if p.Credit != 0 || p.LCADepth != -1 {
			t.Fatalf("PO path has credit %v depth %d", p.Credit, p.LCADepth)
		}
		if d.Pins[p.EndPin()].Kind != model.PO {
			t.Fatal("EndsAtPO path does not end at a PO")
		}
	}
	if poPaths == 0 {
		t.Fatal("no PO paths reported with IncludePOs")
	}
}

func TestPOsExcludedByDefault(t *testing.T) {
	spec := gen.SmallOracle(2)
	spec.NumPOs = 4
	d := gen.MustGenerate(spec)
	e := NewEngine(d)
	res := mustTopPaths(t, e, Options{K: 10_000, Mode: model.Setup})
	for _, p := range res.Paths {
		if p.EndsAtPO() {
			t.Fatal("PO path reported without IncludePOs")
		}
	}
	// Default (paper-faithful) behaviour matches the FF-only oracle.
	brute := baseline.AllPaths(d, model.Setup)
	if len(res.Paths) != len(brute) {
		t.Fatalf("got %d paths, FF-only oracle has %d", len(res.Paths), len(brute))
	}
}

func TestUnconstrainedPOsProduceNoJob(t *testing.T) {
	b := model.NewBuilder("nopo", model.Ns(1))
	clk := b.AddClockRoot("clk")
	ff := b.AddFF("ff", 1, 1, model.Window{Early: 1, Late: 2})
	b.AddArc(clk, ff.Clock, model.Window{Early: 1, Late: 2})
	g := b.AddComb("g")
	po := b.AddPO("out") // unconstrained
	b.AddArc(ff.Q, g, model.Window{Early: 1, Late: 2})
	b.AddArc(g, ff.D, model.Window{Early: 1, Late: 2})
	b.AddArc(g, po, model.Window{Early: 1, Late: 2})
	d := b.MustBuild()
	e := NewEngine(d)
	with := mustTopPaths(t, e, Options{K: 10, Mode: model.Setup, IncludePOs: true})
	without := mustTopPaths(t, e, Options{K: 10, Mode: model.Setup})
	if with.Stats.Jobs != without.Stats.Jobs {
		t.Fatalf("unconstrained PO created a job: %d vs %d", with.Stats.Jobs, without.Stats.Jobs)
	}
}
