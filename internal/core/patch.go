package core

import (
	"sync"

	"fastcppr/internal/lca"
	"fastcppr/internal/sta"
	"fastcppr/model"
)

// This file holds the retained-propagation machinery behind the warm
// single-corner path and the speculative what-if engine: instead of
// re-running a dirtied candidate-generation job from scratch, the cache
// keeps the job's full propagation state and patches only the edited
// arcs' dirty cone (sta.PatchSparse), then replays the collect phase.
// On designs where an edit's cone is a sliver of the graph this turns a
// near-cold recompute into work proportional to the edit's real reach.

// RetainMaxBytes bounds the propagation state one JobCache retains for
// patching, across all jobs: each retained job costs NumPins slot-sized
// (64 B) entries. Beyond the budget, stores skip retention — the job
// cache still works, dirtied jobs just fall back to full re-runs. A
// variable so tests can exercise the refusal path.
var RetainMaxBytes = int64(256 << 20)

// retainedProp is one job's retained propagation: the completed sparse
// state, and the journal position it reflects. The mutex serializes the
// whole patch + collect critical section — patching mutates prop in
// place, so a second reader must wait (and will then find the journal
// already advanced, or borrow with an undo log).
//
// Ownership: the cache that created the entry (owner) patches in place
// and advances journal/seq; forked caches share the pointer but must
// restore the state via the undo log, so a child's speculative edits
// never leak into the parent's retained state.
type retainedProp struct {
	mu      sync.Mutex
	prop    *sta.Prop
	journal *model.EditJournal
	seq     uint64
	owner   *JobCache
	undo    sta.PropUndo
}

// retained returns the retained propagation for key, if any.
func (c *JobCache) retained(key jobKey) *retainedProp {
	m := c.ret.Load()
	if m == nil {
		return nil
	}
	return (*m)[key]
}

// setRetained publishes rp for key copy-on-write, charging pinCount
// 64-byte slots against the retention budget for new keys (replacements
// are pre-paid). Existing entries are replaced only when the newcomer's
// journal position is at least as new — replacement is pure policy (any
// retained state is sound, it carries its own journal), but moving
// backward would thrash the common newest-snapshot readers.
func (c *JobCache) setRetained(key jobKey, rp *retainedProp, pinCount int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var cur map[jobKey]*retainedProp
	if m := c.ret.Load(); m != nil {
		cur = *m
	}
	if old, ok := cur[key]; ok {
		old.mu.Lock()
		stale := old.seq > rp.seq
		old.mu.Unlock()
		if stale {
			return
		}
	} else {
		cost := int64(pinCount) * 64
		if c.retBytes.Load()+cost > RetainMaxBytes {
			return
		}
		c.retBytes.Add(cost)
	}
	next := make(map[jobKey]*retainedProp, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = rp
	c.ret.Store(&next)
}

// retainProp clones the scratch's just-completed propagation into the
// cache's retained store, positioned at mc's journal head, so the next
// edit that dirties this job can be served by patching. Dense-kernel
// runs are not retained (the patch kernel is sparse-only).
func (e *Engine) retainProp(s *scratch, cache *JobCache, key jobKey, mc MemoCtx) {
	clone := s.prop.CloneSparse()
	if clone == nil {
		return
	}
	cache.setRetained(key, &retainedProp{
		prop:    clone,
		journal: mc.Journal,
		seq:     mc.Seq,
		owner:   cache,
	}, e.d.NumPins())
}

// Fork returns an isolated copy of the cache for a snapshot forked at
// journal sequence atSeq: a child timer's cache that shares the
// parent's immutable entry data but diverges independently.
//
// Entries stored after atSeq are dropped (a concurrent parent edit may
// have published them past the fork point), and each surviving entry's
// validation watermark is clamped to atSeq: a watermark proves "no
// dirtying edit in (storeSeq, watermark]" along the PARENT's chain, and
// only the prefix up to atSeq is shared with the child — beyond it the
// chains diverge and the parent's proofs say nothing about the child's
// edits. Retained propagations are shared by pointer; the owner marker
// makes child patches borrow-and-restore instead of mutate-in-place.
// Counters remain shared, so a timer's Stats aggregate across its forks.
func (c *JobCache) Fork(atSeq uint64) *JobCache {
	nc := &JobCache{ctr: c.ctr}
	cur := *c.idx.Load()
	m := make(map[jobKey]*jobEntry, len(cur))
	for k, e := range cur {
		if e.storeSeq > atSeq {
			continue
		}
		ne := &jobEntry{
			storeSeq:  e.storeSeq,
			k:         e.k,
			exhausted: e.exhausted,
			produced:  e.produced,
			cone:      e.cone,
			outs:      e.outs,
		}
		w := e.seq.Load()
		if w > atSeq {
			w = atSeq
		}
		ne.seq.Store(w)
		m[k] = ne
	}
	nc.idx.Store(&m)
	if rm := c.ret.Load(); rm != nil {
		nrm := make(map[jobKey]*retainedProp, len(*rm))
		for k, v := range *rm {
			nrm[k] = v
		}
		nc.ret.Store(&nrm)
	}
	return nc
}

// MemoCtx carries the snapshot-chain context TopPathsMemo validates and
// patches against: the per-corner cache, the snapshot's journal head and
// sequence, the corner the engine computes at, and the entry validator
// (which the caller builds from the journal so it can also count
// cone-disjoint skips).
type MemoCtx struct {
	Cache   *JobCache
	Seq     uint64
	Journal *model.EditJournal
	Corner  model.Corner
	Valid   func(entrySeq uint64, cone *model.PinSet) bool
}

// jobSeedFn returns the per-pin view of seedJob: the tuple spec would
// offer at pin v before propagation, if any. sta.PatchSparse uses it to
// replay a dirty pin's canonical offer order. Must agree exactly with
// seedJob — both are generated from the same grouped tables — and stays
// valid across journaled edits because those never move clock arrivals,
// CK->Q windows, or constraints (such changes rebuild the snapshot).
func (e *Engine) jobSeedFn(spec jobSpec, opts Options) func(model.PinID) (sta.Tuple, bool) {
	setup := opts.Mode == model.Setup
	var lt *lca.LevelTables
	if spec.kind == jobLevel || spec.kind == jobCross {
		lt, _ = e.groupedTables(spec, opts)
	}
	var piIndex map[model.PinID]int // lazily built; PI seeds are rarely in a dirty cone
	return func(v model.PinID) (sta.Tuple, bool) {
		switch e.d.Pins[v].Kind {
		case model.FFOutput:
			if spec.kind == jobPI {
				return sta.Tuple{}, false
			}
			i := int(e.d.Pins[v].FF)
			if opts.launchExcluded(i) {
				return sta.Tuple{}, false
			}
			ff := &e.d.FFs[i]
			gid := sta.NoGroup
			var credit model.Time
			switch spec.kind {
			case jobLevel, jobCross:
				if gid = e.tree.GroupOf(lt, ff.Clock); gid < 0 {
					return sta.Tuple{}, false
				}
				credit = e.tree.CreditAtDOf(lt, ff.Clock)
			case jobSelfLoop:
				credit = e.tree.Credit(ff.Clock)
			}
			arr := e.tree.Arrival(ff.Clock)
			var qAt model.Time
			if setup {
				qAt = arr.Late + e.ckq[i].Late - credit
			} else {
				qAt = arr.Early + e.ckq[i].Early + credit
			}
			return sta.Tuple{Time: qAt, From: ff.Clock, Origin: ff.Clock, Group: gid, Valid: true}, true
		case model.PI:
			if spec.kind != jobPI && spec.kind != jobPO {
				return sta.Tuple{}, false
			}
			if opts.ExcludeLaunchPin != nil && opts.ExcludeLaunchPin[v] {
				return sta.Tuple{}, false
			}
			if piIndex == nil {
				piIndex = make(map[model.PinID]int, len(e.d.PIs))
				for i, pi := range e.d.PIs {
					piIndex[pi] = i
				}
			}
			i, ok := piIndex[v]
			if !ok {
				return sta.Tuple{}, false
			}
			arr := e.d.PIArrival[i]
			var t model.Time
			if setup {
				t = arr.Late
			} else {
				t = arr.Early
			}
			return sta.Tuple{Time: t, From: model.NoPin, Origin: v, Group: sta.NoGroup, Valid: true}, true
		}
		return sta.Tuple{}, false
	}
}

// runJobOn replays spec's collect phase against prop, which must hold a
// completed (or patched) propagation of the job on e's design. The
// scratch's own propagation is untouched.
func (e *Engine) runJobOn(s *scratch, prop *sta.Prop, spec jobSpec, j, k int, opts Options, gb *globalBound) ([]*jobOut, int) {
	saved := s.prop
	s.prop = prop
	defer func() { s.prop = saved }()
	return e.collectJob(s, spec, j, k, opts, gb)
}

// servePatched tries to serve a dirtied job by patching its retained
// propagation instead of re-running it: it proves the snapshot's journal
// is the retained state plus a suffix of same-corner data-arc edits,
// patches the edits' dirty cone in place (canonical-order replay, so the
// result is byte-identical to a fresh run), and replays the collect
// phase. Returns ok=false when no patch applies — divergent journal
// chains, a clock-adjacent edit, or a vanished arc — and the caller
// falls back to a full run.
//
// When mc.Cache owns the retained state the patch is kept and the
// journal position advanced; a forked cache borrows the state under the
// entry mutex and restores it from the undo log, so speculative edits
// never contaminate the parent's retained propagation.
func (e *Engine) servePatched(s *scratch, rp *retainedProp, spec jobSpec, j, k int, opts Options, mc MemoCtx) ([]cachedOut, int, bool) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	edits, ok := mc.Journal.SuffixEdits(rp.journal, mc.Corner, nil)
	if !ok {
		return nil, 0, false
	}
	// Resolve edits to arc indices. Duplicates (an arc edited twice in
	// the suffix) are harmless: the design holds the final delay and the
	// patch worklist enqueues each dirty sink once.
	arcs := make([]int32, 0, len(edits))
	for _, ed := range edits {
		if e.d.IsClockPin(ed.Src) || e.d.IsClockPin(ed.Dst) {
			// Clock-adjacent edits can move seed values; the patch
			// replay assumes they cannot. (Such edits normally rebuild
			// the snapshot and never reach the journal — this guard
			// keeps the invariant local.)
			return nil, 0, false
		}
		ai := e.d.ArcBetween(ed.Src, ed.Dst)
		if ai < 0 {
			return nil, 0, false
		}
		arcs = append(arcs, ai)
	}
	owner := rp.owner == mc.Cache
	var undo *sta.PropUndo
	if !owner {
		undo = &rp.undo
		undo.Reset()
	}
	if len(arcs) > 0 {
		rp.prop.PatchSparse(e.d, opts.Mode == model.Setup, arcs, e.jobSeedFn(spec, opts), undo)
	}
	if owner {
		// The patch itself is not cancellable and is now complete: the
		// retained state reflects the snapshot's journal even if the
		// collect below is cut short.
		rp.journal, rp.seq = mc.Journal, mc.Seq
	} else {
		defer rp.prop.Unpatch(undo)
	}
	runOpts := opts
	runOpts.DisableGlobalBound = true
	var dummy globalBound
	jobOuts, prod := e.runJobOn(s, rp.prop, spec, j, k, runOpts, &dummy)
	if s.canceled() {
		return nil, 0, false
	}
	outs := make([]cachedOut, len(jobOuts))
	for i, o := range jobOuts {
		outs[i] = cachedOut{
			slack:    o.slack,
			idx:      o.idx,
			capFF:    o.capFF,
			launch:   o.launch,
			lcaDepth: o.lcaDepth,
			credit:   o.credit,
			pins:     e.reconstruct(rp.prop, o.chain),
		}
	}
	return outs, prod, true
}
