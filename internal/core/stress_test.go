package core

import (
	"context"
	"testing"

	"fastcppr/gen"
	"fastcppr/internal/baseline"
	"fastcppr/model"
)

// TestStressPresetsAgainstPairwise sweeps every Table III preset at a
// tiny scale and cross-checks the paper's algorithm against the
// independent pairwise implementation at several k, both modes. This is
// the widest randomized agreement net in the suite; skipped in -short.
func TestStressPresetsAgainstPairwise(t *testing.T) {
	if testing.Short() {
		t.Skip("preset stress sweep is slow")
	}
	for _, name := range gen.PresetNames() {
		spec, err := gen.PresetSpec(name, 0.004)
		if err != nil {
			t.Fatal(err)
		}
		d := gen.MustGenerate(spec)
		e := NewEngine(d)
		pw := baseline.NewPairwise(d, e.Tree())
		for _, mode := range model.Modes {
			for _, k := range []int{1, 25, 400} {
				ours := mustTopPaths(t, e, Options{K: k, Mode: mode, Threads: 3})
				ref, err := pw.TopPaths(context.Background(), mode, k, 2)
				if err != nil {
					t.Fatal(err)
				}
				if !equalSlacks(slacksOf(ours.Paths), slacksOf(ref)) {
					t.Fatalf("%s %v k=%d: engines disagree (%d vs %d paths)",
						name, mode, k, len(ours.Paths), len(ref))
				}
			}
		}
		// Per-endpoint summary is consistent with global top-1.
		sl := mustEndpointSlacks(t, e, Options{Mode: model.Setup, Threads: 2})
		res := mustTopPaths(t, e, Options{K: 1, Mode: model.Setup})
		if len(res.Paths) > 0 {
			worst := model.MaxTime
			for _, s := range sl {
				if s.Valid && s.Slack < worst {
					worst = s.Slack
				}
			}
			if worst != res.Paths[0].Slack {
				t.Fatalf("%s: endpoint summary worst %v, top-1 %v", name, worst, res.Paths[0].Slack)
			}
		}
	}
}
