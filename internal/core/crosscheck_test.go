package core

import (
	"context"
	"testing"

	"fastcppr/gen"
	"fastcppr/internal/baseline"
	"fastcppr/model"
)

// TestCoreAgreesWithBaselinesOnMediumDesigns cross-checks the paper's
// algorithm against two independent exact implementations on designs too
// large for exhaustive enumeration.
func TestCoreAgreesWithBaselinesOnMediumDesigns(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		d := gen.MustGenerate(gen.Medium(100 + seed))
		e := NewEngine(d)
		pw := baseline.NewPairwise(d, e.Tree())
		bb := baseline.NewBranchAndBound(d, e.Tree())
		for _, mode := range model.Modes {
			for _, k := range []int{1, 10, 200} {
				ours := mustTopPaths(t, e, Options{K: k, Mode: mode, Threads: 4})
				validatePaths(t, d, mode, ours.Paths)
				pws, err := pw.TopPaths(context.Background(), mode, k, 4)
				if err != nil {
					t.Fatal(err)
				}
				if !equalSlacks(slacksOf(ours.Paths), slacksOf(pws)) {
					t.Fatalf("seed %d %v k=%d: core vs pairwise differ\ncore: %v\npw:   %v",
						seed, mode, k, slacksOf(ours.Paths), slacksOf(pws))
				}
				bbs, _, err := bb.TopPaths(context.Background(), mode, k, 1)
				if err != nil {
					t.Fatal(err)
				}
				if !equalSlacks(slacksOf(ours.Paths), slacksOf(bbs)) {
					t.Fatalf("seed %d %v k=%d: core vs bnb differ", seed, mode, k)
				}
			}
		}
	}
}

// TestCoreAgreesWithBlockwiseLargeK exercises the deep-k regime where
// candidate bounding and deviation enumeration interact most.
func TestCoreAgreesWithBlockwiseLargeK(t *testing.T) {
	if testing.Short() {
		t.Skip("large-k crosscheck is slow")
	}
	d := gen.MustGenerate(gen.Medium(55))
	e := NewEngine(d)
	bw := baseline.NewBlockwise(d, e.Tree())
	for _, mode := range model.Modes {
		k := 2000
		ours := mustTopPaths(t, e, Options{K: k, Mode: mode, Threads: 8})
		bws, _, err := bw.TopPaths(context.Background(), mode, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !equalSlacks(slacksOf(ours.Paths), slacksOf(bws)) {
			t.Fatalf("mode %v: core vs blockwise differ at k=%d (got %d vs %d paths)",
				mode, k, len(ours.Paths), len(bws))
		}
		validatePaths(t, d, mode, ours.Paths)
	}
}
