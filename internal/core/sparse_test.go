package core

import (
	"context"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// TestSparseKernelMatchesDenseEngine compares complete engine results —
// paths with pins, slacks, credits, and the endpoint sweep — between the
// sparse frontier kernel (default) and the dense reference kernel
// (Options.DenseKernel), across modes, k values and thread counts. The
// two kernels must agree exactly, not just on slack spectra: identical
// tuples imply identical reconstruction.
func TestSparseKernelMatchesDenseEngine(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 4; seed++ {
		d := gen.MustGenerate(gen.Medium(seed))
		e := NewEngine(d)
		for _, mode := range []model.Mode{model.Setup, model.Hold} {
			for _, k := range []int{1, 8, 64} {
				for _, threads := range []int{1, 4} {
					opts := Options{K: k, Mode: mode, Threads: threads}
					dense := opts
					dense.DenseKernel = true
					rs, err := e.TopPaths(ctx, opts)
					if err != nil {
						t.Fatalf("sparse: %v", err)
					}
					rd, err := e.TopPaths(ctx, dense)
					if err != nil {
						t.Fatalf("dense: %v", err)
					}
					comparePaths(t, seed, mode, k, rs.Paths, rd.Paths)
				}
			}

			opts := Options{K: 1, Mode: mode}
			dense := opts
			dense.DenseKernel = true
			ss, err := e.EndpointSlacksCPPR(ctx, opts)
			if err != nil {
				t.Fatalf("sparse sweep: %v", err)
			}
			sd, err := e.EndpointSlacksCPPR(ctx, dense)
			if err != nil {
				t.Fatalf("dense sweep: %v", err)
			}
			for i := range ss {
				if ss[i] != sd[i] {
					t.Fatalf("seed %d mode %v: endpoint %d sweep differs: sparse %+v, dense %+v",
						seed, mode, i, ss[i], sd[i])
				}
			}
		}
	}
}

func comparePaths(t *testing.T, seed int64, mode model.Mode, k int, sparse, dense []model.Path) {
	t.Helper()
	if len(sparse) != len(dense) {
		t.Fatalf("seed %d mode %v k=%d: sparse %d paths, dense %d", seed, mode, k, len(sparse), len(dense))
	}
	for i := range sparse {
		s, d := &sparse[i], &dense[i]
		if s.Slack != d.Slack || s.Credit != d.Credit || s.CaptureFF != d.CaptureFF ||
			s.LaunchFF != d.LaunchFF || s.LCADepth != d.LCADepth || len(s.Pins) != len(d.Pins) {
			t.Fatalf("seed %d mode %v k=%d: path %d differs\nsparse: %+v\ndense:  %+v", seed, mode, k, i, s, d)
		}
		for j := range s.Pins {
			if s.Pins[j] != d.Pins[j] {
				t.Fatalf("seed %d mode %v k=%d: path %d pin %d: sparse %d, dense %d",
					seed, mode, k, i, j, s.Pins[j], d.Pins[j])
			}
		}
	}
}

// TestEndpointBestZeroAllocs pins the steady-state allocation count of a
// level job's kernel work inside the engine — endpointBest covers the
// reset/seed/propagate/capture cycle shared with runGroupedJob, minus the
// per-candidate output that necessarily allocates — at zero per job.
func TestEndpointBestZeroAllocs(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(4))
	e := NewEngine(d)
	s := e.getScratch(nil)
	defer e.putScratch(s)
	opts := Options{K: 1, Mode: model.Setup}
	slacks := make([]model.Time, len(d.FFs))
	valid := make([]bool, len(d.FFs))

	specs := []jobSpec{
		{kind: jobLevel, level: 0},
		{kind: jobLevel, level: 1},
		{kind: jobSelfLoop},
		{kind: jobPI},
	}
	for _, spec := range specs {
		e.endpointBest(s, spec, opts, slacks, valid) // warm-up: arrays, seed lists, level tables
		if allocs := testing.AllocsPerRun(20, func() {
			e.endpointBest(s, spec, opts, slacks, valid)
		}); allocs != 0 {
			t.Errorf("endpointBest kind=%d level=%d allocates %v per job, want 0", spec.kind, spec.level, allocs)
		}
	}
}
