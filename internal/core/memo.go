package core

import (
	"context"
	"sync"
	"sync/atomic"

	"fastcppr/internal/mmheap"
	"fastcppr/internal/qerr"
	"fastcppr/model"
)

// MemoMaxK bounds the query K the memoized path accepts: per-job cache
// entries materialise every kept candidate's pin sequence, so their
// retained memory is O(K × path length) per job. Queries beyond the
// bound fall back to the uncached TopPaths.
const MemoMaxK = 1024

// CacheCounters aggregates job-cache effectiveness counters, shared by
// every per-corner JobCache of a timer so Stats() reports one total.
type CacheCounters struct {
	Hits        atomic.Int64 // jobs served from cache
	Misses      atomic.Int64 // jobs executed (no entry, stale entry, or insufficient K)
	Invalidated atomic.Int64 // misses caused by a dirty-cone intersection
	Patched     atomic.Int64 // misses served by patching a retained propagation (subset of Misses)
}

// jobKey identifies a cacheable job result. The plan index is NOT part
// of the key: a job's candidate stream depends only on its kind/level
// and the query knobs below, so an entry stays valid when plan shape
// changes (e.g. IncludePOs toggling) re-number the jobs — the merge
// assigns the current plan index at serve time. K is handled by the
// entry's k/exhausted pair (the enumeration has the prefix property),
// and Threads never affects per-job output. The kernel and LCA-method
// knobs are kept in the key so ablation sweeps (sparse vs dense,
// RMQ vs lifting) exercise real runs of both variants.
type jobKey struct {
	kind    jobKind
	level   int
	mode    model.Mode
	lifting bool
	dense   bool
	// crpr is normalized by jobKeyCRPR: only level and cross jobs
	// depend on the CRPR mode, so self-loop/PI/PO entries are keyed
	// (and therefore shared) across modes.
	crpr model.CRPRMode
}

// jobKeyCRPR returns the CRPR mode a job's cache key carries. Self-loop
// candidates (launch == capture clock pin: parity trivially equal), PI
// launches and PO endpoints (no credit at all) produce identical output
// under either mode, so their keys normalize to CRPRSamePin and one
// cached run serves both.
func jobKeyCRPR(kind jobKind, crpr model.CRPRMode) model.CRPRMode {
	switch kind {
	case jobLevel, jobCross:
		return crpr
	default:
		return model.CRPRSamePin
	}
}

// cachedOut is one kept candidate of a memoized job: the jobOut fields
// that survive across queries, with the pin sequence already
// materialised (reconstruction needs the producing run's propagation
// arrays, which are gone once the worker moves on).
type cachedOut struct {
	slack    model.Time
	idx      int
	capFF    model.FFID
	launch   model.PinID
	lcaDepth int
	credit   model.Time
	pins     []model.PinID
}

// jobEntry is a cached job result. Immutable once stored except for
// seq, which lookups advance (atomically, monotonically) after
// revalidation so journal walks stay short.
//
// Serving smaller budgets is sound by the prefix property: the pop
// sequence under budget k' <= k is exactly the first pops under budget
// k truncated at idx < k' (deviation costs are non-negative, so the
// bounded heap's evictions never touch the next `remaining` outputs).
// Serving LARGER budgets is sound only from an exhausted entry: if the
// job's heap ran dry before its budget (produced < k), no push was ever
// evicted or bound-rejected — an eviction requires the heap to reach
// the remaining-output bound, after which it provably sustains
// full-budget pops — so the entry holds the job's complete candidate
// stream and is valid for every k'.
type jobEntry struct {
	seq atomic.Uint64
	// storeSeq is the journal sequence the entry was computed at —
	// immutable, unlike the seq watermark. Fork uses it to decide which
	// entries predate the fork point (and are therefore shared history)
	// versus entries a concurrent parent edit published past it.
	storeSeq  uint64
	k         int
	exhausted bool
	produced  int
	cone      *model.PinSet
	outs      []cachedOut
}

// advanceSeq moves the entry's validation watermark forward to seq,
// never backward: concurrent lookups may validate against different
// journal positions, and the watermark must not regress past a
// validation another reader already proved.
func (e *jobEntry) advanceSeq(seq uint64) {
	for {
		cur := e.seq.Load()
		if cur >= seq || e.seq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// JobCache memoizes candidate-generation job results for one (design
// corner, engine) pair across the queries of a snapshot chain. Entries
// are tagged with the job's seed cone (forward data-graph reachability
// of its launch points); a validator supplied per query decides, from
// the snapshot's edit journal, whether an entry stored at seq s is
// still exact — a job output can change only if an edited arc's source
// pin lies in the cone. Safe for concurrent use.
//
// The hot path — lookup from parallel candidate-generation jobs — is
// lock-free: readers load an atomic pointer to an immutable index map
// and never contend. Writers (store, and lookup's invalidation removals)
// serialize on a mutex and publish a fresh map copy-on-write; entries
// themselves are immutable after publication except for the atomic seq
// watermark, so a reader holding a superseded map still reads coherent
// data. Warm queries on a populated cache therefore scale with thread
// count instead of convoying on a cache mutex.
type JobCache struct {
	idx atomic.Pointer[map[jobKey]*jobEntry]
	mu  sync.Mutex // serializes copy-on-write publication
	ctr *CacheCounters
	// ret maps jobs to their retained propagation state for the patched
	// recompute path (patch.go). Kept separate from idx on purpose: a
	// dirtied entry is deleted by lookup, but the retained propagation
	// is most valuable exactly then — it is what turns the re-run into a
	// cone-sized patch. retBytes tracks the retention budget.
	ret      atomic.Pointer[map[jobKey]*retainedProp]
	retBytes atomic.Int64
}

// NewJobCache returns an empty cache reporting into ctr (shared across
// the timer's per-corner caches; nil disables counting).
func NewJobCache(ctr *CacheCounters) *JobCache {
	if ctr == nil {
		ctr = &CacheCounters{}
	}
	c := &JobCache{ctr: ctr}
	empty := make(map[jobKey]*jobEntry)
	c.idx.Store(&empty)
	return c
}

// Len returns the number of cached job entries.
func (c *JobCache) Len() int { return len(*c.idx.Load()) }

// publish replaces the index with a copy that has mutate applied, under
// the writer mutex. The copy is re-read inside the lock so concurrent
// publishes never lose each other's writes.
func (c *JobCache) publish(mutate func(m map[jobKey]*jobEntry)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := *c.idx.Load()
	next := make(map[jobKey]*jobEntry, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	mutate(next)
	c.idx.Store(&next)
}

// lookup serves key at budget k if a valid entry covers it, returning
// the served outs (a prefix view of the entry; read-only), the produced
// count a cold run at budget k would report, and whether it hit. On a
// hit the entry's seq advances to seq — the validator just proved no
// dirtying edit lies in (entry.seq, seq]. Lock-free except when an
// invalidated entry must be removed.
func (c *JobCache) lookup(key jobKey, k int, seq uint64, valid func(entrySeq uint64, cone *model.PinSet) bool) ([]cachedOut, int, bool) {
	e, ok := (*c.idx.Load())[key]
	if !ok {
		c.ctr.Misses.Add(1)
		return nil, 0, false
	}
	if !valid(e.seq.Load(), e.cone) {
		c.publish(func(m map[jobKey]*jobEntry) {
			// Remove only the entry we proved stale; a concurrent store
			// may already have replaced it with a fresh one.
			if m[key] == e {
				delete(m, key)
			}
		})
		c.ctr.Misses.Add(1)
		c.ctr.Invalidated.Add(1)
		return nil, 0, false
	}
	e.advanceSeq(seq)
	if e.k < k && !e.exhausted {
		// Valid but computed under a smaller budget whose stream did not
		// run dry: the tail beyond e.k is unknown.
		c.ctr.Misses.Add(1)
		return nil, 0, false
	}
	c.ctr.Hits.Add(1)
	outs := e.outs
	for len(outs) > 0 && outs[len(outs)-1].idx >= k {
		outs = outs[:len(outs)-1]
	}
	produced := e.produced
	if produced > k {
		produced = k
	}
	return outs, produced, true
}

// store records a job result computed at budget k from a run started at
// journal seq.
func (c *JobCache) store(key jobKey, seq uint64, k, produced int, cone *model.PinSet, outs []cachedOut) {
	e := &jobEntry{
		storeSeq:  seq,
		k:         k,
		exhausted: produced < k,
		produced:  produced,
		cone:      cone,
		outs:      outs,
	}
	e.seq.Store(seq)
	c.publish(func(m map[jobKey]*jobEntry) { m[key] = e })
}

// jobCone returns the data-graph footprint of spec: the set of pins a
// tuple seeded by this job can visit. An arc delay can influence the
// job's output only if the arc's SOURCE is in this set (propagation and
// deviation scanning both read only arcs leaving reached pins), so
// journal validation tests edit sources against it. Clock-arc, CK->Q,
// and constraint changes are outside this model and rebuild the whole
// snapshot (dropping the cache) instead.
func (e *Engine) jobCone(spec jobSpec) *model.PinSet {
	switch spec.kind {
	case jobLevel:
		return e.tree.LevelCone(spec.level)
	case jobPI:
		return e.tree.PICone()
	case jobPO:
		return e.tree.LaunchCone()
	default: // self-loop, cross-domain: the full FF launch universe
		return e.tree.AllCone()
	}
}

// TopPathsMemo is TopPaths with per-job memoization: each
// candidate-generation job's kept outputs are cached in cache, tagged
// with the job's seed cone and the journal seq, and reused across
// queries on the same snapshot chain whenever the validator proves no
// edit since the entry's seq can reach the job's cone. The merged
// report is byte-identical to an uncached TopPaths run:
//
//   - cache misses run their job with global-bound pruning disabled, so
//     the stored stream is the job's true ranked candidate prefix
//     rather than a bound-truncated one (the bound depends on job
//     completion order, which a cache must not capture);
//   - the global merge applies the same total order (slack, plan index,
//     pop index) over per-job supersets of what a cold run would
//     contribute — the extra elements all rank beyond the k-th best, so
//     the selected top-k is unchanged (see DESIGN.md §12).
//
// A job whose entry an edit dirtied does not necessarily re-run: when
// the cache retains the job's propagation state and the journal suffix
// since that state consists purely of same-corner data-arc edits, the
// job is served by patching the edits' dirty cone in place and replaying
// only the collect phase (patch.go) — byte-identical output at O(dirty
// cone) cost, counted in CacheCounters.Patched.
//
// Cancellation and panic containment follow TopPaths. Partial (canceled)
// job runs are never stored.
func (e *Engine) TopPathsMemo(ctx context.Context, opts Options, mc MemoCtx) (Result, error) {
	if err := qerr.FromContext(ctx); err != nil {
		return Result{}, err
	}
	cache := mc.Cache
	k := opts.K
	if k <= 0 || len(e.d.FFs) == 0 {
		return Result{}, nil
	}
	jobs := e.jobPlan(opts)
	numJobs := len(jobs)
	derivePropThreads(&opts, numJobs)

	less := func(a, b *jobOut) bool {
		if a.slack != b.slack {
			return a.slack < b.slack
		}
		if a.job != b.job {
			return a.job < b.job
		}
		return a.idx < b.idx
	}
	global := mmheap.New(less)
	var mu sync.Mutex

	qctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var failOnce sync.Once
	var failErr error
	fail := func(err error) {
		failOnce.Do(func() {
			failErr = err
			cancel()
		})
	}
	done := qctx.Done()

	var candidates, kept, reconstructed atomic.Int64
	e.forEachJob(&opts, numJobs, done, fail, "core.TopPathsMemo", "core.worker", func(s *scratch, j int) {
		spec := jobs[j]
		key := jobKey{
			kind:    spec.kind,
			level:   spec.level,
			mode:    opts.Mode,
			lifting: opts.UseLiftingLCA,
			dense:   opts.DenseKernel,
			crpr:    jobKeyCRPR(spec.kind, opts.CRPR),
		}
		outs, produced, hit := cache.lookup(key, k, mc.Seq, mc.Valid)
		if !hit {
			patched := false
			if !opts.DenseKernel {
				if rp := cache.retained(key); rp != nil {
					if pouts, prod, ok := e.servePatched(s, rp, spec, j, k, opts, mc); ok {
						outs, produced, patched = pouts, prod, true
						reconstructed.Add(int64(len(pouts)))
						cache.ctr.Patched.Add(1)
						cache.store(key, mc.Seq, k, prod, e.jobCone(spec), pouts)
					}
				}
			}
			if !patched {
				// Run the job at full fidelity: no global bound (its
				// truncation point depends on sibling-job timing) and
				// every kept candidate's pins materialised while this
				// worker's propagation arrays are still intact.
				runOpts := opts
				runOpts.DisableGlobalBound = true
				var dummy globalBound
				jobOuts, prod := e.runJob(s, spec, j, k, runOpts, &dummy)
				if s.canceled() {
					return // partial stream; do not store or merge
				}
				outs = make([]cachedOut, len(jobOuts))
				for i, o := range jobOuts {
					outs[i] = cachedOut{
						slack:    o.slack,
						idx:      o.idx,
						capFF:    o.capFF,
						launch:   o.launch,
						lcaDepth: o.lcaDepth,
						credit:   o.credit,
						pins:     e.reconstruct(s.prop, o.chain),
					}
					reconstructed.Add(1)
				}
				produced = prod
				cache.store(key, mc.Seq, k, prod, e.jobCone(spec), outs)
				e.retainProp(s, cache, key, mc)
			}
		}
		candidates.Add(int64(produced))
		kept.Add(int64(len(outs)))
		mu.Lock()
		for i := range outs {
			c := &outs[i]
			global.PushBounded(&jobOut{
				slack:    c.slack,
				job:      j,
				idx:      c.idx,
				capFF:    c.capFF,
				launch:   c.launch,
				lcaDepth: c.lcaDepth,
				credit:   c.credit,
				pins:     c.pins,
			}, k)
		}
		mu.Unlock()
	})
	if failErr != nil {
		return Result{}, failErr
	}
	if err := qerr.FromContext(ctx); err != nil {
		return Result{}, err
	}

	outs := make([]*jobOut, 0, global.Len())
	for {
		o, ok := global.PopMin()
		if !ok {
			break
		}
		outs = append(outs, o)
	}
	paths := make([]model.Path, len(outs))
	for i, o := range outs {
		paths[i] = e.materialise(opts.Mode, o)
		// Cached pin slices are shared across queries; reports own their
		// pins, so hand out a copy.
		paths[i].Pins = append([]model.PinID(nil), o.pins...)
	}
	return Result{
		Paths: paths,
		Stats: Stats{
			Jobs:          numJobs,
			Candidates:    int(candidates.Load()),
			Kept:          int(kept.Load()),
			Reconstructed: int(reconstructed.Load()),
		},
	}, nil
}
