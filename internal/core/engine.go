// Package core implements the CPPR algorithm of the paper: top-k
// post-CPPR critical path generation by enumerating the clock-tree depths
// of launching/capturing LCA nodes instead of flip-flop pairs
// (Algorithms 1–6).
//
// The engine runs D+2 independent candidate-generation jobs — one per
// clock-tree level (Definition 4), one for self-loop candidates
// (Definition 5), and one for primary-input candidates (Definition 6) —
// and reduces their outputs to the global top-k with a bounded min-max
// heap (Algorithm 6). Jobs are parallelised across a worker pool with
// per-worker O(n) scratch, giving the paper's O(T(n+k)+kp) space shape.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fastcppr/internal/faultinject"
	"fastcppr/internal/lca"
	"fastcppr/internal/mmheap"
	"fastcppr/internal/qerr"
	"fastcppr/internal/sched"
	"fastcppr/internal/sta"
	"fastcppr/model"
)

// Options configures a top-k query.
type Options struct {
	// K is the number of post-CPPR critical paths to report.
	K int
	// Mode selects setup or hold analysis.
	Mode model.Mode
	// Threads bounds worker parallelism; <= 0 uses GOMAXPROCS. Ignored
	// when Exec is set — the pool's size is the parallelism budget.
	Threads int
	// Exec, when non-nil, is the work-stealing worker context the query
	// runs under: candidate-generation jobs are spawned as stealable
	// tasks onto the caller's sched.Pool instead of dedicated goroutines,
	// so one pool load-balances jobs across every in-flight query (the
	// batch executor's (query × corner) units). The calling task
	// help-waits, so a unit never parks a pool worker.
	Exec *sched.TC
	// PropThreads bounds intra-job kernel parallelism: above 1, sparse
	// propagation runs under the partitioned frontier kernel
	// (sta.Prop.RunSparseParallel) with this many threads. <= 0 lets the
	// engine derive it (standalone queries split Threads across jobs;
	// pool-run queries keep 1 — the pool is already saturated by jobs).
	// Results are bit-identical at any setting.
	PropThreads int
	// UseLiftingLCA switches the LCA queries used by candidate
	// filtering from Euler-tour RMQ to binary lifting (ablation knob).
	UseLiftingLCA bool
	// IncludePOs adds output-check paths at constrained primary outputs
	// as an extra candidate class (extension beyond the paper, which
	// evaluates FF tests only). PO paths carry no credit.
	IncludePOs bool
	// FilterCapture restricts the query to paths captured by CaptureFF
	// (report_timing -to style). When false (default), all endpoints
	// are analysed.
	FilterCapture bool
	CaptureFF     model.FFID
	// CRPR selects the credit semantics: CRPRSamePin (default, the
	// paper's model) credits the window width at the last common clock
	// pin; CRPRSameTransition additionally zeroes the credit of
	// launch/capture pairs whose clock pins differ in inversion parity
	// (their edges disagree at every common ancestor). Parity-mismatched
	// same-domain pairs then route through the cross-parity job instead
	// of the level jobs.
	CRPR model.CRPRMode
	// DisableGlobalBound turns off the cross-job pruning on the shared
	// k-th-best slack (ablation knob; results are identical either way,
	// only the amount of skipped work changes).
	DisableGlobalBound bool
	// DenseKernel switches candidate propagation from the sparse
	// frontier kernel (epoch reset + worklist over the seeded cone) back
	// to the dense full-topological-order kernel. Verification/ablation
	// knob: the two kernels produce byte-identical reports, only the
	// amount of work differs. The differential battery runs both.
	DenseKernel bool
	// ExcludeLaunchFF / ExcludeCaptureFF / ExcludeLaunchPin implement
	// false-path exceptions at source/endpoint granularity (sdc.Filter):
	// excluded launches are never seeded and excluded captures never
	// produce candidates, which prunes soundly — the candidate universe
	// itself shrinks, so the top-k coverage bounds are unaffected.
	ExcludeLaunchFF  []bool
	ExcludeCaptureFF []bool
	ExcludeLaunchPin map[model.PinID]bool
}

// launchExcluded reports whether FF i may not launch paths.
func (o *Options) launchExcluded(i int) bool {
	return o.ExcludeLaunchFF != nil && o.ExcludeLaunchFF[i]
}

// captureExcluded reports whether FF i may not capture paths.
func (o *Options) captureExcluded(i int) bool {
	if o.FilterCapture && model.FFID(i) != o.CaptureFF {
		return true
	}
	return o.ExcludeCaptureFF != nil && o.ExcludeCaptureFF[i]
}

// Stats reports work counters from one top-k query.
type Stats struct {
	// Jobs is the number of candidate-generation jobs (D+2).
	Jobs int
	// Candidates is the number of path candidates produced across all
	// jobs before depth filtering.
	Candidates int
	// Kept is the number of candidates surviving their job's filter
	// (exact LCA depth, self-loop, or PI membership).
	Kept int
	// Reconstructed counts full pin-sequence reconstructions performed.
	Reconstructed int
}

// Result is a ranked top-k path report.
type Result struct {
	Paths []model.Path
	Stats Stats
}

// Engine answers top-k post-CPPR path queries for one design. It is
// immutable after construction and safe for concurrent queries.
type Engine struct {
	d    *model.Design
	tree *lca.Tree
	// ckq caches each FF's clock-to-Q delay window.
	ckq []model.Window
	// pool recycles per-worker scratch (candidate heap plus a pooled
	// propagation array pair) across queries, so batch workloads do not
	// re-allocate O(n) scratch per query. Shared by Rebind copies.
	pool *sync.Pool
}

// NewEngine preprocesses d (clock-tree structures, CK->Q lookup).
func NewEngine(d *model.Design) *Engine {
	return NewEngineWithTree(d, lca.New(d))
}

// NewEngineWithTree is NewEngine reusing an existing lca.Tree.
func NewEngineWithTree(d *model.Design, tree *lca.Tree) *Engine {
	e := &Engine{d: d, tree: tree, ckq: make([]model.Window, len(d.FFs))}
	for i := range d.FFs {
		// The model guarantees Q is driven exactly by the CK->Q arc.
		ai := d.FanIn(d.FFs[i].Output)[0]
		e.ckq[i] = d.Arcs[ai].Delay
	}
	e.pool = &sync.Pool{New: func() any { return &scratch{heap: mmheap.NewKey[*cand]()} }}
	return e
}

// Rebind returns an Engine over nd that reuses e's clock-tree structures
// and scratch pool. nd must differ from e's design only in non-clock arc
// delays — the precondition under which the shared lca.Tree (and its
// per-level tables) stays valid. The CK->Q cache is rebuilt from nd's
// arc table (CK->Q arcs launch from clock pins, so they are unchanged by
// that precondition, but rebuilding keeps the cache self-consistent).
func (e *Engine) Rebind(nd *model.Design) *Engine {
	ne := &Engine{d: nd, tree: e.tree, ckq: make([]model.Window, len(nd.FFs)), pool: e.pool}
	for i := range nd.FFs {
		ai := nd.FanIn(nd.FFs[i].Output)[0]
		ne.ckq[i] = nd.Arcs[ai].Delay
	}
	return ne
}

// Sibling returns an Engine over nd using tree for its clock-tree
// structures while sharing e's scratch pool. Unlike Rebind it accepts a
// different delay corner: nd may differ from e's design in any arc
// delay (clock arcs included) as long as tree matches nd — typically
// tree is Derive'd from e's tree, so the corners share the clock-tree
// shape and the engines share per-worker scratch across corner queries.
func (e *Engine) Sibling(nd *model.Design, tree *lca.Tree) *Engine {
	ne := &Engine{d: nd, tree: tree, ckq: make([]model.Window, len(nd.FFs)), pool: e.pool}
	for i := range nd.FFs {
		ai := nd.FanIn(nd.FFs[i].Output)[0]
		ne.ckq[i] = nd.Arcs[ai].Delay
	}
	return ne
}

// Design returns the engine's design.
func (e *Engine) Design() *model.Design { return e.d }

// Tree returns the engine's clock-tree structures.
func (e *Engine) Tree() *lca.Tree { return e.tree }

// noGroupQuery is the at_auto query group used by the ungrouped searches
// (self-loop and PI jobs): it never equals a tuple group, so at_auto
// degenerates to at(u) exactly as Algorithms 3 and 4 prescribe.
const noGroupQuery int32 = -2

// cand is an implicitly-represented path in a job's search (Algorithm 5):
// a parent path plus one deviation edge. The full pin sequence is the
// backwalk from pos along from-pointers, the deviation edge pos->devTo,
// then the parent's path from devTo onward.
type cand struct {
	slack  model.Time
	pos    model.PinID
	parent *cand
	// devTo is the head u of the deviation edge pos->u; NoPin for the
	// root candidate of an endpoint.
	devTo model.PinID
	capFF model.FFID
	// gid is the capture group for at_auto queries (noGroupQuery for
	// ungrouped jobs).
	gid int32
}

// jobOut is a filtered candidate leaving a job: its exact post-CPPR slack
// plus everything needed to materialise a model.Path if it survives the
// global selection.
type jobOut struct {
	slack    model.Time
	job, idx int
	capFF    model.FFID
	launch   model.PinID // launching CK pin or PI
	lcaDepth int
	credit   model.Time
	chain    *cand
	pins     []model.PinID // filled on acceptance into the global heap
}

// scratch is per-worker reusable state. The candidate heap is the
// key-specialised min-max heap: candidate slacks are its int64 keys.
// The propagation arrays come from the sta package's shared pool; the
// per-level group/credit tables live on the lca.Tree, computed once and
// shared by all workers. done carries the query's cancellation signal
// into the job bodies so their per-FF loops can bail out cooperatively.
type scratch struct {
	prop *sta.Prop
	heap *mmheap.KeyHeap[*cand]
	done <-chan struct{}
	// slacks/valid are the per-job endpoint sweep buffers of
	// EndpointSlacksCPPR, kept on the scratch so pool reuse amortises
	// their O(#FFs) allocation across jobs and queries.
	slacks []model.Time
	valid  []bool
}

// endpointBuffers returns the scratch's slacks/valid arrays sized for n
// endpoints, growing them on first use.
func (s *scratch) endpointBuffers(n int) ([]model.Time, []bool) {
	if cap(s.slacks) < n {
		s.slacks = make([]model.Time, n)
		s.valid = make([]bool, n)
	}
	return s.slacks[:n], s.valid[:n]
}

// getScratch checks a scratch out of the engine's pool and arms it with
// the query's cancellation signal.
func (e *Engine) getScratch(done <-chan struct{}) *scratch {
	s := e.pool.Get().(*scratch)
	s.prop = sta.GetProp()
	s.done = done
	return s
}

// putScratch returns s (and its pooled Prop) for reuse. Jobs Reset both
// before use, so recycling after a contained panic is safe.
func (e *Engine) putScratch(s *scratch) {
	sta.PutProp(s.prop)
	s.prop = nil
	s.done = nil
	e.pool.Put(s)
}

// canceled reports whether the query was canceled. Safe with a nil done.
func (s *scratch) canceled() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// cancelStride is how many iterations of a per-FF or per-pin loop run
// between cooperative cancellation checks, bounding cancel latency
// without measurable steady-state cost.
const cancelStride = 2048

// resetProp prepares the worker's propagation arrays for one job under
// the selected kernel: an O(1) epoch bump either way, with the sparse
// kernel additionally binding the design's topological order so seeding
// Offers feed the frontier.
func (e *Engine) resetProp(s *scratch, opts *Options) {
	if opts.DenseKernel {
		s.prop.Reset(e.d.NumPins())
	} else {
		s.prop.ResetFor(e.d)
	}
}

// runProp propagates the seeded tuples under the selected kernel. With
// PropThreads above 1 the sparse kernel runs partitioned across barrier
// blocks; tuples are bit-identical at any thread count, so the knob
// changes wall-clock only.
func (e *Engine) runProp(s *scratch, setup bool, opts *Options) {
	switch {
	case opts.DenseKernel:
		s.prop.RunCtx(e.d, setup, s.done)
	case opts.PropThreads > 1:
		s.prop.RunSparseParallel(e.d, setup, s.done, opts.PropThreads)
	default:
		s.prop.RunSparse(e.d, setup, s.done)
	}
}

// globalBound publishes the current global k-th best slack once the
// shared selection heap is full. Jobs stop popping when their next
// candidate's slack strictly exceeds it: such candidates (and everything
// after them in their job's slack order) can never enter the global
// top-k, so pruning on the bound cannot change results — it only skips
// provably useless work. The bound tightens as jobs complete, so the
// amount of skipped work varies run to run, but the output does not.
type globalBound struct {
	val atomic.Int64
	set atomic.Bool
}

func (g *globalBound) get() (model.Time, bool) {
	if !g.set.Load() {
		return 0, false
	}
	return model.Time(g.val.Load()), true
}

func (g *globalBound) publish(v model.Time) {
	g.val.Store(int64(v))
	g.set.Store(true)
}

// derivePropThreads resolves PropThreads when the caller left it
// automatic: a standalone query with more threads than jobs hands each
// job the leftover parallelism for its propagation kernel; pool-run
// queries keep serial kernels (sibling jobs and units already saturate
// the pool). Results are identical either way.
func derivePropThreads(opts *Options, numJobs int) {
	if opts.PropThreads > 0 {
		return
	}
	opts.PropThreads = 1
	if opts.Exec != nil || opts.DenseKernel || numJobs == 0 {
		return
	}
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > numJobs {
		opts.PropThreads = threads / numJobs
	}
}

// forEachJob runs body(s, j) exactly once for every job index in
// [0, numJobs), containing panics via fail. Two scheduling regimes:
//
//   - opts.Exec set: each job is spawned as one stealable task on the
//     caller's work-stealing pool and the calling task help-waits, so
//     jobs of concurrent queries share one load-balanced worker set and
//     a waiting unit never parks a pool worker.
//   - otherwise: min(Threads, numJobs) dedicated goroutines drain the
//     job list through an atomic counter (the standalone query shape).
//
// Either way each body invocation owns a scratch checked out of the
// engine's pool — per worker in goroutine mode, per task in pool mode —
// so a stolen job never cold-allocates its O(n) propagation arrays.
// body must tolerate running concurrently with itself; output
// determinism comes from the callers' order-insensitive merges.
func (e *Engine) forEachJob(opts *Options, numJobs int, done <-chan struct{}, fail func(error), site, fire string, body func(s *scratch, j int)) {
	contain := func(j int) {
		defer func() {
			if r := recover(); r != nil {
				fail(qerr.FromPanic(site, r))
			}
		}()
		s := e.getScratch(done)
		defer e.putScratch(s)
		if s.canceled() {
			return
		}
		faultinject.Fire(fire)
		body(s, j)
	}
	if tc := opts.Exec; tc != nil {
		g := tc.Pool().NewGroup()
		for j := 0; j < numJobs; j++ {
			j := j
			tc.Spawn(g, func(*sched.TC) { contain(j) })
		}
		g.Wait(tc)
		return
	}
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if threads > numJobs {
		threads = numJobs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Contain invariant panics (negative deviation cost,
			// deviation head off parent path, or anything else): one
			// poisoned design must fail its query, not the process.
			defer func() {
				if r := recover(); r != nil {
					fail(qerr.FromPanic(site, r))
				}
			}()
			s := e.getScratch(done)
			defer e.putScratch(s)
			for {
				j := int(next.Add(1) - 1)
				if j >= numJobs || s.canceled() {
					return
				}
				faultinject.Fire(fire)
				body(s, j)
			}
		}()
	}
	wg.Wait()
}

// TopPaths returns the global top-k post-CPPR critical paths
// (Algorithm 1). The context bounds the query: cancellation or deadline
// expiry returns an error matching qerr.ErrCanceled /
// qerr.ErrDeadlineExceeded within a bounded number of loop iterations,
// and a panic in any worker is contained and returned as a
// *qerr.InternalError instead of crashing the process.
func (e *Engine) TopPaths(ctx context.Context, opts Options) (Result, error) {
	if err := qerr.FromContext(ctx); err != nil {
		return Result{}, err
	}
	k := opts.K
	if k <= 0 || len(e.d.FFs) == 0 {
		return Result{}, nil
	}
	jobs := e.jobPlan(opts)
	numJobs := len(jobs)
	derivePropThreads(&opts, numJobs)

	// Global selection (Algorithm 6): a bounded min-max heap over all
	// filtered candidates under the total order (slack, job, idx), which
	// makes the surviving set independent of job completion order and
	// therefore of the thread count.
	less := func(a, b *jobOut) bool {
		if a.slack != b.slack {
			return a.slack < b.slack
		}
		if a.job != b.job {
			return a.job < b.job
		}
		return a.idx < b.idx
	}
	global := mmheap.New(less)
	var bound globalBound
	var mu sync.Mutex

	// fail records the first worker failure and cancels the derived
	// context so the remaining workers stop promptly.
	qctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var failOnce sync.Once
	var failErr error
	fail := func(err error) {
		failOnce.Do(func() {
			failErr = err
			cancel()
		})
	}
	done := qctx.Done()

	var candidates, kept, reconstructed atomic.Int64
	e.forEachJob(&opts, numJobs, done, fail, "core.TopPaths", "core.worker", func(s *scratch, j int) {
		outs, produced := e.runJob(s, jobs[j], j, k, opts, &bound)
		candidates.Add(int64(produced))
		kept.Add(int64(len(outs)))
		mu.Lock()
		for _, o := range outs {
			if global.PushBounded(o, k) {
				// Materialise the pins while this worker's propagation
				// arrays are still intact.
				o.pins = e.reconstruct(s.prop, o.chain)
				reconstructed.Add(1)
			}
		}
		if global.Len() >= k {
			if m, ok := global.Max(); ok {
				bound.publish(m.slack)
			}
		}
		mu.Unlock()
	})
	if failErr != nil {
		return Result{}, failErr
	}
	// Check the caller's context, not qctx: qctx is also canceled by our
	// own deferred cancel and by fail().
	if err := qerr.FromContext(ctx); err != nil {
		return Result{}, err
	}

	outs := make([]*jobOut, 0, global.Len())
	for {
		o, ok := global.PopMin()
		if !ok {
			break
		}
		outs = append(outs, o)
	}
	paths := make([]model.Path, len(outs))
	for i, o := range outs {
		paths[i] = e.materialise(opts.Mode, o)
	}
	return Result{
		Paths: paths,
		Stats: Stats{
			Jobs:          numJobs,
			Candidates:    int(candidates.Load()),
			Kept:          int(kept.Load()),
			Reconstructed: int(reconstructed.Load()),
		},
	}, nil
}

// materialise converts an accepted jobOut into a model.Path.
func (e *Engine) materialise(mode model.Mode, o *jobOut) model.Path {
	p := model.Path{
		Mode:      mode,
		Pins:      o.pins,
		CaptureFF: o.capFF,
		Slack:     o.slack,
		Credit:    o.credit,
		PreSlack:  o.slack - o.credit,
		LCADepth:  o.lcaDepth,
		LaunchFF:  model.NoFF,
	}
	if e.d.Pins[o.launch].Kind == model.FFClock {
		p.LaunchFF = e.d.Pins[o.launch].FF
	}
	return p
}

// jobKind classifies a candidate-generation job.
type jobKind uint8

const (
	jobLevel    jobKind = iota // getPathsAtLCALevel(d) — Definition 4
	jobSelfLoop                // getPathsFromSelfLoops — Definition 5
	jobPI                      // getPathsFromPIs — Definition 6
	jobCross                   // cross-domain pairs ("level -1", multi-domain extension)
	jobPO                      // output checks at constrained POs (extension)
)

// jobSpec is one entry of a query's job plan.
type jobSpec struct {
	kind  jobKind
	level int // for jobLevel
}

// jobPlan lists the candidate-generation jobs for a query: one per clock
// level, self-loop and PI jobs, plus the optional cross-domain and PO
// jobs.
func (e *Engine) jobPlan(opts Options) []jobSpec {
	jobs := make([]jobSpec, 0, e.d.Depth+4)
	for d := 0; d < e.d.Depth; d++ {
		// A depth where no FF pair has its exact clock LCA generates zero
		// candidates: the level job would propagate the full cone and then
		// filter everything. Skip it. The dense reference kernel keeps the
		// full plan (the replaced kernel's behaviour), so the differential
		// battery also proves the skip exact.
		if !opts.DenseKernel && !e.tree.LevelActive(d) {
			continue
		}
		jobs = append(jobs, jobSpec{kind: jobLevel, level: d})
	}
	jobs = append(jobs, jobSpec{kind: jobSelfLoop}, jobSpec{kind: jobPI})
	// The zero-credit job covers cross-domain pairs and, under
	// same_transition on parity-mixed trees, same-domain pairs whose
	// clock parities differ (both carry no credit).
	if len(e.d.Roots) > 1 || (opts.CRPR == model.CRPRSameTransition && e.tree.ParityMixed()) {
		jobs = append(jobs, jobSpec{kind: jobCross})
	}
	if opts.IncludePOs && !opts.FilterCapture {
		for i := range e.d.POs {
			if e.d.POConstrained[i] {
				jobs = append(jobs, jobSpec{kind: jobPO})
				break
			}
		}
	}
	return jobs
}

// runJob executes one candidate-generation job in its three phases —
// seed, propagate, collect — returning the filtered candidates and the
// number produced before filtering. The phase split is what the patched
// recompute path builds on: a retained propagation replaces the first
// two phases and runJobOn replays only the collect phase against it.
func (e *Engine) runJob(s *scratch, spec jobSpec, j, k int, opts Options, gb *globalBound) ([]*jobOut, int) {
	if !e.seedJob(s, spec, opts) {
		return nil, 0
	}
	e.runProp(s, opts.Mode == model.Setup, &opts)
	return e.collectJob(s, spec, j, k, opts, gb)
}

// jobSlack computes the endpoint slack from the propagated data arrival
// (Algorithm 2 lines 19–22), less the mode's clock uncertainty margin.
// The margin is a constant over all FF captures of the mode, so in-job
// heap ordering and cross-job bounds are unaffected by where it lands;
// applying it here keeps every reported slack signoff-exact. PO checks
// (runPOJob) have no capture clock and carry no uncertainty.
func (e *Engine) jobSlack(setup bool, capArr model.Window, ff *model.FF, dAt model.Time) model.Time {
	if setup {
		return capArr.Early + e.d.Period - ff.Setup - dAt - e.d.Uncertainty[model.Setup]
	}
	return dAt - (capArr.Late + ff.Hold) - e.d.Uncertainty[model.Hold]
}

// groupedTables resolves a grouped job's shared level table and seed
// universe: the per-level cut over FFs below it for level jobs; the
// domain (or domain × parity, under same_transition) grouping over
// every FF for the cross-domain job.
func (e *Engine) groupedTables(spec jobSpec, opts Options) (*lca.LevelTables, []model.FFID) {
	if spec.kind == jobLevel {
		return e.tree.SharedLevel(spec.level), e.tree.LevelFFs(spec.level)
	}
	if opts.CRPR == model.CRPRSameTransition {
		return e.tree.SharedCrossParity(), e.tree.AllFFs()
	}
	return e.tree.SharedCrossDomain(), e.tree.AllFFs()
}

// seedJob resets the propagation scratch and offers spec's seed tuples:
// Q pins offset by the grouping's credit (Algorithm 2 for level jobs;
// Algorithm 3's full-credit variant for self-loops; no credit for PO
// launches) and primary inputs at their external arrivals (Algorithm 4).
// Returns false on cancellation.
func (e *Engine) seedJob(s *scratch, spec jobSpec, opts Options) bool {
	setup := opts.Mode == model.Setup
	e.resetProp(s, &opts)
	seedFFs := func(seeds []model.FFID, lt *lca.LevelTables) bool {
		for si, fi := range seeds {
			if si%cancelStride == 0 && s.canceled() {
				return false
			}
			i := int(fi)
			if opts.launchExcluded(i) {
				continue
			}
			ff := &e.d.FFs[i]
			gid := sta.NoGroup
			var credit model.Time
			switch spec.kind {
			case jobLevel, jobCross:
				// Seeds below the cut, offset by credit(f_d(u)) so
				// propagated arrivals rank paths by slack(p, d)
				// (Definition 3).
				if gid = e.tree.GroupOf(lt, ff.Clock); gid < 0 {
					continue // depth(u) <= d
				}
				credit = e.tree.CreditAtDOf(lt, ff.Clock)
			case jobSelfLoop:
				credit = e.tree.Credit(ff.Clock)
			case jobPO:
				// Output checks compare pre-CPPR arrivals: no credit.
			}
			arr := e.tree.Arrival(ff.Clock)
			var qAt model.Time
			if setup {
				qAt = arr.Late + e.ckq[i].Late - credit
			} else {
				qAt = arr.Early + e.ckq[i].Early + credit
			}
			s.prop.Offer(ff.Output, qAt, ff.Clock, ff.Clock, gid, setup)
		}
		return true
	}
	seedPIs := func() {
		for i, pi := range e.d.PIs {
			if opts.ExcludeLaunchPin != nil && opts.ExcludeLaunchPin[pi] {
				continue
			}
			arr := e.d.PIArrival[i]
			var t model.Time
			if setup {
				t = arr.Late
			} else {
				t = arr.Early
			}
			s.prop.Offer(pi, t, model.NoPin, pi, sta.NoGroup, setup)
		}
	}
	switch spec.kind {
	case jobLevel, jobCross:
		lt, seeds := e.groupedTables(spec, opts)
		return seedFFs(seeds, lt)
	case jobSelfLoop:
		return seedFFs(e.tree.AllFFs(), nil)
	case jobPI:
		seedPIs()
		return true
	default: // jobPO: every launch point, FF Q pins and PIs alike
		if !seedFFs(e.tree.AllFFs(), nil) {
			return false
		}
		seedPIs()
		return true
	}
}

// collectJob builds spec's root candidates from the completed
// propagation in s.prop and runs the top-k pop/deviate loop (Algorithm 5)
// under the job's exactness filter. It reads only s.prop and s.heap, so
// the patched recompute path can aim it at a retained propagation.
func (e *Engine) collectJob(s *scratch, spec jobSpec, j, k int, opts Options, gb *globalBound) ([]*jobOut, int) {
	setup := opts.Mode == model.Setup
	s.heap.Reset()
	switch spec.kind {
	case jobLevel, jobCross:
		// Root candidates: best grouped arrival at each capture D pin.
		// Only FFs below the cut can capture at this level (gid >= 0),
		// so the seed list is the capture universe too.
		lt, seeds := e.groupedTables(spec, opts)
		for si, fi := range seeds {
			if si%cancelStride == 0 && s.canceled() {
				return nil, 0
			}
			i := int(fi)
			if opts.captureExcluded(i) {
				continue
			}
			ff := &e.d.FFs[i]
			gid := e.tree.GroupOf(lt, ff.Clock)
			if gid < 0 {
				continue
			}
			tup := s.prop.Auto(ff.Data, gid)
			if !tup.Valid {
				continue
			}
			slack := e.jobSlack(setup, e.tree.Arrival(ff.Clock), ff, tup.Time)
			s.heap.PushBounded(int64(slack), &cand{
				slack: slack,
				pos:   ff.Data,
				devTo: model.NoPin,
				capFF: model.FFID(i),
				gid:   gid,
			}, k)
		}
	case jobSelfLoop, jobPI:
		for i := range e.d.FFs {
			if i%cancelStride == 0 && s.canceled() {
				return nil, 0
			}
			if opts.captureExcluded(i) {
				continue
			}
			ff := &e.d.FFs[i]
			tup := s.prop.At(ff.Data)
			if !tup.Valid {
				continue
			}
			slack := e.jobSlack(setup, e.tree.Arrival(ff.Clock), ff, tup.Time)
			s.heap.PushBounded(int64(slack), &cand{
				slack: slack,
				pos:   ff.Data,
				devTo: model.NoPin,
				capFF: model.FFID(i),
				gid:   noGroupQuery,
			}, k)
		}
	default: // jobPO: rank constrained POs against their required windows
		for i, po := range e.d.POs {
			if !e.d.POConstrained[i] {
				continue
			}
			tup := s.prop.At(po)
			if !tup.Valid {
				continue
			}
			req := e.d.PORequired[i]
			var slack model.Time
			if setup {
				slack = req.Late - tup.Time
			} else {
				slack = tup.Time - req.Early
			}
			s.heap.PushBounded(int64(slack), &cand{
				slack: slack,
				pos:   po,
				devTo: model.NoPin,
				capFF: model.NoFF,
				gid:   noGroupQuery,
			}, k)
		}
	}
	return e.popAndFilter(s, j, k, opts, gb, e.jobKeep(spec, opts))
}

// jobKeep returns spec's exactness filter for the pop/deviate loop
// (Algorithm 6): the exact-LCA-depth test for level jobs, the
// domain/parity mismatch test for the cross job, the true-self-loop test,
// and the trivial zero-credit stamp for PI and PO candidates.
func (e *Engine) jobKeep(spec jobSpec, opts Options) func(*jobOut) bool {
	switch spec.kind {
	case jobLevel:
		d := spec.level
		return func(o *jobOut) bool {
			// Exact-depth filter: keep candidates whose LCA depth is d.
			// Cross-domain pairs (no LCA) are handled by their own job,
			// as — under same_transition — are parity-mismatched pairs
			// (their credit is zero at every common ancestor, so the
			// level credit this job applied would overstate it).
			capCK := e.d.FFs[o.capFF].Clock
			if opts.CRPR == model.CRPRSameTransition && e.tree.Parity(o.launch) != e.tree.Parity(capCK) {
				return false
			}
			lcaNode := e.lcaOf(o.launch, capCK, opts)
			if lcaNode == model.NoPin || e.tree.Depth(lcaNode) != d {
				return false
			}
			o.lcaDepth = d
			o.credit = e.tree.Credit(lcaNode)
			return true
		}
	case jobCross:
		sameTrans := opts.CRPR == model.CRPRSameTransition
		return func(o *jobOut) bool {
			capCK := e.d.FFs[o.capFF].Clock
			if e.tree.SameDomain(o.launch, capCK) &&
				(!sameTrans || e.tree.Parity(o.launch) == e.tree.Parity(capCK)) {
				return false
			}
			o.lcaDepth = -1
			o.credit = 0
			return true
		}
	case jobSelfLoop:
		return func(o *jobOut) bool {
			// Keep true self-loops only.
			if e.d.Pins[o.launch].Kind != model.FFClock || e.d.Pins[o.launch].FF != o.capFF {
				return false
			}
			o.lcaDepth = e.tree.Depth(o.launch)
			o.credit = e.tree.Credit(o.launch)
			return true
		}
	default: // jobPI, jobPO: zero-credit candidates, no further filtering
		return func(o *jobOut) bool {
			o.lcaDepth = -1
			o.credit = 0
			return true
		}
	}
}

// lcaOf returns the LCA clock node under the configured query method.
func (e *Engine) lcaOf(u, v model.PinID, opts Options) model.PinID {
	if opts.UseLiftingLCA {
		return e.tree.LCALifting(u, v)
	}
	return e.tree.LCA(u, v)
}

// popAndFilter is the top-k pop/deviate loop of Algorithm 5 shared by all
// job kinds: it pops up to k candidates in slack order, pushes each pop's
// deviations back (bounded by the remaining output count), resolves each
// popped candidate's launch point, and applies the job-specific filter.
func (e *Engine) popAndFilter(s *scratch, job, k int, opts Options, gb *globalBound, keep func(*jobOut) bool) ([]*jobOut, int) {
	setup := opts.Mode == model.Setup
	var outs []*jobOut
	produced := 0
	for i := 0; i < k; i++ {
		// Each pop can push O(path length × fan-in) deviations, so the
		// per-pop cancellation check bounds latency here too.
		if s.canceled() {
			break
		}
		kv, ok := s.heap.PopMin()
		if !ok {
			break
		}
		p := kv.V
		// Global-bound pruning: once the shared selection holds k paths,
		// candidates strictly beyond the k-th best slack — and everything
		// this job would pop after them — can never be selected.
		if !opts.DisableGlobalBound {
			if v, okB := gb.get(); okB && p.slack > v {
				break
			}
		}
		produced++
		remaining := k - i - 1
		if remaining > 0 {
			e.pushDeviations(s, p, remaining, setup)
		}
		o := &jobOut{
			slack:  p.slack,
			job:    job,
			idx:    i,
			capFF:  p.capFF,
			launch: e.launchOf(s.prop, p),
			chain:  p,
		}
		if keep(o) {
			outs = append(outs, o)
		}
	}
	return outs, produced
}

// pushDeviations walks backward from p.pos along from-pointers and pushes
// one deviated candidate per non-path in-edge (Algorithm 5 lines 11–20).
func (e *Engine) pushDeviations(s *scratch, p *cand, bound int, setup bool) {
	d := e.d
	u := p.pos
	for {
		if d.IsClockPin(u) {
			return // reached the launching CK pin
		}
		ft := s.prop.Auto(u, p.gid)
		from := ft.From
		for _, ai := range d.FanIn(u) {
			arc := &d.Arcs[ai]
			w := arc.From
			if w == from {
				continue
			}
			wt := s.prop.Auto(w, p.gid)
			if !wt.Valid {
				continue
			}
			var delay, cost model.Time
			if setup {
				delay = arc.Delay.Late
				cost = ft.Time - (wt.Time + delay)
			} else {
				delay = arc.Delay.Early
				cost = wt.Time + delay - ft.Time
			}
			if cost < 0 {
				panic(fmt.Sprintf("core: negative deviation cost %v at %s -> %s",
					cost, d.PinName(w), d.PinName(u)))
			}
			// Cheap pre-check before allocating the candidate: a full
			// heap rejects anything at or past its current maximum.
			slack := p.slack + cost
			if s.heap.Len() >= bound {
				if m, _ := s.heap.MaxKey(); m <= int64(slack) {
					continue
				}
			}
			s.heap.PushBounded(int64(slack), &cand{
				slack:  slack,
				pos:    w,
				parent: p,
				devTo:  u,
				capFF:  p.capFF,
				gid:    p.gid,
			}, bound)
		}
		if from == model.NoPin {
			return // reached a primary-input seed
		}
		u = from
	}
}

// launchOf resolves the launching pin (CK pin or PI) of a candidate in
// O(1) from the origin tag its prefix tuple carries.
func (e *Engine) launchOf(prop *sta.Prop, p *cand) model.PinID {
	if e.d.IsClockPin(p.pos) {
		return p.pos
	}
	return prop.Auto(p.pos, p.gid).Origin
}

// reconstruct materialises the full pin sequence of a candidate:
// the backwalk of its prefix, then each ancestor's suffix after the
// corresponding deviation edge.
func (e *Engine) reconstruct(prop *sta.Prop, p *cand) []model.PinID {
	// Collect the chain root-first.
	var chain []*cand
	for c := p; c != nil; c = c.parent {
		chain = append(chain, c)
	}
	// chain[len-1] is the root candidate.
	var path []model.PinID
	for i := len(chain) - 1; i >= 0; i-- {
		c := chain[i]
		prefix := e.backwalk(prop, c.pos, c.gid)
		if c.devTo == model.NoPin {
			path = prefix
			continue
		}
		// Splice: prefix + suffix of current path from devTo onward.
		cut := -1
		for idx, pin := range path {
			if pin == c.devTo {
				cut = idx
				break
			}
		}
		if cut < 0 {
			panic("core: deviation head not on parent path")
		}
		spliced := make([]model.PinID, 0, len(prefix)+len(path)-cut)
		spliced = append(spliced, prefix...)
		spliced = append(spliced, path[cut:]...)
		path = spliced
	}
	return path
}

// backwalk returns the pin sequence from the seed (CK pin or PI) to pos,
// in forward order.
func (e *Engine) backwalk(prop *sta.Prop, pos model.PinID, gid int32) []model.PinID {
	var rev []model.PinID
	u := pos
	for {
		rev = append(rev, u)
		if e.d.IsClockPin(u) {
			break
		}
		t := prop.Auto(u, gid)
		if t.From == model.NoPin {
			break
		}
		u = t.From
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// EndpointSlacksCPPR computes the exact post-CPPR worst slack of every
// FF test endpoint in O(nD): for each candidate-generation job, the best
// (root-candidate) slack at each capture FF is recorded, and the
// per-endpoint minimum across jobs is taken.
//
// Correctness: for endpoint e with true worst post-CPPR path p* at LCA
// depth d*, every job value at e is >= slack_CPPR of some candidate
// >= slack_CPPR(p*) (the d-PR dominance lemma, PROOFS.md L3), and the
// level-d* job yields exactly slack_CPPR(p*) (L2). Self-loop, PI and
// cross-domain jobs cover the remaining path classes the same way.
//
// This turns the paper's top-k machinery into a full post-CPPR signoff
// summary (per-endpoint WNS) at the cost of a single k=1 query.
//
// Cancellation and panic containment follow TopPaths: the context bounds
// the query and a worker panic returns a *qerr.InternalError.
func (e *Engine) EndpointSlacksCPPR(ctx context.Context, opts Options) ([]EndpointCPPRSlack, error) {
	if err := qerr.FromContext(ctx); err != nil {
		return nil, err
	}
	out := make([]EndpointCPPRSlack, len(e.d.FFs))
	for i := range out {
		out[i].FF = model.FFID(i)
	}
	if len(e.d.FFs) == 0 {
		return out, nil
	}
	opts.K = 1
	jobs := e.jobPlan(opts)
	derivePropThreads(&opts, len(jobs))

	var mu sync.Mutex
	merge := func(slacks []model.Time, valid []bool) {
		mu.Lock()
		defer mu.Unlock()
		for i := range out {
			if valid[i] && (!out[i].Valid || slacks[i] < out[i].Slack) {
				out[i].Slack, out[i].Valid = slacks[i], true
			}
		}
	}

	qctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var failOnce sync.Once
	var failErr error
	fail := func(err error) {
		failOnce.Do(func() {
			failErr = err
			cancel()
		})
	}
	done := qctx.Done()

	e.forEachJob(&opts, len(jobs), done, fail, "core.EndpointSlacksCPPR", "core.endpoint.worker", func(s *scratch, j int) {
		if jobs[j].kind == jobPO {
			return // PO endpoints are not FF tests
		}
		slacks, valid := s.endpointBuffers(len(e.d.FFs))
		e.endpointBest(s, jobs[j], opts, slacks, valid)
		if s.canceled() {
			return // partial endpointBest output; don't merge
		}
		merge(slacks, valid)
	})
	if failErr != nil {
		return nil, failErr
	}
	if err := qerr.FromContext(ctx); err != nil {
		return nil, err
	}
	return out, nil
}

// EndpointCPPRSlack is one endpoint's exact post-CPPR worst slack.
type EndpointCPPRSlack struct {
	FF    model.FFID
	Slack model.Time
	Valid bool
}

// endpointBest runs one job's seeding/propagation and records the best
// slack at every capture FF (the root-candidate values of Algorithm 5)
// into slacks/valid.
func (e *Engine) endpointBest(s *scratch, spec jobSpec, opts Options, slacks []model.Time, valid []bool) {
	setup := opts.Mode == model.Setup
	for i := range valid {
		valid[i] = false
	}
	e.resetProp(s, &opts)
	var lt *lca.LevelTables
	var seeds []model.FFID
	switch spec.kind {
	case jobLevel:
		lt = e.tree.SharedLevel(spec.level)
		seeds = e.tree.LevelFFs(spec.level)
	case jobCross:
		if opts.CRPR == model.CRPRSameTransition {
			lt = e.tree.SharedCrossParity()
		} else {
			lt = e.tree.SharedCrossDomain()
		}
		seeds = e.tree.AllFFs()
	case jobSelfLoop:
		for i := range e.d.FFs {
			if i%cancelStride == 0 && s.canceled() {
				return
			}
			if opts.launchExcluded(i) {
				continue
			}
			ff := &e.d.FFs[i]
			arr := e.tree.Arrival(ff.Clock)
			credit := e.tree.Credit(ff.Clock)
			var qAt model.Time
			if setup {
				qAt = arr.Late + e.ckq[i].Late - credit
			} else {
				qAt = arr.Early + e.ckq[i].Early + credit
			}
			s.prop.Offer(ff.Output, qAt, ff.Clock, ff.Clock, sta.NoGroup, setup)
		}
	case jobPI:
		for i, pi := range e.d.PIs {
			if opts.ExcludeLaunchPin != nil && opts.ExcludeLaunchPin[pi] {
				continue
			}
			arr := e.d.PIArrival[i]
			var t model.Time
			if setup {
				t = arr.Late
			} else {
				t = arr.Early
			}
			s.prop.Offer(pi, t, model.NoPin, pi, sta.NoGroup, setup)
		}
	}
	if lt != nil {
		for si, fi := range seeds {
			if si%cancelStride == 0 && s.canceled() {
				return
			}
			i := int(fi)
			if opts.launchExcluded(i) {
				continue
			}
			ff := &e.d.FFs[i]
			gid := e.tree.GroupOf(lt, ff.Clock)
			if gid < 0 {
				continue
			}
			arr := e.tree.Arrival(ff.Clock)
			credit := e.tree.CreditAtDOf(lt, ff.Clock)
			var qAt model.Time
			if setup {
				qAt = arr.Late + e.ckq[i].Late - credit
			} else {
				qAt = arr.Early + e.ckq[i].Early + credit
			}
			s.prop.Offer(ff.Output, qAt, ff.Clock, ff.Clock, gid, setup)
		}
	}
	e.runProp(s, setup, &opts)
	if lt != nil {
		// Only the job's seed FFs can be valid captures here: any FF
		// outside the list has gid < 0 under this cut.
		for si, fi := range seeds {
			if si%cancelStride == 0 && s.canceled() {
				return
			}
			i := int(fi)
			if opts.captureExcluded(i) {
				continue
			}
			ff := &e.d.FFs[i]
			gid := e.tree.GroupOf(lt, ff.Clock)
			if gid < 0 {
				continue
			}
			tup := s.prop.Auto(ff.Data, gid)
			if !tup.Valid {
				continue
			}
			slacks[i] = e.jobSlack(setup, e.tree.Arrival(ff.Clock), ff, tup.Time)
			valid[i] = true
		}
		return
	}
	for i := range e.d.FFs {
		if i%cancelStride == 0 && s.canceled() {
			return
		}
		if opts.captureExcluded(i) {
			continue
		}
		ff := &e.d.FFs[i]
		tup := s.prop.At(ff.Data)
		if !tup.Valid {
			continue
		}
		slacks[i] = e.jobSlack(setup, e.tree.Arrival(ff.Clock), ff, tup.Time)
		valid[i] = true
	}
}
