package core

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"fastcppr/gen"
	"fastcppr/internal/baseline"
	"fastcppr/model"
)

// mustTopPaths runs a top-k query under a background context, which
// can only fail on an engine invariant violation — fatal in tests.
func mustTopPaths(tb testing.TB, e *Engine, opts Options) Result {
	tb.Helper()
	res, err := e.TopPaths(context.Background(), opts)
	if err != nil {
		tb.Fatalf("TopPaths: %v", err)
	}
	return res
}

// mustEndpointSlacks is mustTopPaths for the endpoint-slack sweep.
func mustEndpointSlacks(tb testing.TB, e *Engine, opts Options) []EndpointCPPRSlack {
	tb.Helper()
	out, err := e.EndpointSlacksCPPR(context.Background(), opts)
	if err != nil {
		tb.Fatalf("EndpointSlacksCPPR: %v", err)
	}
	return out
}

// slacksOf returns the sorted slack list of a result.
func slacksOf(paths []model.Path) []model.Time {
	s := baseline.Slacks(paths)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func equalSlacks(a, b []model.Time) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validatePaths re-derives every reported path from first principles and
// checks the full slack decomposition, ordering, and structure.
func validatePaths(t *testing.T, d *model.Design, mode model.Mode, paths []model.Path) {
	t.Helper()
	var prev model.Time
	for i, p := range paths {
		if p.Mode != mode {
			t.Fatalf("path %d has mode %v, want %v", i, p.Mode, mode)
		}
		if i > 0 && p.Slack < prev {
			t.Fatalf("paths not sorted: %v after %v", p.Slack, prev)
		}
		prev = p.Slack
		ref, err := d.RecomputePath(mode, p.Pins)
		if err != nil {
			t.Fatalf("path %d invalid: %v\npins: %v", i, err, p.Pins)
		}
		if ref.Slack != p.Slack {
			t.Fatalf("path %d slack %v, recomputed %v", i, p.Slack, ref.Slack)
		}
		if ref.PreSlack != p.PreSlack || ref.Credit != p.Credit {
			t.Fatalf("path %d decomposition (%v,%v), recomputed (%v,%v)",
				i, p.PreSlack, p.Credit, ref.PreSlack, ref.Credit)
		}
		if ref.LCADepth != p.LCADepth || ref.LaunchFF != p.LaunchFF || ref.CaptureFF != p.CaptureFF {
			t.Fatalf("path %d identity mismatch: got depth=%d lau=%d cap=%d, want %d/%d/%d",
				i, p.LCADepth, p.LaunchFF, p.CaptureFF, ref.LCADepth, ref.LaunchFF, ref.CaptureFF)
		}
	}
}

func TestTopPathsMatchesBruteForceOracle(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		e := NewEngine(d)
		for _, mode := range model.Modes {
			brute := baseline.AllPaths(d, mode)
			baseline.SortPaths(brute)
			for _, k := range []int{1, 3, 10, 50, len(brute) + 10} {
				got := mustTopPaths(t, e, Options{K: k, Mode: mode, Threads: 2})
				validatePaths(t, d, mode, got.Paths)
				want := brute
				if len(want) > k {
					want = want[:k]
				}
				if !equalSlacks(slacksOf(got.Paths), baseline.Slacks(want)) {
					t.Fatalf("seed %d mode %v k %d: slacks differ\ngot:  %v\nwant: %v",
						seed, mode, k, slacksOf(got.Paths), baseline.Slacks(want))
				}
			}
		}
	}
}

func TestTopPathsMediumOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("medium oracle is slow")
	}
	spec := gen.SmallOracle(99)
	spec.NumFFs = 20
	spec.CombPerLayer = 16
	spec.CombLayers = 3
	d := gen.MustGenerate(spec)
	e := NewEngine(d)
	for _, mode := range model.Modes {
		brute := baseline.BruteForce(d, mode, 200)
		got := mustTopPaths(t, e, Options{K: 200, Mode: mode})
		validatePaths(t, d, mode, got.Paths)
		if !equalSlacks(slacksOf(got.Paths), baseline.Slacks(brute)) {
			t.Fatalf("mode %v: slacks differ", mode)
		}
	}
}

func TestThreadCountDeterminism(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(21))
	e := NewEngine(d)
	for _, mode := range model.Modes {
		ref := mustTopPaths(t, e, Options{K: 100, Mode: mode, Threads: 1})
		for _, threads := range []int{2, 4, 8} {
			got := mustTopPaths(t, e, Options{K: 100, Mode: mode, Threads: threads})
			if len(got.Paths) != len(ref.Paths) {
				t.Fatalf("threads %d: %d paths, want %d", threads, len(got.Paths), len(ref.Paths))
			}
			for i := range ref.Paths {
				if got.Paths[i].Slack != ref.Paths[i].Slack {
					t.Fatalf("threads %d: path %d slack %v, want %v",
						threads, i, got.Paths[i].Slack, ref.Paths[i].Slack)
				}
				if fmt.Sprint(got.Paths[i].Pins) != fmt.Sprint(ref.Paths[i].Pins) {
					t.Fatalf("threads %d: path %d pins differ", threads, i)
				}
			}
		}
	}
}

func TestLCAMethodsAgree(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(5))
	e := NewEngine(d)
	a := mustTopPaths(t, e, Options{K: 50, Mode: model.Setup})
	b := mustTopPaths(t, e, Options{K: 50, Mode: model.Setup, UseLiftingLCA: true})
	if !equalSlacks(slacksOf(a.Paths), slacksOf(b.Paths)) {
		t.Fatal("Euler and lifting LCA produce different results")
	}
}

func TestTopPathsValidOnMediumDesign(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(33))
	e := NewEngine(d)
	for _, mode := range model.Modes {
		res := mustTopPaths(t, e, Options{K: 500, Mode: mode, Threads: 4})
		if len(res.Paths) == 0 {
			t.Fatalf("mode %v: no paths", mode)
		}
		validatePaths(t, d, mode, res.Paths)
		if res.Stats.Jobs < 2 || res.Stats.Jobs > d.Depth+2 {
			t.Errorf("Jobs = %d, want in [2, %d]", res.Stats.Jobs, d.Depth+2)
		}
		if res.Stats.Candidates < res.Stats.Kept {
			t.Errorf("Candidates %d < Kept %d", res.Stats.Candidates, res.Stats.Kept)
		}
	}
}

func TestKZeroAndNegative(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(1))
	e := NewEngine(d)
	if got := mustTopPaths(t, e, Options{K: 0, Mode: model.Setup}); len(got.Paths) != 0 {
		t.Error("K=0 returned paths")
	}
	if got := mustTopPaths(t, e, Options{K: -5, Mode: model.Setup}); len(got.Paths) != 0 {
		t.Error("K<0 returned paths")
	}
}

func TestNoFFDesign(t *testing.T) {
	b := model.NewBuilder("noff", model.Ns(1))
	clk := b.AddClockRoot("clk")
	cb := b.AddClockBuf("b")
	b.AddArc(clk, cb, model.Window{Early: 1, Late: 2})
	d := b.MustBuild()
	e := NewEngine(d)
	if got := mustTopPaths(t, e, Options{K: 10, Mode: model.Setup}); len(got.Paths) != 0 {
		t.Error("no-FF design returned paths")
	}
}

// TestFigure1Reordering reproduces the paper's Figure 1: before CPPR,
// path 2 (large shared clock segment) looks more critical than path 1;
// after CPPR the order flips because pessimism 2 exceeds pessimism 1.
func TestFigure1Reordering(t *testing.T) {
	b := model.NewBuilder("fig1", model.Ns(10))
	clk := b.AddClockRoot("clk")
	// A long, skewed common trunk feeding FF3/FF4 (data path 2);
	// a short trunk feeding FF1/FF2 (data path 1).
	t1 := b.AddClockBuf("t1")
	t2 := b.AddClockBuf("t2")
	b.AddArc(clk, t1, model.Window{Early: 10, Late: 15}) // pessimism 1 trunk: 5
	b.AddArc(clk, t2, model.Window{Early: 10, Late: 90}) // pessimism 2 trunk: 80
	ff1 := b.AddFF("ff1", 0, 0, model.Window{Early: 10, Late: 10})
	ff2 := b.AddFF("ff2", 0, 0, model.Window{Early: 10, Late: 10})
	ff3 := b.AddFF("ff3", 0, 0, model.Window{Early: 10, Late: 10})
	ff4 := b.AddFF("ff4", 0, 0, model.Window{Early: 10, Late: 10})
	b.AddArc(t1, ff1.Clock, model.Window{Early: 5, Late: 5})
	b.AddArc(t1, ff2.Clock, model.Window{Early: 5, Late: 5})
	b.AddArc(t2, ff3.Clock, model.Window{Early: 5, Late: 5})
	b.AddArc(t2, ff4.Clock, model.Window{Early: 5, Late: 5})
	g1 := b.AddComb("g1")
	g2 := b.AddComb("g2")
	// Path 2 (ff3 -> ff4) is worse pre-CPPR than path 1 only because of
	// trunk skew; its data delay is smaller, so removing pessimism flips
	// the order.
	b.AddArc(ff1.Q, g1, model.Window{Early: 100, Late: 200})
	b.AddArc(g1, ff2.D, model.Window{Early: 10, Late: 10})
	b.AddArc(ff3.Q, g2, model.Window{Early: 100, Late: 160})
	b.AddArc(g2, ff4.D, model.Window{Early: 10, Late: 10})
	d := b.MustBuild()
	e := NewEngine(d)

	res := mustTopPaths(t, e, Options{K: 2, Mode: model.Setup})
	if len(res.Paths) != 2 {
		t.Fatalf("got %d paths", len(res.Paths))
	}
	first := res.Paths[0]
	// Pre-CPPR, the ff3->ff4 path is worse (worst would be path 2);
	// post-CPPR its 80ps credit makes path 1 the most critical.
	if first.PreSlack > res.Paths[1].PreSlack {
		// ordering by post-CPPR slack must have flipped the pair
		if first.CaptureFF != ff2.ID {
			t.Fatalf("expected path into ff2 first, got capture FF %d", first.CaptureFF)
		}
	} else {
		t.Fatalf("fixture did not create the reordering scenario: pre %v vs %v",
			first.PreSlack, res.Paths[1].PreSlack)
	}
	if first.Credit != 5 {
		t.Errorf("path 1 credit = %v, want 5", first.Credit)
	}
	if res.Paths[1].Credit != 80 {
		t.Errorf("path 2 credit = %v, want 80", res.Paths[1].Credit)
	}
}

// TestSelfLoopCandidates verifies Definition 5 handling on a design whose
// most critical path is a self-loop.
func TestSelfLoopCandidates(t *testing.T) {
	b := model.NewBuilder("selfloop", model.Ns(10))
	clk := b.AddClockRoot("clk")
	cb := b.AddClockBuf("cb")
	b.AddArc(clk, cb, model.Window{Early: 10, Late: 60}) // credit at cb: 50
	ff1 := b.AddFF("ff1", 0, 0, model.Window{Early: 10, Late: 10})
	ff2 := b.AddFF("ff2", 0, 0, model.Window{Early: 10, Late: 10})
	b.AddArc(cb, ff1.Clock, model.Window{Early: 5, Late: 25}) // credit at ff1/CK: 70
	b.AddArc(cb, ff2.Clock, model.Window{Early: 5, Late: 25})
	g := b.AddComb("g")
	b.AddArc(ff1.Q, g, model.Window{Early: 50, Late: 400})
	b.AddArc(g, ff1.D, model.Window{Early: 10, Late: 10}) // self loop
	b.AddArc(g, ff2.D, model.Window{Early: 10, Late: 10}) // cross pair
	d := b.MustBuild()
	e := NewEngine(d)

	for _, mode := range model.Modes {
		got := mustTopPaths(t, e, Options{K: 10, Mode: mode})
		brute := baseline.BruteForce(d, mode, 10)
		if !equalSlacks(slacksOf(got.Paths), baseline.Slacks(brute)) {
			t.Fatalf("mode %v: got %v want %v", mode, slacksOf(got.Paths), baseline.Slacks(brute))
		}
		validatePaths(t, d, mode, got.Paths)
		// One of the reported paths must be the self-loop with full
		// credit 70.
		foundSelf := false
		for _, p := range got.Paths {
			if p.SelfLoop() {
				foundSelf = true
				if p.Credit != 70 {
					t.Errorf("self-loop credit = %v, want 70", p.Credit)
				}
			}
		}
		if !foundSelf {
			t.Errorf("mode %v: no self-loop path reported", mode)
		}
	}
}

// TestPICandidates verifies Definition 6 handling: PI-launched paths carry
// no credit and compete with FF-launched paths.
func TestPICandidates(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		spec := gen.SmallOracle(seed)
		spec.NumPIs = 5
		d := gen.MustGenerate(spec)
		e := NewEngine(d)
		got := mustTopPaths(t, e, Options{K: 25, Mode: model.Setup})
		validatePaths(t, d, model.Setup, got.Paths)
		for _, p := range got.Paths {
			if p.LaunchFF == model.NoFF {
				if p.Credit != 0 || p.LCADepth != -1 {
					t.Fatalf("PI path has credit %v depth %d", p.Credit, p.LCADepth)
				}
				if d.Pins[p.StartPin()].Kind != model.PI {
					t.Fatalf("PI path starts at %v", d.Pins[p.StartPin()].Kind)
				}
			}
		}
	}
}

func TestStatsReconstructedBounded(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(8))
	e := NewEngine(d)
	res := mustTopPaths(t, e, Options{K: 50, Mode: model.Setup, Threads: 1})
	// With one thread and ordered job execution, every acceptance is a
	// reconstruction; it must stay well below the total candidate count
	// and at or above the number of returned paths.
	if res.Stats.Reconstructed < len(res.Paths) {
		t.Errorf("Reconstructed %d < returned %d", res.Stats.Reconstructed, len(res.Paths))
	}
	if res.Stats.Reconstructed > res.Stats.Kept {
		t.Errorf("Reconstructed %d > Kept %d", res.Stats.Reconstructed, res.Stats.Kept)
	}
}

// TestGlobalBoundPruningIsResultNeutral verifies the pruning ablation:
// identical paths with and without the bound, and strictly less work
// with it on a design where most levels contribute nothing.
func TestGlobalBoundPruningIsResultNeutral(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(61))
	e := NewEngine(d)
	for _, mode := range model.Modes {
		with := mustTopPaths(t, e, Options{K: 300, Mode: mode, Threads: 1})
		without := mustTopPaths(t, e, Options{K: 300, Mode: mode, Threads: 1, DisableGlobalBound: true})
		if len(with.Paths) != len(without.Paths) {
			t.Fatalf("mode %v: %d vs %d paths", mode, len(with.Paths), len(without.Paths))
		}
		for i := range with.Paths {
			if with.Paths[i].Slack != without.Paths[i].Slack {
				t.Fatalf("mode %v path %d differs", mode, i)
			}
			if fmt.Sprint(with.Paths[i].Pins) != fmt.Sprint(without.Paths[i].Pins) {
				t.Fatalf("mode %v path %d pins differ", mode, i)
			}
		}
		if with.Stats.Candidates >= without.Stats.Candidates {
			t.Errorf("mode %v: pruning did not reduce work (%d vs %d candidates)",
				mode, with.Stats.Candidates, without.Stats.Candidates)
		}
	}
}

// TestLiftingLCAMultiDomain exercises the binary-lifting cross-domain
// path (LCALifting returning NoPin).
func TestLiftingLCAMultiDomain(t *testing.T) {
	d := gen.MustGenerate(multiDomainSpec(4, 2))
	e := NewEngine(d)
	a := mustTopPaths(t, e, Options{K: 40, Mode: model.Setup})
	b := mustTopPaths(t, e, Options{K: 40, Mode: model.Setup, UseLiftingLCA: true})
	if !equalSlacks(slacksOf(a.Paths), slacksOf(b.Paths)) {
		t.Fatal("lifting LCA disagrees on multi-domain design")
	}
}
