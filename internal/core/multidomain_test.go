package core

import (
	"context"
	"testing"

	"fastcppr/gen"
	"fastcppr/internal/baseline"
	"fastcppr/model"
)

// multiDomainSpec returns a small multi-domain oracle spec.
func multiDomainSpec(seed int64, domains int) gen.Spec {
	spec := gen.SmallOracle(seed)
	spec.NumDomains = domains
	spec.NumFFs = 10 + int(seed%4)
	return spec
}

func TestMultiDomainOracle(t *testing.T) {
	for _, domains := range []int{2, 3} {
		for seed := int64(0); seed < 6; seed++ {
			d := gen.MustGenerate(multiDomainSpec(seed, domains))
			if len(d.Roots) != domains {
				t.Fatalf("generated %d roots, want %d", len(d.Roots), domains)
			}
			e := NewEngine(d)
			if e.Tree().NumDomains() != domains {
				t.Fatalf("tree sees %d domains", e.Tree().NumDomains())
			}
			for _, mode := range model.Modes {
				brute := baseline.AllPaths(d, mode)
				baseline.SortPaths(brute)
				for _, k := range []int{1, 5, 25, len(brute) + 5} {
					got := mustTopPaths(t, e, Options{K: k, Mode: mode, Threads: 2})
					validatePaths(t, d, mode, got.Paths)
					want := brute
					if len(want) > k {
						want = want[:k]
					}
					if !equalSlacks(slacksOf(got.Paths), baseline.Slacks(want)) {
						t.Fatalf("domains=%d seed=%d %v k=%d: slacks differ\ngot:  %v\nwant: %v",
							domains, seed, mode, k, slacksOf(got.Paths), baseline.Slacks(want))
					}
				}
			}
		}
	}
}

func TestMultiDomainCrossPathsHaveNoCredit(t *testing.T) {
	d := gen.MustGenerate(multiDomainSpec(3, 2))
	e := NewEngine(d)
	res := mustTopPaths(t, e, Options{K: 10_000, Mode: model.Setup})
	crossSeen := 0
	for _, p := range res.Paths {
		if p.LaunchFF == model.NoFF {
			continue
		}
		lau := d.FFs[p.LaunchFF].Clock
		cap := d.FFs[p.CaptureFF].Clock
		if e.Tree().SameDomain(lau, cap) {
			continue
		}
		crossSeen++
		if p.Credit != 0 || p.LCADepth != -1 {
			t.Fatalf("cross-domain path has credit %v depth %d", p.Credit, p.LCADepth)
		}
	}
	if crossSeen == 0 {
		t.Skip("fixture produced no cross-domain paths (window too narrow)")
	}
}

func TestMultiDomainBaselinesAgree(t *testing.T) {
	spec := gen.Medium(44)
	spec.NumDomains = 3
	d := gen.MustGenerate(spec)
	e := NewEngine(d)
	pw := baseline.NewPairwise(d, e.Tree())
	bb := baseline.NewBranchAndBound(d, e.Tree())
	bw := baseline.NewBlockwise(d, e.Tree())
	for _, mode := range model.Modes {
		k := 150
		ours := mustTopPaths(t, e, Options{K: k, Mode: mode, Threads: 4})
		validatePaths(t, d, mode, ours.Paths)
		pws, err := pw.TopPaths(context.Background(), mode, k, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !equalSlacks(slacksOf(ours.Paths), slacksOf(pws)) {
			t.Fatalf("%v: core vs pairwise differ on multi-domain design", mode)
		}
		bbs, _, err := bb.TopPaths(context.Background(), mode, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !equalSlacks(slacksOf(ours.Paths), slacksOf(bbs)) {
			t.Fatalf("%v: core vs bnb differ on multi-domain design", mode)
		}
		bws, _, err := bw.TopPaths(context.Background(), mode, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !equalSlacks(slacksOf(ours.Paths), slacksOf(bws)) {
			t.Fatalf("%v: core vs blockwise differ on multi-domain design", mode)
		}
	}
}

func TestSingleDomainHasNoCrossJob(t *testing.T) {
	// The sparse plan runs one job per LCA-active level plus self-loop
	// and PI; the cross-domain job appears only with several domains.
	activeLevels := func(e *Engine, depth int) int {
		n := 0
		for d := 0; d < depth; d++ {
			if e.tree.LevelActive(d) {
				n++
			}
		}
		return n
	}
	d := gen.MustGenerate(gen.SmallOracle(1))
	e := NewEngine(d)
	res := mustTopPaths(t, e, Options{K: 5, Mode: model.Setup})
	if want := activeLevels(e, d.Depth) + 2; res.Stats.Jobs != want {
		t.Fatalf("single-domain Jobs = %d, want %d", res.Stats.Jobs, want)
	}
	// The dense reference kernel keeps the replaced kernel's full plan.
	res = mustTopPaths(t, e, Options{K: 5, Mode: model.Setup, DenseKernel: true})
	if res.Stats.Jobs != d.Depth+2 {
		t.Fatalf("single-domain dense Jobs = %d, want %d", res.Stats.Jobs, d.Depth+2)
	}
	spec := multiDomainSpec(1, 2)
	d2 := gen.MustGenerate(spec)
	e2 := NewEngine(d2)
	res2 := mustTopPaths(t, e2, Options{K: 5, Mode: model.Setup})
	if want := activeLevels(e2, d2.Depth) + 3; res2.Stats.Jobs != want {
		t.Fatalf("multi-domain Jobs = %d, want %d", res2.Stats.Jobs, want)
	}
}
