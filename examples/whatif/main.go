// whatif drives a greedy worst-path-flattening loop with the
// speculative what-if engine: each round it proposes speeding up the
// data arcs on the current critical path, scores every proposal with
// Timer.WhatIf — forked timers sharing the parent's warm caches, no
// fresh timer per candidate — and commits the proposal that improves
// the worst slack most. A miniature of how an optimization tool
// (buffer sizing, cell swaps) would sit on top of the timer.
//
//	go run ./examples/whatif [-preset leon2] [-scale 0.01] [-rounds 5]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/model"
)

func main() {
	preset := flag.String("preset", "leon2", "Table III preset")
	scale := flag.Float64("scale", 0.01, "design scale")
	rounds := flag.Int("rounds", 5, "greedy optimization rounds")
	flag.Parse()

	spec, err := gen.PresetSpec(*preset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	d := gen.MustGenerate(spec)
	timer := cppr.NewTimer(d)
	ctx := context.Background()
	q := cppr.Query{K: 1, Mode: model.Setup}

	rep, err := timer.Run(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	worst, ok := rep.WorstSlack()
	if !ok {
		log.Fatal("design has no constrained paths")
	}
	fmt.Printf("initial worst slack: %d\n", worst)

	for round := 1; round <= *rounds; round++ {
		// Propose shaving 20% off each data arc on the critical path.
		dd := timer.Design()
		var candidates []cppr.EditSet
		path := rep.Paths[0].Pins
		for i := 0; i+1 < len(path); i++ {
			from, to := path[i], path[i+1]
			if dd.Pins[from].Kind.IsClock() || dd.Pins[to].Kind.IsClock() {
				continue // clock-tree edits rebuild everything; not this loop's business
			}
			ai := dd.ArcBetween(from, to)
			if ai < 0 {
				continue
			}
			w := dd.ArcDelay(model.BaseCorner, ai)
			nw := model.Window{Early: w.Early - w.Early/5, Late: w.Late - w.Late/5}
			candidates = append(candidates, cppr.EditSet{
				{Corner: model.BaseCorner, From: from, To: to, Delay: nw},
			})
		}
		if len(candidates) == 0 {
			fmt.Println("no editable arcs left on the critical path")
			break
		}

		res, err := timer.WhatIf(ctx, candidates, []cppr.Query{q})
		if err != nil {
			log.Fatal(err)
		}
		bestIdx, bestDelta := -1, model.Time(0)
		for ci, sc := range res.Candidates {
			if sc.Err != nil || !sc.DeltaValid[0] {
				continue
			}
			if sc.Delta[0] > bestDelta {
				bestIdx, bestDelta = ci, sc.Delta[0]
			}
		}
		if bestIdx < 0 {
			fmt.Println("no proposal improves the worst slack; stopping")
			break
		}

		// Commit the winner to the real timer and re-anchor on the new
		// critical path.
		ed := candidates[bestIdx][0]
		if err := timer.SetArcDelayAt(ed.Corner, ed.From, ed.To, ed.Delay); err != nil {
			log.Fatal(err)
		}
		rep, err = timer.Run(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		worst, _ = rep.WorstSlack()
		fmt.Printf("round %d: scored %d candidates, committed %s -> %s (delta +%d), worst slack now %d\n",
			round, len(candidates), dd.PinName(ed.From), dd.PinName(ed.To), bestDelta, worst)
	}

	st := timer.Stats()
	fmt.Printf("\nstats: forks=%d whatif_candidates=%d job_cache_patched=%d cone_skips=%d\n",
		st.Forks, st.WhatIfCandidates, st.JobCachePatched, st.ConeSkips)
}
