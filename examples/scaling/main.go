// scaling sweeps the path count k and the worker thread count on a
// generated design and compares all four algorithms — a miniature of the
// paper's Figure 5 and Figure 6 runnable in seconds.
//
//	go run ./examples/scaling [-preset Combo5v2] [-scale 0.02]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/model"
)

func main() {
	preset := flag.String("preset", "Combo5v2", "Table III preset")
	scale := flag.Float64("scale", 0.02, "design scale")
	flag.Parse()

	spec, err := gen.PresetSpec(*preset, *scale)
	if err != nil {
		log.Fatal(err)
	}
	d := gen.MustGenerate(spec)
	s := d.Stats()
	fmt.Printf("design %s: %d edges, %d FFs, D=%d (host: %d cores)\n\n",
		s.Name, s.NumEdges, s.NumFFs, s.Depth, runtime.NumCPU())
	timer := cppr.NewTimer(d)

	run := func(algo cppr.Algorithm, k, threads int) (time.Duration, bool) {
		start := time.Now()
		_, err := timer.Run(context.Background(), cppr.Query{K: k, Mode: model.Setup, Threads: threads, Algorithm: algo})
		if err != nil {
			return 0, false
		}
		return time.Since(start), true
	}

	fmt.Println("runtime vs k (setup, 1 thread)        [~ paper Figure 5]")
	fmt.Printf("%8s %12s %12s %12s %12s\n", "k", "lca", "pairwise", "blockwise", "bnb")
	for _, k := range []int{1, 10, 100, 1000, 10000} {
		fmt.Printf("%8d", k)
		for _, algo := range cppr.Algorithms {
			if dur, ok := run(algo, k, 1); ok {
				fmt.Printf(" %12v", dur.Round(time.Microsecond))
			} else {
				fmt.Printf(" %12s", "MLE")
			}
		}
		fmt.Println()
	}

	fmt.Println("\nruntime vs threads (setup, k=1000)    [~ paper Figure 6]")
	fmt.Printf("%8s %12s %12s\n", "threads", "lca", "pairwise")
	for _, th := range []int{1, 2, 4, 8} {
		fmt.Printf("%8d", th)
		for _, algo := range []cppr.Algorithm{cppr.AlgoLCA, cppr.AlgoPairwise} {
			dur, _ := run(algo, 1000, th)
			fmt.Printf(" %12v", dur.Round(time.Microsecond))
		}
		fmt.Println()
	}
	if runtime.NumCPU() == 1 {
		fmt.Println("\n(this host has a single core: thread sweeps measure scheduling")
		fmt.Println(" overhead only; on a multicore host the lca engine scales across")
		fmt.Println(" its D+2 independent per-level jobs)")
	}
}
