// frontend demonstrates the complete STA flow from a gate-level netlist:
// cell library -> netlist -> delay calculation (NLDM + Elmore + OCV
// derates) -> timing graph -> exact top-k post-CPPR paths.
//
//	go run ./examples/frontend [-ffs 48] [-gates 300]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"fastcppr/cppr"
	"fastcppr/liberty"
	"fastcppr/model"
	"fastcppr/netlist"
)

func main() {
	ffs := flag.Int("ffs", 48, "flip-flops in the synthesized netlist")
	gates := flag.Int("gates", 300, "gates in the synthesized netlist")
	flag.Parse()

	lib := liberty.Demo()
	fmt.Printf("library %s: %d cells, derates %.2f/%.2f\n",
		lib.Name, len(lib.Cells), lib.DerateEarly, lib.DerateLate)

	n := netlist.Random(netlist.RandomSpec{
		Seed: 7, FFs: *ffs, Gates: *gates, ClockLevels: 4, Inputs: 6, Outputs: 4,
	})
	fmt.Printf("netlist %s: %d instances, %d ports\n", n.Name, len(n.Insts), len(n.Ports))

	d, err := n.Elaborate(lib, netlist.DefaultWireModel())
	if err != nil {
		log.Fatal(err)
	}
	s := d.Stats()
	fmt.Printf("elaborated: %d pins, %d timing arcs, %d FFs, clock-tree depth D=%d\n\n",
		s.NumPins, s.NumEdges, s.NumFFs, s.Depth)

	timer := cppr.NewTimer(d)
	for _, mode := range model.Modes {
		rep, err := timer.Run(context.Background(), cppr.Query{K: 3, Mode: mode, IncludePOs: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== top-3 %s paths (with output checks) in %v ==\n", mode, rep.Elapsed)
		for i, p := range rep.Paths {
			end := "PO " + d.PinName(p.EndPin())
			if !p.EndsAtPO() {
				end = "FF " + d.FFs[p.CaptureFF].Name
			}
			fmt.Printf("  #%d slack %v (credit %v) -> %s, %d pins\n",
				i+1, p.Slack, p.Credit, end, len(p.Pins))
		}
		fmt.Println()
	}

	// What-if edit: slow the most critical setup path's first data arc
	// and re-query incrementally.
	rep, err := timer.Run(context.Background(), cppr.Query{K: 1, Mode: model.Setup})
	if err != nil || len(rep.Paths) == 0 {
		log.Fatal("no setup paths")
	}
	p := rep.Paths[0]
	from, to := p.Pins[1], p.Pins[2]
	ai := d.ArcBetween(from, to)
	old := d.Arcs[ai].Delay
	if err := timer.SetArcDelay(from, to, model.Window{Early: old.Early, Late: old.Late + 300}); err != nil {
		log.Fatal(err)
	}
	rep2, err := timer.Run(context.Background(), cppr.Query{K: 1, Mode: model.Setup})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("what-if: +300ps on %s->%s moves the worst setup slack %v -> %v\n",
		d.PinName(from), d.PinName(to), p.Slack, rep2.Paths[0].Slack)
}
