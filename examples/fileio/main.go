// fileio demonstrates the on-disk design flow: generate a design, write
// it in the tau text format, read it back, and verify that the parsed
// design produces bit-identical timing reports.
//
//	go run ./examples/fileio [-o /tmp/demo.cppr]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/model"
	"fastcppr/tau"
)

func main() {
	out := flag.String("o", "/tmp/fastcppr_demo.cppr", "design file path")
	flag.Parse()

	d := gen.MustGenerate(gen.Medium(2026))
	if err := tau.WriteFile(*out, d); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d pins, %d arcs, %d FFs)\n", *out, d.NumPins(), d.NumArcs(), d.NumFFs())

	d2, err := tau.ReadFile(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %d pins, %d arcs, %d FFs, D=%d\n", d2.NumPins(), d2.NumArcs(), d2.NumFFs(), d2.Depth)

	a, err := cppr.NewTimer(d).Run(context.Background(), cppr.Query{K: 10, Mode: model.Hold})
	if err != nil {
		log.Fatal(err)
	}
	b, err := cppr.NewTimer(d2).Run(context.Background(), cppr.Query{K: 10, Mode: model.Hold})
	if err != nil {
		log.Fatal(err)
	}
	if len(a.Paths) != len(b.Paths) {
		log.Fatalf("path counts differ: %d vs %d", len(a.Paths), len(b.Paths))
	}
	for i := range a.Paths {
		if a.Paths[i].Slack != b.Paths[i].Slack {
			log.Fatalf("slack %d differs across the file round trip", i)
		}
	}
	fmt.Printf("round-trip verified: %d hold paths with identical slacks\n\n", len(a.Paths))

	fmt.Println("most critical hold path of the parsed design:")
	fmt.Print(b.Paths[0].Format(d2))
}
