// mcmm demonstrates multi-corner multi-mode analysis: one design
// carrying several delay corners (a fast and a slow derate of the
// typical corner), a single Timer answering per-corner and merged
// worst-corner queries, and per-corner edit isolation.
//
//	go run ./examples/mcmm [-scale 0.02] [-k 5]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/model"
)

func main() {
	scale := flag.Float64("scale", 0.02, "design scale")
	k := flag.Int("k", 5, "paths per report")
	flag.Parse()
	ctx := context.Background()

	spec, err := gen.PresetSpec("netcard", *scale)
	if err != nil {
		log.Fatal(err)
	}
	d := gen.MustGenerate(spec)

	// Add two globally derated corners. Each corner owns a complete
	// early/late delay table; the clock-tree topology is shared, so one
	// Timer serves all of them from one LCA substrate.
	if d, _, err = d.WithScaledCorner("fast", 0.82, 0.90); err != nil {
		log.Fatal(err)
	}
	if d, _, err = d.WithScaledCorner("slow", 1.08, 1.21); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s with %d corners: %v\n\n", d.Name, d.NumCorners(), d.CornerNames())

	timer := cppr.NewTimer(d)

	// Per-corner queries: select one corner with a CornerBit mask. A
	// zero mask means the base corner, so pre-MCMM code is unchanged.
	for c := model.Corner(0); int(c) < d.NumCorners(); c++ {
		rep, err := timer.Run(ctx, cppr.Query{K: 1, Mode: model.Setup, Corners: cppr.CornerBit(c)})
		if err != nil {
			log.Fatal(err)
		}
		if ws, ok := rep.WorstSlack(); ok {
			fmt.Printf("corner %-5s worst setup slack: %v\n", d.CornerName(c), ws)
		}
	}

	// The merged report: worst case over every corner, each path tagged
	// with the corner it came from.
	rep, err := timer.Run(ctx, cppr.Query{K: *k, Mode: model.Setup, Corners: cppr.CornerAll})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst-corner merge (critical corner %s):\n", d.CornerName(rep.Corner))
	for i, p := range rep.Paths {
		fmt.Printf("  #%d slack %v  credit %v  corner %s\n",
			i+1, p.Slack, p.Credit, d.CornerName(rep.PathCorners[i]))
	}

	// Batched fan-out: ReportBatch deduplicates the per-corner work
	// across queries, so asking for all corners at several K values
	// costs far less than running them serially.
	queries := []cppr.Query{
		{K: 1, Mode: model.Setup, Corners: cppr.CornerAll},
		{K: *k, Mode: model.Setup, Corners: cppr.CornerAll},
		{K: *k, Mode: model.Hold, Corners: cppr.CornerAll},
	}
	results, err := timer.ReportBatch(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbatched multi-corner queries:")
	for i, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		ws, _ := r.Report.WorstSlack()
		fmt.Printf("  %v k=%-3d worst %v (corner %s)\n",
			queries[i].Mode, queries[i].K, ws, d.CornerName(r.Report.Corner))
	}

	// Edits are corner-scoped: retime an arc at the slow corner only;
	// the fast corner's report is untouched.
	p := rep.Paths[0]
	var from, to model.PinID
	for i := 0; i+1 < len(p.Pins); i++ {
		if !d.IsClockPin(p.Pins[i]) {
			from, to = p.Pins[i], p.Pins[i+1]
			break
		}
	}
	slowID, _ := d.CornerByName("slow")
	old := d.ArcDelay(slowID, d.ArcBetween(from, to))
	if err := timer.SetArcDelayAt(slowID, from, to, model.Window{Early: old.Early + 200, Late: old.Late + 200}); err != nil {
		log.Fatal(err)
	}
	after, err := timer.Run(ctx, cppr.Query{K: 1, Mode: model.Setup, Corners: cppr.CornerAll})
	if err != nil {
		log.Fatal(err)
	}
	ws, _ := after.WorstSlack()
	fmt.Printf("\nafter +200ps on a slow-corner arc: worst %v (corner %s)\n",
		ws, d.CornerName(after.Corner))
}
