// cpprimpact quantifies how much pessimism CPPR removes on a realistic
// design: the motivation of the paper's introduction. It generates a
// leon2-class synthetic design, compares the conventional (pre-CPPR)
// endpoint slacks against exact post-CPPR path slacks, and reports the
// credit distribution over the top paths.
//
//	go run ./examples/cpprimpact [-scale 0.02] [-k 1000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/model"
)

func main() {
	scale := flag.Float64("scale", 0.02, "design scale")
	k := flag.Int("k", 1000, "paths to analyse")
	flag.Parse()

	spec, err := gen.PresetSpec("leon2", *scale)
	if err != nil {
		log.Fatal(err)
	}
	d := gen.MustGenerate(spec)
	s := d.Stats()
	fmt.Printf("design %s: %d edges, %d FFs, clock-tree depth D=%d\n\n",
		s.Name, s.NumEdges, s.NumFFs, s.Depth)

	timer := cppr.NewTimer(d)
	for _, mode := range model.Modes {
		// Conventional graph-based endpoint slacks (no pessimism
		// removal) against the exact post-CPPR per-endpoint summary.
		pre := timer.PreCPPRSlacks(mode)
		post, err := timer.PostCPPRSlacksCtx(context.Background(), cppr.Query{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		worstPre, preTNS, preViol := model.MaxTime, model.Time(0), 0
		worstPost, postTNS, postViol := model.MaxTime, model.Time(0), 0
		recovered := 0
		for i, e := range pre {
			if !e.Valid {
				continue
			}
			if e.Slack < worstPre {
				worstPre = e.Slack
			}
			if e.Slack < 0 {
				preTNS += e.Slack
				preViol++
				if post[i].Valid && post[i].Slack >= 0 {
					recovered++
				}
			}
			if post[i].Valid {
				if post[i].Slack < worstPost {
					worstPost = post[i].Slack
				}
				if post[i].Slack < 0 {
					postTNS += post[i].Slack
					postViol++
				}
			}
		}

		rep, err := timer.Run(context.Background(), cppr.Query{K: *k, Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		if len(rep.Paths) == 0 {
			fmt.Printf("%s: no constrained paths\n", mode)
			continue
		}

		var totalCredit, maxCredit model.Time
		withCredit := 0
		reordered := 0
		for i, p := range rep.Paths {
			totalCredit += p.Credit
			if p.Credit > maxCredit {
				maxCredit = p.Credit
			}
			if p.Credit > 0 {
				withCredit++
			}
			// A path is "reordered" when some later-ranked path had a
			// worse pre-CPPR slack.
			if i > 0 && p.PreSlack < rep.Paths[0].PreSlack {
				reordered++
			}
		}

		fmt.Printf("== %s ==\n", mode)
		fmt.Printf("  worst slack without CPPR:   %v  (TNS %v over %d endpoints)\n", worstPre, preTNS, preViol)
		fmt.Printf("  worst slack with CPPR:      %v  (TNS %v over %d endpoints)\n", worstPost, postTNS, postViol)
		fmt.Printf("  endpoints cleared by CPPR alone: %d of %d violating\n", recovered, preViol)
		fmt.Printf("  pessimism at the worst path: %v\n", worstPost-worstPre)
		fmt.Printf("  top-%d paths carrying credit: %d (%.1f%%)\n",
			len(rep.Paths), withCredit, 100*float64(withCredit)/float64(len(rep.Paths)))
		fmt.Printf("  mean/max credit in top-%d:   %v / %v\n",
			len(rep.Paths), totalCredit/model.Time(len(rep.Paths)), maxCredit)
		fmt.Printf("  paths ranked better than the pre-CPPR-worst path: %d\n", reordered)
		fmt.Printf("  query time: %v (%d candidate-generation jobs)\n\n",
			rep.Elapsed, rep.Stats.Jobs)
	}

	fmt.Println("Without CPPR every one of these paths would be reported with the")
	fmt.Println("pessimistic slack — tests could be marked failing that actually pass,")
	fmt.Println("which is exactly the over-design the paper's introduction warns about.")
}
