// Quickstart: build a tiny design in code and see common path pessimism
// removal flip the criticality order of two paths — the scenario of the
// paper's Figure 1.
//
//	go run ./examples/quickstart
//
// Two flip-flop pairs share different amounts of clock path: ff3/ff4 hang
// off a long skewed trunk (big shared pessimism), ff1/ff2 off a short one.
// Before CPPR the ff3->ff4 path looks more critical; after removing the
// shared-trunk pessimism the ff1->ff2 path is the true worst path.
package main

import (
	"context"
	"fmt"
	"log"

	"fastcppr/cppr"
	"fastcppr/model"
)

func main() {
	b := model.NewBuilder("figure1", model.Ns(10))
	clk := b.AddClockRoot("clk")

	// Clock tree: a short trunk t1 and a long, heavily skewed trunk t2.
	t1 := b.AddClockBuf("t1")
	t2 := b.AddClockBuf("t2")
	b.AddArc(clk, t1, model.Window{Early: 10, Late: 15})  // 5ps skew
	b.AddArc(clk, t2, model.Window{Early: 10, Late: 110}) // 100ps skew

	ckq := model.Window{Early: 10, Late: 10}
	ff1 := b.AddFF("ff1", 0, 0, ckq)
	ff2 := b.AddFF("ff2", 0, 0, ckq)
	ff3 := b.AddFF("ff3", 0, 0, ckq)
	ff4 := b.AddFF("ff4", 0, 0, ckq)
	leaf := model.Window{Early: 5, Late: 5}
	b.AddArc(t1, ff1.Clock, leaf)
	b.AddArc(t1, ff2.Clock, leaf)
	b.AddArc(t2, ff3.Clock, leaf)
	b.AddArc(t2, ff4.Clock, leaf)

	// Data path 1: ff1 -> g1 -> ff2 (longer logic, little pessimism).
	g1 := b.AddComb("g1")
	b.AddArc(ff1.Q, g1, model.Window{Early: 100, Late: 200})
	b.AddArc(g1, ff2.D, model.Window{Early: 10, Late: 10})
	// Data path 2: ff3 -> g2 -> ff4 (shorter logic, big pessimism).
	g2 := b.AddComb("g2")
	b.AddArc(ff3.Q, g2, model.Window{Early: 100, Late: 160})
	b.AddArc(g2, ff4.D, model.Window{Early: 10, Late: 10})

	d, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	rep, err := cppr.NewTimer(d).Run(context.Background(), cppr.Query{K: 2, Mode: model.Setup})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top-2 setup paths, ranked by post-CPPR slack:")
	for i, p := range rep.Paths {
		fmt.Printf("\n#%d (launch %s, capture %s)\n", i+1,
			d.FFs[p.LaunchFF].Name, d.FFs[p.CaptureFF].Name)
		fmt.Printf("  pre-CPPR slack:  %v\n", p.PreSlack)
		fmt.Printf("  CPPR credit:     %v (common path up to clock-tree depth %d)\n", p.Credit, p.LCADepth)
		fmt.Printf("  post-CPPR slack: %v\n", p.Slack)
	}

	p1, p2 := rep.Paths[0], rep.Paths[1]
	fmt.Println()
	if p1.PreSlack > p2.PreSlack && p1.Slack < p2.Slack {
		fmt.Println("=> pessimism removal flipped the order: the pre-CPPR 'worst' path")
		fmt.Println("   was an artifact of shared clock-path pessimism (Figure 1 of the paper).")
	} else {
		fmt.Println("=> no reordering (unexpected for this fixture)")
	}
}
