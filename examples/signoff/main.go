// signoff walks a complete constrained signoff pass: generate a design,
// apply SDC-style constraints (clock period, io delays, false paths),
// compare the pre- and post-CPPR endpoint summaries, and emit the final
// top-k report as JSON — the artifacts a timing signoff hands to the
// next tool in the flow.
//
//	go run ./examples/signoff [-scale 0.01]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/model"
	"fastcppr/sdc"
)

func main() {
	scale := flag.Float64("scale", 0.01, "design scale")
	jsonOut := flag.Bool("json", false, "print the final report as JSON")
	flag.Parse()

	spec, err := gen.PresetSpec("netcard", *scale)
	if err != nil {
		log.Fatal(err)
	}
	d := gen.MustGenerate(spec)
	timer := cppr.NewTimer(d)

	// Constraints: tighten the clock, re-constrain the first input, and
	// declare the first two FFs' fan-in false (e.g. a static config
	// register bank).
	c := sdc.New()
	c.Period = d.Period / 2
	c.InputDelay[d.PinName(d.PIs[0])] = model.Window{Early: model.Ns(4), Late: model.Ns(5)}
	c.FalseTo[d.FFs[0].Name] = true
	c.FalseTo[d.FFs[1].Name] = true
	if _, err := timer.ApplySDC(c); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s under SDC: period %v, 1 input re-constrained, 2 false-path endpoints\n\n",
		d.Name, d.Period/2)

	for _, mode := range model.Modes {
		pre := timer.PreCPPRSlacks(mode)
		post, err := timer.PostCPPRSlacksCtx(context.Background(), cppr.Query{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		var preWNS, postWNS model.Time
		preViol, postViol := 0, 0
		for i := range pre {
			if pre[i].Valid && pre[i].Slack < 0 {
				preViol++
				if pre[i].Slack < preWNS {
					preWNS = pre[i].Slack
				}
			}
			if post[i].Valid && post[i].Slack < 0 {
				postViol++
				if post[i].Slack < postWNS {
					postWNS = post[i].Slack
				}
			}
		}
		fmt.Printf("%-5s  WNS %10v -> %10v   violating endpoints %4d -> %4d\n",
			mode, preWNS, postWNS, preViol, postViol)
	}

	rep, err := timer.Run(context.Background(), cppr.Query{K: 10, Mode: model.Hold})
	if err != nil {
		log.Fatal(err)
	}
	with, mean, max := rep.CreditStats()
	fmt.Printf("\nfinal hold report: WNS %v, TNS %v, %d violations; credit on %d/%d paths (mean %v, max %v)\n",
		rep.WNS(), rep.TNS(), rep.NumViolations(), with, len(rep.Paths), mean, max)
	fmt.Printf("\nslack histogram (top-%d hold paths):\n%s\n", len(rep.Paths), rep.Histogram(6))

	if *jsonOut {
		if err := cppr.WriteJSON(os.Stdout, timer.Design(), &rep, model.Hold, 10); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println("most critical hold path:")
		fmt.Print(rep.Paths[0].FormatDetailed(timer.Design()))
	}
}
