module fastcppr

go 1.22
