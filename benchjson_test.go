package fastcppr

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"fastcppr/internal/experiments"
)

// TestBenchParallelJSONSchema strictly validates the committed
// BENCH_parallel.json against the experiment's stats schema: unknown or
// renamed fields fail the decode, and the invariants the file exists to
// track — a full 1/2/4/8 thread sweep with every multi-thread report
// byte-identical to the single-threaded reference — must hold. Speedup
// magnitudes are NOT asserted: they are a property of the recording
// host (named in the host line), not of the code.
func TestBenchParallelJSONSchema(t *testing.T) {
	raw, err := os.ReadFile("BENCH_parallel.json")
	if err != nil {
		t.Fatalf("committed benchmark file missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var stats experiments.ParallelStats
	if err := dec.Decode(&stats); err != nil {
		t.Fatalf("BENCH_parallel.json does not match experiments.ParallelStats: %v", err)
	}
	if stats.Host == "" {
		t.Fatal("host line missing — speedups are meaningless without the machine that produced them")
	}
	if stats.Design != "leon2" {
		t.Fatalf("design %q, want leon2 (the deepest-clock-tree preset)", stats.Design)
	}
	if stats.Scale < 0.2 {
		t.Fatalf("scale %g below the 0.2 floor the sweep is committed at", stats.Scale)
	}
	if stats.Reps < 1 {
		t.Fatalf("reps %d", stats.Reps)
	}
	want := []int{1, 2, 4, 8}
	if len(stats.Points) != len(want) {
		t.Fatalf("%d points, want %d (threads %v)", len(stats.Points), len(want), want)
	}
	for i, p := range stats.Points {
		if p.Threads != want[i] {
			t.Fatalf("point %d measured %d threads, want %d", i, p.Threads, want[i])
		}
		if p.BatchNs <= 0 || p.QueryNs <= 0 {
			t.Fatalf("point %d has non-positive wall times: %+v", i, p)
		}
		if p.BatchSpeedup <= 0 || p.QuerySpeedup <= 0 {
			t.Fatalf("point %d has non-positive speedups: %+v", i, p)
		}
		if !p.Identical {
			t.Fatalf("point %d (%d threads) was not byte-identical to the reference", i, p.Threads)
		}
	}
	if !stats.Identical {
		t.Fatal("identical flag false: some thread count diverged from the reference")
	}
	if stats.MaxBatchSpeedup <= 0 {
		t.Fatalf("max_batch_speedup %g", stats.MaxBatchSpeedup)
	}
}

// TestBenchSignoffJSONSchema strictly validates the committed
// BENCH_signoff.json: the industrial-semantics smoke must cover every
// knob in both modes, every leg must have agreed with the brute-force
// oracle, each knob must have moved the report in at least one mode
// (proof the plumbing is connected, not a semantic requirement), and
// the same_pin/same_transition divergence bit must be set — the
// recorded design mixes clock inverters precisely so the two CRPR modes
// cannot agree.
func TestBenchSignoffJSONSchema(t *testing.T) {
	raw, err := os.ReadFile("BENCH_signoff.json")
	if err != nil {
		t.Fatalf("committed benchmark file missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var stats experiments.SignoffStats
	if err := dec.Decode(&stats); err != nil {
		t.Fatalf("BENCH_signoff.json does not match experiments.SignoffStats: %v", err)
	}
	if stats.Host == "" {
		t.Fatal("host line missing")
	}
	if stats.K < 1 {
		t.Fatalf("k %d", stats.K)
	}
	if !stats.AllOracleMatch {
		t.Fatal("all_oracle_match false: some knob leg diverged from the brute-force oracle")
	}
	if !stats.Diverged {
		t.Fatal("same_transition_diverged false: the two CRPR modes agreed on the inverter-mixed design")
	}
	knobs := []string{"uncertainty", "derate", "ideal_clock", "io_delay", "same_transition"}
	modes := map[string][]string{}
	changed := map[string]bool{}
	for _, l := range stats.Legs {
		modes[l.Knob] = append(modes[l.Knob], l.Mode)
		changed[l.Knob] = changed[l.Knob] || l.Changed
		if !l.OracleMatch {
			t.Errorf("leg %s/%s did not match the oracle", l.Knob, l.Mode)
		}
	}
	for _, k := range knobs {
		if len(modes[k]) != 2 {
			t.Errorf("knob %q covered modes %v, want both setup and hold", k, modes[k])
		}
		if !changed[k] {
			t.Errorf("knob %q never changed the worst slack in either mode", k)
		}
	}
	if len(stats.Legs) != 2*len(knobs) {
		t.Errorf("%d legs, want %d", len(stats.Legs), 2*len(knobs))
	}
}

// TestBenchWhatifJSONSchema strictly validates the committed
// BENCH_whatif.json against the what-if experiment's stats schema. The
// invariants the file exists to track: the headline 1000-candidate
// leon2 sweep is present, every worker leg of every scenario was
// byte-identical to the fresh-timer-per-candidate reference, and the
// forked path beat that reference by at least the 5x acceptance floor.
// Beyond the floor, speedup magnitudes are a property of the recording
// host (named in the host line), not of the code.
func TestBenchWhatifJSONSchema(t *testing.T) {
	raw, err := os.ReadFile("BENCH_whatif.json")
	if err != nil {
		t.Fatalf("committed benchmark file missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var stats experiments.WhatIfStats
	if err := dec.Decode(&stats); err != nil {
		t.Fatalf("BENCH_whatif.json does not match experiments.WhatIfStats: %v", err)
	}
	if stats.Host == "" {
		t.Fatal("host line missing — speedups are meaningless without the machine that produced them")
	}
	if len(stats.Scenarios) == 0 {
		t.Fatal("no scenarios")
	}
	headline := stats.Scenarios[0]
	if headline.Design != "leon2" || headline.Candidates != 1000 {
		t.Fatalf("headline scenario is %s/%d candidates, want leon2/1000", headline.Design, headline.Candidates)
	}
	wantWorkers := []int{1, 2, 8}
	for _, sc := range stats.Scenarios {
		if sc.FreshNs <= 0 {
			t.Fatalf("%s: non-positive fresh reference time", sc.Design)
		}
		if len(sc.Runs) != len(wantWorkers) {
			t.Fatalf("%s: %d worker legs, want %d (%v)", sc.Design, len(sc.Runs), len(wantWorkers), wantWorkers)
		}
		for i, r := range sc.Runs {
			if r.Workers != wantWorkers[i] {
				t.Fatalf("%s: leg %d ran %d workers, want %d", sc.Design, i, r.Workers, wantWorkers[i])
			}
			if r.Ns <= 0 {
				t.Fatalf("%s: leg %d has non-positive wall time", sc.Design, i)
			}
			if !r.Identical {
				t.Fatalf("%s: leg %d (%d workers) was not byte-identical to the fresh-timer reference", sc.Design, i, r.Workers)
			}
		}
		if sc.Speedup <= 0 {
			t.Fatalf("%s: non-positive speedup", sc.Design)
		}
		if sc.Stats.Forks < int64(sc.Candidates) {
			t.Fatalf("%s: %d forks for %d candidates — the sweep did not fork per candidate", sc.Design, sc.Stats.Forks, sc.Candidates)
		}
	}
	if stats.HeadlineSpeedup < 5 {
		t.Fatalf("headline speedup %.2fx below the 5x acceptance floor", stats.HeadlineSpeedup)
	}
}

// TestBenchHierJSONSchema strictly validates the committed
// BENCH_hier.json against the hierarchical-timing experiment's stats
// schema. The invariants the file exists to track: the repeated-block
// headline scenario is present with full model reuse (N identical
// instances extract once and reuse N-1 times), every worker leg's
// endpoint values matched the flat timer exactly, the reduced graph is
// materially smaller than the flat one, and reduced-graph timing beat
// flat timing by at least the 3x acceptance floor (elaboration cost
// included). Beyond the floor, speedup magnitudes are a property of
// the recording host (named in the host line), not of the code.
func TestBenchHierJSONSchema(t *testing.T) {
	raw, err := os.ReadFile("BENCH_hier.json")
	if err != nil {
		t.Fatalf("committed benchmark file missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var stats experiments.HierStats
	if err := dec.Decode(&stats); err != nil {
		t.Fatalf("BENCH_hier.json does not match experiments.HierStats: %v", err)
	}
	if stats.Host == "" {
		t.Fatal("host line missing — speedups are meaningless without the machine that produced them")
	}
	if len(stats.Scenarios) < 2 {
		t.Fatalf("%d scenarios, want the blocked_array headline plus a keep-flat preset row", len(stats.Scenarios))
	}
	headline := stats.Scenarios[0]
	if headline.Design != "blocked_array" {
		t.Fatalf("headline scenario is %s, want blocked_array", headline.Design)
	}
	if headline.Extracted != 1 || headline.Reused < 2 {
		t.Fatalf("headline extracted/reused = %d/%d — repeated instances did not share one model",
			headline.Extracted, headline.Reused)
	}
	if 2*headline.ReducedArcs >= headline.FlatArcs {
		t.Fatalf("reduced graph %d arcs vs flat %d — no material compression", headline.ReducedArcs, headline.FlatArcs)
	}
	wantWorkers := []int{1, 2, 8}
	for _, sc := range stats.Scenarios {
		if sc.FlatNs <= 0 || sc.ElabNs <= 0 {
			t.Fatalf("%s: non-positive wall time", sc.Design)
		}
		if len(sc.Runs) != len(wantWorkers) {
			t.Fatalf("%s: %d worker legs, want %d (%v)", sc.Design, len(sc.Runs), len(wantWorkers), wantWorkers)
		}
		for i, r := range sc.Runs {
			if r.Workers != wantWorkers[i] {
				t.Fatalf("%s: leg %d ran %d workers, want %d", sc.Design, i, r.Workers, wantWorkers[i])
			}
			if r.Ns <= 0 {
				t.Fatalf("%s: leg %d has non-positive wall time", sc.Design, i)
			}
			if !r.Exact {
				t.Fatalf("%s: leg %d (%d workers) diverged from the flat timer's endpoint values", sc.Design, i, r.Workers)
			}
		}
	}
	if stats.HeadlineReuses != headline.Reused {
		t.Fatalf("headline reuses %d != scenario reused %d", stats.HeadlineReuses, headline.Reused)
	}
	if stats.HeadlineSpeedup < 3 {
		t.Fatalf("headline speedup %.2fx below the 3x acceptance floor", stats.HeadlineSpeedup)
	}
}
