package model

import (
	"sort"
	"strconv"
	"strings"
)

// Blocks is a partition of a design's combinational pins into blocks:
// the weakly-connected components of the comb-comb arc subgraph. Every
// Comb pin belongs to exactly one block; pins of any other kind (PIs,
// POs, FF pins, clock tree) belong to none and stay visible at the top
// level of a hierarchical elaboration.
//
// Because any comb->comb arc joins its endpoints into one component,
// every comb->comb arc of the design is internal to some block, and
// every arc crossing a block boundary has at least one non-comb
// endpoint. The boundary pins of a block are therefore exactly the comb
// pins with an in-arc from a non-comb pin (boundary inputs) or an
// out-arc to a non-comb pin (boundary outputs).
//
// Blocks is the structural substrate of macromodel extraction
// (internal/hier): each block's internal arcs are compressed into
// boundary pin-to-pin delay windows, and blocks with identical
// signatures share one extracted model.
type Blocks struct {
	d *Design

	// Of[pin] is the block index owning pin, or -1 for non-comb pins.
	Of []int32
	// LocalIdx[pin] is the pin's rank within its block's Pins slice
	// (PinID order), or -1 for non-comb pins. Local indices are the
	// currency of signatures: two instances of the same block netlist
	// created in the same relative pin order get identical local
	// structure regardless of where their global IDs landed.
	LocalIdx []int32

	// Pins[b] lists block b's pins in ascending PinID order.
	Pins [][]PinID
	// BoundaryIn[b] / BoundaryOut[b] list block b's boundary input /
	// output pins, each a subsequence of Pins[b]. A pin can be both.
	// Comb pins with no fan-in at all are not boundary inputs: arrivals
	// seed only at FF outputs, PIs and clock roots, so no path can
	// start inside a block.
	BoundaryIn  [][]PinID
	BoundaryOut [][]PinID
	// InternalArcs[b] lists the indices of arcs with both endpoints in
	// block b, in ascending arc-index order. By the component argument
	// above this is exactly the set of comb->comb arcs touching b.
	InternalArcs [][]int32
}

// PartitionBlocks partitions d's combinational pins into blocks. The
// result is deterministic: blocks are numbered by their smallest PinID.
func PartitionBlocks(d *Design) *Blocks {
	n := len(d.Pins)
	// Union-find over comb pins, joined by comb->comb arcs.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for ai := range d.Arcs {
		a := &d.Arcs[ai]
		if d.Pins[a.From].Kind == Comb && d.Pins[a.To].Kind == Comb {
			rf, rt := find(int32(a.From)), find(int32(a.To))
			if rf != rt {
				parent[rt] = rf
			}
		}
	}

	bl := &Blocks{
		d:        d,
		Of:       make([]int32, n),
		LocalIdx: make([]int32, n),
	}
	for i := range bl.Of {
		bl.Of[i] = -1
		bl.LocalIdx[i] = -1
	}
	// Number blocks by smallest member PinID; assign local indices in
	// ascending PinID order.
	rootBlock := make(map[int32]int32)
	for u := 0; u < n; u++ {
		if d.Pins[u].Kind != Comb {
			continue
		}
		r := find(int32(u))
		b, ok := rootBlock[r]
		if !ok {
			b = int32(len(bl.Pins))
			rootBlock[r] = b
			bl.Pins = append(bl.Pins, nil)
		}
		bl.Of[u] = b
		bl.LocalIdx[u] = int32(len(bl.Pins[b]))
		bl.Pins[b] = append(bl.Pins[b], PinID(u))
	}

	nb := len(bl.Pins)
	bl.BoundaryIn = make([][]PinID, nb)
	bl.BoundaryOut = make([][]PinID, nb)
	bl.InternalArcs = make([][]int32, nb)
	for b := 0; b < nb; b++ {
		for _, u := range bl.Pins[b] {
			in, out := false, false
			for _, ai := range d.FanIn(u) {
				if d.Pins[d.Arcs[ai].From].Kind != Comb {
					in = true
					break
				}
			}
			for _, ai := range d.FanOut(u) {
				if d.Pins[d.Arcs[ai].To].Kind != Comb {
					out = true
					break
				}
			}
			if in {
				bl.BoundaryIn[b] = append(bl.BoundaryIn[b], u)
			}
			if out {
				bl.BoundaryOut[b] = append(bl.BoundaryOut[b], u)
			}
		}
	}
	for ai := range d.Arcs {
		a := &d.Arcs[ai]
		if b := bl.Of[a.From]; b >= 0 && b == bl.Of[a.To] {
			bl.InternalArcs[b] = append(bl.InternalArcs[b], int32(ai))
		}
	}
	return bl
}

// Design returns the partitioned design.
func (bl *Blocks) Design() *Design { return bl.d }

// NumBlocks returns the number of blocks.
func (bl *Blocks) NumBlocks() int { return len(bl.Pins) }

// sortedInternal returns block b's internal arcs ordered by
// (localFrom, localTo) — the canonical order signatures and extraction
// use, independent of global arc indices. The Builder forbids parallel
// arcs, so the key is unique.
func (bl *Blocks) sortedInternal(b int) []int32 {
	arcs := make([]int32, len(bl.InternalArcs[b]))
	copy(arcs, bl.InternalArcs[b])
	d := bl.d
	sort.Slice(arcs, func(i, j int) bool {
		ai, aj := &d.Arcs[arcs[i]], &d.Arcs[arcs[j]]
		fi, fj := bl.LocalIdx[ai.From], bl.LocalIdx[aj.From]
		if fi != fj {
			return fi < fj
		}
		return bl.LocalIdx[ai.To] < bl.LocalIdx[aj.To]
	})
	return arcs
}

func (bl *Blocks) signature(b int, allCorners bool) string {
	d := bl.d
	var sb strings.Builder
	sb.WriteString("v1|")
	sb.WriteString(strconv.Itoa(len(bl.Pins[b])))
	sb.WriteByte('|')
	// Boundary flags per local pin.
	flags := make([]byte, len(bl.Pins[b]))
	for i := range flags {
		flags[i] = '.'
	}
	for _, u := range bl.BoundaryIn[b] {
		flags[bl.LocalIdx[u]] = 'i'
	}
	for _, u := range bl.BoundaryOut[b] {
		li := bl.LocalIdx[u]
		if flags[li] == 'i' {
			flags[li] = 'x' // both
		} else {
			flags[li] = 'o'
		}
	}
	sb.Write(flags)
	arcs := bl.sortedInternal(b)
	writeWin := func(w Window) {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatInt(int64(w.Early), 10))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatInt(int64(w.Late), 10))
	}
	for _, ai := range arcs {
		a := &d.Arcs[ai]
		sb.WriteByte('|')
		sb.WriteString(strconv.Itoa(int(bl.LocalIdx[a.From])))
		sb.WriteByte('>')
		sb.WriteString(strconv.Itoa(int(bl.LocalIdx[a.To])))
		writeWin(a.Delay)
	}
	if allCorners {
		for c := 1; c < d.NumCorners(); c++ {
			sb.WriteString("|c")
			sb.WriteString(strconv.Itoa(c))
			for _, ai := range arcs {
				writeWin(d.ExtraCorners[c-1].Delay[ai])
			}
		}
	}
	return sb.String()
}

// Signature returns a canonical encoding of block b's local structure
// and internal delays at every corner. Two blocks with equal signatures
// are interchangeable for macromodel extraction: same pin count, same
// boundary roles by local index, same internal arcs with the same delay
// windows at every corner.
func (bl *Blocks) Signature(b int) string { return bl.signature(b, true) }

// BaseSignature is Signature restricted to the base corner. The tau
// hierarchical writer groups instances by it, because the tau format
// records base-corner delays only.
func (bl *Blocks) BaseSignature(b int) string { return bl.signature(b, false) }
