package model

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the timing graph in Graphviz DOT format: clock-tree
// pins as ellipses (clock arcs bold), data pins as boxes, arcs labelled
// with their early/late delay windows. Intended for debugging small
// designs; a million-edge design makes an unreadable plot.
func (d *Design) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", d.Name)
	for id, p := range d.Pins {
		shape := "box"
		style := ""
		switch p.Kind {
		case ClockRoot:
			shape, style = "doublecircle", ",style=bold"
		case ClockBuf:
			shape = "ellipse"
		case FFClock:
			shape, style = "ellipse", ",style=filled,fillcolor=lightyellow"
		case FFData:
			style = ",style=filled,fillcolor=lightblue"
		case FFOutput:
			style = ",style=filled,fillcolor=lightgreen"
		case PI, PO:
			shape = "cds"
		}
		fmt.Fprintf(bw, "  n%d [label=%q,shape=%s%s];\n", id, p.Name, shape, style)
	}
	for _, a := range d.Arcs {
		attr := ""
		if d.Pins[a.From].Kind.IsClock() && d.Pins[a.To].Kind.IsClock() {
			attr = ",style=bold,color=orange"
		}
		fmt.Fprintf(bw, "  n%d -> n%d [label=\"[%d,%d]\"%s];\n",
			a.From, a.To, a.Delay.Early.Ps(), a.Delay.Late.Ps(), attr)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
