package model

import (
	"fmt"
	"math"
)

// Corner identifies a delay corner of a Design: one complete assignment
// of early/late delay windows to every timing arc, modelling one
// process/voltage/temperature point (multi-corner multi-mode analysis
// runs every mode at every corner). Corner 0 is the base corner, whose
// delays live directly in the Arcs table — the single-corner fast path
// every pre-MCMM caller keeps using unchanged. Additional corners carry
// full per-arc delay tables and share every delay-independent structure
// (pins, FFs, adjacency, topological order, clock-tree topology) with
// the base design.
type Corner int32

// BaseCorner is corner 0: the corner stored in Design.Arcs.
const BaseCorner Corner = 0

// MaxCorners bounds the number of corners a design may carry. The limit
// exists because cppr queries select corners with a 64-bit mask.
const MaxCorners = 64

// CornerDelays is one extra delay corner: a name plus a complete
// per-arc delay table indexed like Design.Arcs.
type CornerDelays struct {
	Name string
	// Delay[ai] is the early/late delay of arc ai at this corner.
	Delay []Window
}

// NumCorners returns the number of delay corners (>= 1; corner 0 is the
// base corner).
func (d *Design) NumCorners() int { return 1 + len(d.ExtraCorners) }

// CornerName returns the name of corner c. The base corner reads as
// "base" unless the design names it explicitly.
func (d *Design) CornerName(c Corner) string {
	if c == BaseCorner {
		if d.BaseCornerName != "" {
			return d.BaseCornerName
		}
		return "base"
	}
	if int(c) >= d.NumCorners() || c < 0 {
		return fmt.Sprintf("Corner(%d)", int32(c))
	}
	return d.ExtraCorners[c-1].Name
}

// CornerNames returns the names of all corners, indexed by Corner.
func (d *Design) CornerNames() []string {
	out := make([]string, d.NumCorners())
	for c := range out {
		out[c] = d.CornerName(Corner(c))
	}
	return out
}

// CornerByName resolves a corner name (as reported by CornerName).
func (d *Design) CornerByName(name string) (Corner, bool) {
	for c := 0; c < d.NumCorners(); c++ {
		if d.CornerName(Corner(c)) == name {
			return Corner(c), true
		}
	}
	return 0, false
}

// ArcDelay returns the delay window of arc ai at corner c.
func (d *Design) ArcDelay(c Corner, ai int32) Window {
	if c == BaseCorner {
		return d.Arcs[ai].Delay
	}
	return d.ExtraCorners[c-1].Delay[ai]
}

// validCornerDelays checks a per-arc delay table against d.
func (d *Design) validCornerDelays(name string, delay []Window) error {
	if name == "" {
		return fmt.Errorf("model: corner name must be non-empty")
	}
	if _, dup := d.CornerByName(name); dup {
		return fmt.Errorf("model: duplicate corner name %q", name)
	}
	if d.NumCorners() >= MaxCorners {
		return fmt.Errorf("model: design already has %d corners (max %d)", d.NumCorners(), MaxCorners)
	}
	if len(delay) != len(d.Arcs) {
		return fmt.Errorf("model: corner %q has %d arc delays, design has %d arcs", name, len(delay), len(d.Arcs))
	}
	for ai, w := range delay {
		if w.Early < 0 || w.Early > w.Late {
			return fmt.Errorf("model: corner %q arc %d (%s -> %s) has invalid delay window %v",
				name, ai, d.PinName(d.Arcs[ai].From), d.PinName(d.Arcs[ai].To), w)
		}
	}
	return nil
}

// WithCorner returns a copy of d extended by one corner holding the
// given per-arc delay table (indexed like d.Arcs; the table is cloned).
// Every delay-independent structure is shared with d, which is never
// mutated. Corners added later do not track subsequent edits to the
// base corner — they are independent, complete delay sets.
func (d *Design) WithCorner(name string, delay []Window) (*Design, Corner, error) {
	if err := d.validCornerDelays(name, delay); err != nil {
		return nil, 0, err
	}
	nd := *d
	nd.ExtraCorners = make([]CornerDelays, len(d.ExtraCorners)+1)
	copy(nd.ExtraCorners, d.ExtraCorners)
	cd := CornerDelays{Name: name, Delay: make([]Window, len(delay))}
	copy(cd.Delay, delay)
	nd.ExtraCorners[len(d.ExtraCorners)] = cd
	return &nd, Corner(len(nd.ExtraCorners)), nil
}

// WithDerivedCorner is WithCorner with the delay table derived arc by
// arc from the base corner: derive is called with each arc index and
// its base-corner window and returns the window at the new corner.
func (d *Design) WithDerivedCorner(name string, derive func(ai int, base Window) Window) (*Design, Corner, error) {
	delay := make([]Window, len(d.Arcs))
	for ai := range d.Arcs {
		delay[ai] = derive(ai, d.Arcs[ai].Delay)
	}
	return d.WithCorner(name, delay)
}

// WithScaledCorner appends a corner whose delays are the base corner's
// scaled by earlyScale/lateScale (a global-derate PVT approximation;
// 0 < earlyScale <= lateScale keeps windows valid). Scaled values are
// rounded to whole picoseconds.
func (d *Design) WithScaledCorner(name string, earlyScale, lateScale float64) (*Design, Corner, error) {
	if earlyScale <= 0 || lateScale < earlyScale {
		return nil, 0, fmt.Errorf("model: corner %q has invalid scales %g/%g (want 0 < early <= late)",
			name, earlyScale, lateScale)
	}
	return d.WithDerivedCorner(name, func(_ int, base Window) Window {
		return Window{
			Early: Time(math.Round(float64(base.Early) * earlyScale)),
			Late:  Time(math.Round(float64(base.Late) * lateScale)),
		}
	})
}

// WithArcDelayAt returns a copy of d with the delay of arc ai at
// corner c replaced. Only corner c's table is cloned; every other
// corner and all delay-independent structure is shared, and d itself is
// never mutated. For the base corner use CloneWithArcs and edit the arc
// directly (that path also feeds incremental arrival maintenance).
func (d *Design) WithArcDelayAt(c Corner, ai int32, delay Window) (*Design, error) {
	if c <= BaseCorner || int(c) >= d.NumCorners() {
		return nil, fmt.Errorf("model: corner %d out of range (design has %d corners)", int32(c), d.NumCorners())
	}
	if ai < 0 || int(ai) >= len(d.Arcs) {
		return nil, fmt.Errorf("model: arc index %d out of range", ai)
	}
	if delay.Early < 0 || delay.Early > delay.Late {
		return nil, fmt.Errorf("model: invalid delay window %v", delay)
	}
	nd := *d
	nd.ExtraCorners = make([]CornerDelays, len(d.ExtraCorners))
	copy(nd.ExtraCorners, d.ExtraCorners)
	cd := &nd.ExtraCorners[c-1]
	table := make([]Window, len(cd.Delay))
	copy(table, cd.Delay)
	table[ai] = delay
	cd.Delay = table
	return &nd, nil
}

// View returns the design as seen at corner c: a design whose Arcs
// table carries corner c's delays and whose every delay-independent
// structure is shared with d. View(BaseCorner) is d itself — the
// single-corner fast path has zero cost. Views are single-corner
// designs (they carry no extra corners) and are what per-corner engines
// are built on.
func (d *Design) View(c Corner) *Design {
	if c == BaseCorner {
		return d
	}
	cd := &d.ExtraCorners[c-1]
	nd := *d
	nd.BaseCornerName = cd.Name
	nd.ExtraCorners = nil
	nd.Arcs = make([]Arc, len(d.Arcs))
	for i := range d.Arcs {
		nd.Arcs[i] = Arc{From: d.Arcs[i].From, To: d.Arcs[i].To, Delay: cd.Delay[i], Invert: d.Arcs[i].Invert}
	}
	return &nd
}

// WithCornersFrom returns a copy of nd carrying src's extra corners,
// with each per-arc delay table remapped to nd's arc order (arcs are
// matched by endpoint pins, resolved through pin names). It is used
// when a transform that rebuilds a design — sdc application, for
// example — reorders the arc table. nd must contain an arc for every
// arc of src, between identically named pins.
func WithCornersFrom(src, nd *Design) (*Design, error) {
	if len(src.ExtraCorners) == 0 {
		return nd, nil
	}
	if len(nd.Arcs) != len(src.Arcs) {
		return nil, fmt.Errorf("model: cannot carry corners: %d arcs became %d", len(src.Arcs), len(nd.Arcs))
	}
	// remap[ai] is the src arc index matching nd arc ai.
	remap := make([]int32, len(nd.Arcs))
	for ai := range nd.Arcs {
		a := &nd.Arcs[ai]
		from, okF := src.PinByName(nd.PinName(a.From))
		to, okT := src.PinByName(nd.PinName(a.To))
		if !okF || !okT {
			return nil, fmt.Errorf("model: cannot carry corners: arc %s -> %s has no source-design pins",
				nd.PinName(a.From), nd.PinName(a.To))
		}
		si := src.ArcBetween(from, to)
		if si < 0 {
			return nil, fmt.Errorf("model: cannot carry corners: no source arc %s -> %s",
				nd.PinName(a.From), nd.PinName(a.To))
		}
		remap[ai] = si
	}
	out := *nd
	out.BaseCornerName = src.BaseCornerName
	out.ExtraCorners = make([]CornerDelays, len(src.ExtraCorners))
	for ci := range src.ExtraCorners {
		cd := CornerDelays{
			Name:  src.ExtraCorners[ci].Name,
			Delay: make([]Window, len(nd.Arcs)),
		}
		for ai := range cd.Delay {
			cd.Delay[ai] = src.ExtraCorners[ci].Delay[remap[ai]]
		}
		out.ExtraCorners[ci] = cd
	}
	return &out, nil
}
