package model

// EditJournal is a persistent chain of arc-delay edits: each node records
// one edit's sequence number, delay corner, and the edited arc's dirty
// pins (source and sink). Nodes are immutable after Append, and child
// snapshots share their ancestors structurally, so publishing an edit is
// O(1) and a query on any snapshot can ask "was anything inside this
// cone edited after sequence g?" by walking the chain from its own head
// down to g.
//
// A per-edit chain, not an accumulated bitset, because accumulation
// cannot answer ranged questions: once a pin is re-dirtied its membership
// in "dirtied since g" depends on when g was, which only the ordered
// chain retains. Cache entries store the sequence they were last
// validated at and bump it on every successful reuse, so walks stay
// proportional to the edits since the previous query, not to the total
// edit history.
//
// The nil *EditJournal is the empty journal (sequence 0, nothing dirty):
// a freshly built snapshot starts from nil, and topology-changing
// rebuilds (ApplySDC, clock-arc edits) reset to nil because they drop
// every cache outright rather than tracking a dirty set for it.
type EditJournal struct {
	seq    uint64
	corner Corner
	// src/dst are the edited arc's endpoints. Only src participates in
	// cone tests — see DirtySince — but both are recorded so the journal
	// is a complete edit log.
	src, dst PinID
	parent   *EditJournal
	depth    int32
	// collapsed marks a truncation sentinel: edits at or before seq are
	// no longer individually recorded, so any entry older than seq must
	// be treated as dirty.
	collapsed bool
}

// journalMaxDepth caps the chain length: appending past the cap replaces
// the tail with a collapsed sentinel, bounding both walk time and the
// memory a long-lived edit loop can accumulate. Entries older than the
// sentinel conservatively read as dirty, which only costs a recompute.
const journalMaxDepth = 4096

// Seq returns the journal's head sequence number; the nil journal is 0.
func (j *EditJournal) Seq() uint64 {
	if j == nil {
		return 0
	}
	return j.seq
}

// Append returns a new journal head recording an edit of the arc
// src -> dst at corner c. j is not modified; the nil receiver appends
// onto the empty journal.
func (j *EditJournal) Append(c Corner, src, dst PinID) *EditJournal {
	parent := j
	var depth int32
	if j != nil {
		if j.depth >= journalMaxDepth {
			parent = &EditJournal{seq: j.seq, collapsed: true}
		} else {
			depth = j.depth + 1
		}
	}
	return &EditJournal{
		seq:    j.Seq() + 1,
		corner: c,
		src:    src,
		dst:    dst,
		parent: parent,
		depth:  depth,
	}
}

// ArcEndpoints is one journaled edit's (source, sink) pin pair, as
// returned by SuffixEdits.
type ArcEndpoints struct {
	Src, Dst PinID
}

// SuffixEdits collects the corner-c edits recorded on j's chain strictly
// after the node since, newest first, and reports whether since is an
// ancestor of j — i.e. whether j's state is since's state plus exactly
// the returned edits (at corner c; other corners' edits are excluded by
// construction). ok=false means the two journals lie on divergent
// chains (or a collapsed sentinel hides the gap), so no edit suffix
// relates them and callers must fall back to a full recompute. Ancestry
// is pointer identity: two heads with equal sequence numbers on forked
// chains do not relate. The nil journal is the common root, an ancestor
// of every chain.
func (j *EditJournal) SuffixEdits(since *EditJournal, c Corner, dst []ArcEndpoints) ([]ArcEndpoints, bool) {
	sinceSeq := since.Seq()
	for {
		if j == since {
			return dst, true
		}
		if j == nil || j.seq <= sinceSeq || j.collapsed {
			return dst, false
		}
		if j.corner == c {
			dst = append(dst, ArcEndpoints{Src: j.src, Dst: j.dst})
		}
		j = j.parent
	}
}

// DirtySince reports whether any edit after sequence seq could perturb a
// result computed from cone at corner c. The test is exact on the arc's
// source pin: a candidate job's output depends on an edited arc iff a
// propagated tuple can traverse it, iff the source holds a tuple, iff the
// source is in the job's seed cone (the cone is closed under fanout, so
// testing the sink too would add only spurious invalidations — a sink
// reachable around the edited arc does not make the arc's delay
// observable). Reaching a collapsed sentinel newer than seq reports
// dirty: the individual records needed to prove cleanliness are gone.
func (j *EditJournal) DirtySince(seq uint64, c Corner, cone *PinSet) bool {
	for ; j != nil && j.seq > seq; j = j.parent {
		if j.collapsed {
			return true
		}
		if j.corner == c && cone.Contains(j.src) {
			return true
		}
	}
	return false
}
