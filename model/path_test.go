package model

import (
	"strings"
	"testing"
)

func pins(d *Design, t *testing.T, names ...string) []PinID {
	t.Helper()
	ids := make([]PinID, len(names))
	for i, n := range names {
		id, ok := d.PinByName(n)
		if !ok {
			t.Fatalf("pin %q not found", n)
		}
		ids[i] = id
	}
	return ids
}

func TestRecomputePathSetup(t *testing.T) {
	d := buildTriangle(t)
	// ff1 -> g1 -> ff2: LCA is b1 (depth 1), credit 20.
	p, err := d.RecomputePath(Setup, pins(d, t, "ff1/CK", "ff1/Q", "g1", "ff2/D"))
	if err != nil {
		t.Fatal(err)
	}
	// late D arrival = at_late(ff1/CK)=170 + ckq 40 + 200 + 90 = 500
	// pre slack = at_early(ff2/CK)=135+... recompute: ff2/CK early = 80+55=135
	// pre = 135 + 10000 - 20 - 500 = 9615
	if p.PreSlack != 9615 {
		t.Errorf("PreSlack = %v, want 9615ps", p.PreSlack.Ps())
	}
	if p.Credit != 20 {
		t.Errorf("Credit = %v, want 20", p.Credit)
	}
	if p.Slack != 9635 {
		t.Errorf("Slack = %v, want 9635", p.Slack.Ps())
	}
	if p.LCADepth != 1 {
		t.Errorf("LCADepth = %d, want 1", p.LCADepth)
	}
	if p.LaunchFF != 0 || p.CaptureFF != 1 {
		t.Errorf("launch/capture = %d/%d", p.LaunchFF, p.CaptureFF)
	}
	if p.SelfLoop() {
		t.Error("not a self loop")
	}
}

func TestRecomputePathHold(t *testing.T) {
	d := buildTriangle(t)
	p, err := d.RecomputePath(Hold, pins(d, t, "ff1/CK", "ff1/Q", "g1", "ff2/D"))
	if err != nil {
		t.Fatal(err)
	}
	// early D arrival = at_early(ff1/CK)=130 + 30 + 100 + 50 = 310
	// hold pre = 310 - (at_late(ff2/CK)=165 + Thold 10) = 135
	if p.PreSlack != 135 {
		t.Errorf("PreSlack = %v, want 135", p.PreSlack.Ps())
	}
	if p.Slack != 155 {
		t.Errorf("Slack = %v, want 155", p.Slack.Ps())
	}
}

func TestRecomputePathCrossSubtree(t *testing.T) {
	d := buildTriangle(t)
	// ff1 -> g2 -> ff3: LCA is the root (depth 0), credit 0.
	p, err := d.RecomputePath(Setup, pins(d, t, "ff1/CK", "ff1/Q", "g2", "ff3/D"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Credit != 0 || p.LCADepth != 0 {
		t.Errorf("credit=%v depth=%d, want 0/0", p.Credit, p.LCADepth)
	}
	if p.Slack != p.PreSlack {
		t.Error("slack must equal pre-slack when credit is 0")
	}
}

func TestRecomputePathSelfLoop(t *testing.T) {
	d := buildTriangle(t)
	p, err := d.RecomputePath(Setup, pins(d, t, "ff2/CK", "ff2/Q", "g3", "ff2/D"))
	if err != nil {
		t.Fatal(err)
	}
	if !p.SelfLoop() {
		t.Fatal("self loop not detected")
	}
	// LCA(ff2,ff2)=ff2/CK, depth 2, credit = 165-135=30.
	if p.LCADepth != 2 || p.Credit != 30 {
		t.Errorf("depth=%d credit=%v, want 2/30", p.LCADepth, p.Credit)
	}
}

func TestRecomputePathFromPI(t *testing.T) {
	d := buildTriangle(t)
	p, err := d.RecomputePath(Setup, pins(d, t, "in1", "g2", "ff3/D"))
	if err != nil {
		t.Fatal(err)
	}
	if p.LaunchFF != NoFF || p.LCADepth != -1 || p.Credit != 0 {
		t.Errorf("PI path got launch=%d depth=%d credit=%v", p.LaunchFF, p.LCADepth, p.Credit)
	}
	// late D arrival = PI late 12 + 20 + 110 = 142
	// pre = at_early(ff3/CK)=150 + 10000 - 25 - 142 = 9983
	if p.Slack != 9983 {
		t.Errorf("Slack = %v, want 9983", p.Slack.Ps())
	}
	if p.StartPin() != pins(d, t, "in1")[0] || d.Pins[p.EndPin()].Kind != FFData {
		t.Error("start/end pins wrong")
	}
}

func TestRecomputePathErrors(t *testing.T) {
	d := buildTriangle(t)
	cases := []struct {
		name    string
		pins    []string
		errPart string
	}{
		{"too short", []string{"g1"}, "too short"},
		{"wrong end", []string{"ff1/CK", "ff1/Q", "g1"}, "must end at an FF D pin"},
		{"wrong start", []string{"g1", "ff2/D"}, "must start at"},
		{"missing arc", []string{"ff1/CK", "ff1/Q", "g3", "ff2/D"}, "no arc"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := d.RecomputePath(Setup, pins(d, t, c.pins...))
			if err == nil || !strings.Contains(err.Error(), c.errPart) {
				t.Fatalf("err = %v, want contains %q", err, c.errPart)
			}
		})
	}
}

func TestPathFormat(t *testing.T) {
	d := buildTriangle(t)
	p, err := d.RecomputePath(Setup, pins(d, t, "ff1/CK", "ff1/Q", "g1", "ff2/D"))
	if err != nil {
		t.Fatal(err)
	}
	s := p.Format(d)
	for _, want := range []string{"setup path", "ff1/CK", "ff2/D", "credit 0.020ns", "LCA depth 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q in:\n%s", want, s)
		}
	}
	if !strings.HasPrefix(s[strings.Index(s, "^"):], "^ ff1/CK") {
		t.Error("start marker wrong")
	}
}

func TestPinKindString(t *testing.T) {
	kinds := map[PinKind]string{
		Comb: "comb", PI: "pi", PO: "po", ClockRoot: "clockroot",
		ClockBuf: "clockbuf", FFClock: "ffclock", FFData: "ffdata", FFOutput: "ffoutput",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(k), k.String(), want)
		}
	}
	if PinKind(99).String() != "PinKind(99)" {
		t.Error("unknown kind string wrong")
	}
}

func TestFormatDetailed(t *testing.T) {
	d := buildTriangle(t)
	p, err := d.RecomputePath(Setup, pins(d, t, "ff1/CK", "ff1/Q", "g1", "ff2/D"))
	if err != nil {
		t.Fatal(err)
	}
	s := p.FormatDetailed(d)
	for _, want := range []string{"pin", "incr", "arrival", "(launch)", "setup check", "ff1/CK", "ff2/D"} {
		if !strings.Contains(s, want) {
			t.Errorf("FormatDetailed missing %q in:\n%s", want, s)
		}
	}
	// Launch arrival is the late clock arrival (0.170ns) and the final
	// arrival is 0.500ns (computed in TestRecomputePathSetup).
	if !strings.Contains(s, "0.170ns") || !strings.Contains(s, "0.500ns") {
		t.Errorf("arrivals wrong in:\n%s", s)
	}
	// Hold variant uses early numbers and the hold check line.
	ph, err := d.RecomputePath(Hold, pins(d, t, "ff1/CK", "ff1/Q", "g1", "ff2/D"))
	if err != nil {
		t.Fatal(err)
	}
	sh := ph.FormatDetailed(d)
	if !strings.Contains(sh, "hold check") || !strings.Contains(sh, "0.130ns") {
		t.Errorf("hold detail wrong in:\n%s", sh)
	}
}

func TestWriteDOT(t *testing.T) {
	d := buildTriangle(t)
	var buf strings.Builder
	if err := d.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`digraph "triangle"`, `"ff1/CK"`, "doublecircle", "color=orange", "rankdir=LR", "}"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// One node line per pin, one edge line per arc.
	if got := strings.Count(s, "->"); got != d.NumArcs() {
		t.Errorf("%d edges in DOT, want %d", got, d.NumArcs())
	}
}
