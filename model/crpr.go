package model

import "fmt"

// CRPRMode selects how much of the shared clock path is credited back
// when removing common path pessimism. Industrial signoff tools expose
// the same pair of modes (OpenSTA: `set_cmd_units`-independent
// `crpr_mode` variable).
type CRPRMode uint8

const (
	// CRPRSamePin credits the full early/late window width at the last
	// physically common clock-tree pin of the launch and capture clock
	// paths. This is the paper's model and the default.
	CRPRSamePin CRPRMode = iota
	// CRPRSameTransition additionally requires the launch and capture
	// clock edges to have the same sense (rise/rise or fall/fall) at the
	// common pin. With single-edge clocking the transition seen at an
	// ancestor a by the path to a leaf u is parity(u) XOR parity(a)
	// inversions away from the root edge, so the transitions at ANY
	// common ancestor match exactly when parity(launch CK) equals
	// parity(capture CK); a mismatch therefore yields zero credit (no
	// deeper or shallower ancestor can recover it).
	CRPRSameTransition
)

// String returns the SDC spelling of the mode.
func (m CRPRMode) String() string {
	switch m {
	case CRPRSamePin:
		return "same_pin"
	case CRPRSameTransition:
		return "same_transition"
	default:
		return fmt.Sprintf("CRPRMode(%d)", uint8(m))
	}
}

// ParseCRPRMode parses the SDC spelling of a CRPR mode.
func ParseCRPRMode(s string) (CRPRMode, error) {
	switch s {
	case "same_pin":
		return CRPRSamePin, nil
	case "same_transition":
		return CRPRSameTransition, nil
	default:
		return 0, fmt.Errorf("model: unknown CRPR mode %q (want same_pin or same_transition)", s)
	}
}
