package model

import (
	"reflect"
	"testing"
)

// twoCloudDesign builds FF1 -> (a1->a2) -> FF2 -> (b1->b2) -> FF3 with
// two single-arc combinational clouds.
func twoCloudDesign(t *testing.T) *Design {
	t.Helper()
	b := NewBuilder("blocks", 1000)
	root := b.AddClockRoot("clk")
	f1 := b.AddFF("ff1", 10, 5, Window{Early: 18, Late: 20})
	f2 := b.AddFF("ff2", 10, 5, Window{Early: 18, Late: 20})
	f3 := b.AddFF("ff3", 10, 5, Window{Early: 18, Late: 20})
	b.AddArc(root, f1.Clock, Window{Early: 10, Late: 12})
	b.AddArc(root, f2.Clock, Window{Early: 11, Late: 13})
	b.AddArc(root, f3.Clock, Window{Early: 9, Late: 14})
	a1 := b.AddComb("a1")
	a2 := b.AddComb("a2")
	b.AddArc(f1.Q, a1, Window{Early: 5, Late: 8})
	b.AddArc(a1, a2, Window{Early: 20, Late: 30})
	b.AddArc(a2, f2.D, Window{Early: 3, Late: 4})
	b1 := b.AddComb("b1")
	b2 := b.AddComb("b2")
	b.AddArc(f2.Q, b1, Window{Early: 5, Late: 8})
	b.AddArc(b1, b2, Window{Early: 20, Late: 30})
	b.AddArc(b2, f3.D, Window{Early: 3, Late: 4})
	return b.MustBuild()
}

func TestPartitionBlocksTwoClouds(t *testing.T) {
	d := twoCloudDesign(t)
	bl := PartitionBlocks(d)
	if bl.NumBlocks() != 2 {
		t.Fatalf("NumBlocks = %d, want 2", bl.NumBlocks())
	}
	for b := 0; b < 2; b++ {
		if len(bl.Pins[b]) != 2 {
			t.Fatalf("block %d has %d pins, want 2", b, len(bl.Pins[b]))
		}
		if len(bl.BoundaryIn[b]) != 1 || len(bl.BoundaryOut[b]) != 1 {
			t.Fatalf("block %d boundary in/out = %d/%d, want 1/1",
				b, len(bl.BoundaryIn[b]), len(bl.BoundaryOut[b]))
		}
		if len(bl.InternalArcs[b]) != 1 {
			t.Fatalf("block %d has %d internal arcs, want 1", b, len(bl.InternalArcs[b]))
		}
	}
	// Every comb pin owned, every non-comb pin unowned.
	for u := range d.Pins {
		owned := bl.Of[u] >= 0
		if owned != (d.Pins[u].Kind == Comb) {
			t.Fatalf("pin %s (kind %v): Of = %d", d.Pins[u].Name, d.Pins[u].Kind, bl.Of[u])
		}
	}
	// The two clouds are structural clones with identical delays: their
	// signatures must agree at every granularity.
	if bl.Signature(0) != bl.Signature(1) {
		t.Fatalf("clone blocks have different signatures:\n%s\n%s", bl.Signature(0), bl.Signature(1))
	}
	if bl.BaseSignature(0) != bl.BaseSignature(1) {
		t.Fatal("clone blocks have different base signatures")
	}
}

func TestPartitionBlocksSignatureSeparatesDelays(t *testing.T) {
	d := twoCloudDesign(t)
	bl := PartitionBlocks(d)
	a1, _ := d.PinByName("a1")
	a2, _ := d.PinByName("a2")
	ai := d.ArcBetween(a1, a2)
	nd := d.CloneWithArcs()
	nd.Arcs[ai].Delay = Window{Early: 21, Late: 30}
	nbl := PartitionBlocks(nd)
	if nbl.Signature(0) == nbl.Signature(1) {
		t.Fatal("signature did not separate blocks with different internal delays")
	}
	// An extra corner that scales uniformly keeps full signatures equal
	// between clone blocks but distinct from the base-only signature.
	cd, _, err := d.WithScaledCorner("slow", 1.1, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	cbl := PartitionBlocks(cd)
	if cbl.Signature(0) != cbl.Signature(1) {
		t.Fatal("uniformly scaled corner broke clone-block signature equality")
	}
	if cbl.Signature(0) == cbl.BaseSignature(0) {
		t.Fatal("full signature ignored the extra corner")
	}
	if cbl.BaseSignature(0) != bl.BaseSignature(0) {
		t.Fatal("base signature changed when only an extra corner was added")
	}
}

func TestPartitionBlocksBoundaryRoles(t *testing.T) {
	// g1 feeds both g2 (internal) and a PO (boundary out); g2 also
	// receives a direct PI arc (boundary in). Dead-end comb pin g3 has
	// fan-in but no comb fan-out and no non-comb fan-out.
	b := NewBuilder("roles", 1000)
	root := b.AddClockRoot("clk")
	f1 := b.AddFF("ff1", 10, 5, Window{Early: 18, Late: 20})
	b.AddArc(root, f1.Clock, Window{Early: 10, Late: 12})
	pi := b.AddPI("in", Window{})
	po := b.AddPO("out")
	g1 := b.AddComb("g1")
	g2 := b.AddComb("g2")
	g3 := b.AddComb("g3")
	b.AddArc(f1.Q, g1, Window{Early: 1, Late: 2})
	b.AddArc(g1, g2, Window{Early: 5, Late: 9})
	b.AddArc(g1, po, Window{Early: 1, Late: 1})
	b.AddArc(pi, g2, Window{Early: 2, Late: 3})
	b.AddArc(g2, g3, Window{Early: 1, Late: 4})
	b.AddArc(g2, f1.D, Window{Early: 1, Late: 1})
	d := b.MustBuild()

	bl := PartitionBlocks(d)
	if bl.NumBlocks() != 1 {
		t.Fatalf("NumBlocks = %d, want 1", bl.NumBlocks())
	}
	wantIn := []PinID{g1, g2}
	wantOut := []PinID{g1, g2}
	if !reflect.DeepEqual(bl.BoundaryIn[0], wantIn) {
		t.Fatalf("BoundaryIn = %v, want %v", bl.BoundaryIn[0], wantIn)
	}
	if !reflect.DeepEqual(bl.BoundaryOut[0], wantOut) {
		t.Fatalf("BoundaryOut = %v, want %v", bl.BoundaryOut[0], wantOut)
	}
	if len(bl.InternalArcs[0]) != 2 {
		t.Fatalf("internal arcs = %d, want 2 (g1->g2, g2->g3)", len(bl.InternalArcs[0]))
	}
}
