package model

import (
	"fmt"
	"strings"
)

// Mode selects the timing check a path is ranked under.
type Mode uint8

const (
	// Setup ranks paths by setup slack: late data arrivals against the
	// early capture clock edge one period later.
	Setup Mode = iota
	// Hold ranks paths by hold slack: early data arrivals against the
	// late capture clock edge of the same cycle.
	Hold
)

// String returns "setup" or "hold".
func (m Mode) String() string {
	if m == Hold {
		return "hold"
	}
	return "setup"
}

// Modes lists both check modes, in report order.
var Modes = [2]Mode{Setup, Hold}

// Path is a ranked post-CPPR timing path: the full pin sequence from the
// launch point (an FF clock pin, or a primary input) to the capturing FF's
// D pin, together with its slack decomposition.
type Path struct {
	// Mode is the check this path was ranked under.
	Mode Mode
	// Pins is the complete pin sequence. For FF-launched paths it starts
	// at the launching FF's clock (CK) pin; for PI-launched paths at the
	// primary input. It ends at the capturing FF's D pin, or at a
	// constrained primary output for output checks.
	Pins []PinID
	// LaunchFF is the launching flip-flop, or NoFF for PI-launched paths.
	LaunchFF FFID
	// CaptureFF is the capturing flip-flop, or NoFF for paths ending at
	// a constrained primary output.
	CaptureFF FFID
	// Slack is the post-CPPR slack (the ranking key).
	Slack Time
	// PreSlack is the slack before pessimism removal.
	PreSlack Time
	// Credit is the CPPR credit applied: Slack - PreSlack. Zero for
	// PI-launched paths.
	Credit Time
	// LCADepth is the clock-tree depth of LCA(launch CK, capture CK);
	// -1 for PI-launched paths.
	LCADepth int
}

// SelfLoop reports whether the path launches and captures at the same FF.
func (p *Path) SelfLoop() bool {
	return p.LaunchFF != NoFF && p.LaunchFF == p.CaptureFF
}

// StartPin returns the first pin (launch CK pin or PI).
func (p *Path) StartPin() PinID { return p.Pins[0] }

// EndPin returns the final pin (the capturing FF's D pin or a PO).
func (p *Path) EndPin() PinID { return p.Pins[len(p.Pins)-1] }

// EndsAtPO reports whether the path is an output check.
func (p *Path) EndsAtPO() bool { return p.CaptureFF == NoFF }

// Format renders a human-readable multi-line path report.
func (p *Path) Format(d *Design) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s path, slack %v (pre-CPPR %v, credit %v, LCA depth %d)\n",
		p.Mode, p.Slack, p.PreSlack, p.Credit, p.LCADepth)
	for i, u := range p.Pins {
		prefix := "  "
		if i == 0 {
			prefix = "^ "
		} else if i == len(p.Pins)-1 {
			prefix = "$ "
		}
		fmt.Fprintf(&sb, "%s%s\n", prefix, d.PinName(u))
	}
	return sb.String()
}

// ClockArrival returns the early/late arrival window of clock-tree pin u:
// the accumulated tree delay from u's domain root. It walks parent
// pointers and is O(depth); use internal/sta for bulk propagation.
func (d *Design) ClockArrival(u PinID) Window {
	var w Window
	for d.Pins[u].Kind != ClockRoot {
		ai := d.ClockParentArc[u]
		if ai < 0 {
			panic(fmt.Sprintf("model: pin %q is not in the clock tree", d.PinName(u)))
		}
		w = w.Add(d.Arcs[ai].Delay)
		u = d.ClockParent[u]
	}
	return w
}

// Credit returns the CPPR credit of clock-tree node u:
// at_late(u) - at_early(u).
func (d *Design) Credit(u PinID) Time { return d.ClockArrival(u).Width() }

// NaiveLCA returns the lowest common ancestor of clock pins u and v by
// walking parent pointers, or NoPin when u and v sit in different clock
// domains (no common ancestor, no shared pessimism); O(depth). The
// internal/lca package provides the O(1)-query structures used by the
// timers; this is the test oracle.
func (d *Design) NaiveLCA(u, v PinID) PinID {
	du, dv := d.ClockDepth[u], d.ClockDepth[v]
	if du < 0 || dv < 0 {
		panic("model: NaiveLCA on non-clock pin")
	}
	for du > dv {
		u = d.ClockParent[u]
		du--
	}
	for dv > du {
		v = d.ClockParent[v]
		dv--
	}
	for u != v {
		if d.ClockParent[u] == NoPin || d.ClockParent[v] == NoPin {
			return NoPin // different clock domains
		}
		u = d.ClockParent[u]
		v = d.ClockParent[v]
	}
	return u
}

// RecomputePath is RecomputePathCRPR under the default CRPRSamePin
// mode: the paper's credit model.
func (d *Design) RecomputePath(mode Mode, pins []PinID) (Path, error) {
	return d.RecomputePathCRPR(mode, CRPRSamePin, pins)
}

// RecomputePathCRPR re-derives a path's slack decomposition from first
// principles: it checks every consecutive pin pair is connected by an arc,
// determines launch/capture, accumulates the mode's delay bound, subtracts
// the mode's clock uncertainty from FF-capture slacks, applies the exact
// LCA credit under the given CRPR mode, and returns a fully populated
// copy. It is the validation oracle every timer's output is checked
// against in tests. Under CRPRSameTransition, launch/capture clock pins
// of unequal inversion parity get zero credit (their edges disagree at
// every common ancestor) and the path reports LCADepth -1.
func (d *Design) RecomputePathCRPR(mode Mode, crpr CRPRMode, pins []PinID) (Path, error) {
	if len(pins) < 2 {
		return Path{}, fmt.Errorf("model: path too short (%d pins)", len(pins))
	}
	end := pins[len(pins)-1]
	capFF := NoFF
	var poRequired Window
	switch d.Pins[end].Kind {
	case FFData:
		capFF = d.Pins[end].FF
	case PO:
		found := false
		for i, po := range d.POs {
			if po == end {
				if !d.POConstrained[i] {
					return Path{}, fmt.Errorf("model: primary output %q is unconstrained", d.PinName(end))
				}
				poRequired = d.PORequired[i]
				found = true
				break
			}
		}
		if !found {
			return Path{}, fmt.Errorf("model: pin %q not registered as a primary output", d.PinName(end))
		}
	default:
		return Path{}, fmt.Errorf("model: path must end at an FF D pin or constrained PO, got %q", d.PinName(end))
	}
	start := pins[0]

	var launchFF = NoFF
	switch d.Pins[start].Kind {
	case FFClock:
		launchFF = d.Pins[start].FF
	case PI:
	default:
		return Path{}, fmt.Errorf("model: path must start at an FF CK pin or a primary input, got %q (%v)",
			d.PinName(start), d.Pins[start].Kind)
	}

	// Accumulate path delay under the mode's bound.
	var delay Time
	for i := 0; i+1 < len(pins); i++ {
		ai := d.ArcBetween(pins[i], pins[i+1])
		if ai < 0 {
			return Path{}, fmt.Errorf("model: no arc %q -> %q", d.PinName(pins[i]), d.PinName(pins[i+1]))
		}
		if mode == Setup {
			delay += d.Arcs[ai].Delay.Late
		} else {
			delay += d.Arcs[ai].Delay.Early
		}
	}

	// Data arrival at the endpoint.
	var dAt Time
	if launchFF != NoFF {
		lauAt := d.ClockArrival(d.FFs[launchFF].Clock)
		if mode == Setup {
			dAt = lauAt.Late + delay
		} else {
			dAt = lauAt.Early + delay
		}
	} else {
		// PI launch: external arrival window at the input.
		var w Window
		found := false
		for i, p := range d.PIs {
			if p == start {
				w = d.PIArrival[i]
				found = true
				break
			}
		}
		if !found {
			return Path{}, fmt.Errorf("model: pin %q not registered as a primary input", d.PinName(start))
		}
		if mode == Setup {
			dAt = w.Late + delay
		} else {
			dAt = w.Early + delay
		}
	}

	var pre Time
	if capFF != NoFF {
		ff := d.FFs[capFF]
		capAt := d.ClockArrival(ff.Clock)
		if mode == Setup {
			pre = capAt.Early + d.Period - ff.Setup - dAt
		} else {
			pre = dAt - (capAt.Late + ff.Hold)
		}
		// Clock uncertainty is a capture-clock margin: it tightens every
		// FF-capture check of the mode by a constant.
		pre -= d.Uncertainty[mode]
	} else {
		// Output check against the PO's required window.
		if mode == Setup {
			pre = poRequired.Late - dAt
		} else {
			pre = dAt - poRequired.Early
		}
	}

	p := Path{
		Mode:      mode,
		Pins:      pins,
		LaunchFF:  launchFF,
		CaptureFF: capFF,
		PreSlack:  pre,
		LCADepth:  -1,
	}
	if launchFF != NoFF && capFF != NoFF {
		lck, cck := d.FFs[launchFF].Clock, d.FFs[capFF].Clock
		// Cross-domain pairs share no clock path; under same_transition,
		// parity-mismatched pairs see opposite edges at every common
		// ancestor. Neither carries credit.
		if crpr == CRPRSameTransition && d.ClockParity[lck] != d.ClockParity[cck] {
			// no credit
		} else if l := d.NaiveLCA(lck, cck); l != NoPin {
			p.LCADepth = int(d.ClockDepth[l])
			p.Credit = d.Credit(l)
		}
	}
	p.Slack = p.PreSlack + p.Credit
	return p, nil
}

// FormatDetailed renders a signoff-style per-pin timing report for the
// path: each line shows the pin, the incremental arc delay under the
// path's check mode, and the accumulated arrival. The launch line uses
// the launching clock arrival (late for setup, early for hold) or the
// PI arrival window.
func (p *Path) FormatDetailed(d *Design) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s path, slack %v = pre-CPPR %v + credit %v (LCA depth %d)\n",
		p.Mode, p.Slack, p.PreSlack, p.Credit, p.LCADepth)
	fmt.Fprintf(&sb, "%-32s %12s %12s\n", "pin", "incr", "arrival")

	var at Time
	start := p.Pins[0]
	switch d.Pins[start].Kind {
	case FFClock:
		w := d.ClockArrival(start)
		if p.Mode == Setup {
			at = w.Late
		} else {
			at = w.Early
		}
	case PI:
		for i, pi := range d.PIs {
			if pi == start {
				if p.Mode == Setup {
					at = d.PIArrival[i].Late
				} else {
					at = d.PIArrival[i].Early
				}
				break
			}
		}
	}
	fmt.Fprintf(&sb, "%-32s %12s %12v  (launch)\n", d.PinName(start), "-", at)
	for i := 1; i < len(p.Pins); i++ {
		ai := d.ArcBetween(p.Pins[i-1], p.Pins[i])
		var incr Time
		if ai >= 0 {
			if p.Mode == Setup {
				incr = d.Arcs[ai].Delay.Late
			} else {
				incr = d.Arcs[ai].Delay.Early
			}
		}
		at += incr
		fmt.Fprintf(&sb, "%-32s %12v %12v\n", d.PinName(p.Pins[i]), incr, at)
	}

	// Check line: the capture requirement this arrival is tested against.
	if p.CaptureFF != NoFF {
		ff := d.FFs[p.CaptureFF]
		cap := d.ClockArrival(ff.Clock)
		if p.Mode == Setup {
			fmt.Fprintf(&sb, "%-32s %12s %12v  (early capture + T - setup)\n",
				d.FFs[p.CaptureFF].Name+" setup check", "-", cap.Early+d.Period-ff.Setup)
		} else {
			fmt.Fprintf(&sb, "%-32s %12s %12v  (late capture + hold)\n",
				d.FFs[p.CaptureFF].Name+" hold check", "-", cap.Late+ff.Hold)
		}
	}
	return sb.String()
}
