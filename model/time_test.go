package model

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0.000ns"},
		{1, "0.001ns"},
		{999, "0.999ns"},
		{1000, "1.000ns"},
		{1250, "1.250ns"},
		{-3, "-0.003ns"},
		{-1250, "-1.250ns"},
		{Ns(2), "2.000ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestParseTime(t *testing.T) {
	cases := []struct {
		in      string
		want    Time
		wantErr bool
	}{
		{"250", 250, false},
		{"250ps", 250, false},
		{" 250ps ", 250, false},
		{"0.25ns", 250, false},
		{"3ns", 3000, false},
		{"-5", -5, false},
		{"-0.5ns", -500, false},
		{"abc", 0, true},
		{"1.5", 0, true}, // fractional ps not allowed
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := ParseTime(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseTime(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("ParseTime(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseTimeRoundTrip(t *testing.T) {
	f := func(n int32) bool {
		tm := Time(n)
		got, err := ParseTime(tm.String())
		return err == nil && got == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxOf(t *testing.T) {
	if MinOf(3, 5) != 3 || MinOf(5, 3) != 3 || MaxOf(3, 5) != 5 || MaxOf(5, 3) != 5 {
		t.Error("MinOf/MaxOf wrong")
	}
	if MinOf(-2, -7) != -7 || MaxOf(-2, -7) != -2 {
		t.Error("MinOf/MaxOf wrong on negatives")
	}
}

func TestWindow(t *testing.T) {
	a := Window{Early: 10, Late: 30}
	b := Window{Early: 5, Late: 7}
	sum := a.Add(b)
	if sum != (Window{Early: 15, Late: 37}) {
		t.Errorf("Add = %v", sum)
	}
	if a.Width() != 20 {
		t.Errorf("Width = %v, want 20", a.Width())
	}
	if got := a.String(); got != "[0.010ns, 0.030ns]" {
		t.Errorf("String = %q", got)
	}
}

func TestModeString(t *testing.T) {
	if Setup.String() != "setup" || Hold.String() != "hold" {
		t.Error("Mode.String wrong")
	}
	if Modes != [2]Mode{Setup, Hold} {
		t.Error("Modes order changed")
	}
}
