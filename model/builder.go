package model

import (
	"errors"
	"fmt"
)

// Builder assembles a Design incrementally and validates it in Build.
// A Builder is not safe for concurrent use.
type Builder struct {
	name         string
	period       Time
	pins         []Pin
	arcs         []Arc
	ffs          []FF
	roots        []PinID
	pis          []PinID
	piArrival    []Window
	pos          []PinID
	poRequired   []Window
	poConstraint []bool
	uncertainty  [2]Time
	byName       map[string]PinID
	errs         []error
}

// NewBuilder returns a Builder for a design with the given name and
// clock period.
func NewBuilder(name string, period Time) *Builder {
	return &Builder{
		name:   name,
		period: period,
		byName: make(map[string]PinID),
	}
}

func (b *Builder) addPin(name string, kind PinKind, ff FFID) PinID {
	if _, dup := b.byName[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("model: duplicate pin name %q", name))
		return NoPin
	}
	id := PinID(len(b.pins))
	b.pins = append(b.pins, Pin{Name: name, Kind: kind, FF: ff})
	b.byName[name] = id
	return id
}

// AddComb adds an internal combinational pin.
func (b *Builder) AddComb(name string) PinID { return b.addPin(name, Comb, NoFF) }

// AddPI adds a primary input with the given external arrival window.
func (b *Builder) AddPI(name string, arrival Window) PinID {
	id := b.addPin(name, PI, NoFF)
	if id != NoPin {
		b.pis = append(b.pis, id)
		b.piArrival = append(b.piArrival, arrival)
	}
	return id
}

// AddPO adds an unconstrained primary output pin (no timing check).
func (b *Builder) AddPO(name string) PinID {
	id := b.addPin(name, PO, NoFF)
	if id != NoPin {
		b.pos = append(b.pos, id)
		b.poRequired = append(b.poRequired, Window{})
		b.poConstraint = append(b.poConstraint, false)
	}
	return id
}

// AddPOConstrained adds a primary output with an output timing check:
// setup requires arrival at or before required.Late, hold requires
// arrival at or after required.Early.
func (b *Builder) AddPOConstrained(name string, required Window) PinID {
	id := b.addPin(name, PO, NoFF)
	if id != NoPin {
		b.pos = append(b.pos, id)
		b.poRequired = append(b.poRequired, required)
		b.poConstraint = append(b.poConstraint, true)
	}
	return id
}

// AddClockRoot adds a clock source pin. Each call starts a new clock
// domain; most designs have exactly one.
func (b *Builder) AddClockRoot(name string) PinID {
	id := b.addPin(name, ClockRoot, NoFF)
	if id != NoPin {
		b.roots = append(b.roots, id)
	}
	return id
}

// AddClockBuf adds an internal clock-tree node.
func (b *Builder) AddClockBuf(name string) PinID { return b.addPin(name, ClockBuf, NoFF) }

// FFPins bundles the three pins of a flip-flop created by AddFF.
type FFPins struct {
	ID          FFID
	Clock, D, Q PinID
}

// AddFF adds a flip-flop named name with the given setup/hold constraints
// and clock-to-Q delay window. It creates three pins (name+"/CK", "/D",
// "/Q") and the CK->Q launch arc.
func (b *Builder) AddFF(name string, setup, hold Time, clkToQ Window) FFPins {
	id := FFID(len(b.ffs))
	ck := b.addPin(name+"/CK", FFClock, id)
	dp := b.addPin(name+"/D", FFData, id)
	qp := b.addPin(name+"/Q", FFOutput, id)
	b.ffs = append(b.ffs, FF{Name: name, Clock: ck, Data: dp, Output: qp, Setup: setup, Hold: hold})
	if ck != NoPin && qp != NoPin {
		b.AddArc(ck, qp, clkToQ)
	}
	return FFPins{ID: id, Clock: ck, D: dp, Q: qp}
}

// AddArc adds a timing arc from -> to with the given delay window.
func (b *Builder) AddArc(from, to PinID, delay Window) {
	if from == NoPin || to == NoPin {
		b.errs = append(b.errs, errors.New("model: arc references an invalid pin"))
		return
	}
	b.arcs = append(b.arcs, Arc{From: from, To: to, Delay: delay})
}

// AddInvertingArc adds a polarity-inverting clock-tree arc (an
// inverting buffer stage). Both endpoints must be clock-kind pins;
// Build rejects inversion elsewhere.
func (b *Builder) AddInvertingArc(from, to PinID, delay Window) {
	if from == NoPin || to == NoPin {
		b.errs = append(b.errs, errors.New("model: arc references an invalid pin"))
		return
	}
	b.arcs = append(b.arcs, Arc{From: from, To: to, Delay: delay, Invert: true})
}

// SetClockUncertainty sets the per-mode clock uncertainty margin
// (set_clock_uncertainty): subtracted from every FF-capture slack of
// that mode. Build rejects negative values.
func (b *Builder) SetClockUncertainty(mode Mode, u Time) {
	b.uncertainty[mode] = u
}

// Pin returns the id of a previously added pin by name.
func (b *Builder) Pin(name string) (PinID, bool) {
	id, ok := b.byName[name]
	return id, ok
}

// Build validates the accumulated elements and returns the finished
// Design. It reports the first structural problem found.
func (b *Builder) Build() (*Design, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	d := &Design{
		Name:          b.name,
		Period:        b.period,
		Pins:          b.pins,
		Arcs:          b.arcs,
		FFs:           b.ffs,
		Root:          NoPin,
		Roots:         b.roots,
		PIs:           b.pis,
		PIArrival:     b.piArrival,
		POs:           b.pos,
		PORequired:    b.poRequired,
		POConstrained: b.poConstraint,
		Uncertainty:   b.uncertainty,
		byName:        b.byName,
	}
	if len(b.roots) > 0 {
		d.Root = b.roots[0]
	}
	if err := finalize(d); err != nil {
		return nil, err
	}
	return d, nil
}

// MustBuild is Build that panics on error; for tests and examples.
func (b *Builder) MustBuild() *Design {
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d
}

// finalize computes derived structure and validates the design:
// CSR adjacency, topological order (rejecting cycles), clock-tree
// parent/depth arrays, and the structural invariants documented on the
// field comments of Design.
func finalize(d *Design) error {
	n := len(d.Pins)
	if n == 0 {
		return errors.New("model: design has no pins")
	}
	if len(d.Roots) == 0 {
		return errors.New("model: design has no clock root")
	}
	if d.Period <= 0 {
		return fmt.Errorf("model: clock period %v must be positive", d.Period)
	}
	for mode, u := range d.Uncertainty {
		if u < 0 {
			return fmt.Errorf("model: %v clock uncertainty %v must be non-negative", Mode(mode), u)
		}
	}

	// Delay sanity.
	for i, a := range d.Arcs {
		if a.From == a.To {
			return fmt.Errorf("model: arc %d is a self-loop on pin %q", i, d.PinName(a.From))
		}
		if int(a.From) >= n || int(a.To) >= n || a.From < 0 || a.To < 0 {
			return fmt.Errorf("model: arc %d references pin out of range", i)
		}
		if a.Delay.Early < 0 || a.Delay.Early > a.Delay.Late {
			return fmt.Errorf("model: arc %d (%s -> %s) has invalid delay window %v",
				i, d.PinName(a.From), d.PinName(a.To), a.Delay)
		}
	}

	buildCSR(d)
	if err := buildTopo(d); err != nil {
		return err
	}
	if err := buildClockTree(d); err != nil {
		return err
	}
	return validateStructure(d)
}

// buildCSR fills the fan-in/fan-out CSR adjacency tables.
func buildCSR(d *Design) {
	n := len(d.Pins)
	m := len(d.Arcs)
	d.OutStart = make([]int32, n+1)
	d.InStart = make([]int32, n+1)
	for _, a := range d.Arcs {
		d.OutStart[a.From+1]++
		d.InStart[a.To+1]++
	}
	for i := 0; i < n; i++ {
		d.OutStart[i+1] += d.OutStart[i]
		d.InStart[i+1] += d.InStart[i]
	}
	d.OutArcs = make([]int32, m)
	d.InArcs = make([]int32, m)
	outPos := make([]int32, n)
	inPos := make([]int32, n)
	for ai, a := range d.Arcs {
		d.OutArcs[d.OutStart[a.From]+outPos[a.From]] = int32(ai)
		outPos[a.From]++
		d.InArcs[d.InStart[a.To]+inPos[a.To]] = int32(ai)
		inPos[a.To]++
	}
}

// buildTopo computes a topological order with Kahn's algorithm, failing
// on cycles.
func buildTopo(d *Design) error {
	n := len(d.Pins)
	indeg := make([]int32, n)
	for _, a := range d.Arcs {
		indeg[a.To]++
	}
	order := make([]PinID, 0, n)
	for u := 0; u < n; u++ {
		if indeg[u] == 0 {
			order = append(order, PinID(u))
		}
	}
	for head := 0; head < len(order); head++ {
		u := order[head]
		for _, ai := range d.FanOut(u) {
			v := d.Arcs[ai].To
			indeg[v]--
			if indeg[v] == 0 {
				order = append(order, v)
			}
		}
	}
	if len(order) != n {
		return errors.New("model: timing graph contains a cycle")
	}
	d.Topo = order
	d.TopoIndex = make([]int32, n)
	for i, u := range order {
		d.TopoIndex[u] = int32(i)
	}
	d.TopoBlockEnds = topoBlockEnds(d)
	return nil
}

// buildClockTree derives parent, depth and D from clock-kind pins and the
// arcs between them.
func buildClockTree(d *Design) error {
	n := len(d.Pins)
	d.ClockParent = make([]PinID, n)
	d.ClockParentArc = make([]int32, n)
	d.ClockDepth = make([]int32, n)
	for u := range d.ClockParent {
		d.ClockParent[u] = NoPin
		d.ClockParentArc[u] = -1
		d.ClockDepth[u] = -1
	}
	for ai, a := range d.Arcs {
		if d.Pins[a.From].Kind.IsClock() && d.Pins[a.To].Kind.IsClock() {
			if d.Pins[a.To].Kind == ClockRoot {
				return fmt.Errorf("model: clock root %q has an incoming clock arc", d.PinName(a.To))
			}
			if d.ClockParent[a.To] != NoPin {
				return fmt.Errorf("model: clock pin %q has two clock-tree parents (%q, %q)",
					d.PinName(a.To), d.PinName(d.ClockParent[a.To]), d.PinName(a.From))
			}
			if d.Pins[a.From].Kind == FFClock {
				return fmt.Errorf("model: FF clock pin %q drives clock pin %q (FF clock pins must be clock-tree leaves)",
					d.PinName(a.From), d.PinName(a.To))
			}
			d.ClockParent[a.To] = a.From
			d.ClockParentArc[a.To] = int32(ai)
		}
	}
	// Depths and inversion parities in topological order (parents
	// precede children in Topo).
	d.ClockParity = make([]uint8, n)
	for _, r := range d.Roots {
		d.ClockDepth[r] = 0
	}
	maxFFDepth := int32(-1)
	for _, u := range d.Topo {
		if !d.Pins[u].Kind.IsClock() || d.Pins[u].Kind == ClockRoot {
			continue
		}
		p := d.ClockParent[u]
		if p == NoPin {
			return fmt.Errorf("model: clock pin %q is not connected to the clock root", d.PinName(u))
		}
		if d.ClockDepth[p] < 0 {
			return fmt.Errorf("model: clock pin %q has parent outside the clock tree", d.PinName(u))
		}
		d.ClockDepth[u] = d.ClockDepth[p] + 1
		d.ClockParity[u] = d.ClockParity[p]
		if d.Arcs[d.ClockParentArc[u]].Invert {
			d.ClockParity[u] ^= 1
		}
		if d.Pins[u].Kind == FFClock && d.ClockDepth[u] > maxFFDepth {
			maxFFDepth = d.ClockDepth[u]
		}
	}
	d.Depth = int(maxFFDepth + 1) // number of levels 0..maxFFDepth
	return nil
}

// validateStructure checks the FF pin wiring and endpoint conventions.
func validateStructure(d *Design) error {
	for fi, ff := range d.FFs {
		if ff.Clock == NoPin || ff.Data == NoPin || ff.Output == NoPin {
			return fmt.Errorf("model: FF %q is missing a pin", ff.Name)
		}
		if d.Pins[ff.Clock].Kind != FFClock || d.Pins[ff.Data].Kind != FFData || d.Pins[ff.Output].Kind != FFOutput {
			return fmt.Errorf("model: FF %q has mis-kinded pins", ff.Name)
		}
		if d.Pins[ff.Clock].FF != FFID(fi) || d.Pins[ff.Data].FF != FFID(fi) || d.Pins[ff.Output].FF != FFID(fi) {
			return fmt.Errorf("model: FF %q pin back-references are wrong", ff.Name)
		}
		if ff.Setup < 0 || ff.Hold < 0 {
			return fmt.Errorf("model: FF %q has negative constraint", ff.Name)
		}
		if d.ClockDepth[ff.Clock] < 0 {
			return fmt.Errorf("model: FF %q clock pin is not in the clock tree", ff.Name)
		}
		// Q must be driven (only) by the CK->Q arc.
		fanin := d.FanIn(ff.Output)
		if len(fanin) != 1 || d.Arcs[fanin[0]].From != ff.Clock {
			return fmt.Errorf("model: FF %q Q pin must be driven exactly by its CK->Q arc", ff.Name)
		}
		// D pins are test endpoints: no fan-out.
		if len(d.FanOut(ff.Data)) != 0 {
			return fmt.Errorf("model: FF %q D pin has fan-out", ff.Name)
		}
	}
	for i, p := range d.PIs {
		if d.Pins[p].Kind != PI {
			return fmt.Errorf("model: PI table entry %d is not a PI pin", i)
		}
		if len(d.FanIn(p)) != 0 {
			return fmt.Errorf("model: primary input %q has fan-in", d.PinName(p))
		}
		w := d.PIArrival[i]
		if w.Early > w.Late {
			return fmt.Errorf("model: primary input %q has invalid arrival window %v", d.PinName(p), w)
		}
	}
	for _, p := range d.POs {
		if len(d.FanOut(p)) != 0 {
			return fmt.Errorf("model: primary output %q has fan-out", d.PinName(p))
		}
	}
	// Parallel arcs are forbidden: paths are pin sequences, and two arcs
	// between the same pins would make a path's delay ambiguous.
	stamp := make([]PinID, len(d.Pins))
	for i := range stamp {
		stamp[i] = NoPin
	}
	for u := PinID(0); int(u) < len(d.Pins); u++ {
		for _, ai := range d.FanOut(u) {
			to := d.Arcs[ai].To
			if stamp[to] == u {
				return fmt.Errorf("model: parallel arcs between %q and %q", d.PinName(u), d.PinName(to))
			}
			stamp[to] = u
		}
	}
	// Data pins must not feed the clock tree.
	for i, a := range d.Arcs {
		fromClock := d.Pins[a.From].Kind.IsClock()
		toClock := d.Pins[a.To].Kind.IsClock()
		if a.Invert && !(fromClock && toClock) {
			return fmt.Errorf("model: arc %d (%s -> %s) inverts outside the clock tree",
				i, d.PinName(a.From), d.PinName(a.To))
		}
		if !fromClock && toClock {
			return fmt.Errorf("model: arc %d (%s -> %s) enters the clock tree from a data pin",
				i, d.PinName(a.From), d.PinName(a.To))
		}
		if fromClock && !toClock && d.Pins[a.From].Kind != FFClock {
			return fmt.Errorf("model: arc %d (%s -> %s) leaves the clock tree other than via an FF CK->Q launch",
				i, d.PinName(a.From), d.PinName(a.To))
		}
		if fromClock && !toClock && d.Pins[a.To].Kind != FFOutput {
			return fmt.Errorf("model: arc %d (%s -> %s): FF clock pins may only drive their Q pin",
				i, d.PinName(a.From), d.PinName(a.To))
		}
	}
	return nil
}
