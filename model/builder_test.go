package model

import (
	"strings"
	"testing"
)

// buildTriangle constructs the canonical small test design used across the
// model tests:
//
//	clk ──► b1 ──► ff1/CK, ff2/CK
//	    └─► b2 ──► ff3/CK
//
// data: ff1/Q ─► g1 ─► ff2/D
//
//	ff1/Q ─► g2 ─► ff3/D
//	in1  ─► g2            (PI joins at g2)
//	ff2/Q ─► g3 ─► ff2/D  (self-loop)
//	g3 ─► out1            (PO)
//
// The clock arcs carry skew (early != late) so CPPR credits are non-zero.
func buildTriangle(t testing.TB) *Design {
	t.Helper()
	b := NewBuilder("triangle", Ns(10))
	clk := b.AddClockRoot("clk")
	b1 := b.AddClockBuf("b1")
	b2 := b.AddClockBuf("b2")
	b.AddArc(clk, b1, Window{Early: 80, Late: 100})
	b.AddArc(clk, b2, Window{Early: 90, Late: 140})
	ff1 := b.AddFF("ff1", 20, 10, Window{Early: 30, Late: 40})
	ff2 := b.AddFF("ff2", 20, 10, Window{Early: 30, Late: 40})
	ff3 := b.AddFF("ff3", 25, 15, Window{Early: 35, Late: 45})
	b.AddArc(b1, ff1.Clock, Window{Early: 50, Late: 70})
	b.AddArc(b1, ff2.Clock, Window{Early: 55, Late: 65})
	b.AddArc(b2, ff3.Clock, Window{Early: 60, Late: 95})
	g1 := b.AddComb("g1")
	g2 := b.AddComb("g2")
	g3 := b.AddComb("g3")
	in1 := b.AddPI("in1", Window{Early: 5, Late: 12})
	out1 := b.AddPO("out1")
	b.AddArc(ff1.Q, g1, Window{Early: 100, Late: 200})
	b.AddArc(g1, ff2.D, Window{Early: 50, Late: 90})
	b.AddArc(ff1.Q, g2, Window{Early: 120, Late: 260})
	b.AddArc(in1, g2, Window{Early: 10, Late: 20})
	b.AddArc(g2, ff3.D, Window{Early: 70, Late: 110})
	b.AddArc(ff2.Q, g3, Window{Early: 40, Late: 55})
	b.AddArc(g3, ff2.D, Window{Early: 30, Late: 45})
	b.AddArc(g3, out1, Window{Early: 15, Late: 25})
	d, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func TestBuildTriangle(t *testing.T) {
	d := buildTriangle(t)
	if d.NumFFs() != 3 {
		t.Fatalf("NumFFs = %d, want 3", d.NumFFs())
	}
	if d.Depth != 3 {
		t.Errorf("Depth = %d, want 3 (root=0, bufs=1, CKs=2)", d.Depth)
	}
	if got := len(d.PIs); got != 1 {
		t.Errorf("len(PIs) = %d, want 1", got)
	}
	if got := len(d.POs); got != 1 {
		t.Errorf("len(POs) = %d, want 1", got)
	}
	// 3 clock arcs + 2 buf->CK... recount: clk->b1, clk->b2, b1->ff1CK,
	// b1->ff2CK, b2->ff3CK = 5 clock arcs; 3 CK->Q; 8 data arcs.
	if d.NumArcs() != 16 {
		t.Errorf("NumArcs = %d, want 16", d.NumArcs())
	}
}

func TestPinLookup(t *testing.T) {
	d := buildTriangle(t)
	id, ok := d.PinByName("ff2/D")
	if !ok {
		t.Fatal("ff2/D not found")
	}
	if d.Pins[id].Kind != FFData {
		t.Errorf("kind = %v, want ffdata", d.Pins[id].Kind)
	}
	if d.PinName(id) != "ff2/D" {
		t.Errorf("PinName = %q", d.PinName(id))
	}
	if d.PinName(NoPin) != "<none>" {
		t.Errorf("PinName(NoPin) = %q", d.PinName(NoPin))
	}
	if _, ok := d.PinByName("nope"); ok {
		t.Error("found nonexistent pin")
	}
}

func TestTopoOrderValid(t *testing.T) {
	d := buildTriangle(t)
	pos := make(map[PinID]int)
	for i, u := range d.Topo {
		pos[u] = i
	}
	if len(pos) != d.NumPins() {
		t.Fatalf("topo has %d unique pins, want %d", len(pos), d.NumPins())
	}
	for i, a := range d.Arcs {
		if pos[a.From] >= pos[a.To] {
			t.Errorf("arc %d (%s -> %s) violates topo order", i, d.PinName(a.From), d.PinName(a.To))
		}
	}
}

func TestCSRAdjacency(t *testing.T) {
	d := buildTriangle(t)
	countOut := 0
	for u := PinID(0); int(u) < d.NumPins(); u++ {
		for _, ai := range d.FanOut(u) {
			if d.Arcs[ai].From != u {
				t.Fatalf("FanOut(%s) contains arc from %s", d.PinName(u), d.PinName(d.Arcs[ai].From))
			}
			countOut++
		}
		for _, ai := range d.FanIn(u) {
			if d.Arcs[ai].To != u {
				t.Fatalf("FanIn(%s) contains arc to %s", d.PinName(u), d.PinName(d.Arcs[ai].To))
			}
		}
	}
	if countOut != d.NumArcs() {
		t.Errorf("fan-out covers %d arcs, want %d", countOut, d.NumArcs())
	}
}

func TestClockTreeDerivation(t *testing.T) {
	d := buildTriangle(t)
	ck1, _ := d.PinByName("ff1/CK")
	ck3, _ := d.PinByName("ff3/CK")
	b1, _ := d.PinByName("b1")
	b2, _ := d.PinByName("b2")
	if d.ClockParent[ck1] != b1 {
		t.Errorf("parent(ff1/CK) = %s, want b1", d.PinName(d.ClockParent[ck1]))
	}
	if d.ClockParent[ck3] != b2 {
		t.Errorf("parent(ff3/CK) = %s, want b2", d.PinName(d.ClockParent[ck3]))
	}
	if d.ClockDepth[d.Root] != 0 || d.ClockDepth[b1] != 1 || d.ClockDepth[ck1] != 2 {
		t.Errorf("depths: root=%d b1=%d ck1=%d", d.ClockDepth[d.Root], d.ClockDepth[b1], d.ClockDepth[ck1])
	}
	g1, _ := d.PinByName("g1")
	if d.ClockDepth[g1] != -1 {
		t.Errorf("data pin has clock depth %d", d.ClockDepth[g1])
	}
	if d.IsClockPin(g1) || !d.IsClockPin(b2) {
		t.Error("IsClockPin misclassifies")
	}
}

func TestClockArrivalAndCredit(t *testing.T) {
	d := buildTriangle(t)
	ck1, _ := d.PinByName("ff1/CK")
	ck3, _ := d.PinByName("ff3/CK")
	b1, _ := d.PinByName("b1")
	if got := d.ClockArrival(ck1); got != (Window{Early: 130, Late: 170}) {
		t.Errorf("ClockArrival(ff1/CK) = %v", got)
	}
	if got := d.ClockArrival(ck3); got != (Window{Early: 150, Late: 235}) {
		t.Errorf("ClockArrival(ff3/CK) = %v", got)
	}
	if got := d.Credit(b1); got != 20 {
		t.Errorf("Credit(b1) = %v, want 20", got)
	}
	if got := d.Credit(d.Root); got != 0 {
		t.Errorf("Credit(root) = %v, want 0", got)
	}
	if got := d.Credit(ck1); got != 40 {
		t.Errorf("Credit(ff1/CK) = %v, want 40", got)
	}
}

func TestNaiveLCA(t *testing.T) {
	d := buildTriangle(t)
	ck1, _ := d.PinByName("ff1/CK")
	ck2, _ := d.PinByName("ff2/CK")
	ck3, _ := d.PinByName("ff3/CK")
	b1, _ := d.PinByName("b1")
	if got := d.NaiveLCA(ck1, ck2); got != b1 {
		t.Errorf("LCA(ff1,ff2) = %s, want b1", d.PinName(got))
	}
	if got := d.NaiveLCA(ck1, ck3); got != d.Root {
		t.Errorf("LCA(ff1,ff3) = %s, want clk", d.PinName(got))
	}
	if got := d.NaiveLCA(ck2, ck2); got != ck2 {
		t.Errorf("LCA(ff2,ff2) = %s, want ff2/CK", d.PinName(got))
	}
	if got := d.NaiveLCA(b1, ck1); got != b1 {
		t.Errorf("LCA(b1,ff1) = %s, want b1", d.PinName(got))
	}
}

func TestStats(t *testing.T) {
	d := buildTriangle(t)
	s := d.StatsWithConnectivity()
	if s.NumFFs != 3 || s.NumEdges != 16 || s.Depth != 3 {
		t.Errorf("stats = %+v", s)
	}
	// ff1 reaches {ff2/D, ff3/D} = 2, ff2 reaches {ff2/D} = 1, ff3 none.
	want := (2.0 + 1.0 + 0.0) / 3.0
	if s.Connectivity != want {
		t.Errorf("connectivity = %v, want %v", s.Connectivity, want)
	}
	if s.FFsPerD != 1.0 {
		t.Errorf("FFsPerD = %v, want 1", s.FFsPerD)
	}
}

// --- Builder validation failures ---

func buildBad(mutate func(b *Builder)) error {
	b := NewBuilder("bad", Ns(1))
	clk := b.AddClockRoot("clk")
	ff := b.AddFF("ff", 10, 5, Window{Early: 10, Late: 20})
	b.AddArc(clk, ff.Clock, Window{Early: 5, Late: 9})
	g := b.AddComb("g")
	b.AddArc(ff.Q, g, Window{Early: 1, Late: 2})
	b.AddArc(g, ff.D, Window{Early: 1, Late: 2})
	mutate(b)
	_, err := b.Build()
	return err
}

func TestBuilderRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(b *Builder)
		errPart string
	}{
		{"valid baseline", func(b *Builder) {}, ""},
		{"duplicate pin", func(b *Builder) { b.AddComb("g") }, "duplicate pin"},
		{"second clock root is valid (multi-domain)", func(b *Builder) { b.AddClockRoot("clk2") }, ""},
		{"cycle", func(b *Builder) {
			h, _ := b.byName["g"]
			k := b.AddComb("k")
			b.AddArc(h, k, Window{Early: 1, Late: 1})
			b.AddArc(k, h, Window{Early: 1, Late: 1})
		}, "cycle"},
		{"negative delay", func(b *Builder) {
			k := b.AddComb("k")
			g := b.byName["g"]
			b.AddArc(g, k, Window{Early: -1, Late: 1})
		}, "invalid delay window"},
		{"early > late", func(b *Builder) {
			k := b.AddComb("k")
			g := b.byName["g"]
			b.AddArc(g, k, Window{Early: 5, Late: 2})
		}, "invalid delay window"},
		{"self-loop arc", func(b *Builder) {
			g := b.byName["g"]
			b.AddArc(g, g, Window{Early: 1, Late: 1})
		}, "self-loop"},
		{"data drives clock", func(b *Builder) {
			g := b.byName["g"]
			cb := b.AddClockBuf("cb")
			b.AddArc(b.byName["clk"], cb, Window{Early: 1, Late: 1})
			b.AddArc(g, cb, Window{Early: 1, Late: 1})
		}, "enters the clock tree"},
		{"disconnected clock buf", func(b *Builder) { b.AddClockBuf("island") }, "not connected"},
		{"two clock parents", func(b *Builder) {
			cb := b.AddClockBuf("cb")
			b.AddArc(b.byName["clk"], cb, Window{Early: 1, Late: 1})
			b.AddArc(b.byName["clk"], cb, Window{Early: 1, Late: 1})
		}, "two clock-tree parents"},
		{"D pin fan-out", func(b *Builder) {
			k := b.AddComb("k")
			b.AddArc(b.byName["ff/D"], k, Window{Early: 1, Late: 1})
		}, "D pin has fan-out"},
		{"PI with fan-in", func(b *Builder) {
			p := b.AddPI("in", Window{})
			b.AddArc(b.byName["g"], p, Window{Early: 1, Late: 1})
		}, "has fan-in"},
		{"arc to nowhere", func(b *Builder) {
			b.AddArc(b.byName["g"], NoPin, Window{})
		}, "invalid pin"},
		{"parallel arcs", func(b *Builder) {
			k := b.AddComb("k")
			g := b.byName["g"]
			b.AddArc(g, k, Window{Early: 1, Late: 2})
			b.AddArc(g, k, Window{Early: 3, Late: 4})
		}, "parallel arcs"},
		{"CK drives comb", func(b *Builder) {
			k := b.AddComb("k")
			b.AddArc(b.byName["ff/CK"], k, Window{Early: 1, Late: 1})
		}, "may only drive their Q pin"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := buildBad(c.mutate)
			if c.errPart == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.errPart)
			}
			if !strings.Contains(err.Error(), c.errPart) {
				t.Fatalf("error %q does not contain %q", err, c.errPart)
			}
		})
	}
}

func TestEmptyDesignRejected(t *testing.T) {
	if _, err := NewBuilder("empty", Ns(1)).Build(); err == nil {
		t.Fatal("empty design accepted")
	}
	b := NewBuilder("noroot", Ns(1))
	b.AddComb("g")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "no clock root") {
		t.Fatalf("err = %v", err)
	}
	b2 := NewBuilder("badperiod", 0)
	b2.AddClockRoot("clk")
	if _, err := b2.Build(); err == nil || !strings.Contains(err.Error(), "period") {
		t.Fatalf("err = %v", err)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid design")
		}
	}()
	NewBuilder("empty", Ns(1)).MustBuild()
}
