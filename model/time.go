// Package model defines the circuit timing-graph data model shared by all
// timers in this repository: pins, timing arcs with early/late delay bounds,
// flip-flops, the clock tree, and timing paths.
//
// A design is a directed acyclic graph whose nodes are pins and whose edges
// are timing arcs. The clock tree is the subgraph of clock-kind pins rooted
// at the clock source; its leaves are flip-flop clock pins. Data paths start
// at a flip-flop Q pin (launched by the clock) or at a primary input, and
// end at a flip-flop D pin where a setup or hold test is performed.
//
// All times are fixed-point picoseconds (type Time) so that slack
// comparisons are exact and every algorithm in this repository is
// bit-for-bit deterministic regardless of evaluation order or thread count.
package model

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Time is a signed time value in integer picoseconds.
//
// Fixed-point arithmetic keeps slack ordering exact: two algorithms that
// compute the same slack by different arithmetic orders produce identical
// bits, which the cross-algorithm oracle tests rely on.
type Time int64

// Common scale factors for constructing Time values.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
)

// MaxTime and MinTime bound the representable range. They are kept well
// inside the int64 range so that a handful of additions cannot overflow.
const (
	MaxTime Time = math.MaxInt64 / 8
	MinTime Time = math.MinInt64 / 8
)

// Ps returns a Time of n picoseconds.
func Ps(n int64) Time { return Time(n) }

// Ns returns a Time of n nanoseconds.
func Ns(n int64) Time { return Time(n) * Nanosecond }

// Ps returns the value in picoseconds as an int64.
func (t Time) Ps() int64 { return int64(t) }

// Ns returns the value in (possibly fractional) nanoseconds.
func (t Time) Ns() float64 { return float64(t) / float64(Nanosecond) }

// String renders the time in nanoseconds with picosecond precision,
// e.g. "1.250ns" or "-0.003ns".
func (t Time) String() string {
	neg := t < 0
	v := int64(t)
	if neg {
		v = -v
	}
	s := fmt.Sprintf("%d.%03dns", v/1000, v%1000)
	if neg {
		s = "-" + s
	}
	return s
}

// ParseTime parses a time literal. Accepted forms are a plain integer
// (picoseconds), an integer or decimal with an "ns" suffix, or an integer
// with a "ps" suffix. Examples: "250", "250ps", "0.25ns", "3ns".
func ParseTime(s string) (Time, error) {
	orig := s
	s = strings.TrimSpace(s)
	switch {
	case strings.HasSuffix(s, "ns"):
		s = strings.TrimSuffix(s, "ns")
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("model: invalid time %q: %v", orig, err)
		}
		return Time(math.Round(f * float64(Nanosecond))), nil
	case strings.HasSuffix(s, "ps"):
		s = strings.TrimSuffix(s, "ps")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("model: invalid time %q: %v", orig, err)
	}
	return Time(n), nil
}

// MinOf returns the smaller of a and b.
func MinOf(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxOf returns the larger of a and b.
func MaxOf(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Window is an early/late pair of times, used for delay bounds and
// arrival-time bounds. Invariant for valid designs: Early <= Late.
type Window struct {
	Early Time
	Late  Time
}

// Add returns the component-wise sum of two windows.
func (w Window) Add(o Window) Window {
	return Window{Early: w.Early + o.Early, Late: w.Late + o.Late}
}

// Width returns Late - Early. For arrival windows on clock-tree nodes this
// is exactly the CPPR credit of the node.
func (w Window) Width() Time { return w.Late - w.Early }

// String renders the window as "[early, late]".
func (w Window) String() string {
	return fmt.Sprintf("[%v, %v]", w.Early, w.Late)
}
