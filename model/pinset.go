package model

import "math/bits"

// PinSet is a fixed-capacity bitset over PinIDs: the representation of
// dirty-pin sets and reachability cones in the incremental query path.
// The zero value is an empty set of capacity zero; NewPinSet sizes one
// for a design. A PinSet is not safe for concurrent mutation, but a
// fully built set is safe for concurrent reads — the incremental caches
// build cones once and then share them read-only across queries.
type PinSet struct {
	words []uint64
	n     int
}

// NewPinSet returns an empty set with capacity for pins [0, n).
func NewPinSet(n int) *PinSet {
	return &PinSet{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the pin-capacity the set was built with.
func (s *PinSet) Cap() int { return s.n }

// Add inserts pin p. p must be in [0, Cap).
func (s *PinSet) Add(p PinID) {
	s.words[uint32(p)>>6] |= 1 << (uint32(p) & 63)
}

// Contains reports whether pin p is in the set. Out-of-range pins
// (including NoPin) report false, so callers can probe arbitrary tags.
func (s *PinSet) Contains(p PinID) bool {
	if p < 0 || int(p) >= s.n {
		return false
	}
	return s.words[uint32(p)>>6]&(1<<(uint32(p)&63)) != 0
}

// Or adds every pin of o to s. The two sets must have the same capacity.
func (s *PinSet) Or(o *PinSet) {
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Len returns the number of pins in the set.
func (s *PinSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Reset empties the set, keeping its capacity.
func (s *PinSet) Reset() {
	clear(s.words)
}
