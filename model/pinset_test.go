package model

import "testing"

func TestPinSetBasics(t *testing.T) {
	s := NewPinSet(130)
	if s.Cap() != 130 || s.Len() != 0 {
		t.Fatalf("fresh set: cap %d len %d", s.Cap(), s.Len())
	}
	for _, p := range []PinID{0, 63, 64, 129} {
		s.Add(p)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	for _, p := range []PinID{0, 63, 64, 129} {
		if !s.Contains(p) {
			t.Errorf("Contains(%d) = false", p)
		}
	}
	for _, p := range []PinID{1, 62, 65, 128} {
		if s.Contains(p) {
			t.Errorf("Contains(%d) = true", p)
		}
	}
	// Out-of-range probes (including NoPin tags) must be safe and false.
	if s.Contains(NoPin) || s.Contains(130) || s.Contains(1<<20) {
		t.Error("out-of-range Contains = true")
	}

	o := NewPinSet(130)
	o.Add(5)
	o.Add(63)
	s.Or(o)
	if s.Len() != 5 || !s.Contains(5) {
		t.Errorf("after Or: len %d, Contains(5)=%v", s.Len(), s.Contains(5))
	}
	s.Reset()
	if s.Len() != 0 || s.Contains(0) {
		t.Error("Reset did not empty the set")
	}
}

func TestEditJournalDirtySince(t *testing.T) {
	cone := NewPinSet(10)
	cone.Add(3)
	other := NewPinSet(10)
	other.Add(7)

	var j *EditJournal // empty journal
	if j.Seq() != 0 {
		t.Fatalf("nil journal Seq = %d", j.Seq())
	}
	if j.DirtySince(0, BaseCorner, cone) {
		t.Fatal("empty journal reports dirty")
	}

	j1 := j.Append(BaseCorner, 3, 4)  // seq 1, inside cone
	j2 := j1.Append(BaseCorner, 8, 9) // seq 2, outside both cones
	j3 := j2.Append(Corner(2), 7, 1)  // seq 3, corner-2 edit inside other

	if j3.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", j3.Seq())
	}
	// Entry validated at seq 0 sees the seq-1 edit inside its cone.
	if !j3.DirtySince(0, BaseCorner, cone) {
		t.Error("seq-1 in-cone edit not reported")
	}
	// Entry validated at seq 1 is clean: later base edits miss the cone.
	if j3.DirtySince(1, BaseCorner, cone) {
		t.Error("clean entry reported dirty")
	}
	// Corner scoping: the corner-2 edit touches other's cone, but only
	// for corner-2 entries.
	if j3.DirtySince(0, BaseCorner, other) {
		t.Error("corner-2 edit dirtied a base-corner entry")
	}
	if !j3.DirtySince(2, Corner(2), other) {
		t.Error("corner-2 in-cone edit not reported for its corner")
	}
	// Sink-only overlap does not invalidate: seq-1 edited 3 -> 4; a cone
	// containing only the sink 4 cannot observe the arc's delay.
	sinkOnly := NewPinSet(10)
	sinkOnly.Add(4)
	if j3.DirtySince(0, BaseCorner, sinkOnly) {
		t.Error("sink-only cone overlap reported dirty")
	}
}

func TestEditJournalCollapse(t *testing.T) {
	cone := NewPinSet(4) // never contains pin 1
	var j *EditJournal
	for i := 0; i < journalMaxDepth+10; i++ {
		j = j.Append(BaseCorner, 1, 2)
	}
	// Entries newer than the collapse point still validate exactly.
	if j.DirtySince(j.Seq()-5, BaseCorner, cone) {
		t.Error("recent clean entry reported dirty after collapse")
	}
	// Entries older than the sentinel must conservatively read dirty.
	if !j.DirtySince(0, BaseCorner, cone) {
		t.Error("pre-collapse entry not conservatively dirty")
	}
}
