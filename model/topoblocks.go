package model

// TopoBlocks returns the barrier-block partition of d.Topo: a strictly
// increasing sequence of exclusive end indices whose last entry is
// len(Topo). Block b spans topological indices [ends[b-1], ends[b])
// (block 0 starts at 0), and no timing arc connects two pins of the same
// block — every arc leaving a block member lands in a strictly later
// block. Relaxing a block's pins in any order (or concurrently) therefore
// produces the same arrival state as relaxing them in topological order.
//
// Designs built by Builder carry the partition precomputed; the method
// recomputes it (without caching, so it stays safe on shared Designs)
// only for hand-assembled values that bypassed finalize.
func (d *Design) TopoBlocks() []int32 {
	if d.TopoBlockEnds != nil {
		return d.TopoBlockEnds
	}
	return topoBlockEnds(d)
}

// topoBlockEnds computes the greedy barrier-block partition in one pass
// over the topological order: a block is extended until reaching the
// smallest topological index any earlier member's fanout points at, at
// which point the block must close (the arc would otherwise be
// intra-block). Greedy maximal extension keeps the block count — and so
// the number of parallel barriers — as small as a left-to-right scan
// allows.
func topoBlockEnds(d *Design) []int32 {
	n := len(d.Topo)
	if n == 0 {
		return nil
	}
	ends := make([]int32, 0, 64)
	bound := int32(n)
	for i := 0; i < n; i++ {
		if int32(i) >= bound {
			ends = append(ends, int32(i))
			bound = int32(n)
		}
		for _, ai := range d.FanOut(d.Topo[i]) {
			if t := d.TopoIndex[d.Arcs[ai].To]; t < bound {
				bound = t
			}
		}
	}
	return append(ends, int32(n))
}
