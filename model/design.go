package model

import "fmt"

// PinID identifies a pin within a Design. IDs are dense indices into the
// design's pin table, assigned in creation order by the Builder.
type PinID int32

// FFID identifies a flip-flop within a Design.
type FFID int32

// NoPin and NoFF are sentinel values for "absent".
const (
	NoPin PinID = -1
	NoFF  FFID  = -1
)

// PinKind classifies a pin's role in the timing graph.
type PinKind uint8

// Pin kinds. Clock-kind pins (ClockRoot, ClockBuf, FFClock) form the clock
// tree; all other pins belong to the data portion of the graph.
const (
	// Comb is an internal combinational pin (gate input/output, net tap).
	Comb PinKind = iota
	// PI is a primary input. Paths launched at a PI carry no CPPR credit.
	PI
	// PO is a primary output. Optional timed endpoint (extension; the
	// paper's evaluation only tests FF D pins).
	PO
	// ClockRoot is a clock source (one per clock domain).
	ClockRoot
	// ClockBuf is an internal clock-tree node (buffer/net vertex).
	ClockBuf
	// FFClock is a flip-flop clock (CK) pin: a leaf of the clock tree.
	FFClock
	// FFData is a flip-flop data (D) pin: a setup/hold test endpoint.
	FFData
	// FFOutput is a flip-flop output (Q) pin: a data-path start point.
	FFOutput
)

// String returns the lower-case kind name used in the file format.
func (k PinKind) String() string {
	switch k {
	case Comb:
		return "comb"
	case PI:
		return "pi"
	case PO:
		return "po"
	case ClockRoot:
		return "clockroot"
	case ClockBuf:
		return "clockbuf"
	case FFClock:
		return "ffclock"
	case FFData:
		return "ffdata"
	case FFOutput:
		return "ffoutput"
	default:
		return fmt.Sprintf("PinKind(%d)", uint8(k))
	}
}

// IsClock reports whether pins of this kind belong to the clock tree.
func (k PinKind) IsClock() bool {
	return k == ClockRoot || k == ClockBuf || k == FFClock
}

// Pin is a node of the timing graph.
type Pin struct {
	// Name is the hierarchical pin name. Unique within a design.
	Name string
	// Kind classifies the pin.
	Kind PinKind
	// FF is the owning flip-flop for FFClock/FFData/FFOutput pins,
	// NoFF otherwise.
	FF FFID
}

// Arc is a directed timing arc with early/late delay bounds.
type Arc struct {
	From, To PinID
	// Delay holds the early (minimum) and late (maximum) arc delay.
	// Valid designs have 0 <= Early <= Late.
	Delay Window
	// Invert marks a polarity-inverting clock-tree arc (an inverting
	// buffer): the edge sense flips between From and To. Only arcs with
	// both endpoints inside the clock tree may invert; transition-aware
	// CRPR (CRPRSameTransition) consumes the parity this induces.
	Invert bool
}

// FF is a D flip-flop: the unit at which setup and hold tests are checked.
// The clock-to-Q launch arc (Clock -> Output) is an ordinary Arc in the
// design, created by the Builder.
type FF struct {
	// Name is the instance name. Unique within a design.
	Name string
	// Clock, Data and Output are the CK, D and Q pins.
	Clock, Data, Output PinID
	// Setup and Hold are the constraint values T_setup and T_hold
	// tested at the Data pin.
	Setup, Hold Time
}

// Design is an immutable, validated timing graph. Construct one with a
// Builder (or the tau parser); the zero value is not usable.
//
// A Design carries precomputed derived structure: CSR fan-in/fan-out
// adjacency, a topological order of all pins, the clock-tree parent/depth
// arrays, and name lookup.
type Design struct {
	// Name labels the design in reports.
	Name string
	// Period is the clock period T_clk used by setup tests.
	Period Time

	// Pins, Arcs and FFs are the flat element tables, indexed by
	// PinID, arc index and FFID respectively.
	Pins []Pin
	Arcs []Arc
	FFs  []FF

	// Root is the primary clock source pin (Roots[0]); kept as a
	// convenience for the common single-domain case.
	Root PinID
	// Roots lists all clock source pins, one per clock domain. Paths
	// whose launching and capturing FFs sit in different domains share
	// no clock path and carry no CPPR credit.
	Roots []PinID

	// PIs lists the primary input pins; PIArrival gives each PI's
	// early/late external arrival window (indexed like PIs).
	PIs       []PinID
	PIArrival []Window

	// POs lists primary output pins (extension; may be empty).
	// PORequired gives each PO's required-time window (indexed like
	// POs) and POConstrained marks which POs carry an output timing
	// check. FF->PO and PI->PO paths have no capture clock path, so
	// they never carry CPPR credit.
	POs           []PinID
	PORequired    []Window
	POConstrained []bool

	// Derived adjacency in CSR form. fanout of pin u: arc indices
	// OutArcs[OutStart[u]:OutStart[u+1]]; fan-in symmetric.
	OutStart []int32
	OutArcs  []int32
	InStart  []int32
	InArcs   []int32

	// Topo is a topological order over all pins (clock tree included).
	// TopoIndex is its inverse: TopoIndex[u] is u's position in Topo.
	// Worklist-driven kernels (sta.Prop.RunSparse, sta.Incr) order their
	// frontiers by it.
	Topo      []PinID
	TopoIndex []int32
	// TopoBlockEnds partitions Topo into barrier blocks: block b spans
	// topological indices [TopoBlockEnds[b-1], TopoBlockEnds[b]) (block 0
	// starts at 0) and no arc connects two pins of the same block, so a
	// block's pins may be relaxed concurrently and the concatenation of
	// blocks in order is exactly Topo. Computed greedily at build time;
	// parallel kernels (sta.Prop.RunSparseParallel) use the blocks as
	// their synchronization barriers.
	TopoBlockEnds []int32

	// BaseCornerName optionally names corner 0 in reports ("" reads as
	// "base"). ExtraCorners holds the delay tables of corners
	// 1..NumCorners-1; see corner.go. Both are empty for the common
	// single-corner case.
	BaseCornerName string
	ExtraCorners   []CornerDelays

	// ClockParent[u] is the clock-tree parent arc's source for clock
	// pins, NoPin for the root and for non-clock pins. ClockParentArc
	// is the corresponding arc index (-1 where absent).
	ClockParent    []PinID
	ClockParentArc []int32
	// ClockDepth[u] is the clock-tree depth (root = 0); -1 for
	// non-clock pins.
	ClockDepth []int32
	// ClockParity[u] is the number of inverting clock arcs on the
	// root-to-u clock path, mod 2 (roots are 0); meaningless for
	// non-clock pins. Two clock pins of the same domain see the same
	// edge sense at a common ancestor iff their parities are equal.
	ClockParity []uint8
	// Depth is 1 + the maximum clock-tree depth over FF clock pins:
	// the "D" of the paper (number of clock tree levels).
	Depth int

	// Uncertainty is the per-mode clock uncertainty (setup, hold):
	// a margin subtracted from every FF-capture slack of that mode
	// (set_clock_uncertainty). Always >= 0.
	Uncertainty [2]Time

	byName map[string]PinID
}

// CloneWithArcs returns a shallow copy of d whose Arcs table is freshly
// allocated, so arc delays can be edited without mutating d. Arc delays
// are the only mutable timing inputs; every other field (pins, FFs, CSR
// adjacency, topological order, clock-tree arrays, name index) is
// delay-independent and shared with d. Callers that edit clock-arc
// delays must rebuild delay-derived caches (lca.Tree etc.) themselves.
func (d *Design) CloneWithArcs() *Design {
	nd := *d
	nd.Arcs = make([]Arc, len(d.Arcs))
	copy(nd.Arcs, d.Arcs)
	return &nd
}

// NumPins returns the number of pins.
func (d *Design) NumPins() int { return len(d.Pins) }

// NumArcs returns the number of timing arcs.
func (d *Design) NumArcs() int { return len(d.Arcs) }

// NumFFs returns the number of flip-flops.
func (d *Design) NumFFs() int { return len(d.FFs) }

// PinByName looks up a pin by name.
func (d *Design) PinByName(name string) (PinID, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// PinName returns the pin's name, or a placeholder for sentinel IDs.
func (d *Design) PinName(id PinID) string {
	if id == NoPin {
		return "<none>"
	}
	return d.Pins[id].Name
}

// FanOut returns the arc indices leaving pin u.
func (d *Design) FanOut(u PinID) []int32 {
	return d.OutArcs[d.OutStart[u]:d.OutStart[u+1]]
}

// FanIn returns the arc indices entering pin u.
func (d *Design) FanIn(u PinID) []int32 {
	return d.InArcs[d.InStart[u]:d.InStart[u+1]]
}

// IsClockPin reports whether u belongs to the clock tree.
func (d *Design) IsClockPin(u PinID) bool { return d.Pins[u].Kind.IsClock() }

// ArcBetween returns the index of an arc from -> to, or -1 when absent.
// Intended for tests and path validation, not hot loops.
func (d *Design) ArcBetween(from, to PinID) int32 {
	for _, ai := range d.FanOut(from) {
		if d.Arcs[ai].To == to {
			return ai
		}
	}
	return -1
}

// FFConnectivity computes the average number of distinct capturing FFs
// reachable from each launching FF's Q pin through the data graph: the
// "FF connectivity" statistic of the paper's Table III. It is O(#FFs * n)
// in the worst case and intended for reporting, not hot paths.
func (d *Design) FFConnectivity() float64 {
	if len(d.FFs) == 0 {
		return 0
	}
	// Reverse-topological accumulation of reachable capture-FF sets
	// would need O(n * #FF) bits; instead do a forward BFS per FF over
	// the data subgraph, which matches the reporting-only use.
	mark := make([]int32, len(d.Pins))
	for i := range mark {
		mark[i] = -1
	}
	var queue []PinID
	total := 0
	for fi := range d.FFs {
		q := d.FFs[fi].Output
		queue = queue[:0]
		queue = append(queue, q)
		mark[q] = int32(fi)
		seen := 0
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if d.Pins[u].Kind == FFData {
				seen++
				continue // D pins are endpoints
			}
			for _, ai := range d.FanOut(u) {
				v := d.Arcs[ai].To
				if mark[v] != int32(fi) {
					mark[v] = int32(fi)
					queue = append(queue, v)
				}
			}
		}
		total += seen
	}
	return float64(total) / float64(len(d.FFs))
}

// Stats summarises the design in the shape of the paper's Table III.
type Stats struct {
	Name     string
	NumPins  int
	NumEdges int
	NumFFs   int
	Depth    int // D: clock tree levels
	FFsPerD  float64
	// Connectivity is the average number of capturing FFs reachable
	// from a launching FF. Expensive to compute; filled only by
	// StatsWithConnectivity.
	Connectivity float64
}

// Stats returns basic statistics (without FF connectivity).
func (d *Design) Stats() Stats {
	s := Stats{
		Name:     d.Name,
		NumPins:  len(d.Pins),
		NumEdges: len(d.Arcs),
		NumFFs:   len(d.FFs),
		Depth:    d.Depth,
	}
	if d.Depth > 0 {
		s.FFsPerD = float64(len(d.FFs)) / float64(d.Depth)
	}
	return s
}

// StatsWithConnectivity returns Stats including the FF connectivity
// column, which requires an O(#FFs * n) reachability sweep.
func (d *Design) StatsWithConnectivity() Stats {
	s := d.Stats()
	s.Connectivity = d.FFConnectivity()
	return s
}
