package model

import (
	"math"
	"testing"
)

// cornerTestDesign builds a small two-FF design for corner tests.
func cornerTestDesign(t *testing.T) *Design {
	t.Helper()
	b := NewBuilder("corners", Ns(10))
	root := b.AddClockRoot("clk")
	buf := b.AddClockBuf("buf")
	b.AddArc(root, buf, Window{Early: 100, Late: 120})
	f1 := b.AddFF("f1", 20, 10, Window{Early: 50, Late: 60})
	f2 := b.AddFF("f2", 20, 10, Window{Early: 50, Late: 60})
	b.AddArc(buf, f1.Clock, Window{Early: 30, Late: 40})
	b.AddArc(buf, f2.Clock, Window{Early: 35, Late: 45})
	u := b.AddComb("u")
	b.AddArc(f1.Q, u, Window{Early: 200, Late: 300})
	b.AddArc(u, f2.D, Window{Early: 100, Late: 150})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWithScaledCornerAndView(t *testing.T) {
	d := cornerTestDesign(t)
	if got := d.NumCorners(); got != 1 {
		t.Fatalf("base design has %d corners, want 1", got)
	}
	if got := d.CornerName(BaseCorner); got != "base" {
		t.Fatalf("base corner name = %q", got)
	}
	nd, c, err := d.WithScaledCorner("slow", 1.0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 || nd.NumCorners() != 2 {
		t.Fatalf("corner id %d / %d corners, want 1 / 2", c, nd.NumCorners())
	}
	if got, ok := nd.CornerByName("slow"); !ok || got != c {
		t.Fatalf("CornerByName(slow) = %d, %v", got, ok)
	}
	if len(d.ExtraCorners) != 0 {
		t.Fatal("WithScaledCorner mutated the receiver")
	}

	// The base view is the design itself; the corner view rescales
	// every arc delay and shares structure.
	if nd.View(BaseCorner) != nd {
		t.Fatal("View(BaseCorner) is not the fast path")
	}
	v := nd.View(c)
	if v.NumCorners() != 1 || v.CornerName(BaseCorner) != "slow" {
		t.Fatalf("view corners = %d name %q", v.NumCorners(), v.CornerName(BaseCorner))
	}
	for ai := range nd.Arcs {
		base := nd.Arcs[ai].Delay
		want := Window{Early: base.Early, Late: Time(math.Round(float64(base.Late) * 1.5))}
		if v.Arcs[ai].Delay != want {
			t.Fatalf("arc %d view delay %v, want %v", ai, v.Arcs[ai].Delay, want)
		}
		if nd.ArcDelay(c, int32(ai)) != want {
			t.Fatalf("ArcDelay(%d, %d) = %v, want %v", c, ai, nd.ArcDelay(c, int32(ai)), want)
		}
	}
	if &v.Pins[0] != &nd.Pins[0] || &v.Topo[0] != &nd.Topo[0] {
		t.Fatal("view does not share delay-independent structure")
	}
}

func TestWithCornerValidation(t *testing.T) {
	d := cornerTestDesign(t)
	if _, _, err := d.WithCorner("", make([]Window, len(d.Arcs))); err == nil {
		t.Fatal("empty corner name accepted")
	}
	if _, _, err := d.WithCorner("short", make([]Window, 1)); err == nil {
		t.Fatal("wrong-length delay table accepted")
	}
	bad := make([]Window, len(d.Arcs))
	bad[0] = Window{Early: 10, Late: 5}
	if _, _, err := d.WithCorner("inv", bad); err == nil {
		t.Fatal("inverted window accepted")
	}
	nd, _, err := d.WithScaledCorner("fast", 0.8, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nd.WithCorner("fast", make([]Window, len(d.Arcs))); err == nil {
		t.Fatal("duplicate corner name accepted")
	}
	if _, _, err := d.WithScaledCorner("x", 1.2, 1.0); err == nil {
		t.Fatal("inverted scales accepted")
	}
}

func TestWithCornersFromRemapsArcOrder(t *testing.T) {
	d := cornerTestDesign(t)
	d, c, err := d.WithScaledCorner("slow", 1.1, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the design with a permuted arc table (CK->Q arcs first,
	// as sdc.Apply does), then carry the corners over.
	b := NewBuilder(d.Name, d.Period)
	for _, p := range d.Pins {
		switch p.Kind {
		case ClockRoot:
			b.AddClockRoot(p.Name)
		case ClockBuf:
			b.AddClockBuf(p.Name)
		case Comb:
			b.AddComb(p.Name)
		}
	}
	for _, ff := range d.FFs {
		ckq := d.Arcs[d.FanIn(ff.Output)[0]].Delay
		b.AddFF(ff.Name, ff.Setup, ff.Hold, ckq)
	}
	for _, a := range d.Arcs {
		if d.Pins[a.From].Kind == FFClock && d.Pins[a.To].Kind == FFOutput {
			continue
		}
		from, _ := b.Pin(d.PinName(a.From))
		to, _ := b.Pin(d.PinName(a.To))
		b.AddArc(from, to, a.Delay)
	}
	nd, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nd, err = WithCornersFrom(d, nd)
	if err != nil {
		t.Fatal(err)
	}
	if nd.NumCorners() != d.NumCorners() {
		t.Fatalf("carried %d corners, want %d", nd.NumCorners(), d.NumCorners())
	}
	// Per-arc delays at the corner must agree arc-by-arc despite the
	// different arc order.
	for ai := range nd.Arcs {
		from, _ := d.PinByName(nd.PinName(nd.Arcs[ai].From))
		to, _ := d.PinByName(nd.PinName(nd.Arcs[ai].To))
		want := d.ArcDelay(c, d.ArcBetween(from, to))
		if got := nd.ArcDelay(c, int32(ai)); got != want {
			t.Fatalf("arc %d corner delay %v, want %v", ai, got, want)
		}
	}
}
