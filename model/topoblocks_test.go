package model

import (
	"math/rand"
	"testing"
)

// checkBlocks asserts the TopoBlocks contract on d: strictly increasing
// ends covering exactly [0, len(Topo)), and no arc between two pins of
// the same block.
func checkBlocks(t *testing.T, d *Design) {
	t.Helper()
	ends := d.TopoBlocks()
	n := len(d.Topo)
	if len(ends) == 0 || int(ends[len(ends)-1]) != n {
		t.Fatalf("ends = %v, want last entry %d", ends, n)
	}
	prev := int32(0)
	block := make([]int32, n) // block[topo index] = block number
	for b, e := range ends {
		if e <= prev && !(b == 0 && e == 0) {
			t.Fatalf("ends not strictly increasing: %v", ends)
		}
		for i := prev; i < e; i++ {
			block[i] = int32(b)
		}
		prev = e
	}
	for i, a := range d.Arcs {
		bf, bt := block[d.TopoIndex[a.From]], block[d.TopoIndex[a.To]]
		if bf >= bt {
			t.Errorf("arc %d (%s -> %s): source block %d, target block %d — want source strictly earlier",
				i, d.PinName(a.From), d.PinName(a.To), bf, bt)
		}
	}
}

func TestTopoBlocksTriangle(t *testing.T) {
	d := buildTriangle(t)
	checkBlocks(t, d)
	if d.TopoBlockEnds == nil {
		t.Fatal("Build did not precompute TopoBlockEnds")
	}
	// The method must serve the cached partition.
	if got := &d.TopoBlocks()[0]; got != &d.TopoBlockEnds[0] {
		t.Error("TopoBlocks did not return the cached partition")
	}
}

// TestTopoBlocksChain: a pure chain forces singleton blocks — the worst
// case for parallelism but the partition must still be valid.
func TestTopoBlocksChain(t *testing.T) {
	b := NewBuilder("chain", Ns(10))
	clk := b.AddClockRoot("clk")
	ff := b.AddFF("ff", 1, 1, Window{Early: 1, Late: 1})
	b.AddArc(clk, ff.Clock, Window{Early: 1, Late: 2})
	prev := ff.Q
	for i := 0; i < 20; i++ {
		g := b.AddComb("g" + string(rune('a'+i)))
		b.AddArc(prev, g, Window{Early: 1, Late: 2})
		prev = g
	}
	b.AddArc(prev, ff.D, Window{Early: 1, Late: 2})
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	checkBlocks(t, d)
}

// TestTopoBlocksRandom: random layered DAGs keep the contract.
func TestTopoBlocksRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		b := NewBuilder("rand", Ns(100))
		clk := b.AddClockRoot("clk")
		ff := b.AddFF("ff", 1, 1, Window{Early: 1, Late: 1})
		b.AddArc(clk, ff.Clock, Window{Early: 1, Late: 2})
		layers := [][]PinID{{ff.Q}}
		id := 0
		for l := 0; l < 4; l++ {
			width := 1 + rng.Intn(6)
			var layer []PinID
			for w := 0; w < width; w++ {
				g := b.AddComb("g" + string(rune('A'+id%26)) + string(rune('a'+(id/26)%26)))
				id++
				// Wire from 1..3 distinct pins of random earlier layers
				// (the builder rejects parallel arcs).
				used := map[PinID]bool{}
				for e := 0; e < 1+rng.Intn(3); e++ {
					src := layers[rng.Intn(len(layers))]
					from := src[rng.Intn(len(src))]
					if used[from] {
						continue
					}
					used[from] = true
					b.AddArc(from, g, Window{Early: Time(1 + rng.Intn(5)), Late: Time(6 + rng.Intn(5))})
				}
				layer = append(layer, g)
			}
			layers = append(layers, layer)
		}
		last := layers[len(layers)-1]
		b.AddArc(last[rng.Intn(len(last))], ff.D, Window{Early: 1, Late: 2})
		d, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		checkBlocks(t, d)
	}
}
