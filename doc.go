// Package fastcppr is a Go reproduction of "A Provably Good and
// Practically Efficient Algorithm for Common Path Pessimism Removal in
// Large Designs" (Guo, Huang, Lin — DAC 2021).
//
// The repository root holds only documentation and the benchmark suite
// that regenerates the paper's tables and figures; the library lives in
// the sub-packages:
//
//   - cppr  — public timing-engine facade (start here)
//   - model — circuit/timing-graph data model
//   - gen   — synthetic benchmark designs (Table III stand-ins)
//   - tau   — design file format reader/writer
//
// plus internal packages implementing the paper's algorithm
// (internal/core), the state-of-the-art baselines it is compared against
// (internal/baseline), and their shared substrates (internal/sta,
// internal/lca, internal/mmheap).
//
// See README.md for a walkthrough, DESIGN.md for the system inventory
// and EXPERIMENTS.md for the paper-vs-measured results.
package fastcppr
