// Package liberty implements a compact standard-cell timing library in
// the spirit of Liberty/NLDM: cells with input/output/clock pins, pin
// capacitances, two-dimensional delay and output-slew lookup tables
// indexed by input slew and output load, sequential setup/hold
// constraints, and early/late derating.
//
// Together with package netlist it forms the front-end flow the paper's
// substrate timer (OpenTimer) runs before CPPR: gate-level netlist +
// library -> delay calculation -> timing graph. The TAU contest
// benchmarks the paper evaluates on are distributed in exactly this
// shape.
//
// The text format is line-oriented (see Parse) — a deliberately small
// subset of Liberty that keeps the same modelling power for this
// repository's purposes.
package liberty

import (
	"fmt"
	"math"
	"sort"
)

// PinDir classifies a cell pin.
type PinDir uint8

const (
	// Input is an ordinary data input.
	Input PinDir = iota
	// Output is a driving output.
	Output
	// ClockPin is a clock input (DFF CK or a clock buffer's input when
	// used in the clock cone).
	ClockPin
)

// String returns the keyword used in the library format.
func (d PinDir) String() string {
	switch d {
	case Input:
		return "input"
	case Output:
		return "output"
	case ClockPin:
		return "clock"
	default:
		return fmt.Sprintf("PinDir(%d)", uint8(d))
	}
}

// Pin is a cell pin with its input capacitance (fF; zero for outputs).
type Pin struct {
	Name string
	Dir  PinDir
	Cap  float64
}

// LUT is a two-dimensional lookup table indexed by input slew (ps) and
// output load (fF), with values in ps. Indices are strictly increasing.
type LUT struct {
	SlewIndex []float64
	LoadIndex []float64
	// Values is row-major: Values[i*len(LoadIndex)+j] for slew i, load j.
	Values []float64
}

// Lookup bilinearly interpolates the table at (slew, load), clamping to
// the index ranges (the standard NLDM edge behaviour).
func (t *LUT) Lookup(slew, load float64) float64 {
	i0, i1, fi := bracket(t.SlewIndex, slew)
	j0, j1, fj := bracket(t.LoadIndex, load)
	n := len(t.LoadIndex)
	v00 := t.Values[i0*n+j0]
	v01 := t.Values[i0*n+j1]
	v10 := t.Values[i1*n+j0]
	v11 := t.Values[i1*n+j1]
	return v00*(1-fi)*(1-fj) + v01*(1-fi)*fj + v10*fi*(1-fj) + v11*fi*fj
}

// bracket finds the interpolation interval and fraction for x in idx,
// clamped to the ends.
func bracket(idx []float64, x float64) (lo, hi int, frac float64) {
	n := len(idx)
	if n == 1 || x <= idx[0] {
		return 0, 0, 0
	}
	if x >= idx[n-1] {
		return n - 1, n - 1, 0
	}
	hi = sort.SearchFloat64s(idx, x)
	lo = hi - 1
	frac = (x - idx[lo]) / (idx[hi] - idx[lo])
	return lo, hi, frac
}

// validate checks monotone indices and table shape.
func (t *LUT) validate(what string) error {
	if len(t.SlewIndex) == 0 || len(t.LoadIndex) == 0 {
		return fmt.Errorf("liberty: %s table has empty index", what)
	}
	for i := 1; i < len(t.SlewIndex); i++ {
		if t.SlewIndex[i] <= t.SlewIndex[i-1] {
			return fmt.Errorf("liberty: %s slew index not increasing", what)
		}
	}
	for i := 1; i < len(t.LoadIndex); i++ {
		if t.LoadIndex[i] <= t.LoadIndex[i-1] {
			return fmt.Errorf("liberty: %s load index not increasing", what)
		}
	}
	if len(t.Values) != len(t.SlewIndex)*len(t.LoadIndex) {
		return fmt.Errorf("liberty: %s table has %d values, want %d",
			what, len(t.Values), len(t.SlewIndex)*len(t.LoadIndex))
	}
	for _, v := range t.Values {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("liberty: %s table has invalid value %v", what, v)
		}
	}
	return nil
}

// Arc is a cell timing arc from an input (or clock) pin to an output
// pin, with delay and output-slew tables.
type Arc struct {
	From, To string
	Delay    LUT
	Slew     LUT
}

// Cell is a library cell.
type Cell struct {
	Name string
	Pins []Pin
	Arcs []Arc
	// Setup/Hold are the sequential constraints (ps); zero for
	// combinational cells. A cell with either non-zero is sequential
	// and must have CK/D/Q-style pins.
	Setup, Hold float64
	pinIdx      map[string]int
}

// Pin returns the named pin.
func (c *Cell) Pin(name string) (Pin, bool) {
	i, ok := c.pinIdx[name]
	if !ok {
		return Pin{}, false
	}
	return c.Pins[i], true
}

// IsSequential reports whether the cell is a flip-flop.
func (c *Cell) IsSequential() bool { return c.Setup > 0 || c.Hold > 0 }

// Library is a set of cells plus global early/late derate factors
// applied to every computed delay (a simple OCV model).
type Library struct {
	Name string
	// DerateEarly/DerateLate scale nominal delays into the early/late
	// bounds; sane libraries have DerateEarly <= 1 <= DerateLate.
	DerateEarly, DerateLate float64
	Cells                   map[string]*Cell
}

// Cell returns the named cell.
func (l *Library) Cell(name string) (*Cell, bool) {
	c, ok := l.Cells[name]
	return c, ok
}

// validate checks structural consistency of the whole library.
func (l *Library) validate() error {
	if l.DerateEarly <= 0 || l.DerateLate < l.DerateEarly {
		return fmt.Errorf("liberty: invalid derates %v/%v", l.DerateEarly, l.DerateLate)
	}
	for name, c := range l.Cells {
		if len(c.Pins) == 0 {
			return fmt.Errorf("liberty: cell %s has no pins", name)
		}
		c.pinIdx = make(map[string]int, len(c.Pins))
		for i, p := range c.Pins {
			if _, dup := c.pinIdx[p.Name]; dup {
				return fmt.Errorf("liberty: cell %s duplicates pin %s", name, p.Name)
			}
			c.pinIdx[p.Name] = i
		}
		for ai := range c.Arcs {
			a := &c.Arcs[ai]
			from, ok := c.Pin(a.From)
			if !ok || from.Dir == Output {
				return fmt.Errorf("liberty: cell %s arc from invalid pin %s", name, a.From)
			}
			to, ok := c.Pin(a.To)
			if !ok || to.Dir != Output {
				return fmt.Errorf("liberty: cell %s arc to non-output pin %s", name, a.To)
			}
			if err := a.Delay.validate(name + " delay"); err != nil {
				return err
			}
			if err := a.Slew.validate(name + " slew"); err != nil {
				return err
			}
		}
		if c.Setup < 0 || c.Hold < 0 {
			return fmt.Errorf("liberty: cell %s has negative constraints", name)
		}
	}
	return nil
}
