package liberty

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse asserts the library parser never panics, and that any
// library it accepts is internally consistent: every timing arc's tables
// carry exactly len(SlewIndex)*len(LoadIndex) values, so later LUT
// lookups cannot index out of range.
func FuzzParse(f *testing.F) {
	var demo bytes.Buffer
	if err := Format(&demo, Demo()); err != nil {
		f.Fatal(err)
	}
	f.Add(demo.String())
	f.Add("library l\ncell INV\npin A input 2\npin Y output\nendcell\n")
	f.Add("library l\nderate_early 0.9\nderate_late 1.1\n")
	f.Add("cell C\narc A Y\nindex_slew 1 2\nindex_load 3 4\ndelay 1 2 3 4\nslew 1 2 3 4\nendarc\nendcell\n")
	f.Add("cell C\narc A Y\ndelay 1 2 3\nendarc\n")
	f.Add("pin A input\n")
	f.Add("endcell\nendarc\n")
	f.Add("library \x00\ncell X\nsetup -5\nhold 1e308\nendcell\n")
	f.Add("# comment\n\nlibrary l\ncell A\nendcell\ncell A\nendcell\n")
	f.Add(strings.Repeat("cell c\nendcell\n", 40))

	f.Fuzz(func(t *testing.T, input string) {
		lib, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		for name, c := range lib.Cells {
			if name == "" || c == nil {
				t.Fatal("accepted library with empty/nil cell entry")
			}
			for _, a := range c.Arcs {
				want := len(a.Delay.SlewIndex) * len(a.Delay.LoadIndex)
				if len(a.Delay.Values) != want {
					t.Fatalf("cell %s arc %s->%s: %d delay values, want %d",
						name, a.From, a.To, len(a.Delay.Values), want)
				}
			}
		}
	})
}
