package liberty

// Demo returns a small but complete standard-cell library used by the
// netlist examples, the netlist generator and the tests: combinational
// inverters/buffers/NANDs/NORs, a clock buffer, and a D flip-flop. Table
// values follow the usual NLDM shape — delay and output slew grow with
// input slew and with load.
func Demo() *Library {
	idxSlew := []float64{10, 40, 120, 300}
	idxLoad := []float64{1, 4, 12, 30}
	// mk builds a plausible monotone table: base + a*slew + b*load.
	mk := func(base, a, b float64) LUT {
		vals := make([]float64, 0, len(idxSlew)*len(idxLoad))
		for _, s := range idxSlew {
			for _, l := range idxLoad {
				vals = append(vals, base+a*s+b*l)
			}
		}
		return LUT{SlewIndex: idxSlew, LoadIndex: idxLoad, Values: vals}
	}
	comb := func(name string, inputs int, base float64) *Cell {
		c := &Cell{Name: name}
		letters := []string{"A", "B", "C", "D"}
		for i := 0; i < inputs; i++ {
			c.Pins = append(c.Pins, Pin{Name: letters[i], Dir: Input, Cap: 2 + float64(i)})
		}
		c.Pins = append(c.Pins, Pin{Name: "Y", Dir: Output})
		for i := 0; i < inputs; i++ {
			c.Arcs = append(c.Arcs, Arc{
				From:  letters[i],
				To:    "Y",
				Delay: mk(base+2*float64(i), 0.08, 1.6),
				Slew:  mk(base*0.6, 0.20, 1.1),
			})
		}
		return c
	}
	dff := &Cell{
		Name: "DFF",
		Pins: []Pin{
			{Name: "CK", Dir: ClockPin, Cap: 1.5},
			{Name: "D", Dir: Input, Cap: 2.0},
			{Name: "Q", Dir: Output},
		},
		Arcs: []Arc{{
			From:  "CK",
			To:    "Q",
			Delay: mk(45, 0.05, 1.8),
			Slew:  mk(25, 0.10, 1.2),
		}},
		Setup: 28,
		Hold:  9,
	}
	lib := &Library{
		Name:        "demo",
		DerateEarly: 0.92,
		DerateLate:  1.08,
		Cells: map[string]*Cell{
			"INV":    comb("INV", 1, 14),
			"BUF":    comb("BUF", 1, 20),
			"NAND2":  comb("NAND2", 2, 18),
			"NOR2":   comb("NOR2", 2, 22),
			"CLKBUF": comb("CLKBUF", 1, 16),
			"DFF":    dff,
		},
	}
	if err := lib.validate(); err != nil {
		panic("liberty: demo library invalid: " + err.Error())
	}
	return lib
}
