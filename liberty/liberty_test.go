package liberty

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testLUT() LUT {
	return LUT{
		SlewIndex: []float64{10, 100},
		LoadIndex: []float64{1, 11},
		Values: []float64{
			20, 40, // slew 10: load 1, 11
			60, 100, // slew 100
		},
	}
}

func TestLUTLookupCorners(t *testing.T) {
	l := testLUT()
	cases := []struct{ s, c, want float64 }{
		{10, 1, 20},
		{10, 11, 40},
		{100, 1, 60},
		{100, 11, 100},
	}
	for _, c := range cases {
		if got := l.Lookup(c.s, c.c); got != c.want {
			t.Errorf("Lookup(%g,%g) = %g, want %g", c.s, c.c, got, c.want)
		}
	}
}

func TestLUTLookupInterpolation(t *testing.T) {
	l := testLUT()
	// Midpoint in both axes: mean of the four corners.
	if got := l.Lookup(55, 6); got != 55 {
		t.Errorf("bilinear midpoint = %g, want 55", got)
	}
	// Interpolate along one axis only.
	if got := l.Lookup(10, 6); got != 30 {
		t.Errorf("load midpoint = %g, want 30", got)
	}
	if got := l.Lookup(55, 1); got != 40 {
		t.Errorf("slew midpoint = %g, want 40", got)
	}
}

func TestLUTLookupClamps(t *testing.T) {
	l := testLUT()
	if got := l.Lookup(5, 0.5); got != 20 {
		t.Errorf("below-range = %g, want 20", got)
	}
	if got := l.Lookup(1000, 1000); got != 100 {
		t.Errorf("above-range = %g, want 100", got)
	}
}

func TestLUTQuickWithinBounds(t *testing.T) {
	l := testLUT()
	f := func(s, c float64) bool {
		if math.IsNaN(s) || math.IsNaN(c) || math.IsInf(s, 0) || math.IsInf(c, 0) {
			return true
		}
		v := l.Lookup(math.Abs(s), math.Abs(c))
		return v >= 20 && v <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSingleEntryLUT(t *testing.T) {
	l := LUT{SlewIndex: []float64{50}, LoadIndex: []float64{5}, Values: []float64{42}}
	if got := l.Lookup(1, 1); got != 42 {
		t.Errorf("degenerate lookup = %g", got)
	}
	if got := l.Lookup(500, 500); got != 42 {
		t.Errorf("degenerate lookup = %g", got)
	}
}

func TestDemoLibraryValid(t *testing.T) {
	lib := Demo()
	for _, name := range []string{"INV", "BUF", "NAND2", "NOR2", "CLKBUF", "DFF"} {
		if _, ok := lib.Cell(name); !ok {
			t.Errorf("demo lacks %s", name)
		}
	}
	dff, _ := lib.Cell("DFF")
	if !dff.IsSequential() {
		t.Error("DFF not sequential")
	}
	inv, _ := lib.Cell("INV")
	if inv.IsSequential() {
		t.Error("INV sequential")
	}
	if _, ok := inv.Pin("A"); !ok {
		t.Error("INV lacks pin A")
	}
	if _, ok := inv.Pin("Z"); ok {
		t.Error("INV has phantom pin")
	}
	// Monotonicity of demo tables: more slew or load => more delay.
	a := inv.Arcs[0]
	if a.Delay.Lookup(10, 1) >= a.Delay.Lookup(300, 30) {
		t.Error("demo table not monotone")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	lib := Demo()
	var buf bytes.Buffer
	if err := Format(&buf, lib); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, buf.String())
	}
	if back.Name != lib.Name || back.DerateEarly != lib.DerateEarly || back.DerateLate != lib.DerateLate {
		t.Fatal("header differs")
	}
	if len(back.Cells) != len(lib.Cells) {
		t.Fatalf("%d cells, want %d", len(back.Cells), len(lib.Cells))
	}
	for name, c := range lib.Cells {
		b, ok := back.Cell(name)
		if !ok {
			t.Fatalf("cell %s lost", name)
		}
		if len(b.Pins) != len(c.Pins) || len(b.Arcs) != len(c.Arcs) {
			t.Fatalf("cell %s shape differs", name)
		}
		if b.Setup != c.Setup || b.Hold != c.Hold {
			t.Fatalf("cell %s constraints differ", name)
		}
		for i := range c.Arcs {
			if got, want := b.Arcs[i].Delay.Lookup(50, 8), c.Arcs[i].Delay.Lookup(50, 8); got != want {
				t.Fatalf("cell %s arc %d lookup %g vs %g", name, i, got, want)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, errPart string }{
		{"unknown", "bogus", "unknown statement"},
		{"nested cell", "cell a\ncell b\n", "nested cell"},
		{"pin outside", "pin A input 1", "outside cell"},
		{"endcell stray", "endcell", "outside cell"},
		{"unterminated", "cell a\npin A input 1\n", "unterminated"},
		{"bad dir", "cell a\npin A sideways\nendcell", "unknown pin direction"},
		{"bad number", "cell a\narc A Y\nindex_slew x\nendarc\nendcell", "bad number"},
		{"table shape", "cell a\npin A input 1\npin Y output\narc A Y\nindex_slew 1 2\nindex_load 1\ndelay 1 2 3\nslew 1 2\nendarc\nendcell", "values"},
		{"dup cell", "cell a\nendcell\ncell a\nendcell", "duplicate cell"},
		{"bad derate", "derate_early 0\ncell a\npin A input 1\nendcell", "invalid derates"},
		{"decreasing index", "cell a\npin A input 1\npin Y output\narc A Y\nindex_slew 5 2\nindex_load 1\ndelay 1 2\nslew 1 2\nendarc\nendcell", "not increasing"},
		{"arc from output", "cell a\npin Y output\narc Y Y\nindex_slew 1\nindex_load 1\ndelay 1\nslew 1\nendarc\nendcell", "arc from invalid pin"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(c.src))
			if err == nil || !strings.Contains(err.Error(), c.errPart) {
				t.Fatalf("err = %v, want contains %q", err, c.errPart)
			}
		})
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("/nonexistent.libt"); err == nil {
		t.Fatal("missing file accepted")
	}
}
