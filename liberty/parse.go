package liberty

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Parse reads the line-oriented library format:
//
//	library <name>
//	derate_early <f>
//	derate_late  <f>
//	cell <name>
//	pin <name> input|output|clock [<cap-fF>]
//	setup <ps>            # sequential cells
//	hold  <ps>
//	arc <from> <to>
//	index_slew <ps>...
//	index_load <fF>...
//	delay <v>...          # row-major, len(slew)*len(load) values
//	slew  <v>...
//	endarc
//	endcell
//
// '#' starts a comment. Values are floats; times in ps, caps in fF.
func Parse(r io.Reader) (*Library, error) {
	lib := &Library{DerateEarly: 1, DerateLate: 1, Cells: map[string]*Cell{}}
	var cell *Cell
	var arc *Arc

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		bad := func(msg string) error {
			return fmt.Errorf("liberty: line %d: %s", lineno, msg)
		}
		floats := func(args []string) ([]float64, error) {
			out := make([]float64, len(args))
			for i, a := range args {
				v, err := strconv.ParseFloat(a, 64)
				if err != nil {
					return nil, bad(fmt.Sprintf("bad number %q", a))
				}
				out[i] = v
			}
			return out, nil
		}
		switch f[0] {
		case "library":
			if len(f) != 2 {
				return nil, bad("library needs a name")
			}
			lib.Name = f[1]
		case "derate_early", "derate_late":
			if len(f) != 2 {
				return nil, bad(f[0] + " needs a value")
			}
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, bad("bad derate")
			}
			if f[0] == "derate_early" {
				lib.DerateEarly = v
			} else {
				lib.DerateLate = v
			}
		case "cell":
			if cell != nil {
				return nil, bad("nested cell")
			}
			if len(f) != 2 {
				return nil, bad("cell needs a name")
			}
			if _, dup := lib.Cells[f[1]]; dup {
				return nil, bad("duplicate cell " + f[1])
			}
			cell = &Cell{Name: f[1]}
		case "endcell":
			if cell == nil {
				return nil, bad("endcell outside cell")
			}
			if arc != nil {
				return nil, bad("endcell inside arc")
			}
			lib.Cells[cell.Name] = cell
			cell = nil
		case "pin":
			if cell == nil || arc != nil {
				return nil, bad("pin outside cell body")
			}
			if len(f) != 3 && len(f) != 4 {
				return nil, bad("pin needs name, direction and optional cap")
			}
			p := Pin{Name: f[1]}
			switch f[2] {
			case "input":
				p.Dir = Input
			case "output":
				p.Dir = Output
			case "clock":
				p.Dir = ClockPin
			default:
				return nil, bad("unknown pin direction " + f[2])
			}
			if len(f) == 4 {
				v, err := strconv.ParseFloat(f[3], 64)
				if err != nil || v < 0 {
					return nil, bad("bad pin cap")
				}
				p.Cap = v
			}
			cell.Pins = append(cell.Pins, p)
		case "setup", "hold":
			if cell == nil || arc != nil {
				return nil, bad(f[0] + " outside cell body")
			}
			if len(f) != 2 {
				return nil, bad(f[0] + " needs a value")
			}
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, bad("bad constraint")
			}
			if f[0] == "setup" {
				cell.Setup = v
			} else {
				cell.Hold = v
			}
		case "arc":
			if cell == nil {
				return nil, bad("arc outside cell")
			}
			if arc != nil {
				return nil, bad("nested arc")
			}
			if len(f) != 3 {
				return nil, bad("arc needs from and to pins")
			}
			arc = &Arc{From: f[1], To: f[2]}
		case "endarc":
			if arc == nil {
				return nil, bad("endarc outside arc")
			}
			cell.Arcs = append(cell.Arcs, *arc)
			arc = nil
		case "index_slew", "index_load", "delay", "slew":
			if arc == nil {
				return nil, bad(f[0] + " outside arc")
			}
			vals, err := floats(f[1:])
			if err != nil {
				return nil, err
			}
			switch f[0] {
			case "index_slew":
				arc.Delay.SlewIndex = vals
				arc.Slew.SlewIndex = vals
			case "index_load":
				arc.Delay.LoadIndex = vals
				arc.Slew.LoadIndex = vals
			case "delay":
				arc.Delay.Values = vals
			case "slew":
				arc.Slew.Values = vals
			}
		default:
			return nil, bad("unknown statement " + f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("liberty: %v", err)
	}
	if cell != nil || arc != nil {
		return nil, fmt.Errorf("liberty: unterminated cell or arc at EOF")
	}
	if err := lib.validate(); err != nil {
		return nil, err
	}
	return lib, nil
}

// ParseFile parses the named library file.
func ParseFile(path string) (*Library, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Format serialises the library in the Parse format.
func Format(w io.Writer, l *Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library %s\n", l.Name)
	fmt.Fprintf(bw, "derate_early %g\nderate_late %g\n", l.DerateEarly, l.DerateLate)
	names := make([]string, 0, len(l.Cells))
	for n := range l.Cells {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := l.Cells[n]
		fmt.Fprintf(bw, "cell %s\n", c.Name)
		for _, p := range c.Pins {
			if p.Dir == Output {
				fmt.Fprintf(bw, "pin %s %s\n", p.Name, p.Dir)
			} else {
				fmt.Fprintf(bw, "pin %s %s %g\n", p.Name, p.Dir, p.Cap)
			}
		}
		if c.Setup != 0 {
			fmt.Fprintf(bw, "setup %g\n", c.Setup)
		}
		if c.Hold != 0 {
			fmt.Fprintf(bw, "hold %g\n", c.Hold)
		}
		for _, a := range c.Arcs {
			fmt.Fprintf(bw, "arc %s %s\n", a.From, a.To)
			writeFloats(bw, "index_slew", a.Delay.SlewIndex)
			writeFloats(bw, "index_load", a.Delay.LoadIndex)
			writeFloats(bw, "delay", a.Delay.Values)
			writeFloats(bw, "slew", a.Slew.Values)
			fmt.Fprintln(bw, "endarc")
		}
		fmt.Fprintln(bw, "endcell")
	}
	return bw.Flush()
}

func writeFloats(w io.Writer, key string, vals []float64) {
	fmt.Fprint(w, key)
	for _, v := range vals {
		fmt.Fprintf(w, " %g", v)
	}
	fmt.Fprintln(w)
}
