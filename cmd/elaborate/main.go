// Command elaborate runs the front-end flow: it reads a gate-level
// netlist and a cell library, performs delay calculation (NLDM lookup,
// slew propagation, Elmore wires, OCV derates), and writes the resulting
// timing graph as a tau design file ready for cpprtimer.
//
//	elaborate -n design.nl -lib cells.libt -o design.cppr
//	elaborate -demo -o design.cppr          # built-in demo library
//	elaborate -rand -ffs 64 -gates 400 -o design.cppr
package main

import (
	"flag"
	"fmt"
	"os"

	"fastcppr/liberty"
	"fastcppr/model"
	"fastcppr/netlist"
	"fastcppr/tau"
)

func main() {
	var (
		nlPath  = flag.String("n", "", "input netlist file (native .nl format)")
		vPath   = flag.String("v", "", "input structural Verilog file")
		clkPort = flag.String("clk", "clk", "clock port name (Verilog input)")
		period  = flag.String("period", "10ns", "clock period (Verilog input)")
		libPath = flag.String("lib", "", "cell library file (empty = built-in demo library)")
		out     = flag.String("o", "", "output tau design file (default stdout)")
		randGen = flag.Bool("rand", false, "synthesize a random netlist instead of reading one")
		seed    = flag.Int64("seed", 1, "random netlist seed")
		ffs     = flag.Int("ffs", 32, "random netlist flip-flop count")
		gates   = flag.Int("gates", 128, "random netlist gate count")
		levels  = flag.Int("clklevels", 3, "random netlist clock-tree levels")
		stats   = flag.Bool("stats", false, "print design statistics to stderr")
	)
	flag.Parse()

	lib := liberty.Demo()
	if *libPath != "" {
		l, err := liberty.ParseFile(*libPath)
		if err != nil {
			fatal(err)
		}
		lib = l
	}

	var n *netlist.Netlist
	switch {
	case *vPath != "":
		p, err := model.ParseTime(*period)
		if err != nil {
			fatal(err)
		}
		parsed, err := netlist.ParseVerilogFile(*vPath, *clkPort, p)
		if err != nil {
			fatal(err)
		}
		n = parsed
	case *randGen:
		n = netlist.Random(netlist.RandomSpec{
			Seed: *seed, FFs: *ffs, Gates: *gates, ClockLevels: *levels,
			Inputs: *ffs / 8, Outputs: *ffs / 8,
		})
	case *nlPath != "":
		parsed, err := netlist.ParseFile(*nlPath)
		if err != nil {
			fatal(err)
		}
		n = parsed
	default:
		fmt.Fprintln(os.Stderr, "elaborate: need -n netlist, -v verilog or -rand")
		flag.Usage()
		os.Exit(2)
	}

	d, err := n.Elaborate(lib, netlist.DefaultWireModel())
	if err != nil {
		fatal(err)
	}
	if *stats {
		s := d.Stats()
		fmt.Fprintf(os.Stderr, "elaborated %s: %d pins, %d edges, %d FFs, D=%d\n",
			s.Name, s.NumPins, s.NumEdges, s.NumFFs, s.Depth)
	}
	if *out == "" {
		if err := tau.Write(os.Stdout, d); err != nil {
			fatal(err)
		}
		return
	}
	if err := tau.WriteFile(*out, d); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "elaborate:", err)
	os.Exit(1)
}
