// Command cpprtimer runs a CPPR top-k critical-path analysis on a design
// file and prints the ranked paths.
//
//	cpprtimer -i design.cppr -k 10 -mode setup -algo lca -threads 8
//
// With -mode both, setup and hold reports are printed back to back.
// -paths controls how many of the k paths are printed in full detail
// (all of them by default); -summary suppresses pin sequences.
package main

import (
	"flag"
	"fmt"
	"os"

	"fastcppr/cppr"
	"fastcppr/internal/report"
	"fastcppr/model"
	"fastcppr/sdc"
	"fastcppr/tau"
)

func main() {
	var (
		in      = flag.String("i", "", "input design file (tau format; required)")
		k       = flag.Int("k", 10, "number of post-CPPR critical paths")
		modeStr = flag.String("mode", "setup", "check mode: setup, hold or both")
		algoStr = flag.String("algo", "lca", "algorithm: lca, pairwise, blockwise, bnb, brute")
		threads = flag.Int("threads", 0, "worker threads (0 = all cores)")
		nPaths  = flag.Int("paths", -1, "paths to print in detail (-1 = all)")
		summary = flag.Bool("summary", false, "print the slack table only")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		pos     = flag.Bool("pos", false, "include output checks at constrained primary outputs")
		sdcPath = flag.String("sdc", "", "constraints file (create_clock, io delays, false paths)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "cpprtimer: -i design file is required")
		flag.Usage()
		os.Exit(2)
	}
	algo, err := cppr.ParseAlgorithm(*algoStr)
	if err != nil {
		fatal(err)
	}
	var modes []model.Mode
	switch *modeStr {
	case "setup":
		modes = []model.Mode{model.Setup}
	case "hold":
		modes = []model.Mode{model.Hold}
	case "both":
		modes = model.Modes[:]
	default:
		fatal(fmt.Errorf("unknown mode %q (want setup|hold|both)", *modeStr))
	}

	d, err := readDesign(*in)
	if err != nil {
		fatal(err)
	}
	if !*jsonOut {
		fmt.Printf("design %s: %d pins, %d edges, %d FFs, clock-tree depth D=%d\n",
			d.Name, d.NumPins(), d.NumArcs(), d.NumFFs(), d.Depth)
	}

	timer := cppr.NewTimer(d)
	if *sdcPath != "" {
		c, err := sdc.ParseFile(*sdcPath)
		if err != nil {
			fatal(err)
		}
		if d, err = timer.ApplySDC(c); err != nil {
			fatal(err)
		}
	}
	for _, mode := range modes {
		rep, err := timer.Report(cppr.Options{K: *k, Mode: mode, Threads: *threads, Algorithm: algo, IncludePOs: *pos})
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			if err := cppr.WriteJSON(os.Stdout, d, &rep, mode, *k); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Printf("\n== %s: top-%d post-CPPR paths via %s in %v ==\n",
			mode, *k, algo, rep.Elapsed)

		t := report.NewTable("", "#", "slack", "pre-CPPR", "credit", "LCA depth", "launch", "capture")
		for i, p := range rep.Paths {
			lau := "<PI>"
			if p.LaunchFF != model.NoFF {
				lau = d.FFs[p.LaunchFF].Name
			}
			t.Add(fmt.Sprint(i+1), p.Slack.String(), p.PreSlack.String(), p.Credit.String(),
				fmt.Sprint(p.LCADepth), lau, d.FFs[p.CaptureFF].Name)
		}
		fmt.Print(t)

		if !*summary {
			limit := len(rep.Paths)
			if *nPaths >= 0 && *nPaths < limit {
				limit = *nPaths
			}
			for i := 0; i < limit; i++ {
				fmt.Printf("\npath %d:\n%s", i+1, rep.Paths[i].FormatDetailed(d))
			}
		}
	}
}

func readDesign(path string) (*model.Design, error) {
	return tau.ReadFile(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpprtimer:", err)
	os.Exit(1)
}
