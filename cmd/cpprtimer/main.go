// Command cpprtimer runs a CPPR top-k critical-path analysis on a design
// file and prints the ranked paths.
//
//	cpprtimer -i design.cppr -k 10 -mode setup -algo lca -threads 8
//
// With -mode both, setup and hold reports are printed back to back.
// -paths controls how many of the k paths are printed in full detail
// (all of them by default); -summary suppresses pin sequences.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"fastcppr/cppr"
	"fastcppr/internal/report"
	"fastcppr/model"
	"fastcppr/sdc"
	"fastcppr/tau"
)

// Exit codes beyond the usual 0/1/2 (ok / error / usage), so scripts can
// distinguish resource failures from bad inputs:
//
//	3  the -timeout deadline (or an interrupt) aborted the analysis
//	4  a budgeted algorithm degraded: the report is partial
//	5  an internal invariant violation was contained (engine bug)
const (
	exitTimeout  = 3
	exitDegraded = 4
	exitInternal = 5
)

func main() {
	var (
		in      = flag.String("i", "", "input design file (tau format; required)")
		k       = flag.Int("k", 10, "number of post-CPPR critical paths")
		modeStr = flag.String("mode", "setup", "check mode: setup, hold or both")
		algoStr = flag.String("algo", "lca", "algorithm: lca, pairwise, blockwise, bnb, brute")
		threads = flag.Int("threads", 0, "worker threads (0 = all cores)")
		nPaths  = flag.Int("paths", -1, "paths to print in detail (-1 = all)")
		summary = flag.Bool("summary", false, "print the slack table only")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		pos     = flag.Bool("pos", false, "include output checks at constrained primary outputs")
		sdcPath = flag.String("sdc", "", "constraints file (create_clock, io delays, false paths)")
		timeout = flag.Duration("timeout", 0, "abort the analysis after this duration (0 = no limit; exit code 3)")
		maxTup  = flag.Int("maxtuples", 0, "blockwise tuple budget (0 = default; exhaustion degrades, exit code 4)")
		maxPops = flag.Int("maxpops", 0, "branch-and-bound pop budget (0 = default; exhaustion degrades, exit code 4)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "cpprtimer: -i design file is required")
		flag.Usage()
		os.Exit(2)
	}
	algo, err := cppr.ParseAlgorithm(*algoStr)
	if err != nil {
		fatal(err)
	}
	var modes []model.Mode
	switch *modeStr {
	case "setup":
		modes = []model.Mode{model.Setup}
	case "hold":
		modes = []model.Mode{model.Hold}
	case "both":
		modes = model.Modes[:]
	default:
		fatal(fmt.Errorf("unknown mode %q (want setup|hold|both)", *modeStr))
	}

	d, err := readDesign(*in)
	if err != nil {
		fatal(err)
	}
	if !*jsonOut {
		fmt.Printf("design %s: %d pins, %d edges, %d FFs, clock-tree depth D=%d\n",
			d.Name, d.NumPins(), d.NumArcs(), d.NumFFs(), d.Depth)
	}

	timer := cppr.NewTimer(d)
	if *maxTup > 0 || *maxPops > 0 {
		timer.SetBudgets(*maxTup, *maxPops)
	}
	if *sdcPath != "" {
		c, err := sdc.ParseFile(*sdcPath)
		if err != nil {
			fatal(err)
		}
		if d, err = timer.ApplySDC(c); err != nil {
			fatal(err)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	degraded := false
	for _, mode := range modes {
		rep, err := timer.Run(ctx, cppr.Query{K: *k, Mode: mode, Threads: *threads, Algorithm: algo, IncludePOs: *pos})
		if err != nil {
			fatal(err)
		}
		if rep.Degraded {
			degraded = true
			fmt.Fprintf(os.Stderr, "cpprtimer: warning: %s search exhausted its budget; the %s report is partial\n", algo, mode)
		}
		if *jsonOut {
			if err := cppr.WriteJSON(os.Stdout, d, &rep, mode, *k); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Printf("\n== %s: top-%d post-CPPR paths via %s in %v ==\n",
			mode, *k, algo, rep.Elapsed)

		t := report.NewTable("", "#", "slack", "pre-CPPR", "credit", "LCA depth", "launch", "capture")
		for i, p := range rep.Paths {
			lau := "<PI>"
			if p.LaunchFF != model.NoFF {
				lau = d.FFs[p.LaunchFF].Name
			}
			t.Add(fmt.Sprint(i+1), p.Slack.String(), p.PreSlack.String(), p.Credit.String(),
				fmt.Sprint(p.LCADepth), lau, d.FFs[p.CaptureFF].Name)
		}
		fmt.Print(t)

		if !*summary {
			limit := len(rep.Paths)
			if *nPaths >= 0 && *nPaths < limit {
				limit = *nPaths
			}
			for i := 0; i < limit; i++ {
				fmt.Printf("\npath %d:\n%s", i+1, rep.Paths[i].FormatDetailed(d))
			}
		}
	}
	if degraded {
		os.Exit(exitDegraded)
	}
}

func readDesign(path string) (*model.Design, error) {
	return tau.ReadFile(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpprtimer:", err)
	os.Exit(exitCode(err))
}

// exitCode maps the query-path error taxonomy onto process exit codes.
func exitCode(err error) int {
	var ie *cppr.InternalError
	switch {
	case errors.Is(err, cppr.ErrCanceled), errors.Is(err, cppr.ErrDeadlineExceeded):
		return exitTimeout
	case errors.Is(err, cppr.ErrBudgetExhausted):
		return exitDegraded
	case errors.As(err, &ie):
		return exitInternal
	default:
		return 1
	}
}
