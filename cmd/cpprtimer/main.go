// Command cpprtimer runs a CPPR top-k critical-path analysis on a design
// file and prints the ranked paths.
//
//	cpprtimer -i design.cppr -k 10 -mode setup -algo lca -threads 8
//
// With -mode both, setup and hold reports are printed back to back.
// -paths controls how many of the k paths are printed in full detail
// (all of them by default); -summary suppresses pin sequences.
// -corners fast:0.85:0.9,slow:1.1:1.2 adds derated delay corners; every
// report is then the worst-case merge over all corners, with the
// critical corner named per path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"fastcppr/cppr"
	"fastcppr/internal/report"
	"fastcppr/model"
	"fastcppr/sdc"
	"fastcppr/tau"
)

// Exit codes beyond the usual 0/1/2 (ok / error / usage), so scripts can
// distinguish resource failures from bad inputs:
//
//	3  the -timeout deadline (or an interrupt) aborted the analysis
//	4  a budgeted algorithm degraded: the report is partial
//	5  an internal invariant violation was contained (engine bug)
const (
	exitTimeout  = 3
	exitDegraded = 4
	exitInternal = 5
)

func main() {
	var (
		in        = flag.String("i", "", "input design file (tau format; required)")
		k         = flag.Int("k", 10, "number of post-CPPR critical paths")
		modeStr   = flag.String("mode", "setup", "check mode: setup, hold or both")
		algoStr   = flag.String("algo", "lca", "algorithm: lca, pairwise, blockwise, bnb, brute")
		threads   = flag.Int("threads", 0, "worker threads (0 = all cores)")
		nPaths    = flag.Int("paths", -1, "paths to print in detail (-1 = all)")
		summary   = flag.Bool("summary", false, "print the slack table only")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		pos       = flag.Bool("pos", false, "include output checks at constrained primary outputs")
		sdcPath   = flag.String("sdc", "", "constraints file (create_clock, io delays, false paths)")
		timeout   = flag.Duration("timeout", 0, "abort the analysis after this duration (0 = no limit; exit code 3)")
		maxTup    = flag.Int("maxtuples", 0, "blockwise tuple budget (0 = default; exhaustion degrades, exit code 4)")
		maxPops   = flag.Int("maxpops", 0, "branch-and-bound pop budget (0 = default; exhaustion degrades, exit code 4)")
		cornersIn = flag.String("corners", "", "extra delay corners as name:earlyScale:lateScale,... (e.g. fast:0.85:0.9,slow:1.1:1.2); reports merge all corners and name the critical one")
		crprStr   = flag.String("crpr", "", "CRPR credit mode: same_pin or same_transition (default: the SDC's set_crpr_mode, else same_pin)")
		skew      = flag.Bool("skew", false, "also print the worst CRPR-corrected clock skew per clock domain")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "cpprtimer: -i design file is required")
		flag.Usage()
		os.Exit(2)
	}
	algo, err := cppr.ParseAlgorithm(*algoStr)
	if err != nil {
		fatal(err)
	}
	crpr := cppr.CRPRDefault
	if *crprStr != "" {
		m, err := model.ParseCRPRMode(*crprStr)
		if err != nil {
			fatal(err)
		}
		if m == model.CRPRSameTransition {
			crpr = cppr.CRPRSameTransition
		} else {
			crpr = cppr.CRPRSamePin
		}
	}
	var modes []model.Mode
	switch *modeStr {
	case "setup":
		modes = []model.Mode{model.Setup}
	case "hold":
		modes = []model.Mode{model.Hold}
	case "both":
		modes = model.Modes[:]
	default:
		fatal(fmt.Errorf("unknown mode %q (want setup|hold|both)", *modeStr))
	}

	d, err := readDesign(*in)
	if err != nil {
		fatal(err)
	}
	if *cornersIn != "" {
		if d, err = addScaledCorners(d, *cornersIn); err != nil {
			fatal(err)
		}
	}
	if !*jsonOut {
		fmt.Printf("design %s: %d pins, %d edges, %d FFs, clock-tree depth D=%d",
			d.Name, d.NumPins(), d.NumArcs(), d.NumFFs(), d.Depth)
		if d.NumCorners() > 1 {
			fmt.Printf(", corners %s", strings.Join(d.CornerNames(), ","))
		}
		fmt.Println()
	}

	timer := cppr.NewTimer(d)
	if *maxTup > 0 || *maxPops > 0 {
		timer.SetBudgets(*maxTup, *maxPops)
	}
	if *sdcPath != "" {
		c, err := sdc.ParseFile(*sdcPath)
		if err != nil {
			fatal(err)
		}
		if d, err = timer.ApplySDC(c); err != nil {
			fatal(err)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var sel cppr.CornerMask
	if d.NumCorners() > 1 {
		sel = cppr.CornerAll
	}
	degraded := false
	for _, mode := range modes {
		rep, err := timer.Run(ctx, cppr.Query{K: *k, Mode: mode, Threads: *threads, Algorithm: algo, IncludePOs: *pos, Corners: sel, CRPR: crpr})
		if err != nil {
			fatal(err)
		}
		if rep.Degraded {
			degraded = true
			fmt.Fprintf(os.Stderr, "cpprtimer: warning: %s search exhausted its budget; the %s report is partial\n", algo, mode)
		}
		if *jsonOut {
			if err := cppr.WriteJSON(os.Stdout, d, &rep, mode, *k); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Printf("\n== %s: top-%d post-CPPR paths via %s in %v ==\n",
			mode, *k, algo, rep.Elapsed)
		merged := len(rep.PathCorners) > 0
		if merged {
			fmt.Printf("worst over %d corners; critical corner: %s\n",
				rep.Corners.Count(), d.CornerName(rep.Corner))
		}

		head := []string{"#", "slack", "pre-CPPR", "credit", "LCA depth", "launch", "capture"}
		if merged {
			head = append(head, "corner")
		}
		t := report.NewTable("", head...)
		for i, p := range rep.Paths {
			lau := "<PI>"
			if p.LaunchFF != model.NoFF {
				lau = d.FFs[p.LaunchFF].Name
			}
			row := []string{fmt.Sprint(i + 1), p.Slack.String(), p.PreSlack.String(), p.Credit.String(),
				fmt.Sprint(p.LCADepth), lau, d.FFs[p.CaptureFF].Name}
			if merged {
				row = append(row, d.CornerName(rep.PathCorners[i]))
			}
			t.Add(row...)
		}
		fmt.Print(t)

		if !*summary {
			limit := len(rep.Paths)
			if *nPaths >= 0 && *nPaths < limit {
				limit = *nPaths
			}
			for i := 0; i < limit; i++ {
				fmt.Printf("\npath %d:\n%s", i+1, rep.Paths[i].FormatDetailed(d))
			}
		}
	}
	if *skew && !*jsonOut {
		entries, err := timer.ClockSkew(model.BaseCorner, crpr)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\n== worst CRPR-corrected clock skew per domain ==")
		t := report.NewTable("", "clock", "FFs", "setup skew", "hold skew")
		for _, e := range entries {
			t.Add(e.Clock, fmt.Sprint(e.FFs), e.Setup.String(), e.Hold.String())
		}
		fmt.Print(t)
	}
	if degraded {
		os.Exit(exitDegraded)
	}
}

func readDesign(path string) (*model.Design, error) {
	return tau.ReadFile(path)
}

// addScaledCorners parses the -corners spec ("name:earlyScale:lateScale"
// entries, comma-separated) and appends one globally derated corner per
// entry to the design.
func addScaledCorners(d *model.Design, spec string) (*model.Design, error) {
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -corners entry %q (want name:earlyScale:lateScale)", entry)
		}
		early, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad -corners entry %q: %v", entry, err)
		}
		late, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad -corners entry %q: %v", entry, err)
		}
		if d, _, err = d.WithScaledCorner(parts[0], early, late); err != nil {
			return nil, fmt.Errorf("-corners entry %q: %v", entry, err)
		}
	}
	return d, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpprtimer:", err)
	os.Exit(exitCode(err))
}

// exitCode maps the query-path error taxonomy onto process exit codes.
func exitCode(err error) int {
	var ie *cppr.InternalError
	switch {
	case errors.Is(err, cppr.ErrCanceled), errors.Is(err, cppr.ErrDeadlineExceeded):
		return exitTimeout
	case errors.Is(err, cppr.ErrBudgetExhausted):
		return exitDegraded
	case errors.As(err, &ie):
		return exitInternal
	default:
		return 1
	}
}
