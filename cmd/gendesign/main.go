// Command gendesign generates synthetic benchmark designs and writes them
// in the tau text format.
//
// Generate a scaled stand-in for a paper benchmark:
//
//	gendesign -preset leon2 -scale 0.02 -o leon2_s.cppr
//
// Or a fully custom design:
//
//	gendesign -ffs 500 -depth 20 -seed 7 -o mine.cppr
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fastcppr/gen"
	"fastcppr/model"
	"fastcppr/tau"
)

func main() {
	var (
		preset = flag.String("preset", "", "Table III preset name ("+strings.Join(gen.PresetNames(), ", ")+"), \"divergent\" (inverter-mixed clock tree, -seed applies), or \"blocked\" (repeated block instances for hierarchical extraction, -seed applies)")
		scale  = flag.Float64("scale", 0.02, "preset scale factor (1.0 = published size)")
		seed   = flag.Int64("seed", 1, "random seed (custom designs)")
		name   = flag.String("name", "", "design name (custom designs)")
		ffs    = flag.Int("ffs", 256, "flip-flop count (custom designs)")
		depth  = flag.Int("depth", 16, "clock tree depth D (custom designs)")
		layers = flag.Int("layers", 4, "combinational layers (custom designs)")
		comb   = flag.Int("comb", 0, "combinational pins per layer (0 = 2x FFs)")
		pis    = flag.Int("pis", 16, "primary inputs (custom designs)")
		window = flag.Float64("window", 0.1, "connectivity window in [0,1] (custom designs)")
		out    = flag.String("o", "", "output file (default stdout)")
		stats  = flag.Bool("stats", false, "print design statistics to stderr")
		conn   = flag.Bool("connectivity", false, "include FF connectivity in -stats (slow on big designs)")
	)
	flag.Parse()

	var spec gen.Spec
	if *preset == "blocked" {
		// Repeated-block-instance preset: identical combinational block
		// clones between FF banks, the model-reuse scenario for
		// hierarchical macromodel extraction (scale does not apply).
		d, err := gen.GenerateBlocked(gen.BlockedArray(*seed))
		if err != nil {
			fatal(err)
		}
		emit(d, *stats, *conn, *out)
		return
	}
	if *preset == "divergent" {
		// The oracle-size same_pin/same_transition divergence preset:
		// a reconvergent clock tree mixing inverting and non-inverting
		// cells (scale does not apply; the preset is oracle-sized).
		spec = gen.DivergentClock(*seed)
	} else if *preset != "" {
		s, err := gen.PresetSpec(*preset, *scale)
		if err != nil {
			fatal(err)
		}
		spec = s
	} else {
		spec = gen.Spec{
			Name:         *name,
			Seed:         *seed,
			NumFFs:       *ffs,
			TargetDepth:  *depth,
			CombLayers:   *layers,
			CombPerLayer: *comb,
			NumPIs:       *pis,
			NumPOs:       *pis,
			Window:       *window,
		}
	}
	d, err := gen.Generate(spec)
	if err != nil {
		fatal(err)
	}
	emit(d, *stats, *conn, *out)
}

func emit(d *model.Design, stats, conn bool, out string) {
	if stats {
		var s model.Stats
		if conn {
			s = d.StatsWithConnectivity()
		} else {
			s = d.Stats()
		}
		fmt.Fprintf(os.Stderr, "design %s: %d pins, %d edges, %d FFs, D=%d, FFs/D=%.2f",
			s.Name, s.NumPins, s.NumEdges, s.NumFFs, s.Depth, s.FFsPerD)
		if conn {
			fmt.Fprintf(os.Stderr, ", connectivity=%.2f", s.Connectivity)
		}
		fmt.Fprintln(os.Stderr)
	}

	if out == "" {
		if err := tau.Write(os.Stdout, d); err != nil {
			fatal(err)
		}
		return
	}
	if err := tau.WriteFile(out, d); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gendesign:", err)
	os.Exit(1)
}
