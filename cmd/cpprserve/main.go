// Command cpprserve is the CPPR service front end: an HTTP JSON server
// hosting a multi-tenant design registry with request coalescing,
// admission control, per-query deadlines and graceful shutdown (see
// DESIGN.md §13).
//
//	cpprserve -addr :8080 -preload leon2                 # serve a preset
//	cpprserve -max-concurrent 8 -max-queue 32            # overload knobs
//	CPPR_FAULTS=serve.batcher.flush:delay:5ms cpprserve  # chaos mode
//	cpprserve -smoke                                     # CI self-test
//
// Endpoints: POST /v1/designs, GET /v1/designs, DELETE /v1/designs/{id},
// POST /v1/designs/{id}/arc, POST /v1/query, GET /stats, GET /metrics,
// GET /healthz.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/internal/faultinject"
	"fastcppr/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxBatch   = flag.Int("max-batch", 16, "coalescing batch size (1 disables coalescing)")
		maxWait    = flag.Duration("max-wait", 2*time.Millisecond, "coalescing flush age")
		maxConc    = flag.Int("max-concurrent", 0, "admission slots (0 = 2x GOMAXPROCS)")
		maxQueue   = flag.Int("max-queue", 0, "admission wait-queue bound (0 = 4x slots)")
		maxDesigns = flag.Int("max-designs", 64, "registry capacity")
		defTimeout = flag.Duration("default-timeout", 30*time.Second, "per-query deadline when the request sets none")
		workers    = flag.Int("workers", 0, "batch-executor worker pool per design (0 = GOMAXPROCS)")
		qthreads   = flag.Int("query-threads", 0, "default intra-query threads (0 = GOMAXPROCS)")
		preload    = flag.String("preload", "", "comma-separated presets to load at startup, each preset[:scale[:corners]] (id = preset name)")
		drain      = flag.Duration("drain", 30*time.Second, "shutdown drain budget")
		smoke      = flag.Bool("smoke", false, "run the self-test sequence (load, query, shed under saturation, drain) and exit")
	)
	flag.Parse()

	// Chaos arming: a production binary with CPPR_FAULTS unset pays one
	// atomic load per site and nothing else.
	disarm, err := faultinject.ArmFromEnv("CPPR_FAULTS")
	if err != nil {
		fatal(err)
	}
	defer disarm()

	cfg := serve.Config{
		MaxBatch:       *maxBatch,
		MaxWait:        *maxWait,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		MaxDesigns:     *maxDesigns,
		DefaultTimeout: *defTimeout,
		Parallelism:    cppr.Parallelism{Workers: *workers, QueryThreads: *qthreads},
	}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fatal(err)
		}
		fmt.Println("smoke: ok")
		return
	}

	srv := serve.New(cfg)
	if err := preloadDesigns(srv, *preload); err != nil {
		fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("cpprserve: listening on %s\n", *addr)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop admitting, drain in-flight queries and
	// batchers, then close the listener.
	fmt.Println("cpprserve: draining...")
	drained := srv.Close(*drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fatal(err)
	}
	if !drained {
		fmt.Fprintln(os.Stderr, "cpprserve: drain budget exceeded; exiting with work in flight")
		os.Exit(1)
	}
	fmt.Println("cpprserve: drained cleanly")
}

// preloadDesigns loads each spec "preset[:scale[:corners]]" under the
// preset's own name.
func preloadDesigns(srv *serve.Server, specs string) error {
	if specs == "" {
		return nil
	}
	for _, spec := range strings.Split(specs, ",") {
		parts := strings.Split(strings.TrimSpace(spec), ":")
		req := serve.LoadRequest{ID: parts[0], Preset: parts[0]}
		if len(parts) > 1 {
			s, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return fmt.Errorf("bad -preload scale in %q: %v", spec, err)
			}
			req.Scale = s
		}
		if len(parts) > 2 {
			c, err := strconv.Atoi(parts[2])
			if err != nil {
				return fmt.Errorf("bad -preload corners in %q: %v", spec, err)
			}
			req.Corners = c
		}
		if len(parts) > 3 {
			return fmt.Errorf("bad -preload spec %q (want preset[:scale[:corners]])", spec)
		}
		d, err := serve.BuildDesign(req)
		if err != nil {
			return err
		}
		if err := srv.Registry().Load(req.ID, d); err != nil {
			return err
		}
		fmt.Printf("cpprserve: preloaded %q (scale %g)\n", req.ID, req.Scale)
	}
	return nil
}

// runSmoke is the CI self-test: a real listener, a preset load, a
// served query, forced load-shedding at saturation (checking the typed
// error and Retry-After), and a clean drain.
func runSmoke(cfg serve.Config) error {
	// Tight limits make saturation cheap to force.
	cfg.MaxConcurrent = 1
	cfg.MaxQueue = 1
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan struct{})
	go func() { hs.Serve(ln); close(done) }()
	base := "http://" + ln.Addr().String()

	post := func(path string, body any) (*http.Response, []byte, error) {
		buf, _ := json.Marshal(body)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		return resp, out, err
	}

	// Load.
	preset := gen.PresetNames()[0]
	resp, body, err := post("/v1/designs", serve.LoadRequest{ID: "smoke", Preset: preset, Scale: 0.005})
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("load: status %d: %s", resp.StatusCode, body)
	}

	// Query.
	resp, body, err = post("/v1/query", serve.QueryRequest{Design: "smoke", K: 5})
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("query: status %d: %s", resp.StatusCode, body)
	}
	var qr serve.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		return fmt.Errorf("query: bad response: %v", err)
	}
	if len(qr.Report.Paths) == 0 {
		return fmt.Errorf("query: no paths reported")
	}

	// Saturate: with 1 slot + 1 queue entry, a burst must shed at least
	// one request with 429 + Retry-After, and every admitted request
	// must complete.
	const burst = 16
	var wg sync.WaitGroup
	codes := make([]int, burst)
	retryAfter := make([]string, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _, err := post("/v1/query", serve.QueryRequest{Design: "smoke", K: 100})
			if err == nil {
				codes[i] = resp.StatusCode
				retryAfter[i] = resp.Header.Get("Retry-After")
			}
		}(i)
	}
	wg.Wait()
	ok, shed := 0, 0
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				return fmt.Errorf("shed response missing Retry-After")
			}
		default:
			return fmt.Errorf("burst request got status %d", c)
		}
	}
	if ok == 0 || shed == 0 {
		return fmt.Errorf("saturation burst: %d ok, %d shed — want both > 0", ok, shed)
	}
	fmt.Printf("smoke: burst of %d: %d served, %d shed with Retry-After\n", burst, ok, shed)

	// Metrics surface.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(mbody, []byte("served_admitted,smoke,")) {
		return fmt.Errorf("metrics missing served_admitted line:\n%s", mbody)
	}

	// Drain: refuse new work, then shut the listener down.
	if !srv.Close(10 * time.Second) {
		return fmt.Errorf("drain did not complete")
	}
	resp, _, err = post("/v1/query", serve.QueryRequest{Design: "smoke", K: 1})
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("post-drain query: status %d, want 503", resp.StatusCode)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	<-done
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpprserve:", err)
	os.Exit(1)
}
