// Command cpprbench regenerates the tables and figures of the paper's
// evaluation section on synthetic benchmark stand-ins.
//
//	cpprbench -all                  # Table III, Table IV, Fig 5, Fig 6, accuracy
//	cpprbench -table4 -scale 0.05   # bigger designs, Table IV only
//	cpprbench -fig5 -designs leon2  # figures run on the leon2-class preset
//
// Scale 1.0 reproduces the published element counts; the default 0.02
// sizes the full suite for a laptop-class machine (the algorithms'
// relative behaviour — who wins, where the crossovers are — is preserved,
// see DESIGN.md §3).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"fastcppr/cppr"
	"fastcppr/internal/experiments"
)

func main() {
	var (
		table3    = flag.Bool("table3", false, "print Table III (benchmark statistics)")
		table4    = flag.Bool("table4", false, "print Table IV (runtime/memory comparison)")
		fig5      = flag.Bool("fig5", false, "print Figure 5 (runtime/memory vs k)")
		fig6      = flag.Bool("fig6", false, "print Figure 6 (runtime/memory vs threads)")
		accuracy  = flag.Bool("accuracy", false, "run the accuracy audit")
		rerank    = flag.Bool("rerank", false, "run the inexact-rerank ablation")
		batch     = flag.Bool("batch", false, "measure the batch query executor vs serial queries")
		batchOut  = flag.String("batchjson", "BENCH_batch.json", "with -batch, write machine-readable stats to this file (empty = none)")
		mcmm      = flag.Bool("mcmm", false, "measure multi-corner fan-out vs serial per-corner analysis")
		corners   = flag.Int("corners", 4, "with -mcmm, the corner count of the fan-out")
		mcmmOut   = flag.String("mcmmjson", "BENCH_mcmm.json", "with -mcmm, write machine-readable stats to this file (empty = none)")
		sparse    = flag.Bool("sparse", false, "measure the sparse propagation kernel vs the dense reference kernel")
		sparseOut = flag.String("sparsejson", "BENCH_sparse.json", "with -sparse, write machine-readable stats to this file (empty = none)")
		incr      = flag.Bool("incremental", false, "measure warm edit→requery through the incremental caches vs cold runs")
		incrOut   = flag.String("incrementaljson", "BENCH_incremental.json", "with -incremental, write machine-readable stats to this file (empty = none)")
		srvBench  = flag.Bool("serve", false, "measure the HTTP service front end: latency/QPS at several client counts, coalescing on vs off")
		srvOut    = flag.String("servejson", "BENCH_serve.json", "with -serve, write machine-readable stats to this file (empty = none)")
		parallel  = flag.Bool("parallel", false, "measure the work-stealing executor and partitioned kernel at 1/2/4/8 threads")
		parOut    = flag.String("paralleljson", "BENCH_parallel.json", "with -parallel, write machine-readable stats to this file (empty = none)")
		parFloor  = flag.Float64("minbatchspeedup", 0, "with -parallel, fail unless the best batch speedup reaches this floor (enforced only on multi-core hosts)")
		signoff   = flag.Bool("signoff", false, "run the industrial-CRPR-semantics smoke: every SDC knob verified against the brute-force oracle")
		signOut   = flag.String("signoffjson", "BENCH_signoff.json", "with -signoff, write machine-readable stats to this file (empty = none)")
		whatif    = flag.Bool("whatif", false, "measure speculative what-if candidate scoring vs a fresh timer per candidate")
		whatifOut = flag.String("whatifjson", "BENCH_whatif.json", "with -whatif, write machine-readable stats to this file (empty = none)")
		hierBench = flag.Bool("hier", false, "measure hierarchical CPPR: reduced-graph timing via block macromodel extraction vs the flat graph")
		hierOut   = flag.String("hierjson", "BENCH_hier.json", "with -hier, write machine-readable stats to this file (empty = none)")
		all       = flag.Bool("all", false, "run everything")
		scale     = flag.Float64("scale", 0.02, "design scale (1.0 = published sizes)")
		designs   = flag.String("designs", "", "comma-separated preset subset (default all)")
		ks        = flag.String("k", "1,100,10000", "comma-separated k values for Table IV")
		threads   = flag.Int("threads", 0, "parallel thread count of the comparison (0 = min(8, host cores))")
		oursOnly  = flag.Bool("oursonly", false, "measure only the LCA engine (full-size capability runs)")
		timeout   = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit; exit code 3)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
		memProf   = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()
	if *all {
		*table3, *table4, *fig5, *fig6, *accuracy, *rerank, *batch, *mcmm, *sparse, *incr, *srvBench, *parallel, *signoff, *whatif, *hierBench = true, true, true, true, true, true, true, true, true, true, true, true, true, true, true
	}
	if !*table3 && !*table4 && !*fig5 && !*fig6 && !*accuracy && !*rerank && !*batch && !*mcmm && !*sparse && !*incr && !*srvBench && !*parallel && !*signoff && !*whatif && !*hierBench {
		fmt.Fprintln(os.Stderr, "cpprbench: select at least one of -table3 -table4 -fig5 -fig6 -accuracy -batch -mcmm -sparse -incremental -serve -parallel -signoff -whatif -hier -all")
		flag.Usage()
		os.Exit(2)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retention, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := experiments.Config{
		Ctx:             ctx,
		Out:             os.Stdout,
		Scale:           *scale,
		Threads:         *threads,
		OursOnly:        *oursOnly,
		Corners:         *corners,
		MinBatchSpeedup: *parFloor,
	}
	if *designs != "" {
		cfg.Designs = strings.Split(*designs, ",")
	}
	for _, part := range strings.Split(*ks, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad -k value %q: %v", part, err))
		}
		cfg.Ks = append(cfg.Ks, k)
	}

	fmt.Printf("# %s\n\n", experiments.HostInfo())
	run := func(name string, enabled bool, f func(experiments.Config) error) {
		if !enabled {
			return
		}
		fmt.Printf("### %s\n\n", name)
		if err := f(cfg); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}
	run("Accuracy audit", *accuracy, experiments.Accuracy)
	run("Rerank ablation", *rerank, experiments.RerankAblation)
	run("Table III", *table3, experiments.Table3)
	run("Table IV", *table4, experiments.Table4)
	run("Figure 5", *fig5, experiments.Fig5)
	run("Figure 6", *fig6, experiments.Fig6)
	// The batch and MCMM experiments each emit a machine-readable stats
	// file; give each its own JSONOut so -all can produce both.
	runJSON := func(name string, enabled bool, path string, f func(experiments.Config) error) {
		if !enabled {
			return
		}
		jcfg := cfg
		if path != "" {
			out, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			jcfg.JSONOut = out
			defer out.Close()
		}
		fmt.Printf("### %s\n\n", name)
		if err := f(jcfg); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}
	runJSON("Batch executor", *batch, *batchOut, experiments.Batch)
	runJSON("MCMM fan-out", *mcmm, *mcmmOut, experiments.MCMM)
	runJSON("Sparse kernel", *sparse, *sparseOut, experiments.Sparse)
	runJSON("Incremental edit→requery", *incr, *incrOut, experiments.Incremental)
	runJSON("Service front end", *srvBench, *srvOut, experiments.Serve)
	runJSON("Thread scaling", *parallel, *parOut, experiments.Parallel)
	runJSON("Signoff semantics smoke", *signoff, *signOut, experiments.Signoff)
	runJSON("What-if engine", *whatif, *whatifOut, experiments.WhatIf)
	runJSON("Hierarchical timing", *hierBench, *hierOut, experiments.Hier)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpprbench:", err)
	os.Exit(exitCode(err))
}

// exitCode maps the query-path error taxonomy onto process exit codes:
// 3 timeout/cancel, 4 budget exhaustion, 5 contained internal error.
func exitCode(err error) int {
	var ie *cppr.InternalError
	switch {
	case errors.Is(err, cppr.ErrCanceled), errors.Is(err, cppr.ErrDeadlineExceeded):
		return 3
	case errors.Is(err, cppr.ErrBudgetExhausted):
		return 4
	case errors.As(err, &ie):
		return 5
	default:
		return 1
	}
}
