package cppr

import (
	"context"
	"strings"
	"testing"

	"fastcppr/gen"
	"fastcppr/internal/baseline"
	"fastcppr/model"
	"fastcppr/sdc"
)

// TestFalsePathsMatchFilteredOracle checks that -from/-to exclusions
// produce exactly the exhaustive result with those paths removed.
func TestFalsePathsMatchFilteredOracle(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		d := gen.MustGenerate(gen.SmallOracle(seed))
		fromFF := d.FFs[1].Name
		toFF := d.FFs[2].Name
		fromPI := d.PinName(d.PIs[0])

		c := sdc.New()
		c.FalseFrom[fromFF] = true
		c.FalseFrom[fromPI] = true
		c.FalseTo[toFF] = true

		timer := NewTimer(d)
		nd, err := timer.ApplySDC(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range model.Modes {
			// Oracle: all paths of the rebuilt design minus excluded.
			all := baseline.AllPaths(nd, mode)
			var want []model.Time
			for _, p := range all {
				if p.CaptureFF != model.NoFF && nd.FFs[p.CaptureFF].Name == toFF {
					continue
				}
				if p.LaunchFF != model.NoFF && nd.FFs[p.LaunchFF].Name == fromFF {
					continue
				}
				if p.LaunchFF == model.NoFF && nd.PinName(p.StartPin()) == fromPI {
					continue
				}
				want = append(want, p.Slack)
			}
			sortTimes(want)
			rep, err := timer.Run(context.Background(), Query{K: len(all) + 5, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			got := sortedSlacks(rep.Paths)
			if len(got) != len(want) {
				t.Fatalf("seed %d %v: %d paths, want %d", seed, mode, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d %v: slack %d = %v, want %v", seed, mode, i, got[i], want[i])
				}
			}
			// No reported path may touch an excluded object.
			for _, p := range rep.Paths {
				if p.LaunchFF != model.NoFF && nd.FFs[p.LaunchFF].Name == fromFF {
					t.Fatal("excluded launch FF reported")
				}
				if p.CaptureFF != model.NoFF && nd.FFs[p.CaptureFF].Name == toFF {
					t.Fatal("excluded capture FF reported")
				}
			}
		}
	}
}

func sortTimes(s []model.Time) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestFalsePathsRejectBaselines(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(1))
	timer := NewTimer(d)
	c := sdc.New()
	c.FalseTo[d.FFs[0].Name] = true
	if _, err := timer.ApplySDC(c); err != nil {
		t.Fatal(err)
	}
	if _, err := timer.Run(context.Background(), Query{K: 5, Mode: model.Setup, Algorithm: AlgoPairwise}); err == nil ||
		!strings.Contains(err.Error(), "AlgoLCA only") {
		t.Fatalf("err = %v", err)
	}
	// The LCA engine still works.
	if _, err := timer.Run(context.Background(), Query{K: 5, Mode: model.Setup}); err != nil {
		t.Fatal(err)
	}
}

func TestApplySDCPeriodShiftsSetupOnly(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(2))
	timer := NewTimer(d)
	before, err := timer.Run(context.Background(), Query{K: 5, Mode: model.Setup})
	if err != nil {
		t.Fatal(err)
	}
	beforeHold, err := timer.Run(context.Background(), Query{K: 5, Mode: model.Hold})
	if err != nil {
		t.Fatal(err)
	}
	c := sdc.New()
	c.Period = d.Period + model.Ns(3)
	if _, err := timer.ApplySDC(c); err != nil {
		t.Fatal(err)
	}
	after, err := timer.Run(context.Background(), Query{K: 5, Mode: model.Setup})
	if err != nil {
		t.Fatal(err)
	}
	afterHold, err := timer.Run(context.Background(), Query{K: 5, Mode: model.Hold})
	if err != nil {
		t.Fatal(err)
	}
	for i := range after.Paths {
		if after.Paths[i].Slack != before.Paths[i].Slack+model.Ns(3) {
			t.Fatalf("setup slack %d: %v, want %v", i, after.Paths[i].Slack, before.Paths[i].Slack+model.Ns(3))
		}
	}
	for i := range afterHold.Paths {
		if afterHold.Paths[i].Slack != beforeHold.Paths[i].Slack {
			t.Fatal("hold slack changed with period")
		}
	}
}

func TestPostCPPRSlacksHonorFalsePaths(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(4))
	timer := NewTimer(d)
	c := sdc.New()
	excluded := d.FFs[0].Name
	c.FalseTo[excluded] = true
	nd, err := timer.ApplySDC(c)
	if err != nil {
		t.Fatal(err)
	}
	post, err := timer.PostCPPRSlacksCtx(context.Background(), Query{Mode: model.Setup, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range post {
		if nd.FFs[s.FF].Name == excluded && s.Valid {
			t.Fatalf("excluded endpoint %s reported a slack", excluded)
		}
	}
	// Other endpoints still report.
	any := false
	for _, s := range post {
		if s.Valid {
			any = true
		}
	}
	if !any {
		t.Fatal("filter wiped all endpoints")
	}
}
