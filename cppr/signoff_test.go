package cppr_test

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/model"
	"fastcppr/sdc"
)

// TestStatsSignoffCounters checks the knob-usage counters end to end:
// fresh timers report zero, one ApplySDC carrying every knob bumps each
// Sdc* counter exactly once, and only queries that resolve to
// same_transition credit semantics — explicitly or through the SDC
// default — bump the query counter.
func TestStatsSignoffCounters(t *testing.T) {
	d := gen.MustGenerate(gen.DivergentClock(7))
	timer := cppr.NewTimer(d)
	st := timer.Stats()
	if st.SdcUncertainty != 0 || st.SdcDerate != 0 || st.SdcIdealClock != 0 ||
		st.SdcIODelay != 0 || st.SdcCRPRMode != 0 || st.CRPRSameTransition != 0 {
		t.Fatalf("fresh timer has non-zero signoff counters: %+v", st)
	}
	c, err := sdc.ParseString(`
set_clock_uncertainty -setup 60ps
set_timing_derate -early 0.94 -late 1.07
set_ideal_clock
set_input_delay in0 -early 0ps -late 250ps
set_crpr_mode same_transition
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := timer.ApplySDC(c); err != nil {
		t.Fatal(err)
	}
	st = timer.Stats()
	if st.SdcUncertainty != 1 || st.SdcDerate != 1 || st.SdcIdealClock != 1 ||
		st.SdcIODelay != 1 || st.SdcCRPRMode != 1 {
		t.Fatalf("after full-knob ApplySDC: %+v", st)
	}
	run := func(crpr cppr.CRPRSetting) {
		if _, err := timer.Run(context.Background(), cppr.Query{K: 5, Mode: model.Setup, CRPR: crpr}); err != nil {
			t.Fatal(err)
		}
	}
	run(cppr.CRPRDefault) // SDC default is same_transition
	if got := timer.Stats().CRPRSameTransition; got != 1 {
		t.Fatalf("same_transition queries = %d after default query, want 1", got)
	}
	run(cppr.CRPRSamePin)
	if got := timer.Stats().CRPRSameTransition; got != 1 {
		t.Fatalf("same_transition queries = %d after same_pin query, want 1", got)
	}
	run(cppr.CRPRSameTransition)
	if got := timer.Stats().CRPRSameTransition; got != 2 {
		t.Fatalf("same_transition queries = %d after explicit query, want 2", got)
	}
}

// TestStatsJSONRoundTrip marshals a live TimerStats and strictly
// decodes it back: every field must survive the round trip and no
// unknown JSON keys may appear — the schema the committed BENCH files
// and the service's /stats endpoint rely on.
func TestStatsJSONRoundTrip(t *testing.T) {
	d := gen.MustGenerate(gen.DivergentClock(7))
	timer := cppr.NewTimer(d)
	c, err := sdc.ParseString("set_timing_derate -late 1.05\nset_crpr_mode same_transition\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := timer.ApplySDC(c); err != nil {
		t.Fatal(err)
	}
	if _, err := timer.Run(context.Background(), cppr.Query{K: 5, Mode: model.Hold}); err != nil {
		t.Fatal(err)
	}
	st := timer.Stats()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var back cppr.TimerStats
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("strict re-decode: %v\n%s", err, raw)
	}
	if !reflect.DeepEqual(st, back) {
		t.Fatalf("stats changed across the JSON round trip:\n%+v\n%+v", st, back)
	}
	if back.SdcDerate != 1 || back.SdcCRPRMode != 1 || back.CRPRSameTransition != 1 {
		t.Fatalf("decoded counters wrong: %+v", back)
	}

	// A hierarchical timer's stats share the schema: its macromodel
	// counters must survive the same strict decode.
	ht, err := cppr.NewHierTimer(gen.MustGenerateBlocked(gen.BlockedArray(7)), cppr.HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hraw, err := json.Marshal(ht.Stats())
	if err != nil {
		t.Fatal(err)
	}
	hdec := json.NewDecoder(bytes.NewReader(hraw))
	hdec.DisallowUnknownFields()
	var hback cppr.TimerStats
	if err := hdec.Decode(&hback); err != nil {
		t.Fatalf("strict re-decode of hier stats: %v\n%s", err, hraw)
	}
	if hback.MacroExtracted != 1 || hback.MacroReused == 0 {
		t.Fatalf("hier counters wrong after decode: %+v", hback)
	}
}

// skewGoldenDesign hand-builds a two-domain design with known clock
// arrivals: domain clk has a credited trunk t (window {100,140}, credit
// 40) splitting into a non-inverting branch (ff1, ff2) and an inverting
// branch (ff3), so same_pin and same_transition skews differ by
// construction; domain clk2 clocks a single FF and must report zero.
func skewGoldenDesign(t *testing.T) *model.Design {
	t.Helper()
	b := model.NewBuilder("skewgold", model.Ns(10))
	clk := b.AddClockRoot("clk")
	trunk := b.AddClockBuf("t")
	a := b.AddClockBuf("a")
	binv := b.AddClockBuf("binv")
	b.AddArc(clk, trunk, model.Window{Early: 100, Late: 140})
	b.AddArc(trunk, a, model.Window{})
	b.AddInvertingArc(trunk, binv, model.Window{})
	ckq := model.Window{Early: 10, Late: 10}
	ff1 := b.AddFF("ff1", 0, 0, ckq)
	ff2 := b.AddFF("ff2", 0, 0, ckq)
	ff3 := b.AddFF("ff3", 0, 0, ckq)
	b.AddArc(a, ff1.Clock, model.Window{})
	b.AddArc(a, ff2.Clock, model.Window{Early: 30, Late: 50})
	b.AddArc(binv, ff3.Clock, model.Window{Early: 0, Late: 10})
	b.AddArc(ff1.Q, ff2.D, model.Window{Early: 5, Late: 5})
	b.AddArc(ff3.Q, ff1.D, model.Window{Early: 5, Late: 5})
	clk2 := b.AddClockRoot("clk2")
	ff4 := b.AddFF("ff4", 0, 0, ckq)
	b.AddArc(clk2, ff4.Clock, model.Window{Early: 7, Late: 9})
	b.AddArc(ff2.Q, ff4.D, model.Window{Early: 5, Late: 5})
	return b.MustBuild()
}

// TestClockSkewGolden pins the report_clock_skew-style numbers of the
// hand-built design. Clock arrivals: ff1 {100,140}, ff2 {130,190},
// ff3 {100,150}. Under same_pin every pair takes the LCA credit
// (trunk: 40, branch a: 40), worst setup pair is (launch ff2, capture
// ff3): 100-190+40 = -50. Under same_transition the inverted ff3 pairs
// with ff1/ff2 at zero credit, so the same pair pays the full
// divergence: 100-190 = -90. Hold is the exact negative; the single-FF
// clk2 domain reports zero.
func TestClockSkewGolden(t *testing.T) {
	d := skewGoldenDesign(t)
	timer := cppr.NewTimer(d)
	check := func(crpr cppr.CRPRSetting, wantClk model.Time) {
		t.Helper()
		entries, err := timer.ClockSkew(model.BaseCorner, crpr)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 2 {
			t.Fatalf("%d skew entries, want 2: %+v", len(entries), entries)
		}
		byClock := map[string]cppr.ClockSkewEntry{}
		for _, e := range entries {
			byClock[e.Clock] = e
			if e.Hold != -e.Setup {
				t.Fatalf("%s: hold %v is not the negative of setup %v", e.Clock, e.Hold, e.Setup)
			}
			if e.Corner != model.BaseCorner {
				t.Fatalf("%s: corner %v", e.Clock, e.Corner)
			}
		}
		if e := byClock["clk"]; e.FFs != 3 || e.Setup != wantClk {
			t.Fatalf("clk domain = %+v, want 3 FFs setup %v", e, wantClk)
		}
		if e := byClock["clk2"]; e.FFs != 1 || e.Setup != 0 || e.Hold != 0 {
			t.Fatalf("single-FF clk2 domain = %+v, want zero skew", e)
		}
	}
	check(cppr.CRPRSamePin, -50)
	check(cppr.CRPRSameTransition, -90)
	check(cppr.CRPRDefault, -50) // no SDC: default is same_pin

	// The default follows set_crpr_mode.
	c, err := sdc.ParseString("set_crpr_mode same_transition\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := timer.ApplySDC(c); err != nil {
		t.Fatal(err)
	}
	check(cppr.CRPRDefault, -90)
}

// TestClockSkewErrors covers the argument validation of the report.
func TestClockSkewErrors(t *testing.T) {
	timer := cppr.NewTimer(skewGoldenDesign(t))
	if _, err := timer.ClockSkew(model.Corner(9), cppr.CRPRDefault); err == nil {
		t.Fatal("out-of-range corner accepted")
	}
	if _, err := timer.ClockSkew(model.BaseCorner, cppr.CRPRSetting(99)); err == nil {
		t.Fatal("unknown CRPR setting accepted")
	}
}
