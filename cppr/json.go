package cppr

import (
	"encoding/json"
	"io"

	"fastcppr/model"
)

// PathJSON is the machine-readable form of one reported path. Times are
// integer picoseconds (exact; no float rounding).
type PathJSON struct {
	Rank       int    `json:"rank"`
	SlackPs    int64  `json:"slack_ps"`
	PreSlackPs int64  `json:"pre_cppr_slack_ps"`
	CreditPs   int64  `json:"cppr_credit_ps"`
	LCADepth   int    `json:"lca_depth"`
	Launch     string `json:"launch"`  // FF instance, or PI pin name
	Capture    string `json:"capture"` // FF instance, or PO pin name
	SelfLoop   bool   `json:"self_loop,omitempty"`
	// Corner names the delay corner the path was computed at; set only
	// in merged multi-corner reports.
	Corner string   `json:"corner,omitempty"`
	Pins   []string `json:"pins"`
}

// ReportJSON is the machine-readable form of a Report. The corner
// fields are populated only for multi-corner analyses, so single-corner
// output is byte-identical to the pre-MCMM format.
type ReportJSON struct {
	Design    string `json:"design"`
	Mode      string `json:"mode"`
	Algorithm string `json:"algorithm"`
	K         int    `json:"k"`
	ElapsedUs int64  `json:"elapsed_us"`
	// Corners names the analysed delay corners, in corner-id order.
	Corners []string `json:"corners,omitempty"`
	// CriticalCorner names the corner of the worst reported path.
	CriticalCorner string     `json:"critical_corner,omitempty"`
	Paths          []PathJSON `json:"paths"`
}

// JSON converts the report into its serialisable form, resolving pin and
// instance names against d.
func (r *Report) JSON(d *model.Design, mode model.Mode, k int) ReportJSON {
	out := ReportJSON{
		Design:    d.Name,
		Mode:      mode.String(),
		Algorithm: r.Algorithm.String(),
		K:         k,
		ElapsedUs: r.Elapsed.Microseconds(),
		Paths:     make([]PathJSON, len(r.Paths)),
	}
	if r.Corners.Count() > 1 {
		corners := r.Corners.List()
		out.Corners = make([]string, len(corners))
		for i, c := range corners {
			out.Corners[i] = d.CornerName(c)
		}
		out.CriticalCorner = d.CornerName(r.Corner)
	}
	for i, p := range r.Paths {
		pj := PathJSON{
			Rank:       i + 1,
			SlackPs:    p.Slack.Ps(),
			PreSlackPs: p.PreSlack.Ps(),
			CreditPs:   p.Credit.Ps(),
			LCADepth:   p.LCADepth,
			SelfLoop:   p.SelfLoop(),
			Pins:       make([]string, len(p.Pins)),
		}
		if i < len(r.PathCorners) {
			pj.Corner = d.CornerName(r.PathCorners[i])
		}
		if p.LaunchFF != model.NoFF {
			pj.Launch = d.FFs[p.LaunchFF].Name
		} else {
			pj.Launch = d.PinName(p.StartPin())
		}
		if p.CaptureFF != model.NoFF {
			pj.Capture = d.FFs[p.CaptureFF].Name
		} else {
			pj.Capture = d.PinName(p.EndPin())
		}
		for j, pin := range p.Pins {
			pj.Pins[j] = d.PinName(pin)
		}
		out.Paths[i] = pj
	}
	return out
}

// WriteJSON writes the report as indented JSON.
func WriteJSON(w io.Writer, d *model.Design, rep *Report, mode model.Mode, k int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep.JSON(d, mode, k))
}
