package cppr

import (
	"context"
	"strings"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// fakeReport builds a Report with hand-picked slacks/endpoints.
func fakeReport(entries ...struct {
	slack model.Time
	end   model.PinID
}) *Report {
	r := &Report{}
	for _, e := range entries {
		r.Paths = append(r.Paths, model.Path{
			Slack: e.slack,
			Pins:  []model.PinID{0, e.end},
		})
	}
	return r
}

type ent = struct {
	slack model.Time
	end   model.PinID
}

func TestWNSTNSViolations(t *testing.T) {
	r := fakeReport(
		ent{-100, 5}, // worst path of endpoint 5
		ent{-80, 5},  // same endpoint: not double counted
		ent{-30, 7},
		ent{20, 9}, // first non-violation stops the scan
		ent{50, 11},
	)
	if got := r.WNS(); got != -100 {
		t.Errorf("WNS = %v", got)
	}
	if got := r.TNS(); got != -130 {
		t.Errorf("TNS = %v, want -130 (endpoints 5 and 7)", got)
	}
	if got := r.NumViolations(); got != 2 {
		t.Errorf("NumViolations = %v", got)
	}
}

func TestWNSAllPositive(t *testing.T) {
	r := fakeReport(ent{5, 1}, ent{10, 2})
	if r.WNS() != 0 || r.TNS() != 0 || r.NumViolations() != 0 {
		t.Error("clean report reports violations")
	}
}

func TestEmptyReportMetrics(t *testing.T) {
	r := &Report{}
	if r.WNS() != 0 || r.TNS() != 0 || r.NumViolations() != 0 {
		t.Error("empty report metrics non-zero")
	}
	if !strings.Contains(r.Histogram(4), "no paths") {
		t.Error("empty histogram")
	}
}

func TestHistogram(t *testing.T) {
	r := fakeReport(ent{0, 1}, ent{1, 2}, ent{2, 3}, ent{99, 4})
	h := r.Histogram(2)
	lines := strings.Split(strings.TrimRight(h, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d histogram lines", len(lines))
	}
	if !strings.Contains(lines[0], "3") || !strings.Contains(lines[0], "###") {
		t.Errorf("first bin: %q", lines[0])
	}
	if !strings.Contains(lines[1], "1") {
		t.Errorf("second bin: %q", lines[1])
	}
	// Degenerate: single slack value.
	one := fakeReport(ent{7, 1})
	if strings.TrimSpace(one.Histogram(3)) == "" {
		t.Error("degenerate histogram empty")
	}
}

func TestCreditStatsOnRealDesign(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(12))
	rep, err := NewTimer(d).Run(context.Background(), Query{K: 200, Mode: model.Hold})
	if err != nil {
		t.Fatal(err)
	}
	with, mean, max := rep.CreditStats()
	if with < 0 || with > len(rep.Paths) {
		t.Fatalf("withCredit = %d", with)
	}
	if mean < 0 || max < mean {
		t.Fatalf("mean %v max %v", mean, max)
	}
	// Consistency with the raw paths.
	recount := 0
	for _, p := range rep.Paths {
		if p.Credit > 0 {
			recount++
		}
	}
	if recount != with {
		t.Fatalf("withCredit %d, recounted %d", with, recount)
	}
}
