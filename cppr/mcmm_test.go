package cppr_test

import (
	"context"
	"sort"
	"testing"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/internal/difftest"
	"fastcppr/model"
)

// mcmmDesign builds a seeded medium design with n jittered corners.
func mcmmDesign(t *testing.T, seed int64, n int) *model.Design {
	t.Helper()
	d := gen.MustGenerate(gen.Medium(seed))
	return difftest.WithJitteredCorners(t, d, n, seed)
}

// equalPaths compares two reported paths exactly: slack decomposition
// and the full pin trace.
func equalPaths(a, b model.Path) bool {
	if a.Slack != b.Slack || a.PreSlack != b.PreSlack || a.Credit != b.Credit ||
		a.LCADepth != b.LCADepth || a.LaunchFF != b.LaunchFF || a.CaptureFF != b.CaptureFF ||
		len(a.Pins) != len(b.Pins) {
		return false
	}
	for i := range a.Pins {
		if a.Pins[i] != b.Pins[i] {
			return false
		}
	}
	return true
}

// TestMCMMOracleMatchesStandaloneTimers is the acceptance oracle for
// the merged multi-corner report: running one multi-corner Timer with
// Corners=CornerAll must reproduce, exactly, the pointwise merge of N
// completely independent single-corner Timers each built on View(c) —
// for both the top-k path report and the endpoint-slack sweep.
func TestMCMMOracleMatchesStandaloneTimers(t *testing.T) {
	const corners = 4
	d := mcmmDesign(t, 500, corners)
	multi := cppr.NewTimer(d)
	standalone := make([]*cppr.Timer, corners)
	for c := 0; c < corners; c++ {
		standalone[c] = cppr.NewTimer(d.View(model.Corner(c)))
	}
	ctx := context.Background()

	for _, mode := range model.Modes {
		for _, k := range []int{1, 20} {
			merged, err := multi.Run(ctx, cppr.Query{K: k, Mode: mode, Corners: cppr.CornerAll})
			if err != nil {
				t.Fatal(err)
			}
			// The oracle: per-corner top-k lists are ascending, and the
			// merge resolves slack ties toward the lowest corner id, so
			// the expected answer is the (slack, corner)-lexicographic
			// k-prefix over all standalone reports.
			type sc struct {
				s model.Time
				c model.Corner
			}
			var all []sc
			for c := 0; c < corners; c++ {
				rep, err := standalone[c].Run(ctx, cppr.Query{K: k, Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range rep.Paths {
					all = append(all, sc{p.Slack, model.Corner(c)})
				}
			}
			sort.Slice(all, func(i, j int) bool {
				if all[i].s != all[j].s {
					return all[i].s < all[j].s
				}
				return all[i].c < all[j].c
			})
			if len(all) > k {
				all = all[:k]
			}
			if len(merged.Paths) != len(all) {
				t.Fatalf("%v k=%d: merged %d paths, oracle %d", mode, k, len(merged.Paths), len(all))
			}
			if len(merged.PathCorners) != len(merged.Paths) {
				t.Fatalf("%v k=%d: %d PathCorners for %d paths", mode, k, len(merged.PathCorners), len(merged.Paths))
			}
			for i := range all {
				if merged.Paths[i].Slack != all[i].s || merged.PathCorners[i] != all[i].c {
					t.Fatalf("%v k=%d rank %d: merged (%v, corner %d), oracle (%v, corner %d)",
						mode, k, i, merged.Paths[i].Slack, merged.PathCorners[i], all[i].s, all[i].c)
				}
			}
			if len(all) > 0 && merged.Corner != all[0].c {
				t.Fatalf("%v k=%d: critical corner %d, oracle %d", mode, k, merged.Corner, all[0].c)
			}
		}

		// Endpoint sweep: pointwise minimum per FF, valid at any corner,
		// ties keeping the earliest corner.
		got, err := multi.PostCPPRSlacksCtx(ctx, cppr.Query{Mode: mode, Corners: cppr.CornerAll})
		if err != nil {
			t.Fatal(err)
		}
		per := make([][]cppr.EndpointSlack, corners)
		for c := 0; c < corners; c++ {
			per[c], err = standalone[c].PostCPPRSlacksCtx(ctx, cppr.Query{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := range got {
			want := cppr.EndpointSlack{FF: model.FFID(i)}
			for c := 0; c < corners; c++ {
				sl := per[c][i]
				if sl.Valid && (!want.Valid || sl.Slack < want.Slack) {
					want.Slack, want.Valid, want.Corner = sl.Slack, true, model.Corner(c)
				}
			}
			if got[i] != want {
				t.Fatalf("%v FF %d: merged %+v, oracle %+v", mode, i, got[i], want)
			}
		}
	}
}

// TestMCMMBatchMatchesRun checks that ReportBatch's per-corner work
// sharing is invisible: every query — single-corner, subset, CornerAll,
// duplicates, mixed algorithms — gets exactly the report a standalone
// Run would produce (modulo timing fields).
func TestMCMMBatchMatchesRun(t *testing.T) {
	d := mcmmDesign(t, 501, 3)
	timer := cppr.NewTimer(d)
	ctx := context.Background()
	queries := []cppr.Query{
		{K: 10, Mode: model.Setup, Corners: cppr.CornerAll},
		{K: 3, Mode: model.Setup, Corners: cppr.CornerBit(1)},
		{K: 10, Mode: model.Setup, Corners: cppr.CornerAll},
		{K: 7, Mode: model.Hold, Corners: cppr.CornerBit(0) | cppr.CornerBit(2)},
		{K: 5, Mode: model.Hold},
		{K: 4, Mode: model.Setup, Algorithm: cppr.AlgoPairwise, Corners: cppr.CornerBit(2)},
		{K: -1},
	}
	results, err := timer.ReportBatch(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	if results[6].Err == nil {
		t.Fatal("invalid query did not fail in batch")
	}
	for i, q := range queries[:6] {
		if results[i].Err != nil {
			t.Fatalf("query %d: %v", i, results[i].Err)
		}
		got := results[i].Report
		want, err := timer.Run(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Corner != want.Corner || got.Corners != want.Corners || got.Degraded != want.Degraded {
			t.Fatalf("query %d: batch (corner %d, mask %#x), run (corner %d, mask %#x)",
				i, got.Corner, uint64(got.Corners), want.Corner, uint64(want.Corners))
		}
		if len(got.Paths) != len(want.Paths) {
			t.Fatalf("query %d: batch %d paths, run %d", i, len(got.Paths), len(want.Paths))
		}
		for j := range got.Paths {
			if !equalPaths(got.Paths[j], want.Paths[j]) {
				t.Fatalf("query %d rank %d: batch and run paths differ", i, j)
			}
		}
		if len(got.PathCorners) != len(want.PathCorners) {
			t.Fatalf("query %d: PathCorners %d vs %d", i, len(got.PathCorners), len(want.PathCorners))
		}
		for j := range got.PathCorners {
			if got.PathCorners[j] != want.PathCorners[j] {
				t.Fatalf("query %d rank %d: corner %d vs %d", i, j, got.PathCorners[j], want.PathCorners[j])
			}
		}
	}
}

// TestSetArcDelayAtCornerIndependence checks the edit isolation
// contract: an edit at one corner changes only that corner's timing,
// and the edited corner matches a Timer built fresh on the edited
// design.
func TestSetArcDelayAtCornerIndependence(t *testing.T) {
	d := mcmmDesign(t, 502, 3)
	timer := cppr.NewTimer(d)
	ctx := context.Background()

	report := func(tm *cppr.Timer, c model.Corner) cppr.Report {
		rep, err := tm.Run(ctx, cppr.Query{K: 10, Mode: model.Setup, Corners: cppr.CornerBit(c)})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	same := func(a, b cppr.Report) bool {
		if len(a.Paths) != len(b.Paths) {
			return false
		}
		for i := range a.Paths {
			if !equalPaths(a.Paths[i], b.Paths[i]) {
				return false
			}
		}
		return true
	}
	before := []cppr.Report{report(timer, 0), report(timer, 1), report(timer, 2)}

	// Pick a data arc on the critical path of corner 1 so the edit
	// provably moves corner 1's numbers.
	var from, to model.PinID
	found := false
	p := before[1].Paths[0]
	for i := 0; i+1 < len(p.Pins); i++ {
		if !d.IsClockPin(p.Pins[i]) {
			from, to = p.Pins[i], p.Pins[i+1]
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no data arc on corner 1's critical path")
	}
	ai := d.ArcBetween(from, to)
	old := d.ArcDelay(1, ai)
	edited := model.Window{Early: old.Early + 400, Late: old.Late + 400}
	if err := timer.SetArcDelayAt(1, from, to, edited); err != nil {
		t.Fatal(err)
	}

	if !same(before[0], report(timer, 0)) || !same(before[2], report(timer, 2)) {
		t.Fatal("corner 1 edit changed another corner's report")
	}
	after1 := report(timer, 1)
	if same(before[1], after1) {
		t.Fatal("corner 1 edit did not change corner 1's report")
	}
	nd, err := d.WithArcDelayAt(1, ai, edited)
	if err != nil {
		t.Fatal(err)
	}
	if !same(after1, report(cppr.NewTimer(nd), 1)) {
		t.Fatal("edited corner differs from a fresh Timer on the edited design")
	}

	// The reverse direction: a base-corner edit leaves extra corners
	// untouched.
	base := d.Arcs[ai].Delay
	if err := timer.SetArcDelay(from, to, model.Window{Early: base.Early + 300, Late: base.Late + 350}); err != nil {
		t.Fatal(err)
	}
	if !same(after1, report(timer, 1)) || !same(before[2], report(timer, 2)) {
		t.Fatal("base-corner edit changed an extra corner's report")
	}
	if same(before[0], report(timer, 0)) {
		t.Fatal("base-corner edit did not change the base report")
	}
}
