package cppr

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"fastcppr/internal/core"
	"fastcppr/internal/qerr"
	"fastcppr/internal/sched"
	"fastcppr/model"
)

// timerCounters aggregates cache-effectiveness counters across a timer's
// whole snapshot chain: the per-corner job caches all report into the
// shared core.CacheCounters, and the per-snapshot query memos into the
// query counters. One instance lives for the life of the Timer and is
// carried from snapshot to snapshot.
type timerCounters struct {
	job         core.CacheCounters
	queryHits   atomic.Int64
	queryMisses atomic.Int64
	// Served-traffic counters. Admitted and shed are reported by the
	// service front end (Timer.NoteServed); degraded and coalesced are
	// counted by the Timer itself as reports leave Run / ReportBatch.
	servedAdmitted  atomic.Int64
	servedShed      atomic.Int64
	servedDegraded  atomic.Int64
	servedCoalesced atomic.Int64
	// Signoff-knob usage counters: how many ApplySDC calls installed
	// each industrial-semantics knob, and how many queries resolved to
	// same_transition credit. They let operators of long-lived services
	// see which semantics their traffic actually exercises.
	sdcUncertainty     atomic.Int64
	sdcDerate          atomic.Int64
	sdcIdealClock      atomic.Int64
	sdcIODelay         atomic.Int64
	sdcCRPRMode        atomic.Int64
	crprSameTransition atomic.Int64
	// Speculation counters: forks counts Timer.Fork calls (including the
	// per-candidate forks inside WhatIf), whatifCandidates the candidate
	// edit sets scored by Timer.WhatIf, and coneSkips the cache servings
	// that crossed an edit because the journal proved the entry's cone
	// disjoint from every dirtying edit (job entries and whole-report
	// memo entries both count — each skip is a revalidation-free reuse).
	forks            atomic.Int64
	whatifCandidates atomic.Int64
	coneSkips        atomic.Int64
	// Hierarchy counters: macroExtracted counts distinct macromodel
	// extractions (elaboration and SDC re-elaboration), macroReused the
	// block instances served from the signature cache instead of being
	// extracted, and macroReextracted the single-block re-extractions
	// performed by edits landing inside an extracted block.
	macroExtracted   atomic.Int64
	macroReused      atomic.Int64
	macroReextracted atomic.Int64
}

// queryMemoMax bounds the per-snapshot query-memo size. Reports are
// O(K × path length); a query mix wider than this per edit epoch keeps
// working, it just re-runs evicted shapes (the job cache underneath
// still absorbs most of the cost).
const queryMemoMax = 128

// queryMemoEntry is one cached report. exhausted marks a report with
// fewer paths than its K: the design has no more paths of that shape,
// so the entry serves any larger K too. seq/corner/cone position the
// report on the edit journal — the entry is exact on a snapshot at
// sequence g iff no journaled edit in (seq, g] lands a source pin
// inside cone at corner — which is what lets the memo be carried
// across edits instead of dying with its snapshot. seq advances on
// every successful reuse (monotonically, so a racing reader can only
// shorten a later walk, never extend validity).
type queryMemoEntry struct {
	k         int
	exhausted bool
	rep       Report
	// storeSeq is the journal sequence the report was computed at,
	// immutable; seq is the advancing watermark (seq >= storeSeq).
	// Fork needs the distinction: an entry computed on the shared
	// prefix survives with its watermark clamped, one computed past
	// the fork point reflects the parent's divergent edits and must go.
	storeSeq uint64
	seq      atomic.Uint64
	corner   model.Corner
	cone     *model.PinSet
}

// advanceSeq bumps the entry's validation watermark to seq, never
// moving it backward.
func (e *queryMemoEntry) advanceSeq(seq uint64) {
	for {
		cur := e.seq.Load()
		if cur >= seq || e.seq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// queryMemo caches whole normalized-query reports across a snapshot
// chain — the cross-call extension of ReportBatch's in-call dedup.
// Keys are single-corner queries with Threads erased and, like the
// batch grouping, K erased: a top-k report is the k-prefix of any
// larger exact report, so one max-K entry serves every smaller K.
// Soundness across edits comes from per-entry journal validation
// (queryMemoEntry.seq/corner/cone): within one journal position a
// normalized query is a pure function of the immutable engines, and an
// entry only crosses an edit when the journal proves the edit cannot
// reach its cone. Rebuilding edits (clock arcs, ApplySDC) discard the
// memo wholesale with the rest of the derived state.
//
// Safe for concurrent use, with a lock-free read path: idx holds an
// atomic pointer to an immutable map, so a lookup under the batch
// executor never serializes worker threads. Writers copy the map under
// mu and publish the successor atomically (entries themselves are
// immutable once stored).
type queryMemo struct {
	idx atomic.Pointer[map[Query]*queryMemoEntry]
	mu  sync.Mutex // serializes writers (store) only
}

func newQueryMemo() *queryMemo {
	m := &queryMemo{}
	empty := make(map[Query]*queryMemoEntry)
	m.idx.Store(&empty)
	return m
}

// queryMemoKey normalizes q into its memo key for corner c. Timeout is
// erased alongside Threads: neither changes what a completed report
// contains, only how the run was scheduled.
func queryMemoKey(q Query, c model.Corner) Query {
	q.Threads = 0
	q.Timeout = 0
	q.Corners = CornerBit(c)
	q.K = 0
	return q
}

// lookup returns the entry covering key at budget k, if any — the
// caller validates it against the journal before serving. Lock-free:
// one atomic load of the current map.
func (m *queryMemo) lookup(key Query, k int) *queryMemoEntry {
	e, ok := (*m.idx.Load())[key]
	if !ok || (e.k < k && !e.exhausted) {
		return nil
	}
	return e
}

// store records a successful report computed at budget k and journal
// sequence seq, keeping the larger-K entry when two runs race — unless
// the incumbent is older on the journal, in which case the fresh report
// replaces it outright (the incumbent was computed before an edit the
// newcomer has seen; its larger K covers stale data). At capacity an
// arbitrary entry is evicted — the memo is a bounded accelerator, not a
// registry. The successor map is built under mu and published with one
// atomic store, so concurrent lookups always see a complete map.
func (m *queryMemo) store(key Query, k int, rep Report, seq uint64, corner model.Corner, cone *model.PinSet) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.idx.Load()
	if e, ok := old[key]; ok {
		if e.k >= k && e.seq.Load() >= seq {
			return
		}
	}
	next := make(map[Query]*queryMemoEntry, len(old)+1)
	for ok, ov := range old {
		next[ok] = ov
	}
	if _, ok := next[key]; !ok && len(next) >= queryMemoMax {
		for victim := range next {
			delete(next, victim)
			break
		}
	}
	e := &queryMemoEntry{k: k, exhausted: len(rep.Paths) < k, rep: rep, storeSeq: seq, corner: corner, cone: cone}
	e.seq.Store(seq)
	next[key] = e
	m.idx.Store(&next)
}

// fork returns an isolated copy of the memo for a snapshot forked at
// journal sequence atSeq. Entries computed past the fork point (a
// concurrent parent edit may have published them) are dropped; the
// rest are copied (reports shared — they are immutable) with
// watermarks clamped to atSeq, because a watermark proves cleanliness
// along the PARENT's chain only and the chains diverge past the fork.
func (m *queryMemo) fork(atSeq uint64) *queryMemo {
	nm := newQueryMemo()
	old := *m.idx.Load()
	next := make(map[Query]*queryMemoEntry, len(old))
	for k, e := range old {
		if e.storeSeq > atSeq {
			continue
		}
		w := e.seq.Load()
		if w > atSeq {
			w = atSeq
		}
		ne := &queryMemoEntry{k: e.k, exhausted: e.exhausted, rep: e.rep, storeSeq: e.storeSeq, corner: e.corner, cone: e.cone}
		ne.seq.Store(w)
		next[k] = ne
	}
	nm.idx.Store(&next)
	return nm
}

// execute runs one normalized query against corner c, serving it from
// the snapshot's query memo when possible. Only AlgoLCA reports are
// memoized (the baselines exist for comparison studies, where cached
// timings would mislead), and Query.NoCache bypasses the memo entirely.
// Errors are never cached. A non-nil tc threads the executor context
// down to the engine (see snapshot.runOn).
func (s *snapshot) execute(ctx context.Context, q Query, c model.Corner, tc *sched.TC) (Report, error) {
	if q.Algorithm != AlgoLCA || q.NoCache || s.memo == nil {
		return s.runOn(ctx, q, s.corner(c), tc)
	}
	// The cancellation contract holds even when the answer is free: a
	// canceled query errors, it does not serve from cache.
	if err := qerr.FromContext(ctx); err != nil {
		return Report{}, err
	}
	start := time.Now()
	key := queryMemoKey(q, c)
	if e := s.memo.lookup(key, q.K); e != nil {
		// The entry may predate this snapshot; it serves iff the journal
		// proves no edit since its watermark lands in its cone at its
		// corner. A cross-edit serving skips the whole query — job
		// revalidation included — and counts as a cone skip.
		eseq := e.seq.Load()
		if !s.journal.DirtySince(eseq, e.corner, e.cone) {
			if eseq < s.seq {
				s.ctr.coneSkips.Add(1)
			}
			e.advanceSeq(s.seq)
			s.ctr.queryHits.Add(1)
			rep := clipReport(e.rep, q.K)
			rep.Elapsed = time.Since(start)
			return rep, nil
		}
	}
	s.ctr.queryMisses.Add(1)
	ce := s.corner(c)
	rep, err := s.runOn(ctx, q, ce, tc)
	if err != nil {
		return Report{}, err
	}
	s.memo.store(key, q.K, rep, s.seq, c, ce.tree.LaunchCone())
	return rep, nil
}

// TimerStats is Timer.Stats's snapshot of the incremental-machinery
// counters: how much work the edit→requery loop is actually saving.
type TimerStats struct {
	// EditSeq is the current snapshot's edit-journal sequence number:
	// the number of journaled (non-rebuilding) edits since the last full
	// rebuild.
	EditSeq uint64 `json:"edit_seq"`
	// IncrRecomputed is the cumulative number of pin recomputations the
	// incremental graph-arrival engine performed across the snapshot
	// chain — the incremental-substrate work that replaced full
	// repropagations.
	IncrRecomputed int `json:"incr_recomputed"`
	// JobCache* count candidate-generation job memoization outcomes
	// across all corners since the Timer was built. Invalidated is the
	// subset of misses caused by an edit landing inside a cached job's
	// cone.
	JobCacheHits        int64 `json:"job_cache_hits"`
	JobCacheMisses      int64 `json:"job_cache_misses"`
	JobCacheInvalidated int64 `json:"job_cache_invalidated"`
	// JobCachePatched is the subset of misses served by patching the
	// job's retained propagation instead of re-running it from scratch.
	JobCachePatched int64 `json:"job_cache_patched"`
	// QueryMemo* count whole-report memoization outcomes (AlgoLCA
	// queries repeated on an unedited snapshot).
	QueryMemoHits   int64 `json:"query_memo_hits"`
	QueryMemoMisses int64 `json:"query_memo_misses"`
	// Served* are the served-traffic counters of the service front end
	// (internal/serve) and the batch executor. Admitted and shed are
	// reported by the admission controller via NoteServed; degraded
	// counts reports returned with Report.Degraded set, and coalesced
	// counts batch queries served by an execution unit shared with at
	// least one other query.
	ServedAdmitted  int64 `json:"served_admitted"`
	ServedShed      int64 `json:"served_shed"`
	ServedDegraded  int64 `json:"served_degraded"`
	ServedCoalesced int64 `json:"served_coalesced"`
	// Sdc* count ApplySDC calls that installed each signoff knob
	// (clock uncertainty, timing derates, ideal clocks, I/O delays,
	// an explicit CRPR mode); CRPRSameTransition counts queries that
	// resolved to same_transition credit semantics.
	SdcUncertainty     int64 `json:"sdc_uncertainty_applied"`
	SdcDerate          int64 `json:"sdc_derate_applied"`
	SdcIdealClock      int64 `json:"sdc_ideal_clock_applied"`
	SdcIODelay         int64 `json:"sdc_io_delay_applied"`
	SdcCRPRMode        int64 `json:"sdc_crpr_mode_applied"`
	CRPRSameTransition int64 `json:"crpr_same_transition_queries"`
	// Speculation counters: Forks counts Timer.Fork calls (WhatIf's
	// per-candidate forks included), WhatIfCandidates the candidate edit
	// sets scored by Timer.WhatIf, and ConeSkips the cache servings that
	// crossed an edit because the journal proved the entry's cone
	// disjoint from every dirtying edit.
	Forks            int64 `json:"forks"`
	WhatIfCandidates int64 `json:"whatif_candidates"`
	ConeSkips        int64 `json:"cone_skips"`
	// Hierarchy counters (NewHierTimer): MacroExtracted counts distinct
	// macromodel extractions, MacroReused the block instances that
	// shared an already-extracted model (the N-instance reuse win), and
	// MacroReextracted the single-block re-extractions triggered by
	// edits inside an extracted block — the counter that pins "an edit
	// dirties one macromodel, not the global graph".
	MacroExtracted   int64 `json:"macromodels_extracted"`
	MacroReused      int64 `json:"macromodel_reuses"`
	MacroReextracted int64 `json:"macromodel_reextracted"`
}

// Stats reports the timer's incremental-machinery counters. Counters
// accumulate for the life of the Timer (they survive edits and
// rebuilds); EditSeq and IncrRecomputed describe the current snapshot
// chain.
func (t *Timer) Stats() TimerStats {
	s := t.snap.Load()
	return TimerStats{
		EditSeq:             s.seq,
		IncrRecomputed:      s.base.pre.Recomputed(),
		JobCacheHits:        s.ctr.job.Hits.Load(),
		JobCacheMisses:      s.ctr.job.Misses.Load(),
		JobCacheInvalidated: s.ctr.job.Invalidated.Load(),
		JobCachePatched:     s.ctr.job.Patched.Load(),
		QueryMemoHits:       s.ctr.queryHits.Load(),
		QueryMemoMisses:     s.ctr.queryMisses.Load(),
		ServedAdmitted:      s.ctr.servedAdmitted.Load(),
		ServedShed:          s.ctr.servedShed.Load(),
		ServedDegraded:      s.ctr.servedDegraded.Load(),
		ServedCoalesced:     s.ctr.servedCoalesced.Load(),
		SdcUncertainty:      s.ctr.sdcUncertainty.Load(),
		SdcDerate:           s.ctr.sdcDerate.Load(),
		SdcIdealClock:       s.ctr.sdcIdealClock.Load(),
		SdcIODelay:          s.ctr.sdcIODelay.Load(),
		SdcCRPRMode:         s.ctr.sdcCRPRMode.Load(),
		CRPRSameTransition:  s.ctr.crprSameTransition.Load(),
		Forks:               s.ctr.forks.Load(),
		WhatIfCandidates:    s.ctr.whatifCandidates.Load(),
		ConeSkips:           s.ctr.coneSkips.Load(),
		MacroExtracted:      s.ctr.macroExtracted.Load(),
		MacroReused:         s.ctr.macroReused.Load(),
		MacroReextracted:    s.ctr.macroReextracted.Load(),
	}
}

// NoteServed adds to the served-traffic counters reported by Stats():
// the service front end calls it at admission time with the number of
// requests admitted to this timer and the number shed (load-shedding or
// shutdown refusals). Degraded and coalesced outcomes are counted by
// the Timer itself. Safe for concurrent use; counters survive edits.
func (t *Timer) NoteServed(admitted, shed int64) {
	ctr := t.snap.Load().ctr
	if admitted != 0 {
		ctr.servedAdmitted.Add(admitted)
	}
	if shed != 0 {
		ctr.servedShed.Add(shed)
	}
}
