package cppr

import "fastcppr/internal/qerr"

// The typed error taxonomy of the query path. Every error returned by
// Run / ReportBatch / PostCPPRSlacksCtx matches exactly one sentinel
// under errors.Is, or is an *InternalError matchable with errors.As:
//
//	ErrCanceled          the query's context was canceled; also matches
//	                     context.Canceled
//	ErrDeadlineExceeded  the query's deadline passed; also matches
//	                     context.DeadlineExceeded
//	ErrBudgetExhausted   a budgeted baseline search (Blockwise MaxTuples,
//	                     BranchAndBound MaxPops) hit its limit without
//	                     producing a usable result — note that budget
//	                     exhaustion normally degrades (Report.Degraded)
//	                     rather than erroring
//	ErrInvalidQuery      malformed query: negative K, out-of-range
//	                     endpoint, unsupported algorithm combination
//	ErrOverloaded        the service front end shed the request under
//	                     load (admission queue full); never admitted,
//	                     safe to retry after a backoff
//	ErrShuttingDown      the service front end is draining for shutdown
//	                     and refused the request
var (
	ErrCanceled         = qerr.ErrCanceled
	ErrDeadlineExceeded = qerr.ErrDeadlineExceeded
	ErrBudgetExhausted  = qerr.ErrBudgetExhausted
	ErrInvalidQuery     = qerr.ErrInvalidQuery
	ErrOverloaded       = qerr.ErrOverloaded
	ErrShuttingDown     = qerr.ErrShuttingDown
)

// InternalError is a contained invariant violation: a panic inside a
// query worker (for example the engine's negative-deviation-cost check
// firing on a poisoned design), recovered and converted into an error so
// the process survives. It carries the panic message and the panicking
// goroutine's stack; match with errors.As:
//
//	var ie *cppr.InternalError
//	if errors.As(err, &ie) { log.Printf("engine bug: %s\n%s", ie.Msg, ie.Stack) }
type InternalError = qerr.InternalError
