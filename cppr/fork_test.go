package cppr

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
)

// bumpArc returns the edit that adds late delay to data arc ai.
func bumpArc(d *model.Design, ai int, late model.Time) (model.PinID, model.PinID, model.Window) {
	arc := d.Arcs[ai]
	return arc.From, arc.To, model.Window{Early: arc.Delay.Early, Late: arc.Delay.Late + late}
}

// TestForkIsolation: a fork is a two-way isolation boundary. Child
// edits never reach the parent, parent edits after the fork never reach
// the child, and both sides stay byte-identical to fresh timers over
// their respective designs — including a fork-of-fork chain.
func TestForkIsolation(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(41))
	parent := NewTimer(d)
	q := Query{K: 30, Mode: model.Setup}
	rng := rand.New(rand.NewSource(9))

	// Prime the parent, fork, then edit both sides differently.
	mustRun(t, parent, q)
	child := parent.Fork()
	grand := child.Fork() // fork-of-fork, kept unedited at the fork point

	aiC := pickDataArc(t, d, rng)
	from, to, nw := bumpArc(d, aiC, 500)
	if err := child.SetArcDelay(from, to, nw); err != nil {
		t.Fatal(err)
	}
	aiP := pickDataArc(t, d, rng)
	fromP, toP, nwP := bumpArc(d, aiP, 900)
	if err := parent.SetArcDelay(fromP, toP, nwP); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name  string
		timer *Timer
	}{
		{"parent", parent},
		{"child", child},
		{"grandchild", grand},
	} {
		nd := tc.timer.Design()
		got := reportBytes(t, nd, mustRun(t, tc.timer, q), q.Mode, q.K)
		want := reportBytes(t, nd, mustRun(t, NewTimer(nd), q), q.Mode, q.K)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: forked timer differs from fresh timer:\n%s\nvs\n%s", tc.name, got, want)
		}
	}
	// The grandchild froze the pre-edit state: its design must be the
	// original, not either edited descendant.
	if grand.Design() != d {
		t.Fatal("unedited grandchild does not share the original design")
	}
	if st := parent.Stats(); st.Forks != 2 {
		t.Fatalf("Forks = %d, want 2 (counters shared across the family)", st.Forks)
	}
}

// TestForkConcurrentParentEdits: child WhatIf racing parent edits. Run
// under -race this is the memory-safety check for the shared cache
// substrate; the assertions check the child keeps scoring against its
// frozen fork point regardless of parent churn.
func TestForkConcurrentParentEdits(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(43))
	parent := NewTimer(d)
	q := Query{K: 20, Mode: model.Setup}
	mustRun(t, parent, q)

	rng := rand.New(rand.NewSource(17))
	candidates := make([]EditSet, 6)
	for i := range candidates {
		from, to, nw := bumpArc(d, pickDataArc(t, d, rng), model.Time(100+50*i))
		candidates[i] = EditSet{{Corner: model.BaseCorner, From: from, To: to, Delay: nw}}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	editRng := rand.New(rand.NewSource(18))
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			from, to, nw := bumpArc(parent.Design(), pickDataArc(t, parent.Design(), editRng), 70)
			if err := parent.SetArcDelay(from, to, nw); err != nil {
				t.Error(err)
				return
			}
			mustRun(t, parent, q)
		}
	}()

	child := parent.Fork()
	frozen := child.Design()
	res, err := child.WhatIf(context.Background(), candidates, []Query{q})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// Every candidate must have been scored against the frozen design,
	// not whatever the parent mutated into meanwhile.
	for ci, sc := range res.Candidates {
		if sc.Err != nil {
			t.Fatalf("candidate %d: %v", ci, sc.Err)
		}
		ref := NewTimer(frozen)
		ed := candidates[ci][0]
		if err := ref.SetArcDelayAt(ed.Corner, ed.From, ed.To, ed.Delay); err != nil {
			t.Fatal(err)
		}
		got := reportBytes(t, ref.Design(), sc.Reports[0], q.Mode, q.K)
		want := reportBytes(t, ref.Design(), mustRun(t, ref, q), q.Mode, q.K)
		if !bytes.Equal(got, want) {
			t.Fatalf("candidate %d: speculative report differs from fresh timer:\n%s\nvs\n%s", ci, got, want)
		}
	}
}

// TestWhatIfWorkerInvariance: WhatIf reports are byte-identical to a
// fresh timer with the same edits, at every worker count — the
// determinism contract of the speculative engine.
func TestWhatIfWorkerInvariance(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(47))
	queries := []Query{
		{K: 15, Mode: model.Setup},
		{K: 15, Mode: model.Hold},
	}
	rng := rand.New(rand.NewSource(23))
	candidates := make([]EditSet, 5)
	for i := range candidates {
		from, to, nw := bumpArc(d, pickDataArc(t, d, rng), model.Time(200+40*i))
		candidates[i] = EditSet{{Corner: model.BaseCorner, From: from, To: to, Delay: nw}}
	}
	// Reference: a fresh timer per candidate, single-threaded.
	refBytes := make([][][]byte, len(candidates))
	for ci, es := range candidates {
		ref := NewTimer(d)
		for _, ed := range es {
			if err := ref.SetArcDelayAt(ed.Corner, ed.From, ed.To, ed.Delay); err != nil {
				t.Fatal(err)
			}
		}
		refBytes[ci] = make([][]byte, len(queries))
		for qi, q := range queries {
			refBytes[ci][qi] = reportBytes(t, ref.Design(), mustRun(t, ref, q), q.Mode, q.K)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		timer := NewTimer(d)
		timer.SetParallelism(Parallelism{Workers: workers, QueryThreads: 1})
		res, err := timer.WhatIf(context.Background(), candidates, queries)
		if err != nil {
			t.Fatal(err)
		}
		for ci, sc := range res.Candidates {
			if sc.Err != nil {
				t.Fatalf("workers=%d candidate %d: %v", workers, ci, sc.Err)
			}
			for qi, q := range queries {
				got := reportBytes(t, timer.Design(), sc.Reports[qi], q.Mode, q.K)
				if !bytes.Equal(got, refBytes[ci][qi]) {
					t.Fatalf("workers=%d candidate %d query %d: speculative report differs from fresh timer:\n%s\nvs\n%s",
						workers, ci, qi, got, refBytes[ci][qi])
				}
			}
		}
		if st := timer.Stats(); st.WhatIfCandidates != int64(len(candidates)) {
			t.Fatalf("workers=%d: WhatIfCandidates = %d, want %d", workers, st.WhatIfCandidates, len(candidates))
		}
	}
}

// TestWarmEditNoFullReruns is the single-corner warm-path regression
// guard: after priming, an edit→requery round must do strictly less
// work than a cold run — every job-cache miss it takes must be served
// by patching a retained propagation, never by a full re-run — and a
// repeat query with no intervening edit must be a pure query-memo hit.
func TestWarmEditNoFullReruns(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(53))
	timer := NewTimer(d)
	q := Query{K: 40, Mode: model.Setup}
	rng := rand.New(rand.NewSource(29))

	mustRun(t, timer, q) // cold prime: populates caches and retained props
	for step := 0; step < 4; step++ {
		from, to, nw := bumpArc(timer.Design(), pickDataArc(t, timer.Design(), rng), model.Time(60+10*step))
		if err := timer.SetArcDelay(from, to, nw); err != nil {
			t.Fatal(err)
		}
		before := timer.Stats()
		mustRun(t, timer, q)
		after := timer.Stats()
		misses := after.JobCacheMisses - before.JobCacheMisses
		patched := after.JobCachePatched - before.JobCachePatched
		if misses != patched {
			t.Fatalf("step %d: warm requery re-ran %d of %d dirtied jobs from scratch (patched %d)",
				step, misses-patched, misses, patched)
		}
		// No edit since: the repeat must be one whole-report memo hit.
		mid := timer.Stats()
		mustRun(t, timer, q)
		rep := timer.Stats()
		if rep.QueryMemoHits != mid.QueryMemoHits+1 || rep.JobCacheMisses != mid.JobCacheMisses {
			t.Fatalf("step %d: repeat query was not a pure memo hit: %+v -> %+v", step, mid, rep)
		}
	}
	if st := timer.Stats(); st.JobCachePatched == 0 {
		t.Fatal("no job was ever served by patching")
	}
}
