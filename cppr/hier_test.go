package cppr

import (
	"context"
	"testing"

	"fastcppr/gen"
	"fastcppr/model"
	"fastcppr/sdc"
)

func blockedHierDesign(t *testing.T, seed int64) *model.Design {
	t.Helper()
	spec := gen.BlockedArray(seed)
	spec.Instances = 5
	spec.Layers = 7
	d := gen.MustGenerateBlocked(spec)
	d, _, err := d.WithScaledCorner("slow", 1.1, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// assertTimersAgree checks two timers report value-identical top-1
// slacks and per-endpoint post-CPPR slacks for every corner and mode.
func assertTimersAgree(t *testing.T, label string, a, b *Timer, numCorners int) {
	t.Helper()
	ctx := context.Background()
	for c := model.Corner(0); int(c) < numCorners; c++ {
		for _, mode := range model.Modes {
			q := Query{K: 1, Mode: mode, Corners: CornerBit(c)}
			ra, err := a.Run(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := b.Run(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			wa, oka := ra.WorstSlack()
			wb, okb := rb.WorstSlack()
			if oka != okb || wa != wb {
				t.Fatalf("%s corner %d %v: top-1 %d(%v) vs %d(%v)", label, c, mode, wa, oka, wb, okb)
			}
			sa, err := a.PostCPPRSlacksCtx(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := b.PostCPPRSlacksCtx(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if len(sa) != len(sb) {
				t.Fatalf("%s corner %d %v: %d vs %d endpoints", label, c, mode, len(sa), len(sb))
			}
			for i := range sa {
				if sa[i] != sb[i] {
					t.Fatalf("%s corner %d %v endpoint %d: %+v vs %+v", label, c, mode, i, sa[i], sb[i])
				}
			}
		}
	}
}

// internalArcOf returns a flat arc index inside an extracted block and,
// separately, a kept data arc (both endpoints survive elaboration).
func hierArcSamples(t *testing.T, ht *Timer) (internal, kept int32) {
	t.Helper()
	hs := ht.snap.Load().hier
	if hs == nil {
		t.Fatal("timer is not hierarchical")
	}
	internal, kept = -1, -1
	fd := hs.flat
	for ai := range fd.Arcs {
		if hs.h.FlatToTopArc[ai] < 0 {
			if internal < 0 {
				internal = int32(ai)
			}
		} else if kept < 0 && fd.Pins[fd.Arcs[ai].From].Kind == model.FFOutput {
			kept = int32(ai) // Q -> block input crossing arc
		}
	}
	if internal < 0 || kept < 0 {
		t.Fatalf("no internal/kept arc samples (internal=%d kept=%d)", internal, kept)
	}
	return internal, kept
}

func TestNewHierTimerMatchesFlat(t *testing.T) {
	d := blockedHierDesign(t, 21)
	ht, err := NewHierTimer(d, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ht.Hierarchical() {
		t.Fatal("Hierarchical() = false")
	}
	if ht.FlatDesign() != d {
		t.Fatal("FlatDesign is not the elaboration source")
	}
	if ht.Design().NumArcs() >= d.NumArcs() {
		t.Fatalf("no compression: %d reduced arcs vs %d flat", ht.Design().NumArcs(), d.NumArcs())
	}
	st := ht.Stats()
	if st.MacroExtracted != 1 || st.MacroReused != 4 {
		t.Fatalf("extracted=%d reused=%d, want 1/4", st.MacroExtracted, st.MacroReused)
	}
	assertTimersAgree(t, "fresh", NewTimer(d), ht, d.NumCorners())
}

func TestHierEditInternalArcReextractsOneBlock(t *testing.T) {
	d := blockedHierDesign(t, 22)
	ht, err := NewHierTimer(d, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	internal, _ := hierArcSamples(t, ht)
	a := d.Arcs[internal]
	for i, c := range []model.Corner{model.BaseCorner, 1} {
		nw := model.Window{Early: 2, Late: 400 + model.Time(i)}
		if err := ht.SetArcDelayAt(c, a.From, a.To, nw); err != nil {
			t.Fatal(err)
		}
		if got := ht.Stats().MacroReextracted; got != int64(i+1) {
			t.Fatalf("after edit %d: MacroReextracted = %d, want %d", i, got, i+1)
		}
		fd := ht.FlatDesign()
		if fd.ArcDelay(c, internal) != nw {
			t.Fatalf("flat design not updated: %+v", fd.ArcDelay(c, internal))
		}
		assertTimersAgree(t, "after internal edit", NewTimer(fd), ht, d.NumCorners())
	}
	// The edit touched one block; the other instances still share the
	// original model, so no additional extractions were counted.
	if st := ht.Stats(); st.MacroExtracted != 1 {
		t.Fatalf("MacroExtracted grew to %d on the edit path", st.MacroExtracted)
	}
}

func TestHierEditKeptArcForwardsWithoutReextraction(t *testing.T) {
	d := blockedHierDesign(t, 23)
	ht, err := NewHierTimer(d, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, kept := hierArcSamples(t, ht)
	a := d.Arcs[kept]
	if err := ht.SetArcDelayAt(model.BaseCorner, a.From, a.To, model.Window{Early: 5, Late: 300}); err != nil {
		t.Fatal(err)
	}
	if got := ht.Stats().MacroReextracted; got != 0 {
		t.Fatalf("kept-arc edit re-extracted %d blocks", got)
	}
	assertTimersAgree(t, "after kept edit", NewTimer(ht.FlatDesign()), ht, d.NumCorners())
}

func TestHierEditClockArcRebuilds(t *testing.T) {
	d := blockedHierDesign(t, 24)
	ht, err := NewHierTimer(d, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Any clock-tree arc is kept verbatim; editing it takes the inner
	// full-rebuild path and must leave hierarchical mode intact.
	var from, to model.PinID = model.NoPin, model.NoPin
	for ai := range d.Arcs {
		if d.Pins[d.Arcs[ai].From].Kind == model.ClockRoot {
			from, to = d.Arcs[ai].From, d.Arcs[ai].To
			break
		}
	}
	if from == model.NoPin {
		t.Fatal("no clock root arc")
	}
	if err := ht.SetArcDelayAt(model.BaseCorner, from, to, model.Window{Early: 90, Late: 140}); err != nil {
		t.Fatal(err)
	}
	if !ht.Hierarchical() {
		t.Fatal("clock edit dropped hierarchical mode")
	}
	assertTimersAgree(t, "after clock edit", NewTimer(ht.FlatDesign()), ht, d.NumCorners())
}

func TestHierForkIsolation(t *testing.T) {
	d := blockedHierDesign(t, 25)
	parent, err := NewHierTimer(d, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	child := parent.Fork()
	if !child.Hierarchical() {
		t.Fatal("fork dropped hierarchical mode")
	}
	internal, _ := hierArcSamples(t, child)
	a := d.Arcs[internal]
	if err := child.SetArcDelayAt(model.BaseCorner, a.From, a.To, model.Window{Early: 1, Late: 777}); err != nil {
		t.Fatal(err)
	}
	if parent.FlatDesign() != d {
		t.Fatal("child edit leaked into parent's flat design")
	}
	assertTimersAgree(t, "parent unchanged", NewTimer(d), parent, d.NumCorners())
	assertTimersAgree(t, "child edited", NewTimer(child.FlatDesign()), child, d.NumCorners())
}

func TestHierWhatIfCandidatesAreFlatAddressed(t *testing.T) {
	d := blockedHierDesign(t, 26)
	ht, err := NewHierTimer(d, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	internal, kept := hierArcSamples(t, ht)
	ia, ka := d.Arcs[internal], d.Arcs[kept]
	candidates := []EditSet{
		{{Corner: model.BaseCorner, From: ia.From, To: ia.To, Delay: model.Window{Early: 1, Late: 500}}},
		{{Corner: model.BaseCorner, From: ka.From, To: ka.To, Delay: model.Window{Early: 0, Late: 1}}},
	}
	queries := []Query{
		{K: 4, Mode: model.Setup},
		{K: 4, Mode: model.Hold, Corners: CornerBit(1)},
	}
	res, err := ht.WhatIf(context.Background(), candidates, queries)
	if err != nil {
		t.Fatal(err)
	}
	for ci, cand := range candidates {
		sc := res.Candidates[ci]
		if sc.Err != nil {
			t.Fatalf("candidate %d: %v", ci, sc.Err)
		}
		// Reference: a fresh hierarchical timer on the edited flat design.
		nd := d.CloneWithArcs()
		for _, ed := range cand {
			ai := nd.ArcBetween(ed.From, ed.To)
			var err error
			if ed.Corner == model.BaseCorner {
				nd.Arcs[ai].Delay = ed.Delay
			} else if nd, err = nd.WithArcDelayAt(ed.Corner, ai, ed.Delay); err != nil {
				t.Fatal(err)
			}
		}
		ref, err := NewHierTimer(nd, HierOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			want, err := ref.Run(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			ww, wok := want.WorstSlack()
			gw, gok := sc.Reports[qi].WorstSlack()
			if wok != gok || ww != gw {
				t.Fatalf("candidate %d query %d: %d(%v), want %d(%v)", ci, qi, gw, gok, ww, wok)
			}
		}
	}
	if st := ht.Stats(); st.WhatIfCandidates != 2 {
		t.Fatalf("WhatIfCandidates = %d", st.WhatIfCandidates)
	}
}

func TestHierApplySDCMatchesFlat(t *testing.T) {
	d := blockedHierDesign(t, 27)
	c := sdc.New()
	c.Period = d.Period + 35
	c.DerateLate = 1.05
	c.Uncertainty[model.Setup] = 9
	c.HasUncertainty[model.Setup] = true
	c.FalseFrom[d.FFs[0].Name] = true

	ft := NewTimer(d)
	if _, err := ft.ApplySDC(c); err != nil {
		t.Fatal(err)
	}
	ht, err := NewHierTimer(d, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nd, err := ht.ApplySDC(c)
	if err != nil {
		t.Fatal(err)
	}
	if !ht.Hierarchical() {
		t.Fatal("ApplySDC dropped hierarchical mode")
	}
	if ht.FlatDesign() != nd {
		t.Fatal("FlatDesign is not the constrained design")
	}
	assertTimersAgree(t, "after sdc", ft, ht, d.NumCorners())
}

func TestHierWarmServingAcrossEdits(t *testing.T) {
	d := blockedHierDesign(t, 28)
	ht, err := NewHierTimer(d, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := Query{K: 3, Mode: model.Setup}
	if _, err := ht.Run(ctx, q); err != nil {
		t.Fatal(err)
	}
	before := ht.Stats()
	if _, err := ht.Run(ctx, q); err != nil {
		t.Fatal(err)
	}
	after := ht.Stats()
	if after.QueryMemoHits <= before.QueryMemoHits {
		t.Fatalf("repeat query missed the memo (hits %d -> %d)", before.QueryMemoHits, after.QueryMemoHits)
	}
	// An internal edit invalidates through the journal like any other
	// edit; the next run recomputes and stays correct.
	internal, _ := hierArcSamples(t, ht)
	a := d.Arcs[internal]
	if err := ht.SetArcDelayAt(model.BaseCorner, a.From, a.To, model.Window{Early: 3, Late: 600}); err != nil {
		t.Fatal(err)
	}
	assertTimersAgree(t, "warm after edit", NewTimer(ht.FlatDesign()), ht, d.NumCorners())
}
