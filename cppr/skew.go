package cppr

import (
	"fastcppr/internal/qerr"
	"fastcppr/model"
)

// ClockSkewEntry is one clock domain's worst-skew summary, the
// report_clock_skew-style companion to the path reports: the largest
// CRPR-corrected launch/capture clock-arrival divergence over the
// domain's FF clock pins.
type ClockSkewEntry struct {
	// Clock is the domain's source pin name.
	Clock string `json:"clock"`
	// FFs is the number of flip-flops clocked by the domain.
	FFs int `json:"ffs"`
	// Setup is the worst (most negative) setup skew: min over FF pairs
	// (launch l, capture c) of early(c) - late(l) + credit(l, c). Hold
	// is its exact negative (the worst hold skew). Both are 0 for
	// domains with at most one FF or no FFs at all.
	Setup model.Time `json:"setup"`
	Hold  model.Time `json:"hold"`
	// Corner is the delay corner the skews were computed at.
	Corner model.Corner `json:"corner"`
}

// ClockSkew reports the worst CRPR-corrected clock skew of every clock
// domain at one delay corner, in one O(#clock pins) pass — no path
// search. crpr selects the credit semantics; CRPRDefault follows the
// timer's SDC default, like a Query would. Domains are reported in
// deterministic clock-tree order.
func (t *Timer) ClockSkew(c model.Corner, crpr CRPRSetting) ([]ClockSkewEntry, error) {
	s := t.snap.Load()
	if c < 0 || int(c) >= s.numCorners() {
		return nil, qerr.Invalid("corner %d out of range (design has %d corners)", int32(c), s.numCorners())
	}
	switch crpr {
	case CRPRDefault:
		crpr = crprSettingOf(s.crprDefault)
	case CRPRSamePin, CRPRSameTransition:
	default:
		return nil, qerr.Invalid("unknown CRPR setting %d", int(crpr))
	}
	ce := s.corner(c)
	raw := ce.tree.ClockSkew(crpr.mode())
	out := make([]ClockSkewEntry, len(raw))
	for i, r := range raw {
		out[i] = ClockSkewEntry{
			Clock:  ce.d.PinName(r.Root),
			FFs:    r.FFs,
			Setup:  r.Setup,
			Hold:   r.Hold,
			Corner: c,
		}
	}
	return out, nil
}
