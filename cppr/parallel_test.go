package cppr_test

import (
	"bytes"
	"context"
	"testing"

	"fastcppr/cppr"
	"fastcppr/gen"
	"fastcppr/model"
)

// batchBytes runs a batch and serialises every report with Elapsed
// zeroed, failing on any per-query error.
func batchBytes(t *testing.T, d *model.Design, timer *cppr.Timer, queries []cppr.Query) [][]byte {
	t.Helper()
	results, err := timer.ReportBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		out[i] = reportBytes(t, d, r.Report, queries[i].Mode, queries[i].K)
	}
	return out
}

// TestParallelismWorkersDeterminism is the executor battery: the same
// mixed batch — sparse-kernel single-corner queries, multi-corner
// fan-outs, both modes — must serialise byte-identically under worker
// budgets 1, 2 and 8. The 1-worker run is the reference; every other
// budget only changes which deque a unit runs on.
func TestParallelismWorkersDeterminism(t *testing.T) {
	d := mcmmDesign(t, 710, 3)
	queries := []cppr.Query{
		{K: 50, Mode: model.Setup},
		{K: 10, Mode: model.Hold, Corners: cppr.CornerAll},
		{K: 25, Mode: model.Setup, Corners: cppr.CornerBit(1) | cppr.CornerBit(2)},
		{K: 5, Mode: model.Hold},
		{K: 50, Mode: model.Setup, DenseKernel: true},
	}
	ref := func() [][]byte {
		timer := cppr.NewTimer(d)
		timer.SetParallelism(cppr.Parallelism{Workers: 1, QueryThreads: 1})
		return batchBytes(t, d, timer, queries)
	}()
	for _, workers := range []int{2, 8} {
		timer := cppr.NewTimer(d)
		timer.SetParallelism(cppr.Parallelism{Workers: workers, QueryThreads: workers})
		got := batchBytes(t, d, timer, queries)
		for i := range ref {
			if !bytes.Equal(ref[i], got[i]) {
				t.Fatalf("workers %d query %d differs from 1-worker reference:\n%s\n---\n%s",
					workers, i, ref[i], got[i])
			}
		}
	}
}

// TestParallelismStealHeavySkew: one giant unit plus many tiny ones —
// the shape that starves a static splitter, because the giant unit's
// jobs must be stolen by workers that finished their tiny units. The
// results must still match the serial reference exactly.
func TestParallelismStealHeavySkew(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(33))
	queries := []cppr.Query{{K: 400, Mode: model.Setup}}
	for i := 0; i < 15; i++ {
		queries = append(queries, cppr.Query{K: 1 + i%4, Mode: model.Modes[i%2]})
	}
	serial := func() [][]byte {
		timer := cppr.NewTimer(d)
		timer.SetParallelism(cppr.Parallelism{Workers: 1})
		return batchBytes(t, d, timer, queries)
	}()
	timer := cppr.NewTimer(d)
	timer.SetParallelism(cppr.Parallelism{Workers: 8})
	got := batchBytes(t, d, timer, queries)
	for i := range serial {
		if !bytes.Equal(serial[i], got[i]) {
			t.Fatalf("skewed batch query %d differs under 8 workers", i)
		}
	}
}

// TestParallelismWarmMemo: a repeat of the same workload on a warm
// timer is served through the memo path (lock-free lookup under the
// executor) and must still serialise identically to the cold run.
func TestParallelismWarmMemo(t *testing.T) {
	d := mcmmDesign(t, 711, 2)
	queries := []cppr.Query{
		{K: 30, Mode: model.Setup, Corners: cppr.CornerAll},
		{K: 30, Mode: model.Setup},
		{K: 10, Mode: model.Hold},
	}
	timer := cppr.NewTimer(d)
	timer.SetParallelism(cppr.Parallelism{Workers: 8, QueryThreads: 8})
	cold := batchBytes(t, d, timer, queries)
	warm := batchBytes(t, d, timer, queries)
	for i := range cold {
		if !bytes.Equal(cold[i], warm[i]) {
			t.Fatalf("warm query %d differs from its cold run", i)
		}
	}
	if hits := timer.Stats().QueryMemoHits; hits == 0 {
		t.Fatalf("warm batch took no query-memo hits (stats: %+v)", timer.Stats())
	}
}

// TestParallelismIntraQueryKernel: QueryThreads drives the partitioned
// propagation kernel for standalone queries; every setting must match
// the single-threaded report byte for byte.
func TestParallelismIntraQueryKernel(t *testing.T) {
	d := gen.MustGenerate(gen.Medium(34))
	ctx := context.Background()
	const k = 60
	ref := func(mode model.Mode) []byte {
		timer := cppr.NewTimer(d)
		timer.SetParallelism(cppr.Parallelism{QueryThreads: 1})
		rep, err := timer.Run(ctx, cppr.Query{K: k, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		return reportBytes(t, d, rep, mode, k)
	}
	for _, mode := range model.Modes {
		want := ref(mode)
		for _, qt := range []int{2, 8} {
			timer := cppr.NewTimer(d)
			timer.SetParallelism(cppr.Parallelism{QueryThreads: qt})
			rep, err := timer.Run(ctx, cppr.Query{K: k, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if got := reportBytes(t, d, rep, mode, k); !bytes.Equal(want, got) {
				t.Fatalf("%v QueryThreads=%d differs from single-threaded reference", mode, qt)
			}
		}
	}
}

// TestParallelismPostCPPRSlacks: the multi-corner endpoint sweep under
// the executor matches the serial sweep at every worker budget.
func TestParallelismPostCPPRSlacks(t *testing.T) {
	d := mcmmDesign(t, 712, 3)
	ctx := context.Background()
	for _, mode := range model.Modes {
		timer := cppr.NewTimer(d)
		timer.SetParallelism(cppr.Parallelism{Workers: 1, QueryThreads: 1})
		want, err := timer.PostCPPRSlacksCtx(ctx, cppr.Query{Mode: mode, Corners: cppr.CornerAll})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			timer := cppr.NewTimer(d)
			timer.SetParallelism(cppr.Parallelism{Workers: workers, QueryThreads: workers})
			got, err := timer.PostCPPRSlacksCtx(ctx, cppr.Query{Mode: mode, Corners: cppr.CornerAll})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v workers %d: %d slacks, want %d", mode, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v workers %d endpoint %d: %+v, want %+v", mode, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelismConfigSurface pins the config API: settings round-trip,
// the zero value is the default, and installs are visible to subsequent
// reads (the atomic-publish contract).
func TestParallelismConfigSurface(t *testing.T) {
	d := gen.MustGenerate(gen.SmallOracle(5))
	timer := cppr.NewTimer(d)
	if got := timer.Parallelism(); got != (cppr.Parallelism{}) {
		t.Fatalf("fresh timer parallelism = %+v, want zero", got)
	}
	p := cppr.Parallelism{Workers: 3, QueryThreads: 2}
	timer.SetParallelism(p)
	if got := timer.Parallelism(); got != p {
		t.Fatalf("parallelism = %+v, want %+v", got, p)
	}
	// A query under the installed budget still answers correctly, and
	// Query.Threads overrides QueryThreads without error.
	for _, q := range []cppr.Query{
		{K: 5, Mode: model.Setup},
		{K: 5, Mode: model.Setup, Threads: 1},
	} {
		if _, err := timer.Run(context.Background(), q); err != nil {
			t.Fatalf("query %+v under %+v: %v", q, p, err)
		}
	}
	timer.SetParallelism(cppr.Parallelism{})
	if got := timer.Parallelism(); got != (cppr.Parallelism{}) {
		t.Fatalf("reset parallelism = %+v, want zero", got)
	}
}
